//===- mono/Monomorphizer.cpp ---------------------------------------------===//

#include "mono/Monomorphizer.h"

#include "types/TypeRelations.h"

#include <cassert>
#include <sstream>

using namespace virgil;

Monomorphizer::Monomorphizer(IrModule &In) : In(In), Types(*In.Types) {
  for (IrClass *C : In.Classes)
    if (C->Def)
      InClassByDef[C->Def] = C;
}

std::string Monomorphizer::mangle(const std::string &Base,
                                  const TypeVec &Args) {
  if (Args.empty())
    return Base;
  std::ostringstream OS;
  OS << Base << '<';
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Args[I]->toString();
  }
  OS << '>';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Type translation
//===----------------------------------------------------------------------===//

Type *Monomorphizer::remapClasses(Type *T) {
  auto It = RemapCache.find(T);
  if (It != RemapCache.end())
    return It->second;
  Type *Result = T;
  switch (T->kind()) {
  case TypeKind::Prim:
    break;
  case TypeKind::Array:
    Result = Types.array(remapClasses(cast<ArrayType>(T)->elem()));
    break;
  case TypeKind::Tuple: {
    TypeVec Elems;
    for (Type *E : cast<TupleType>(T)->elems())
      Elems.push_back(remapClasses(E));
    Result = Types.tuple(Elems);
    break;
  }
  case TypeKind::Function: {
    auto *FT = cast<FuncType>(T);
    Result = Types.func(remapClasses(FT->param()), remapClasses(FT->ret()));
    break;
  }
  case TypeKind::Class: {
    auto *CT = cast<ClassType>(T);
    auto DefIt = InClassByDef.find(CT->def());
    if (DefIt == InClassByDef.end())
      break; // Already a specialized def.
    TypeVec Args;
    for (Type *A : CT->args())
      Args.push_back(remapClasses(A));
    IrClass *Spec = requestClass(DefIt->second, Args);
    Result = Spec->SelfType;
    break;
  }
  case TypeKind::TypeParam:
    assert(false && "unsubstituted type parameter in translation");
    break;
  }
  RemapCache[T] = Result;
  return Result;
}

Type *Monomorphizer::translate(Type *T, const TypeSubst &Subst) {
  return remapClasses(Types.substitute(T, Subst));
}

//===----------------------------------------------------------------------===//
// Class specialization
//===----------------------------------------------------------------------===//

IrClass *Monomorphizer::requestClass(IrClass *C, const TypeVec &Args) {
  auto Key = std::make_pair(C, Args);
  auto It = ClassSpecs.find(Key);
  if (It != ClassSpecs.end())
    return It->second;
  if (Out->Classes.size() > InstantiationCap) {
    CapExceeded = true;
    // Return a dummy to keep the worklist draining; run() reports
    // failure.
    return Out->Classes.empty() ? Out->newClass("$overflow") : Out->Classes[0];
  }
  std::string Name = mangle(C->Name, Args);
  IrClass *Spec = Out->newClass(Name);
  ClassSpecs[Key] = Spec; // Insert before recursing (cycles via fields).
  ++Stats.SpecsPerClass[C->Name];
  ClassDef *NewDef = Types.makeClass(Types.internName(Name));
  NewDef->AstDecl = nullptr;
  Spec->Def = NewDef;
  Spec->MonoArgs = Args;
  Spec->SelfType = Types.classType(NewDef, {});
  Spec->Depth = C->Depth;
  TypeSubst Subst{C->Def->TypeParams, Args};
  // Parent specialization (instantiated superclass).
  if (C->Parent) {
    auto *ParentTy = cast<ClassType>(
        Types.substitute(C->Def->ParentAsWritten, Subst));
    TypeVec PArgs(ParentTy->args().begin(), ParentTy->args().end());
    IrClass *PSpec = requestClass(InClassByDef[ParentTy->def()], PArgs);
    Spec->Parent = PSpec;
    NewDef->ParentAsWritten = PSpec->SelfType;
    NewDef->Depth = PSpec->Def->Depth + 1;
  }
  // Fields.
  for (const IrField &F : C->Fields)
    Spec->Fields.push_back(IrField{F.Name, translate(F.Ty, Subst)});
  // Virtual table: specialize each entry at its owner's instantiation.
  TypeRelations Rels(Types);
  auto *SelfInst = cast<ClassType>(Types.classType(C->Def, Args));
  for (IrFunction *V : C->VTable) {
    if (!V) {
      Spec->VTable.push_back(nullptr);
      continue;
    }
    TypeVec OwnerArgs;
    if (V->OwnerClass && V->OwnerClass->Def) {
      ClassType *At = Rels.superAt(SelfInst, V->OwnerClass->Def);
      assert(At && "vtable owner not on chain");
      OwnerArgs.assign(At->args().begin(), At->args().end());
    }
    Spec->VTable.push_back(requestFunc(V, OwnerArgs));
  }
  return Spec;
}

//===----------------------------------------------------------------------===//
// Function specialization
//===----------------------------------------------------------------------===//

IrFunction *Monomorphizer::requestFunc(IrFunction *F, const TypeVec &Args) {
  assert(Args.size() == F->TypeParams.size() &&
         "specialization arity mismatch");
  auto Key = std::make_pair(F, Args);
  auto It = FuncSpecs.find(Key);
  if (It != FuncSpecs.end())
    return It->second;
  if (Out->Functions.size() > InstantiationCap) {
    CapExceeded = true;
    return Out->Functions.empty() ? Out->newFunction("$overflow")
                                  : Out->Functions[0];
  }
  IrFunction *Spec = Out->newFunction(mangle(F->Name, Args));
  FuncSpecs[Key] = Spec;
  ++Stats.SpecsPerFunction[F->Name];
  TypeSubst Subst{F->TypeParams, Args};
  for (Type *RT : F->RegTypes)
    Spec->RegTypes.push_back(translate(RT, Subst));
  for (Type *RT : F->RetTypes)
    Spec->RetTypes.push_back(translate(RT, Subst));
  Spec->NumParams = F->NumParams;
  Spec->IsCtor = F->IsCtor;
  Spec->Slot = F->Slot;
  if (F->OwnerClass) {
    size_t NumClassParams = F->OwnerClass->Def->TypeParams.size();
    TypeVec ClassArgs(Args.begin(), Args.begin() + NumClassParams);
    Spec->OwnerClass = requestClass(F->OwnerClass, ClassArgs);
  }
  Worklist.push_back(WorkItem{Spec, F, Args});
  return Spec;
}

void Monomorphizer::fillFunction(IrFunction *NewF, IrFunction *OldF,
                                 const TypeVec &Args) {
  TypeSubst Subst{OldF->TypeParams, Args};
  std::map<IrBlock *, IrBlock *> BlockMap;
  for (size_t I = 0; I != OldF->Blocks.size(); ++I) {
    auto *B = Out->Nodes.make<IrBlock>((uint32_t)I);
    NewF->Blocks.push_back(B);
    BlockMap[OldF->Blocks[I]] = B;
  }
  for (size_t BI = 0; BI != OldF->Blocks.size(); ++BI) {
    IrBlock *OldB = OldF->Blocks[BI];
    IrBlock *NewB = BlockMap[OldB];
    if (OldB->Succ0)
      NewB->Succ0 = BlockMap[OldB->Succ0];
    if (OldB->Succ1)
      NewB->Succ1 = BlockMap[OldB->Succ1];
    for (IrInstr *OldI : OldB->Instrs) {
      auto *I = Out->Nodes.make<IrInstr>();
      I->Op = OldI->Op;
      I->Loc = OldI->Loc;
      I->Dsts = OldI->Dsts;
      I->Args = OldI->Args;
      I->IntConst = OldI->IntConst;
      I->Index = OldI->Index;
      if (OldI->Ty)
        I->Ty = translate(OldI->Ty, Subst);
      if (OldI->TypeOperand)
        I->TypeOperand = translate(OldI->TypeOperand, Subst);
      // Specialize direct callees; type arguments disappear.
      if (OldI->Callee) {
        TypeVec CalleeArgs;
        CalleeArgs.reserve(OldI->TypeArgs.size());
        for (Type *A : OldI->TypeArgs)
          CalleeArgs.push_back(Types.substitute(A, Subst));
        // Remap class types inside the callee's type arguments so the
        // specialization key is canonical.
        for (Type *&A : CalleeArgs)
          A = remapClasses(A);
        I->Callee = requestFunc(OldI->Callee, CalleeArgs);
      }
      if (OldI->Op == Opcode::ConstString)
        I->Index = Out->internString(In.Strings[OldI->Index]);
      NewB->Instrs.push_back(I);
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<IrModule> Monomorphizer::run() {
  Out = std::make_unique<IrModule>(Types);
  Stats.InputFunctions = In.Functions.size();
  Stats.InputClasses = In.Classes.size();
  // Globals keep their (already concrete) types, remapped to
  // specialized class defs.
  for (const IrGlobal &G : In.Globals)
    Out->Globals.push_back(IrGlobal{G.Name, remapClasses(G.Ty), G.Index});
  if (In.Init)
    Out->Init = requestFunc(In.Init, {});
  if (In.Main)
    Out->Main = requestFunc(In.Main, {});
  while (!Worklist.empty()) {
    WorkItem Item = std::move(Worklist.back());
    Worklist.pop_back();
    fillFunction(Item.NewF, Item.OldF, Item.Args);
    if (CapExceeded)
      return nullptr;
  }
  Out->Monomorphized = true;
  Stats.OutputFunctions = Out->Functions.size();
  Stats.OutputClasses = Out->Classes.size();
  return std::move(Out);
}
