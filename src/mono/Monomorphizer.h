//===- mono/Monomorphizer.h - Whole-program specialization ------*- C++ -*-===//
///
/// \file
/// Monomorphization (paper §4.3): produces "a specialized version of
/// each polymorphic class or method for each distinct assignment of
/// type arguments to type parameters". The result is a new IrModule in
/// which no type parameters, type arguments, or polymorphic types
/// remain: List<(int, int)> and List<byte> become distinct classes with
/// distinct layouts, id<int> and id<byte> distinct functions.
///
/// Specialization is reachability-driven from main and $init, so dead
/// generic code costs nothing. Each concrete class instantiation gets a
/// fresh (non-generic) ClassDef whose ParentAsWritten chain mirrors the
/// specialized hierarchy — runtime casts and queries on specialized
/// types then work through the ordinary subtyping machinery.
///
/// Because the typechecker rejects polymorphic recursion, the worklist
/// terminates; a generous instantiation cap turns any violation of that
/// invariant into a hard error rather than an endless loop.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_MONO_MONOMORPHIZER_H
#define VIRGIL_MONO_MONOMORPHIZER_H

#include "ir/Ir.h"

#include <map>
#include <memory>

namespace virgil {

/// Code-expansion bookkeeping for experiment E5.
struct MonoStats {
  size_t InputFunctions = 0;
  size_t OutputFunctions = 0;
  size_t InputClasses = 0;
  size_t OutputClasses = 0;
  /// Specialization count per original polymorphic function (name ->
  /// count); 1 means no duplication.
  std::map<std::string, size_t> SpecsPerFunction;
  std::map<std::string, size_t> SpecsPerClass;

  double functionExpansion() const {
    return InputFunctions ? (double)OutputFunctions / InputFunctions : 1.0;
  }
};

class Monomorphizer {
public:
  explicit Monomorphizer(IrModule &In);

  /// Specializes the whole program; returns the monomorphic module
  /// (sharing the input's TypeStore), or null if the instantiation cap
  /// was exceeded (which indicates undetected polymorphic recursion).
  std::unique_ptr<IrModule> run();

  const MonoStats &stats() const { return Stats; }

private:
  using TypeVec = std::vector<Type *>;

  IrFunction *requestFunc(IrFunction *F, const TypeVec &Args);
  IrClass *requestClass(IrClass *C, const TypeVec &Args);
  void fillFunction(IrFunction *NewF, IrFunction *OldF,
                    const TypeVec &Args);

  /// Substitutes \p Args for \p F's params in T, then remaps all class
  /// types to their specialized defs.
  Type *translate(Type *T, const TypeSubst &Subst);
  Type *remapClasses(Type *T);

  std::string mangle(const std::string &Base, const TypeVec &Args);

  IrModule &In;
  std::unique_ptr<IrModule> Out;
  TypeStore &Types;

  std::map<std::pair<IrFunction *, TypeVec>, IrFunction *> FuncSpecs;
  std::map<std::pair<IrClass *, TypeVec>, IrClass *> ClassSpecs;
  std::map<ClassDef *, IrClass *> InClassByDef;
  std::map<Type *, Type *> RemapCache;

  struct WorkItem {
    IrFunction *NewF;
    IrFunction *OldF;
    TypeVec Args;
  };
  std::vector<WorkItem> Worklist;

  MonoStats Stats;
  bool CapExceeded = false;
  size_t InstantiationCap = 200000;
};

} // namespace virgil

#endif // VIRGIL_MONO_MONOMORPHIZER_H
