//===- mono/ShareSpecializations.h - Specialization sharing -----*- C++ -*-===//
///
/// \file
/// Bounds monomorphization code expansion (the paper's stated §4.3
/// tradeoff) by collapsing specializations whose normalized bodies are
/// observationally identical — the Kennedy/Syme-style sharing of
/// reference-typed instantiations, applied after tuple flattening so
/// calling conventions are already concrete.
///
/// The pass partitions functions by a canonical structural key of the
/// post-normalization body: opcode stream, register/return slot kinds
/// (exact, so GC stack maps of merged bodies agree), block structure,
/// field/slot/global/string indices, and every *baked static decision*
/// the bytecode emitter would take — allocation-site class identity
/// (NewObject), array element kinds, cast/query classification
/// (castRel/queryRel plus the nullability and subtype bits the emitter
/// branches on) with target-type identity. Direct call targets are keyed
/// modulo the equivalence being built: the initial partition ignores
/// CallFunc callees, then partition refinement splits classes by callee
/// classes until a fixpoint, so `id<A>` calling `get<A>` merges with
/// `id<B>` calling `get<B>` exactly when the callees merge too.
///
/// Functions whose *identity* is observable are never merged:
///
/// * every MakeClosure callee (closure equality compares function
///   identity; CastFunc/QueryFunc read the callee's source-level
///   function type), and
/// * every vtable entry at a slot some *bound* virtual MakeClosure
///   resolves through (the resolved implementation is stored in the
///   closure value, making its identity observable).
///
/// Unbound-virtual re-dispatch targets stay shareable: CallIndirect
/// looks the implementation up per call and never stores it in a value.
/// Class specializations are never merged at all — class identity is
/// runtime-distinguishable through casts/queries/`classify<T>`, which
/// is exactly why sharing bodies (not types) is sound.
///
/// Each equivalence class keeps its lowest-id member as the
/// representative; vtables, direct calls, main and $init are redirected,
/// the function table is compacted, and ids renumbered. The pass runs
/// last (after opt-norm, before emission), so the optimizer never sees
/// shared bodies and the emitter/VM/interpreter see a smaller but
/// semantically identical module.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_MONO_SHARESPECIALIZATIONS_H
#define VIRGIL_MONO_SHARESPECIALIZATIONS_H

#include "ir/Ir.h"

#include <cstddef>

namespace virgil {

/// Expansion bookkeeping for the sharing pass (E5/E16, batch + STATS).
struct ShareStats {
  bool Enabled = false;
  size_t FunctionsBefore = 0;
  size_t FunctionsAfter = 0;
  /// Bodies merged away (FunctionsBefore - FunctionsAfter).
  size_t BodiesShared = 0;
  size_t InstrsBefore = 0;
  size_t InstrsAfter = 0;

  /// How much smaller sharing made the function table (>= 1.0).
  double shareRatio() const {
    return FunctionsAfter ? (double)FunctionsBefore / FunctionsAfter : 1.0;
  }

  ShareStats &operator+=(const ShareStats &O) {
    Enabled = Enabled || O.Enabled;
    FunctionsBefore += O.FunctionsBefore;
    FunctionsAfter += O.FunctionsAfter;
    BodiesShared += O.BodiesShared;
    InstrsBefore += O.InstrsBefore;
    InstrsAfter += O.InstrsAfter;
    return *this;
  }
};

/// Merges observationally identical specializations of the normalized
/// module \p M in place, sets M.Shared, and returns the stats. Requires
/// a monomorphized, normalized module.
ShareStats shareSpecializations(IrModule &M);

} // namespace virgil

#endif // VIRGIL_MONO_SHARESPECIALIZATIONS_H
