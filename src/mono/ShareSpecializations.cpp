//===- mono/ShareSpecializations.cpp --------------------------------------===//

#include "mono/ShareSpecializations.h"

#include "support/Casting.h"
#include "types/TypeRelations.h"
#include "vm/Bytecode.h"

#include <cassert>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

using namespace virgil;

namespace {

/// Builds the canonical structural key of one function body: everything
/// the bytecode emitter or the normalized-IR interpreter can observe
/// about it, *except* direct CallFunc targets (handled by partition
/// refinement). Two functions with equal keys and pairwise-equivalent
/// callees compile to byte-identical bodies.
class BodyKey {
public:
  BodyKey(const IrModule &M, TypeRelations &Rels) : M(M), Rels(Rels) {}

  std::vector<uint64_t> build(const IrFunction &F,
                              std::vector<const IrFunction *> &CalleesOut) {
    Key.clear();
    CalleesOut.clear();

    push(F.NumParams);
    push(F.RegTypes.size());
    // Exact slot-kind vectors: merged bodies must present identical
    // register maps to the VM's GC stack scanner.
    for (Type *T : F.RegTypes)
      push((uint64_t)slotKindOf(T));
    push(F.RetTypes.size());
    for (Type *T : F.RetTypes)
      push((uint64_t)slotKindOf(T));

    // Block indices are positional so physically different but
    // isomorphic CFGs with the same layout compare equal.
    std::unordered_map<const IrBlock *, uint64_t> BlockIdx;
    for (size_t I = 0; I != F.Blocks.size(); ++I)
      BlockIdx[F.Blocks[I]] = I;

    push(F.Blocks.size());
    for (const IrBlock *B : F.Blocks) {
      push(B->Instrs.size());
      for (const IrInstr *I : B->Instrs)
        encode(F, *I, CalleesOut);
      push(B->Succ0 ? BlockIdx.at(B->Succ0) + 1 : 0);
      push(B->Succ1 ? BlockIdx.at(B->Succ1) + 1 : 0);
    }
    return std::move(Key);
  }

private:
  void push(uint64_t V) { Key.push_back(V); }
  void pushType(const Type *T) { push((uint64_t)(uintptr_t)T); }

  void encode(const IrFunction &F, const IrInstr &I,
              std::vector<const IrFunction *> &CalleesOut) {
    push((uint64_t)I.Op);
    push(I.Dsts.size());
    for (Reg R : I.Dsts)
      push(R);
    push(I.Args.size());
    for (Reg R : I.Args)
      push(R);
    push((uint64_t)I.Index);
    push((uint64_t)I.IntConst);

    switch (I.Op) {
    case Opcode::NewObject:
      // Allocation sites pin class identity: the object's dynamic type
      // is observable through casts/queries, so specializations that
      // allocate different classes can never share.
      pushType(I.TypeOperand);
      break;
    case Opcode::NewArray: {
      // Array headers carry only the element kind (mirroring the
      // emitter's ElemKind); the precise element type is not
      // runtime-observable — array casts are classified statically at
      // their own use sites.
      const Type *Elem = cast<ArrayType>(I.TypeOperand)->elem();
      push(Elem->isVoid() ? ~1ull : (uint64_t)slotKindOf(Elem));
      break;
    }
    case Opcode::ConstNull:
    case Opcode::Eq:
    case Opcode::Ne:
      // Bit-pattern semantics depend only on the slot kind.
      push(I.Ty ? (uint64_t)slotKindOf(I.Ty) : ~0ull);
      break;
    case Opcode::CallFunc:
      // Keyed modulo the equivalence under construction: record the
      // callee for refinement, not its identity.
      CalleesOut.push_back(I.Callee);
      break;
    case Opcode::MakeClosure:
      // Closure values expose function identity (equality, CastFunc /
      // QueryFunc through the callee's source type), so the exact
      // callee is part of the key. MakeClosure callees are also in the
      // Taken set and thus never merged themselves.
      push((uint64_t)I.Callee->id());
      break;
    case Opcode::TypeCast:
    case Opcode::TypeQuery: {
      // Everything the emitter bakes from static types: the target
      // type's identity, the three-valued classification, the source
      // kind (nullability of statically-failing casts), and the
      // subtype bit that splits QueryNonNull from a dynamic query.
      Type *From = F.RegTypes[I.Args[0]];
      Type *To = I.TypeOperand;
      pushType(To);
      push((uint64_t)From->kind());
      TypeRel Rel = I.Op == Opcode::TypeCast ? Rels.castRel(From, To)
                                             : Rels.queryRel(From, To);
      push((uint64_t)Rel);
      if (I.Op == Opcode::TypeQuery && Rel == TypeRel::Dynamic)
        push(Rels.isSubtype(From, To) ? 1 : 0);
      break;
    }
    default:
      break;
    }
  }

  const IrModule &M;
  TypeRelations &Rels;
  std::vector<uint64_t> Key;
};

size_t countInstrs(const IrModule &M) {
  size_t N = 0;
  for (const IrFunction *F : M.Functions)
    for (const IrBlock *B : F->Blocks)
      N += B->Instrs.size();
  return N;
}

} // namespace

ShareStats virgil::shareSpecializations(IrModule &M) {
  assert(M.Monomorphized && M.Normalized &&
         "sharing requires a normalized monomorphic module");
  ShareStats Stats;
  Stats.Enabled = true;
  Stats.FunctionsBefore = M.Functions.size();
  Stats.InstrsBefore = countInstrs(M);

  size_t N = M.Functions.size();

  // --- Taken set: functions whose identity escapes into values. ------
  // Every MakeClosure callee, plus every vtable entry at a slot some
  // *bound* virtual MakeClosure resolves through (the resolved impl is
  // stored in the closure, so all candidate impls become observable).
  std::set<const IrFunction *> Taken;
  std::set<int> BoundVirtualSlots;
  for (const IrFunction *F : M.Functions)
    for (const IrBlock *B : F->Blocks)
      for (const IrInstr *I : B->Instrs)
        if (I->Op == Opcode::MakeClosure) {
          Taken.insert(I->Callee);
          if (!I->Args.empty() && I->Callee->Slot >= 0)
            BoundVirtualSlots.insert(I->Callee->Slot);
        }
  for (int Slot : BoundVirtualSlots)
    for (const IrClass *C : M.Classes)
      if ((size_t)Slot < C->VTable.size() && C->VTable[Slot])
        Taken.insert(C->VTable[Slot]);

  // --- Initial partition by structural body key. ---------------------
  TypeRelations Rels(*M.Types);
  BodyKey Keyer(M, Rels);
  std::vector<std::vector<uint32_t>> CalleeIds(N);
  std::vector<uint32_t> Class(N);
  {
    std::map<std::vector<uint64_t>, uint32_t> KeyClasses;
    for (size_t I = 0; I != N; ++I) {
      IrFunction *F = M.Functions[I];
      assert(F->id() == I && "function ids must be table positions");
      std::vector<const IrFunction *> Callees;
      std::vector<uint64_t> Key = Keyer.build(*F, Callees);
      if (Taken.count(F)) {
        // Identity-observable: force a singleton class.
        Key.push_back(~0ull);
        Key.push_back(F->id());
      }
      for (const IrFunction *C : Callees)
        CalleeIds[I].push_back(C->id());
      auto It = KeyClasses.emplace(std::move(Key),
                                   (uint32_t)KeyClasses.size());
      Class[I] = It.first->second;
    }
  }

  // --- Refine by callee classes until fixpoint. ----------------------
  // Classic partition refinement: split any class whose members call
  // into different classes at some position. Class count only grows,
  // bounded by N, so this terminates.
  for (;;) {
    std::map<std::vector<uint32_t>, uint32_t> SigClasses;
    std::vector<uint32_t> Next(N);
    for (size_t I = 0; I != N; ++I) {
      std::vector<uint32_t> Sig;
      Sig.reserve(CalleeIds[I].size() + 1);
      Sig.push_back(Class[I]);
      for (uint32_t C : CalleeIds[I])
        Sig.push_back(Class[C]);
      auto It = SigClasses.emplace(std::move(Sig),
                                   (uint32_t)SigClasses.size());
      Next[I] = It.first->second;
    }
    bool Stable = SigClasses.size() ==
                  (size_t)(std::set<uint32_t>(Class.begin(), Class.end())
                               .size());
    Class = std::move(Next);
    if (Stable)
      break;
  }

  // --- Pick representatives (lowest id wins) and redirect. -----------
  std::map<uint32_t, IrFunction *> RepOfClass;
  for (size_t I = 0; I != N; ++I)
    if (!RepOfClass.count(Class[I]))
      RepOfClass[Class[I]] = M.Functions[I]; // ids ascend with I
  auto rep = [&](IrFunction *F) -> IrFunction * {
    return F ? RepOfClass[Class[F->id()]] : nullptr;
  };

  for (IrFunction *F : M.Functions) {
    if (rep(F) != F)
      continue; // body will be dropped; no need to rewrite it
    for (IrBlock *B : F->Blocks)
      for (IrInstr *I : B->Instrs)
        if (I->Callee)
          I->Callee = rep(I->Callee);
  }
  for (IrClass *C : M.Classes)
    for (IrFunction *&Entry : C->VTable)
      Entry = rep(Entry);
  M.Main = rep(M.Main);
  M.Init = rep(M.Init);

  // --- Compact the function table and renumber. ----------------------
  std::vector<IrFunction *> Kept;
  Kept.reserve(N);
  for (IrFunction *F : M.Functions)
    if (rep(F) == F)
      Kept.push_back(F);
  for (size_t I = 0; I != Kept.size(); ++I)
    Kept[I]->renumber((uint32_t)I);
  M.Functions = std::move(Kept);
  M.Shared = true;

  Stats.FunctionsAfter = M.Functions.size();
  Stats.BodiesShared = Stats.FunctionsBefore - Stats.FunctionsAfter;
  Stats.InstrsAfter = countInstrs(M);
  return Stats;
}
