//===- sema/TypeChecker.h - Body checking and name resolution ---*- C++ -*-===//
///
/// \file
/// The second half of semantic analysis: checks every initializer and
/// body, resolves names and members (filling RefInfo on Name/Member
/// expressions), infers type arguments, and enforces the assignability
/// rules. Checking is bidirectional-lite: an optional expected type
/// flows down for null literals, byte-range integer literals, tuple
/// decomposition, and closing over generic function values.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SEMA_TYPECHECKER_H
#define VIRGIL_SEMA_TYPECHECKER_H

#include "sema/Inference.h"
#include "sema/Resolver.h"

namespace virgil {

class TypeChecker {
public:
  explicit TypeChecker(Resolver &R);

  /// Checks all bodies; returns false on errors.
  bool run();

private:
  //===--------------------------------------------------------------------===//
  // Callable resolution
  //===--------------------------------------------------------------------===//

  /// A callee that can be called (or closed over) directly, with its
  /// polymorphic signature still open.
  struct Callable {
    RefKind Kind = RefKind::None;
    MethodDecl *Method = nullptr;  ///< Func/MethodBound/MethodUnbound/Ctor.
    ClassDecl *Class = nullptr;    ///< Ctor/MethodUnbound owner.
    OpSel Op = OpSel::Eq;          ///< OpFunc.
    BuiltinKind Builtin = BuiltinKind::Puts;
    /// Receiver static type for MethodBound (a class type), or the T of
    /// T.op, or the Array<T> of Array<T>.new.
    Type *BaseType = nullptr;
    /// Explicit class type arguments (Ctor/MethodUnbound on a generic
    /// class); empty means "infer".
    std::vector<Type *> ClassArgs;
    bool ClassArgsExplicit = false;
    /// Explicit method type arguments; empty means "infer".
    std::vector<Type *> MethodArgs;
    bool MethodArgsExplicit = false;
    /// The node whose RefInfo should record the resolution.
    Expr *Site = nullptr;
  };

  /// Tries to resolve \p Callee into a direct callable. Returns:
  /// 1 = resolved into \p Out; 0 = not a direct callable (treat as a
  /// value); -1 = error already reported.
  int resolveCallable(Expr *Callee, Callable &Out);

  /// Resolves a NameExpr as a *type* (class with args, primitive,
  /// Array<T>, string, or type parameter); null if it is not a type.
  Type *resolveNameAsType(NameExpr *N);

  /// Like resolveNameAsType but also accepts tuple spellings such as
  /// `(int, int)` as the base of an operator member (`(int, int).==`).
  Type *resolveExprAsType(Expr *E);

  //===--------------------------------------------------------------------===//
  // Expression checking
  //===--------------------------------------------------------------------===//

  Type *checkExpr(Expr *E, Type *Expected);
  Type *checkName(NameExpr *E, Type *Expected);
  Type *checkMember(MemberExpr *E, Type *Expected);
  Type *checkCall(CallExpr *E, Type *Expected);
  Type *checkDirectCall(CallExpr *E, Callable &C, Type *Expected);
  Type *checkIndirectCall(CallExpr *E, Type *CalleeTy);
  Type *checkBinary(BinaryExpr *E, Type *Expected);
  Type *checkAssign(BinaryExpr *E);
  Type *checkTernary(TernaryExpr *E, Type *Expected);
  Type *checkTupleLit(TupleLitExpr *E, Type *Expected);
  Type *checkIndex(IndexExpr *E);

  /// Closes a resolved callable into a function *value* (paper §2.2:
  /// object methods, class methods, constructors, and operators are all
  /// first-class). Needs all type arguments, explicit or inferable from
  /// \p Expected.
  Type *closeCallable(Callable &C, Type *Expected, SourceLoc Loc);

  /// Computes the open (possibly polymorphic) parameter list and return
  /// type of a callable, before substitution.
  void openSignature(const Callable &C, std::vector<Type *> &Params,
                     Type *&Ret);

  /// All inference variables of a callable (class params then method
  /// params, minus explicitly-supplied groups).
  std::vector<TypeParamDef *> openVars(const Callable &C);

  /// Builds the substitution from explicit arguments.
  TypeSubst explicitSubst(const Callable &C);

  /// Records the final resolution into the site's RefInfo.
  void commitRef(Callable &C, const TypeSubst &Subst);

  bool isLValue(Expr *E, bool &IsMutable);

  //===--------------------------------------------------------------------===//
  // Statement checking
  //===--------------------------------------------------------------------===//

  void checkStmt(Stmt *S);
  void checkLocalDecl(LocalDeclStmt *S);
  void checkBody(MethodDecl *M, ClassDecl *Owner);
  void checkCtorBody(ClassDecl *C);
  bool mustReturn(const Stmt *S) const;

  /// Reports an error at \p Loc.
  void error(SourceLoc Loc, std::string Message);

  Resolver &R;
  TypeStore &Types;
  TypeRelations &Rels;
  DiagEngine &Diags;

  ClassDecl *CurClass = nullptr;
  MethodDecl *CurMethod = nullptr;
  LocalScope Locals;
  TypeParamScope TScope;
  int LoopDepth = 0;
};

/// Facade running the full semantic analysis (resolution, body
/// checking, polymorphic-recursion detection).
class Sema {
public:
  Sema(Module &M, TypeStore &Types, StringInterner &Idents,
       DiagEngine &Diags, Arena &Nodes)
      : Res(M, Types, Idents, Diags, Nodes) {}

  /// Runs all phases; returns false on any error.
  bool run();

  Resolver &resolver() { return Res; }

private:
  Resolver Res;
};

} // namespace virgil

#endif // VIRGIL_SEMA_TYPECHECKER_H
