//===- sema/Scope.cpp -----------------------------------------------------===//

#include "sema/Scope.h"

#include <cassert>

using namespace virgil;

void LocalScope::push() { Frames.emplace_back(); }

void LocalScope::pop() {
  assert(!Frames.empty() && "scope underflow");
  Frames.pop_back();
}

bool LocalScope::declare(LocalVar *Var) {
  assert(!Frames.empty() && "no open scope");
  for (const LocalVar *V : Frames.back())
    if (V->Name == Var->Name)
      return false;
  Frames.back().push_back(Var);
  return true;
}

LocalVar *LocalScope::lookup(Ident Name) const {
  for (auto It = Frames.rbegin(), E = Frames.rend(); It != E; ++It)
    for (LocalVar *V : *It)
      if (V->Name == Name)
        return V;
  return nullptr;
}
