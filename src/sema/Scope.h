//===- sema/Scope.h - Lexical scopes for locals and type params -*- C++ -*-===//
///
/// \file
/// Scope stacks used during type checking: a value scope mapping
/// identifiers to LocalVars, and a type scope mapping identifiers to
/// TypeParamDefs (class parameters below method parameters).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SEMA_SCOPE_H
#define VIRGIL_SEMA_SCOPE_H

#include "ast/Ast.h"

#include <vector>

namespace virgil {

/// A block-structured scope of local variables.
class LocalScope {
public:
  void push();
  void pop();
  /// Declares \p Var in the innermost scope; returns false if the name
  /// is already declared in that scope.
  bool declare(LocalVar *Var);
  /// Finds the innermost declaration of \p Name, or null.
  LocalVar *lookup(Ident Name) const;
  bool empty() const { return Frames.empty(); }

private:
  std::vector<std::vector<LocalVar *>> Frames;
};

/// Type parameters currently in scope (class params plus method params).
class TypeParamScope {
public:
  void clear() { Params.clear(); }
  void add(Ident Name, TypeParamDef *Def) { Params.push_back({Name, Def}); }
  TypeParamDef *lookup(Ident Name) const {
    for (auto It = Params.rbegin(), E = Params.rend(); It != E; ++It)
      if (It->first == Name)
        return It->second;
    return nullptr;
  }

private:
  std::vector<std::pair<Ident, TypeParamDef *>> Params;
};

} // namespace virgil

#endif // VIRGIL_SEMA_SCOPE_H
