//===- sema/Resolver.h - Module-level symbol resolution ---------*- C++ -*-===//
///
/// \file
/// The first half of semantic analysis: builds ClassDefs, resolves
/// superclasses (rejecting cycles), resolves every declared type,
/// synthesizes constructors, computes field layouts and virtual method
/// tables, and registers top-level functions/globals. Bodies are checked
/// afterwards by TypeChecker.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SEMA_RESOLVER_H
#define VIRGIL_SEMA_RESOLVER_H

#include "ast/Ast.h"
#include "sema/Scope.h"
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "types/TypeRelations.h"
#include "types/TypeStore.h"

#include <unordered_map>

namespace virgil {

/// Interned names for the built-in vocabulary.
struct WellKnown {
  Ident Int, Byte, Bool, Void, String, ArrayName, SystemName;
  Ident Length, New, Main, Super;
  Ident Puts, Puti, Putc, Ln, Ticks, Error;

  explicit WellKnown(StringInterner &Idents);
};

/// Shared state for the whole semantic analysis of one module.
class Resolver {
public:
  Resolver(Module &M, TypeStore &Types, StringInterner &Idents,
           DiagEngine &Diags, Arena &Nodes);

  /// Runs module-level resolution; returns false on errors.
  bool run();

  /// Resolves a syntactic type in the given type-parameter scope.
  /// Reports and returns null on failure.
  Type *resolveTypeRef(TypeRef *Ref, const TypeParamScope &TScope);

  /// Member lookup along the superclass chain. Exactly one of the out
  /// parameters is set on success. \p FromClass gates private access.
  bool lookupMember(ClassDecl *C, Ident Name, ClassDecl *FromClass,
                    FieldDecl *&FieldOut, MethodDecl *&MethodOut,
                    ClassDecl *&OwnerOut);

  ClassDecl *findClass(Ident Name) const;
  MethodDecl *findFunc(Ident Name) const;
  GlobalDecl *findGlobal(Ident Name) const;

  /// The type-parameter scope for a class body (its own params).
  TypeParamScope classScope(ClassDecl *C) const;

  Module &M;
  TypeStore &Types;
  TypeRelations Rels;
  StringInterner &Idents;
  DiagEngine &Diags;
  Arena &Nodes;
  WellKnown Names;

private:
  void declareClasses();
  void resolveParents();
  void resolveClassSignatures(ClassDecl *C);
  void resolveFuncSignature(MethodDecl *F, const TypeParamScope &Outer);
  void synthesizeCtor(ClassDecl *C);
  void resolveCtor(ClassDecl *C);
  void buildLayoutAndVTable(ClassDecl *C);
  void resolveGlobals();

  std::unordered_map<Ident, ClassDecl *> ClassesByName;
  std::unordered_map<Ident, MethodDecl *> FuncsByName;
  std::unordered_map<Ident, GlobalDecl *> GlobalsByName;
  std::unordered_map<ClassDecl *, bool> LayoutDone;
};

} // namespace virgil

#endif // VIRGIL_SEMA_RESOLVER_H
