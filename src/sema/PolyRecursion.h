//===- sema/PolyRecursion.h - Polymorphic recursion detection ---*- C++ -*-===//
///
/// \file
/// Virgil disallows polymorphic recursion so that monomorphization
/// terminates (paper §4.3; the paper notes its own implementation "does
/// not currently enforce" the restriction — we do). The checker builds
/// the static instantiation graph between parameterized declarations and
/// rejects any cycle that contains an *expanding* edge, i.e. a call
/// whose type argument embeds a type parameter inside a larger type
/// (such as `f<List<T>>` or `f<(T, T)>` inside f). Cycles whose
/// arguments are bare type parameters (plain polymorphic recursion of
/// the same instantiation) are harmless and admitted.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SEMA_POLYRECURSION_H
#define VIRGIL_SEMA_POLYRECURSION_H

#include "sema/Resolver.h"

namespace virgil {

class PolyRecursionChecker {
public:
  explicit PolyRecursionChecker(Resolver &R) : R(R) {}

  /// Returns false (with diagnostics) if polymorphic recursion exists.
  bool run();

private:
  Resolver &R;
};

} // namespace virgil

#endif // VIRGIL_SEMA_POLYRECURSION_H
