//===- sema/Resolver.cpp --------------------------------------------------===//

#include "sema/Resolver.h"

#include <algorithm>
#include <cassert>

using namespace virgil;

WellKnown::WellKnown(StringInterner &Idents)
    : Int(Idents.intern("int")), Byte(Idents.intern("byte")),
      Bool(Idents.intern("bool")), Void(Idents.intern("void")),
      String(Idents.intern("string")), ArrayName(Idents.intern("Array")),
      SystemName(Idents.intern("System")), Length(Idents.intern("length")),
      New(Idents.intern("new")), Main(Idents.intern("main")),
      Super(Idents.intern("super")), Puts(Idents.intern("puts")),
      Puti(Idents.intern("puti")), Putc(Idents.intern("putc")),
      Ln(Idents.intern("ln")), Ticks(Idents.intern("ticks")),
      Error(Idents.intern("error")) {}

Resolver::Resolver(Module &M, TypeStore &Types, StringInterner &Idents,
                   DiagEngine &Diags, Arena &Nodes)
    : M(M), Types(Types), Rels(Types), Idents(Idents), Diags(Diags),
      Nodes(Nodes), Names(Idents) {}

ClassDecl *Resolver::findClass(Ident Name) const {
  auto It = ClassesByName.find(Name);
  return It == ClassesByName.end() ? nullptr : It->second;
}

MethodDecl *Resolver::findFunc(Ident Name) const {
  auto It = FuncsByName.find(Name);
  return It == FuncsByName.end() ? nullptr : It->second;
}

GlobalDecl *Resolver::findGlobal(Ident Name) const {
  auto It = GlobalsByName.find(Name);
  return It == GlobalsByName.end() ? nullptr : It->second;
}

bool Resolver::lookupMember(ClassDecl *C, Ident Name, ClassDecl *FromClass,
                            FieldDecl *&FieldOut, MethodDecl *&MethodOut,
                            ClassDecl *&OwnerOut) {
  FieldOut = nullptr;
  MethodOut = nullptr;
  OwnerOut = nullptr;
  for (ClassDecl *D = C; D; D = D->Parent) {
    for (FieldDecl *F : D->Fields) {
      if (F->Name != Name)
        continue;
      FieldOut = F;
      OwnerOut = D;
      return true;
    }
    for (MethodDecl *Me : D->Methods) {
      if (Me->Name != Name)
        continue;
      if (Me->IsPrivate && D != FromClass)
        continue; // Private members are visible only in their class.
      MethodOut = Me;
      OwnerOut = D;
      return true;
    }
  }
  return false;
}

TypeParamScope Resolver::classScope(ClassDecl *C) const {
  TypeParamScope Scope;
  for (size_t I = 0; I != C->TypeParamNames.size(); ++I)
    Scope.add(C->TypeParamNames[I], C->Def->TypeParams[I]);
  return Scope;
}

//===----------------------------------------------------------------------===//
// Type resolution
//===----------------------------------------------------------------------===//

Type *Resolver::resolveTypeRef(TypeRef *Ref, const TypeParamScope &TScope) {
  if (!Ref)
    return nullptr;
  if (Ref->Resolved)
    return Ref->Resolved;
  Type *Result = nullptr;
  switch (Ref->kind()) {
  case TypeRefKind::Named: {
    auto *N = cast<NamedTypeRef>(Ref);
    // Type parameters shadow everything.
    if (TypeParamDef *P = TScope.lookup(N->Name)) {
      if (!N->Args.empty()) {
        Diags.error(N->Loc, "type parameter cannot take type arguments");
        return nullptr;
      }
      Result = Types.typeParam(P);
      break;
    }
    auto expectArgs = [&](size_t Want) {
      if (N->Args.size() == Want)
        return true;
      Diags.error(N->Loc, "wrong number of type arguments for '" +
                              *N->Name + "'");
      return false;
    };
    if (N->Name == Names.Int) {
      if (!expectArgs(0))
        return nullptr;
      Result = Types.intTy();
    } else if (N->Name == Names.Byte) {
      if (!expectArgs(0))
        return nullptr;
      Result = Types.byteTy();
    } else if (N->Name == Names.Bool) {
      if (!expectArgs(0))
        return nullptr;
      Result = Types.boolTy();
    } else if (N->Name == Names.Void) {
      if (!expectArgs(0))
        return nullptr;
      Result = Types.voidTy();
    } else if (N->Name == Names.String) {
      if (!expectArgs(0))
        return nullptr;
      Result = Types.stringTy();
    } else if (N->Name == Names.ArrayName) {
      if (!expectArgs(1))
        return nullptr;
      Type *Elem = resolveTypeRef(N->Args[0], TScope);
      if (!Elem)
        return nullptr;
      Result = Types.array(Elem);
    } else if (ClassDecl *C = findClass(N->Name)) {
      if (!expectArgs(C->TypeParamNames.size()))
        return nullptr;
      std::vector<Type *> Args;
      Args.reserve(N->Args.size());
      for (TypeRef *A : N->Args) {
        Type *T = resolveTypeRef(A, TScope);
        if (!T)
          return nullptr;
        Args.push_back(T);
      }
      Result = Types.classType(C->Def, Args);
    } else {
      Diags.error(N->Loc, "unknown type '" + *N->Name + "'");
      return nullptr;
    }
    break;
  }
  case TypeRefKind::Tuple: {
    auto *Tu = cast<TupleTypeRef>(Ref);
    std::vector<Type *> Elems;
    Elems.reserve(Tu->Elems.size());
    for (TypeRef *E : Tu->Elems) {
      Type *T = resolveTypeRef(E, TScope);
      if (!T)
        return nullptr;
      Elems.push_back(T);
    }
    Result = Types.tuple(Elems);
    break;
  }
  case TypeRefKind::Func: {
    auto *F = cast<FuncTypeRef>(Ref);
    Type *P = resolveTypeRef(F->Param, TScope);
    Type *R = resolveTypeRef(F->Ret, TScope);
    if (!P || !R)
      return nullptr;
    Result = Types.func(P, R);
    break;
  }
  }
  Ref->Resolved = Result;
  return Result;
}

//===----------------------------------------------------------------------===//
// Declaration passes
//===----------------------------------------------------------------------===//

void Resolver::declareClasses() {
  for (ClassDecl *C : M.Classes) {
    if (ClassesByName.count(C->Name)) {
      Diags.error(C->Loc, "duplicate class '" + *C->Name + "'");
      continue;
    }
    if (C->Name == Names.ArrayName || C->Name == Names.SystemName ||
        C->Name == Names.Int || C->Name == Names.Byte ||
        C->Name == Names.Bool || C->Name == Names.Void ||
        C->Name == Names.String) {
      Diags.error(C->Loc, "class name '" + *C->Name + "' is reserved");
      continue;
    }
    ClassesByName[C->Name] = C;
    C->Def = Types.makeClass(C->Name);
    C->Def->AstDecl = C;
    for (Ident P : C->TypeParamNames)
      C->Def->TypeParams.push_back(Types.makeTypeParam(P));
  }
  for (MethodDecl *F : M.Funcs) {
    if (FuncsByName.count(F->Name) || ClassesByName.count(F->Name)) {
      Diags.error(F->Loc, "duplicate declaration '" + *F->Name + "'");
      continue;
    }
    FuncsByName[F->Name] = F;
  }
  int Index = 0;
  for (GlobalDecl *G : M.Globals) {
    if (GlobalsByName.count(G->Name) || FuncsByName.count(G->Name) ||
        ClassesByName.count(G->Name)) {
      Diags.error(G->Loc, "duplicate declaration '" + *G->Name + "'");
      continue;
    }
    GlobalsByName[G->Name] = G;
    G->Index = Index++;
  }
}

void Resolver::resolveParents() {
  for (ClassDecl *C : M.Classes) {
    if (!C->ParentRef || !C->Def)
      continue;
    TypeParamScope Scope = classScope(C);
    Type *P = resolveTypeRef(C->ParentRef, Scope);
    if (!P)
      continue;
    auto *CT = dyn_cast<ClassType>(P);
    if (!CT) {
      Diags.error(C->ParentRef->Loc, "superclass must be a class type");
      continue;
    }
    C->Def->ParentAsWritten = CT;
    C->Parent = static_cast<ClassDecl *>(CT->def()->AstDecl);
  }
  // Reject inheritance cycles and compute depths.
  for (ClassDecl *C : M.Classes) {
    if (!C->Def)
      continue;
    ClassDecl *Slow = C, *Fast = C;
    bool Cycle = false;
    while (Fast && Fast->Parent) {
      Slow = Slow->Parent;
      Fast = Fast->Parent->Parent;
      if (Slow == Fast && Slow) {
        Cycle = true;
        break;
      }
    }
    if (Cycle) {
      Diags.error(C->Loc, "inheritance cycle involving class '" + *C->Name +
                              "'");
      C->Parent = nullptr;
      C->Def->ParentAsWritten = nullptr;
    }
  }
  for (ClassDecl *C : M.Classes) {
    if (!C->Def)
      continue;
    uint32_t Depth = 0;
    for (ClassDecl *P = C->Parent; P; P = P->Parent)
      ++Depth;
    C->Def->Depth = Depth;
  }
}

void Resolver::resolveFuncSignature(MethodDecl *F,
                                    const TypeParamScope &Outer) {
  TypeParamScope Scope = Outer;
  for (Ident PName : F->TypeParamNames) {
    TypeParamDef *Def = Types.makeTypeParam(PName);
    F->TypeParams.push_back(Def);
    Scope.add(PName, Def);
  }
  for (LocalVar *P : F->Params) {
    if (!P->DeclaredType) {
      Diags.error(P->Loc, "parameter '" + *P->Name + "' needs a type");
      P->Ty = Types.voidTy();
      continue;
    }
    Type *T = resolveTypeRef(P->DeclaredType, Scope);
    P->Ty = T ? T : Types.voidTy();
  }
  if (F->RetTypeRef) {
    Type *R = resolveTypeRef(F->RetTypeRef, Scope);
    F->RetTy = R ? R : Types.voidTy();
  } else {
    F->RetTy = Types.voidTy();
  }
  std::vector<Type *> ParamTys;
  ParamTys.reserve(F->Params.size());
  for (LocalVar *P : F->Params)
    ParamTys.push_back(P->Ty);
  F->FuncTy = Types.func(Types.tuple(ParamTys), F->RetTy);
}

void Resolver::synthesizeCtor(ClassDecl *C) {
  // Implicit constructor: parent constructor parameters first (forwarded
  // via super), then the compact fields.
  auto *Ctor = Nodes.make<MethodDecl>();
  Ctor->Loc = C->Loc;
  Ctor->Name = Names.New;
  Ctor->IsCtor = true;
  Ctor->Owner = C;
  Ctor->Body = Nodes.make<BlockStmt>(C->Loc, std::vector<Stmt *>());
  if (C->Parent && C->Parent->Ctor && !C->Parent->Ctor->Params.empty()) {
    Ctor->HasSuper = true;
    for (LocalVar *PP : C->Parent->Ctor->Params) {
      auto *P = Nodes.make<LocalVar>();
      P->Loc = C->Loc;
      P->Name = PP->Name;
      P->IsMutable = false;
      // Parent param types may mention the parent's type parameters;
      // substitute this class's parent instantiation.
      TypeSubst Subst{C->Parent->Def->TypeParams,
                      cast<ClassType>(C->Def->ParentAsWritten)->args()};
      P->Ty = Types.substitute(PP->Ty, Subst);
      Ctor->Params.push_back(P);
      auto *ArgRef = Nodes.make<NameExpr>(C->Loc, P->Name,
                                          std::vector<TypeRef *>());
      Ctor->SuperArgs.push_back(ArgRef);
    }
  }
  for (FieldDecl *F : C->CompactFields) {
    auto *P = Nodes.make<LocalVar>();
    P->Loc = F->Loc;
    P->Name = F->Name;
    P->IsMutable = false;
    P->Ty = F->Ty;
    Ctor->Params.push_back(P);
    Ctor->AutoAssign.push_back(F);
  }
  C->Ctor = Ctor;
}

void Resolver::resolveCtor(ClassDecl *C) {
  MethodDecl *Ctor = C->Ctor;
  TypeParamScope Scope = classScope(C);
  for (LocalVar *P : Ctor->Params) {
    if (P->Ty)
      continue; // Synthesized params already have types.
    if (P->DeclaredType) {
      Type *T = resolveTypeRef(P->DeclaredType, Scope);
      P->Ty = T ? T : Types.voidTy();
      continue;
    }
    // Typeless parameter: binds to the same-named field and auto-assigns
    // it (paper (a4)). A parameter naming an *inherited* field only
    // borrows its type — the superclass constructor initializes it
    // (typically via an explicit super(...) argument).
    FieldDecl *Field = nullptr;
    for (FieldDecl *F : C->Fields)
      if (F->Name == P->Name)
        Field = F;
    FieldDecl *Inherited = nullptr;
    if (!Field)
      for (ClassDecl *D = C->Parent; D && !Inherited; D = D->Parent)
        for (FieldDecl *F : D->Fields)
          if (F->Name == P->Name)
            Inherited = F;
    if (!Field && !Inherited) {
      Diags.error(P->Loc, "constructor parameter '" + *P->Name +
                              "' has no type and no matching field");
      P->Ty = Types.voidTy();
      continue;
    }
    if (Inherited) {
      // Substitute the parent instantiation into the field's type.
      ClassType *Self = cast<ClassType>(Types.selfType(C->Def));
      ClassType *At = Rels.superAt(Self, Inherited->Owner->Def);
      TypeSubst Subst{Inherited->Owner->Def->TypeParams, At->args()};
      P->Ty = Types.substitute(Inherited->Ty, Subst);
      continue;
    }
    if (Field->Init)
      Diags.error(P->Loc, "field '" + *P->Name +
                              "' has both an initializer and a "
                              "constructor parameter");
    P->Ty = Field->Ty;
    Ctor->AutoAssign.push_back(Field);
  }
  Ctor->RetTy = Types.voidTy();
  std::vector<Type *> ParamTys;
  for (LocalVar *P : Ctor->Params)
    ParamTys.push_back(P->Ty);
  Ctor->FuncTy = Types.func(Types.tuple(ParamTys), Types.voidTy());
  // Validate the super clause shape (argument types are checked later).
  if (Ctor->HasSuper && !C->Parent)
    Diags.error(Ctor->Loc, "'super' used in a class without a superclass");
  if (!Ctor->HasSuper && C->Parent && C->Parent->Ctor &&
      !C->Parent->Ctor->Params.empty())
    Diags.error(Ctor->Loc,
                "constructor of '" + *C->Name +
                    "' must call super: superclass constructor has "
                    "parameters");
}

void Resolver::resolveClassSignatures(ClassDecl *C) {
  TypeParamScope Scope = classScope(C);
  for (FieldDecl *F : C->Fields) {
    if (!F->DeclaredType) {
      Diags.error(F->Loc, "field '" + *F->Name + "' needs a type");
      F->Ty = Types.voidTy();
      continue;
    }
    Type *T = resolveTypeRef(F->DeclaredType, Scope);
    F->Ty = T ? T : Types.voidTy();
  }
  for (MethodDecl *Me : C->Methods)
    resolveFuncSignature(Me, Scope);
  // Duplicate member names (Virgil has no overloading, §3.3).
  std::unordered_map<Ident, SourceLoc> Seen;
  for (FieldDecl *F : C->Fields) {
    if (Seen.count(F->Name))
      Diags.error(F->Loc, "duplicate member '" + *F->Name + "'");
    Seen[F->Name] = F->Loc;
  }
  for (MethodDecl *Me : C->Methods) {
    if (Seen.count(Me->Name))
      Diags.error(Me->Loc,
                  "duplicate member '" + *Me->Name +
                      "' (Virgil does not allow method overloading)");
    Seen[Me->Name] = Me->Loc;
  }
}

void Resolver::buildLayoutAndVTable(ClassDecl *C) {
  if (LayoutDone[C])
    return;
  LayoutDone[C] = true;
  if (C->Parent) {
    buildLayoutAndVTable(C->Parent);
    C->Layout = C->Parent->Layout;
    C->VTable = C->Parent->VTable;
  }
  for (FieldDecl *F : C->Fields) {
    // Reject shadowing of inherited fields.
    for (FieldDecl *Inherited : C->Layout)
      if (Inherited->Name == F->Name)
        Diags.error(F->Loc, "field '" + *F->Name +
                                "' shadows an inherited field");
    F->Index = (int)C->Layout.size();
    C->Layout.push_back(F);
  }
  for (MethodDecl *Me : C->Methods) {
    // Find an inherited virtual method with the same name.
    MethodDecl *Overridden = nullptr;
    for (MethodDecl *V : C->VTable)
      if (V->Name == Me->Name)
        Overridden = V;
    if (Overridden) {
      if (Me->IsPrivate || Overridden->IsPrivate) {
        Diags.error(Me->Loc, "cannot override a private method");
        continue;
      }
      if (!Me->TypeParams.empty() || !Overridden->TypeParams.empty()) {
        Diags.error(Me->Loc,
                    "parameterized methods cannot take part in overriding");
        continue;
      }
      // Override compatibility: the child's collapsed function type,
      // with the parent's type arguments substituted into the parent
      // signature, must be a subtype (contravariant params, covariant
      // return). This admits the paper's (p14) tuple-vs-scalars
      // override, whose collapsed types coincide.
      Type *ParentFuncTy = Overridden->FuncTy;
      if (C->Def->ParentAsWritten) {
        // Walk up to the override's owner accumulating substitutions.
        ClassType *Self = cast<ClassType>(Types.selfType(C->Def));
        ClassType *At = Rels.superAt(Self, Overridden->Owner->Def);
        assert(At && "override owner not on superclass chain");
        TypeSubst Subst{Overridden->Owner->Def->TypeParams, At->args()};
        ParentFuncTy = Types.substitute(ParentFuncTy, Subst);
      }
      if (!Rels.isSubtype(Me->FuncTy, ParentFuncTy)) {
        Diags.error(Me->Loc, "override of '" + *Me->Name +
                                 "' has incompatible type " +
                                 Me->FuncTy->toString() + " (expected " +
                                 ParentFuncTy->toString() + ")");
        continue;
      }
      Me->Slot = Overridden->Slot;
      Me->Overridden = Overridden;
      C->VTable[Me->Slot] = Me;
      continue;
    }
    if (Me->IsPrivate || !Me->TypeParams.empty())
      continue; // Non-virtual: statically dispatched.
    Me->Slot = (int)C->VTable.size();
    C->VTable.push_back(Me);
  }
}

void Resolver::resolveGlobals() {
  for (GlobalDecl *G : M.Globals) {
    if (G->DeclaredType) {
      TypeParamScope Empty;
      Type *T = resolveTypeRef(G->DeclaredType, Empty);
      G->Ty = T ? T : Types.voidTy();
    }
    if (!G->DeclaredType && !G->Init)
      Diags.error(G->Loc, "global '" + *G->Name +
                              "' needs a type or an initializer");
  }
  TypeParamScope Empty;
  for (MethodDecl *F : M.Funcs)
    resolveFuncSignature(F, Empty);
}

bool Resolver::run() {
  declareClasses();
  if (Diags.hasErrors())
    return false;
  resolveParents();
  if (Diags.hasErrors())
    return false;
  for (ClassDecl *C : M.Classes)
    resolveClassSignatures(C);
  // Constructors: synthesize or resolve, in hierarchy order so parent
  // constructors exist before children forward to them.
  std::vector<ClassDecl *> Order(M.Classes.begin(), M.Classes.end());
  std::sort(Order.begin(), Order.end(),
            [](ClassDecl *A, ClassDecl *B) {
              return A->Def->Depth < B->Def->Depth;
            });
  for (ClassDecl *C : Order) {
    if (C->Ctor)
      resolveCtor(C);
    else
      synthesizeCtor(C);
  }
  // Explicit compact-field constructors: the compact fields are always
  // auto-assigned even with an explicit constructor? No: an explicit
  // constructor replaces the synthesized one, but compact fields behave
  // like typeless parameters if named. Nothing extra to do here.
  for (ClassDecl *C : M.Classes)
    buildLayoutAndVTable(C);
  resolveGlobals();
  return !Diags.hasErrors();
}
