//===- sema/Inference.cpp -------------------------------------------------===//

#include "sema/Inference.h"

#include <cassert>

using namespace virgil;

int TypeUnifier::indexOf(TypeParamDef *Def) const {
  for (size_t I = 0, E = Vars.size(); I != E; ++I)
    if (Vars[I] == Def)
      return (int)I;
  return -1;
}

void TypeUnifier::bind(int Index, Type *T) {
  // Polarity decides how constraints combine (paper §3.6: inference
  // must let `apply(b, g)` pick A = Bat from the invariant List<A>
  // position while the contravariant `f: A -> void` position only
  // imposes the upper bound Animal):
  //  * Invariant positions pin the variable exactly;
  //  * covariant positions are lower bounds, merged with the least
  //    upper bound;
  //  * contravariant positions are upper bounds, merged by keeping the
  //    most specific one we can identify.
  Binding &B = Bindings[Index];
  if (WeakMode) {
    if (!B.Exact && !B.Lower && !B.Upper)
      B.Lower = T;
    return;
  }
  switch (Polarity) {
  case Variance::Invariant:
    if (!B.Exact)
      B.Exact = T;
    // A conflicting second exact binding is left for the
    // post-inference assignability check to report.
    return;
  case Variance::Covariant:
    if (!B.Lower) {
      B.Lower = T;
    } else if (B.Lower != T) {
      if (Type *Ub = Rels.upperBound(B.Lower, T))
        B.Lower = Ub;
    }
    return;
  case Variance::Contravariant:
    if (!B.Upper) {
      B.Upper = T;
    } else if (B.Upper != T) {
      if (Rels.isSubtype(T, B.Upper))
        B.Upper = T;
    }
    return;
  }
}

void TypeUnifier::collect(Type *Declared, Type *Actual) {
  if (!Declared->isPoly() || !Actual)
    return;
  if (auto *TP = dyn_cast<TypeParamType>(Declared)) {
    int Index = indexOf(TP->def());
    if (Index >= 0)
      bind(Index, Actual);
    return;
  }
  if (Declared->kind() != Actual->kind()) {
    if (Declared->kind() == TypeKind::Class &&
        Actual->kind() == TypeKind::Class) {
      // Handled below.
    } else {
      return; // No structural information.
    }
  }
  switch (Declared->kind()) {
  case TypeKind::Prim:
  case TypeKind::TypeParam:
    return;
  case TypeKind::Array: {
    // Array elements are invariant.
    Variance Saved = Polarity;
    Polarity = Variance::Invariant;
    collect(cast<ArrayType>(Declared)->elem(),
            cast<ArrayType>(Actual)->elem());
    Polarity = Saved;
    return;
  }
  case TypeKind::Tuple: {
    auto *TD = cast<TupleType>(Declared);
    auto *TA = cast<TupleType>(Actual);
    size_t N = std::min(TD->size(), TA->size());
    for (size_t I = 0; I != N; ++I)
      collect(TD->elems()[I], TA->elems()[I]);
    return;
  }
  case TypeKind::Function: {
    auto *FD = cast<FuncType>(Declared);
    auto *FA = cast<FuncType>(Actual);
    Variance Saved = Polarity;
    // The parameter position flips polarity.
    Polarity = Saved == Variance::Covariant     ? Variance::Contravariant
               : Saved == Variance::Contravariant ? Variance::Covariant
                                                  : Variance::Invariant;
    collect(FD->param(), FA->param());
    Polarity = Saved;
    collect(FD->ret(), FA->ret());
    return;
  }
  case TypeKind::Class: {
    auto *CD = cast<ClassType>(Declared);
    auto *CA = cast<ClassType>(Actual);
    if (CD->def() != CA->def()) {
      ClassType *At = Rels.superAt(CA, CD->def());
      if (!At)
        return;
      CA = At;
    }
    // Class type arguments are invariant.
    Variance Saved = Polarity;
    Polarity = Variance::Invariant;
    for (size_t I = 0, E = CD->args().size(); I != E; ++I)
      collect(CD->args()[I], CA->args()[I]);
    Polarity = Saved;
    return;
  }
  }
}

void TypeUnifier::collectWeak(Type *Declared, Type *Actual) {
  WeakMode = true;
  collect(Declared, Actual);
  WeakMode = false;
}

Type *TypeUnifier::resolved(size_t Index) const {
  const Binding &B = Bindings[Index];
  if (B.Exact)
    return B.Exact;
  if (B.Lower)
    return B.Lower;
  return B.Upper;
}

bool TypeUnifier::allBound() const {
  for (size_t I = 0; I != Bindings.size(); ++I)
    if (!resolved(I))
      return false;
  return true;
}

TypeParamDef *TypeUnifier::firstUnbound() const {
  for (size_t I = 0, E = Bindings.size(); I != E; ++I)
    if (!resolved(I))
      return Vars[I];
  return nullptr;
}

TypeSubst TypeUnifier::subst() const {
  assert(allBound() && "substitution requested with unbound variables");
  TypeSubst S;
  S.Params = Vars;
  for (size_t I = 0; I != Bindings.size(); ++I)
    S.Args.push_back(resolved(I));
  return S;
}

Type *TypeUnifier::bindingFor(TypeParamDef *Def) const {
  int Index = indexOf(Def);
  return Index < 0 ? nullptr : resolved((size_t)Index);
}
