//===- sema/TypeChecker.cpp -----------------------------------------------===//

#include "sema/TypeChecker.h"

#include "sema/PolyRecursion.h"

#include <cassert>

using namespace virgil;

TypeChecker::TypeChecker(Resolver &R)
    : R(R), Types(R.Types), Rels(R.Rels), Diags(R.Diags) {}

void TypeChecker::error(SourceLoc Loc, std::string Message) {
  Diags.error(Loc, std::move(Message));
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

static bool isNullLit(const Expr *E) {
  return E->kind() == ExprKind::NullLit;
}

/// Can a value of this type be null (class, array, function)?
static bool isNullable(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Class:
  case TypeKind::Array:
  case TypeKind::Function:
    return true;
  default:
    return false;
  }
}

Type *TypeChecker::resolveNameAsType(NameExpr *N) {
  // Locals and globals shadow type names.
  if (Locals.lookup(N->Name) || R.findGlobal(N->Name) || R.findFunc(N->Name))
    return nullptr;
  // A type parameter in scope.
  if (TypeParamDef *P = TScope.lookup(N->Name)) {
    if (!N->TypeArgs.empty())
      return nullptr;
    return Types.typeParam(P);
  }
  auto resolveArgs = [&](std::vector<Type *> &Out) {
    for (TypeRef *Ref : N->TypeArgs) {
      Type *T = R.resolveTypeRef(Ref, TScope);
      if (!T)
        return false;
      Out.push_back(T);
    }
    return true;
  };
  if (N->Name == R.Names.Int || N->Name == R.Names.Byte ||
      N->Name == R.Names.Bool || N->Name == R.Names.Void ||
      N->Name == R.Names.String) {
    if (!N->TypeArgs.empty())
      return nullptr;
    if (N->Name == R.Names.Int)
      return Types.intTy();
    if (N->Name == R.Names.Byte)
      return Types.byteTy();
    if (N->Name == R.Names.Bool)
      return Types.boolTy();
    if (N->Name == R.Names.Void)
      return Types.voidTy();
    return Types.stringTy();
  }
  if (N->Name == R.Names.ArrayName) {
    std::vector<Type *> Args;
    if (!resolveArgs(Args) || Args.size() != 1)
      return nullptr;
    return Types.array(Args[0]);
  }
  if (ClassDecl *C = R.findClass(N->Name)) {
    std::vector<Type *> Args;
    if (!resolveArgs(Args))
      return nullptr;
    if (Args.empty() && !C->TypeParamNames.empty())
      return Types.selfType(C->Def); // Open; used for Ctor inference.
    if (Args.size() != C->TypeParamNames.size())
      return nullptr;
    return Types.classType(C->Def, Args);
  }
  return nullptr;
}

Type *TypeChecker::resolveExprAsType(Expr *E) {
  if (auto *N = dyn_cast<NameExpr>(E))
    return resolveNameAsType(N);
  if (auto *TL = dyn_cast<TypeLitExpr>(E))
    return R.resolveTypeRef(TL->Ref, TScope);
  if (auto *T = dyn_cast<TupleLitExpr>(E)) {
    std::vector<Type *> Elems;
    for (Expr *Elem : T->Elems) {
      Type *ET = resolveExprAsType(Elem);
      if (!ET)
        return nullptr;
      Elems.push_back(ET);
    }
    return Types.tuple(Elems);
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Callable resolution
//===----------------------------------------------------------------------===//

int TypeChecker::resolveCallable(Expr *Callee, Callable &Out) {
  if (auto *N = dyn_cast<NameExpr>(Callee)) {
    if (Locals.lookup(N->Name))
      return 0; // A local of (hopefully) function type.
    // Implicit-this member method.
    if (CurClass) {
      FieldDecl *F = nullptr;
      MethodDecl *Me = nullptr;
      ClassDecl *Owner = nullptr;
      if (R.lookupMember(CurClass, N->Name, CurClass, F, Me, Owner)) {
        if (F)
          return 0; // A field; if function-typed the call is indirect.
        if (Me->IsCtor)
          return 0;
        Out.Kind = RefKind::MethodBound;
        Out.Method = Me;
        Out.Class = Owner;
        Out.BaseType = Types.selfType(CurClass->Def);
        Out.Site = N;
        for (TypeRef *Ref : N->TypeArgs) {
          Type *T = R.resolveTypeRef(Ref, TScope);
          if (!T)
            return -1;
          Out.MethodArgs.push_back(T);
        }
        Out.MethodArgsExplicit = !N->TypeArgs.empty();
        return 1;
      }
    }
    if (MethodDecl *Fn = R.findFunc(N->Name)) {
      Out.Kind = RefKind::Func;
      Out.Method = Fn;
      Out.Site = N;
      for (TypeRef *Ref : N->TypeArgs) {
        Type *T = R.resolveTypeRef(Ref, TScope);
        if (!T)
          return -1;
        Out.MethodArgs.push_back(T);
      }
      Out.MethodArgsExplicit = !N->TypeArgs.empty();
      return 1;
    }
    if (R.findGlobal(N->Name))
      return 0;
    if (resolveNameAsType(N)) {
      error(N->Loc, "type '" + *N->Name + "' is not callable");
      return -1;
    }
    return 0; // checkExpr will report the unknown name.
  }

  auto *M = dyn_cast<MemberExpr>(Callee);
  if (!M)
    return 0;

  // Resolve explicit type arguments on the member, if any.
  std::vector<Type *> MemberTypeArgs;
  for (TypeRef *Ref : M->TypeArgs) {
    Type *T = R.resolveTypeRef(Ref, TScope);
    if (!T)
      return -1;
    MemberTypeArgs.push_back(T);
  }

  // Case 1: the base is a type (or System).
  if (auto *BaseName = dyn_cast<NameExpr>(M->Base)) {
    if (BaseName->Name == R.Names.SystemName &&
        !Locals.lookup(BaseName->Name)) {
      if (M->Sel != MemberSel::Name) {
        error(M->Loc, "unknown System member");
        return -1;
      }
      Out.Kind = RefKind::Builtin;
      Out.Site = M;
      if (M->Name == R.Names.Puts)
        Out.Builtin = BuiltinKind::Puts;
      else if (M->Name == R.Names.Puti)
        Out.Builtin = BuiltinKind::Puti;
      else if (M->Name == R.Names.Putc)
        Out.Builtin = BuiltinKind::Putc;
      else if (M->Name == R.Names.Ln)
        Out.Builtin = BuiltinKind::Ln;
      else if (M->Name == R.Names.Ticks)
        Out.Builtin = BuiltinKind::Ticks;
      else if (M->Name == R.Names.Error)
        Out.Builtin = BuiltinKind::Error;
      else {
        error(M->Loc, "unknown System member '" + *M->Name + "'");
        return -1;
      }
      return 1;
    }
  }
  if (Type *BaseTy = resolveExprAsType(M->Base)) {
    {
      if (auto *BaseName = dyn_cast<NameExpr>(M->Base)) {
        BaseName->Ref.Kind = RefKind::TypeName;
        BaseName->Ty = nullptr;
      }
      // Operator member of a type: T.==, T.!=, T.!, T.?, int.+ ...
      if (M->Sel == MemberSel::Op) {
        Out.Kind = RefKind::OpFunc;
        Out.Op = M->Op;
        Out.BaseType = BaseTy;
        Out.MethodArgs = std::move(MemberTypeArgs);
        Out.MethodArgsExplicit = !M->TypeArgs.empty();
        Out.Site = M;
        // Arithmetic/comparison operators are only defined on int (and
        // comparisons on byte).
        switch (M->Op) {
        case OpSel::Add:
        case OpSel::Sub:
        case OpSel::Mul:
        case OpSel::Div:
        case OpSel::Mod:
          if (!BaseTy->isInt()) {
            error(M->Loc, "operator is only defined on int");
            return -1;
          }
          break;
        case OpSel::Lt:
        case OpSel::Le:
        case OpSel::Gt:
        case OpSel::Ge:
          if (!BaseTy->isInt() && !BaseTy->isByte()) {
            error(M->Loc, "comparison is only defined on int and byte");
            return -1;
          }
          break;
        default:
          break;
        }
        return 1;
      }
      if (M->Sel != MemberSel::Name) {
        error(M->Loc, "a type has no tuple elements");
        return -1;
      }
      // Array<T>.new.
      if (auto *AT = dyn_cast<ArrayType>(BaseTy)) {
        if (M->Name == R.Names.New) {
          Out.Kind = RefKind::ArrayNew;
          Out.BaseType = AT;
          Out.Site = M;
          return 1;
        }
        error(M->Loc, "unknown array member '" + *M->Name + "'");
        return -1;
      }
      auto *CT = dyn_cast<ClassType>(BaseTy);
      if (!CT) {
        error(M->Loc, "type " + BaseTy->toString() + " has no member '" +
                          *M->Name + "'");
        return -1;
      }
      ClassDecl *C = static_cast<ClassDecl *>(CT->def()->AstDecl);
      auto *BaseName = dyn_cast<NameExpr>(M->Base);
      bool Explicit =
          (BaseName && !BaseName->TypeArgs.empty()) || !C->Def->isGeneric();
      if (M->Name == R.Names.New) {
        Out.Kind = RefKind::Ctor;
        Out.Method = C->Ctor;
        Out.Class = C;
        Out.ClassArgs.assign(CT->args().begin(), CT->args().end());
        Out.ClassArgsExplicit = Explicit;
        Out.Site = M;
        if (!MemberTypeArgs.empty()) {
          error(M->Loc, "constructors take class type arguments "
                        "(write C<T>.new)");
          return -1;
        }
        // Reject instantiating classes with abstract methods.
        for (MethodDecl *V : C->VTable)
          if (!V->Body) {
            error(M->Loc, "cannot instantiate '" + *C->Name +
                              "': method '" + *V->Name + "' is abstract");
            return -1;
          }
        return 1;
      }
      FieldDecl *F = nullptr;
      MethodDecl *Me = nullptr;
      ClassDecl *Owner = nullptr;
      if (!R.lookupMember(C, M->Name, CurClass, F, Me, Owner)) {
        error(M->Loc, "class '" + *C->Name + "' has no member '" +
                          *M->Name + "'");
        return -1;
      }
      if (F) {
        error(M->Loc, "field '" + *M->Name +
                          "' cannot be used without a receiver");
        return -1;
      }
      Out.Kind = RefKind::MethodUnbound;
      Out.Method = Me;
      Out.Class = C;
      Out.ClassArgs.assign(CT->args().begin(), CT->args().end());
      Out.ClassArgsExplicit = Explicit;
      Out.MethodArgs = std::move(MemberTypeArgs);
      Out.MethodArgsExplicit = !M->TypeArgs.empty();
      Out.Site = M;
      return 1;
    }
  }

  // Case 2: the base is an expression.
  Type *BaseTy = checkExpr(M->Base, nullptr);
  if (!BaseTy)
    return -1;
  if (M->Sel == MemberSel::Op) {
    error(M->Loc, "operators are members of types, not values");
    return -1;
  }
  if (M->Sel == MemberSel::TupleIndex)
    return 0; // Tuple element; any call through it is indirect.
  auto *CT = dyn_cast<ClassType>(BaseTy);
  if (!CT)
    return 0; // Array length etc.; calls are indirect.
  ClassDecl *C = static_cast<ClassDecl *>(CT->def()->AstDecl);
  FieldDecl *F = nullptr;
  MethodDecl *Me = nullptr;
  ClassDecl *Owner = nullptr;
  if (!R.lookupMember(C, M->Name, CurClass, F, Me, Owner)) {
    error(M->Loc, "class '" + *C->Name + "' has no member '" + *M->Name +
                      "'");
    return -1;
  }
  if (F)
    return 0; // Field access; calls through it are indirect.
  Out.Kind = RefKind::MethodBound;
  Out.Method = Me;
  Out.Class = Owner;
  Out.BaseType = CT;
  Out.MethodArgs = std::move(MemberTypeArgs);
  Out.MethodArgsExplicit = !M->TypeArgs.empty();
  Out.Site = M;
  return 1;
}

//===----------------------------------------------------------------------===//
// Signatures of callables
//===----------------------------------------------------------------------===//

void TypeChecker::openSignature(const Callable &C, std::vector<Type *> &Params,
                                Type *&Ret) {
  Params.clear();
  switch (C.Kind) {
  case RefKind::Func: {
    for (LocalVar *P : C.Method->Params)
      Params.push_back(P->Ty);
    Ret = C.Method->RetTy;
    return;
  }
  case RefKind::MethodBound: {
    // Substitute the receiver's class instantiation into the owner's
    // signature, leaving only the method's own params open.
    auto *Recv = cast<ClassType>(C.BaseType);
    ClassType *At = Rels.superAt(Recv, C.Method->Owner->Def);
    assert(At && "method owner not on receiver chain");
    TypeSubst Subst{C.Method->Owner->Def->TypeParams, At->args()};
    for (LocalVar *P : C.Method->Params)
      Params.push_back(Types.substitute(P->Ty, Subst));
    Ret = Types.substitute(C.Method->RetTy, Subst);
    return;
  }
  case RefKind::MethodUnbound: {
    TypeSubst Subst{C.Class->Def->TypeParams, C.ClassArgs};
    Params.push_back(Types.classType(C.Class->Def, C.ClassArgs));
    for (LocalVar *P : C.Method->Params)
      Params.push_back(Types.substitute(P->Ty, Subst));
    Ret = Types.substitute(C.Method->RetTy, Subst);
    return;
  }
  case RefKind::Ctor: {
    TypeSubst Subst{C.Class->Def->TypeParams, C.ClassArgs};
    for (LocalVar *P : C.Method->Params)
      Params.push_back(Types.substitute(P->Ty, Subst));
    Ret = Types.classType(C.Class->Def, C.ClassArgs);
    return;
  }
  case RefKind::ArrayNew:
    Params.push_back(Types.intTy());
    Ret = C.BaseType;
    return;
  case RefKind::OpFunc:
    switch (C.Op) {
    case OpSel::Eq:
    case OpSel::Ne:
      Params.push_back(C.BaseType);
      Params.push_back(C.BaseType);
      Ret = Types.boolTy();
      return;
    case OpSel::Add:
    case OpSel::Sub:
    case OpSel::Mul:
    case OpSel::Div:
    case OpSel::Mod:
      Params.push_back(Types.intTy());
      Params.push_back(Types.intTy());
      Ret = Types.intTy();
      return;
    case OpSel::Lt:
    case OpSel::Le:
    case OpSel::Gt:
    case OpSel::Ge:
      Params.push_back(C.BaseType);
      Params.push_back(C.BaseType);
      Ret = Types.boolTy();
      return;
    case OpSel::Cast:
      // Handled specially; the "from" type is the single method arg.
      assert(!C.MethodArgs.empty() && "cast signature needs a from-type");
      Params.push_back(C.MethodArgs[0]);
      Ret = C.BaseType;
      return;
    case OpSel::Query:
      assert(!C.MethodArgs.empty() && "query signature needs a from-type");
      Params.push_back(C.MethodArgs[0]);
      Ret = Types.boolTy();
      return;
    }
    return;
  case RefKind::Builtin:
    switch (C.Builtin) {
    case BuiltinKind::Puts:
      Params.push_back(Types.stringTy());
      Ret = Types.voidTy();
      return;
    case BuiltinKind::Puti:
      Params.push_back(Types.intTy());
      Ret = Types.voidTy();
      return;
    case BuiltinKind::Putc:
      Params.push_back(Types.byteTy());
      Ret = Types.voidTy();
      return;
    case BuiltinKind::Ln:
      Ret = Types.voidTy();
      return;
    case BuiltinKind::Ticks:
      Ret = Types.intTy();
      return;
    case BuiltinKind::Error:
      Params.push_back(Types.stringTy());
      Ret = Types.voidTy();
      return;
    }
    return;
  default:
    assert(false && "not a callable kind");
    Ret = Types.voidTy();
  }
}

std::vector<TypeParamDef *> TypeChecker::openVars(const Callable &C) {
  std::vector<TypeParamDef *> Vars;
  if ((C.Kind == RefKind::Ctor || C.Kind == RefKind::MethodUnbound) &&
      !C.ClassArgsExplicit)
    for (TypeParamDef *P : C.Class->Def->TypeParams)
      Vars.push_back(P);
  if (C.Method && !C.MethodArgsExplicit)
    for (TypeParamDef *P : C.Method->TypeParams)
      Vars.push_back(P);
  return Vars;
}

TypeSubst TypeChecker::explicitSubst(const Callable &C) {
  TypeSubst Subst;
  if (C.Method && C.MethodArgsExplicit) {
    if (C.MethodArgs.size() != C.Method->TypeParams.size())
      return Subst; // Arity mismatch reported by callers.
    for (size_t I = 0; I != C.MethodArgs.size(); ++I) {
      Subst.Params.push_back(C.Method->TypeParams[I]);
      Subst.Args.push_back(C.MethodArgs[I]);
    }
  }
  return Subst;
}

void TypeChecker::commitRef(Callable &C, const TypeSubst &Subst) {
  RefInfo Ref;
  Ref.Kind = C.Kind;
  Ref.Decl = C.Method;
  Ref.BaseType = C.BaseType;
  Ref.Index = (int)C.Op;
  if (C.Kind == RefKind::Builtin)
    Ref.Index = (int)C.Builtin;
  // Record the full, final type-argument vector: class args first.
  if (C.Kind == RefKind::Ctor || C.Kind == RefKind::MethodUnbound) {
    for (Type *A : C.ClassArgs)
      Ref.TypeArgs.push_back(Types.substitute(A, Subst));
  }
  if (C.Method) {
    for (size_t I = 0; I != C.Method->TypeParams.size(); ++I) {
      Type *A = C.MethodArgsExplicit
                    ? C.MethodArgs[I]
                    : Subst.lookup(C.Method->TypeParams[I]);
      assert(A && "missing method type argument");
      Ref.TypeArgs.push_back(A);
    }
  }
  if (C.Kind == RefKind::OpFunc) {
    Ref.BaseType = Types.substitute(C.BaseType, Subst);
    for (Type *A : C.MethodArgs)
      Ref.TypeArgs.push_back(Types.substitute(A, Subst));
  }
  if (C.Kind == RefKind::MethodBound)
    Ref.BaseType = C.BaseType;
  if (C.Kind == RefKind::ArrayNew)
    Ref.BaseType = C.BaseType;
  if (auto *N = dyn_cast<NameExpr>(C.Site))
    N->Ref = std::move(Ref);
  else
    cast<MemberExpr>(C.Site)->Ref = std::move(Ref);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Type *TypeChecker::checkDirectCall(CallExpr *E, Callable &C,
                                   Type *Expected) {
  // Casts and queries: the "from" type parameter is the argument's
  // static type (paper b12-b15).
  if (C.Kind == RefKind::OpFunc &&
      (C.Op == OpSel::Cast || C.Op == OpSel::Query)) {
    if (!C.MethodArgs.empty()) {
      // Explicit from-type, e.g. A.!<B>(x): fall through to the general
      // path with a fixed signature.
    } else {
      if (E->Args.size() != 1) {
        error(E->Loc, "type cast/query takes exactly one argument");
        return nullptr;
      }
      Type *From = checkExpr(E->Args[0], nullptr);
      if (!From)
        return nullptr;
      C.MethodArgs.push_back(From);
      C.MethodArgsExplicit = true;
      Type *To = C.BaseType;
      TypeRel Rel = C.Op == OpSel::Cast ? Rels.castRel(From, To)
                                        : Rels.queryRel(From, To);
      if (Rel == TypeRel::False && !From->isPoly() && !To->isPoly()) {
        bool CrossKind = From->kind() != To->kind();
        bool UnrelatedClasses =
            From->kind() == TypeKind::Class && To->kind() == TypeKind::Class &&
            !Rels.inheritsFrom(cast<ClassType>(From)->def(),
                               cast<ClassType>(To)->def()) &&
            !Rels.inheritsFrom(cast<ClassType>(To)->def(),
                               cast<ClassType>(From)->def());
        // The compiler rejects statically impossible casts; impossible
        // *queries* between related constructors are permitted and
        // evaluate to false (paper d13-d14).
        if (C.Op == OpSel::Cast || CrossKind || UnrelatedClasses) {
          error(E->Loc, (C.Op == OpSel::Cast ? "cast from " : "query of ") +
                            From->toString() + " to " + To->toString() +
                            " can never succeed");
          return nullptr;
        }
      }
      TypeSubst Empty;
      commitRef(C, Empty);
      E->Ty = C.Op == OpSel::Cast ? To : Types.boolTy();
      return E->Ty;
    }
  }

  std::vector<TypeParamDef *> Vars = openVars(C);
  // Validate explicit method-arg arity.
  if (C.Method && C.MethodArgsExplicit &&
      C.MethodArgs.size() != C.Method->TypeParams.size()) {
    error(E->Loc, "wrong number of type arguments for '" + *C.Method->Name +
                      "'");
    return nullptr;
  }
  std::vector<Type *> Params;
  Type *Ret = nullptr;
  openSignature(C, Params, Ret);
  TypeSubst ESubst = explicitSubst(C);
  if (!ESubst.empty()) {
    for (Type *&P : Params)
      P = Types.substitute(P, ESubst);
    Ret = Types.substitute(Ret, ESubst);
  }

  // Shape adaptation between the syntactic argument list and the
  // declared parameter list (paper §4.1: both are the same collapsed
  // function type).
  enum class Shape { Direct, Collapse, Spread } Shape = Shape::Direct;
  size_t N = Params.size();
  if (E->Args.size() == N) {
    Shape = Shape::Direct;
  } else if (N == 1) {
    Shape = Shape::Collapse; // Args form a tuple for one tuple param.
  } else if (E->Args.size() == 1) {
    Shape = Shape::Spread; // One tuple arg feeds many params.
  } else {
    error(E->Loc, "wrong number of arguments: expected " +
                      std::to_string(N) + ", got " +
                      std::to_string(E->Args.size()));
    return nullptr;
  }

  TypeUnifier Unifier(Types, Rels, Vars);
  std::vector<Type *> ArgTys(E->Args.size(), nullptr);
  std::vector<bool> Deferred(E->Args.size(), false);

  auto checkArg = [&](size_t I, Type *DeclParam) -> bool {
    if (isNullLit(E->Args[I]) && DeclParam && DeclParam->isPoly()) {
      Deferred[I] = true; // Null gives no inference information.
      return true;
    }
    Type *ExpectedArg =
        DeclParam && !DeclParam->isPoly() ? DeclParam : nullptr;
    Type *T = checkExpr(E->Args[I], ExpectedArg);
    if (!T)
      return false;
    ArgTys[I] = T;
    if (DeclParam)
      Unifier.collect(DeclParam, T);
    return true;
  };

  switch (Shape) {
  case Shape::Direct:
    for (size_t I = 0; I != E->Args.size(); ++I)
      if (!checkArg(I, Params[I]))
        return nullptr;
    break;
  case Shape::Collapse: {
    // Decompose the single declared (tuple) parameter if possible.
    Type *P0 = Params[0];
    const TupleType *PT = dyn_cast<TupleType>(P0);
    if (PT && PT->size() == E->Args.size()) {
      for (size_t I = 0; I != E->Args.size(); ++I)
        if (!checkArg(I, PT->elems()[I]))
          return nullptr;
    } else if (E->Args.empty()) {
      if (!P0->isVoid() && !P0->isPoly()) {
        error(E->Loc, "expected an argument of type " + P0->toString());
        return nullptr;
      }
      if (P0->isPoly())
        Unifier.collect(P0, Types.voidTy());
    } else {
      // Check all args, then unify the whole tuple.
      std::vector<Type *> Elems;
      for (size_t I = 0; I != E->Args.size(); ++I) {
        if (!checkArg(I, nullptr))
          return nullptr;
        Elems.push_back(ArgTys[I]);
      }
      Unifier.collect(P0, Types.tuple(Elems));
    }
    break;
  }
  case Shape::Spread: {
    Type *ExpectedTuple = nullptr;
    bool AllConcrete = true;
    for (Type *P : Params)
      AllConcrete &= !P->isPoly();
    if (AllConcrete)
      ExpectedTuple = Types.tuple(Params);
    Type *T = checkExpr(E->Args[0], ExpectedTuple);
    if (!T)
      return nullptr;
    ArgTys[0] = T;
    auto *TT = dyn_cast<TupleType>(T);
    if (!TT || TT->size() != N) {
      error(E->Loc, "cannot spread a value of type " + T->toString() +
                        " over " + std::to_string(N) + " parameters");
      return nullptr;
    }
    for (size_t I = 0; I != N; ++I)
      Unifier.collect(Params[I], TT->elems()[I]);
    break;
  }
  }

  // Use the expected type as a weak hint for the return type.
  if (Expected && !Vars.empty())
    Unifier.collectWeak(Ret, Expected);

  TypeSubst Inferred;
  if (!Vars.empty()) {
    if (!Unifier.allBound()) {
      error(E->Loc, "cannot infer type argument '" +
                        *Unifier.firstUnbound()->Name +
                        "'; supply explicit type arguments");
      return nullptr;
    }
    Inferred = Unifier.subst();
    for (Type *&P : Params)
      P = Types.substitute(P, Inferred);
    Ret = Types.substitute(Ret, Inferred);
  }

  // Validate assignability (and check deferred nulls with their now
  // concrete expected types).
  auto validate = [&](size_t I, Type *Param) -> bool {
    if (Deferred[I]) {
      Type *T = checkExpr(E->Args[I], Param);
      if (!T)
        return false;
      ArgTys[I] = T;
    }
    Type *T = ArgTys[I];
    if (Shape == Shape::Spread)
      return true; // Validated below as a whole.
    if (!Rels.isAssignable(T, Param)) {
      error(E->Args[I]->Loc, "argument of type " + T->toString() +
                                 " is not assignable to parameter of "
                                 "type " +
                                 Param->toString());
      return false;
    }
    return true;
  };
  switch (Shape) {
  case Shape::Direct:
    for (size_t I = 0; I != E->Args.size(); ++I)
      if (!validate(I, Params[I]))
        return nullptr;
    break;
  case Shape::Collapse: {
    const TupleType *PT = dyn_cast<TupleType>(Params[0]);
    if (PT && PT->size() == E->Args.size()) {
      for (size_t I = 0; I != E->Args.size(); ++I)
        if (!validate(I, PT->elems()[I]))
          return nullptr;
    } else {
      std::vector<Type *> Elems;
      for (size_t I = 0; I != E->Args.size(); ++I) {
        if (Deferred[I]) {
          error(E->Args[I]->Loc, "cannot infer the type of null here");
          return nullptr;
        }
        Elems.push_back(ArgTys[I]);
      }
      Type *Whole = Types.tuple(Elems);
      if (!Rels.isAssignable(Whole, Params[0])) {
        error(E->Loc, "argument of type " + Whole->toString() +
                          " is not assignable to parameter of type " +
                          Params[0]->toString());
        return nullptr;
      }
    }
    break;
  }
  case Shape::Spread: {
    Type *Whole = Types.tuple(Params);
    if (!Rels.isAssignable(ArgTys[0], Whole)) {
      error(E->Loc, "argument of type " + ArgTys[0]->toString() +
                        " is not assignable to parameters of type " +
                        Whole->toString());
      return nullptr;
    }
    break;
  }
  }

  // Finalize class args for Ctor/Unbound inference.
  if ((C.Kind == RefKind::Ctor || C.Kind == RefKind::MethodUnbound) &&
      !C.ClassArgsExplicit) {
    for (Type *&A : C.ClassArgs)
      A = Types.substitute(A, Inferred);
  }
  commitRef(C, Inferred);
  E->Ty = Ret;
  return Ret;
}

Type *TypeChecker::checkIndirectCall(CallExpr *E, Type *CalleeTy) {
  auto *FT = dyn_cast<FuncType>(CalleeTy);
  if (!FT) {
    error(E->Loc, "value of type " + CalleeTy->toString() +
                      " is not callable");
    return nullptr;
  }
  Type *Param = FT->param();
  if (E->Args.size() == 1) {
    Type *T = checkExpr(E->Args[0], Param);
    if (!T)
      return nullptr;
    if (!Rels.isAssignable(T, Param)) {
      error(E->Args[0]->Loc, "argument of type " + T->toString() +
                                 " is not assignable to parameter of "
                                 "type " +
                                 Param->toString());
      return nullptr;
    }
  } else if (E->Args.empty()) {
    if (!Param->isVoid()) {
      error(E->Loc, "expected an argument of type " + Param->toString());
      return nullptr;
    }
  } else {
    auto *PT = dyn_cast<TupleType>(Param);
    if (!PT || PT->size() != E->Args.size()) {
      error(E->Loc, "wrong number of arguments for function of type " +
                        CalleeTy->toString());
      return nullptr;
    }
    for (size_t I = 0; I != E->Args.size(); ++I) {
      Type *T = checkExpr(E->Args[I], PT->elems()[I]);
      if (!T)
        return nullptr;
      if (!Rels.isAssignable(T, PT->elems()[I])) {
        error(E->Args[I]->Loc, "argument of type " + T->toString() +
                                   " is not assignable to parameter of "
                                   "type " +
                                   PT->elems()[I]->toString());
        return nullptr;
      }
    }
  }
  E->Ty = FT->ret();
  return E->Ty;
}

Type *TypeChecker::checkCall(CallExpr *E, Type *Expected) {
  Callable C;
  int R = resolveCallable(E->Callee, C);
  if (R < 0)
    return nullptr;
  if (R > 0)
    return checkDirectCall(E, C, Expected);
  Type *CalleeTy = checkExpr(E->Callee, nullptr);
  if (!CalleeTy)
    return nullptr;
  return checkIndirectCall(E, CalleeTy);
}

//===----------------------------------------------------------------------===//
// Closing callables into function values
//===----------------------------------------------------------------------===//

Type *TypeChecker::closeCallable(Callable &C, Type *Expected,
                                 SourceLoc Loc) {
  // Cast/query used as a value need their from-type: A.!<B> (b14-15).
  if (C.Kind == RefKind::OpFunc &&
      (C.Op == OpSel::Cast || C.Op == OpSel::Query)) {
    if (C.MethodArgs.empty()) {
      if (auto *FT = dyn_cast_or_null<FuncType>(Expected)) {
        C.MethodArgs.push_back(FT->param());
        C.MethodArgsExplicit = true;
      } else {
        error(Loc, "a first-class cast/query needs an explicit input "
                   "type, e.g. A.!<B>");
        return nullptr;
      }
    }
  }
  if (C.Method && C.MethodArgsExplicit &&
      C.MethodArgs.size() != C.Method->TypeParams.size()) {
    error(Loc, "wrong number of type arguments for '" + *C.Method->Name +
                   "'");
    return nullptr;
  }
  std::vector<TypeParamDef *> Vars = openVars(C);
  std::vector<Type *> Params;
  Type *Ret = nullptr;
  openSignature(C, Params, Ret);
  TypeSubst ESubst = explicitSubst(C);
  if (!ESubst.empty()) {
    for (Type *&P : Params)
      P = Types.substitute(P, ESubst);
    Ret = Types.substitute(Ret, ESubst);
  }
  Type *FnTy = Types.func(Types.tuple(Params), Ret);
  TypeSubst Inferred;
  if (!Vars.empty()) {
    TypeUnifier Unifier(Types, Rels, Vars);
    if (Expected)
      Unifier.collect(FnTy, Expected);
    if (!Unifier.allBound()) {
      error(Loc, "cannot infer type argument '" +
                     *Unifier.firstUnbound()->Name +
                     "' for a first-class use; supply explicit type "
                     "arguments");
      return nullptr;
    }
    Inferred = Unifier.subst();
    FnTy = Types.substitute(FnTy, Inferred);
    if ((C.Kind == RefKind::Ctor || C.Kind == RefKind::MethodUnbound) &&
        !C.ClassArgsExplicit)
      for (Type *&A : C.ClassArgs)
        A = Types.substitute(A, Inferred);
  }
  commitRef(C, Inferred);
  C.Site->Ty = FnTy;
  return FnTy;
}

//===----------------------------------------------------------------------===//
// Names and members
//===----------------------------------------------------------------------===//

Type *TypeChecker::checkName(NameExpr *E, Type *Expected) {
  if (LocalVar *V = Locals.lookup(E->Name)) {
    if (!E->TypeArgs.empty()) {
      error(E->Loc, "a local variable takes no type arguments");
      return nullptr;
    }
    E->Ref.Kind = RefKind::Local;
    E->Ref.Decl = V;
    E->Ty = V->Ty;
    return E->Ty;
  }
  if (CurClass) {
    FieldDecl *F = nullptr;
    MethodDecl *Me = nullptr;
    ClassDecl *Owner = nullptr;
    if (R.lookupMember(CurClass, E->Name, CurClass, F, Me, Owner)) {
      if (F) {
        if (!E->TypeArgs.empty()) {
          error(E->Loc, "a field takes no type arguments");
          return nullptr;
        }
        E->Ref.Kind = RefKind::Field;
        E->Ref.Decl = F;
        E->Ref.BaseType = Types.selfType(CurClass->Def);
        E->Ty = F->Ty;
        return E->Ty;
      }
      Callable C;
      C.Kind = RefKind::MethodBound;
      C.Method = Me;
      C.Class = Owner;
      C.BaseType = Types.selfType(CurClass->Def);
      C.Site = E;
      for (TypeRef *Ref : E->TypeArgs) {
        Type *T = R.resolveTypeRef(Ref, TScope);
        if (!T)
          return nullptr;
        C.MethodArgs.push_back(T);
      }
      C.MethodArgsExplicit = !E->TypeArgs.empty();
      return closeCallable(C, Expected, E->Loc);
    }
  }
  if (MethodDecl *Fn = R.findFunc(E->Name)) {
    Callable C;
    C.Kind = RefKind::Func;
    C.Method = Fn;
    C.Site = E;
    for (TypeRef *Ref : E->TypeArgs) {
      Type *T = R.resolveTypeRef(Ref, TScope);
      if (!T)
        return nullptr;
      C.MethodArgs.push_back(T);
    }
    C.MethodArgsExplicit = !E->TypeArgs.empty();
    return closeCallable(C, Expected, E->Loc);
  }
  if (GlobalDecl *G = R.findGlobal(E->Name)) {
    if (!E->TypeArgs.empty()) {
      error(E->Loc, "a global takes no type arguments");
      return nullptr;
    }
    E->Ref.Kind = RefKind::Global;
    E->Ref.Decl = G;
    E->Ty = G->Ty;
    if (!E->Ty) {
      error(E->Loc, "global '" + *E->Name +
                        "' is used before its type is known");
      return nullptr;
    }
    return E->Ty;
  }
  if (resolveNameAsType(E)) {
    error(E->Loc, "type '" + *E->Name + "' cannot be used as a value");
    return nullptr;
  }
  if (E->Name == R.Names.SystemName) {
    error(E->Loc, "'System' cannot be used as a value");
    return nullptr;
  }
  error(E->Loc, "unknown identifier '" + *E->Name + "'");
  return nullptr;
}

Type *TypeChecker::checkMember(MemberExpr *E, Type *Expected) {
  Callable C;
  int Res = resolveCallable(E, C);
  if (Res < 0)
    return nullptr;
  if (Res > 0)
    return closeCallable(C, Expected, E->Loc);
  // Not a direct callable: a field access, tuple element, or array
  // length on an expression base.
  Type *BaseTy = E->Base->Ty;
  if (!BaseTy)
    BaseTy = checkExpr(E->Base, nullptr);
  if (!BaseTy)
    return nullptr;
  if (E->Sel == MemberSel::TupleIndex) {
    auto *TT = dyn_cast<TupleType>(BaseTy);
    if (!TT) {
      error(E->Loc, "value of type " + BaseTy->toString() +
                        " has no tuple elements");
      return nullptr;
    }
    if (E->TupleIndex < 0 || (size_t)E->TupleIndex >= TT->size()) {
      error(E->Loc, "tuple index out of range");
      return nullptr;
    }
    E->Ref.Kind = RefKind::TupleIndex;
    E->Ref.Index = E->TupleIndex;
    E->Ty = TT->elems()[E->TupleIndex];
    return E->Ty;
  }
  if (E->Sel != MemberSel::Name) {
    error(E->Loc, "invalid member access");
    return nullptr;
  }
  if (auto *AT = dyn_cast<ArrayType>(BaseTy)) {
    if (E->Name == R.Names.Length) {
      E->Ref.Kind = RefKind::ArrayLength;
      E->Ty = Types.intTy();
      return E->Ty;
    }
    (void)AT;
    error(E->Loc, "unknown array member '" + *E->Name + "'");
    return nullptr;
  }
  auto *CT = dyn_cast<ClassType>(BaseTy);
  if (!CT) {
    error(E->Loc, "value of type " + BaseTy->toString() +
                      " has no member '" + *E->Name + "'");
    return nullptr;
  }
  ClassDecl *Cls = static_cast<ClassDecl *>(CT->def()->AstDecl);
  FieldDecl *F = nullptr;
  MethodDecl *Me = nullptr;
  ClassDecl *Owner = nullptr;
  if (!R.lookupMember(Cls, E->Name, CurClass, F, Me, Owner) || !F) {
    error(E->Loc, "class '" + *Cls->Name + "' has no field '" + *E->Name +
                      "'");
    return nullptr;
  }
  // Field type with the owner's instantiation substituted.
  ClassType *At = Rels.superAt(CT, Owner->Def);
  assert(At && "field owner not on chain");
  TypeSubst Subst{Owner->Def->TypeParams, At->args()};
  E->Ref.Kind = RefKind::Field;
  E->Ref.Decl = F;
  E->Ref.BaseType = CT;
  E->Ty = Types.substitute(F->Ty, Subst);
  return E->Ty;
}

//===----------------------------------------------------------------------===//
// Other expressions
//===----------------------------------------------------------------------===//

bool TypeChecker::isLValue(Expr *E, bool &IsMutable) {
  if (auto *N = dyn_cast<NameExpr>(E)) {
    if (N->Ref.Kind == RefKind::Local) {
      IsMutable = static_cast<LocalVar *>(N->Ref.Decl)->IsMutable;
      return true;
    }
    if (N->Ref.Kind == RefKind::Global) {
      IsMutable = static_cast<GlobalDecl *>(N->Ref.Decl)->IsMutable;
      return true;
    }
    if (N->Ref.Kind == RefKind::Field) {
      IsMutable = static_cast<FieldDecl *>(N->Ref.Decl)->IsMutable;
      return true;
    }
    return false;
  }
  if (auto *M = dyn_cast<MemberExpr>(E)) {
    if (M->Ref.Kind == RefKind::Field) {
      IsMutable = static_cast<FieldDecl *>(M->Ref.Decl)->IsMutable;
      return true;
    }
    return false;
  }
  if (isa<IndexExpr>(E)) {
    IsMutable = true;
    return true;
  }
  return false;
}

Type *TypeChecker::checkAssign(BinaryExpr *E) {
  Type *LhsTy = checkExpr(E->Lhs, nullptr);
  if (!LhsTy)
    return nullptr;
  bool IsMutable = false;
  if (!isLValue(E->Lhs, IsMutable)) {
    error(E->Loc, "expression is not assignable");
    return nullptr;
  }
  if (!IsMutable) {
    error(E->Loc, "cannot assign to an immutable binding");
    return nullptr;
  }
  Type *RhsTy = checkExpr(E->Rhs, LhsTy);
  if (!RhsTy)
    return nullptr;
  if (!Rels.isAssignable(RhsTy, LhsTy)) {
    error(E->Loc, "cannot assign " + RhsTy->toString() + " to " +
                      LhsTy->toString());
    return nullptr;
  }
  E->Ty = LhsTy;
  return E->Ty;
}

Type *TypeChecker::checkBinary(BinaryExpr *E, Type *Expected) {
  (void)Expected;
  if (E->Op == BinOp::Assign)
    return checkAssign(E);
  switch (E->Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod: {
    Type *L = checkExpr(E->Lhs, Types.intTy());
    Type *Rt = checkExpr(E->Rhs, Types.intTy());
    if (!L || !Rt)
      return nullptr;
    if (!L->isInt() || !Rt->isInt()) {
      error(E->Loc, "arithmetic requires int operands (got " +
                        L->toString() + " and " + Rt->toString() + ")");
      return nullptr;
    }
    E->Ty = Types.intTy();
    return E->Ty;
  }
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge: {
    Type *L = checkExpr(E->Lhs, nullptr);
    if (!L)
      return nullptr;
    Type *Rt = checkExpr(E->Rhs, L);
    if (!Rt)
      return nullptr;
    bool Ok = (L->isInt() && Rt->isInt()) || (L->isByte() && Rt->isByte());
    if (!Ok) {
      error(E->Loc, "comparison requires int or byte operands");
      return nullptr;
    }
    E->Ty = Types.boolTy();
    return E->Ty;
  }
  case BinOp::Eq:
  case BinOp::Ne: {
    // Null literals take the other side's type.
    Type *L = nullptr, *Rt = nullptr;
    if (isNullLit(E->Lhs)) {
      Rt = checkExpr(E->Rhs, nullptr);
      if (!Rt)
        return nullptr;
      L = checkExpr(E->Lhs, Rt);
    } else {
      L = checkExpr(E->Lhs, nullptr);
      if (!L)
        return nullptr;
      Rt = checkExpr(E->Rhs, L);
    }
    if (!L || !Rt)
      return nullptr;
    if (!Rels.isAssignable(L, Rt) && !Rels.isAssignable(Rt, L)) {
      error(E->Loc, "cannot compare " + L->toString() + " with " +
                        Rt->toString());
      return nullptr;
    }
    E->Ty = Types.boolTy();
    return E->Ty;
  }
  case BinOp::And:
  case BinOp::Or: {
    Type *L = checkExpr(E->Lhs, Types.boolTy());
    Type *Rt = checkExpr(E->Rhs, Types.boolTy());
    if (!L || !Rt)
      return nullptr;
    if (!L->isBool() || !Rt->isBool()) {
      error(E->Loc, "logical operators require bool operands");
      return nullptr;
    }
    E->Ty = Types.boolTy();
    return E->Ty;
  }
  case BinOp::Assign:
    break;
  }
  assert(false && "handled above");
  return nullptr;
}

Type *TypeChecker::checkTernary(TernaryExpr *E, Type *Expected) {
  Type *CondTy = checkExpr(E->Cond, Types.boolTy());
  if (!CondTy)
    return nullptr;
  if (!CondTy->isBool()) {
    error(E->Cond->Loc, "condition must be bool");
    return nullptr;
  }
  // Null branches take the other branch's type when no expectation.
  Expr *First = E->Then, *Second = E->Else;
  if (!Expected && isNullLit(First))
    std::swap(First, Second);
  Type *T1 = checkExpr(First, Expected);
  if (!T1)
    return nullptr;
  Type *T2 = checkExpr(Second, Expected ? Expected : T1);
  if (!T2)
    return nullptr;
  Type *U = Rels.upperBound(T1, T2);
  if (!U) {
    error(E->Loc, "branches have incompatible types " + T1->toString() +
                      " and " + T2->toString());
    return nullptr;
  }
  E->Ty = U;
  return U;
}

Type *TypeChecker::checkTupleLit(TupleLitExpr *E, Type *Expected) {
  const TupleType *ET = dyn_cast_or_null<TupleType>(Expected);
  bool Decompose = ET && ET->size() == E->Elems.size();
  std::vector<Type *> Elems;
  Elems.reserve(E->Elems.size());
  for (size_t I = 0; I != E->Elems.size(); ++I) {
    Type *T = checkExpr(E->Elems[I],
                        Decompose ? ET->elems()[I] : nullptr);
    if (!T)
      return nullptr;
    Elems.push_back(T);
  }
  E->Ty = Types.tuple(Elems);
  return E->Ty;
}

Type *TypeChecker::checkIndex(IndexExpr *E) {
  Type *BaseTy = checkExpr(E->Base, nullptr);
  if (!BaseTy)
    return nullptr;
  auto *AT = dyn_cast<ArrayType>(BaseTy);
  if (!AT) {
    error(E->Loc, "value of type " + BaseTy->toString() +
                      " cannot be indexed (tuples use .0, .1, ...)");
    return nullptr;
  }
  Type *IdxTy = checkExpr(E->Index, Types.intTy());
  if (!IdxTy)
    return nullptr;
  if (!IdxTy->isInt()) {
    error(E->Index->Loc, "array index must be int");
    return nullptr;
  }
  E->Ty = AT->elem();
  return E->Ty;
}

Type *TypeChecker::checkExpr(Expr *E, Type *Expected) {
  switch (E->kind()) {
  case ExprKind::IntLit: {
    auto *L = cast<IntLitExpr>(E);
    // Literal adaptation: an int literal in byte range adopts the byte
    // type when one is expected (paper (b4): a.m(5) with m(a: byte)).
    if (Expected && Expected->isByte() && L->Value >= 0 && L->Value <= 255) {
      E->Ty = Types.byteTy();
      return E->Ty;
    }
    if (L->Value > INT32_MAX || L->Value < INT32_MIN) {
      error(E->Loc, "integer literal does not fit in int");
      return nullptr;
    }
    E->Ty = Types.intTy();
    return E->Ty;
  }
  case ExprKind::ByteLit:
    E->Ty = Types.byteTy();
    return E->Ty;
  case ExprKind::BoolLit:
    E->Ty = Types.boolTy();
    return E->Ty;
  case ExprKind::StringLit:
    E->Ty = Types.stringTy();
    return E->Ty;
  case ExprKind::NullLit:
    if (!Expected || !isNullable(Expected)) {
      error(E->Loc, "cannot infer the type of null here");
      return nullptr;
    }
    E->Ty = Expected;
    return E->Ty;
  case ExprKind::This:
    if (!CurClass || !CurMethod || (!CurMethod->Owner && !CurMethod->IsCtor)) {
      error(E->Loc, "'this' is only available inside methods");
      return nullptr;
    }
    E->Ty = Types.selfType(CurClass->Def);
    return E->Ty;
  case ExprKind::TypeLit:
    error(E->Loc, "a type cannot be used as a value");
    return nullptr;
  case ExprKind::TupleLit:
    return checkTupleLit(cast<TupleLitExpr>(E), Expected);
  case ExprKind::Name:
    return checkName(cast<NameExpr>(E), Expected);
  case ExprKind::Member:
    return checkMember(cast<MemberExpr>(E), Expected);
  case ExprKind::IndexOp:
    return checkIndex(cast<IndexExpr>(E));
  case ExprKind::Call:
    return checkCall(cast<CallExpr>(E), Expected);
  case ExprKind::Binary:
    return checkBinary(cast<BinaryExpr>(E), Expected);
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Type *T = checkExpr(U->Operand, U->Op == UnOp::Neg ? Types.intTy()
                                                       : Types.boolTy());
    if (!T)
      return nullptr;
    if (U->Op == UnOp::Neg && !T->isInt()) {
      error(E->Loc, "negation requires an int operand");
      return nullptr;
    }
    if (U->Op == UnOp::Not && !T->isBool()) {
      error(E->Loc, "'!' requires a bool operand");
      return nullptr;
    }
    E->Ty = T;
    return T;
  }
  case ExprKind::Ternary:
    return checkTernary(cast<TernaryExpr>(E), Expected);
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void TypeChecker::checkLocalDecl(LocalDeclStmt *S) {
  for (LocalVar *V : S->Vars) {
    if (V->DeclaredType) {
      Type *T = R.resolveTypeRef(V->DeclaredType, TScope);
      V->Ty = T ? T : Types.voidTy();
      if (V->Init) {
        Type *InitTy = checkExpr(V->Init, V->Ty);
        if (InitTy && !Rels.isAssignable(InitTy, V->Ty))
          error(V->Init->Loc, "cannot initialize " + V->Ty->toString() +
                                  " with " + InitTy->toString());
      }
    } else if (V->Init) {
      Type *InitTy = checkExpr(V->Init, nullptr);
      V->Ty = InitTy ? InitTy : Types.voidTy();
    } else {
      error(V->Loc, "variable '" + *V->Name +
                        "' needs a type or an initializer");
      V->Ty = Types.voidTy();
    }
    if (!Locals.declare(V))
      error(V->Loc, "duplicate variable '" + *V->Name + "'");
  }
}

void TypeChecker::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Block: {
    Locals.push();
    for (Stmt *Inner : cast<BlockStmt>(S)->Stmts)
      checkStmt(Inner);
    Locals.pop();
    return;
  }
  case StmtKind::LocalDecl:
    checkLocalDecl(cast<LocalDeclStmt>(S));
    return;
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    Type *T = checkExpr(I->Cond, Types.boolTy());
    if (T && !T->isBool())
      error(I->Cond->Loc, "if condition must be bool");
    checkStmt(I->Then);
    if (I->Else)
      checkStmt(I->Else);
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    Type *T = checkExpr(W->Cond, Types.boolTy());
    if (T && !T->isBool())
      error(W->Cond->Loc, "while condition must be bool");
    ++LoopDepth;
    checkStmt(W->Body);
    --LoopDepth;
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    Locals.push();
    LocalVar *V = F->Var;
    if (V->DeclaredType) {
      Type *T = R.resolveTypeRef(V->DeclaredType, TScope);
      V->Ty = T ? T : Types.voidTy();
      Type *InitTy = checkExpr(V->Init, V->Ty);
      if (InitTy && !Rels.isAssignable(InitTy, V->Ty))
        error(V->Init->Loc, "cannot initialize " + V->Ty->toString() +
                                " with " + InitTy->toString());
    } else {
      Type *InitTy = checkExpr(V->Init, nullptr);
      V->Ty = InitTy ? InitTy : Types.voidTy();
    }
    Locals.declare(V);
    if (F->Cond) {
      Type *T = checkExpr(F->Cond, Types.boolTy());
      if (T && !T->isBool())
        error(F->Cond->Loc, "for condition must be bool");
    }
    if (F->Update)
      checkExpr(F->Update, nullptr);
    ++LoopDepth;
    checkStmt(F->Body);
    --LoopDepth;
    Locals.pop();
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    Type *Want = CurMethod ? CurMethod->RetTy : Types.voidTy();
    if (!Ret->Value) {
      if (!Want->isVoid())
        error(Ret->Loc, "non-void method must return a value");
      return;
    }
    Type *T = checkExpr(Ret->Value, Want);
    if (T && !Rels.isAssignable(T, Want))
      error(Ret->Loc, "cannot return " + T->toString() + " from a method "
                          "returning " +
                          Want->toString());
    return;
  }
  case StmtKind::Break:
    if (LoopDepth == 0)
      error(S->Loc, "'break' outside a loop");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      error(S->Loc, "'continue' outside a loop");
    return;
  case StmtKind::ExprEval:
    checkExpr(cast<ExprStmt>(S)->E, nullptr);
    return;
  case StmtKind::Empty:
    return;
  }
}

bool TypeChecker::mustReturn(const Stmt *S) const {
  switch (S->kind()) {
  case StmtKind::Return:
    return true;
  case StmtKind::Block: {
    for (const Stmt *Inner : cast<BlockStmt>(S)->Stmts)
      if (mustReturn(Inner))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return I->Else && mustReturn(I->Then) && mustReturn(I->Else);
  }
  default:
    return false;
  }
}

void TypeChecker::checkBody(MethodDecl *M, ClassDecl *Owner) {
  if (!M->Body)
    return; // Abstract.
  CurClass = Owner;
  CurMethod = M;
  TScope.clear();
  if (Owner)
    for (size_t I = 0; I != Owner->TypeParamNames.size(); ++I)
      TScope.add(Owner->TypeParamNames[I], Owner->Def->TypeParams[I]);
  for (size_t I = 0; I != M->TypeParamNames.size(); ++I)
    TScope.add(M->TypeParamNames[I], M->TypeParams[I]);
  Locals.push();
  for (LocalVar *P : M->Params)
    if (!Locals.declare(P))
      error(P->Loc, "duplicate parameter '" + *P->Name + "'");
  checkStmt(M->Body);
  Locals.pop();
  if (!M->RetTy->isVoid() && !mustReturn(M->Body))
    error(M->Loc, "method '" + *M->Name +
                      "' does not return a value on all paths");
  CurClass = nullptr;
  CurMethod = nullptr;
}

void TypeChecker::checkCtorBody(ClassDecl *C) {
  MethodDecl *Ctor = C->Ctor;
  CurClass = C;
  CurMethod = Ctor;
  TScope.clear();
  for (size_t I = 0; I != C->TypeParamNames.size(); ++I)
    TScope.add(C->TypeParamNames[I], C->Def->TypeParams[I]);
  Locals.push();
  for (LocalVar *P : Ctor->Params)
    if (!Locals.declare(P))
      error(P->Loc, "duplicate parameter '" + *P->Name + "'");
  // Super arguments, checked against the parent constructor's
  // (instantiated) parameters.
  if (Ctor->HasSuper && C->Parent && C->Parent->Ctor) {
    MethodDecl *PCtor = C->Parent->Ctor;
    TypeSubst Subst{C->Parent->Def->TypeParams,
                    cast<ClassType>(C->Def->ParentAsWritten)->args()};
    if (Ctor->SuperArgs.size() != PCtor->Params.size()) {
      error(Ctor->Loc, "wrong number of super arguments");
    } else {
      for (size_t I = 0; I != Ctor->SuperArgs.size(); ++I) {
        Type *Want = Types.substitute(PCtor->Params[I]->Ty, Subst);
        Type *T = checkExpr(Ctor->SuperArgs[I], Want);
        if (T && !Rels.isAssignable(T, Want))
          error(Ctor->SuperArgs[I]->Loc,
                "super argument of type " + T->toString() +
                    " is not assignable to " + Want->toString());
      }
    }
  }
  if (Ctor->Body)
    checkStmt(Ctor->Body);
  Locals.pop();
  CurClass = nullptr;
  CurMethod = nullptr;
}

bool TypeChecker::run() {
  // Globals first, in source order; their initializers may reference
  // earlier globals and any function.
  TScope.clear();
  for (GlobalDecl *G : R.M.Globals) {
    Locals.push();
    if (G->Init) {
      Type *T = checkExpr(G->Init, G->Ty);
      if (T) {
        if (!G->Ty)
          G->Ty = T;
        else if (!Rels.isAssignable(T, G->Ty))
          error(G->Init->Loc, "cannot initialize " + G->Ty->toString() +
                                  " with " + T->toString());
      } else if (!G->Ty) {
        G->Ty = Types.voidTy();
      }
    }
    Locals.pop();
  }
  // Field initializers (no this, no locals).
  for (ClassDecl *C : R.M.Classes) {
    CurClass = nullptr;
    TScope = R.classScope(C);
    for (FieldDecl *F : C->Fields) {
      if (!F->Init)
        continue;
      Locals.push();
      Type *T = checkExpr(F->Init, F->Ty);
      if (T && !Rels.isAssignable(T, F->Ty))
        error(F->Init->Loc, "cannot initialize field of type " +
                                F->Ty->toString() + " with " +
                                T->toString());
      Locals.pop();
    }
  }
  // Bodies.
  for (ClassDecl *C : R.M.Classes) {
    checkCtorBody(C);
    for (MethodDecl *Me : C->Methods)
      checkBody(Me, C);
  }
  for (MethodDecl *F : R.M.Funcs)
    checkBody(F, nullptr);
  // Entry point sanity: if main exists it must take no parameters.
  if (MethodDecl *Main = R.findFunc(R.Names.Main)) {
    if (!Main->Params.empty())
      error(Main->Loc, "main must take no parameters");
    if (!Main->TypeParams.empty())
      error(Main->Loc, "main cannot be parameterized");
  }
  return !Diags.hasErrors();
}

//===----------------------------------------------------------------------===//
// Sema facade
//===----------------------------------------------------------------------===//

bool Sema::run() {
  if (!Res.run())
    return false;
  TypeChecker Checker(Res);
  if (!Checker.run())
    return false;
  PolyRecursionChecker PolyCheck(Res);
  return PolyCheck.run();
}
