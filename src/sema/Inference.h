//===- sema/Inference.h - Type-argument inference ---------------*- C++ -*-===//
///
/// \file
/// Best-effort inference of type arguments for parameterized classes
/// and methods (paper §2.4: "Virgil uses a best-effort type inference
/// algorithm"). The unifier gathers *polarized* constraints by
/// structurally matching declared (polymorphic) types against actual
/// argument types:
///
///  * invariant positions (class and array type arguments, and the
///    variable itself when matched exactly) pin the variable;
///  * covariant positions yield lower bounds, merged by least upper
///    bound;
///  * contravariant positions (function parameters) yield upper bounds.
///
/// This is what makes the paper's §3.6 example work: in
/// `apply(b, g)` with `b: List<Bat>` and `g: Animal -> void`, the
/// invariant List position pins A = Bat while the contravariant
/// function position merely bounds A above by Animal — and
/// `Animal -> void <: Bat -> void` then passes the ordinary
/// assignability check.
///
/// Inference is advisory: the checker always re-validates the
/// substituted signature, so an imprecise merge surfaces as an
/// ordinary type error at the call site.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SEMA_INFERENCE_H
#define VIRGIL_SEMA_INFERENCE_H

#include "types/TypeRelations.h"
#include "types/TypeStore.h"

#include <span>
#include <vector>

namespace virgil {

class TypeUnifier {
public:
  TypeUnifier(TypeStore &Store, TypeRelations &Rels,
              std::span<TypeParamDef *const> Vars)
      : Store(Store), Rels(Rels), Vars(Vars.begin(), Vars.end()),
        Bindings(Vars.size()) {}

  /// Gathers constraints by matching \p Declared (which may mention the
  /// inference variables) against \p Actual at covariant polarity.
  /// Never fails hard.
  void collect(Type *Declared, Type *Actual);

  /// Like collect, but only binds still-unconstrained variables (the
  /// expected-return-type hint must not override argument-driven
  /// bindings).
  void collectWeak(Type *Declared, Type *Actual);

  /// True once every variable has some resolution.
  bool allBound() const;

  /// Names the first unbound variable (diagnostics), or null.
  TypeParamDef *firstUnbound() const;

  /// The resulting substitution; call only when allBound().
  TypeSubst subst() const;

  Type *bindingFor(TypeParamDef *Def) const;

private:
  struct Binding {
    Type *Exact = nullptr;
    Type *Lower = nullptr;
    Type *Upper = nullptr;
  };

  int indexOf(TypeParamDef *Def) const;
  void bind(int Index, Type *T);
  Type *resolved(size_t Index) const;

  TypeStore &Store;
  TypeRelations &Rels;
  std::vector<TypeParamDef *> Vars;
  std::vector<Binding> Bindings;
  Variance Polarity = Variance::Covariant;
  bool WeakMode = false;
};

} // namespace virgil

#endif // VIRGIL_SEMA_INFERENCE_H
