//===- sema/PolyRecursion.cpp ---------------------------------------------===//

#include "sema/PolyRecursion.h"

#include <map>
#include <vector>

using namespace virgil;

namespace {

struct Edge {
  MethodDecl *To;
  bool Expanding;
  SourceLoc Loc;
};

using Graph = std::map<MethodDecl *, std::vector<Edge>>;

/// An edge is expanding when a type argument mentions a type parameter
/// but is not itself a bare type parameter: the callee's instantiation
/// is strictly "bigger" than the caller's, so iterating the cycle
/// produces infinitely many instantiations.
bool isExpandingArg(Type *Arg) {
  return Arg->isPoly() && Arg->kind() != TypeKind::TypeParam;
}

class EdgeCollector {
public:
  EdgeCollector(Graph &G, MethodDecl *Context) : G(G), Context(Context) {}

  void walkExpr(Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::ByteLit:
    case ExprKind::BoolLit:
    case ExprKind::StringLit:
    case ExprKind::NullLit:
    case ExprKind::This:
    case ExprKind::TypeLit:
      return;
    case ExprKind::TupleLit:
      for (Expr *Elem : cast<TupleLitExpr>(E)->Elems)
        walkExpr(Elem);
      return;
    case ExprKind::Name:
      addEdge(cast<NameExpr>(E)->Ref, E->Loc);
      return;
    case ExprKind::Member: {
      auto *M = cast<MemberExpr>(E);
      walkExpr(M->Base);
      addEdge(M->Ref, E->Loc);
      return;
    }
    case ExprKind::IndexOp:
      walkExpr(cast<IndexExpr>(E)->Base);
      walkExpr(cast<IndexExpr>(E)->Index);
      return;
    case ExprKind::Call: {
      auto *C = cast<CallExpr>(E);
      walkExpr(C->Callee);
      for (Expr *A : C->Args)
        walkExpr(A);
      return;
    }
    case ExprKind::Binary:
      walkExpr(cast<BinaryExpr>(E)->Lhs);
      walkExpr(cast<BinaryExpr>(E)->Rhs);
      return;
    case ExprKind::Unary:
      walkExpr(cast<UnaryExpr>(E)->Operand);
      return;
    case ExprKind::Ternary:
      walkExpr(cast<TernaryExpr>(E)->Cond);
      walkExpr(cast<TernaryExpr>(E)->Then);
      walkExpr(cast<TernaryExpr>(E)->Else);
      return;
    }
  }

  void walkStmt(Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block:
      for (Stmt *Inner : cast<BlockStmt>(S)->Stmts)
        walkStmt(Inner);
      return;
    case StmtKind::LocalDecl:
      for (LocalVar *V : cast<LocalDeclStmt>(S)->Vars)
        walkExpr(V->Init);
      return;
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      walkExpr(I->Cond);
      walkStmt(I->Then);
      walkStmt(I->Else);
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      walkExpr(W->Cond);
      walkStmt(W->Body);
      return;
    }
    case StmtKind::For: {
      auto *F = cast<ForStmt>(S);
      walkExpr(F->Var->Init);
      walkExpr(F->Cond);
      walkExpr(F->Update);
      walkStmt(F->Body);
      return;
    }
    case StmtKind::Return:
      walkExpr(cast<ReturnStmt>(S)->Value);
      return;
    case StmtKind::ExprEval:
      walkExpr(cast<ExprStmt>(S)->E);
      return;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      return;
    }
  }

private:
  void addEdge(const RefInfo &Ref, SourceLoc Loc) {
    MethodDecl *Target = nullptr;
    switch (Ref.Kind) {
    case RefKind::Func:
    case RefKind::MethodBound:
    case RefKind::MethodUnbound:
    case RefKind::Ctor:
      Target = static_cast<MethodDecl *>(Ref.Decl);
      break;
    default:
      return;
    }
    if (!Target || Ref.TypeArgs.empty())
      return;
    bool Expanding = false;
    for (Type *A : Ref.TypeArgs)
      Expanding |= isExpandingArg(A);
    G[Context].push_back(Edge{Target, Expanding, Loc});
  }

  Graph &G;
  MethodDecl *Context;
};

/// Tarjan-free SCC via iterative Kosaraju is overkill here; a simple
/// DFS looking for a cycle that (a) returns to a node on the current
/// stack and (b) passed an expanding edge since that node, suffices.
class CycleFinder {
public:
  CycleFinder(const Graph &G, DiagEngine &Diags) : G(G), Diags(Diags) {}

  bool run() {
    bool Ok = true;
    for (const auto &Entry : G)
      if (!visit(Entry.first))
        Ok = false;
    return Ok;
  }

private:
  enum class Color { White, Grey, Black };

  bool visit(MethodDecl *Node) {
    Color &C = Colors[Node];
    if (C == Color::Black)
      return true;
    if (C == Color::Grey)
      return true; // Cycle handled at the edge that closed it.
    C = Color::Grey;
    OnStack.push_back(Node);
    bool Ok = true;
    auto It = G.find(Node);
    if (It != G.end()) {
      for (const Edge &E : It->second) {
        Color TC = Colors.count(E.To) ? Colors[E.To] : Color::White;
        if (TC == Color::Grey) {
          // Closed a cycle: expanding if this edge or any edge on the
          // stack segment is expanding.
          if (E.Expanding || stackSegmentExpanding(E.To)) {
            Diags.error(E.Loc,
                        "polymorphic recursion involving '" +
                            *E.To->Name +
                            "' is not allowed (type arguments grow on "
                            "each iteration)");
            Ok = false;
          }
          continue;
        }
        ExpandingStack.push_back(E.Expanding);
        if (!visit(E.To))
          Ok = false;
        ExpandingStack.pop_back();
      }
    }
    OnStack.pop_back();
    C = Color::Black;
    return Ok;
  }

  bool stackSegmentExpanding(MethodDecl *From) {
    // Edges pushed after `From` entered the stack.
    for (size_t I = OnStack.size(); I-- > 0;) {
      if (I < ExpandingStack.size() && ExpandingStack[I])
        return true;
      if (OnStack[I] == From)
        break;
    }
    return false;
  }

  const Graph &G;
  DiagEngine &Diags;
  std::map<MethodDecl *, Color> Colors;
  std::vector<MethodDecl *> OnStack;
  std::vector<bool> ExpandingStack;
};

} // namespace

bool PolyRecursionChecker::run() {
  Graph G;
  auto collectBody = [&](MethodDecl *M) {
    if (!M || !M->Body)
      return;
    EdgeCollector Collector(G, M);
    for (Expr *A : M->SuperArgs)
      Collector.walkExpr(A);
    Collector.walkStmt(M->Body);
  };
  for (ClassDecl *C : R.M.Classes) {
    collectBody(C->Ctor);
    for (MethodDecl *Me : C->Methods)
      collectBody(Me);
  }
  for (MethodDecl *F : R.M.Funcs)
    collectBody(F);
  // Field and global initializers run in monomorphic context except for
  // field initializers of generic classes, whose context is the ctor.
  for (ClassDecl *C : R.M.Classes) {
    for (FieldDecl *F : C->Fields) {
      if (!F->Init)
        continue;
      EdgeCollector Collector(G, C->Ctor);
      Collector.walkExpr(F->Init);
    }
  }
  CycleFinder Finder(G, R.Diags);
  return Finder.run();
}
