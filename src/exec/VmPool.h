//===- exec/VmPool.h - Warm-VM pool with snapshot reset ---------*- C++ -*-===//
///
/// \file
/// A small per-worker ring of pre-initialized VMs keyed by request
/// content. The dominant per-request cost in virgild is not running
/// the program but standing up its sandbox: deserializing the cached
/// module, re-preparing it (decode, fusion, inline-cache slots), and
/// zero-filling a fresh heap and register arena — the same economics
/// argument the paper makes for monomorphization, paid per *request*
/// instead of per call. A pool hit skips all of it: the VM's heap is
/// rewound in place (Heap::reset — already-faulted pages, no fresh
/// mmap), globals and inline caches are restored from the post-prepare
/// snapshot (Vm::resetForReuse), and the retained CompiledUnit keeps
/// the bytecode alive so even the disk cache is bypassed.
///
/// The contract that makes this safe is *observational invisibility*:
/// a reused VM must produce identical outcomes, trap diagnostics,
/// executed-instruction counts, and GC activity to a freshly built VM
/// with the same options. That is why the pool key covers everything
/// that shapes execution — source content, compiler options, and the
/// heap geometry (quota, nursery size, GC mode) — while pure per-run
/// quotas (fuel, deadline) are re-armed on each acquire. The property
/// is enforced by tests/ExecTest.cpp's fresh-vs-pooled differential
/// sweep and the `--vm-pool` fuzz oracle config.
///
/// Thread model: one VmPool per worker thread, no internal locking.
/// Stats are relaxed atomics so STATS can read them cross-thread.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_EXEC_VMPOOL_H
#define VIRGIL_EXEC_VMPOOL_H

#include "service/CompileService.h"
#include "vm/Vm.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace virgil {
namespace exec {

/// Pool observability; readable from any thread (STATS) while the
/// owning worker mutates the pool.
struct VmPoolStats {
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Drops{0}; ///< Entries whose reset failed.
  /// Warm VMs currently resident — a gauge mirror of the entry count,
  /// kept atomic so STATS can sample it without racing the owner.
  std::atomic<uint64_t> Resident{0};
};

class VmPool {
public:
  explicit VmPool(size_t Cap) : Cap(Cap ? Cap : 1) {}

  /// Looks up a warm VM for \p Key. On a hit the entry's VM is reset
  /// to its post-prepare state and returned (the pool retains
  /// ownership); the caller re-arms per-run quotas and runs it. On a
  /// miss returns null and the caller builds a fresh VM.
  Vm *acquire(uint64_t Key) {
    for (Entry &E : Entries) {
      if (E.Key != Key)
        continue;
      if (!E.V->resetForReuse()) {
        // No snapshot (should not happen — adopt() takes one): drop
        // the entry rather than risk a contaminated run.
        Stats.Drops.fetch_add(1, std::memory_order_relaxed);
        E = std::move(Entries.back());
        Entries.pop_back();
        Stats.Resident.store(Entries.size(), std::memory_order_relaxed);
        Stats.Misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      E.LastUse = ++Tick;
      Stats.Hits.fetch_add(1, std::memory_order_relaxed);
      return E.V.get();
    }
    Stats.Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Donates a just-run VM (plus the CompiledUnit keeping its module
  /// alive) to the pool, evicting the least-recently-used entry at
  /// capacity. The VM must have had snapshotForReuse() called before
  /// its first run. An existing entry with the same key is replaced.
  void adopt(uint64_t Key, std::unique_ptr<CompiledUnit> Unit,
             std::unique_ptr<Vm> V) {
    for (Entry &E : Entries) {
      if (E.Key == Key) {
        E.Unit = std::move(Unit);
        E.V = std::move(V);
        E.LastUse = ++Tick;
        return;
      }
    }
    if (Entries.size() >= Cap) {
      size_t Lru = 0;
      for (size_t I = 1; I != Entries.size(); ++I)
        if (Entries[I].LastUse < Entries[Lru].LastUse)
          Lru = I;
      Entries[Lru] = std::move(Entries.back());
      Entries.pop_back();
      Stats.Evictions.fetch_add(1, std::memory_order_relaxed);
    }
    Entries.push_back(Entry{Key, std::move(Unit), std::move(V), ++Tick});
    Stats.Resident.store(Entries.size(), std::memory_order_relaxed);
  }

  size_t size() const { return Entries.size(); }
  size_t capacity() const { return Cap; }
  const VmPoolStats &stats() const { return Stats; }

private:
  struct Entry {
    uint64_t Key = 0;
    std::unique_ptr<CompiledUnit> Unit; ///< Owns the BcModule the VM runs.
    std::unique_ptr<Vm> V;
    uint64_t LastUse = 0;
  };

  size_t Cap;
  uint64_t Tick = 0;
  std::vector<Entry> Entries;
  VmPoolStats Stats;
};

} // namespace exec
} // namespace virgil

#endif // VIRGIL_EXEC_VMPOOL_H
