//===- exec/Executor.h - Per-worker request execution engine ----*- C++ -*-===//
///
/// \file
/// The compile-and-run half of a virgild worker, factored out of the
/// server so it can be pooled, benchmarked, and differentially tested
/// on its own. An Executor owns one VmPool (one Executor per worker
/// thread — no locking) and turns an ExecuteRequest into an
/// ExecuteResponse:
///
///   1. Clamp the request's fuel/heap/deadline quotas to the
///      configured maxima (a client can tighten its sandbox, never
///      escape it).
///   2. Probe the warm-VM pool with a key covering the source content,
///      compiler options, and heap geometry. A hit skips the compile
///      service entirely — no disk probe, no deserialize, no
///      prepare, no fresh heap — and runs on the reset VM.
///   3. On a miss, compile through the shared CompileService (cache
///      probe → compile → store), build a fresh Vm, snapshot its
///      post-prepare state, run it, and donate it to the pool.
///
/// Pool hits report CacheHit=true on the wire: the request was served
/// from cached compilation state, one level warmer than the disk
/// cache. Everything else about the response — outcome, trap text,
/// result, output, instruction and GC counts — is identical between
/// the hit and miss paths by the VmPool invisibility contract.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_EXEC_EXECUTOR_H
#define VIRGIL_EXEC_EXECUTOR_H

#include "exec/VmPool.h"
#include "server/Protocol.h"

#include <atomic>

namespace virgil {
namespace exec {

/// Monomorphization/sharing totals across every front-end run this
/// executor performed (cache and pool hits contribute nothing — no
/// front-end ran). Relaxed atomics: written by the owning worker,
/// sampled by the STATS path on another thread.
struct MonoShareCounters {
  /// Jobs that actually compiled (the denominators below).
  std::atomic<uint64_t> Compiles{0};
  /// Whether any compiled job ran with sharing enabled.
  std::atomic<bool> ShareEnabled{false};
  std::atomic<uint64_t> FunctionsBefore{0};
  std::atomic<uint64_t> FunctionsAfter{0};
  std::atomic<uint64_t> BodiesShared{0};
};

/// JIT-tier totals across every VM run this executor performed (each
/// run reports per-run deltas, so plain summation is double-count
/// free even for pooled VMs that keep their compiled code warm).
/// Same sampling discipline as MonoShareCounters.
struct JitCounters {
  /// Whether any request VM probed the host as JIT-capable / actually
  /// constructed the tier.
  std::atomic<bool> Available{false};
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Compiles{0};
  std::atomic<uint64_t> CompileFailures{0};
  std::atomic<uint64_t> CompileNs{0};
  std::atomic<uint64_t> CodeBytes{0};
  std::atomic<uint64_t> Enters{0};
  std::atomic<uint64_t> OsrEntries{0};
  std::atomic<uint64_t> Deopts{0};
  std::atomic<uint64_t> IcPatches{0};
  std::atomic<uint64_t> IcMegamorphic{0};
};

/// Optimizer totals across every front-end run this executor performed
/// (cache and pool hits contribute nothing). Same sampling discipline
/// as MonoShareCounters.
struct OptCounters {
  /// Whether any compiled job ran with escape analysis enabled.
  std::atomic<bool> EscapeEnabled{false};
  /// Whether any compiled job ran the SSA mid-tier.
  std::atomic<bool> SsaEnabled{false};
  std::atomic<uint64_t> AllocsElided{0};
  std::atomic<uint64_t> FieldsScalarized{0};
  std::atomic<uint64_t> ClosuresFlattened{0};
  std::atomic<uint64_t> CallsDevirtualized{0};
  std::atomic<uint64_t> DevirtualizedByCha{0};
  /// SSA mid-tier totals: phis placed, SCCP folds, and the memory
  /// pass's load/store/null-check eliminations.
  std::atomic<uint64_t> PhisPlaced{0};
  std::atomic<uint64_t> SccpFolded{0};
  std::atomic<uint64_t> LoadsEliminated{0};
  std::atomic<uint64_t> StoresKilled{0};
  std::atomic<uint64_t> NullChecksRemoved{0};
  /// Accumulated per-pass optimizer wall time, in microseconds
  /// (atomics can't hold doubles; STATS renders these back as ms).
  std::atomic<uint64_t> DevirtUs{0};
  std::atomic<uint64_t> InlineUs{0};
  std::atomic<uint64_t> FoldUs{0};
  std::atomic<uint64_t> CopyPropUs{0};
  std::atomic<uint64_t> DceUs{0};
  std::atomic<uint64_t> EscapeUs{0};
  std::atomic<uint64_t> DeadFieldsUs{0};
  std::atomic<uint64_t> SsaUs{0};
};

struct ExecutorConfig {
  /// Default and maximum per-request quotas (same clamping rule as
  /// ServerConfig, which is where these come from in the daemon).
  uint64_t DefaultFuel = 200u << 20;
  uint64_t DefaultHeapBytes = 64u << 20;
  uint32_t DefaultDeadlineMs = 5000;
  uint64_t MaxFuel = 1u << 30;
  uint64_t MaxHeapBytes = 256u << 20;
  uint32_t MaxDeadlineMs = 30000;

  /// Request-VM heap mode and nursery size; part of the pool key.
  bool VmGenerational = true;
  uint32_t VmNurseryBytes = 64 * 1024;

  /// Request-VM JIT tier: mode and hotness threshold; part of the pool
  /// key (a warm VM's compiled code must never serve a request that
  /// asked for a different tier configuration). Defaults follow the
  /// VIRGIL_VM_JIT / VIRGIL_VM_JIT_THRESHOLD process environment.
  VmOptions::JitMode VmJit = VmOptions::defaultJitMode();
  uint32_t VmJitThreshold = VmOptions::defaultJitThreshold();

  /// Warm-VM pooling (on by default; `--vm-pool off` for the ablation
  /// and the differential baseline).
  bool UsePool = true;
  size_t PoolSize = 8;
};

class Executor {
public:
  Executor(const ExecutorConfig &Config, CompileService &Service)
      : Config(Config), Service(Service), Pool(Config.PoolSize) {}

  /// Serves one request end to end. \p ExecuteVm distinguishes
  /// EXECUTE from COMPILE: compile-only requests stop after the cache
  /// store and never touch a VM (or the pool). \p CompileMs and
  /// \p ExecuteMs receive the phase wall times for metrics.
  server::ExecuteResponse run(const server::ExecuteRequest &Req,
                              bool ExecuteVm, double *CompileMs,
                              double *ExecuteMs);

  const VmPoolStats &poolStats() const { return Pool.stats(); }
  const MonoShareCounters &monoStats() const { return Mono; }
  const OptCounters &optStats() const { return Opt; }
  const JitCounters &jitStats() const { return Jit; }
  size_t poolSize() const { return Pool.size(); }

private:
  uint64_t poolKeyFor(const server::ExecuteRequest &Req,
                      uint64_t HeapBytes) const;

  ExecutorConfig Config;
  CompileService &Service;
  VmPool Pool;
  MonoShareCounters Mono;
  OptCounters Opt;
  JitCounters Jit;
};

} // namespace exec
} // namespace virgil

#endif // VIRGIL_EXEC_EXECUTOR_H
