//===- exec/Executor.cpp --------------------------------------------------===//

#include "exec/Executor.h"

#include <chrono>

using namespace virgil;
using namespace virgil::exec;
using namespace virgil::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Effective quota: the request's value clamped to the maximum, or the
/// default when the request passes 0.
uint64_t clampQuota(uint64_t Requested, uint64_t Default, uint64_t Max) {
  if (Requested == 0)
    return Default;
  return Requested < Max ? Requested : Max;
}

Outcome outcomeForTrap(VmTrapCause Cause) {
  switch (Cause) {
  case VmTrapCause::Fuel:
    return Outcome::Fuel;
  case VmTrapCause::Heap:
    return Outcome::Heap;
  case VmTrapCause::Deadline:
    return Outcome::Deadline;
  case VmTrapCause::None:
  case VmTrapCause::Program:
    break;
  }
  return Outcome::Trap;
}

uint64_t fnvMix(uint64_t H, uint64_t V) {
  // FNV-1a over the value's bytes, continuing hash H.
  for (int I = 0; I != 8; ++I) {
    H ^= (V >> (I * 8)) & 0xFF;
    H *= 1099511628211ull;
  }
  return H;
}

/// Folds one run's per-run JIT deltas into the executor-lifetime
/// totals; identical for the fresh and pooled paths.
void accumulateJit(JitCounters &J, const VmJitStats &S) {
  if (S.Available)
    J.Available.store(true, std::memory_order_relaxed);
  if (S.Enabled)
    J.Enabled.store(true, std::memory_order_relaxed);
  J.Compiles.fetch_add(S.Compiles, std::memory_order_relaxed);
  J.CompileFailures.fetch_add(S.CompileFailures,
                              std::memory_order_relaxed);
  J.CompileNs.fetch_add(S.CompileNs, std::memory_order_relaxed);
  J.CodeBytes.fetch_add(S.CodeBytes, std::memory_order_relaxed);
  J.Enters.fetch_add(S.Enters, std::memory_order_relaxed);
  J.OsrEntries.fetch_add(S.OsrEntries, std::memory_order_relaxed);
  J.Deopts.fetch_add(S.Deopts, std::memory_order_relaxed);
  J.IcPatches.fetch_add(S.IcPatches, std::memory_order_relaxed);
  J.IcMegamorphic.fetch_add(S.IcMegamorphic,
                            std::memory_order_relaxed);
}

/// Shapes the common (trap/result/output) part of the response from a
/// finished run; identical for the fresh and pooled paths.
void fillFromVmResult(ExecuteResponse &R, VmResult &VR) {
  R.Instrs = VR.Counters.Instrs;
  R.GcMinor = VR.Heap.MinorCollections;
  R.GcMajor = VR.Heap.MajorCollections;
  R.GcPauseNs = VR.Heap.MinorPauses.SumNs + VR.Heap.MajorPauses.SumNs;
  R.Output = std::move(VR.Output);
  // Keep responses far below the frame cap even for print-heavy
  // programs: the wire is a control plane, not a log shipper.
  constexpr size_t kMaxOutput = 1u << 20;
  if (R.Output.size() > kMaxOutput) {
    R.Output.resize(kMaxOutput);
    R.Output += "\n...[output truncated]\n";
  }
  if (VR.Trapped) {
    R.O = outcomeForTrap(VR.Cause);
    R.Message = VR.TrapMessage;
  } else {
    R.HasResult = VR.HasResult;
    R.ResultBits = VR.ResultBits;
  }
}

} // namespace

uint64_t Executor::poolKeyFor(const ExecuteRequest &Req,
                              uint64_t HeapBytes) const {
  // Everything that shapes execution beyond per-run quotas: the source
  // content + compiler options (via the cache key, which also folds in
  // the bytecode format version) and the heap geometry. Two requests
  // with the same key are guaranteed bit-identical runs.
  const ServiceOptions &SO = Service.options();
  uint64_t H = BytecodeCache::keyFor(Req.Source, SO.Compile,
                                     SO.CacheFormatVersion);
  H = fnvMix(H, HeapBytes);
  H = fnvMix(H, Config.VmNurseryBytes);
  H = fnvMix(H, Config.VmGenerational ? 1 : 0);
  H = fnvMix(H, (uint64_t)Config.VmJit);
  H = fnvMix(H, Config.VmJitThreshold);
  return H;
}

ExecuteResponse Executor::run(const ExecuteRequest &Req, bool ExecuteVm,
                              double *CompileMs, double *ExecuteMs) {
  ExecuteResponse R;
  *CompileMs = 0;
  *ExecuteMs = 0;

  uint64_t Fuel = clampQuota(Req.Fuel, Config.DefaultFuel, Config.MaxFuel);
  uint64_t HeapBytes = clampQuota(Req.HeapBytes, Config.DefaultHeapBytes,
                                  Config.MaxHeapBytes);
  uint32_t DeadlineMs = (uint32_t)clampQuota(
      Req.DeadlineMs, Config.DefaultDeadlineMs, Config.MaxDeadlineMs);

  uint64_t Key = 0;
  bool Pooling = Config.UsePool && ExecuteVm;
  if (Pooling) {
    Key = poolKeyFor(Req, HeapBytes);
    if (Vm *V = Pool.acquire(Key)) {
      // Warm path: no compile service, no fresh heap. The response
      // reports a cache hit — it was served from compiled state.
      R.CacheHit = true;
      R.TimingsJson = "{}";
      V->setRunQuotas(Fuel, DeadlineMs);
      auto E0 = Clock::now();
      VmResult VR = V->run();
      *ExecuteMs = msSince(E0);
      R.ExecuteMs = *ExecuteMs;
      accumulateJit(Jit, VR.Jit);
      fillFromVmResult(R, VR);
      return R;
    }
  }

  auto C0 = Clock::now();
  CompileJob Job;
  Job.Name = Req.Name.empty() ? "<request>" : Req.Name;
  Job.Source = Req.Source;
  JobResult JR = Service.compileOne(Job);
  *CompileMs = msSince(C0);
  R.CompileMs = *CompileMs;
  R.CacheHit = JR.CacheHit;
  R.TimingsJson = JR.CacheHit ? "{}" : JR.Timings.toJson();
  if (!JR.Ok) {
    R.O = Outcome::CompileError;
    R.Message = JR.Error;
    return R;
  }
  if (!JR.CacheHit) {
    Mono.Compiles.fetch_add(1, std::memory_order_relaxed);
    if (JR.Share.Enabled)
      Mono.ShareEnabled.store(true, std::memory_order_relaxed);
    Mono.FunctionsBefore.fetch_add(JR.Share.FunctionsBefore,
                                   std::memory_order_relaxed);
    Mono.FunctionsAfter.fetch_add(JR.Share.FunctionsAfter,
                                  std::memory_order_relaxed);
    Mono.BodiesShared.fetch_add(JR.Share.BodiesShared,
                                std::memory_order_relaxed);
    if (Service.options().Compile.Optimize &&
        Service.options().Compile.Opt.Escape)
      Opt.EscapeEnabled.store(true, std::memory_order_relaxed);
    if (Service.options().Compile.Optimize &&
        Service.options().Compile.Opt.Ssa)
      Opt.SsaEnabled.store(true, std::memory_order_relaxed);
    Opt.PhisPlaced.fetch_add(JR.Opt.PhisPlaced, std::memory_order_relaxed);
    Opt.SccpFolded.fetch_add(JR.Opt.SccpFolded, std::memory_order_relaxed);
    Opt.LoadsEliminated.fetch_add(JR.Opt.LoadsEliminated,
                                  std::memory_order_relaxed);
    Opt.StoresKilled.fetch_add(JR.Opt.StoresKilled,
                               std::memory_order_relaxed);
    Opt.NullChecksRemoved.fetch_add(JR.Opt.NullChecksRemoved,
                                    std::memory_order_relaxed);
    Opt.AllocsElided.fetch_add(JR.Opt.AllocsElided,
                               std::memory_order_relaxed);
    Opt.FieldsScalarized.fetch_add(JR.Opt.FieldsScalarized,
                                   std::memory_order_relaxed);
    Opt.ClosuresFlattened.fetch_add(JR.Opt.ClosuresFlattened,
                                    std::memory_order_relaxed);
    Opt.CallsDevirtualized.fetch_add(JR.Opt.CallsDevirtualized,
                                     std::memory_order_relaxed);
    Opt.DevirtualizedByCha.fetch_add(JR.Opt.DevirtualizedByCha,
                                     std::memory_order_relaxed);
    auto AddUs = [](std::atomic<uint64_t> &C, double Ms) {
      C.fetch_add((uint64_t)(Ms * 1000.0), std::memory_order_relaxed);
    };
    AddUs(Opt.DevirtUs, JR.Timings.PassDevirtMs);
    AddUs(Opt.InlineUs, JR.Timings.PassInlineMs);
    AddUs(Opt.FoldUs, JR.Timings.PassFoldMs);
    AddUs(Opt.CopyPropUs, JR.Timings.PassCopyPropMs);
    AddUs(Opt.DceUs, JR.Timings.PassDceMs);
    AddUs(Opt.EscapeUs, JR.Timings.PassEscapeMs);
    AddUs(Opt.DeadFieldsUs, JR.Timings.PassDeadFieldsMs);
    AddUs(Opt.SsaUs, JR.Timings.PassSsaMs);
  }
  if (!ExecuteVm)
    return R; // COMPILE: cache is populated, nothing to run

  VmOptions VO;
  VO.MaxInstrs = Fuel;
  VO.MaxHeapBytes = HeapBytes;
  VO.DeadlineMs = DeadlineMs;
  VO.Generational = Config.VmGenerational;
  VO.NurseryBytes = Config.VmNurseryBytes;
  VO.Jit = Config.VmJit;
  VO.JitThreshold = Config.VmJitThreshold;

  auto E0 = Clock::now();
  auto V = std::make_unique<Vm>(JR.Unit->bytecode(), VO);
  if (Pooling)
    V->snapshotForReuse(); // must capture pre-run (post-prepare) state
  VmResult VR = V->run();
  *ExecuteMs = msSince(E0);
  R.ExecuteMs = *ExecuteMs;
  accumulateJit(Jit, VR.Jit);
  fillFromVmResult(R, VR);
  if (Pooling)
    Pool.adopt(Key, std::move(JR.Unit), std::move(V));
  return R;
}
