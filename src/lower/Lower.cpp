//===- lower/Lower.cpp ----------------------------------------------------===//

#include "lower/Lower.h"

#include <algorithm>
#include <cassert>

using namespace virgil;

Lowerer::Lowerer(Resolver &R, IrModule &M)
    : R(R), M(M), Types(R.Types) {}

//===----------------------------------------------------------------------===//
// Classes
//===----------------------------------------------------------------------===//

void Lowerer::createClasses() {
  // Hierarchy order so parents exist first.
  std::vector<ClassDecl *> Order(R.M.Classes.begin(), R.M.Classes.end());
  std::sort(Order.begin(), Order.end(), [](ClassDecl *A, ClassDecl *B) {
    return A->Def->Depth < B->Def->Depth;
  });
  for (ClassDecl *C : Order) {
    IrClass *IC = M.newClass(*C->Name);
    IC->Def = C->Def;
    IC->SelfType = Types.selfType(C->Def);
    IC->Depth = C->Def->Depth;
    if (C->Parent)
      IC->Parent = ClassOf[C->Parent];
    // Field layout with every type rewritten in terms of this class's
    // own type parameters.
    auto *Self = cast<ClassType>(IC->SelfType);
    for (FieldDecl *F : C->Layout) {
      ClassType *At = R.Rels.superAt(Self, F->Owner->Def);
      assert(At && "field owner not on chain");
      TypeSubst Subst{F->Owner->Def->TypeParams, At->args()};
      IC->Fields.push_back(IrField{*F->Name, Types.substitute(F->Ty, Subst)});
    }
    ClassOf[C] = IC;
  }
}

//===----------------------------------------------------------------------===//
// Function stubs
//===----------------------------------------------------------------------===//

IrFunction *Lowerer::stubFor(MethodDecl *Method) {
  auto It = FuncOf.find(Method);
  if (It != FuncOf.end())
    return It->second;
  std::string Name;
  if (Method->Owner)
    Name = *Method->Owner->Name + "." + *Method->Name;
  else
    Name = *Method->Name;
  IrFunction *F = M.newFunction(Name);
  if (Method->Owner) {
    for (TypeParamDef *P : Method->Owner->Def->TypeParams)
      F->TypeParams.push_back(P);
    F->OwnerClass = ClassOf[Method->Owner];
    F->Slot = Method->Slot;
    F->newReg(Types.selfType(Method->Owner->Def)); // Receiver.
  }
  for (TypeParamDef *P : Method->TypeParams)
    F->TypeParams.push_back(P);
  for (LocalVar *P : Method->Params)
    P->Reg = (int)F->newReg(P->Ty);
  F->NumParams = (uint32_t)F->RegTypes.size();
  F->RetTypes.push_back(Method->RetTy ? Method->RetTy : Types.voidTy());
  F->IsCtor = Method->IsCtor;
  FuncOf[Method] = F;
  return F;
}

IrFunction *Lowerer::wrapperFor(ClassDecl *C) {
  auto It = WrapperOf.find(C);
  if (It != WrapperOf.end())
    return It->second;
  IrFunction *F = M.newFunction(*C->Name + ".$new");
  for (TypeParamDef *P : C->Def->TypeParams)
    F->TypeParams.push_back(P);
  Type *Self = Types.selfType(C->Def);
  for (LocalVar *P : C->Ctor->Params)
    F->newReg(P->Ty);
  F->NumParams = (uint32_t)F->RegTypes.size();
  F->RetTypes.push_back(Self);
  WrapperOf[C] = F;
  // Body: allocate, call the constructor, return the object.
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg Obj = Builder.newObject(Self);
  std::vector<Type *> ClassArgs;
  for (TypeParamDef *P : C->Def->TypeParams)
    ClassArgs.push_back(Types.typeParam(P));
  std::vector<Reg> Args;
  Args.push_back(Obj);
  for (uint32_t I = 0; I != F->NumParams; ++I)
    Args.push_back(I);
  Reg VoidDst = F->newReg(Types.voidTy());
  Builder.callFunc(stubFor(C->Ctor), ClassArgs, Args, {VoidDst});
  Builder.ret({Obj});
  return F;
}

void Lowerer::createFunctionStubs() {
  for (ClassDecl *C : R.M.Classes) {
    stubFor(C->Ctor);
    for (MethodDecl *Me : C->Methods)
      stubFor(Me);
    wrapperFor(C);
  }
  for (MethodDecl *F : R.M.Funcs)
    stubFor(F);
  // VTables: map declaration tables to IR functions (null = abstract).
  for (ClassDecl *C : R.M.Classes) {
    IrClass *IC = ClassOf[C];
    for (MethodDecl *V : C->VTable)
      IC->VTable.push_back(V->Body ? stubFor(V) : nullptr);
  }
  if (MethodDecl *Main = R.findFunc(R.Names.Main))
    M.Main = FuncOf[Main];
}

//===----------------------------------------------------------------------===//
// Synthesized operator/builtin functions
//===----------------------------------------------------------------------===//

IrFunction *Lowerer::eqFunc(bool Negated) {
  IrFunction *&Slot = Negated ? NeFn : EqFn;
  if (Slot)
    return Slot;
  IrFunction *F = M.newFunction(Negated ? "$ne" : "$eq");
  TypeParamDef *T = Types.makeTypeParam(R.Idents.intern("T"));
  F->TypeParams.push_back(T);
  Type *TT = Types.typeParam(T);
  F->newReg(TT);
  F->newReg(TT);
  F->NumParams = 2;
  F->RetTypes.push_back(Types.boolTy());
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg D = Builder.equality(Negated, 0, 1, TT, Types.boolTy());
  Builder.ret({D});
  Slot = F;
  return F;
}

IrFunction *Lowerer::castFunc(bool IsQuery) {
  IrFunction *&Slot = IsQuery ? QueryFn : CastFn;
  if (Slot)
    return Slot;
  IrFunction *F = M.newFunction(IsQuery ? "$query" : "$cast");
  TypeParamDef *From = Types.makeTypeParam(R.Idents.intern("F"));
  TypeParamDef *To = Types.makeTypeParam(R.Idents.intern("T"));
  F->TypeParams.push_back(From);
  F->TypeParams.push_back(To);
  Type *FromTy = Types.typeParam(From);
  Type *ToTy = Types.typeParam(To);
  F->newReg(FromTy);
  F->NumParams = 1;
  F->RetTypes.push_back(IsQuery ? Types.boolTy() : ToTy);
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg D = IsQuery ? Builder.typeQuery(0, ToTy, Types.boolTy())
                  : Builder.typeCast(0, ToTy, SourceLoc::invalid());
  Builder.ret({D});
  Slot = F;
  return F;
}

IrFunction *Lowerer::intArith(OpSel Op) {
  auto It = ArithFns.find((int)Op);
  if (It != ArithFns.end())
    return It->second;
  static const char *NameOf[] = {"$int_add", "$int_sub", "$int_mul",
                                 "$int_div", "$int_mod"};
  Opcode Opc;
  const char *Name;
  switch (Op) {
  case OpSel::Add:
    Opc = Opcode::IntAdd;
    Name = NameOf[0];
    break;
  case OpSel::Sub:
    Opc = Opcode::IntSub;
    Name = NameOf[1];
    break;
  case OpSel::Mul:
    Opc = Opcode::IntMul;
    Name = NameOf[2];
    break;
  case OpSel::Div:
    Opc = Opcode::IntDiv;
    Name = NameOf[3];
    break;
  case OpSel::Mod:
    Opc = Opcode::IntMod;
    Name = NameOf[4];
    break;
  default:
    assert(false && "not an arithmetic op");
    return nullptr;
  }
  IrFunction *F = M.newFunction(Name);
  F->newReg(Types.intTy());
  F->newReg(Types.intTy());
  F->NumParams = 2;
  F->RetTypes.push_back(Types.intTy());
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg D = Builder.binop(Opc, 0, 1, Types.intTy());
  Builder.ret({D});
  ArithFns[(int)Op] = F;
  return F;
}

IrFunction *Lowerer::cmpFunc(OpSel Op, bool IsByte) {
  auto Key = std::make_pair((int)Op, IsByte);
  auto It = CmpFns.find(Key);
  if (It != CmpFns.end())
    return It->second;
  Opcode Opc;
  std::string Name = IsByte ? "$byte_" : "$int_";
  switch (Op) {
  case OpSel::Lt:
    Opc = Opcode::IntLt;
    Name += "lt";
    break;
  case OpSel::Le:
    Opc = Opcode::IntLe;
    Name += "le";
    break;
  case OpSel::Gt:
    Opc = Opcode::IntGt;
    Name += "gt";
    break;
  case OpSel::Ge:
    Opc = Opcode::IntGe;
    Name += "ge";
    break;
  default:
    assert(false && "not a comparison op");
    return nullptr;
  }
  Type *Operand = IsByte ? Types.byteTy() : Types.intTy();
  IrFunction *F = M.newFunction(Name);
  F->newReg(Operand);
  F->newReg(Operand);
  F->NumParams = 2;
  F->RetTypes.push_back(Types.boolTy());
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg D = Builder.binop(Opc, 0, 1, Types.boolTy());
  Builder.ret({D});
  CmpFns[Key] = F;
  return F;
}

IrFunction *Lowerer::builtinFunc(BuiltinKind Kind) {
  auto It = BuiltinFns.find((int)Kind);
  if (It != BuiltinFns.end())
    return It->second;
  std::string Name;
  std::vector<Type *> Params;
  Type *Ret = Types.voidTy();
  switch (Kind) {
  case BuiltinKind::Puts:
    Name = "$sys_puts";
    Params.push_back(Types.stringTy());
    break;
  case BuiltinKind::Puti:
    Name = "$sys_puti";
    Params.push_back(Types.intTy());
    break;
  case BuiltinKind::Putc:
    Name = "$sys_putc";
    Params.push_back(Types.byteTy());
    break;
  case BuiltinKind::Ln:
    Name = "$sys_ln";
    break;
  case BuiltinKind::Ticks:
    Name = "$sys_ticks";
    Ret = Types.intTy();
    break;
  case BuiltinKind::Error:
    Name = "$sys_error";
    Params.push_back(Types.stringTy());
    break;
  }
  IrFunction *F = M.newFunction(Name);
  for (Type *P : Params)
    F->newReg(P);
  F->NumParams = (uint32_t)Params.size();
  F->RetTypes.push_back(Ret);
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  std::vector<Reg> Args;
  for (uint32_t I = 0; I != F->NumParams; ++I)
    Args.push_back(I);
  Reg D = F->newReg(Ret);
  Builder.callBuiltin((int)Kind, Args, {D});
  Builder.ret({D});
  BuiltinFns[(int)Kind] = F;
  return F;
}

IrFunction *Lowerer::arrayNewFunc() {
  if (ArrayNewFn)
    return ArrayNewFn;
  IrFunction *F = M.newFunction("$array_new");
  TypeParamDef *T = Types.makeTypeParam(R.Idents.intern("T"));
  F->TypeParams.push_back(T);
  Type *ArrTy = Types.array(Types.typeParam(T));
  F->newReg(Types.intTy());
  F->NumParams = 1;
  F->RetTypes.push_back(ArrTy);
  IrBuilder Builder(M, F);
  Builder.setBlock(Builder.newBlock());
  Reg D = Builder.newArray(0, ArrTy);
  Builder.ret({D});
  ArrayNewFn = F;
  return F;
}

//===----------------------------------------------------------------------===//
// Type-argument plumbing
//===----------------------------------------------------------------------===//

std::vector<Type *> Lowerer::classPartArgs(Type *RecvTy, ClassDecl *Owner) {
  auto *CT = cast<ClassType>(RecvTy);
  ClassType *At = R.Rels.superAt(CT, Owner->Def);
  assert(At && "receiver does not reach method owner");
  return At->args();
}

std::vector<Type *> Lowerer::fullTypeArgs(const RefInfo &Ref,
                                          MethodDecl *Method) {
  std::vector<Type *> Args;
  switch (Ref.Kind) {
  case RefKind::MethodBound: {
    if (Method->Owner)
      Args = classPartArgs(Ref.BaseType, Method->Owner);
    // Ref.TypeArgs holds the method part only.
    Args.insert(Args.end(), Ref.TypeArgs.begin(), Ref.TypeArgs.end());
    return Args;
  }
  case RefKind::Func:
  case RefKind::MethodUnbound:
  case RefKind::Ctor:
    // Ref.TypeArgs already holds class part (if any) then method part.
    return Ref.TypeArgs;
  default:
    return Args;
  }
}

//===----------------------------------------------------------------------===//
// Closures
//===----------------------------------------------------------------------===//

Reg Lowerer::closureFor(const RefInfo &Ref, Type *FnTy, Expr *BoundBase,
                        SourceLoc Loc) {
  (void)Loc;
  switch (Ref.Kind) {
  case RefKind::Func: {
    auto *Method = static_cast<MethodDecl *>(Ref.Decl);
    return B->makeClosure(FuncOf[Method], Ref.TypeArgs, {}, FnTy);
  }
  case RefKind::MethodBound: {
    auto *Method = static_cast<MethodDecl *>(Ref.Decl);
    Reg Recv = BoundBase ? lowerExpr(BoundBase) : thisReg();
    return B->makeClosure(stubFor(Method), fullTypeArgs(Ref, Method),
                          {Recv}, FnTy);
  }
  case RefKind::MethodUnbound: {
    auto *Method = static_cast<MethodDecl *>(Ref.Decl);
    return B->makeClosure(stubFor(Method), fullTypeArgs(Ref, Method), {},
                          FnTy);
  }
  case RefKind::Ctor: {
    auto *Method = static_cast<MethodDecl *>(Ref.Decl);
    return B->makeClosure(wrapperFor(Method->Owner), Ref.TypeArgs, {},
                          FnTy);
  }
  case RefKind::ArrayNew: {
    auto *AT = cast<ArrayType>(Ref.BaseType);
    return B->makeClosure(arrayNewFunc(), {AT->elem()}, {}, FnTy);
  }
  case RefKind::Builtin:
    return B->makeClosure(builtinFunc((BuiltinKind)Ref.Index), {}, {},
                          FnTy);
  case RefKind::OpFunc: {
    OpSel Op = (OpSel)Ref.Index;
    switch (Op) {
    case OpSel::Eq:
    case OpSel::Ne:
      return B->makeClosure(eqFunc(Op == OpSel::Ne), {Ref.BaseType}, {},
                            FnTy);
    case OpSel::Cast:
    case OpSel::Query: {
      assert(!Ref.TypeArgs.empty() && "first-class cast needs from-type");
      std::vector<Type *> Args = {Ref.TypeArgs[0], Ref.BaseType};
      return B->makeClosure(castFunc(Op == OpSel::Query), Args, {}, FnTy);
    }
    case OpSel::Add:
    case OpSel::Sub:
    case OpSel::Mul:
    case OpSel::Div:
    case OpSel::Mod:
      return B->makeClosure(intArith(Op), {}, {}, FnTy);
    case OpSel::Lt:
    case OpSel::Le:
    case OpSel::Gt:
    case OpSel::Ge:
      return B->makeClosure(cmpFunc(Op, Ref.BaseType->isByte()), {}, {},
                            FnTy);
    }
    break;
  }
  default:
    break;
  }
  assert(false && "not a closable reference");
  return NoReg;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Reg Lowerer::lowerName(NameExpr *E) {
  switch (E->Ref.Kind) {
  case RefKind::Local:
    return (Reg)static_cast<LocalVar *>(E->Ref.Decl)->Reg;
  case RefKind::Global:
    return B->globalGet(static_cast<GlobalDecl *>(E->Ref.Decl)->Index,
                        E->Ty);
  case RefKind::Field: {
    auto *F = static_cast<FieldDecl *>(E->Ref.Decl);
    return B->fieldGet(thisReg(), F->Index, E->Ref.BaseType, E->Ty);
  }
  case RefKind::Func:
  case RefKind::MethodBound:
    return closureFor(E->Ref, E->Ty, nullptr, E->Loc);
  default:
    assert(false && "unexpected name reference in lowering");
    return NoReg;
  }
}

Reg Lowerer::lowerMember(MemberExpr *E) {
  switch (E->Ref.Kind) {
  case RefKind::Field: {
    auto *F = static_cast<FieldDecl *>(E->Ref.Decl);
    Reg Base = lowerExpr(E->Base);
    return B->fieldGet(Base, F->Index, E->Ref.BaseType, E->Ty);
  }
  case RefKind::TupleIndex: {
    Reg Base = lowerExpr(E->Base);
    return B->tupleGet(Base, E->Ref.Index, E->Ty);
  }
  case RefKind::ArrayLength: {
    Reg Base = lowerExpr(E->Base);
    return B->arrayLen(Base, E->Ty);
  }
  case RefKind::MethodBound:
    return closureFor(E->Ref, E->Ty, E->Base, E->Loc);
  case RefKind::MethodUnbound:
  case RefKind::Ctor:
  case RefKind::ArrayNew:
  case RefKind::OpFunc:
  case RefKind::Builtin:
    return closureFor(E->Ref, E->Ty, nullptr, E->Loc);
  default:
    assert(false && "unexpected member reference in lowering");
    return NoReg;
  }
}

std::vector<Reg> Lowerer::adaptArgs(const std::vector<Expr *> &Args,
                                    const std::vector<Type *> &ParamTys,
                                    SourceLoc Loc) {
  (void)Loc;
  std::vector<Reg> Out;
  if (Args.size() == ParamTys.size()) {
    for (Expr *A : Args)
      Out.push_back(lowerExpr(A));
    return Out;
  }
  if (ParamTys.size() == 1) {
    // Collapse the argument list into one tuple (or void) value.
    if (Args.empty()) {
      Out.push_back(B->constVoid(Types.voidTy()));
      return Out;
    }
    std::vector<Reg> Elems;
    std::vector<Type *> ElemTys;
    for (Expr *A : Args) {
      Elems.push_back(lowerExpr(A));
      ElemTys.push_back(A->Ty);
    }
    Out.push_back(B->tupleCreate(std::move(Elems), Types.tuple(ElemTys)));
    return Out;
  }
  // Spread one tuple argument across several parameters (q3).
  assert(Args.size() == 1 && "checker validated shapes");
  Reg Whole = lowerExpr(Args[0]);
  if (ParamTys.empty()) {
    // A void-typed single argument feeding a zero-param function: just
    // evaluate it for effect.
    (void)Whole;
    return Out;
  }
  auto *TT = cast<TupleType>(Args[0]->Ty);
  for (size_t I = 0; I != ParamTys.size(); ++I)
    Out.push_back(B->tupleGet(Whole, (int)I, TT->elems()[I]));
  return Out;
}

Reg Lowerer::lowerCall(CallExpr *E) {
  // Direct calls through resolved references.
  RefInfo *Ref = nullptr;
  Expr *BoundBase = nullptr;
  if (auto *N = dyn_cast<NameExpr>(E->Callee)) {
    if (N->Ref.Kind != RefKind::Local && N->Ref.Kind != RefKind::Global &&
        N->Ref.Kind != RefKind::Field)
      Ref = &N->Ref;
  } else if (auto *Mem = dyn_cast<MemberExpr>(E->Callee)) {
    if (Mem->Ref.Kind != RefKind::Field &&
        Mem->Ref.Kind != RefKind::TupleIndex &&
        Mem->Ref.Kind != RefKind::ArrayLength) {
      Ref = &Mem->Ref;
      BoundBase = Mem->Base;
    }
  }
  if (!Ref) {
    // Indirect call through a function value; keep the caller's
    // syntactic shape (the runtime adapts it dynamically, §4.1;
    // normalization later makes it static).
    Reg Fn = lowerExpr(E->Callee);
    std::vector<Reg> Args;
    for (Expr *A : E->Args)
      Args.push_back(lowerExpr(A));
    Reg D = B->function()->newReg(E->Ty);
    B->callIndirect(Fn, Args, {D});
    return D;
  }

  switch (Ref->Kind) {
  case RefKind::Func: {
    auto *Method = static_cast<MethodDecl *>(Ref->Decl);
    std::vector<Type *> ParamTys;
    TypeSubst Subst{Method->TypeParams, Ref->TypeArgs};
    for (LocalVar *P : Method->Params)
      ParamTys.push_back(Types.substitute(P->Ty, Subst));
    std::vector<Reg> Args = adaptArgs(E->Args, ParamTys, E->Loc);
    Reg D = B->function()->newReg(E->Ty);
    B->callFunc(FuncOf[Method], Ref->TypeArgs, Args, {D});
    return D;
  }
  case RefKind::MethodBound: {
    auto *Method = static_cast<MethodDecl *>(Ref->Decl);
    Reg Recv = BoundBase ? lowerExpr(BoundBase) : thisReg();
    std::vector<Type *> All = fullTypeArgs(*Ref, Method);
    std::vector<TypeParamDef *> AllParams;
    for (TypeParamDef *P : Method->Owner->Def->TypeParams)
      AllParams.push_back(P);
    for (TypeParamDef *P : Method->TypeParams)
      AllParams.push_back(P);
    TypeSubst Subst{AllParams, All};
    std::vector<Type *> ParamTys;
    for (LocalVar *P : Method->Params)
      ParamTys.push_back(Types.substitute(P->Ty, Subst));
    std::vector<Reg> Args = adaptArgs(E->Args, ParamTys, E->Loc);
    std::vector<Reg> Full;
    Full.push_back(Recv);
    Full.insert(Full.end(), Args.begin(), Args.end());
    Reg D = B->function()->newReg(E->Ty);
    if (Method->Slot >= 0) {
      // Virtual dispatch; class-part type arguments come from the
      // receiver's dynamic type at runtime.
      B->callVirtual(Method->Slot, Ref->BaseType, {}, Full, {D});
    } else {
      B->callFunc(stubFor(Method), All, Full, {D});
    }
    return D;
  }
  case RefKind::MethodUnbound: {
    auto *Method = static_cast<MethodDecl *>(Ref->Decl);
    TypeSubst Subst{Method->Owner->Def->TypeParams,
                    std::vector<Type *>(
                        Ref->TypeArgs.begin(),
                        Ref->TypeArgs.begin() +
                            Method->Owner->Def->TypeParams.size())};
    std::vector<Type *> ParamTys;
    Type *RecvTy =
        Types.classType(Method->Owner->Def,
                        std::span<Type *const>(
                            Ref->TypeArgs.data(),
                            Method->Owner->Def->TypeParams.size()));
    ParamTys.push_back(RecvTy);
    // Method part of the substitution.
    for (size_t I = 0; I != Method->TypeParams.size(); ++I) {
      Subst.Params.push_back(Method->TypeParams[I]);
      Subst.Args.push_back(
          Ref->TypeArgs[Method->Owner->Def->TypeParams.size() + I]);
    }
    for (LocalVar *P : Method->Params)
      ParamTys.push_back(Types.substitute(P->Ty, Subst));
    std::vector<Reg> Args = adaptArgs(E->Args, ParamTys, E->Loc);
    Reg D = B->function()->newReg(E->Ty);
    if (Method->Slot >= 0)
      B->callVirtual(Method->Slot, RecvTy, {}, Args, {D});
    else
      B->callFunc(stubFor(Method), Ref->TypeArgs, Args, {D});
    return D;
  }
  case RefKind::Ctor: {
    auto *Method = static_cast<MethodDecl *>(Ref->Decl);
    ClassDecl *C = Method->Owner;
    TypeSubst Subst{C->Def->TypeParams, Ref->TypeArgs};
    std::vector<Type *> ParamTys;
    for (LocalVar *P : Method->Params)
      ParamTys.push_back(Types.substitute(P->Ty, Subst));
    std::vector<Reg> Args = adaptArgs(E->Args, ParamTys, E->Loc);
    Reg D = B->function()->newReg(E->Ty);
    B->callFunc(wrapperFor(C), Ref->TypeArgs, Args, {D});
    return D;
  }
  case RefKind::ArrayNew: {
    assert(E->Args.size() == 1 && "Array<T>.new takes a length");
    Reg Len = lowerExpr(E->Args[0]);
    return B->newArray(Len, Ref->BaseType);
  }
  case RefKind::Builtin: {
    std::vector<Reg> Args;
    for (Expr *A : E->Args)
      Args.push_back(lowerExpr(A));
    Reg D = B->function()->newReg(E->Ty);
    B->callBuiltin(Ref->Index, Args, {D});
    return D;
  }
  case RefKind::OpFunc: {
    OpSel Op = (OpSel)Ref->Index;
    switch (Op) {
    case OpSel::Eq:
    case OpSel::Ne: {
      std::vector<Type *> Params = {Ref->BaseType, Ref->BaseType};
      std::vector<Reg> Args = adaptArgs(E->Args, Params, E->Loc);
      return B->equality(Op == OpSel::Ne, Args[0], Args[1], Ref->BaseType,
                         Types.boolTy());
    }
    case OpSel::Cast: {
      assert(E->Args.size() == 1);
      Reg V = lowerExpr(E->Args[0]);
      return B->typeCast(V, Ref->BaseType, E->Loc);
    }
    case OpSel::Query: {
      assert(E->Args.size() == 1);
      Reg V = lowerExpr(E->Args[0]);
      return B->typeQuery(V, Ref->BaseType, Types.boolTy());
    }
    case OpSel::Add:
    case OpSel::Sub:
    case OpSel::Mul:
    case OpSel::Div:
    case OpSel::Mod: {
      std::vector<Type *> Params = {Types.intTy(), Types.intTy()};
      std::vector<Reg> Args = adaptArgs(E->Args, Params, E->Loc);
      Opcode Opc = Op == OpSel::Add   ? Opcode::IntAdd
                   : Op == OpSel::Sub ? Opcode::IntSub
                   : Op == OpSel::Mul ? Opcode::IntMul
                   : Op == OpSel::Div ? Opcode::IntDiv
                                      : Opcode::IntMod;
      return B->binop(Opc, Args[0], Args[1], Types.intTy());
    }
    case OpSel::Lt:
    case OpSel::Le:
    case OpSel::Gt:
    case OpSel::Ge: {
      std::vector<Type *> Params = {Ref->BaseType, Ref->BaseType};
      std::vector<Reg> Args = adaptArgs(E->Args, Params, E->Loc);
      Opcode Opc = Op == OpSel::Lt   ? Opcode::IntLt
                   : Op == OpSel::Le ? Opcode::IntLe
                   : Op == OpSel::Gt ? Opcode::IntGt
                                     : Opcode::IntGe;
      return B->binop(Opc, Args[0], Args[1], Types.boolTy());
    }
    }
    break;
  }
  default:
    break;
  }
  assert(false && "unhandled direct call kind");
  return NoReg;
}

Reg Lowerer::lowerAssign(BinaryExpr *E) {
  Expr *Lhs = E->Lhs;
  if (auto *N = dyn_cast<NameExpr>(Lhs)) {
    Reg V = lowerExpr(E->Rhs);
    switch (N->Ref.Kind) {
    case RefKind::Local: {
      auto *Var = static_cast<LocalVar *>(N->Ref.Decl);
      B->moveInto((Reg)Var->Reg, V, Var->Ty);
      return V;
    }
    case RefKind::Global:
      B->globalSet(static_cast<GlobalDecl *>(N->Ref.Decl)->Index, V);
      return V;
    case RefKind::Field: {
      auto *F = static_cast<FieldDecl *>(N->Ref.Decl);
      B->fieldSet(thisReg(), F->Index, V, N->Ref.BaseType);
      return V;
    }
    default:
      break;
    }
    assert(false && "invalid assignment target");
    return NoReg;
  }
  if (auto *Mem = dyn_cast<MemberExpr>(Lhs)) {
    assert(Mem->Ref.Kind == RefKind::Field && "invalid member assignment");
    auto *F = static_cast<FieldDecl *>(Mem->Ref.Decl);
    Reg Base = lowerExpr(Mem->Base);
    Reg V = lowerExpr(E->Rhs);
    B->fieldSet(Base, F->Index, V, Mem->Ref.BaseType);
    return V;
  }
  auto *Idx = cast<IndexExpr>(Lhs);
  Reg Arr = lowerExpr(Idx->Base);
  Reg Index = lowerExpr(Idx->Index);
  Reg V = lowerExpr(E->Rhs);
  B->arraySet(Arr, Index, V);
  return V;
}

Reg Lowerer::lowerShortCircuit(BinaryExpr *E) {
  bool IsAnd = E->Op == BinOp::And;
  Reg Result = B->function()->newReg(Types.boolTy());
  Reg L = lowerExpr(E->Lhs);
  B->moveInto(Result, L, Types.boolTy());
  IrBlock *RhsB = B->newBlock();
  IrBlock *DoneB = B->newBlock();
  if (IsAnd)
    B->condBr(L, RhsB, DoneB);
  else
    B->condBr(L, DoneB, RhsB);
  B->setBlock(RhsB);
  Reg Rv = lowerExpr(E->Rhs);
  B->moveInto(Result, Rv, Types.boolTy());
  if (!B->terminated())
    B->br(DoneB);
  B->setBlock(DoneB);
  return Result;
}

Reg Lowerer::lowerBinary(BinaryExpr *E) {
  switch (E->Op) {
  case BinOp::Assign:
    return lowerAssign(E);
  case BinOp::And:
  case BinOp::Or:
    return lowerShortCircuit(E);
  case BinOp::Eq:
  case BinOp::Ne: {
    Reg L = lowerExpr(E->Lhs);
    Reg Rv = lowerExpr(E->Rhs);
    Type *OperandTy = R.Rels.upperBound(E->Lhs->Ty, E->Rhs->Ty);
    assert(OperandTy && "checker validated comparability");
    return B->equality(E->Op == BinOp::Ne, L, Rv, OperandTy,
                       Types.boolTy());
  }
  default: {
    Reg L = lowerExpr(E->Lhs);
    Reg Rv = lowerExpr(E->Rhs);
    Opcode Opc;
    Type *ResTy = Types.boolTy();
    switch (E->Op) {
    case BinOp::Add:
      Opc = Opcode::IntAdd;
      ResTy = Types.intTy();
      break;
    case BinOp::Sub:
      Opc = Opcode::IntSub;
      ResTy = Types.intTy();
      break;
    case BinOp::Mul:
      Opc = Opcode::IntMul;
      ResTy = Types.intTy();
      break;
    case BinOp::Div:
      Opc = Opcode::IntDiv;
      ResTy = Types.intTy();
      break;
    case BinOp::Mod:
      Opc = Opcode::IntMod;
      ResTy = Types.intTy();
      break;
    case BinOp::Lt:
      Opc = Opcode::IntLt;
      break;
    case BinOp::Le:
      Opc = Opcode::IntLe;
      break;
    case BinOp::Gt:
      Opc = Opcode::IntGt;
      break;
    case BinOp::Ge:
      Opc = Opcode::IntGe;
      break;
    default:
      assert(false && "handled above");
      return NoReg;
    }
    return B->binop(Opc, L, Rv, ResTy);
  }
  }
}

Reg Lowerer::lowerTernary(TernaryExpr *E) {
  Reg Result = B->function()->newReg(E->Ty);
  Reg C = lowerExpr(E->Cond);
  IrBlock *ThenB = B->newBlock();
  IrBlock *ElseB = B->newBlock();
  IrBlock *DoneB = B->newBlock();
  B->condBr(C, ThenB, ElseB);
  B->setBlock(ThenB);
  Reg T = lowerExpr(E->Then);
  B->moveInto(Result, T, E->Ty);
  if (!B->terminated())
    B->br(DoneB);
  B->setBlock(ElseB);
  Reg F = lowerExpr(E->Else);
  B->moveInto(Result, F, E->Ty);
  if (!B->terminated())
    B->br(DoneB);
  B->setBlock(DoneB);
  return Result;
}

Reg Lowerer::lowerExpr(Expr *E) {
  switch (E->kind()) {
  case ExprKind::TypeLit:
    assert(false && "type literal survived checking");
    return NoReg;
  case ExprKind::IntLit: {
    auto *L = cast<IntLitExpr>(E);
    if (E->Ty->isByte())
      return B->constByte((uint8_t)L->Value, E->Ty);
    return B->constInt(L->Value, E->Ty);
  }
  case ExprKind::ByteLit:
    return B->constByte(cast<ByteLitExpr>(E)->Value, E->Ty);
  case ExprKind::BoolLit:
    return B->constBool(cast<BoolLitExpr>(E)->Value, E->Ty);
  case ExprKind::StringLit:
    return B->constString(cast<StringLitExpr>(E)->Value, E->Ty);
  case ExprKind::NullLit:
    return B->constNull(E->Ty);
  case ExprKind::This:
    return thisReg();
  case ExprKind::TupleLit: {
    auto *T = cast<TupleLitExpr>(E);
    if (T->Elems.empty())
      return B->constVoid(E->Ty);
    if (T->Elems.size() == 1)
      return lowerExpr(T->Elems[0]);
    std::vector<Reg> Elems;
    for (Expr *Elem : T->Elems)
      Elems.push_back(lowerExpr(Elem));
    return B->tupleCreate(std::move(Elems), E->Ty);
  }
  case ExprKind::Name:
    return lowerName(cast<NameExpr>(E));
  case ExprKind::Member:
    return lowerMember(cast<MemberExpr>(E));
  case ExprKind::IndexOp: {
    auto *I = cast<IndexExpr>(E);
    Reg Base = lowerExpr(I->Base);
    Reg Index = lowerExpr(I->Index);
    return B->arrayGet(Base, Index, E->Ty);
  }
  case ExprKind::Call:
    return lowerCall(cast<CallExpr>(E));
  case ExprKind::Binary:
    return lowerBinary(cast<BinaryExpr>(E));
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Reg V = lowerExpr(U->Operand);
    return B->unop(U->Op == UnOp::Neg ? Opcode::IntNeg : Opcode::BoolNot,
                   V, E->Ty);
  }
  case ExprKind::Ternary:
    return lowerTernary(cast<TernaryExpr>(E));
  }
  assert(false && "unknown expression kind");
  return NoReg;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowerer::lowerBlockStmts(BlockStmt *Block) {
  for (Stmt *S : Block->Stmts) {
    if (B->terminated())
      return; // Unreachable code after return/break.
    lowerStmt(S);
  }
}

void Lowerer::lowerStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Block:
    lowerBlockStmts(cast<BlockStmt>(S));
    return;
  case StmtKind::LocalDecl: {
    for (LocalVar *V : cast<LocalDeclStmt>(S)->Vars) {
      V->Reg = (int)B->function()->newReg(V->Ty);
      if (V->Init) {
        Reg Init = lowerExpr(V->Init);
        B->moveInto((Reg)V->Reg, Init, V->Ty);
      } else {
        // Default value: zero/false/null/().
        Reg D = defaultValue(V->Ty);
        B->moveInto((Reg)V->Reg, D, V->Ty);
      }
    }
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    Reg C = lowerExpr(I->Cond);
    IrBlock *ThenB = B->newBlock();
    IrBlock *ElseB = I->Else ? B->newBlock() : nullptr;
    IrBlock *DoneB = B->newBlock();
    B->condBr(C, ThenB, ElseB ? ElseB : DoneB);
    B->setBlock(ThenB);
    lowerStmt(I->Then);
    if (!B->terminated())
      B->br(DoneB);
    if (ElseB) {
      B->setBlock(ElseB);
      lowerStmt(I->Else);
      if (!B->terminated())
        B->br(DoneB);
    }
    B->setBlock(DoneB);
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    IrBlock *HeadB = B->newBlock();
    IrBlock *BodyB = B->newBlock();
    IrBlock *DoneB = B->newBlock();
    B->br(HeadB);
    B->setBlock(HeadB);
    Reg C = lowerExpr(W->Cond);
    B->condBr(C, BodyB, DoneB);
    B->setBlock(BodyB);
    BreakTargets.push_back(DoneB);
    ContinueTargets.push_back(HeadB);
    lowerStmt(W->Body);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (!B->terminated())
      B->br(HeadB);
    B->setBlock(DoneB);
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    F->Var->Reg = (int)B->function()->newReg(F->Var->Ty);
    Reg Init = lowerExpr(F->Var->Init);
    B->moveInto((Reg)F->Var->Reg, Init, F->Var->Ty);
    IrBlock *HeadB = B->newBlock();
    IrBlock *BodyB = B->newBlock();
    IrBlock *UpdateB = B->newBlock();
    IrBlock *DoneB = B->newBlock();
    B->br(HeadB);
    B->setBlock(HeadB);
    if (F->Cond) {
      Reg C = lowerExpr(F->Cond);
      B->condBr(C, BodyB, DoneB);
    } else {
      B->br(BodyB);
    }
    B->setBlock(BodyB);
    BreakTargets.push_back(DoneB);
    ContinueTargets.push_back(UpdateB);
    lowerStmt(F->Body);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    if (!B->terminated())
      B->br(UpdateB);
    B->setBlock(UpdateB);
    if (F->Update)
      lowerExpr(F->Update);
    B->br(HeadB);
    B->setBlock(DoneB);
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    Reg V = Ret->Value ? lowerExpr(Ret->Value)
                       : B->constVoid(Types.voidTy());
    B->ret({V});
    return;
  }
  case StmtKind::Break:
    assert(!BreakTargets.empty());
    B->br(BreakTargets.back());
    B->setBlock(B->newBlock()); // Unreachable continuation.
    return;
  case StmtKind::Continue:
    assert(!ContinueTargets.empty());
    B->br(ContinueTargets.back());
    B->setBlock(B->newBlock());
    return;
  case StmtKind::ExprEval:
    lowerExpr(cast<ExprStmt>(S)->E);
    return;
  case StmtKind::Empty:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

void Lowerer::lowerBody(MethodDecl *Method) {
  IrFunction *F = FuncOf[Method];
  IrBuilder Builder(M, F);
  if (!Method->Body) {
    // Abstract method: callable only through a dispatch that resolves
    // to an override; a direct hit is a bug.
    Builder.setBlock(Builder.newBlock());
    Builder.trap(TrapKind::Unreachable, Method->Loc);
    return;
  }
  B = &Builder;
  CurMethod = Method;
  CurClass = Method->Owner;
  Builder.setBlock(Builder.newBlock());
  lowerBlockStmts(Method->Body);
  if (!Builder.terminated()) {
    if (F->RetTypes[0]->isVoid())
      Builder.ret({Builder.constVoid(Types.voidTy())});
    else
      Builder.trap(TrapKind::MissingReturn, Method->Loc);
  }
  B = nullptr;
}

void Lowerer::lowerCtorBody(ClassDecl *C) {
  MethodDecl *Ctor = C->Ctor;
  IrFunction *F = FuncOf[Ctor];
  IrBuilder Builder(M, F);
  B = &Builder;
  CurMethod = Ctor;
  CurClass = C;
  Builder.setBlock(Builder.newBlock());
  Type *Self = Types.selfType(C->Def);
  // 1. Super constructor call.
  if (C->Parent) {
    auto *ParentTy = cast<ClassType>(C->Def->ParentAsWritten);
    std::vector<Reg> Args;
    Args.push_back(thisReg());
    for (Expr *A : Ctor->SuperArgs)
      Args.push_back(lowerExpr(A));
    Reg VoidDst = F->newReg(Types.voidTy());
    Builder.callFunc(FuncOf[C->Parent->Ctor], ParentTy->args(), Args,
                     {VoidDst});
  }
  // 2. Auto-assigned fields (paper (a4): new(f, g) binds parameters to
  // the same-named fields).
  for (FieldDecl *Field : Ctor->AutoAssign) {
    LocalVar *P = nullptr;
    for (LocalVar *Param : Ctor->Params)
      if (Param->Name == Field->Name)
        P = Param;
    assert(P && "auto-assign parameter missing");
    Builder.fieldSet(thisReg(), Field->Index, (Reg)P->Reg, Self);
  }
  // 3. Field initializers.
  for (FieldDecl *Field : C->Fields) {
    if (!Field->Init)
      continue;
    Reg V = lowerExpr(Field->Init);
    Builder.fieldSet(thisReg(), Field->Index, V, Self);
  }
  // 4. Body.
  if (Ctor->Body)
    lowerBlockStmts(Ctor->Body);
  if (!Builder.terminated())
    Builder.ret({Builder.constVoid(Types.voidTy())});
  B = nullptr;
}

void Lowerer::lowerGlobals() {
  for (GlobalDecl *G : R.M.Globals)
    M.Globals.push_back(IrGlobal{*G->Name, G->Ty, G->Index});
  IrFunction *F = M.newFunction("$init");
  F->RetTypes.push_back(Types.voidTy());
  M.Init = F;
  IrBuilder Builder(M, F);
  B = &Builder;
  CurMethod = nullptr;
  CurClass = nullptr;
  Builder.setBlock(Builder.newBlock());
  for (GlobalDecl *G : R.M.InitOrder) {
    if (!G->Init)
      continue;
    Reg V = lowerExpr(G->Init);
    Builder.globalSet(G->Index, V);
  }
  Builder.ret({Builder.constVoid(Types.voidTy())});
  B = nullptr;
}

void Lowerer::lowerAllBodies() {
  for (ClassDecl *C : R.M.Classes) {
    lowerCtorBody(C);
    for (MethodDecl *Me : C->Methods)
      lowerBody(Me);
  }
  for (MethodDecl *F : R.M.Funcs)
    lowerBody(F);
}

Reg Lowerer::defaultValue(Type *Ty) {
  switch (Ty->kind()) {
  case TypeKind::Prim:
    switch (cast<PrimType>(Ty)->prim()) {
    case PrimKind::Void:
      return B->constVoid(Ty);
    case PrimKind::Bool:
      return B->constBool(false, Ty);
    case PrimKind::Byte:
      return B->constByte(0, Ty);
    case PrimKind::Int:
      return B->constInt(0, Ty);
    }
    break;
  case TypeKind::Class:
  case TypeKind::Array:
  case TypeKind::Function:
    return B->constNull(Ty);
  case TypeKind::Tuple:
  case TypeKind::TypeParam: {
    Reg D = B->function()->newReg(Ty);
    B->emit(Opcode::ConstDefault, {D}, {}, Ty);
    return D;
  }
  }
  assert(false && "unknown type kind");
  return NoReg;
}

bool Lowerer::run() {
  createClasses();
  createFunctionStubs();
  lowerGlobals();
  lowerAllBodies();
  return true;
}
