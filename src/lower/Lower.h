//===- lower/Lower.h - AST to IR lowering -----------------------*- C++ -*-===//
///
/// \file
/// Lowers a checked module to polymorphic IR:
///
/// * classes become IrClasses with full layouts (field types rewritten
///   in terms of the leaf class's own type parameters) and vtables;
/// * methods take their receiver as parameter 0 — which is also what
///   makes `A.m` a plain function value (paper §2.2, b3);
/// * `C.new` lowers through a synthesized wrapper (allocate + invoke
///   constructor) so constructors are first-class too (b7);
/// * the four universal operators and System builtins get tiny
///   synthesized functions, created on demand, so that `int.+`, `T.==`,
///   and `A.!<B>` are ordinary closures (b8-b15) — while *direct*
///   operator applications inline to single instructions;
/// * direct calls adapt the syntactic argument list to the callee's
///   declared parameter shape statically (tuple create/spread);
///   indirect calls keep the caller's shape and rely on the runtime's
///   dynamic adaptation until normalization removes it (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_LOWER_LOWER_H
#define VIRGIL_LOWER_LOWER_H

#include "ir/IrBuilder.h"
#include "sema/Resolver.h"

#include <map>

namespace virgil {

class Lowerer {
public:
  Lowerer(Resolver &R, IrModule &M);

  /// Lowers the whole module; returns false on internal errors
  /// (diagnostics carry details).
  bool run();

private:
  // Module-level structure.
  void createClasses();
  void createFunctionStubs();
  IrFunction *stubFor(MethodDecl *Method);
  IrFunction *wrapperFor(ClassDecl *C);
  void lowerGlobals();
  void lowerAllBodies();

  // Synthesized helpers (created on demand, cached).
  IrFunction *eqFunc(bool Negated);
  IrFunction *castFunc(bool IsQuery);
  IrFunction *intArith(OpSel Op);
  IrFunction *cmpFunc(OpSel Op, bool IsByte);
  IrFunction *builtinFunc(BuiltinKind Kind);
  IrFunction *arrayNewFunc();

  // Per-body lowering.
  void lowerBody(MethodDecl *Method);
  void lowerCtorBody(ClassDecl *C);

  // Statements.
  void lowerStmt(Stmt *S);
  void lowerBlockStmts(BlockStmt *B);

  // Expressions. Returns the value register (void values get a real
  // register pre-normalization).
  Reg lowerExpr(Expr *E);
  Reg lowerName(NameExpr *E);
  Reg lowerMember(MemberExpr *E);
  Reg lowerCall(CallExpr *E);
  Reg lowerBinary(BinaryExpr *E);
  Reg lowerAssign(BinaryExpr *E);
  Reg lowerTernary(TernaryExpr *E);
  Reg lowerShortCircuit(BinaryExpr *E);

  /// Adapts the syntactic args of a direct call to the callee's
  /// declared parameter count.
  std::vector<Reg> adaptArgs(const std::vector<Expr *> &Args,
                             const std::vector<Type *> &ParamTys,
                             SourceLoc Loc);

  /// Class-part type arguments for a method of \p Owner reached through
  /// a receiver of static type \p RecvTy.
  std::vector<Type *> classPartArgs(Type *RecvTy, ClassDecl *Owner);

  /// Full type-argument vector (class part + method part) for a method
  /// reference.
  std::vector<Type *> fullTypeArgs(const RefInfo &Ref, MethodDecl *Method);

  /// Builds a closure value for a resolved reference (paper §2.2).
  Reg closureFor(const RefInfo &Ref, Type *FnTy, Expr *BoundBase,
                 SourceLoc Loc);

  Reg thisReg() const { return 0; }

  /// Emits the default value of \p Ty (0 / false / null / ()); emits a
  /// ConstDefault for type parameters and tuples, which the runtime (or
  /// post-mono rewriting) materializes.
  Reg defaultValue(Type *Ty);

  Resolver &R;
  IrModule &M;
  TypeStore &Types;

  std::map<MethodDecl *, IrFunction *> FuncOf;
  std::map<ClassDecl *, IrFunction *> WrapperOf;
  std::map<ClassDecl *, IrClass *> ClassOf;

  // Synthesized-function caches.
  IrFunction *EqFn = nullptr, *NeFn = nullptr;
  IrFunction *CastFn = nullptr, *QueryFn = nullptr;
  std::map<int, IrFunction *> ArithFns;
  std::map<std::pair<int, bool>, IrFunction *> CmpFns;
  std::map<int, IrFunction *> BuiltinFns;
  IrFunction *ArrayNewFn = nullptr;

  // Current body state.
  IrBuilder *B = nullptr;
  MethodDecl *CurMethod = nullptr;
  ClassDecl *CurClass = nullptr;
  std::vector<IrBlock *> BreakTargets;
  std::vector<IrBlock *> ContinueTargets;
};

} // namespace virgil

#endif // VIRGIL_LOWER_LOWER_H
