//===- parse/Parser.cpp ---------------------------------------------------===//

#include "parse/Parser.h"

#include <cassert>

using namespace virgil;

Parser::Parser(const SourceFile &File, Arena &Nodes, StringInterner &Idents,
               DiagEngine &Diags)
    : File(File), Nodes(Nodes), Diags(Diags) {
  NewIdent = Idents.intern("new");
  Lexer Lex(File, Idents, Diags);
  Tokens = Lex.lexAll();
}

Token Parser::take() {
  Token T = cur();
  if (Index + 1 < Tokens.size())
    ++Index;
  return T;
}

bool Parser::accept(TokKind K) {
  if (!at(K))
    return false;
  take();
  return true;
}

void Parser::error(const char *Message) {
  if (!Speculating)
    Diags.error(cur().Loc, Message);
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  if (!Speculating) {
    std::string Msg = std::string("expected ") + Lexer::kindName(K) +
                      " in " + Context + ", found " +
                      Lexer::kindName(cur().Kind);
    Diags.error(cur().Loc, Msg);
  }
  return false;
}

void Parser::syncToDeclOrStmt() {
  // Skip forward to a likely statement/declaration boundary.
  while (!at(TokKind::End)) {
    TokKind K = cur().Kind;
    if (K == TokKind::Semi) {
      take();
      return;
    }
    if (K == TokKind::RBrace || K == TokKind::KwClass ||
        K == TokKind::KwDef || K == TokKind::KwVar)
      return;
    take();
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TypeRef *Parser::parseType() {
  SourceLoc Loc = cur().Loc;
  TypeRef *Atom = parseTypeAtom();
  if (!Atom)
    return nullptr;
  if (accept(TokKind::Arrow)) {
    TypeRef *Ret = parseType(); // Right-associative.
    if (!Ret)
      return nullptr;
    return Nodes.make<FuncTypeRef>(Loc, Atom, Ret);
  }
  return Atom;
}

TypeRef *Parser::parseTypeAtom() {
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::LParen)) {
    std::vector<TypeRef *> Elems;
    if (!at(TokKind::RParen)) {
      do {
        TypeRef *E = parseType();
        if (!E)
          return nullptr;
        Elems.push_back(E);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "tuple type"))
      return nullptr;
    return Nodes.make<TupleTypeRef>(Loc, std::move(Elems));
  }
  if (at(TokKind::Identifier)) {
    Token T = take();
    std::vector<TypeRef *> Args;
    if (at(TokKind::Lt) && !parseTypeArgs(Args))
      return nullptr;
    return Nodes.make<NamedTypeRef>(Loc, T.Name, std::move(Args));
  }
  error("expected a type");
  return nullptr;
}

bool Parser::parseTypeArgs(std::vector<TypeRef *> &Out) {
  if (!accept(TokKind::Lt))
    return true; // Absent is fine.
  do {
    TypeRef *T = parseType();
    if (!T)
      return false;
    Out.push_back(T);
  } while (accept(TokKind::Comma));
  return expect(TokKind::Gt, "type arguments");
}

/// Tokens that may legally follow a complete operand; used to decide
/// whether a speculative `<...>` was really a type-argument list.
static bool canFollowValue(TokKind K) {
  switch (K) {
  case TokKind::LParen:
  case TokKind::RParen:
  case TokKind::RBracket:
  case TokKind::RBrace:
  case TokKind::Comma:
  case TokKind::Semi:
  case TokKind::Colon:
  case TokKind::Dot:
  case TokKind::Question:
  case TokKind::EqEq:
  case TokKind::NotEq:
  case TokKind::AndAnd:
  case TokKind::OrOr:
  case TokKind::Assign:
  case TokKind::End:
    return true;
  default:
    return false;
  }
}

bool Parser::tryParseTypeArgs(std::vector<TypeRef *> &Out) {
  if (!at(TokKind::Lt))
    return false;
  size_t Saved = Index;
  bool SavedSpec = Speculating;
  Speculating = true;
  std::vector<TypeRef *> Args;
  bool Ok = parseTypeArgs(Args) && !Args.empty() &&
            canFollowValue(cur().Kind);
  Speculating = SavedSpec;
  if (!Ok) {
    Index = Saved;
    return false;
  }
  Out = std::move(Args);
  return true;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() {
  Expr *Lhs = parseTernary();
  if (!Lhs)
    return nullptr;
  if (at(TokKind::Assign)) {
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseExpr(); // Right-associative.
    if (!Rhs)
      return nullptr;
    return Nodes.make<BinaryExpr>(Loc, BinOp::Assign, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseTernary() {
  Expr *Cond = parseOr();
  if (!Cond)
    return nullptr;
  if (at(TokKind::Question)) {
    SourceLoc Loc = take().Loc;
    Expr *Then = parseTernary();
    if (!Then || !expect(TokKind::Colon, "conditional expression"))
      return nullptr;
    Expr *Else = parseTernary();
    if (!Else)
      return nullptr;
    return Nodes.make<TernaryExpr>(Loc, Cond, Then, Else);
  }
  return Cond;
}

Expr *Parser::parseOr() {
  Expr *Lhs = parseAnd();
  if (!Lhs)
    return nullptr;
  while (at(TokKind::OrOr)) {
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = Nodes.make<BinaryExpr>(Loc, BinOp::Or, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseAnd() {
  Expr *Lhs = parseCompare();
  if (!Lhs)
    return nullptr;
  while (at(TokKind::AndAnd)) {
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseCompare();
    if (!Rhs)
      return nullptr;
    Lhs = Nodes.make<BinaryExpr>(Loc, BinOp::And, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseCompare() {
  Expr *Lhs = parseAdd();
  if (!Lhs)
    return nullptr;
  for (;;) {
    BinOp Op;
    switch (cur().Kind) {
    case TokKind::EqEq:
      Op = BinOp::Eq;
      break;
    case TokKind::NotEq:
      Op = BinOp::Ne;
      break;
    case TokKind::Lt:
      Op = BinOp::Lt;
      break;
    case TokKind::LtEq:
      Op = BinOp::Le;
      break;
    case TokKind::Gt:
      Op = BinOp::Gt;
      break;
    case TokKind::GtEq:
      Op = BinOp::Ge;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseAdd();
    if (!Rhs)
      return nullptr;
    Lhs = Nodes.make<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseAdd() {
  Expr *Lhs = parseMul();
  if (!Lhs)
    return nullptr;
  while (at(TokKind::Plus) || at(TokKind::Minus)) {
    BinOp Op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseMul();
    if (!Rhs)
      return nullptr;
    Lhs = Nodes.make<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
  return Lhs;
}

Expr *Parser::parseMul() {
  Expr *Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  for (;;) {
    BinOp Op;
    switch (cur().Kind) {
    case TokKind::Star:
      Op = BinOp::Mul;
      break;
    case TokKind::Slash:
      Op = BinOp::Div;
      break;
    case TokKind::Percent:
      Op = BinOp::Mod;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = take().Loc;
    Expr *Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = Nodes.make<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseUnary() {
  if (at(TokKind::Minus)) {
    SourceLoc Loc = take().Loc;
    Expr *E = parseUnary();
    if (!E)
      return nullptr;
    return Nodes.make<UnaryExpr>(Loc, UnOp::Neg, E);
  }
  if (at(TokKind::Bang)) {
    SourceLoc Loc = take().Loc;
    Expr *E = parseUnary();
    if (!E)
      return nullptr;
    return Nodes.make<UnaryExpr>(Loc, UnOp::Not, E);
  }
  return parsePostfix();
}

std::vector<Expr *> Parser::parseArgList() {
  std::vector<Expr *> Args;
  if (!at(TokKind::RParen)) {
    do {
      Expr *A = parseExpr();
      if (!A)
        break;
      Args.push_back(A);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "argument list");
  return Args;
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  for (;;) {
    if (at(TokKind::Dot)) {
      SourceLoc Loc = take().Loc;
      auto *M = Nodes.make<MemberExpr>(Loc, E);
      switch (cur().Kind) {
      case TokKind::Identifier:
        M->Sel = MemberSel::Name;
        M->Name = take().Name;
        break;
      case TokKind::KwNew:
        take();
        M->Sel = MemberSel::Name;
        M->Name = NewIdent;
        break;
      case TokKind::IntLit:
        M->Sel = MemberSel::TupleIndex;
        M->TupleIndex = (int)take().IntValue;
        break;
      case TokKind::EqEq:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Eq;
        break;
      case TokKind::NotEq:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Ne;
        break;
      case TokKind::Bang:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Cast;
        break;
      case TokKind::Question:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Query;
        break;
      case TokKind::Plus:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Add;
        break;
      case TokKind::Minus:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Sub;
        break;
      case TokKind::Star:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Mul;
        break;
      case TokKind::Slash:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Div;
        break;
      case TokKind::Percent:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Mod;
        break;
      case TokKind::Lt:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Lt;
        break;
      case TokKind::LtEq:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Le;
        break;
      case TokKind::Gt:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Gt;
        break;
      case TokKind::GtEq:
        take();
        M->Sel = MemberSel::Op;
        M->Op = OpSel::Ge;
        break;
      default:
        error("expected member name, tuple index, or operator after '.'");
        return nullptr;
      }
      // Optional explicit type arguments: a.m<int>, A.!<B>, f.==<T>.
      if (at(TokKind::Lt)) {
        if (M->Sel == MemberSel::Op) {
          // Unambiguous after an operator selector.
          if (!parseTypeArgs(M->TypeArgs))
            return nullptr;
        } else {
          tryParseTypeArgs(M->TypeArgs);
        }
      }
      E = M;
      continue;
    }
    if (at(TokKind::LParen)) {
      SourceLoc Loc = take().Loc;
      std::vector<Expr *> Args = parseArgList();
      E = Nodes.make<CallExpr>(Loc, E, std::move(Args));
      continue;
    }
    if (at(TokKind::LBracket)) {
      SourceLoc Loc = take().Loc;
      Expr *Idx = parseExpr();
      if (!Idx || !expect(TokKind::RBracket, "array index"))
        return nullptr;
      E = Nodes.make<IndexExpr>(Loc, E, Idx);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLit:
    return Nodes.make<IntLitExpr>(Loc, take().IntValue);
  case TokKind::CharLit:
    return Nodes.make<ByteLitExpr>(Loc, (uint8_t)take().IntValue);
  case TokKind::StringLit:
    return Nodes.make<StringLitExpr>(Loc, take().StringValue);
  case TokKind::KwTrue:
    take();
    return Nodes.make<BoolLitExpr>(Loc, true);
  case TokKind::KwFalse:
    take();
    return Nodes.make<BoolLitExpr>(Loc, false);
  case TokKind::KwNull:
    take();
    return Nodes.make<NullLitExpr>(Loc);
  case TokKind::KwThis:
    take();
    return Nodes.make<ThisExpr>(Loc);
  case TokKind::Identifier: {
    Token T = take();
    std::vector<TypeRef *> TypeArgs;
    if (at(TokKind::Lt))
      tryParseTypeArgs(TypeArgs);
    return Nodes.make<NameExpr>(Loc, T.Name, std::move(TypeArgs));
  }
  case TokKind::LParen: {
    // Speculative: a parenthesized *type* followed by '.' and an
    // operator selector is a type literal, e.g. (int, byte).== or
    // ((int, int) -> int).?(f). Only operator members disambiguate:
    // `.0` or `.name` after parentheses always means a value
    // expression such as (p, k).0.
    {
      size_t Saved = Index;
      bool SavedSpec = Speculating;
      Speculating = true;
      TypeRef *T = parseType();
      bool OpFollows = false;
      if (T && at(TokKind::Dot)) {
        switch (ahead().Kind) {
        case TokKind::EqEq:
        case TokKind::NotEq:
        case TokKind::Bang:
        case TokKind::Question:
          OpFollows = true;
          break;
        default:
          break;
        }
      }
      bool IsTypeLit = OpFollows && T->kind() != TypeRefKind::Named;
      Speculating = SavedSpec;
      if (IsTypeLit)
        return Nodes.make<TypeLitExpr>(Loc, T);
      Index = Saved;
    }
    take();
    std::vector<Expr *> Elems;
    if (!at(TokKind::RParen)) {
      do {
        Expr *E = parseExpr();
        if (!E)
          return nullptr;
        Elems.push_back(E);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "parenthesized expression"))
      return nullptr;
    if (Elems.size() == 1)
      return Elems[0];
    return Nodes.make<TupleLitExpr>(Loc, std::move(Elems));
  }
  default:
    error("expected an expression");
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = cur().Loc;
  if (!expect(TokKind::LBrace, "block"))
    return nullptr;
  std::vector<Stmt *> Stmts;
  while (!at(TokKind::RBrace) && !at(TokKind::End)) {
    Stmt *S = parseStmt();
    if (!S) {
      syncToDeclOrStmt();
      continue;
    }
    Stmts.push_back(S);
  }
  expect(TokKind::RBrace, "block");
  return Nodes.make<BlockStmt>(Loc, std::move(Stmts));
}

Stmt *Parser::parseLocalDecl(bool IsMutable) {
  SourceLoc Loc = cur().Loc;
  std::vector<LocalVar *> Vars;
  do {
    auto *V = Nodes.make<LocalVar>();
    V->Loc = cur().Loc;
    V->IsMutable = IsMutable;
    if (!at(TokKind::Identifier)) {
      error("expected variable name");
      return nullptr;
    }
    V->Name = take().Name;
    if (accept(TokKind::Colon)) {
      V->DeclaredType = parseType();
      if (!V->DeclaredType)
        return nullptr;
    }
    if (accept(TokKind::Assign)) {
      V->Init = parseExpr();
      if (!V->Init)
        return nullptr;
    }
    Vars.push_back(V);
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "variable declaration");
  return Nodes.make<LocalDeclStmt>(Loc, std::move(Vars));
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = take().Loc; // 'if'
  if (!expect(TokKind::LParen, "if condition"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "if condition"))
    return nullptr;
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Nodes.make<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = take().Loc; // 'while'
  if (!expect(TokKind::LParen, "while condition"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "while condition"))
    return nullptr;
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Nodes.make<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = take().Loc; // 'for'
  if (!expect(TokKind::LParen, "for loop"))
    return nullptr;
  // `for (i = init; cond; update)` introduces i as a fresh variable.
  auto *Var = Nodes.make<LocalVar>();
  Var->Loc = cur().Loc;
  Var->IsMutable = true;
  if (!at(TokKind::Identifier)) {
    error("expected induction variable in for loop");
    return nullptr;
  }
  Var->Name = take().Name;
  if (accept(TokKind::Colon)) {
    Var->DeclaredType = parseType();
    if (!Var->DeclaredType)
      return nullptr;
  }
  if (!expect(TokKind::Assign, "for loop initialization"))
    return nullptr;
  Var->Init = parseExpr();
  if (!Var->Init || !expect(TokKind::Semi, "for loop"))
    return nullptr;
  Expr *Cond = nullptr;
  if (!at(TokKind::Semi)) {
    Cond = parseExpr();
    if (!Cond)
      return nullptr;
  }
  if (!expect(TokKind::Semi, "for loop"))
    return nullptr;
  Expr *Update = nullptr;
  if (!at(TokKind::RParen)) {
    Update = parseExpr();
    if (!Update)
      return nullptr;
  }
  if (!expect(TokKind::RParen, "for loop"))
    return nullptr;
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Nodes.make<ForStmt>(Loc, Var, Cond, Update, Body);
}

Stmt *Parser::parseStmt() {
  switch (cur().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwVar:
    take();
    return parseLocalDecl(/*IsMutable=*/true);
  case TokKind::KwDef:
    take();
    return parseLocalDecl(/*IsMutable=*/false);
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwReturn: {
    SourceLoc Loc = take().Loc;
    Expr *Value = nullptr;
    if (!at(TokKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    expect(TokKind::Semi, "return statement");
    return Nodes.make<ReturnStmt>(Loc, Value);
  }
  case TokKind::KwBreak: {
    SourceLoc Loc = take().Loc;
    expect(TokKind::Semi, "break statement");
    return Nodes.make<BreakStmt>(Loc);
  }
  case TokKind::KwContinue: {
    SourceLoc Loc = take().Loc;
    expect(TokKind::Semi, "continue statement");
    return Nodes.make<ContinueStmt>(Loc);
  }
  case TokKind::Semi: {
    SourceLoc Loc = take().Loc;
    return Nodes.make<EmptyStmt>(Loc);
  }
  default: {
    SourceLoc Loc = cur().Loc;
    Expr *E = parseExpr();
    if (!E)
      return nullptr;
    expect(TokKind::Semi, "expression statement");
    return Nodes.make<ExprStmt>(Loc, E);
  }
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::vector<Ident> Parser::parseTypeParamNames() {
  std::vector<Ident> Names;
  if (!accept(TokKind::Lt))
    return Names;
  do {
    if (!at(TokKind::Identifier)) {
      error("expected type parameter name");
      break;
    }
    Names.push_back(take().Name);
  } while (accept(TokKind::Comma));
  expect(TokKind::Gt, "type parameter list");
  return Names;
}

std::vector<LocalVar *> Parser::parseParamList() {
  std::vector<LocalVar *> Params;
  expect(TokKind::LParen, "parameter list");
  if (!at(TokKind::RParen)) {
    do {
      auto *P = Nodes.make<LocalVar>();
      P->Loc = cur().Loc;
      P->IsMutable = false;
      if (!at(TokKind::Identifier)) {
        error("expected parameter name");
        break;
      }
      P->Name = take().Name;
      if (accept(TokKind::Colon)) {
        P->DeclaredType = parseType();
        if (!P->DeclaredType)
          break;
      }
      Params.push_back(P);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "parameter list");
  return Params;
}

MethodDecl *Parser::parseMethodRest(Ident Name, SourceLoc Loc,
                                    bool IsPrivate) {
  auto *M = Nodes.make<MethodDecl>();
  M->Loc = Loc;
  M->Name = Name;
  M->IsPrivate = IsPrivate;
  M->TypeParamNames = parseTypeParamNames();
  M->Params = parseParamList();
  if (accept(TokKind::Arrow)) {
    M->RetTypeRef = parseType();
    if (!M->RetTypeRef)
      return nullptr;
  }
  if (accept(TokKind::Semi))
    return M; // Abstract method (paper (n2)).
  M->Body = parseBlock();
  return M;
}

FieldDecl *Parser::parseFieldRest(Ident Name, SourceLoc Loc,
                                  bool IsMutable) {
  auto *F = Nodes.make<FieldDecl>();
  F->Loc = Loc;
  F->Name = Name;
  F->IsMutable = IsMutable;
  if (accept(TokKind::Colon)) {
    F->DeclaredType = parseType();
    if (!F->DeclaredType)
      return nullptr;
  }
  if (accept(TokKind::Assign)) {
    F->Init = parseExpr();
    if (!F->Init)
      return nullptr;
  }
  expect(TokKind::Semi, "field declaration");
  return F;
}

MethodDecl *Parser::parseCtor(ClassDecl *C) {
  SourceLoc Loc = take().Loc; // 'new'
  auto *M = Nodes.make<MethodDecl>();
  M->Loc = Loc;
  M->Name = NewIdent;
  M->IsCtor = true;
  // Constructor parameters may omit their type, in which case they bind
  // to the same-named field and auto-assign it (paper (a4): new(f, g)).
  expect(TokKind::LParen, "constructor");
  if (!at(TokKind::RParen)) {
    do {
      auto *P = Nodes.make<LocalVar>();
      P->Loc = cur().Loc;
      P->IsMutable = false;
      if (!at(TokKind::Identifier)) {
        error("expected constructor parameter name");
        break;
      }
      P->Name = take().Name;
      if (accept(TokKind::Colon)) {
        P->DeclaredType = parseType();
        if (!P->DeclaredType)
          break;
      }
      M->Params.push_back(P);
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "constructor");
  // Optional `super(args)` clause before the body.
  if (at(TokKind::Identifier) && *cur().Name == "super") {
    take();
    M->HasSuper = true;
    if (expect(TokKind::LParen, "super clause"))
      M->SuperArgs = parseArgList();
  }
  M->Body = parseBlock();
  (void)C;
  return M;
}

void Parser::parseClassMember(ClassDecl *C) {
  bool IsPrivate = accept(TokKind::KwPrivate);
  if (at(TokKind::KwNew)) {
    MethodDecl *Ctor = parseCtor(C);
    if (!Ctor)
      return;
    if (C->Ctor)
      Diags.error(Ctor->Loc, "duplicate constructor");
    Ctor->Owner = C;
    C->Ctor = Ctor;
    return;
  }
  bool IsDef = accept(TokKind::KwDef);
  bool IsVar = !IsDef && accept(TokKind::KwVar);
  if (!IsDef && !IsVar) {
    error("expected class member");
    syncToDeclOrStmt();
    if (at(TokKind::KwDef) || at(TokKind::KwVar) || at(TokKind::KwNew))
      return;
    take();
    return;
  }
  if (!at(TokKind::Identifier)) {
    error("expected member name");
    syncToDeclOrStmt();
    return;
  }
  SourceLoc Loc = cur().Loc;
  Ident Name = take().Name;
  // `def m(...)` and `def m<T>(...)` are methods; everything else is a
  // field. `var` members are always fields.
  if (IsDef && (at(TokKind::LParen) || at(TokKind::Lt))) {
    MethodDecl *M = parseMethodRest(Name, Loc, IsPrivate);
    if (!M)
      return;
    M->Owner = C;
    C->Methods.push_back(M);
    return;
  }
  FieldDecl *F = parseFieldRest(Name, Loc, /*IsMutable=*/IsVar);
  if (!F)
    return;
  F->Owner = C;
  C->Fields.push_back(F);
}

ClassDecl *Parser::parseClass() {
  SourceLoc Loc = take().Loc; // 'class'
  auto *C = Nodes.make<ClassDecl>();
  C->Loc = Loc;
  if (!at(TokKind::Identifier)) {
    error("expected class name");
    return nullptr;
  }
  C->Name = take().Name;
  C->TypeParamNames = parseTypeParamNames();
  // Compact constructor-field syntax: class C(x: int, y: bool) { ... }.
  if (accept(TokKind::LParen)) {
    if (!at(TokKind::RParen)) {
      do {
        auto *F = Nodes.make<FieldDecl>();
        F->Loc = cur().Loc;
        F->IsMutable = false;
        if (!at(TokKind::Identifier)) {
          error("expected field name");
          break;
        }
        F->Name = take().Name;
        if (!expect(TokKind::Colon, "compact field"))
          break;
        F->DeclaredType = parseType();
        if (!F->DeclaredType)
          break;
        F->Owner = C;
        C->CompactFields.push_back(F);
        C->Fields.push_back(F);
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "compact field list");
  }
  if (accept(TokKind::KwExtends)) {
    TypeRef *P = parseTypeAtom();
    if (P) {
      if (auto *N = dyn_cast<NamedTypeRef>(P))
        C->ParentRef = N;
      else
        Diags.error(P->Loc, "superclass must be a class type");
    }
  }
  if (!expect(TokKind::LBrace, "class body"))
    return C;
  while (!at(TokKind::RBrace) && !at(TokKind::End))
    parseClassMember(C);
  expect(TokKind::RBrace, "class body");
  return C;
}

void Parser::parseTopDef(Module *M) {
  take(); // 'def'
  if (!at(TokKind::Identifier)) {
    error("expected name after 'def'");
    syncToDeclOrStmt();
    return;
  }
  SourceLoc Loc = cur().Loc;
  Ident Name = take().Name;
  if (at(TokKind::LParen) || at(TokKind::Lt)) {
    MethodDecl *F = parseMethodRest(Name, Loc, /*IsPrivate=*/false);
    if (F)
      M->Funcs.push_back(F);
    return;
  }
  // Top-level immutable value.
  auto *G = Nodes.make<GlobalDecl>();
  G->Loc = Loc;
  G->Name = Name;
  G->IsMutable = false;
  if (accept(TokKind::Colon)) {
    G->DeclaredType = parseType();
    if (!G->DeclaredType)
      return;
  }
  if (accept(TokKind::Assign)) {
    G->Init = parseExpr();
    if (!G->Init)
      return;
  }
  expect(TokKind::Semi, "top-level declaration");
  M->Globals.push_back(G);
  M->InitOrder.push_back(G);
}

void Parser::parseTopVar(Module *M) {
  take(); // 'var'
  do {
    auto *G = Nodes.make<GlobalDecl>();
    G->Loc = cur().Loc;
    G->IsMutable = true;
    if (!at(TokKind::Identifier)) {
      error("expected variable name");
      syncToDeclOrStmt();
      return;
    }
    G->Name = take().Name;
    if (accept(TokKind::Colon)) {
      G->DeclaredType = parseType();
      if (!G->DeclaredType)
        return;
    }
    if (accept(TokKind::Assign)) {
      G->Init = parseExpr();
      if (!G->Init)
        return;
    }
    M->Globals.push_back(G);
    M->InitOrder.push_back(G);
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "top-level variable");
}

void Parser::parseTopLevel(Module *M) {
  switch (cur().Kind) {
  case TokKind::KwClass: {
    ClassDecl *C = parseClass();
    if (C)
      M->Classes.push_back(C);
    return;
  }
  case TokKind::KwDef:
    parseTopDef(M);
    return;
  case TokKind::KwVar:
    parseTopVar(M);
    return;
  default:
    error("expected a top-level declaration");
    syncToDeclOrStmt();
    if (at(TokKind::RBrace) || at(TokKind::Semi))
      take();
    return;
  }
}

Module *Parser::parseModule() {
  auto *M = Nodes.make<Module>();
  while (!at(TokKind::End))
    parseTopLevel(M);
  return M;
}
