//===- parse/Lexer.cpp ----------------------------------------------------===//

#include "parse/Lexer.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace virgil;

Lexer::Lexer(const SourceFile &File, StringInterner &Idents,
             DiagEngine &Diags)
    : File(File), Text(File.text()), Idents(Idents), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end");
  return Text[Pos++];
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokKind Kind, uint32_t Begin) {
  Token T;
  T.Kind = Kind;
  T.Loc = SourceLoc{Begin};
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

Token Lexer::lexNumber(uint32_t Begin) {
  int64_t Value = 0;
  bool Overflow = false;
  while (!atEnd() && std::isdigit((unsigned char)peek())) {
    Value = Value * 10 + (advance() - '0');
    if (Value > INT64_MAX / 2)
      Overflow = true;
  }
  if (Overflow)
    Diags.error(SourceLoc{Begin}, "integer literal too large");
  Token T = makeToken(TokKind::IntLit, Begin);
  T.IntValue = Value;
  return T;
}

static const std::unordered_map<std::string_view, TokKind> &keywords() {
  static const std::unordered_map<std::string_view, TokKind> Map = {
      {"class", TokKind::KwClass},       {"extends", TokKind::KwExtends},
      {"def", TokKind::KwDef},           {"var", TokKind::KwVar},
      {"new", TokKind::KwNew},           {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},         {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},           {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},       {"continue", TokKind::KwContinue},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"null", TokKind::KwNull},         {"this", TokKind::KwThis},
      {"private", TokKind::KwPrivate},
  };
  return Map;
}

Token Lexer::lexIdent(uint32_t Begin) {
  while (!atEnd() &&
         (std::isalnum((unsigned char)peek()) || peek() == '_'))
    ++Pos;
  std::string_view Spelling = Text.substr(Begin, Pos - Begin);
  auto It = keywords().find(Spelling);
  if (It != keywords().end())
    return makeToken(It->second, Begin);
  Token T = makeToken(TokKind::Identifier, Begin);
  T.Name = Idents.intern(Spelling);
  return T;
}

char Lexer::lexEscape() {
  if (atEnd()) {
    Diags.error(SourceLoc{Pos}, "unterminated escape sequence");
    return '\0';
  }
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
  case '\'':
  case '"':
    return C;
  default:
    Diags.error(SourceLoc{Pos - 1}, "unknown escape sequence");
    return C;
  }
}

Token Lexer::lexChar(uint32_t Begin) {
  char Value = 0;
  if (atEnd()) {
    Diags.error(SourceLoc{Begin}, "unterminated character literal");
  } else {
    char C = advance();
    Value = C == '\\' ? lexEscape() : C;
  }
  if (!atEnd() && peek() == '\'')
    ++Pos;
  else
    Diags.error(SourceLoc{Begin}, "unterminated character literal");
  Token T = makeToken(TokKind::CharLit, Begin);
  T.IntValue = (uint8_t)Value;
  return T;
}

Token Lexer::lexString(uint32_t Begin) {
  std::string Value;
  while (!atEnd() && peek() != '"' && peek() != '\n') {
    char C = advance();
    Value.push_back(C == '\\' ? lexEscape() : C);
  }
  if (!atEnd() && peek() == '"')
    ++Pos;
  else
    Diags.error(SourceLoc{Begin}, "unterminated string literal");
  Token T = makeToken(TokKind::StringLit, Begin);
  T.StringValue = std::move(Value);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  uint32_t Begin = Pos;
  if (atEnd())
    return makeToken(TokKind::End, Begin);
  char C = advance();
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen, Begin);
  case ')':
    return makeToken(TokKind::RParen, Begin);
  case '{':
    return makeToken(TokKind::LBrace, Begin);
  case '}':
    return makeToken(TokKind::RBrace, Begin);
  case '[':
    return makeToken(TokKind::LBracket, Begin);
  case ']':
    return makeToken(TokKind::RBracket, Begin);
  case ',':
    return makeToken(TokKind::Comma, Begin);
  case ';':
    return makeToken(TokKind::Semi, Begin);
  case ':':
    return makeToken(TokKind::Colon, Begin);
  case '.':
    return makeToken(TokKind::Dot, Begin);
  case '?':
    return makeToken(TokKind::Question, Begin);
  case '+':
    return makeToken(TokKind::Plus, Begin);
  case '*':
    return makeToken(TokKind::Star, Begin);
  case '/':
    return makeToken(TokKind::Slash, Begin);
  case '%':
    return makeToken(TokKind::Percent, Begin);
  case '-':
    if (peek() == '>') {
      ++Pos;
      return makeToken(TokKind::Arrow, Begin);
    }
    return makeToken(TokKind::Minus, Begin);
  case '=':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokKind::EqEq, Begin);
    }
    return makeToken(TokKind::Assign, Begin);
  case '!':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokKind::NotEq, Begin);
    }
    return makeToken(TokKind::Bang, Begin);
  case '<':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokKind::LtEq, Begin);
    }
    return makeToken(TokKind::Lt, Begin);
  case '>':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokKind::GtEq, Begin);
    }
    return makeToken(TokKind::Gt, Begin);
  case '&':
    if (peek() == '&') {
      ++Pos;
      return makeToken(TokKind::AndAnd, Begin);
    }
    Diags.error(SourceLoc{Begin}, "unexpected character '&'");
    return makeToken(TokKind::End, Begin);
  case '|':
    if (peek() == '|') {
      ++Pos;
      return makeToken(TokKind::OrOr, Begin);
    }
    Diags.error(SourceLoc{Begin}, "unexpected character '|'");
    return makeToken(TokKind::End, Begin);
  case '\'':
    return lexChar(Begin);
  case '"':
    return lexString(Begin);
  default:
    if (std::isdigit((unsigned char)C)) {
      --Pos;
      return lexNumber(Begin);
    }
    if (std::isalpha((unsigned char)C) || C == '_') {
      --Pos;
      return lexIdent(Begin);
    }
    Diags.error(SourceLoc{Begin}, "unexpected character");
    return makeToken(TokKind::End, Begin);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.Kind == TokKind::End;
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}

const char *Lexer::kindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::End:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::CharLit:
    return "character literal";
  case TokKind::StringLit:
    return "string literal";
  case TokKind::KwClass:
    return "'class'";
  case TokKind::KwExtends:
    return "'extends'";
  case TokKind::KwDef:
    return "'def'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwNull:
    return "'null'";
  case TokKind::KwThis:
    return "'this'";
  case TokKind::KwPrivate:
    return "'private'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::LtEq:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::GtEq:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Question:
    return "'?'";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  }
  return "unknown token";
}
