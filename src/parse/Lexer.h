//===- parse/Lexer.h - Token definitions and lexer --------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the Virgil core language. The lexer produces the whole
/// token stream up front, which keeps the parser's speculative
/// type-argument parsing (needed to disambiguate `f<int>(x)` from
/// `a < b`) a matter of saving and restoring an index.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_PARSE_LEXER_H
#define VIRGIL_PARSE_LEXER_H

#include "support/Diagnostics.h"
#include "support/Source.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace virgil {

enum class TokKind : uint8_t {
  End,
  Identifier,
  IntLit,
  CharLit,
  StringLit,
  // Keywords.
  KwClass,
  KwExtends,
  KwDef,
  KwVar,
  KwNew,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwNull,
  KwThis,
  KwPrivate,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  Arrow,   // ->
  Assign,  // =
  EqEq,    // ==
  NotEq,   // !=
  Lt,
  LtEq,
  Gt,
  GtEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,     // !
  Question, // ?
  AndAnd,   // &&
  OrOr,     // ||
};

/// One token; Text views into the source buffer.
struct Token {
  TokKind Kind = TokKind::End;
  SourceLoc Loc;
  std::string_view Text;
  int64_t IntValue = 0;      ///< For IntLit / CharLit.
  std::string StringValue;   ///< For StringLit (escapes processed).
  Ident Name = nullptr;      ///< For Identifier.
};

/// Converts source text into tokens; reports malformed input to Diags.
class Lexer {
public:
  Lexer(const SourceFile &File, StringInterner &Idents, DiagEngine &Diags);

  /// Lexes the whole file.
  std::vector<Token> lexAll();

  /// Spelled name of a token kind, for diagnostics.
  static const char *kindName(TokKind Kind);

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Text.size(); }
  void skipTrivia();
  Token makeToken(TokKind Kind, uint32_t Begin);
  Token lexNumber(uint32_t Begin);
  Token lexIdent(uint32_t Begin);
  Token lexChar(uint32_t Begin);
  Token lexString(uint32_t Begin);
  /// Decodes one escape sequence after a backslash; returns the byte.
  char lexEscape();

  const SourceFile &File;
  std::string_view Text;
  StringInterner &Idents;
  DiagEngine &Diags;
  uint32_t Pos = 0;
};

} // namespace virgil

#endif // VIRGIL_PARSE_LEXER_H
