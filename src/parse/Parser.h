//===- parse/Parser.h - Recursive-descent parser ----------------*- C++ -*-===//
///
/// \file
/// Parses one source file into an ast::Module. Syntax follows the
/// paper's examples: C-descendant statements and expressions with
/// Scala-style declarations (`var x: T = e`, `def m(a: A) -> B`).
///
/// The classic `f<int>(x)` vs `a < b` ambiguity is resolved by
/// speculative parsing: after an identifier (or operator member), a
/// `<`-list is accepted as type arguments only if it parses as types and
/// is followed by a token that can follow a value (never the start of
/// another operand).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_PARSE_PARSER_H
#define VIRGIL_PARSE_PARSER_H

#include "ast/Ast.h"
#include "parse/Lexer.h"
#include "support/Arena.h"

namespace virgil {

class Parser {
public:
  Parser(const SourceFile &File, Arena &Nodes, StringInterner &Idents,
         DiagEngine &Diags);

  /// Parses the whole file; returns a Module even on errors (check
  /// Diags.hasErrors()).
  Module *parseModule();

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Index]; }
  const Token &ahead(unsigned N = 1) const {
    size_t I = Index + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token take();
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);
  void error(const char *Message);
  void syncToDeclOrStmt();

  // Declarations.
  void parseTopLevel(Module *M);
  ClassDecl *parseClass();
  void parseClassMember(ClassDecl *C);
  MethodDecl *parseMethodRest(Ident Name, SourceLoc Loc, bool IsPrivate);
  MethodDecl *parseCtor(ClassDecl *C);
  FieldDecl *parseFieldRest(Ident Name, SourceLoc Loc, bool IsMutable);
  void parseTopDef(Module *M);
  void parseTopVar(Module *M);
  std::vector<Ident> parseTypeParamNames();
  std::vector<LocalVar *> parseParamList();

  // Types.
  TypeRef *parseType();
  TypeRef *parseTypeAtom();
  /// Parses `<T, ...>` if present; null vector means absent.
  bool parseTypeArgs(std::vector<TypeRef *> &Out);
  /// Speculatively parses type arguments in expression position.
  bool tryParseTypeArgs(std::vector<TypeRef *> &Out);

  // Statements.
  Stmt *parseStmt();
  BlockStmt *parseBlock();
  Stmt *parseLocalDecl(bool IsMutable);
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseFor();

  // Expressions.
  Expr *parseExpr();       ///< Assignment level.
  Expr *parseTernary();
  Expr *parseOr();
  Expr *parseAnd();
  Expr *parseCompare();
  Expr *parseAdd();
  Expr *parseMul();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  std::vector<Expr *> parseArgList();

  const SourceFile &File;
  Arena &Nodes;
  DiagEngine &Diags;
  Ident NewIdent = nullptr;
  std::vector<Token> Tokens;
  size_t Index = 0;
  /// True while speculatively parsing (suppresses diagnostics).
  bool Speculating = false;
};

} // namespace virgil

#endif // VIRGIL_PARSE_PARSER_H
