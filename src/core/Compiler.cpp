//===- core/Compiler.cpp --------------------------------------------------===//

#include "core/Compiler.h"

#include "ir/IrVerifier.h"
#include "lower/Lower.h"
#include "parse/Parser.h"
#include "vm/BytecodeEmitter.h"

using namespace virgil;

Program::Program() = default;
Program::~Program() = default;

InterpResult Program::interpret() {
  Interpreter I(*PolyIr);
  return I.run();
}

InterpResult Program::interpretMono() {
  assert(MonoIr && "pipeline stopped before monomorphization");
  Interpreter I(*MonoIr);
  return I.run();
}

InterpResult Program::interpretNorm() {
  assert(NormIr && "pipeline stopped before normalization");
  Interpreter I(*NormIr);
  return I.run();
}

VmResult Program::runVm() {
  assert(Bytecode && "pipeline stopped before bytecode emission");
  Vm V(*Bytecode);
  return V.run();
}

std::unique_ptr<Program> Compiler::compile(const std::string &Name,
                                           const std::string &Source,
                                           std::string *ErrorOut) {
  auto P = std::make_unique<Program>();
  P->File = std::make_unique<SourceFile>(Name, Source);
  P->Diags.setFile(P->File.get());

  auto fail = [&]() -> std::unique_ptr<Program> {
    if (ErrorOut)
      *ErrorOut = P->Diags.render();
    return nullptr;
  };
  auto internalFail = [&](const std::vector<std::string> &Problems,
                          const char *Stage) -> std::unique_ptr<Program> {
    std::string Msg = std::string("internal error after ") + Stage + ":";
    for (const std::string &Pr : Problems)
      Msg += "\n  " + Pr;
    if (ErrorOut)
      *ErrorOut = Msg;
    return nullptr;
  };

  // Parse.
  Parser TheParser(*P->File, P->AstNodes, P->Idents, P->Diags);
  P->Ast = TheParser.parseModule();
  if (P->Diags.hasErrors())
    return fail();

  // Semantic analysis.
  P->TheSema = std::make_unique<Sema>(*P->Ast, P->Types, P->Idents,
                                      P->Diags, P->AstNodes);
  if (!P->TheSema->run())
    return fail();

  // Lower to polymorphic IR.
  P->PolyIr = std::make_unique<IrModule>(P->Types);
  Lowerer Lower(P->TheSema->resolver(), *P->PolyIr);
  if (!Lower.run()) {
    P->Diags.error(SourceLoc::invalid(), "lowering failed");
    return fail();
  }
  if (Options.Verify) {
    auto Problems = verifyModule(*P->PolyIr);
    if (!Problems.empty())
      return internalFail(Problems, "lowering");
  }
  P->Stats.Poly = computeStats(*P->PolyIr);
  if (Options.StopAfterLower)
    return P;

  // Monomorphize (§4.3).
  Monomorphizer Mono(*P->PolyIr);
  P->MonoIr = Mono.run();
  if (!P->MonoIr) {
    P->Diags.error(SourceLoc::invalid(),
                   "monomorphization exceeded the instantiation cap "
                   "(undetected polymorphic recursion?)");
    return fail();
  }
  P->Stats.Mono = Mono.stats();
  if (Options.Verify) {
    auto Problems = verifyModule(*P->MonoIr);
    if (!Problems.empty())
      return internalFail(Problems, "monomorphization");
  }
  if (Options.Optimize)
    P->Stats.OptAfterMono = optimizeModule(*P->MonoIr, Options.Opt);
  P->Stats.MonoIr = computeStats(*P->MonoIr);

  // Normalize tuples away (§4.2).
  Normalizer Norm(*P->MonoIr);
  P->NormIr = Norm.run();
  P->Stats.Norm = Norm.stats();
  if (Options.Verify) {
    auto Problems = verifyModule(*P->NormIr);
    if (!Problems.empty())
      return internalFail(Problems, "normalization");
  }
  if (Options.Optimize)
    P->Stats.OptAfterNorm = optimizeModule(*P->NormIr, Options.Opt);
  P->Stats.NormIr = computeStats(*P->NormIr);

  // Emit bytecode.
  P->Bytecode = emitBytecode(*P->NormIr);
  return P;
}
