//===- core/Compiler.cpp --------------------------------------------------===//

#include "core/Compiler.h"

#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "lower/Lower.h"
#include "parse/Parser.h"
#include "vm/BytecodeEmitter.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

using namespace virgil;

bool virgil::defaultMonoShareEnabled() {
  // Read once per process: the CI share-stress lane flips the default
  // for every compile in the binary without threading a flag through
  // each construction site (same pattern as VIRGIL_VM_GC).
  static const bool On = [] {
    const char *E = std::getenv("VIRGIL_MONO_SHARE");
    if (!E)
      return true;
    return !(std::string_view(E) == "off" || std::string_view(E) == "0" ||
             std::string_view(E) == "false");
  }();
  return On;
}

namespace {

/// Stopwatch for per-phase timings: each call to mark() banks the time
/// since the previous mark into one PhaseTimings field.
class PhaseClock {
public:
  explicit PhaseClock(PhaseTimings &T)
      : T(T), Start(Clock::now()), Last(Start) {}

  void mark(double PhaseTimings::*Field) {
    auto Now = Clock::now();
    T.*Field += std::chrono::duration<double, std::milli>(Now - Last).count();
    Last = Now;
  }
  void finish() {
    T.TotalMs =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  PhaseTimings &T;
  Clock::time_point Start;
  Clock::time_point Last;
};

/// Folds one optimizer invocation's per-pass wall times into the
/// compile-wide breakdown (both opt phases accumulate into the same
/// fields; OptMonoMs/OptNormMs remain the per-phase totals).
void bankPassTimes(PhaseTimings &T, const OptStats &S) {
  T.PassDevirtMs += S.DevirtMs;
  T.PassInlineMs += S.InlineMs;
  T.PassFoldMs += S.FoldMs;
  T.PassCopyPropMs += S.CopyPropMs;
  T.PassDceMs += S.DceMs;
  T.PassEscapeMs += S.EscapeMs;
  T.PassDeadFieldsMs += S.DeadFieldsMs;
  T.PassSsaMs += S.SsaMs;
}

} // namespace

PhaseTimings &PhaseTimings::operator+=(const PhaseTimings &O) {
  ParseMs += O.ParseMs;
  SemaMs += O.SemaMs;
  LowerMs += O.LowerMs;
  MonoMs += O.MonoMs;
  OptMonoMs += O.OptMonoMs;
  NormMs += O.NormMs;
  OptNormMs += O.OptNormMs;
  ShareMs += O.ShareMs;
  EmitMs += O.EmitMs;
  TotalMs += O.TotalMs;
  PassDevirtMs += O.PassDevirtMs;
  PassInlineMs += O.PassInlineMs;
  PassFoldMs += O.PassFoldMs;
  PassCopyPropMs += O.PassCopyPropMs;
  PassDceMs += O.PassDceMs;
  PassEscapeMs += O.PassEscapeMs;
  PassDeadFieldsMs += O.PassDeadFieldsMs;
  PassSsaMs += O.PassSsaMs;
  return *this;
}

std::string PhaseTimings::toString() const {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "parse %.2fms sema %.2fms lower %.2fms mono %.2fms "
                "opt-mono %.2fms norm %.2fms opt-norm %.2fms share %.2fms "
                "emit %.2fms total %.2fms (passes: devirt %.2f inline %.2f "
                "fold %.2f copyprop %.2f dce %.2f escape %.2f "
                "deadfields %.2f ssa %.2f)",
                ParseMs, SemaMs, LowerMs, MonoMs, OptMonoMs, NormMs,
                OptNormMs, ShareMs, EmitMs, TotalMs, PassDevirtMs,
                PassInlineMs, PassFoldMs, PassCopyPropMs, PassDceMs,
                PassEscapeMs, PassDeadFieldsMs, PassSsaMs);
  return Buf;
}

std::string PhaseTimings::toJson() const {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "{\"parse_ms\":%.3f,\"sema_ms\":%.3f,\"lower_ms\":%.3f,"
                "\"mono_ms\":%.3f,\"opt_mono_ms\":%.3f,\"norm_ms\":%.3f,"
                "\"opt_norm_ms\":%.3f,\"share_ms\":%.3f,\"emit_ms\":%.3f,"
                "\"total_ms\":%.3f,\"pass_devirt_ms\":%.3f,"
                "\"pass_inline_ms\":%.3f,\"pass_fold_ms\":%.3f,"
                "\"pass_copyprop_ms\":%.3f,\"pass_dce_ms\":%.3f,"
                "\"pass_escape_ms\":%.3f,\"pass_deadfields_ms\":%.3f,"
                "\"pass_ssa_ms\":%.3f}",
                ParseMs, SemaMs, LowerMs, MonoMs, OptMonoMs, NormMs,
                OptNormMs, ShareMs, EmitMs, TotalMs, PassDevirtMs,
                PassInlineMs, PassFoldMs, PassCopyPropMs, PassDceMs,
                PassEscapeMs, PassDeadFieldsMs, PassSsaMs);
  return Buf;
}

Program::Program() = default;
Program::~Program() = default;

InterpResult Program::interpret() {
  Interpreter I(*PolyIr);
  return I.run();
}

InterpResult Program::interpretMono() {
  assert(MonoIr && "pipeline stopped before monomorphization");
  Interpreter I(*MonoIr);
  return I.run();
}

InterpResult Program::interpretNorm() {
  assert(NormIr && "pipeline stopped before normalization");
  Interpreter I(*NormIr);
  return I.run();
}

VmResult Program::runVm(VmOptions Opts) {
  assert(Bytecode && "pipeline stopped before bytecode emission");
  Vm V(*Bytecode, Opts);
  return V.run();
}

std::unique_ptr<Program> Compiler::compile(const std::string &Name,
                                           const std::string &Source,
                                           std::string *ErrorOut) {
  auto P = std::make_unique<Program>();
  P->File = std::make_unique<SourceFile>(Name, Source);
  P->Diags.setFile(P->File.get());
  PhaseClock Timer(P->Stats.Timings);

  auto fail = [&]() -> std::unique_ptr<Program> {
    if (ErrorOut)
      *ErrorOut = P->Diags.render();
    return nullptr;
  };
  auto internalFail = [&](const std::vector<std::string> &Problems,
                          const char *Stage) -> std::unique_ptr<Program> {
    std::string Msg = std::string("internal error after ") + Stage + ":";
    for (const std::string &Pr : Problems)
      Msg += "\n  " + Pr;
    if (ErrorOut)
      *ErrorOut = Msg;
    return nullptr;
  };

  // Parse.
  Parser TheParser(*P->File, P->AstNodes, P->Idents, P->Diags);
  P->Ast = TheParser.parseModule();
  if (P->Diags.hasErrors())
    return fail();
  Timer.mark(&PhaseTimings::ParseMs);

  // Semantic analysis.
  P->TheSema = std::make_unique<Sema>(*P->Ast, P->Types, P->Idents,
                                      P->Diags, P->AstNodes);
  if (!P->TheSema->run())
    return fail();
  Timer.mark(&PhaseTimings::SemaMs);

  // Lower to polymorphic IR.
  P->PolyIr = std::make_unique<IrModule>(P->Types);
  Lowerer Lower(P->TheSema->resolver(), *P->PolyIr);
  if (!Lower.run()) {
    P->Diags.error(SourceLoc::invalid(), "lowering failed");
    return fail();
  }
  if (Options.Verify) {
    auto Problems = verifyModule(*P->PolyIr);
    if (!Problems.empty())
      return internalFail(Problems, "lowering");
  }
  P->Stats.Poly = computeStats(*P->PolyIr);
  Timer.mark(&PhaseTimings::LowerMs);
  if (Options.StopAfterLower) {
    Timer.finish();
    return P;
  }

  // Monomorphize (§4.3).
  Monomorphizer Mono(*P->PolyIr);
  P->MonoIr = Mono.run();
  if (!P->MonoIr) {
    P->Diags.error(SourceLoc::invalid(),
                   "monomorphization exceeded the instantiation cap "
                   "(undetected polymorphic recursion?)");
    return fail();
  }
  P->Stats.Mono = Mono.stats();
  if (Options.Verify) {
    auto Problems = verifyModule(*P->MonoIr);
    if (!Problems.empty())
      return internalFail(Problems, "monomorphization");
  }
  Timer.mark(&PhaseTimings::MonoMs);
  // --dump-ir=<pass>: wrap each optimizer invocation so the hook can
  // print the module it is rewriting (the "ssa"/"sccp"/"loadelim"
  // dumps fire while that module is still in SSA form, phis visible).
  auto OptWithDump = [&](IrModule &M, const char *Phase) {
    OptOptions OO = Options.Opt;
    if (!Options.DumpIrAfter.empty()) {
      OO.DumpAfter = [&M, Phase, this](const char *Name) {
        if (Options.DumpIrAfter != Name)
          return;
        std::printf("// after %s (%s)\n%s", Name, Phase,
                    printModule(M).c_str());
      };
    }
    return optimizeModule(M, OO);
  };
  if (Options.Optimize) {
    P->Stats.OptAfterMono = OptWithDump(*P->MonoIr, "opt-mono");
    bankPassTimes(P->Stats.Timings, P->Stats.OptAfterMono);
  }
  P->Stats.MonoIr = computeStats(*P->MonoIr);
  Timer.mark(&PhaseTimings::OptMonoMs);

  // Normalize tuples away (§4.2).
  Normalizer Norm(*P->MonoIr);
  P->NormIr = Norm.run();
  P->Stats.Norm = Norm.stats();
  if (Options.Verify) {
    auto Problems = verifyModule(*P->NormIr);
    if (!Problems.empty())
      return internalFail(Problems, "normalization");
  }
  Timer.mark(&PhaseTimings::NormMs);
  if (Options.Optimize) {
    P->Stats.OptAfterNorm = OptWithDump(*P->NormIr, "opt-norm");
    bankPassTimes(P->Stats.Timings, P->Stats.OptAfterNorm);
  }
  Timer.mark(&PhaseTimings::OptNormMs);

  // Share identical specializations (bounds §4.3 code expansion). Runs
  // after every optimizer pass so the optimizer never sees merged
  // bodies; NormIr stats are computed afterwards so E5 expansion
  // numbers reflect what actually reaches the emitter.
  if (Options.ShareSpecializations) {
    P->Stats.Share = shareSpecializations(*P->NormIr);
    if (Options.Verify) {
      auto Problems = verifyModule(*P->NormIr);
      if (!Problems.empty())
        return internalFail(Problems, "specialization sharing");
    }
  }
  P->Stats.NormIr = computeStats(*P->NormIr);
  Timer.mark(&PhaseTimings::ShareMs);

  // Emit bytecode.
  P->Bytecode = emitBytecode(*P->NormIr);
  Timer.mark(&PhaseTimings::EmitMs);
  Timer.finish();
  return P;
}
