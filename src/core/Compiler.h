//===- core/Compiler.h - Public compiler API --------------------*- C++ -*-===//
///
/// \file
/// The library's front door. A Compiler turns Virgil-core source text
/// into a Program, which holds every pipeline stage:
///
///   source --parse/sema--> typed AST
///          --lower-------> polymorphic IR      (interpretable: the
///                                               paper's baseline)
///          --mono--------> monomorphic IR      (§4.3)
///          --opt---------> optimized mono IR   (fold/inline/devirt)
///          --normalize---> tuple-free IR       (§4.2)
///          --opt---------> optimized normal IR
///          --emit--------> bytecode            (VM target)
///
/// Each stage stays accessible so examples, tests, and the benchmark
/// harness can execute the same program under any strategy and compare
/// results and costs.
///
/// \code
///   virgil::Compiler Compiler;
///   std::string Error;
///   auto Program = Compiler.compile("demo", Source, &Error);
///   if (!Program) { ... report Error ... }
///   virgil::VmResult R = Program->runVm();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_CORE_COMPILER_H
#define VIRGIL_CORE_COMPILER_H

#include "interp/Interpreter.h"
#include "ir/IrStats.h"
#include "mono/Monomorphizer.h"
#include "mono/ShareSpecializations.h"
#include "normalize/Normalizer.h"
#include "opt/PassManager.h"
#include "sema/TypeChecker.h"
#include "vm/Vm.h"

#include <memory>
#include <string>

namespace virgil {

/// Process-wide default for specialization sharing, from
/// VIRGIL_MONO_SHARE (on/1/true | off/0/false); on when unset.
bool defaultMonoShareEnabled();

struct CompilerOptions {
  /// Stop after lowering (Program keeps only the polymorphic IR).
  bool StopAfterLower = false;
  /// Run the optimizer after monomorphization and after normalization.
  bool Optimize = true;
  OptOptions Opt;
  /// Run the IR verifier between stages; internal errors become
  /// compile errors.
  bool Verify = true;
  /// Merge specializations with identical normalized bodies after
  /// opt-norm (bounds §4.3 code expansion; observationally invisible).
  bool ShareSpecializations = defaultMonoShareEnabled();
  /// When non-empty, print the IR (via IrPrinter) to stdout after every
  /// run of the named optimizer pass — `virgilc --dump-ir=<pass>`.
  /// Accepts the OptOptions::DumpAfter names; "ssa"/"sccp"/"loadelim"
  /// dump while the module is still in SSA form, with phis visible.
  std::string DumpIrAfter;
};

/// Wall-clock milliseconds spent in each pipeline phase of one
/// compilation. The compile service aggregates these across a batch to
/// report where compile time goes (and what a cache hit skips).
struct PhaseTimings {
  double ParseMs = 0;
  double SemaMs = 0;
  double LowerMs = 0;
  double MonoMs = 0;
  double OptMonoMs = 0;
  double NormMs = 0;
  double OptNormMs = 0;
  double ShareMs = 0;
  double EmitMs = 0;
  double TotalMs = 0;
  /// Per-pass breakdown of the two opt phases (summed across rounds
  /// and both optimizeModule calls); the whole-phase OptMonoMs /
  /// OptNormMs stay authoritative for totals.
  double PassDevirtMs = 0;
  double PassInlineMs = 0;
  double PassFoldMs = 0;
  double PassCopyPropMs = 0;
  double PassDceMs = 0;
  double PassEscapeMs = 0;
  double PassDeadFieldsMs = 0;
  double PassSsaMs = 0;

  PhaseTimings &operator+=(const PhaseTimings &O);
  /// One line, e.g. "parse 0.12ms sema 0.34ms ... total 1.23ms".
  std::string toString() const;
  /// One flat JSON object, e.g. {"parse_ms":0.12,...,"total_ms":1.23}.
  /// Rides in server execute responses and the STATS surface.
  std::string toJson() const;
};

struct PipelineStats {
  MonoStats Mono;
  ShareStats Share;
  NormalizeStats Norm;
  OptStats OptAfterMono;
  OptStats OptAfterNorm;
  IrStats Poly;
  IrStats MonoIr;
  IrStats NormIr;
  PhaseTimings Timings;
};

/// A successfully compiled program with all its stages.
class Program {
public:
  Program();
  ~Program();
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// The checked AST and semantic tables.
  Module &ast() { return *Ast; }
  Resolver &resolver() { return TheSema->resolver(); }
  TypeStore &types() { return Types; }

  IrModule &polyIr() { return *PolyIr; }
  bool hasMonoIr() const { return MonoIr != nullptr; }
  IrModule &monoIr() { return *MonoIr; }
  bool hasNormIr() const { return NormIr != nullptr; }
  IrModule &normIr() { return *NormIr; }
  bool hasBytecode() const { return Bytecode != nullptr; }
  BcModule &bytecode() { return *Bytecode; }

  const PipelineStats &stats() const { return Stats; }

  /// Executes under the paper's baseline strategy: the polymorphic
  /// interpreter with runtime type arguments and dynamic tuple checks.
  InterpResult interpret();

  /// Executes the monomorphized (but still tuple-carrying) IR in the
  /// interpreter — isolates the cost of runtime type arguments.
  InterpResult interpretMono();

  /// Executes the normalized IR in the interpreter — isolates boxed
  /// tuples vs scalars under the same execution engine.
  InterpResult interpretNorm();

  /// Executes the compiled bytecode on the VM (the "native" strategy).
  /// \p Opts selects the execution-engine configuration (dispatch mode,
  /// fusion, inline caches) — the defaults are the fast path.
  VmResult runVm(VmOptions Opts = VmOptions());

private:
  friend class Compiler;

  TypeStore Types;
  StringInterner Idents;
  Arena AstNodes;
  std::unique_ptr<SourceFile> File;
  DiagEngine Diags;
  Module *Ast = nullptr;
  std::unique_ptr<Sema> TheSema;
  std::unique_ptr<IrModule> PolyIr;
  std::unique_ptr<IrModule> MonoIr;
  std::unique_ptr<IrModule> NormIr;
  std::unique_ptr<BcModule> Bytecode;
  PipelineStats Stats;
};

class Compiler {
public:
  explicit Compiler(CompilerOptions Options = CompilerOptions())
      : Options(Options) {}

  /// Compiles \p Source; on failure returns null and stores rendered
  /// diagnostics in \p ErrorOut (if non-null).
  std::unique_ptr<Program> compile(const std::string &Name,
                                   const std::string &Source,
                                   std::string *ErrorOut = nullptr);

  CompilerOptions &options() { return Options; }

private:
  CompilerOptions Options;
};

} // namespace virgil

#endif // VIRGIL_CORE_COMPILER_H
