//===- jit/Assembler.h - Minimal x86-64 instruction emitter ----*- C++ -*-===//
///
/// \file
/// Just enough of an x86-64 assembler for the baseline JIT: 64/32-bit
/// moves and ALU ops between registers and [base + disp] / [base +
/// index*8 + disp] memory operands, immediates, setcc, rel32 branches
/// with label fixups, and call/jmp through a register. Emission is
/// append-only into a byte buffer; the code arena copies the finished
/// function into executable memory (so emitted rel32 branches are only
/// ever intra-function and survive the copy verbatim).
///
/// Register encoding follows the hardware numbering; REX prefixes are
/// computed from the operand registers. No attempt is made at the full
/// ISA — every emitter below is exercised by the JIT templates and
/// differentially validated against the interpreter by the vm+jit
/// oracle strategy.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_JIT_ASSEMBLER_H
#define VIRGIL_JIT_ASSEMBLER_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace virgil {
namespace jit {

enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the low nibble of the 0F 9x / 0F 8x opcodes).
enum Cond : uint8_t {
  CC_O = 0x0,
  CC_B = 0x2,  ///< unsigned <
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_S = 0x8,
  CC_L = 0xC, ///< signed <
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

class Assembler {
public:
  std::vector<uint8_t> Buf;

  size_t size() const { return Buf.size(); }

  void byte(uint8_t B) { Buf.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back((uint8_t)(V >> (I * 8)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back((uint8_t)(V >> (I * 8)));
  }
  void patch32(size_t Pos, uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf[Pos + I] = (uint8_t)(V >> (I * 8));
  }

  // --- encoding primitives -------------------------------------------------

  void rex(bool W, uint8_t R, uint8_t X, uint8_t B) {
    uint8_t P = 0x40 | (W ? 8 : 0) | ((R >> 3) << 2) | ((X >> 3) << 1) |
                (B >> 3);
    if (P != 0x40 || W)
      Buf.push_back(P);
  }
  /// REX that must be present even when 0x40 (spl/bpl/sil/dil bytes).
  void rexForce(bool W, uint8_t R, uint8_t X, uint8_t B) {
    Buf.push_back((uint8_t)(0x40 | (W ? 8 : 0) | ((R >> 3) << 2) |
                            ((X >> 3) << 1) | (B >> 3)));
  }

  void modrm(uint8_t Mod, uint8_t RegOp, uint8_t Rm) {
    Buf.push_back((uint8_t)((Mod << 6) | ((RegOp & 7) << 3) | (Rm & 7)));
  }

  /// ModRM + SIB + disp for [Base + Disp]. Handles the RSP/R12 SIB and
  /// RBP/R13 zero-disp quirks.
  void mem(uint8_t RegOp, Reg Base, int32_t Disp) {
    bool NeedSib = (Base & 7) == RSP;
    uint8_t Mod;
    if (Disp == 0 && (Base & 7) != RBP)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    modrm(Mod, RegOp, NeedSib ? RSP : (Base & 7));
    if (NeedSib)
      Buf.push_back((uint8_t)(0x24)); // scale=1, index=none, base=rsp/r12
    if (Mod == 1)
      Buf.push_back((uint8_t)Disp);
    else if (Mod == 2)
      u32((uint32_t)Disp);
  }

  /// ModRM + SIB + disp for [Base + Index*8 + Disp].
  void memIdx8(uint8_t RegOp, Reg Base, Reg Index, int32_t Disp) {
    uint8_t Mod;
    if (Disp == 0 && (Base & 7) != RBP)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    modrm(Mod, RegOp, RSP); // SIB follows
    Buf.push_back((uint8_t)((3 << 6) | ((Index & 7) << 3) | (Base & 7)));
    if (Mod == 1)
      Buf.push_back((uint8_t)Disp);
    else if (Mod == 2)
      u32((uint32_t)Disp);
  }

  // --- moves ---------------------------------------------------------------

  void movRR(Reg Dst, Reg Src) { // 64-bit
    rex(true, Src, 0, Dst);
    byte(0x89);
    modrm(3, Src, Dst);
  }
  void movRR32(Reg Dst, Reg Src) {
    rex(false, Src, 0, Dst);
    byte(0x89);
    modrm(3, Src, Dst);
  }
  void movRI64(Reg Dst, uint64_t Imm) { // movabs
    rex(true, 0, 0, Dst);
    byte((uint8_t)(0xB8 | (Dst & 7)));
    u64(Imm);
  }
  void movRI32(Reg Dst, uint32_t Imm) { // zero-extends
    rex(false, 0, 0, Dst);
    byte((uint8_t)(0xB8 | (Dst & 7)));
    u32(Imm);
  }
  /// mov Dst, [Base + Disp] (64-bit load).
  void movRM(Reg Dst, Reg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    byte(0x8B);
    mem(Dst, Base, Disp);
  }
  /// mov [Base + Disp], Src (64-bit store).
  void movMR(Reg Base, int32_t Disp, Reg Src) {
    rex(true, Src, 0, Base);
    byte(0x89);
    mem(Src, Base, Disp);
  }
  /// mov Dst32, [Base + Disp] (32-bit load, zero-extends).
  void movRM32(Reg Dst, Reg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x8B);
    mem(Dst, Base, Disp);
  }
  /// movsxd Dst, dword [Base + Disp].
  void movsxdRM(Reg Dst, Reg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    byte(0x63);
    mem(Dst, Base, Disp);
  }
  /// mov Dst, [Base + Index*8 + Disp].
  void movRMIdx8(Reg Dst, Reg Base, Reg Index, int32_t Disp) {
    rex(true, Dst, Index, Base);
    byte(0x8B);
    memIdx8(Dst, Base, Index, Disp);
  }
  /// mov [Base + Index*8 + Disp], Src.
  void movMRIdx8(Reg Base, Reg Index, int32_t Disp, Reg Src) {
    rex(true, Src, Index, Base);
    byte(0x89);
    memIdx8(Src, Base, Index, Disp);
  }
  /// mov qword [Base + Disp], imm32 (sign-extended).
  void movMI32(Reg Base, int32_t Disp, int32_t Imm) {
    rex(true, 0, 0, Base);
    byte(0xC7);
    mem(0, Base, Disp);
    u32((uint32_t)Imm);
  }
  /// movzx Dst, SrcByteReg (low byte).
  void movzxRR8(Reg Dst, Reg Src) {
    rexForce(false, Dst, 0, Src);
    byte(0x0F);
    byte(0xB6);
    modrm(3, Dst, Src);
  }
  /// mov Dst32, Src32 (zero-extends to 64).
  void movzx32(Reg Dst, Reg Src) { movRR32(Dst, Src); }
  /// mov Dst32, imm32 in the patchable form; returns the buffer
  /// position of the 4-byte immediate (inline-cache call targets).
  size_t movRI32P(Reg Dst) {
    rex(false, 0, 0, Dst);
    byte((uint8_t)(0xB8 | (Dst & 7)));
    size_t Pos = Buf.size();
    u32(0xFFFFFFFFu);
    return Pos;
  }
  /// movabs Dst, imm64 in the patchable form; returns the buffer
  /// position of the 8-byte immediate (native call-site entry
  /// addresses, fixed up after the code is installed).
  size_t movRI64P(Reg Dst) {
    rex(true, 0, 0, Dst);
    byte((uint8_t)(0xB8 | (Dst & 7)));
    size_t Pos = Buf.size();
    u64(0);
    return Pos;
  }
  /// movzx Dst, word [Base + Disp].
  void movzxwRM(Reg Dst, Reg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x0F);
    byte(0xB7);
    mem(Dst, Base, Disp);
  }
  /// lea Dst, [Base + Disp].
  void leaRM(Reg Dst, Reg Base, int32_t Disp) {
    rex(true, Dst, 0, Base);
    byte(0x8D);
    mem(Dst, Base, Disp);
  }

  // --- ALU -----------------------------------------------------------------

  void aluRR(uint8_t Op, Reg Dst, Reg Src, bool W) {
    rex(W, Src, 0, Dst);
    byte(Op);
    modrm(3, Src, Dst);
  }
  void addRR(Reg Dst, Reg Src) { aluRR(0x01, Dst, Src, true); }
  void addRR32(Reg Dst, Reg Src) { aluRR(0x01, Dst, Src, false); }
  void subRR32(Reg Dst, Reg Src) { aluRR(0x29, Dst, Src, false); }
  void orRR(Reg Dst, Reg Src) { aluRR(0x09, Dst, Src, true); }
  void andRR8(Reg Dst, Reg Src) { // and dstb, srcb
    rexForce(false, Src, 0, Dst);
    byte(0x20);
    modrm(3, Src, Dst);
  }
  void orRR8(Reg Dst, Reg Src) {
    rexForce(false, Src, 0, Dst);
    byte(0x08);
    modrm(3, Src, Dst);
  }
  void imulRR32(Reg Dst, Reg Src) {
    rex(false, Dst, 0, Src);
    byte(0x0F);
    byte(0xAF);
    modrm(3, Dst, Src);
  }
  /// add Dst32, dword [Base + Disp].
  void addRM32(Reg Dst, Reg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x03);
    mem(Dst, Base, Disp);
  }
  /// sub Dst32, dword [Base + Disp].
  void subRM32(Reg Dst, Reg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x2B);
    mem(Dst, Base, Disp);
  }
  /// imul Dst32, dword [Base + Disp].
  void imulRM32(Reg Dst, Reg Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x0F);
    byte(0xAF);
    mem(Dst, Base, Disp);
  }
  void addRI(Reg Dst, int32_t Imm, bool W = true) {
    rex(W, 0, 0, Dst);
    if (Imm >= -128 && Imm <= 127) {
      byte(0x83);
      modrm(3, 0, Dst);
      byte((uint8_t)Imm);
    } else {
      byte(0x81);
      modrm(3, 0, Dst);
      u32((uint32_t)Imm);
    }
  }
  void addRI32(Reg Dst, int32_t Imm) { addRI(Dst, Imm, false); }
  void subRI(Reg Dst, int32_t Imm) {
    rex(true, 0, 0, Dst);
    if (Imm >= -128 && Imm <= 127) {
      byte(0x83);
      modrm(3, 5, Dst);
      byte((uint8_t)Imm);
    } else {
      byte(0x81);
      modrm(3, 5, Dst);
      u32((uint32_t)Imm);
    }
  }
  /// add qword [Base + Disp], imm8.
  void addMI8(Reg Base, int32_t Disp, int8_t Imm) {
    rex(true, 0, 0, Base);
    byte(0x83);
    mem(0, Base, Disp);
    byte((uint8_t)Imm);
  }
  void negR(Reg Dst) { // 64-bit
    rex(true, 0, 0, Dst);
    byte(0xF7);
    modrm(3, 3, Dst);
  }
  void negR32(Reg Dst) {
    rex(false, 0, 0, Dst);
    byte(0xF7);
    modrm(3, 3, Dst);
  }
  void cqo() {
    byte(0x48);
    byte(0x99);
  }
  void idivR(Reg Src) { // 64-bit signed divide rdx:rax by Src
    rex(true, 0, 0, Src);
    byte(0xF7);
    modrm(3, 7, Src);
  }
  void shrRI(Reg Dst, uint8_t Imm) {
    rex(true, 0, 0, Dst);
    byte(0xC1);
    modrm(3, 5, Dst);
    byte(Imm);
  }
  void shlRI(Reg Dst, uint8_t Imm) {
    rex(true, 0, 0, Dst);
    byte(0xC1);
    modrm(3, 4, Dst);
    byte(Imm);
  }
  /// lea Dst, [Base + Base] — i.e. Dst = Base*2 (closure packing).
  void leaRMIdx(Reg Dst, Reg Base, Reg Index, uint8_t Scale, int32_t Disp) {
    rex(true, Dst, Index, Base);
    byte(0x8D);
    uint8_t Mod;
    if (Disp == 0 && (Base & 7) != RBP)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    uint8_t Ss = Scale == 1 ? 0 : Scale == 2 ? 1 : Scale == 4 ? 2 : 3;
    modrm(Mod, Dst, RSP);
    Buf.push_back((uint8_t)((Ss << 6) | ((Index & 7) << 3) | (Base & 7)));
    if (Mod == 1)
      Buf.push_back((uint8_t)Disp);
    else if (Mod == 2)
      u32((uint32_t)Disp);
  }

  // --- compares / tests ----------------------------------------------------

  void cmpRR(Reg A, Reg B) { // 64-bit
    rex(true, B, 0, A);
    byte(0x39);
    modrm(3, B, A);
  }
  void cmpRR32(Reg A, Reg B) {
    rex(false, B, 0, A);
    byte(0x39);
    modrm(3, B, A);
  }
  void cmpRI32(Reg A, int32_t Imm, bool W = false) {
    rex(W, 0, 0, A);
    if (Imm >= -128 && Imm <= 127) {
      byte(0x83);
      modrm(3, 7, A);
      byte((uint8_t)Imm);
    } else {
      byte(0x81);
      modrm(3, 7, A);
      u32((uint32_t)Imm);
    }
  }
  /// cmp A32, imm32 in the always-4-byte form (never the imm8
  /// shortening); returns the immediate's buffer position so inline
  /// caches can patch the compared classId in place.
  size_t cmpRI32P(Reg A) {
    rex(false, 0, 0, A);
    byte(0x81);
    modrm(3, 7, A);
    size_t Pos = Buf.size();
    u32(0xFFFFFFFFu);
    return Pos;
  }
  /// cmp A, qword [Base + Disp].
  void cmpRM(Reg A, Reg Base, int32_t Disp) {
    rex(true, A, 0, Base);
    byte(0x3B);
    mem(A, Base, Disp);
  }
  /// cmp A32, dword [Base + Disp].
  void cmpRM32(Reg A, Reg Base, int32_t Disp) {
    rex(false, A, 0, Base);
    byte(0x3B);
    mem(A, Base, Disp);
  }
  /// cmp qword [Base + Disp], imm8.
  void cmpMI8(Reg Base, int32_t Disp, int8_t Imm) {
    rex(true, 0, 0, Base);
    byte(0x83);
    mem(7, Base, Disp);
    byte((uint8_t)Imm);
  }
  /// test low-byte(A), imm8 (closure tag probes).
  void testRI8(Reg A, uint8_t Imm) {
    rexForce(false, 0, 0, A);
    byte(0xF6);
    modrm(3, 0, A);
    byte(Imm);
  }
  void testRR(Reg A, Reg B) { // 64-bit
    rex(true, B, 0, A);
    byte(0x85);
    modrm(3, B, A);
  }
  void setcc(Cond C, Reg Dst) { // sets low byte; caller zero-extends
    rexForce(false, 0, 0, Dst);
    byte(0x0F);
    byte((uint8_t)(0x90 | C));
    modrm(3, 0, Dst);
  }

  // --- control flow --------------------------------------------------------

  /// jcc rel32; returns the fixup position of the rel32 field.
  size_t jcc32(Cond C) {
    byte(0x0F);
    byte((uint8_t)(0x80 | C));
    size_t Pos = Buf.size();
    u32(0);
    return Pos;
  }
  /// jmp rel32; returns the fixup position.
  size_t jmp32() {
    byte(0xE9);
    size_t Pos = Buf.size();
    u32(0);
    return Pos;
  }
  /// Resolves a rel32 fixup to jump to the current position.
  void bind(size_t FixupPos) {
    patch32(FixupPos, (uint32_t)(Buf.size() - (FixupPos + 4)));
  }
  /// Resolves a rel32 fixup to jump to an absolute buffer offset.
  void bindTo(size_t FixupPos, size_t TargetOff) {
    patch32(FixupPos, (uint32_t)(TargetOff - (FixupPos + 4)));
  }
  void callR(Reg Target) {
    rex(false, 0, 0, Target);
    byte(0xFF);
    modrm(3, 2, Target);
  }
  void jmpR(Reg Target) {
    rex(false, 0, 0, Target);
    byte(0xFF);
    modrm(3, 4, Target);
  }
  void ret() { byte(0xC3); }
  void pushR(Reg R) {
    rex(false, 0, 0, R);
    byte((uint8_t)(0x50 | (R & 7)));
  }
  void popR(Reg R) {
    rex(false, 0, 0, R);
    byte((uint8_t)(0x58 | (R & 7)));
  }
};

} // namespace jit
} // namespace virgil

#endif // VIRGIL_JIT_ASSEMBLER_H
