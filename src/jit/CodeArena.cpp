//===- jit/CodeArena.cpp --------------------------------------------------===//

#include "jit/CodeArena.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define VIRGIL_JIT_HAVE_MMAP 1
#endif

#if (defined(__x86_64__) || defined(_M_X64)) && defined(VIRGIL_JIT_HAVE_MMAP)
#define VIRGIL_JIT_SUPPORTED 1
#endif

using namespace virgil::jit;

namespace {
constexpr size_t kChunkSize = 256 * 1024;

#ifdef VIRGIL_JIT_HAVE_MMAP
size_t pageSize() {
  static const size_t P = (size_t)sysconf(_SC_PAGESIZE);
  return P;
}

/// mprotect over the page range covering [Base, Base+Size).
bool protect(uint8_t *Base, size_t Size, int Prot) {
  size_t P = pageSize();
  uintptr_t Lo = (uintptr_t)Base & ~(P - 1);
  uintptr_t Hi = ((uintptr_t)Base + Size + P - 1) & ~(P - 1);
  return mprotect((void *)Lo, Hi - Lo, Prot) == 0;
}
#endif
} // namespace

CodeArena::~CodeArena() {
#ifdef VIRGIL_JIT_HAVE_MMAP
  for (Chunk &C : Chunks)
    munmap(C.Base, C.Size);
#endif
}

bool CodeArena::probeExecutable() {
#ifdef VIRGIL_JIT_SUPPORTED
  size_t P = pageSize();
  void *Mem = mmap(nullptr, P, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return false;
  ((uint8_t *)Mem)[0] = 0xC3; // ret
  if (mprotect(Mem, P, PROT_READ | PROT_EXEC) != 0) {
    munmap(Mem, P);
    return false;
  }
  ((void (*)())Mem)();
  munmap(Mem, P);
  return true;
#else
  return false;
#endif
}

bool CodeArena::addChunk(size_t MinSize) {
#ifdef VIRGIL_JIT_SUPPORTED
  size_t Size = MinSize > kChunkSize ? MinSize : kChunkSize;
  size_t P = pageSize();
  Size = (Size + P - 1) & ~(P - 1);
  void *Mem = mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return false;
  Chunks.push_back(Chunk{(uint8_t *)Mem, Size, 0});
  return true;
#else
  (void)MinSize;
  return false;
#endif
}

uint8_t *CodeArena::install(const uint8_t *Code, size_t Size) {
#ifdef VIRGIL_JIT_SUPPORTED
  size_t Need = (Size + 15) & ~(size_t)15;
  if (Chunks.empty() || Chunks.back().Used + Need > Chunks.back().Size)
    if (!addChunk(Need))
      return nullptr;
  Chunk &C = Chunks.back();
  uint8_t *Dst = C.Base + C.Used;
  // The whole chunk goes writable for the copy — nothing in the arena
  // executes while we are here (flat native frames; compiles happen in
  // C++ helpers or in the interpreter tier).
  if (!protect(C.Base, C.Size, PROT_READ | PROT_WRITE))
    return nullptr;
  std::memcpy(Dst, Code, Size);
  C.Used += Need;
  UsedBytes += Size;
  if (!protect(C.Base, C.Size, PROT_READ | PROT_EXEC))
    return nullptr;
  return Dst;
#else
  (void)Code;
  (void)Size;
  return nullptr;
#endif
}

CodeArena::Chunk *CodeArena::chunkFor(uint8_t *Addr) {
  for (Chunk &C : Chunks)
    if (Addr >= C.Base && Addr < C.Base + C.Size)
      return &C;
  return nullptr;
}

bool CodeArena::makeWritable(uint8_t *Addr) {
#ifdef VIRGIL_JIT_SUPPORTED
  Chunk *C = chunkFor(Addr);
  return C && protect(C->Base, C->Size, PROT_READ | PROT_WRITE);
#else
  (void)Addr;
  return false;
#endif
}

bool CodeArena::makeExecutable(uint8_t *Addr) {
#ifdef VIRGIL_JIT_SUPPORTED
  Chunk *C = chunkFor(Addr);
  return C && protect(C->Base, C->Size, PROT_READ | PROT_EXEC);
#else
  (void)Addr;
  return false;
#endif
}
