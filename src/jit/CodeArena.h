//===- jit/CodeArena.h - W^X executable code arena --------------*- C++ -*-===//
///
/// \file
/// mmap-backed storage for JIT code. Chunks are never writable and
/// executable at the same time: they sit RX while code runs, and are
/// flipped whole-chunk to RW for the duration of a compile or an
/// inline-cache patch (both happen inside C++ helpers, when no arena
/// code is on the native stack — the JIT's native frame model is flat,
/// so exiting to a helper means *nothing* in the arena is executing).
/// That keeps the sanitizer lanes honest: no RWX page ever exists.
///
/// probeExecutable() performs the one-time runtime feasibility check —
/// map a page, write a `ret`, flip it executable, call it. Hosts where
/// that fails (hardened mprotect policies, non-x86-64 builds) report
/// unavailable and the VM silently stays on the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_JIT_CODEARENA_H
#define VIRGIL_JIT_CODEARENA_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace virgil {
namespace jit {

class CodeArena {
public:
  CodeArena() = default;
  ~CodeArena();
  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;

  /// Can this process map and execute generated code at all?
  /// (Also false on non-x86-64 builds.) Cached per call site via the
  /// JIT tier; the probe itself is cheap but not free.
  static bool probeExecutable();

  /// Copies \p Size bytes of finished code into the arena and returns
  /// its executable address (16-byte aligned), or nullptr if mapping
  /// failed. The touched chunk is left RX.
  uint8_t *install(const uint8_t *Code, size_t Size);

  /// Temporarily opens the chunk containing \p Addr for writing, calls
  /// nothing — the caller writes — then makeExecutable() flips it back.
  /// Returns false if the address is not arena memory.
  bool makeWritable(uint8_t *Addr);
  bool makeExecutable(uint8_t *Addr);

  size_t codeBytes() const { return UsedBytes; }

private:
  struct Chunk {
    uint8_t *Base = nullptr;
    size_t Size = 0;
    size_t Used = 0;
  };
  Chunk *chunkFor(uint8_t *Addr);
  bool addChunk(size_t MinSize);

  std::vector<Chunk> Chunks;
  size_t UsedBytes = 0;
};

} // namespace jit
} // namespace virgil

#endif // VIRGIL_JIT_CODEARENA_H
