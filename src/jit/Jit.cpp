//===- jit/Jit.cpp - Baseline JIT: templates, helpers, tiering ------------===//

#include "jit/Jit.h"
#include "jit/Assembler.h"

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>

using namespace virgil;
using namespace virgil::jit;

// Generated code has no prologue metadata the sanitizer can check, so
// the indirect call into the arena must not be instrumented.
#if defined(__clang__) || defined(__GNUC__)
#define VIRGIL_JIT_NO_UBSAN __attribute__((no_sanitize("undefined")))
#else
#define VIRGIL_JIT_NO_UBSAN
#endif

namespace {

/// Functions above this size stay interpreted: template-compiling them
/// would cost more than it saves, and the arena is better spent on the
/// hot small-to-medium bodies.
constexpr size_t kMaxCompileInstrs = 50000;
/// IC repatches before a site goes megamorphic and stops patching.
constexpr uint32_t kMaxIcPatches = 8;

/// Trap-extra selectors (hTrap's third argument).
enum : uint32_t {
  kExtraNone = 0,
  kExtraIntByte = 1, ///< "int to byte"
  kExtraFuel = 2,    ///< instruction budget, cause Fuel
};

uint64_t nowNs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Is class \p Sub (an id) equal to or a subclass of \p Super?
/// (Mirror of the interpreter's walk; CastClass/QueryClass go through
/// helpers because the failure message needs the class name.)
bool classSubtype(const BcModule &M, int Sub, int Super) {
  for (int C = Sub; C >= 0; C = M.Classes[C].ParentId)
    if (C == Super)
      return true;
  return false;
}

} // namespace

bool JitTier::hostSupported() {
  // Test hook: force the "unsupported host" fallback path on any
  // machine (JitTest exercises it without needing exotic hardware).
  if (const char *E = std::getenv("VIRGIL_VM_JIT_SIMULATE_UNSUPPORTED"))
    if (*E && std::string_view(E) != "0")
      return false;
  return CodeArena::probeExecutable();
}

JitTier::JitTier(Vm &V, uint32_t Threshold) : V(V), Threshold(Threshold) {
  // The dispatch-metadata table: one stable 32-byte record per
  // function, so native call sites resolve FuncId -> (entry, frame
  // shape) with two loads instead of a helper round trip.
  static_assert(sizeof(FuncMeta) == 32, "emitted code indexes by fid << 5");
  Metas.resize(V.Prep.Funcs.size());
  for (size_t I = 0; I != V.Prep.Funcs.size(); ++I) {
    PFunc &F = V.Prep.Funcs[I];
    Metas[I].Fn = &F;
    Metas[I].NumRegs = F.NumRegs;
    Metas[I].NumParams = F.NumParams;
    Metas[I].VirtUnbound = V.Prep.VirtUnbound[I];
  }
  installStubs();
}

//===----------------------------------------------------------------------===//
// Stubs
//===----------------------------------------------------------------------===//
//
// Register pinning while native code runs (all callee-saved, so C++
// helpers preserve them for free):
//
//   rbx  JitCtx*                 r13  heap Space.data()
//   r12  R (frame register base) r14  Instrs counter
//   rbp  Globals.data()          r15  FuelMax
//
// EnterStub establishes the pins from the ctx and jumps to the target;
// the shared Epilogue writes the instruction counter back and returns
// to enter() with the exit code in rax. One hardware frame hosts the
// whole VM call tree: call helpers return the callee's native entry
// and the site jmp's there, so the native stack never deepens.

bool JitTier::installStubs() {
  {
    Assembler A;
    A.movMR(RBX, (int32_t)offsetof(JitCtx, Instrs), R14);
    A.addRI(RSP, 8);
    A.popR(R15);
    A.popR(R14);
    A.popR(R13);
    A.popR(R12);
    A.popR(RBP);
    A.popR(RBX);
    A.ret();
    Epilogue = Arena.install(A.Buf.data(), A.Buf.size());
  }
  if (!Epilogue)
    return false;
  {
    Assembler A;
    A.pushR(RBX);
    A.pushR(RBP);
    A.pushR(R12);
    A.pushR(R13);
    A.pushR(R14);
    A.pushR(R15);
    A.subRI(RSP, 8); // call sites below sit at rsp % 16 == 0
    A.movRR(RBX, RDI);
    A.movRM(R12, RBX, (int32_t)offsetof(JitCtx, R));
    A.movRM(RBP, RBX, (int32_t)offsetof(JitCtx, Gl));
    A.movRM(R13, RBX, (int32_t)offsetof(JitCtx, HeapBase));
    A.movRM(R14, RBX, (int32_t)offsetof(JitCtx, Instrs));
    A.movRM(R15, RBX, (int32_t)offsetof(JitCtx, FuelMax));
    A.jmpR(RSI);
    EnterStub = Arena.install(A.Buf.data(), A.Buf.size());
  }
  return EnterStub != nullptr;
}

VIRGIL_JIT_NO_UBSAN int JitTier::enter(const void *Target) {
  // Mirror the hot VM state into the ctx; native code and helpers work
  // against the mirrors, and we sync back whatever they changed.
  Ctx.V = &V;
  Ctx.T = this;
  Ctx.R = V.Stack.data() + V.Frames.back().Base;
  Ctx.Gl = V.Globals.data();
  Ctx.HeapBase = V.TheHeap.spaceData();
  Ctx.Instrs = V.Counters.Instrs;
  Ctx.FuelMax = V.MaxInstrs;
  Ctx.DeadlineNs = V.DeadlineNs;
  Ctx.Calls = V.Counters.Calls;
  Ctx.VCalls = V.Counters.VirtualCalls;
  Ctx.ICalls = V.Counters.IndirectCalls;
  Ctx.IcHits = V.Counters.IcHits;
  Ctx.IcMisses = V.Counters.IcMisses;
  Ctx.FusedExec = V.Counters.FusedExecuted;
  ++Enters;

  auto Fn = reinterpret_cast<uint64_t (*)(JitCtx *, const void *)>(
      (void *)EnterStub);
  uint64_t Code = Fn(&Ctx, Target);

  V.Counters.Instrs = Ctx.Instrs;
  V.Counters.Calls = Ctx.Calls;
  V.Counters.VirtualCalls = Ctx.VCalls;
  V.Counters.IndirectCalls = Ctx.ICalls;
  V.Counters.IcHits = Ctx.IcHits;
  V.Counters.IcMisses = Ctx.IcMisses;
  V.Counters.FusedExecuted = Ctx.FusedExec;
  return (int)Code;
}

void JitTier::fillStats(VmJitStats &S) const {
  S.Compiles = Compiles;
  S.CompileFailures = CompileFailures;
  S.CompileNs = CompileNs;
  S.CodeBytes = Arena.codeBytes();
  S.Enters = Enters;
  S.OsrEntries = OsrEntries;
  S.Deopts = Deopts;
  S.IcPatches = IcPatches;
  S.IcMegamorphic = IcMegamorphic;
}

//===----------------------------------------------------------------------===//
// Helpers (native -> C++)
//===----------------------------------------------------------------------===//

uint64_t JitTier::hDeadline(JitCtx *C) {
  Vm &V = *C->V;
  if (++V.DeadlineTick < 4096)
    return 0;
  V.DeadlineTick = 0;
  if (nowNs() >= V.DeadlineNs) {
    V.doTrap(TrapKind::Unreachable, "deadline exceeded",
             VmTrapCause::Deadline);
    return kExitTrap;
  }
  return 0;
}

bool JitTier::fuelOk(JitCtx *C) {
  // VM_FUEL replica; the native Instrs counter was flushed to the ctx
  // right before the helper call, so the comparison is exact.
  if (C->FuelMax && C->Instrs > C->FuelMax) {
    C->V->doTrap(TrapKind::Unreachable, "instruction budget exceeded",
                 VmTrapCause::Fuel);
    return false;
  }
  if (C->V->DeadlineNs && hDeadline(C) != 0)
    return false;
  return true;
}

uint64_t JitTier::finishCall(JitCtx *C) {
  // Tier decision for the frame enterCall just pushed. enterCall may
  // have grown the stack arena, so R is recomputed either way (the
  // native call site reloads r12 from the ctx).
  Vm &V = *C->V;
  C->R = V.Stack.data() + V.Frames.back().Base;
  const void *E = V.jitEntryFor(V.Frames.back().Fn, 0, true);
  return E ? (uint64_t)E : kExitInterp;
}

uint64_t JitTier::hCallF(JitCtx *C, uint64_t FuncId, const PDesc *D,
                         uint64_t PcNext) {
  Vm &V = *C->V;
  if (!fuelOk(C))
    return kExitTrap;
  V.Frames.back().Pc = (uint32_t)PcNext;
  if (!V.enterCallFast((int)FuncId, D, (size_t)(C->R - V.Stack.data())))
    return kExitTrap;
  return finishCall(C);
}

uint64_t JitTier::hCallHit(JitCtx *C, uint64_t Target, const PDesc *D,
                           uint64_t PcNext) {
  // Inline-cache hit: the receiver's classId matched the patched
  // immediate, Target is the patched resolved function id.
  Vm &V = *C->V;
  if (!fuelOk(C))
    return kExitTrap;
  V.Frames.back().Pc = (uint32_t)PcNext;
  if (!V.enterCall((int)Target, D, (size_t)(C->R - V.Stack.data()), nullptr,
                   false))
    return kExitTrap;
  return finishCall(C);
}

uint64_t JitTier::hCallVMiss(JitCtx *C, IcSite *Site, const PDesc *D,
                             uint64_t PcNext) {
  Vm &V = *C->V;
  ++C->IcMisses;
  uint64_t Recv = C->R[D->Args[0]]; // non-null: checked natively
  int ClassId = V.TheHeap.classIdOf(Recv);
  int Target = V.M.Classes[ClassId].VTable[(size_t)Site->VSlot];
  if (Target < 0) {
    V.doTrap(TrapKind::Unreachable, "abstract method");
    return kExitTrap;
  }
  // Both tiers share the per-function IcEntry (by index: resetForReuse
  // reassigns the vector's contents, not the site metadata).
  IcEntry &Ic = Site->Fn->Ics[Site->IcIdx];
  Ic.ClassId = ClassId;
  Ic.Target = Target;
  JitTier &T = *C->T;
  if (!Site->Megamorphic) {
    if (Site->Patches >= kMaxIcPatches) {
      Site->Megamorphic = true;
      ++T.IcMegamorphic;
    } else if (T.Arena.makeWritable(Site->ClassAddr)) {
      // Patch the compare-classId and call-target immediates in place.
      // Safe: no arena code executes while we are in a helper (flat
      // native frames), and both immediates live in the same chunk.
      uint32_t Cls = (uint32_t)ClassId, Tgt = (uint32_t)Target;
      std::memcpy(Site->ClassAddr, &Cls, 4);
      std::memcpy(Site->TargetAddr, &Tgt, 4);
      T.Arena.makeExecutable(Site->ClassAddr);
      ++Site->Patches;
      ++T.IcPatches;
    }
  }
  if (!fuelOk(C))
    return kExitTrap;
  V.Frames.back().Pc = (uint32_t)PcNext;
  if (!V.enterCall(Target, D, (size_t)(C->R - V.Stack.data()), nullptr,
                   false))
    return kExitTrap;
  return finishCall(C);
}

uint64_t JitTier::hCallV(JitCtx *C, const PDesc *D, uint64_t VSlot,
                         uint64_t PcNext) {
  Vm &V = *C->V;
  uint64_t Recv = C->R[D->Args[0]];
  if (Recv == 0) {
    V.doTrap(TrapKind::NullDeref);
    return kExitTrap;
  }
  int ClassId = V.TheHeap.classIdOf(Recv);
  int Target = V.M.Classes[ClassId].VTable[(size_t)VSlot];
  if (Target < 0) {
    V.doTrap(TrapKind::Unreachable, "abstract method");
    return kExitTrap;
  }
  if (!fuelOk(C))
    return kExitTrap;
  V.Frames.back().Pc = (uint32_t)PcNext;
  if (!V.enterCall(Target, D, (size_t)(C->R - V.Stack.data()), nullptr,
                   false))
    return kExitTrap;
  return finishCall(C);
}

uint64_t JitTier::hCallInd(JitCtx *C, const PDesc *D, uint64_t PcNext) {
  Vm &V = *C->V;
  uint64_t Clo = C->R[D->Args[0]];
  if (Clo == 0) {
    V.doTrap(TrapKind::NullDeref);
    return kExitTrap;
  }
  int FuncId = closureFuncId(Clo);
  size_t CallerBase = (size_t)(C->R - V.Stack.data());
  if (closureIsBound(Clo)) {
    uint64_t Bound = closureBoundRef(Clo);
    if (!fuelOk(C))
      return kExitTrap;
    V.Frames.back().Pc = (uint32_t)PcNext;
    if (!V.enterCall(FuncId, D, CallerBase, &Bound, true))
      return kExitTrap;
    return finishCall(C);
  }
  if (V.Prep.VirtUnbound[(size_t)FuncId]) {
    // Unbound virtual method: dispatch on the first argument.
    if (D->NArgs < 2 || C->R[D->Args[1]] == 0) {
      V.doTrap(TrapKind::NullDeref);
      return kExitTrap;
    }
    int ClassId = V.TheHeap.classIdOf(C->R[D->Args[1]]);
    int Target = V.M.Classes[ClassId].VTable[V.M.Functions[FuncId].Slot];
    if (Target < 0) {
      V.doTrap(TrapKind::Unreachable, "abstract method");
      return kExitTrap;
    }
    FuncId = Target;
  }
  if (!fuelOk(C))
    return kExitTrap;
  V.Frames.back().Pc = (uint32_t)PcNext;
  if (!V.enterCall(FuncId, D, CallerBase, nullptr, true))
    return kExitTrap;
  return finishCall(C);
}

uint64_t JitTier::hCallB(JitCtx *C, const PDesc *D, uint64_t Kind) {
  Vm &V = *C->V;
  if (!V.builtin((int)Kind, *D, (size_t)(C->R - V.Stack.data())))
    return kExitTrap;
  return 0;
}

uint64_t JitTier::hRet(JitCtx *C, const PDesc *D) {
  Vm &V = *C->V;
  auto Done = V.Frames.back();
  V.Frames.pop_back();
  V.StackTop = Done.Base;
  // Callee registers stay valid until the next push, so return values
  // copy register-to-register into the caller frame.
  uint64_t *R = V.Stack.data() + Done.Base;
  if (Done.Pending) {
    const PDesc &P = *Done.Pending;
    uint64_t *CallerR = V.Stack.data() + Done.CallerBase;
    for (size_t K = 0; K != P.NDsts; ++K)
      CallerR[P.Dsts[K]] = R[D->Args[K]];
  } else {
    V.FinalRets.clear();
    for (size_t K = 0; K != D->NArgs; ++K)
      V.FinalRets.push_back((int64_t)R[D->Args[K]]);
  }
  if (V.Frames.empty())
    return kExitDone;
  auto &Up = V.Frames.back();
  C->R = V.Stack.data() + Up.Base;
  if (Up.Fn->JitId < 0)
    return kExitInterp; // resume the interpreted caller at Up.Pc
  return (uint64_t)C->T->entryAt(Up.Fn->JitId, Up.Pc);
}

/// Shared deopt tail of the allocating helpers: any collection (or
/// in-place growth) moved the heap base the native code has pinned in
/// r13, so the *completed* instruction's successor resumes in the
/// interpreter ("GC-triggered invalidation").
static bool gcMoved(Heap &H, const uint64_t *OldBase, uint64_t OldCollections) {
  return H.spaceData() != OldBase ||
         H.stats().Collections != OldCollections;
}

uint64_t JitTier::hNewObj(JitCtx *C, uint64_t RegA, uint64_t ClassId,
                          uint64_t PcNext) {
  Vm &V = *C->V;
  const uint64_t *OldBase = V.TheHeap.spaceData();
  uint64_t OldColl = V.TheHeap.stats().Collections;
  uint64_t Ref = V.TheHeap.allocObject((int)ClassId);
  if (Ref == 0 && V.TheHeap.overLimit()) {
    V.doTrap(TrapKind::Unreachable, "heap limit exceeded", VmTrapCause::Heap);
    return kExitTrap;
  }
  C->R[RegA] = Ref;
  ++V.Counters.HeapObjects;
  if (gcMoved(V.TheHeap, OldBase, OldColl)) {
    V.Frames.back().Pc = (uint32_t)PcNext;
    ++C->T->Deopts;
    return kExitInterp;
  }
  return 0;
}

uint64_t JitTier::hNewArr(JitCtx *C, uint64_t RegA, uint64_t RegB,
                          uint64_t Kind, uint64_t PcNext) {
  Vm &V = *C->V;
  int64_t Len = (int32_t)C->R[RegB];
  if (Len < 0) {
    V.doTrap(TrapKind::Bounds, "negative array length");
    return kExitTrap;
  }
  const uint64_t *OldBase = V.TheHeap.spaceData();
  uint64_t OldColl = V.TheHeap.stats().Collections;
  uint64_t Ref = V.TheHeap.allocArray((ElemKind)Kind, Len);
  if (Ref == 0 && V.TheHeap.overLimit()) {
    V.doTrap(TrapKind::Unreachable, "heap limit exceeded", VmTrapCause::Heap);
    return kExitTrap;
  }
  C->R[RegA] = Ref;
  ++V.Counters.HeapArrays;
  if (gcMoved(V.TheHeap, OldBase, OldColl)) {
    V.Frames.back().Pc = (uint32_t)PcNext;
    ++C->T->Deopts;
    return kExitInterp;
  }
  return 0;
}

uint64_t JitTier::hConstStr(JitCtx *C, uint64_t RegA, uint64_t StrIdx,
                            uint64_t PcNext) {
  Vm &V = *C->V;
  const uint64_t *OldBase = V.TheHeap.spaceData();
  uint64_t OldColl = V.TheHeap.stats().Collections;
  uint64_t Ref = V.makeString((int)StrIdx);
  if (Ref == 0 && V.TheHeap.overLimit()) {
    V.doTrap(TrapKind::Unreachable, "heap limit exceeded", VmTrapCause::Heap);
    return kExitTrap;
  }
  C->R[RegA] = Ref;
  if (gcMoved(V.TheHeap, OldBase, OldColl)) {
    V.Frames.back().Pc = (uint32_t)PcNext;
    ++C->T->Deopts;
    return kExitInterp;
  }
  return 0;
}

uint64_t JitTier::hMkCloVirt(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t FuncId) {
  // MkClo of a bound virtual method: resolve against the receiver's
  // dynamic class at creation (the non-virtual forms inline).
  Vm &V = *C->V;
  uint64_t Bound = C->R[RegB];
  if (Bound == 0) {
    V.doTrap(TrapKind::NullDeref);
    return kExitTrap;
  }
  int ClassId = V.TheHeap.classIdOf(Bound);
  int Target = V.M.Classes[ClassId].VTable[V.M.Functions[FuncId].Slot];
  if (Target < 0) {
    V.doTrap(TrapKind::Unreachable, "abstract method");
    return kExitTrap;
  }
  C->R[RegA] = packClosure(Target, Bound, true);
  return 0;
}

uint64_t JitTier::hCastClass(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t ClassId) {
  Vm &V = *C->V;
  uint64_t Ref = C->R[RegB];
  if (Ref != 0 &&
      !classSubtype(V.M, V.TheHeap.classIdOf(Ref), (int)ClassId)) {
    V.doTrap(TrapKind::CastFail, V.M.Classes[ClassId].Name);
    return kExitTrap;
  }
  C->R[RegA] = Ref;
  return 0;
}

uint64_t JitTier::hQueryClass(JitCtx *C, uint64_t RegA, uint64_t RegB,
                              uint64_t ClassId) {
  Vm &V = *C->V;
  uint64_t Ref = C->R[RegB];
  C->R[RegA] =
      Ref != 0 && classSubtype(V.M, V.TheHeap.classIdOf(Ref), (int)ClassId);
  return 0;
}

uint64_t JitTier::hCastFunc(JitCtx *C, uint64_t RegA, uint64_t RegB,
                            uint64_t TypeIdx) {
  Vm &V = *C->V;
  uint64_t Clo = C->R[RegB];
  if (Clo != 0) {
    const BcFunction &G = V.M.Functions[closureFuncId(Clo)];
    Type *Dyn = closureIsBound(Clo) ? G.BoundFuncTy : G.SourceFuncTy;
    if (!Dyn || !V.Rels.isSubtype(Dyn, V.M.TypeTable[TypeIdx])) {
      V.doTrap(TrapKind::CastFail, "function type");
      return kExitTrap;
    }
  }
  C->R[RegA] = Clo;
  return 0;
}

uint64_t JitTier::hQueryFunc(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t TypeIdx) {
  Vm &V = *C->V;
  uint64_t Clo = C->R[RegB];
  bool Ok = false;
  if (Clo != 0) {
    const BcFunction &G = V.M.Functions[closureFuncId(Clo)];
    Type *Dyn = closureIsBound(Clo) ? G.BoundFuncTy : G.SourceFuncTy;
    Ok = Dyn && V.Rels.isSubtype(Dyn, V.M.TypeTable[TypeIdx]);
  }
  C->R[RegA] = Ok;
  return 0;
}

uint64_t JitTier::hBarrier(JitCtx *C, uint64_t SlotIdx, uint64_t Val,
                           uint64_t IsClo) {
  C->V->TheHeap.writeBarrier(SlotIdx, Val, IsClo != 0);
  return 0;
}

uint64_t JitTier::hGlobalBarrier(JitCtx *C, uint64_t Idx, uint64_t Val,
                                 uint64_t IsClo) {
  C->V->TheHeap.globalBarrier((size_t)Idx, Val, IsClo != 0);
  return 0;
}

uint64_t JitTier::hTrap(JitCtx *C, uint64_t Kind, uint64_t ExtraId) {
  Vm &V = *C->V;
  switch (ExtraId) {
  case kExtraIntByte:
    V.doTrap((TrapKind)Kind, "int to byte");
    break;
  case kExtraFuel:
    V.doTrap((TrapKind)Kind, "instruction budget exceeded",
             VmTrapCause::Fuel);
    break;
  default:
    V.doTrap((TrapKind)Kind);
    break;
  }
  return kExitTrap;
}

uint64_t JitTier::hTrapCc(JitCtx *C, uint64_t FuncId) {
  Vm &V = *C->V;
  V.doTrap(TrapKind::Unreachable, "calling convention mismatch in '" +
                                      V.M.Functions[(size_t)FuncId].Name +
                                      "'");
  return kExitTrap;
}

//===----------------------------------------------------------------------===//
// The template compiler
//===----------------------------------------------------------------------===//

bool JitTier::compileFn(PFunc &F) {
  uint64_t T0 = nowNs();
  size_t N = F.Code.size();
  if (!ready() || N > kMaxCompileInstrs) {
    F.Gate = kNoJitGate; // permanently interpreter-only
    ++CompileFailures;
    return false;
  }

  Assembler A;
  std::vector<uint32_t> Offs;
  Offs.reserve(N + 1);
  struct BranchFix {
    size_t Pos;
    uint32_t Target;
  };
  std::vector<BranchFix> Branches; // forward targets, resolved at the end
  // Trap stubs are shared per (kind, extra) pair and emitted after the
  // body, so the hot path pays one never-taken jcc per check.
  std::map<uint32_t, std::vector<size_t>> TrapFixes;
  struct SitePatch {
    size_t Idx; // into Sites
    size_t ClassOff, TargetOff;
  };
  std::vector<SitePatch> NewSites;
  size_t FirstSite = Sites.size();
  // Absolute fixups: 8-byte immediates that must hold the native
  // address of instruction TargetPc but are emitted before the install
  // address is known (native-return continuations stored into frames
  // by fast-path call sites). Resolved as Entry + Offs[TargetPc] after
  // install, under a W^X flip.
  struct AbsFix {
    size_t ImmOff;
    uint32_t TargetPc;
  };
  std::vector<AbsFix> AbsFixes;

  auto slot = [](unsigned R) { return (int32_t)(8 * R); };
  // Exact accounting: every block bumps the counter by its dispatch
  // count (fused ops are two) *before* any trap exit can happen.
  auto count = [&](bool Fused) {
    A.addRI(R14, Fused ? 2 : 1);
    if (Fused)
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, FusedExec), 1);
  };
  auto flush = [&] {
    A.movMR(RBX, (int32_t)offsetof(JitCtx, Instrs), R14);
  };
  auto exitNative = [&] {
    A.movRI64(RCX, (uint64_t)(uintptr_t)Epilogue);
    A.jmpR(RCX);
  };
  auto call = [&](auto *Fn) {
    A.movRI64(RAX, (uint64_t)reinterpret_cast<uintptr_t>(Fn));
    A.callR(RAX);
  };
  auto trapJcc = [&](Cond Cc, TrapKind Kind, uint32_t Extra) {
    TrapFixes[((uint32_t)Kind << 8) | Extra].push_back(A.jcc32(Cc));
  };
  // Op-shaped helper returned: 0 = continue, else exit with the code.
  auto checkOp = [&] {
    A.testRR(RAX, RAX);
    size_t J = A.jcc32(CC_E);
    exitNative();
    A.bind(J);
  };
  // Call-shaped helper returned: a native entry (>= kSentinelMax) to
  // jump to, or an exit code. The stack arena may have been reallocated
  // by the callee-frame push, so the frame base reloads from the ctx.
  auto dispatchCall = [&] {
    A.cmpRI32(RAX, (int32_t)kSentinelMax, true);
    size_t J = A.jcc32(CC_AE);
    exitNative();
    A.bind(J);
    A.movRM(R12, RBX, (int32_t)offsetof(JitCtx, R));
    A.jmpR(RAX);
  };
  // VM_FUEL replica at taken backward branches.
  auto fuelCheck = [&] {
    A.testRR(R15, R15);
    size_t NoFuel = A.jcc32(CC_E);
    A.cmpRR(R14, R15);
    trapJcc(CC_A, TrapKind::Unreachable, kExtraFuel);
    A.bind(NoFuel);
    // Full-width load: DeadlineNs is a nanosecond timestamp, so its
    // low byte alone says nothing about whether a deadline is armed.
    A.movRM(RCX, RBX, (int32_t)offsetof(JitCtx, DeadlineNs));
    A.testRR(RCX, RCX);
    size_t NoDl = A.jcc32(CC_E);
    flush();
    A.movRR(RDI, RBX);
    call(&JitTier::hDeadline);
    checkOp();
    A.bind(NoDl);
  };
  // Native call fast path: push the callee frame and jump straight to
  // its compiled entry, bypassing the C++ helpers that dominate the
  // cost of call-dense code. Every condition the helpers handle —
  // uncompiled callee, bound closure, unbound-virtual dispatch, arity
  // mismatch, frame-list or stack-arena growth — bails to \p SlowJs,
  // which the call site binds onto the existing helper sequence, so
  // trap ordering and semantics are exactly the helper path's. The
  // fuel check runs after the last bail-out, so each call burns fuel
  // exactly once on either path (VM_FUEL replica, same trap point as
  // the interpreter's VM_CALL).
  //
  // StaticFid >= 0: direct call, frame shape known at compile time.
  // StaticFid < 0: rcx holds the FuncId (CallInd after closure decode).
  // Register plan: rax entry, rdx meta/Fn, rsi &Frames, rdi Frames.Size,
  // r9 callee Base, r10 new StackTop, r11 callee regs; rcx/r8 scratch.
  // Returns the buffer offset of the NativeRet imm64 (AbsFixes).
  static_assert(sizeof(Vm::Frame) == 48, "fast path indexes by Size*48");
  auto emitFastCall = [&](int StaticFid, const PDesc &D, bool SkipFirst,
                          uint32_t PcNext,
                          std::vector<size_t> &SlowJs) -> size_t {
    size_t Skip = SkipFirst ? 1 : 0;
    size_t NSrc = D.NArgs - Skip;
    // Deadline-armed runs take the helper path: the periodic clock
    // probe calls into C++, which the register plan below cannot
    // survive, and deadline runs are interactive quotas, not
    // throughput paths.
    A.movRM(RAX, RBX, (int32_t)offsetof(JitCtx, DeadlineNs));
    A.testRR(RAX, RAX);
    SlowJs.push_back(A.jcc32(CC_NE));
    if (StaticFid >= 0) {
      A.movRI64(RDX, (uint64_t)(uintptr_t)&Metas[(size_t)StaticFid]);
    } else {
      A.shlRI(RCX, 5); // sizeof(FuncMeta) == 32
      A.movRI64(RDX, (uint64_t)(uintptr_t)Metas.data());
      A.addRR(RDX, RCX);
      A.movRM32(RCX, RDX, (int32_t)offsetof(FuncMeta, VirtUnbound));
      A.testRR(RCX, RCX);
      SlowJs.push_back(A.jcc32(CC_NE));
      A.movRM32(RCX, RDX, (int32_t)offsetof(FuncMeta, NumParams));
      A.cmpRI32(RCX, (int32_t)NSrc);
      SlowJs.push_back(A.jcc32(CC_NE));
    }
    A.movRM(RAX, RDX, (int32_t)offsetof(FuncMeta, Entry));
    A.testRR(RAX, RAX);
    SlowJs.push_back(A.jcc32(CC_E));
    A.movRI64(RSI, (uint64_t)(uintptr_t)&V.Frames);
    A.movRM(RDI, RSI, (int32_t)offsetof(Vm::FrameStack, Size));
    A.cmpRM(RDI, RSI, (int32_t)offsetof(Vm::FrameStack, Cap));
    SlowJs.push_back(A.jcc32(CC_AE));
    A.cmpRI32(RDI, (int32_t)Vm::kMaxFrames, true);
    SlowJs.push_back(A.jcc32(CC_AE)); // "stack overflow" trap, in order
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackTop);
    A.movRM(R9, RCX, 0);
    if (StaticFid >= 0) {
      A.leaRM(R10, R9, (int32_t)Metas[(size_t)StaticFid].NumRegs);
    } else {
      A.movRM32(R10, RDX, (int32_t)offsetof(FuncMeta, NumRegs));
      A.addRR(R10, R9);
    }
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackLen);
    A.cmpRM(R10, RCX, 0);
    SlowJs.push_back(A.jcc32(CC_A));
    // Last chance to trap before committing: the VM_FUEL replica,
    // inlined flags-only (no deadline leg — bailed above) so the live
    // registers survive. Bail-outs re-check fuel in the helper, which
    // is idempotent: the trap, if due, fires at the same Instrs count.
    A.testRR(R15, R15);
    size_t NoFuel = A.jcc32(CC_E);
    A.cmpRR(R14, R15);
    trapJcc(CC_A, TrapKind::Unreachable, kExtraFuel);
    A.bind(NoFuel);
    // Commit. r11 = callee register base = StackData + 8*StackTop.
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackData);
    A.movRM(R8, RCX, 0);
    A.leaRMIdx(R11, R8, R9, 8, 0);
    for (size_t K = 0; K != NSrc; ++K) {
      A.movRM(RCX, R12, slot(D.Args[K + Skip]));
      A.movMR(R11, (int32_t)(8 * K), RCX);
    }
    // Zero the non-parameter registers (enterCall's memset): unrolled
    // for small frames, a counted store loop otherwise.
    uint32_t StaticZero =
        StaticFid >= 0 ? Metas[(size_t)StaticFid].NumRegs - (uint32_t)NSrc
                       : 0;
    if (StaticFid >= 0 && StaticZero <= 8) {
      if (StaticZero != 0) {
        A.movRI32(RCX, 0);
        for (uint32_t J = 0; J != StaticZero; ++J)
          A.movMR(R11, (int32_t)(8 * (NSrc + J)), RCX);
      }
    } else {
      if (StaticFid >= 0)
        A.movRI32(RCX, StaticZero);
      else {
        A.movRM32(RCX, RDX, (int32_t)offsetof(FuncMeta, NumRegs));
        A.subRI(RCX, (int32_t)NSrc);
      }
      A.leaRM(R8, R11, (int32_t)(8 * NSrc));
      size_t ZHead = A.size();
      A.testRR(RCX, RCX);
      size_t ZDone = A.jcc32(CC_E);
      A.movMI32(R8, 0, 0); // qword store (REX.W)
      A.addRI(R8, 8);
      A.subRI(RCX, 1);
      A.bindTo(A.jmp32(), ZHead);
      A.bind(ZDone);
    }
    // Frame push: rcx = &Frames.Data[Size] (48-byte records).
    A.movRM(R8, RSI, (int32_t)offsetof(Vm::FrameStack, Data));
    A.leaRMIdx(RCX, RDI, RDI, 2, 0); // Size*3
    A.shlRI(RCX, 4);                 // *16 -> Size*48
    A.addRR(RCX, R8);
    // Caller resumes at PcNext on deopt or interpreter return. The
    // qword store covers Pc plus the adjacent padding — safe, and it
    // leaves no stale bytes.
    A.movMI32(RCX, (int32_t)offsetof(Vm::Frame, Pc) - 48,
              (int32_t)PcNext);
    A.movRM(R8, RCX, (int32_t)offsetof(Vm::Frame, Base) - 48);
    if (StaticFid >= 0)
      A.movRI64(RDX,
                (uint64_t)(uintptr_t)Metas[(size_t)StaticFid].Fn);
    else
      A.movRM(RDX, RDX, (int32_t)offsetof(FuncMeta, Fn));
    A.movMR(RCX, (int32_t)offsetof(Vm::Frame, Fn), RDX);
    A.movMI32(RCX, (int32_t)offsetof(Vm::Frame, Pc), 0);
    A.movMR(RCX, (int32_t)offsetof(Vm::Frame, Base), R9);
    A.movRI64(RDX, (uint64_t)(uintptr_t)&D);
    A.movMR(RCX, (int32_t)offsetof(Vm::Frame, Pending), RDX);
    A.movMR(RCX, (int32_t)offsetof(Vm::Frame, CallerBase), R8);
    size_t RetImm = A.movRI64P(RDX);
    A.movMR(RCX, (int32_t)offsetof(Vm::Frame, NativeRet), RDX);
    A.addRI(RDI, 1);
    A.movMR(RSI, (int32_t)offsetof(Vm::FrameStack, Size), RDI);
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackTop);
    A.movMR(RCX, 0, R10);
    A.movRR(R12, R11);
    A.movMR(RBX, (int32_t)offsetof(JitCtx, R), R12);
    A.jmpR(RAX);
    return RetImm;
  };

  // Native return fast path: pop the frame and jump to the caller's
  // stored native continuation. Covers the common 0/1-result shapes;
  // interpreter-pushed frames (null NativeRet), the outermost frame,
  // and multi-result descriptors fall back to hRet. \p D is the
  // callee's return descriptor (result source registers).
  auto emitFastRet = [&](const PDesc &D, std::vector<size_t> &SlowJs) {
    A.movRI64(RSI, (uint64_t)(uintptr_t)&V.Frames);
    A.movRM(RDI, RSI, (int32_t)offsetof(Vm::FrameStack, Size));
    A.movRM(R8, RSI, (int32_t)offsetof(Vm::FrameStack, Data));
    A.leaRM(RCX, RDI, -1);
    A.leaRMIdx(RDX, RCX, RCX, 2, 0);
    A.shlRI(RDX, 4);
    A.addRR(RDX, R8); // rdx = &Frames.back()
    A.movRM(RAX, RDX, (int32_t)offsetof(Vm::Frame, NativeRet));
    A.testRR(RAX, RAX);
    SlowJs.push_back(A.jcc32(CC_E));
    // NativeRet implies Pending != null (fast-path calls always set
    // it), so only the result-count shape needs checking.
    A.movRM(R9, RDX, (int32_t)offsetof(Vm::Frame, Pending));
    A.movRM32(R10, R9, (int32_t)offsetof(PDesc, NDsts));
    A.cmpRI32(R10, D.NArgs >= 1 ? 1 : 0);
    SlowJs.push_back(A.jcc32(CC_A));
    // Commit: pop, unwind the stack top, find the caller registers.
    A.movMR(RSI, (int32_t)offsetof(Vm::FrameStack, Size), RCX);
    A.movRM(R8, RDX, (int32_t)offsetof(Vm::Frame, Base));
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackTop);
    A.movMR(RCX, 0, R8);
    A.movRM(R8, RDX, (int32_t)offsetof(Vm::Frame, CallerBase));
    A.movRI64(RCX, (uint64_t)(uintptr_t)&V.StackData);
    A.movRM(RCX, RCX, 0);
    A.leaRMIdx(R8, RCX, R8, 8, 0); // r8 = caller registers
    if (D.NArgs >= 1) {
      // Callee registers stay valid until the next push, so the
      // result copies register-to-register (hRet's loop, unrolled for
      // the 0/1 shapes the guard admitted).
      A.testRR(R10, R10);
      size_t NoVal = A.jcc32(CC_E);
      A.movRM(RCX, R9, (int32_t)offsetof(PDesc, Dsts));
      A.movzxwRM(RCX, RCX, 0); // P.Dsts[0]
      A.movRM(R11, R12, slot(D.Args[0]));
      A.movMRIdx8(R8, RCX, 0, R11);
      A.bind(NoVal);
    }
    A.movRR(R12, R8);
    A.movMR(RBX, (int32_t)offsetof(JitCtx, R), R12);
    A.jmpR(RAX);
  };

  // Unconditional transfer to instruction Target (from instruction pc).
  auto branchTo = [&](uint32_t Target, size_t Pc) {
    if (Target <= Pc) { // backward: burn fuel, target offset is known
      fuelCheck();
      size_t J = A.jmp32();
      A.bindTo(J, Offs[Target]);
    } else {
      Branches.push_back({A.jmp32(), Target});
    }
  };
  // Conditional transfer: branch when CcTaken holds.
  auto condBranch = [&](Cond CcTaken, uint32_t Target, size_t Pc) {
    if (Target > Pc) {
      Branches.push_back({A.jcc32(CcTaken), Target});
    } else {
      size_t Skip = A.jcc32((Cond)(CcTaken ^ 1));
      fuelCheck();
      size_t J = A.jmp32();
      A.bindTo(J, Offs[Target]);
      A.bind(Skip);
    }
  };
  // Compare R[B] op R[C] into R[A] (Wide = 64-bit operands), leaving
  // the result in rax with flags from the test below unaffected.
  auto cmpOp = [&](const PInstr &I, Cond Cc, bool Wide) {
    A.movRI32(RAX, 0);
    if (Wide) {
      A.movRM(RCX, R12, slot(I.B));
      A.cmpRM(RCX, R12, slot(I.C));
    } else {
      A.movRM32(RCX, R12, slot(I.B));
      A.cmpRM32(RCX, R12, slot(I.C));
    }
    A.setcc(Cc, RAX);
    A.movMR(R12, slot(I.A), RAX);
  };
  // Null-checked array ref + sign-extended index + bounds check.
  // Leaves rcx = byte address of the array header, rdx = index.
  auto arrayChecked = [&](unsigned RefReg, unsigned IdxReg) {
    A.movRM(RCX, R12, slot(RefReg));
    A.testRR(RCX, RCX);
    trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
    A.movsxdRM(RDX, R12, slot(IdxReg));
    A.leaRMIdx(RCX, R13, RCX, 8, 0);
    A.cmpRM(RDX, RCX, 8); // unsigned: negative indexes are huge
    trapJcc(CC_AE, TrapKind::Bounds, kExtraNone);
  };

  for (size_t Pc = 0; Pc != N; ++Pc) {
    const PInstr &I = F.Code[Pc];
    Offs.push_back((uint32_t)A.size());
    uint32_t PcNext = (uint32_t)(Pc + 1);

    switch (I.Op) {
    case POp::Nop:
      count(false);
      break;

    case POp::ConstI:
      count(false);
      if (I.Imm >= INT32_MIN && I.Imm <= INT32_MAX) {
        A.movMI32(R12, slot(I.A), (int32_t)I.Imm);
      } else {
        A.movRI64(RAX, (uint64_t)I.Imm);
        A.movMR(R12, slot(I.A), RAX);
      }
      break;

    case POp::ConstStr:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, (uint32_t)I.Imm);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hConstStr);
      checkOp();
      break;

    case POp::Mv:
      count(false);
      A.movRM(RAX, R12, slot(I.B));
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::Add:
    case POp::Sub:
    case POp::Mul:
      count(false);
      A.movRM32(RAX, R12, slot(I.B));
      if (I.Op == POp::Add)
        A.addRM32(RAX, R12, slot(I.C));
      else if (I.Op == POp::Sub)
        A.subRM32(RAX, R12, slot(I.C));
      else
        A.imulRM32(RAX, R12, slot(I.C));
      A.movMR(R12, slot(I.A), RAX); // 32-bit ops zero-extended
      break;

    case POp::Div:
    case POp::Mod:
      count(false);
      // 64-bit idiv of sign-extended operands: INT32_MIN / -1 cannot
      // fault, and the truncated low 32 bits match the interpreter.
      A.movsxdRM(RAX, R12, slot(I.B));
      A.movsxdRM(RCX, R12, slot(I.C));
      A.testRR(RCX, RCX);
      trapJcc(CC_E, TrapKind::DivByZero, kExtraNone);
      A.cqo();
      A.idivR(RCX);
      if (I.Op == POp::Mod)
        A.movRR32(RAX, RDX);
      else
        A.movRR32(RAX, RAX); // zero-extend the 32-bit quotient
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::Neg:
      count(false);
      A.movRM32(RAX, R12, slot(I.B));
      A.negR32(RAX);
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::Lt:
      count(false);
      cmpOp(I, CC_L, false);
      break;
    case POp::Le:
      count(false);
      cmpOp(I, CC_LE, false);
      break;
    case POp::Gt:
      count(false);
      cmpOp(I, CC_G, false);
      break;
    case POp::Ge:
      count(false);
      cmpOp(I, CC_GE, false);
      break;
    case POp::EqBits:
      count(false);
      cmpOp(I, CC_E, true);
      break;
    case POp::NeBits:
      count(false);
      cmpOp(I, CC_NE, true);
      break;

    case POp::Not:
      count(false);
      A.movRI32(RCX, 0);
      A.movRM(RAX, R12, slot(I.B));
      A.testRR(RAX, RAX);
      A.setcc(CC_E, RCX);
      A.movMR(R12, slot(I.A), RCX);
      break;

    case POp::And:
    case POp::Or:
      count(false);
      A.movRI32(RAX, 0);
      A.movRI32(RCX, 0);
      A.movRM(RDX, R12, slot(I.B));
      A.testRR(RDX, RDX);
      A.setcc(CC_NE, RAX);
      A.movRM(RDX, R12, slot(I.C));
      A.testRR(RDX, RDX);
      A.setcc(CC_NE, RCX);
      if (I.Op == POp::And)
        A.andRR8(RAX, RCX);
      else
        A.orRR8(RAX, RCX);
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::NewObj:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, (uint32_t)I.Imm);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hNewObj);
      checkOp();
      break;

    case POp::NewArr:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, I.B);
      A.movRI32(RCX, (uint32_t)I.Imm);
      A.movRI32(R8, PcNext);
      call(&JitTier::hNewArr);
      checkOp();
      break;

    case POp::LdFC:
    case POp::LdF:
      count(I.Op == POp::LdFC);
      A.movRM(RCX, R12, slot(I.B));
      A.testRR(RCX, RCX);
      trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
      A.movRMIdx8(RAX, R13, RCX, (int32_t)(8 * (1 + I.Imm)));
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::StFC:
    case POp::StF:
    case POp::StFCB:
    case POp::StFB: {
      bool Fused = I.Op == POp::StFC || I.Op == POp::StFCB;
      bool Barrier = I.Op == POp::StFB || I.Op == POp::StFCB;
      count(Fused);
      A.movRM(RCX, R12, slot(I.A));
      A.testRR(RCX, RCX);
      trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
      A.movRM(RAX, R12, slot(I.B));
      A.movMRIdx8(R13, RCX, (int32_t)(8 * (1 + I.Imm)), RAX);
      if (Barrier) {
        A.leaRM(RSI, RCX, (int32_t)(1 + I.Imm)); // slot index, not bytes
        flush();
        A.movRR(RDI, RBX);
        A.movRR(RDX, RAX);
        A.movRI32(RCX, I.C != 0 ? 1 : 0);
        call(&JitTier::hBarrier);
      }
      break;
    }

    case POp::NullChk:
      count(false);
      A.movRM(RAX, R12, slot(I.A));
      A.testRR(RAX, RAX);
      trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
      break;

    case POp::LdEC:
    case POp::LdE:
      count(I.Op == POp::LdEC);
      arrayChecked(I.B, I.C);
      A.movRMIdx8(RAX, RCX, RDX, 16);
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::StEC:
    case POp::StE:
    case POp::StECB:
    case POp::StEB: {
      bool Fused = I.Op == POp::StEC || I.Op == POp::StECB;
      bool Barrier = I.Op == POp::StEB || I.Op == POp::StECB;
      count(Fused);
      if (Barrier) {
        // The bounds sequence consumes the ref register; keep the raw
        // ref in rsi for the barrier's slot-index computation.
        A.movRM(RSI, R12, slot(I.A));
      }
      arrayChecked(I.A, I.B);
      A.movRM(RAX, R12, slot(I.C));
      A.movMRIdx8(RCX, RDX, 16, RAX);
      if (Barrier) {
        A.leaRMIdx(RSI, RSI, RDX, 1, 2); // ref + idx + 2: the slot index
        flush();
        A.movRR(RDI, RBX);
        A.movRR(RDX, RAX);
        A.movRI32(RCX, I.Imm != 0 ? 1 : 0);
        call(&JitTier::hBarrier);
      }
      break;
    }

    case POp::BoundsChkC:
    case POp::BoundsChk:
      count(I.Op == POp::BoundsChkC);
      arrayChecked(I.B, I.C);
      break;

    case POp::ArrLenC:
    case POp::ArrLen:
      count(I.Op == POp::ArrLenC);
      A.movRM(RCX, R12, slot(I.B));
      A.testRR(RCX, RCX);
      trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
      A.movRMIdx8(RAX, R13, RCX, 8);
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::LdG:
      count(false);
      A.movRM(RAX, RBP, (int32_t)(8 * I.Imm));
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::StG:
      count(false);
      A.movRM(RAX, R12, slot(I.A));
      A.movMR(RBP, (int32_t)(8 * I.Imm), RAX);
      break;

    case POp::StGB:
      count(false);
      A.movRM(RAX, R12, slot(I.A));
      A.movMR(RBP, (int32_t)(8 * I.Imm), RAX);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, (uint32_t)I.Imm);
      A.movRR(RDX, RAX);
      A.movRI32(RCX, I.B != 0 ? 1 : 0);
      call(&JitTier::hGlobalBarrier);
      break;

    case POp::CallF: {
      const PDesc &D = F.Descs[I.A];
      count(false);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, Calls), 1);
      // Native fast path when the callee's frame shape is proven at
      // prepare time (CallF arity always is; the guard is defensive)
      // and small enough to inline the argument copy.
      std::vector<size_t> SlowJs;
      size_t RetImm = (size_t)-1;
      if (Metas[(size_t)I.Imm].NumParams == D.NArgs && D.NArgs <= 16)
        RetImm = emitFastCall((int)I.Imm, D, false, PcNext, SlowJs);
      for (size_t J : SlowJs)
        A.bind(J);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, (uint32_t)I.Imm);
      A.movRI64(RDX, (uint64_t)(uintptr_t)&D);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hCallF);
      dispatchCall();
      if (RetImm != (size_t)-1)
        AbsFixes.push_back({RetImm, PcNext});
      break;
    }

    case POp::CallVC: {
      const PDesc &D = F.Descs[I.A];
      count(false);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, Calls), 1);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, VCalls), 1);
      A.movRM(RCX, R12, slot(D.Args[0]));
      A.testRR(RCX, RCX);
      trapJcc(CC_E, TrapKind::NullDeref, kExtraNone);
      // Monomorphic fast path: compare the receiver's classId against
      // a patchable immediate; the paired call target is an immediate
      // patched alongside it by hCallVMiss.
      A.movRMIdx8(RAX, R13, RCX, 0); // header
      A.shrRI(RAX, 3);               // classId
      size_t ClassOff = A.cmpRI32P(RAX);
      size_t Miss = A.jcc32(CC_NE);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, IcHits), 1);
      flush();
      A.movRR(RDI, RBX);
      size_t TargetOff = A.movRI32P(RSI);
      A.movRI64(RDX, (uint64_t)(uintptr_t)&D);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hCallHit);
      dispatchCall();
      A.bind(Miss);
      Sites.push_back(IcSite{});
      IcSite &S = Sites.back();
      S.Fn = &F;
      S.IcIdx = I.B;
      S.VSlot = (int32_t)I.Imm;
      flush();
      A.movRR(RDI, RBX);
      A.movRI64(RSI, (uint64_t)(uintptr_t)&S);
      A.movRI64(RDX, (uint64_t)(uintptr_t)&D);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hCallVMiss);
      dispatchCall();
      // Seed the site from the interpreter tier's IC entry when it is
      // already warm, so a hot monomorphic site never takes the miss
      // path natively at all.
      const IcEntry &Ic = F.Ics[I.B];
      if (Ic.ClassId >= 0) {
        A.patch32(ClassOff, (uint32_t)Ic.ClassId);
        A.patch32(TargetOff, (uint32_t)Ic.Target);
      }
      NewSites.push_back({Sites.size() - 1, ClassOff, TargetOff});
      break;
    }

    case POp::CallV:
      count(false);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, Calls), 1);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, VCalls), 1);
      flush();
      A.movRR(RDI, RBX);
      A.movRI64(RSI, (uint64_t)(uintptr_t)&F.Descs[I.A]);
      A.movRI32(RDX, (uint32_t)I.Imm);
      A.movRI32(RCX, PcNext);
      call(&JitTier::hCallV);
      dispatchCall();
      break;

    case POp::CallInd: {
      const PDesc &D = F.Descs[I.A];
      count(false);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, Calls), 1);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, ICalls), 1);
      // Native fast path for unbound, non-virtual closures: decode the
      // FuncId inline and bail to the helper for everything else (null
      // — the helper raises NullDeref before fuel, like the
      // interpreter — bound receivers, and virtual dispatch).
      std::vector<size_t> SlowJs;
      size_t RetImm = (size_t)-1;
      if (D.NArgs >= 1 && D.NArgs <= 16) {
        A.movRM(RCX, R12, slot(D.Args[0]));
        A.testRR(RCX, RCX);
        SlowJs.push_back(A.jcc32(CC_E));
        A.testRI8(RCX, 1);
        SlowJs.push_back(A.jcc32(CC_NE));
        A.shrRI(RCX, 33);
        A.subRI(RCX, 1); // closureFuncId
        RetImm = emitFastCall(-1, D, true, PcNext, SlowJs);
      }
      for (size_t J : SlowJs)
        A.bind(J);
      flush();
      A.movRR(RDI, RBX);
      A.movRI64(RSI, (uint64_t)(uintptr_t)&D);
      A.movRI32(RDX, PcNext);
      call(&JitTier::hCallInd);
      dispatchCall();
      if (RetImm != (size_t)-1)
        AbsFixes.push_back({RetImm, PcNext});
      break;
    }

    case POp::CallB:
      count(false);
      A.addMI8(RBX, (int32_t)offsetof(JitCtx, Calls), 1);
      flush();
      A.movRR(RDI, RBX);
      A.movRI64(RSI, (uint64_t)(uintptr_t)&F.Descs[I.A]);
      A.movRI32(RDX, (uint32_t)I.Imm);
      call(&JitTier::hCallB);
      checkOp();
      break;

    case POp::MkClo: {
      count(false);
      int FuncId = (int)I.Imm;
      bool HasBound = I.C != 0;
      if (!HasBound) {
        A.movRI64(RAX, (uint64_t)(FuncId + 1) << 33);
        A.movMR(R12, slot(I.A), RAX);
      } else if (!V.Prep.VirtUnbound[(size_t)FuncId]) {
        // Plain bound closure: pack ((fid+1)<<33) | (bound<<1) | 1.
        A.movRM(RAX, R12, slot(I.B));
        A.shlRI(RAX, 1);
        A.movRI64(RCX, ((uint64_t)(FuncId + 1) << 33) | 1);
        A.orRR(RAX, RCX);
        A.movMR(R12, slot(I.A), RAX);
      } else {
        flush();
        A.movRR(RDI, RBX);
        A.movRI32(RSI, I.A);
        A.movRI32(RDX, I.B);
        A.movRI32(RCX, (uint32_t)FuncId);
        call(&JitTier::hMkCloVirt);
        checkOp();
      }
      break;
    }

    case POp::CastClass:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, I.B);
      A.movRI32(RCX, (uint32_t)I.Imm);
      call(&JitTier::hCastClass);
      checkOp();
      break;

    case POp::QueryClass:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, I.B);
      A.movRI32(RCX, (uint32_t)I.Imm);
      call(&JitTier::hQueryClass);
      break;

    case POp::CastIntByte:
      count(false);
      A.movRM32(RAX, R12, slot(I.B));
      A.cmpRI32(RAX, 255);
      trapJcc(CC_A, TrapKind::CastFail, kExtraIntByte); // also negatives
      A.movMR(R12, slot(I.A), RAX);
      break;

    case POp::CastFunc:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, I.B);
      A.movRI32(RCX, (uint32_t)I.Imm);
      call(&JitTier::hCastFunc);
      checkOp();
      break;

    case POp::QueryFunc:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, I.A);
      A.movRI32(RDX, I.B);
      A.movRI32(RCX, (uint32_t)I.Imm);
      call(&JitTier::hQueryFunc);
      break;

    case POp::CastNullOnly:
      count(false);
      A.movRM(RAX, R12, slot(I.B));
      A.testRR(RAX, RAX);
      trapJcc(CC_NE, TrapKind::CastFail, kExtraNone);
      A.movMI32(R12, slot(I.A), 0);
      break;

    case POp::QueryNonNull:
      count(false);
      A.movRI32(RCX, 0);
      A.movRM(RAX, R12, slot(I.B));
      A.testRR(RAX, RAX);
      A.setcc(CC_NE, RCX);
      A.movMR(R12, slot(I.A), RCX);
      break;

    case POp::Jmp:
      count(false);
      branchTo((uint32_t)I.Imm, Pc);
      break;

    case POp::JmpIfFalse:
      count(false);
      A.movRM(RAX, R12, slot(I.A));
      A.testRR(RAX, RAX);
      condBranch(CC_E, (uint32_t)I.Imm, Pc);
      break;

    case POp::BrLtF:
    case POp::BrLeF:
    case POp::BrGtF:
    case POp::BrGeF:
    case POp::BrEqF:
    case POp::BrNeF: {
      count(true);
      Cond Cc = I.Op == POp::BrLtF   ? CC_L
                : I.Op == POp::BrLeF ? CC_LE
                : I.Op == POp::BrGtF ? CC_G
                : I.Op == POp::BrGeF ? CC_GE
                : I.Op == POp::BrEqF ? CC_E
                                     : CC_NE;
      bool Wide = I.Op == POp::BrEqF || I.Op == POp::BrNeF;
      cmpOp(I, Cc, Wide);
      A.testRR(RAX, RAX);
      condBranch(CC_E, (uint32_t)I.Imm, Pc); // branch if false
      break;
    }

    case POp::AddImm:
    case POp::SubImm: {
      count(true);
      // R[C] takes the folded constant *first* (C may alias B).
      if (I.Imm >= INT32_MIN && I.Imm <= INT32_MAX) {
        A.movMI32(R12, slot(I.C), (int32_t)I.Imm);
      } else {
        A.movRI64(RAX, (uint64_t)I.Imm);
        A.movMR(R12, slot(I.C), RAX);
      }
      uint32_t U = (uint32_t)(uint64_t)I.Imm;
      int32_t Add = I.Op == POp::AddImm ? (int32_t)U : (int32_t)(0u - U);
      A.movRM32(RAX, R12, slot(I.B));
      A.addRI32(RAX, Add);
      A.movMR(R12, slot(I.A), RAX);
      break;
    }

    case POp::RetMv:
    case POp::RetOp: {
      const PDesc &D = F.Descs[I.A];
      count(I.Op == POp::RetMv);
      std::vector<size_t> SlowJs;
      emitFastRet(D, SlowJs);
      for (size_t J : SlowJs)
        A.bind(J);
      flush();
      A.movRR(RDI, RBX);
      A.movRI64(RSI, (uint64_t)(uintptr_t)&D);
      call(&JitTier::hRet);
      dispatchCall();
      break;
    }

    case POp::TrapCc:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, (uint32_t)I.Imm);
      call(&JitTier::hTrapCc);
      exitNative();
      break;

    case POp::TrapOp:
      count(false);
      flush();
      A.movRR(RDI, RBX);
      A.movRI32(RSI, (uint32_t)I.Imm);
      A.movRI32(RDX, kExtraNone);
      call(&JitTier::hTrap);
      exitNative();
      break;
    }
  }

  // Safety pad: Offs gets one entry past the last instruction, aimed at
  // an unconditional trap (no well-formed function runs off the end).
  Offs.push_back((uint32_t)A.size());
  flush();
  A.movRR(RDI, RBX);
  A.movRI32(RSI, (uint32_t)TrapKind::Unreachable);
  A.movRI32(RDX, kExtraNone);
  call(&JitTier::hTrap);
  exitNative();

  // Shared trap stubs, one per (kind, extra) pair used by the body.
  for (auto &[Key, Fixups] : TrapFixes) {
    for (size_t Pos : Fixups)
      A.bind(Pos);
    flush();
    A.movRR(RDI, RBX);
    A.movRI32(RSI, Key >> 8);
    A.movRI32(RDX, Key & 0xFF);
    call(&JitTier::hTrap);
    exitNative();
  }

  for (const BranchFix &Br : Branches)
    A.bindTo(Br.Pos, Offs[Br.Target]);

  uint8_t *Entry = Arena.install(A.Buf.data(), A.Buf.size());
  if (!Entry) {
    Sites.resize(FirstSite); // deque: earlier sites keep their addresses
    F.Gate = kNoJitGate;
    ++CompileFailures;
    return false;
  }
  for (const SitePatch &P : NewSites) {
    Sites[P.Idx].ClassAddr = Entry + P.ClassOff;
    Sites[P.Idx].TargetAddr = Entry + P.TargetOff;
  }
  // Resolve the native-return continuation immediates now that the
  // install address is known. Safe W^X flip: this runs inside a
  // helper or the interpreter, never under arena code.
  if (!AbsFixes.empty() && Arena.makeWritable(Entry)) {
    for (const AbsFix &Fix : AbsFixes) {
      uint64_t Addr = (uint64_t)(uintptr_t)(Entry + Offs[Fix.TargetPc]);
      std::memcpy(Entry + Fix.ImmOff, &Addr, 8);
    }
    Arena.makeExecutable(Entry);
  }
  Fns.push_back(JitFn{Entry, (uint32_t)A.Buf.size(), std::move(Offs)});
  F.JitId = (int32_t)(Fns.size() - 1);
  // Publish the function to the fast-path dispatch table last: from
  // here on, compiled call sites may jump straight to this entry.
  Metas[(size_t)(&F - V.Prep.Funcs.data())].Entry =
      Entry + Fns.back().Offs[0];
  ++Compiles;
  CompileNs += nowNs() - T0;
  return true;
}
