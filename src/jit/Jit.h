//===- jit/Jit.h - Baseline x86-64 JIT tier over prepared code --*- C++ -*-===//
///
/// \file
/// The VM's second execution tier (DESIGN.md §15): a per-function
/// template JIT that compiles the prepared PInstr stream — including
/// fused superinstructions — to x86-64, gated behind per-function
/// hotness counters (entries + taken backward branches).
///
/// Tier invisibility is the design contract. Both tiers share one
/// machine state: the register-stack arena, the frame list, globals,
/// and the heap. JIT code keeps `Frames` exactly as the interpreter
/// would (call helpers push, the return helper pops), so
///
/// * GC stack scanning works unchanged — the "frame map" for a JIT
///   frame is the same per-function RegKinds the interpreter uses;
/// * deopt is trivial: exiting native code with `Frames.back().Pc` set
///   *is* the materialized interpreter frame, and the interpreter can
///   resume any function at any pc (per-pc native offsets make the
///   reverse — OSR back into JIT code at a backward branch — equally
///   cheap);
/// * instruction accounting is exact: every block bumps the counter by
///   its interpreter dispatch count (fused ops count 2) before any
///   trap exit, and the fuel/deadline checks replicate VM_FUEL at the
///   same program points, so quotas, the differential oracle, and GC
///   scheduling cannot distinguish tiers.
///
/// Calls are native-to-native where possible: a C++ call helper does
/// the frame transition and returns either the callee's native entry
/// (the JIT jumps there — the native stack stays flat, one hardware
/// frame per VM activation) or a small sentinel directing an exit to
/// the interpreter or the driver. Monomorphic inline caches become
/// patchable compare-immediate + call-target-immediate pairs, patched
/// under W^X (RW↔RX flips happen only inside helpers, when no arena
/// code is executing) with a megamorphic cap. Deopt to the interpreter
/// happens on: calls into not-yet-compiled functions, any GC that
/// moves the heap ("GC-triggered invalidation" — the allocating
/// instruction completes first), traps (which exit with the trap
/// recorded, exactly as VM_FAIL would), and fuel/deadline exhaustion.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_JIT_JIT_H
#define VIRGIL_JIT_JIT_H

#include "jit/CodeArena.h"
#include "vm/Vm.h"

#include <deque>
#include <memory>
#include <vector>

namespace virgil {
namespace jit {

/// Exit codes handed from native code back to the driver (and used as
/// sentinels by call helpers; real code addresses are always >= 4096).
enum : uint64_t {
  kExitTrap = 1,   ///< Trap recorded via doTrap; run is over.
  kExitInterp = 2, ///< Resume the interpreter at Frames.back().
  kExitDone = 3,   ///< Frame stack ran empty: the call tree finished.
  kSentinelMax = 4096,
};

class JitTier;

/// The native execution context: one per tier, pinned in rbx while JIT
/// code runs. Hot VM state is mirrored here at tier entry and written
/// back at exit; helpers keep R (and the frame list) current across
/// calls. Standard-layout on purpose — the emitter addresses fields
/// with offsetof.
struct JitCtx {
  Vm *V = nullptr;
  JitTier *T = nullptr;
  uint64_t *R = nullptr;        ///< Stack.data() + Frames.back().Base.
  uint64_t *Gl = nullptr;       ///< Globals.data() (never moves mid-run).
  uint64_t *HeapBase = nullptr; ///< Heap space; a move forces a deopt.
  uint64_t Instrs = 0;          ///< Mirrored in r14 while native code runs.
  uint64_t FuelMax = 0;
  uint64_t DeadlineNs = 0;
  /// Counter mirrors (the interpreter keeps these in locals; native
  /// code and helpers use the mirrors, the driver syncs both ways).
  uint64_t Calls = 0;
  uint64_t VCalls = 0;
  uint64_t ICalls = 0;
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  uint64_t FusedExec = 0;
};

/// One patchable inline-cache call site: the addresses of the
/// compare-classId and call-target immediates inside installed code,
/// plus the shared per-function IcEntry (by index — the interpreter
/// tier updates the same entry, and resetForReuse reassigns the Ics
/// vector). Lives in a deque so emitted code can embed stable
/// pointers.
struct IcSite {
  uint8_t *ClassAddr = nullptr;
  uint8_t *TargetAddr = nullptr;
  PFunc *Fn = nullptr;
  uint32_t IcIdx = 0;
  int32_t VSlot = 0;      ///< vtable slot of the call.
  uint32_t Patches = 0;   ///< times this site was (re)patched
  bool Megamorphic = false;
};

/// Per-FuncId dispatch metadata for the native call fast path, one
/// flat 32-byte record per prepared function (the table is sized once
/// at tier construction, so its address is stable and emitted code
/// indexes it with `fid << 5`). Entry flips from null exactly once,
/// when the function compiles; everything else is fixed prepare-time
/// data. Standard-layout on purpose — the emitter uses offsetof.
struct FuncMeta {
  const uint8_t *Entry = nullptr; ///< native code at pc 0, null = not compiled
  PFunc *Fn = nullptr;
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  uint32_t VirtUnbound = 0; ///< CallInd must dispatch on the receiver
  uint32_t Pad = 0;
};

class JitTier {
public:
  /// \p Threshold is the hotness gate installed on every function.
  JitTier(Vm &V, uint32_t Threshold);

  /// One-time feasibility: x86-64 build, mmap+mprotect usable, and the
  /// VIRGIL_VM_JIT_SIMULATE_UNSUPPORTED test hook not set. When false
  /// the Vm never constructs a tier and runs interpreter-only.
  static bool hostSupported();

  /// True once the entry/epilogue stubs are installed; a tier that
  /// failed to bootstrap behaves exactly like an absent one.
  bool ready() const { return EnterStub != nullptr; }

  /// Native address for function \p JitId at instruction \p Pc.
  const void *entryAt(int32_t JitId, uint32_t Pc) const {
    const JitFn &F = Fns[(size_t)JitId];
    return F.Entry + F.Offs[Pc];
  }

  /// Compiles \p F now; on failure marks it permanently interpreter-only
  /// (Gate = kNoJitGate) and returns false.
  bool compileFn(PFunc &F);

  /// Runs native code starting at \p Target (an entryAt result) until
  /// it exits; returns a kExit* code. Frames/heap/counters are synced
  /// on both sides.
  int enter(const void *Target);

  void fillStats(VmJitStats &S) const;

private:
  struct JitFn {
    uint8_t *Entry = nullptr;
    uint32_t Size = 0;
    /// Native offset of every prepared pc: any instruction boundary is
    /// an entry/OSR/resume point.
    std::vector<uint32_t> Offs;
  };

  bool installStubs();
  friend class ::virgil::Vm;

  // --- native->C++ helpers (SysV ABI via plain function pointers) ----------
  // Call-shaped helpers return a native address (>= kSentinelMax) to
  // jump to, or an exit code. Op-shaped helpers return 0 to continue
  // inline, or an exit code.
  static uint64_t hCallF(JitCtx *C, uint64_t FuncId, const PDesc *D,
                         uint64_t PcNext);
  static uint64_t hCallHit(JitCtx *C, uint64_t Target, const PDesc *D,
                           uint64_t PcNext);
  static uint64_t hCallVMiss(JitCtx *C, IcSite *Site, const PDesc *D,
                             uint64_t PcNext);
  static uint64_t hCallV(JitCtx *C, const PDesc *D, uint64_t VSlot,
                         uint64_t PcNext);
  static uint64_t hCallInd(JitCtx *C, const PDesc *D, uint64_t PcNext);
  static uint64_t hCallB(JitCtx *C, const PDesc *D, uint64_t Kind);
  static uint64_t hRet(JitCtx *C, const PDesc *D);
  static uint64_t hNewObj(JitCtx *C, uint64_t RegA, uint64_t ClassId,
                          uint64_t PcNext);
  static uint64_t hNewArr(JitCtx *C, uint64_t RegA, uint64_t RegB,
                          uint64_t Kind, uint64_t PcNext);
  static uint64_t hConstStr(JitCtx *C, uint64_t RegA, uint64_t StrIdx,
                            uint64_t PcNext);
  static uint64_t hMkCloVirt(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t FuncId);
  static uint64_t hCastClass(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t ClassId);
  static uint64_t hQueryClass(JitCtx *C, uint64_t RegA, uint64_t RegB,
                              uint64_t ClassId);
  static uint64_t hCastFunc(JitCtx *C, uint64_t RegA, uint64_t RegB,
                            uint64_t TypeIdx);
  static uint64_t hQueryFunc(JitCtx *C, uint64_t RegA, uint64_t RegB,
                             uint64_t TypeIdx);
  static uint64_t hBarrier(JitCtx *C, uint64_t SlotIdx, uint64_t Val,
                           uint64_t IsClo);
  static uint64_t hGlobalBarrier(JitCtx *C, uint64_t Idx, uint64_t Val,
                                 uint64_t IsClo);
  static uint64_t hTrap(JitCtx *C, uint64_t Kind, uint64_t ExtraId);
  static uint64_t hTrapCc(JitCtx *C, uint64_t FuncId);
  static uint64_t hDeadline(JitCtx *C);

  /// Shared tail of every call helper: tier decision for the frame
  /// just pushed — native entry if compiled (compiling it now if hot),
  /// else an interpreter exit.
  static uint64_t finishCall(JitCtx *C);
  /// VM_FUEL replica for helper-resident fuel points; returns false on
  /// a fuel/deadline trap (already recorded).
  static bool fuelOk(JitCtx *C);

  Vm &V;
  uint32_t Threshold;
  CodeArena Arena;
  JitCtx Ctx;
  std::vector<JitFn> Fns;
  /// Indexed by FuncId; sized once in the ctor (stable address).
  std::vector<FuncMeta> Metas;
  std::deque<IcSite> Sites;
  uint8_t *EnterStub = nullptr;
  uint8_t *Epilogue = nullptr;

  // Cumulative tier statistics (reported through VmResult.Jit).
  uint64_t Compiles = 0;
  uint64_t CompileFailures = 0;
  uint64_t CompileNs = 0;
  uint64_t Enters = 0;
  uint64_t OsrEntries = 0;
  uint64_t Deopts = 0;
  uint64_t IcPatches = 0;
  uint64_t IcMegamorphic = 0;
};

} // namespace jit
} // namespace virgil

#endif // VIRGIL_JIT_JIT_H
