//===- support/Source.cpp -------------------------------------------------===//

#include "support/Source.h"

#include <algorithm>

using namespace virgil;

SourceFile::SourceFile(std::string Name, std::string SrcText)
    : FileName(std::move(Name)), Text(std::move(SrcText)) {
  LineStarts.push_back(0);
  for (uint32_t I = 0, E = (uint32_t)Text.size(); I != E; ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

LineCol SourceFile::lineCol(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.Offset > Text.size())
    return LineCol{};
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Loc.Offset);
  uint32_t Line = (uint32_t)(It - LineStarts.begin());
  uint32_t Col = Loc.Offset - LineStarts[Line - 1] + 1;
  return LineCol{Line, Col};
}

std::string_view SourceFile::lineText(SourceLoc Loc) const {
  LineCol LC = lineCol(Loc);
  if (LC.Line == 0)
    return {};
  uint32_t Begin = LineStarts[LC.Line - 1];
  uint32_t End = LC.Line < LineStarts.size() ? LineStarts[LC.Line] - 1
                                             : (uint32_t)Text.size();
  return std::string_view(Text).substr(Begin, End - Begin);
}
