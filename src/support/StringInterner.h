//===- support/StringInterner.h - Uniqued identifier storage ----*- C++ -*-===//
///
/// \file
/// Interns identifier spellings so that name equality is pointer
/// equality. Interned strings live as long as the interner.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SUPPORT_STRINGINTERNER_H
#define VIRGIL_SUPPORT_STRINGINTERNER_H

#include <string>
#include <string_view>
#include <unordered_set>

namespace virgil {

/// An interned, immutable identifier. Compare by pointer.
using Ident = const std::string *;

/// Owns a set of uniqued strings.
class StringInterner {
public:
  /// Returns the canonical Ident for \p Text.
  Ident intern(std::string_view Text);

  size_t size() const { return Pool.size(); }

private:
  std::unordered_set<std::string> Pool;
};

} // namespace virgil

#endif // VIRGIL_SUPPORT_STRINGINTERNER_H
