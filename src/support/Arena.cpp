//===- support/Arena.cpp --------------------------------------------------===//

#include "support/Arena.h"

#include <cassert>
#include <cstdlib>

using namespace virgil;

Arena::~Arena() {
  // Run registered destructors in reverse construction order.
  for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
    It->Dtor(It->Obj);
  for (const Slab &S : Slabs)
    std::free(S.Base);
}

void Arena::addSlab(size_t MinSize) {
  size_t Size = NextSlabSize;
  if (Size < MinSize)
    Size = MinSize;
  NextSlabSize = NextSlabSize * 2;
  char *Base = static_cast<char *>(std::malloc(Size));
  assert(Base && "arena slab allocation failed");
  Slabs.push_back(Slab{Base, Size});
  Cur = Base;
  End = Base + Size;
}

void *Arena::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "align must be pow2");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
  if (!Cur || Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
    addSlab(Size + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
  }
  Cur = reinterpret_cast<char *>(Aligned + Size);
  BytesAllocated += Size;
  return reinterpret_cast<void *>(Aligned);
}
