//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
///
/// \file
/// A simple bump-pointer arena. AST nodes, types, and IR nodes are
/// allocated here and never individually freed; whole phases are torn
/// down by destroying their arena. Objects allocated with `make<T>` have
/// trivial-enough destructors by convention (no owning members), matching
/// the compiler's phase-oriented lifetime model.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SUPPORT_ARENA_H
#define VIRGIL_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace virgil {

/// Bump allocator backed by geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align);

  /// Constructs a \p T in the arena. If T is not trivially destructible
  /// its destructor runs when the arena is destroyed.
  template <typename T, typename... Args> T *make(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back(DtorEntry{Obj, [](void *P) {
                                  static_cast<T *>(P)->~T();
                                }});
    return Obj;
  }

  /// Total bytes handed out so far (for statistics).
  size_t bytesAllocated() const { return BytesAllocated; }

private:
  struct Slab {
    char *Base;
    size_t Size;
  };
  struct DtorEntry {
    void *Obj;
    void (*Dtor)(void *);
  };

  void addSlab(size_t MinSize);

  std::vector<Slab> Slabs;
  std::vector<DtorEntry> Dtors;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextSlabSize = 16 * 1024;
  size_t BytesAllocated = 0;
};

} // namespace virgil

#endif // VIRGIL_SUPPORT_ARENA_H
