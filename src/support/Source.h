//===- support/Source.h - Source buffers and locations ----------*- C++ -*-===//
///
/// \file
/// Source text management: a SourceFile owns the text of one compilation
/// input; SourceLoc is a byte offset into it; SourceRange spans two
/// offsets. Line/column mapping is computed lazily for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SUPPORT_SOURCE_H
#define VIRGIL_SUPPORT_SOURCE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace virgil {

/// A byte offset into a SourceFile. Offset ~0u means "unknown".
struct SourceLoc {
  uint32_t Offset = ~0u;

  bool isValid() const { return Offset != ~0u; }
  static SourceLoc invalid() { return SourceLoc{}; }
};

/// A half-open [Begin, End) byte range.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;
};

/// Line and column, both 1-based, for rendering diagnostics.
struct LineCol {
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// One input file (or in-memory buffer) of Virgil source.
class SourceFile {
public:
  SourceFile(std::string Name, std::string Text);

  const std::string &name() const { return FileName; }
  std::string_view text() const { return Text; }
  size_t size() const { return Text.size(); }

  /// Maps a location to 1-based line/column. Invalid locs map to 0:0.
  LineCol lineCol(SourceLoc Loc) const;

  /// Returns the full text of the (1-based) line containing \p Loc.
  std::string_view lineText(SourceLoc Loc) const;

private:
  std::string FileName;
  std::string Text;
  /// Byte offset of the start of each line; LineStarts[0] == 0.
  std::vector<uint32_t> LineStarts;
};

} // namespace virgil

#endif // VIRGIL_SUPPORT_SOURCE_H
