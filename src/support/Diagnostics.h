//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
///
/// \file
/// The diagnostic engine used throughout the compiler. Phases report
/// errors/warnings here rather than throwing; callers check hasErrors()
/// between phases. Messages follow the LLVM convention: lower-case first
/// word, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SUPPORT_DIAGNOSTICS_H
#define VIRGIL_SUPPORT_DIAGNOSTICS_H

#include "support/Source.h"

#include <string>
#include <vector>

namespace virgil {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for one compilation.
class DiagEngine {
public:
  explicit DiagEngine(const SourceFile *File = nullptr) : File(File) {}

  void setFile(const SourceFile *F) { File = F; }
  const SourceFile *file() const { return File; }

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "file:line:col: severity: message".
  std::string render() const;

  /// Renders the first error only, or "" if none.
  std::string firstError() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  const SourceFile *File;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace virgil

#endif // VIRGIL_SUPPORT_DIAGNOSTICS_H
