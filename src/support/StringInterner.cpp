//===- support/StringInterner.cpp -----------------------------------------===//

#include "support/StringInterner.h"

using namespace virgil;

Ident StringInterner::intern(std::string_view Text) {
  auto It = Pool.emplace(Text).first;
  return &*It;
}
