//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class hierarchy opts in by
/// providing a `static bool classof(const Base *)` predicate on each
/// derived class; `isa<>`, `cast<>`, and `dyn_cast<>` then work without
/// compiler RTTI, which this project does not use.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SUPPORT_CASTING_H
#define VIRGIL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace virgil {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace virgil

#endif // VIRGIL_SUPPORT_CASTING_H
