//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace virgil;

void DiagEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{DiagSeverity::Note, Loc, std::move(Message)});
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

static void renderOne(std::ostringstream &OS, const SourceFile *File,
                      const Diagnostic &D) {
  if (File) {
    LineCol LC = File->lineCol(D.Loc);
    OS << File->name() << ':' << LC.Line << ':' << LC.Col << ": ";
  }
  OS << severityName(D.Severity) << ": " << D.Message << '\n';
}

std::string DiagEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    renderOne(OS, File, D);
  return OS.str();
}

std::string DiagEngine::firstError() const {
  for (const Diagnostic &D : Diags) {
    if (D.Severity != DiagSeverity::Error)
      continue;
    std::ostringstream OS;
    renderOne(OS, File, D);
    return OS.str();
  }
  return "";
}
