//===- normalize/Normalizer.h - Tuple flattening (paper §4.2) ---*- C++ -*-===//
///
/// \file
/// Whole-program normalization: rewrites all uses of tuples into uses of
/// scalars "regardless of where they occur, including parameters,
/// return values, local variables, array elements, fields, and elements
/// inside other tuples" (paper §4.2). After this pass:
///
/// * every function takes zero or more scalar parameters and returns
///   zero or more scalar values (multi-value returns model the paper's
///   "multiple return registers");
/// * all tuple registers become register bundles; TupleCreate/TupleGet
///   become register moves (cleaned up by copy propagation);
/// * class fields and globals of tuple type become several fields or
///   globals; void fields disappear, but accesses still null-check
///   (paper corner case);
/// * arrays of tuples use the *multiple arrays* strategy the paper
///   names ("or to be multiple arrays, each of which stores one element
///   of the tuple"): Array<(A, B)> is represented by an Array<A> and an
///   Array<B> travelling together; Array<void> keeps only a length and
///   accesses are dutifully bounds-checked;
/// * the §4.1 calling-convention ambiguity is gone: `f(a: int, b: int)`
///   and `g(a: (int, int))` normalize to the identical signature
///   (int, int), so indirect calls need no dynamic checks;
/// * casts and queries between tuple types decompose into their
///   element casts/queries (conjoined with BoolAnd for queries).
///
/// Requires a monomorphized module (types must be concrete); produces a
/// fresh module with Normalized = true.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_NORMALIZE_NORMALIZER_H
#define VIRGIL_NORMALIZE_NORMALIZER_H

#include "ir/Ir.h"

#include <map>
#include <memory>

namespace virgil {

struct NormalizeStats {
  size_t TupleOpsRemoved = 0;
  size_t FieldsBefore = 0;
  size_t FieldsAfter = 0;
  size_t MaxFlattenWidth = 0; ///< Widest tuple flattened.
};

class Normalizer {
public:
  explicit Normalizer(IrModule &In);

  /// Normalizes the module; requires In.Monomorphized.
  std::unique_ptr<IrModule> run();

  const NormalizeStats &stats() const { return Stats; }

  /// The scalar expansion of a type (exposed for tests):
  /// void -> [], tuples -> concatenation, Array<E> -> one array per
  /// scalar of E (length-only Array<void> when E has none).
  std::vector<Type *> flatten(Type *T);

private:
  void normalizeClasses();
  void normalizeGlobals();
  IrFunction *normalizeSignature(IrFunction *F);
  void normalizeBody(IrFunction *OldF, IrFunction *NewF);

  IrModule &In;
  std::unique_ptr<IrModule> Out;
  TypeStore &Types;
  std::map<Type *, std::vector<Type *>> FlattenCache;
  std::map<IrFunction *, IrFunction *> FuncMap;
  std::map<IrClass *, IrClass *> ClassMap;
  /// Per-class: old field index -> (first new index, count).
  std::map<IrClass *, std::vector<std::pair<int, int>>> FieldMaps;
  /// Old global index -> (first new index, count).
  std::vector<std::pair<int, int>> GlobalMap;
  NormalizeStats Stats;
};

} // namespace virgil

#endif // VIRGIL_NORMALIZE_NORMALIZER_H
