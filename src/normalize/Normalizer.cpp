//===- normalize/Normalizer.cpp -------------------------------------------===//

#include "normalize/Normalizer.h"

#include "support/Casting.h"

#include <cassert>

using namespace virgil;

Normalizer::Normalizer(IrModule &In) : In(In), Types(*In.Types) {}

//===----------------------------------------------------------------------===//
// Type flattening
//===----------------------------------------------------------------------===//

std::vector<Type *> Normalizer::flatten(Type *T) {
  auto It = FlattenCache.find(T);
  if (It != FlattenCache.end())
    return It->second;
  std::vector<Type *> Out;
  switch (T->kind()) {
  case TypeKind::Prim:
    if (!T->isVoid())
      Out.push_back(T);
    break;
  case TypeKind::Tuple:
    for (Type *E : cast<TupleType>(T)->elems()) {
      std::vector<Type *> Sub = flatten(E);
      Out.insert(Out.end(), Sub.begin(), Sub.end());
    }
    break;
  case TypeKind::Array: {
    // Multiple-arrays strategy (paper §4.2): one array per scalar of
    // the element type; a length-only Array<void> when there are none.
    std::vector<Type *> Elems = flatten(cast<ArrayType>(T)->elem());
    if (Elems.empty())
      Out.push_back(Types.array(Types.voidTy()));
    else
      for (Type *E : Elems)
        Out.push_back(Types.array(E));
    break;
  }
  case TypeKind::Function:
  case TypeKind::Class:
    // Single scalar values. (A function value's *type* may spell
    // tuples; the value itself is one reference.)
    Out.push_back(T);
    break;
  case TypeKind::TypeParam:
    assert(false && "normalizer requires a monomorphized module");
    break;
  }
  Stats.MaxFlattenWidth = std::max(Stats.MaxFlattenWidth, Out.size());
  FlattenCache[T] = Out;
  return Out;
}

//===----------------------------------------------------------------------===//
// Module-level structure
//===----------------------------------------------------------------------===//

void Normalizer::normalizeClasses() {
  // Two phases: children may precede their parents in the mono
  // module's creation order, so create every class first, then link.
  for (IrClass *C : In.Classes) {
    IrClass *NC = Out->newClass(C->Name);
    NC->Def = C->Def;
    NC->SelfType = C->SelfType;
    NC->Depth = C->Depth;
    NC->MonoArgs = C->MonoArgs;
    ClassMap[C] = NC;
  }
  for (IrClass *C : In.Classes) {
    IrClass *NC = ClassMap[C];
    if (C->Parent)
      NC->Parent = ClassMap[C->Parent];
    std::vector<std::pair<int, int>> Map;
    for (const IrField &F : C->Fields) {
      ++Stats.FieldsBefore;
      std::vector<Type *> Scalars = flatten(F.Ty);
      Map.push_back({(int)NC->Fields.size(), (int)Scalars.size()});
      for (size_t K = 0; K != Scalars.size(); ++K) {
        std::string Name = F.Name;
        if (Scalars.size() > 1)
          Name += "." + std::to_string(K);
        NC->Fields.push_back(IrField{Name, Scalars[K]});
        ++Stats.FieldsAfter;
      }
      if (Scalars.empty())
        ++Stats.FieldsAfter, --Stats.FieldsAfter; // Void field: none.
    }
    FieldMaps[C] = std::move(Map);
  }
}

void Normalizer::normalizeGlobals() {
  for (const IrGlobal &G : In.Globals) {
    std::vector<Type *> Scalars = flatten(G.Ty);
    GlobalMap.push_back({(int)Out->Globals.size(), (int)Scalars.size()});
    for (size_t K = 0; K != Scalars.size(); ++K) {
      std::string Name = G.Name;
      if (Scalars.size() > 1)
        Name += "." + std::to_string(K);
      Out->Globals.push_back(
          IrGlobal{Name, Scalars[K], (int)Out->Globals.size()});
    }
  }
}

IrFunction *Normalizer::normalizeSignature(IrFunction *F) {
  IrFunction *NF = Out->newFunction(F->Name);
  for (uint32_t I = 0; I != F->NumParams; ++I)
    for (Type *S : flatten(F->RegTypes[I]))
      NF->newReg(S);
  NF->NumParams = (uint32_t)NF->RegTypes.size();
  for (Type *R : F->RetTypes)
    for (Type *S : flatten(R))
      NF->RetTypes.push_back(S);
  NF->IsCtor = F->IsCtor;
  NF->Slot = F->Slot;
  if (F->OwnerClass)
    NF->OwnerClass = ClassMap[F->OwnerClass];
  // Preserve the collapsed pre-flattening signature: dynamic function
  // casts compare against it, and the degenerate tuple rules make it
  // identical for every calling-convention variant of the same type.
  NF->SourceFuncTy = F->funcType(Types);
  if (F->NumParams > 0) {
    std::vector<Type *> Rest(F->RegTypes.begin() + 1,
                             F->RegTypes.begin() + F->NumParams);
    Type *Ret = F->RetTypes.size() == 1 ? F->RetTypes[0]
                                        : Types.tuple(F->RetTypes);
    NF->BoundFuncTy = Types.func(Types.tuple(Rest), Ret);
  }
  return NF;
}

//===----------------------------------------------------------------------===//
// Body rewriting
//===----------------------------------------------------------------------===//

namespace {

/// Per-body rewrite context.
struct BodyCtx {
  IrModule &Out;
  IrFunction *NF;
  std::vector<std::vector<Reg>> RegMap;
  IrBlock *Cur = nullptr;
  bool Dead = false; ///< Rest of the current source block is unreachable.

  IrInstr *emit(Opcode Op) {
    auto *I = Out.Nodes.make<IrInstr>();
    I->Op = Op;
    Cur->Instrs.push_back(I);
    return I;
  }
};

} // namespace

void Normalizer::normalizeBody(IrFunction *OldF, IrFunction *NewF) {
  BodyCtx C{*Out, NewF, {}, nullptr, false};
  C.RegMap.resize(OldF->RegTypes.size());
  // Parameters occupy the new function's leading registers.
  {
    Reg Next = 0;
    for (uint32_t I = 0; I != OldF->NumParams; ++I) {
      size_t N = flatten(OldF->RegTypes[I]).size();
      for (size_t K = 0; K != N; ++K)
        C.RegMap[I].push_back(Next++);
    }
  }
  auto regsOf = [&](Reg Old) -> std::vector<Reg> & {
    std::vector<Reg> &Slot = C.RegMap[Old];
    if (Slot.empty()) {
      for (Type *S : flatten(OldF->RegTypes[Old]))
        Slot.push_back(NewF->newReg(S));
      if (!Slot.empty() && Slot[0] < NewF->NumParams && Old >= OldF->NumParams)
        assert(false && "register map collision");
    }
    return Slot;
  };
  // Pre-create blocks (keyed by pointer: optimizer passes leave block
  // ids non-contiguous).
  std::map<IrBlock *, IrBlock *> BlockMap;
  for (size_t I = 0; I != OldF->Blocks.size(); ++I) {
    auto *B = Out->Nodes.make<IrBlock>((uint32_t)I);
    NewF->Blocks.push_back(B);
    BlockMap[OldF->Blocks[I]] = B;
  }

  auto moveScalar = [&](Reg Dst, Reg Src, Type *Ty) {
    IrInstr *I = C.emit(Opcode::Move);
    I->Dsts = {Dst};
    I->Args = {Src};
    I->Ty = Ty;
  };
  auto emitTrap = [&](TrapKind Kind, SourceLoc Loc) {
    IrInstr *I = C.emit(Opcode::Trap);
    I->Index = (int)Kind;
    I->Loc = Loc;
    C.Dead = true;
  };
  // Structural cast: consumes the source scalars, writes the target
  // scalars; emits a trap when the shapes make success impossible.
  auto castStructural = [&](auto &&Self, Type *Src, Type *Dst,
                            const std::vector<Reg> &SrcRegs, size_t &SrcPos,
                            const std::vector<Reg> &DstRegs, size_t &DstPos,
                            SourceLoc Loc) -> bool {
    if (Src->kind() == TypeKind::Tuple || Dst->kind() == TypeKind::Tuple) {
      auto *TS = dyn_cast<TupleType>(Src);
      auto *TD = dyn_cast<TupleType>(Dst);
      if (!TS || !TD || TS->size() != TD->size())
        return false; // Shape mismatch: impossible cast.
      for (size_t I = 0; I != TS->size(); ++I)
        if (!Self(Self, TS->elems()[I], TD->elems()[I], SrcRegs, SrcPos,
                  DstRegs, DstPos, Loc))
          return false;
      return true;
    }
    if (Src->isVoid() || Dst->isVoid())
      return Src->isVoid() && Dst->isVoid();
    size_t NS = flatten(Src).size();
    size_t ND = flatten(Dst).size();
    if (NS != ND)
      return false;
    if (Src == Dst) {
      for (size_t K = 0; K != NS; ++K)
        moveScalar(DstRegs[DstPos + K], SrcRegs[SrcPos + K],
                   flatten(Dst)[K]);
      SrcPos += NS;
      DstPos += ND;
      return true;
    }
    // Multi-scalar non-tuple shapes are arrays of tuples; arrays are
    // invariant, so unequal array types can never cast (post-mono all
    // types are concrete).
    if (NS != 1)
      return false;
    IrInstr *I = C.emit(Opcode::TypeCast);
    I->Dsts = {DstRegs[DstPos]};
    I->Args = {SrcRegs[SrcPos]};
    I->TypeOperand = Dst;
    I->Ty = Dst;
    I->Loc = Loc;
    ++SrcPos;
    ++DstPos;
    return true;
  };

  // Structural query: returns a bool register (or a constant) that is
  // the conjunction over the structure; false constant on mismatch.
  auto queryStructural = [&](auto &&Self, Type *Src, Type *Dst,
                             const std::vector<Reg> &SrcRegs,
                             size_t &SrcPos) -> std::pair<bool, Reg> {
    // Returns {IsConstFalse ? false : true, Reg or NoReg for "true"}.
    if (Src->kind() == TypeKind::Tuple || Dst->kind() == TypeKind::Tuple) {
      auto *TS = dyn_cast<TupleType>(Src);
      auto *TD = dyn_cast<TupleType>(Dst);
      if (!TS || !TD || TS->size() != TD->size())
        return {false, NoReg};
      Reg Acc = NoReg;
      bool Ok = true;
      for (size_t I = 0; I != TS->size(); ++I) {
        auto Part = Self(Self, TS->elems()[I], TD->elems()[I], SrcRegs,
                         SrcPos);
        if (!Part.first)
          Ok = false; // Keep consuming regs for position bookkeeping.
        if (Part.second != NoReg && Ok) {
          if (Acc == NoReg) {
            Acc = Part.second;
          } else {
            Reg D = NewF->newReg(Types.boolTy());
            IrInstr *I2 = C.emit(Opcode::BoolAnd);
            I2->Dsts = {D};
            I2->Args = {Acc, Part.second};
            I2->Ty = Types.boolTy();
            Acc = D;
          }
        }
      }
      if (!Ok)
        return {false, NoReg};
      return {true, Acc};
    }
    size_t NS = flatten(Src).size();
    if (Src->isVoid() || Dst->isVoid()) {
      SrcPos += NS;
      return {Src->isVoid() && Dst->isVoid(), NoReg};
    }
    if (NS != 1 || flatten(Dst).size() != 1) {
      // Arrays of tuples: the type part is decided statically, but a
      // null value must still answer false, so query the first
      // component array against its own type (a pure null check).
      if (Src == Dst) {
        Reg SrcReg = SrcRegs[SrcPos];
        SrcPos += NS;
        Reg D = NewF->newReg(Types.boolTy());
        IrInstr *I = C.emit(Opcode::TypeQuery);
        I->Dsts = {D};
        I->Args = {SrcReg};
        I->TypeOperand = flatten(Src)[0];
        I->Ty = Types.boolTy();
        return {true, D};
      }
      SrcPos += NS;
      return {false, NoReg};
    }
    Reg SrcReg = SrcRegs[SrcPos++];
    Reg D = NewF->newReg(Types.boolTy());
    IrInstr *I = C.emit(Opcode::TypeQuery);
    I->Dsts = {D};
    I->Args = {SrcReg};
    I->TypeOperand = Dst;
    I->Ty = Types.boolTy();
    return {true, D};
  };

  for (size_t BI = 0; BI != OldF->Blocks.size(); ++BI) {
    IrBlock *OldB = OldF->Blocks[BI];
    IrBlock *NewB = BlockMap[OldB];
    C.Cur = NewB;
    C.Dead = false;
    if (OldB->Succ0)
      NewB->Succ0 = BlockMap[OldB->Succ0];
    if (OldB->Succ1)
      NewB->Succ1 = BlockMap[OldB->Succ1];

    for (IrInstr *I : OldB->Instrs) {
      if (C.Dead)
        break;
      switch (I->Op) {
      case Opcode::ConstInt:
      case Opcode::ConstByte:
      case Opcode::ConstBool: {
        IrInstr *N = C.emit(I->Op);
        N->Dsts = regsOf(I->dst());
        N->IntConst = I->IntConst;
        N->Ty = I->Ty;
        break;
      }
      case Opcode::ConstNull: {
        IrInstr *N = C.emit(Opcode::ConstNull);
        N->Dsts = regsOf(I->dst());
        N->Ty = I->Ty;
        // A null of an array-of-tuples type is several null arrays.
        std::vector<Reg> Dsts = N->Dsts;
        if (Dsts.size() > 1) {
          NewB->Instrs.pop_back();
          const std::vector<Type *> &Sc = flatten(I->Ty);
          for (size_t K = 0; K != Dsts.size(); ++K) {
            IrInstr *Nk = C.emit(Opcode::ConstNull);
            Nk->Dsts = {Dsts[K]};
            Nk->Ty = Sc[K];
          }
        }
        break;
      }
      case Opcode::ConstVoid:
        break; // No scalars.
      case Opcode::ConstString: {
        IrInstr *N = C.emit(Opcode::ConstString);
        N->Dsts = regsOf(I->dst());
        N->Index = I->Index;
        N->Ty = I->Ty;
        break;
      }
      case Opcode::ConstDefault: {
        const std::vector<Reg> &Dsts = regsOf(I->dst());
        const std::vector<Type *> Sc = flatten(I->Ty);
        for (size_t K = 0; K != Dsts.size(); ++K) {
          Type *S = Sc[K];
          IrInstr *N = nullptr;
          if (S->isBool()) {
            N = C.emit(Opcode::ConstBool);
          } else if (S->isByte()) {
            N = C.emit(Opcode::ConstByte);
          } else if (S->isInt()) {
            N = C.emit(Opcode::ConstInt);
          } else {
            N = C.emit(Opcode::ConstNull);
          }
          N->Dsts = {Dsts[K]};
          N->IntConst = 0;
          N->Ty = S;
        }
        break;
      }
      case Opcode::Move: {
        const std::vector<Reg> &Src = regsOf(I->Args[0]);
        const std::vector<Reg> &Dst = regsOf(I->dst());
        const std::vector<Type *> Sc = flatten(I->Ty);
        for (size_t K = 0; K != Dst.size(); ++K)
          moveScalar(Dst[K], Src[K], Sc[K]);
        break;
      }
      case Opcode::IntAdd:
      case Opcode::IntSub:
      case Opcode::IntMul:
      case Opcode::IntDiv:
      case Opcode::IntMod:
      case Opcode::IntLt:
      case Opcode::IntLe:
      case Opcode::IntGt:
      case Opcode::IntGe:
      case Opcode::BoolAnd:
      case Opcode::BoolOr: {
        IrInstr *N = C.emit(I->Op);
        N->Dsts = regsOf(I->dst());
        N->Args = {regsOf(I->Args[0])[0], regsOf(I->Args[1])[0]};
        N->Ty = I->Ty;
        break;
      }
      case Opcode::IntNeg:
      case Opcode::BoolNot: {
        IrInstr *N = C.emit(I->Op);
        N->Dsts = regsOf(I->dst());
        N->Args = {regsOf(I->Args[0])[0]};
        N->Ty = I->Ty;
        break;
      }
      case Opcode::Eq:
      case Opcode::Ne: {
        // Componentwise over the flattened operand type; () == () is
        // trivially true.
        const std::vector<Reg> &A = regsOf(I->Args[0]);
        const std::vector<Reg> &Bv = regsOf(I->Args[1]);
        const std::vector<Type *> Sc = flatten(I->TypeOperand);
        bool Neg = I->Op == Opcode::Ne;
        if (Sc.empty()) {
          IrInstr *N = C.emit(Opcode::ConstBool);
          N->Dsts = regsOf(I->dst());
          N->IntConst = Neg ? 0 : 1;
          N->Ty = Types.boolTy();
          break;
        }
        Reg Acc = NoReg;
        for (size_t K = 0; K != Sc.size(); ++K) {
          Reg D = NewF->newReg(Types.boolTy());
          IrInstr *N = C.emit(Neg ? Opcode::Ne : Opcode::Eq);
          N->Dsts = {D};
          N->Args = {A[K], Bv[K]};
          N->TypeOperand = Sc[K];
          N->Ty = Types.boolTy();
          if (Acc == NoReg) {
            Acc = D;
          } else {
            Reg D2 = NewF->newReg(Types.boolTy());
            IrInstr *N2 = C.emit(Neg ? Opcode::BoolOr : Opcode::BoolAnd);
            N2->Dsts = {D2};
            N2->Args = {Acc, D};
            N2->Ty = Types.boolTy();
            Acc = D2;
          }
        }
        moveScalar(regsOf(I->dst())[0], Acc, Types.boolTy());
        break;
      }
      case Opcode::TupleCreate: {
        ++Stats.TupleOpsRemoved;
        const std::vector<Reg> &Dst = regsOf(I->dst());
        size_t Pos = 0;
        auto *TT = cast<TupleType>(I->Ty);
        for (size_t AI = 0; AI != I->Args.size(); ++AI) {
          const std::vector<Reg> &Src = regsOf(I->Args[AI]);
          const std::vector<Type *> Sc = flatten(TT->elems()[AI]);
          for (size_t K = 0; K != Src.size(); ++K)
            moveScalar(Dst[Pos + K], Src[K], Sc[K]);
          Pos += Src.size();
        }
        break;
      }
      case Opcode::TupleGet: {
        ++Stats.TupleOpsRemoved;
        auto *TT = cast<TupleType>(OldF->RegTypes[I->Args[0]]);
        const std::vector<Reg> &Src = regsOf(I->Args[0]);
        const std::vector<Reg> &Dst = regsOf(I->dst());
        size_t Offset = 0;
        for (int K = 0; K != I->Index; ++K)
          Offset += flatten(TT->elems()[K]).size();
        const std::vector<Type *> Sc = flatten(TT->elems()[I->Index]);
        for (size_t K = 0; K != Dst.size(); ++K)
          moveScalar(Dst[K], Src[Offset + K], Sc[K]);
        break;
      }
      case Opcode::NewObject: {
        IrInstr *N = C.emit(Opcode::NewObject);
        N->Dsts = regsOf(I->dst());
        N->Ty = I->Ty;
        N->TypeOperand = I->TypeOperand;
        break;
      }
      case Opcode::FieldGet:
      case Opcode::FieldSet: {
        auto *CT = cast<ClassType>(I->TypeOperand);
        IrClass *OldC = nullptr;
        for (IrClass *Cl : In.Classes)
          if (Cl->Def == CT->def()) {
            OldC = Cl;
            break;
          }
        assert(OldC && "field access on unknown class");
        auto [Start, Count] = FieldMaps[OldC][I->Index];
        const std::vector<Reg> &Obj = regsOf(I->Args[0]);
        if (Count == 0) {
          // Void-typed field: the access reduces to a null check so a
          // null dereference still traps (paper §4.2 corner case).
          IrInstr *N = C.emit(Opcode::NullCheck);
          N->Args = {Obj[0]};
          N->TypeOperand = I->TypeOperand;
          break;
        }
        if (I->Op == Opcode::FieldGet) {
          const std::vector<Reg> &Dst = regsOf(I->dst());
          for (int K = 0; K != Count; ++K) {
            IrInstr *N = C.emit(Opcode::FieldGet);
            N->Dsts = {Dst[K]};
            N->Args = {Obj[0]};
            N->Index = Start + K;
            N->TypeOperand = I->TypeOperand;
            N->Ty = NewF->RegTypes[Dst[K]];
          }
        } else {
          const std::vector<Reg> &Val = regsOf(I->Args[1]);
          for (int K = 0; K != Count; ++K) {
            IrInstr *N = C.emit(Opcode::FieldSet);
            N->Args = {Obj[0], Val[K]};
            N->Index = Start + K;
            N->TypeOperand = I->TypeOperand;
          }
        }
        break;
      }
      case Opcode::NullCheck: {
        IrInstr *N = C.emit(Opcode::NullCheck);
        N->Args = {regsOf(I->Args[0])[0]};
        N->TypeOperand = I->TypeOperand;
        break;
      }
      case Opcode::NewArray: {
        const std::vector<Reg> &Dst = regsOf(I->dst());
        Reg Len = regsOf(I->Args[0])[0];
        const std::vector<Type *> Sc = flatten(I->Ty);
        for (size_t K = 0; K != Dst.size(); ++K) {
          IrInstr *N = C.emit(Opcode::NewArray);
          N->Dsts = {Dst[K]};
          N->Args = {Len};
          N->Ty = Sc[K];
          N->TypeOperand = Sc[K];
        }
        break;
      }
      case Opcode::ArrayGet: {
        auto *AT = cast<ArrayType>(OldF->RegTypes[I->Args[0]]);
        const std::vector<Reg> &Arr = regsOf(I->Args[0]);
        Reg Idx = regsOf(I->Args[1])[0];
        const std::vector<Reg> &Dst = regsOf(I->dst());
        if (Dst.empty()) {
          // Array<void>: length-only array, dutifully bounds-checked.
          IrInstr *N = C.emit(Opcode::BoundsCheck);
          N->Args = {Arr[0], Idx};
          break;
        }
        (void)AT;
        for (size_t K = 0; K != Dst.size(); ++K) {
          IrInstr *N = C.emit(Opcode::ArrayGet);
          N->Dsts = {Dst[K]};
          N->Args = {Arr[K], Idx};
          N->Ty = NewF->RegTypes[Dst[K]];
        }
        break;
      }
      case Opcode::ArraySet: {
        const std::vector<Reg> &Arr = regsOf(I->Args[0]);
        Reg Idx = regsOf(I->Args[1])[0];
        const std::vector<Reg> &Val = regsOf(I->Args[2]);
        if (Val.empty()) {
          IrInstr *N = C.emit(Opcode::BoundsCheck);
          N->Args = {Arr[0], Idx};
          break;
        }
        for (size_t K = 0; K != Val.size(); ++K) {
          IrInstr *N = C.emit(Opcode::ArraySet);
          N->Args = {Arr[K], Idx, Val[K]};
        }
        break;
      }
      case Opcode::BoundsCheck: {
        IrInstr *N = C.emit(Opcode::BoundsCheck);
        N->Args = {regsOf(I->Args[0])[0], regsOf(I->Args[1])[0]};
        break;
      }
      case Opcode::ArrayLen: {
        IrInstr *N = C.emit(Opcode::ArrayLen);
        N->Dsts = regsOf(I->dst());
        N->Args = {regsOf(I->Args[0])[0]};
        N->Ty = I->Ty;
        break;
      }
      case Opcode::GlobalGet: {
        auto [Start, Count] = GlobalMap[I->Index];
        const std::vector<Reg> &Dst = regsOf(I->dst());
        for (int K = 0; K != Count; ++K) {
          IrInstr *N = C.emit(Opcode::GlobalGet);
          N->Dsts = {Dst[K]};
          N->Index = Start + K;
          N->Ty = NewF->RegTypes[Dst[K]];
        }
        break;
      }
      case Opcode::GlobalSet: {
        auto [Start, Count] = GlobalMap[I->Index];
        const std::vector<Reg> &Val = regsOf(I->Args[0]);
        for (int K = 0; K != Count; ++K) {
          IrInstr *N = C.emit(Opcode::GlobalSet);
          N->Args = {Val[K]};
          N->Index = Start + K;
        }
        break;
      }
      case Opcode::CallFunc:
      case Opcode::CallVirtual:
      case Opcode::CallBuiltin: {
        IrInstr *N = C.emit(I->Op);
        for (Reg A : I->Args)
          for (Reg S : regsOf(A))
            N->Args.push_back(S);
        if (!I->Dsts.empty())
          N->Dsts = regsOf(I->dst());
        if (I->Op == Opcode::CallFunc)
          N->Callee = FuncMap[I->Callee];
        N->Index = I->Index;
        N->TypeOperand = I->TypeOperand;
        if (!N->Dsts.empty())
          N->Ty = NewF->RegTypes[N->Dsts[0]];
        break;
      }
      case Opcode::CallIndirect: {
        IrInstr *N = C.emit(Opcode::CallIndirect);
        // All calls pass scalars after normalization: the closure ref
        // first, then the flattened arguments (§4.2).
        for (Reg A : I->Args)
          for (Reg S : regsOf(A))
            N->Args.push_back(S);
        if (!I->Dsts.empty())
          N->Dsts = regsOf(I->dst());
        if (!N->Dsts.empty())
          N->Ty = NewF->RegTypes[N->Dsts[0]];
        break;
      }
      case Opcode::MakeClosure: {
        IrInstr *N = C.emit(Opcode::MakeClosure);
        N->Callee = FuncMap[I->Callee];
        for (Reg A : I->Args)
          for (Reg S : regsOf(A))
            N->Args.push_back(S);
        N->Dsts = regsOf(I->dst());
        N->Ty = I->Ty;
        break;
      }
      case Opcode::TypeCast: {
        Type *Src = OldF->RegTypes[I->Args[0]];
        Type *Dst = I->TypeOperand;
        const std::vector<Reg> &SrcRegs = regsOf(I->Args[0]);
        const std::vector<Reg> &DstRegs = regsOf(I->dst());
        size_t SP = 0, DP = 0;
        if (!castStructural(castStructural, Src, Dst, SrcRegs, SP, DstRegs,
                            DP, I->Loc))
          emitTrap(TrapKind::CastFail, I->Loc);
        break;
      }
      case Opcode::TypeQuery: {
        Type *Src = OldF->RegTypes[I->Args[0]];
        Type *Dst = I->TypeOperand;
        const std::vector<Reg> &SrcRegs = regsOf(I->Args[0]);
        size_t SP = 0;
        auto [Possible, Acc] =
            queryStructural(queryStructural, Src, Dst, SrcRegs, SP);
        Reg Out0 = regsOf(I->dst())[0];
        if (!Possible) {
          IrInstr *N = C.emit(Opcode::ConstBool);
          N->Dsts = {Out0};
          N->IntConst = 0;
          N->Ty = Types.boolTy();
        } else if (Acc == NoReg) {
          IrInstr *N = C.emit(Opcode::ConstBool);
          N->Dsts = {Out0};
          N->IntConst = 1;
          N->Ty = Types.boolTy();
        } else {
          moveScalar(Out0, Acc, Types.boolTy());
        }
        break;
      }
      case Opcode::Ret: {
        IrInstr *N = C.emit(Opcode::Ret);
        for (Reg A : I->Args)
          for (Reg S : regsOf(A))
            N->Args.push_back(S);
        break;
      }
      case Opcode::Br:
        C.emit(Opcode::Br);
        break;
      case Opcode::CondBr: {
        IrInstr *N = C.emit(Opcode::CondBr);
        N->Args = {regsOf(I->Args[0])[0]};
        break;
      }
      case Opcode::Trap: {
        IrInstr *N = C.emit(Opcode::Trap);
        N->Index = I->Index;
        N->Loc = I->Loc;
        break;
      }
      case Opcode::Phi:
        assert(false && "phi outside the SSA sandwich");
        break;
      }
    }
    if (C.Dead) {
      // The block now ends in a trap; sever its successors.
      NewB->Succ0 = nullptr;
      NewB->Succ1 = nullptr;
    }
    assert(!NewB->Instrs.empty() && "normalized block is empty");
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<IrModule> Normalizer::run() {
  assert(In.Monomorphized && "normalizer requires a monomorphized module");
  Out = std::make_unique<IrModule>(Types);
  Out->Strings = In.Strings;
  normalizeClasses();
  normalizeGlobals();
  for (IrFunction *F : In.Functions)
    FuncMap[F] = normalizeSignature(F);
  for (IrFunction *F : In.Functions)
    normalizeBody(F, FuncMap[F]);
  // Rewire vtables.
  for (IrClass *C : In.Classes) {
    IrClass *NC = ClassMap[C];
    for (IrFunction *V : C->VTable)
      NC->VTable.push_back(V ? FuncMap[V] : nullptr);
  }
  if (In.Main)
    Out->Main = FuncMap[In.Main];
  if (In.Init)
    Out->Init = FuncMap[In.Init];
  Out->Monomorphized = true;
  Out->Normalized = true;
  return std::move(Out);
}
