//===- opt/Devirtualizer.cpp - CHA-based devirtualization -----------------===//
///
/// Class-hierarchy analysis: a virtual call whose receiver's static
/// class has exactly one implementation of the slot across its subtree
/// becomes a direct call (the paper lists CHA-style whole-program
/// optimization among the Virgil compiler's passes, and the §3
/// patterns rely on generic classes like Matcher being effectively
/// final after monomorphization).
///
/// Two strengthenings over the naive per-site scan:
///
///  * the subtree/implementer sets come from one precomputed
///    `ClassHierarchy` per pass invocation instead of an O(classes)
///    scan per call site;
///  * *exact-receiver* devirtualization: a receiver whose single
///    definition is a `new.object` that dominates the call (earlier in
///    the same block, or in a dominating block per the shared
///    dominator tree) has a known dynamic class, so the call resolves
///    through that class's vtable even when the hierarchy has many
///    implementers. This is what lets the inliner reach method bodies
///    on locally allocated objects, which in turn is what makes those
///    allocations scalar-replaceable by the escape pass.
///
/// A virtual call null-checks its receiver before dispatching; a
/// direct call does not. CHA-devirtualized sites therefore get an
/// explicit `null.check` so the trap survives the rewrite (the
/// exact-receiver form needs none — the receiver is a fresh
/// allocation and statically non-null).
///
//===----------------------------------------------------------------------===//

#include "opt/Escape.h"
#include "opt/PassManager.h"
#include "ssa/Ssa.h"
#include "support/Casting.h"

#include <map>
#include <vector>

using namespace virgil;

namespace {

/// Turns \p I into a direct call of \p Impl in place.
void makeDirect(IrInstr *I, IrFunction *Impl) {
  I->Op = Opcode::CallFunc;
  I->Callee = Impl;
  I->TypeOperand = nullptr;
  I->Index = -1;
}

/// A direct call passes the site's argument registers verbatim, but
/// virtual dispatch adapts between parameter-list shapes of the same
/// function type (§4.1: an override may take one tuple where the base
/// takes scalars). Only rewrite when the impl's register-level shape
/// matches the site exactly.
bool shapeMatches(const IrInstr *I, const IrFunction *Impl) {
  return I->Args.size() == Impl->NumParams &&
         I->Dsts.size() == Impl->RetTypes.size();
}

size_t devirtFunction(IrModule &M, IrFunction *F, const ClassHierarchy &CH,
                      const ssa::DomTree &DT, OptStats &Stats) {
  size_t Changes = 0;
  // Single-definition map: Defs[r] is r's unique defining instruction
  // plus its block and index, or absent when r has 0 or >1 defs (or is
  // a parameter, which counts as an implicit definition).
  struct DefSite {
    IrInstr *I;
    IrBlock *B;
    size_t Idx;
  };
  std::map<Reg, DefSite> Defs;
  std::map<Reg, int> DefCount;
  for (Reg P = 0; P != F->NumParams; ++P)
    ++DefCount[P];
  for (IrBlock *B : F->Blocks)
    for (size_t I = 0; I != B->Instrs.size(); ++I)
      for (Reg D : B->Instrs[I]->Dsts) {
        ++DefCount[D];
        Defs[D] = {B->Instrs[I], B, I};
      }

  // Null checks to splice in front of CHA-devirtualized calls.
  std::map<IrInstr *, IrInstr *> CheckBefore;

  for (IrBlock *B : F->Blocks) {
    for (size_t Idx = 0; Idx != B->Instrs.size(); ++Idx) {
      IrInstr *I = B->Instrs[Idx];
      if (I->Op != Opcode::CallVirtual || I->Args.empty())
        continue;
      IrClass *Static = CH.resolve(I->TypeOperand);
      if (!Static || I->Index < 0 ||
          (size_t)I->Index >= Static->VTable.size())
        continue;

      // Exact receiver: the unique def is a new.object that dominates
      // this call (earlier in this block, or in a dominating block),
      // so the dynamic class — and thus the vtable entry — is known
      // regardless of how many implementers exist. Dominance also
      // proves the receiver non-null: the one def always runs first,
      // which is why this form needs no null.check.
      Reg Recv = I->Args[0];
      auto DC = DefCount.find(Recv);
      auto DS = Defs.find(Recv);
      bool DefDominates =
          DS != Defs.end() &&
          (DS->second.B == B ? DS->second.Idx < Idx
                             : DT.dominates(DS->second.B, B));
      if (DC != DefCount.end() && DC->second == 1 && DS != Defs.end() &&
          DS->second.I->Op == Opcode::NewObject && DefDominates) {
        IrClass *Exact = CH.resolve(DS->second.I->TypeOperand);
        if (Exact && (size_t)I->Index < Exact->VTable.size() &&
            Exact->VTable[I->Index] &&
            shapeMatches(I, Exact->VTable[I->Index])) {
          makeDirect(I, Exact->VTable[I->Index]);
          ++Changes;
          ++Stats.CallsDevirtualized;
          continue;
        }
      }

      IrFunction *Impl = CH.singleImpl(Static, I->Index);
      if (!Impl || !shapeMatches(I, Impl))
        continue;
      // If the static class's own slot is empty (abstract at the
      // root), an instance of the root would trap "abstract method"
      // under dispatch; a direct call to the lone subclass impl would
      // silently run instead. Only rewrite when the impl is inherited
      // by the whole subtree, i.e. it sits in the root's own vtable.
      if (Static->VTable[I->Index] != Impl)
        continue;
      // Preserve the virtual call's receiver null check.
      IrInstr *NC = M.Nodes.make<IrInstr>();
      NC->Op = Opcode::NullCheck;
      NC->Loc = I->Loc;
      NC->Args = {Recv};
      NC->Ty = F->RegTypes[Recv];
      CheckBefore[I] = NC;
      makeDirect(I, Impl);
      ++Changes;
      ++Stats.CallsDevirtualized;
      ++Stats.DevirtualizedByCha;
    }
  }

  if (!CheckBefore.empty()) {
    for (IrBlock *B : F->Blocks) {
      std::vector<IrInstr *> Out;
      Out.reserve(B->Instrs.size() + CheckBefore.size());
      for (IrInstr *I : B->Instrs) {
        auto It = CheckBefore.find(I);
        if (It != CheckBefore.end())
          Out.push_back(It->second);
        Out.push_back(I);
      }
      B->Instrs = std::move(Out);
    }
  }
  return Changes;
}

} // namespace

size_t virgil::devirtualize(IrModule &M, OptStats &Stats,
                            ssa::DominatorAnalysis *DomA) {
  // Direct calls created here carry no type arguments, so this pass is
  // only sound once monomorphization has erased them.
  if (!M.Monomorphized)
    return 0;
  // After specialization sharing, vtable entries are equivalence
  // representatives: turning a virtual call into a direct call would be
  // behaviorally sound (identical bodies) but would bypass the shared
  // redirect invariants the verifier enforces, so the pass declines —
  // sharing runs after the optimizer by construction anyway.
  if (M.Shared)
    return 0;
  ClassHierarchy CH(M);
  // Standalone callers (tests) get a local throwaway analysis; the
  // pass manager threads its shared one through. The rewrite only
  // splices instructions, so the trees stay valid.
  ssa::DominatorAnalysis Local;
  ssa::DominatorAnalysis &DA = DomA ? *DomA : Local;
  size_t Changes = 0;
  for (IrFunction *F : M.Functions)
    if (!F->Blocks.empty())
      Changes += devirtFunction(M, F, CH, DA.get(F), Stats);
  return Changes;
}
