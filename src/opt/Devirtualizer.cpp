//===- opt/Devirtualizer.cpp - CHA-based devirtualization -----------------===//
///
/// Class-hierarchy analysis: a virtual call whose receiver's static
/// class has exactly one implementation of the slot across its subtree
/// becomes a direct call (the paper lists CHA-style whole-program
/// optimization among the Virgil compiler's passes, and the §3
/// patterns rely on generic classes like Matcher being effectively
/// final after monomorphization).
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "support/Casting.h"

#include <set>

using namespace virgil;

namespace {

/// True if \p Sub is \p Super or inherits from it (IrClass level).
bool inheritsFrom(const IrClass *Sub, const IrClass *Super) {
  for (const IrClass *C = Sub; C; C = C->Parent)
    if (C == Super)
      return true;
  return false;
}

} // namespace

size_t virgil::devirtualize(IrModule &M, OptStats &Stats) {
  size_t Changes = 0;
  // Direct calls created here carry no type arguments, so this pass is
  // only sound once monomorphization has erased them.
  if (!M.Monomorphized)
    return 0;
  // After specialization sharing, vtable entries are equivalence
  // representatives: turning a virtual call into a direct call would be
  // behaviorally sound (identical bodies) but would bypass the shared
  // redirect invariants the verifier enforces, so the pass declines —
  // sharing runs after the optimizer by construction anyway.
  if (M.Shared)
    return 0;
  for (IrFunction *F : M.Functions) {
    for (IrBlock *B : F->Blocks) {
      for (IrInstr *I : B->Instrs) {
        if (I->Op != Opcode::CallVirtual)
          continue;
        auto *CT = dyn_cast_or_null<ClassType>(I->TypeOperand);
        if (!CT)
          continue;
        IrClass *Static = nullptr;
        for (IrClass *C : M.Classes)
          if (C->Def == CT->def()) {
            Static = C;
            break;
          }
        if (!Static || I->Index < 0 ||
            (size_t)I->Index >= Static->VTable.size())
          continue;
        std::set<IrFunction *> Impls;
        for (IrClass *C : M.Classes)
          if (inheritsFrom(C, Static) && C->VTable[I->Index])
            Impls.insert(C->VTable[I->Index]);
        if (Impls.size() != 1)
          continue;
        I->Op = Opcode::CallFunc;
        I->Callee = *Impls.begin();
        I->TypeOperand = nullptr;
        I->Index = -1;
        ++Changes;
        ++Stats.CallsDevirtualized;
      }
    }
  }
  return Changes;
}
