//===- opt/PassManager.h - Optimization pipeline ----------------*- C++ -*-===//
///
/// \file
/// The classical optimizations the paper's claims rely on (§3.3: after
/// specialization "the type queries and casts in each version can be
/// decided statically, the chain of if statements will be folded away,
/// and only a call to the corresponding version remains, which the
/// compiler may then inline, resulting in code just as efficient as if
/// the caller had called the appropriate print* method directly"):
///
///  * constant folding + static cast/query folding + branch folding,
///  * copy propagation (cleans the moves normalization introduces),
///  * dead code and unreachable block elimination,
///  * class-hierarchy-analysis devirtualization,
///  * function inlining,
///  * escape analysis + scalar replacement of non-escaping objects and
///    closures (post-normalization only; see opt/Escape.h).
///
/// Passes run in rounds until a fixpoint or the round limit. Each
/// round times every pass it runs; the per-pass milliseconds accumulate
/// in OptStats and surface through --stats, batch JSON, and STATS.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_OPT_PASSMANAGER_H
#define VIRGIL_OPT_PASSMANAGER_H

#include "ir/Ir.h"

#include <functional>

namespace virgil {

namespace ssa {
class DominatorAnalysis;
}

/// Process-wide default for escape analysis + scalar replacement, from
/// VIRGIL_OPT_ESCAPE (on/1/true | off/0/false); on when unset. The CI
/// escape-stress lane flips this for every compile in a binary without
/// threading a flag through each construction site (same pattern as
/// VIRGIL_MONO_SHARE).
bool defaultOptEscapeEnabled();

/// Process-wide default for the SSA mid-tier (pruned-SSA construction,
/// SCCP, load/store elimination), from VIRGIL_OPT_SSA (on/1/true |
/// off/0/false); on when unset. The CI ssa-stress lane flips this for
/// every compile in a binary, same pattern as VIRGIL_OPT_ESCAPE.
bool defaultOptSsaEnabled();

struct OptOptions {
  bool Fold = true;
  bool CopyProp = true;
  bool Dce = true;
  bool Inline = true;
  bool Devirtualize = true;
  bool DeadFields = true;
  bool Escape = defaultOptEscapeEnabled();
  /// Run optimization rounds through the SSA sandwich: SCCP (which
  /// subsumes Fold + CopyProp — they are not run separately) and
  /// dominance-based load/store elimination over a shared dominator
  /// analysis that Escape and the devirtualizer also consume.
  bool Ssa = defaultOptSsaEnabled();
  unsigned Rounds = 3;
  size_t InlineInstrLimit = 48;
  /// When set, invoked with a pass name ("devirt", "inline", "ssa",
  /// "sccp", "loadelim", "ssa-out", "fold", "copyprop", "dce",
  /// "escape", "deadfields") after that pass runs — for
  /// --dump-ir=<pass>. The "ssa"/"sccp"/"loadelim" dumps fire while
  /// the module is still in SSA form (phis visible); "ssa-out" fires
  /// after phi elimination.
  std::function<void(const char *)> DumpAfter;
};

struct OptStats {
  size_t Folded = 0;
  size_t BranchesFolded = 0;
  size_t CopiesPropagated = 0;
  size_t InstrsRemoved = 0;
  size_t BlocksRemoved = 0;
  size_t CallsInlined = 0;
  size_t CallsDevirtualized = 0;
  /// Devirtualized because CHA found a single implementer (as opposed
  /// to an exact-receiver proof); subset of CallsDevirtualized.
  size_t DevirtualizedByCha = 0;
  size_t FieldsRemoved = 0;
  /// Escape analysis: heap allocations deleted, field registers
  /// created for them, and closures turned into direct calls.
  size_t AllocsElided = 0;
  size_t FieldsScalarized = 0;
  size_t ClosuresFlattened = 0;
  /// SSA mid-tier: phis placed by construction, instructions folded by
  /// SCCP, loads reused / stores killed / null checks deleted by the
  /// dominance-based memory pass.
  size_t PhisPlaced = 0;
  size_t SccpFolded = 0;
  size_t LoadsEliminated = 0;
  size_t StoresKilled = 0;
  size_t NullChecksRemoved = 0;
  /// Pass invocations skipped because no pass had changed the module
  /// since their last run (the per-pass changed-bit scheduler).
  size_t PassRunsSkipped = 0;
  /// Wall-clock milliseconds per pass, summed over rounds.
  double DevirtMs = 0;
  double InlineMs = 0;
  double FoldMs = 0;
  double CopyPropMs = 0;
  double DceMs = 0;
  double EscapeMs = 0;
  double DeadFieldsMs = 0;
  double SsaMs = 0;

  OptStats &operator+=(const OptStats &O);
};

/// Individual passes; each returns the number of changes made. The
/// passes taking a DominatorAnalysis use the shared memoized dominator
/// trees when one is supplied (the pass manager threads one through a
/// whole optimizeModule invocation) and compute their own otherwise.
size_t foldConstants(IrModule &M, OptStats &Stats);
size_t propagateCopies(IrModule &M, OptStats &Stats);
size_t eliminateDeadCode(IrModule &M, OptStats &Stats);
size_t inlineCalls(IrModule &M, size_t InstrLimit, OptStats &Stats);
size_t devirtualize(IrModule &M, OptStats &Stats,
                    ssa::DominatorAnalysis *DomA = nullptr);
size_t eliminateDeadFields(IrModule &M, OptStats &Stats);

/// Runs the configured pipeline.
OptStats optimizeModule(IrModule &M, const OptOptions &Options = {});

} // namespace virgil

#endif // VIRGIL_OPT_PASSMANAGER_H
