//===- opt/PassManager.h - Optimization pipeline ----------------*- C++ -*-===//
///
/// \file
/// The classical optimizations the paper's claims rely on (§3.3: after
/// specialization "the type queries and casts in each version can be
/// decided statically, the chain of if statements will be folded away,
/// and only a call to the corresponding version remains, which the
/// compiler may then inline, resulting in code just as efficient as if
/// the caller had called the appropriate print* method directly"):
///
///  * constant folding + static cast/query folding + branch folding,
///  * copy propagation (cleans the moves normalization introduces),
///  * dead code and unreachable block elimination,
///  * class-hierarchy-analysis devirtualization,
///  * function inlining.
///
/// Passes run in rounds until a fixpoint or the round limit.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_OPT_PASSMANAGER_H
#define VIRGIL_OPT_PASSMANAGER_H

#include "ir/Ir.h"

namespace virgil {

struct OptOptions {
  bool Fold = true;
  bool CopyProp = true;
  bool Dce = true;
  bool Inline = true;
  bool Devirtualize = true;
  bool DeadFields = true;
  unsigned Rounds = 3;
  size_t InlineInstrLimit = 48;
};

struct OptStats {
  size_t Folded = 0;
  size_t BranchesFolded = 0;
  size_t CopiesPropagated = 0;
  size_t InstrsRemoved = 0;
  size_t BlocksRemoved = 0;
  size_t CallsInlined = 0;
  size_t CallsDevirtualized = 0;
  size_t FieldsRemoved = 0;
};

/// Individual passes; each returns the number of changes made.
size_t foldConstants(IrModule &M, OptStats &Stats);
size_t propagateCopies(IrModule &M, OptStats &Stats);
size_t eliminateDeadCode(IrModule &M, OptStats &Stats);
size_t inlineCalls(IrModule &M, size_t InstrLimit, OptStats &Stats);
size_t devirtualize(IrModule &M, OptStats &Stats);
size_t eliminateDeadFields(IrModule &M, OptStats &Stats);

/// Runs the configured pipeline.
OptStats optimizeModule(IrModule &M, const OptOptions &Options = {});

} // namespace virgil

#endif // VIRGIL_OPT_PASSMANAGER_H
