//===- opt/CopyProp.cpp - Block-local copy propagation --------------------===//
///
/// Replaces uses of `Move` results by their sources within a block,
/// invalidating mappings when either side is redefined (registers are
/// not SSA). Normalization introduces large numbers of moves in place
/// of TupleCreate/TupleGet; this pass plus DCE removes almost all of
/// them, which is what makes flattened tuples genuinely free.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include <map>

using namespace virgil;

size_t virgil::propagateCopies(IrModule &M, OptStats &Stats) {
  size_t Changes = 0;
  for (IrFunction *F : M.Functions) {
    for (IrBlock *B : F->Blocks) {
      // Dst -> current source register.
      std::map<Reg, Reg> Copies;
      auto invalidate = [&](Reg R) {
        Copies.erase(R);
        for (auto It = Copies.begin(); It != Copies.end();) {
          if (It->second == R)
            It = Copies.erase(It);
          else
            ++It;
        }
      };
      for (IrInstr *I : B->Instrs) {
        // Rewrite uses first.
        for (Reg &A : I->Args) {
          auto It = Copies.find(A);
          if (It != Copies.end()) {
            A = It->second;
            ++Changes;
            ++Stats.CopiesPropagated;
          }
        }
        // Then account for definitions.
        for (Reg D : I->Dsts)
          invalidate(D);
        if (I->Op == Opcode::Move && I->Args[0] != I->dst())
          Copies[I->dst()] = I->Args[0];
      }
    }
  }
  return Changes;
}
