//===- opt/ConstFold.cpp - Constant, cast, and branch folding -------------===//
///
/// Folds constant arithmetic, statically-decided type casts/queries
/// (using the same three-valued classifier the typechecker uses, §3.3),
/// and conditional branches on constants. The analysis is block-local:
/// registers may be assigned more than once across blocks (the IR is
/// not SSA), so each block starts from an empty constant environment,
/// which is safe.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "types/TypeRelations.h"

#include <map>

using namespace virgil;

namespace {

struct Const {
  bool Known = false;
  bool IsNull = false;
  int64_t V = 0;
};

} // namespace

size_t virgil::foldConstants(IrModule &M, OptStats &Stats) {
  TypeRelations Rels(*M.Types);
  size_t Changes = 0;
  for (IrFunction *F : M.Functions) {
    for (IrBlock *B : F->Blocks) {
      std::map<Reg, Const> Env;
      auto known = [&](Reg R) -> Const {
        auto It = Env.find(R);
        return It == Env.end() ? Const{} : It->second;
      };
      auto set = [&](Reg R, Const C) { Env[R] = C; };
      auto kill = [&](const IrInstr *I) {
        for (Reg D : I->Dsts)
          Env.erase(D);
      };
      auto toConstBool = [&](IrInstr *I, bool V) {
        I->Op = Opcode::ConstBool;
        I->Args.clear();
        I->TypeOperand = nullptr;
        I->Callee = nullptr;
        I->IntConst = V ? 1 : 0;
        I->Ty = M.Types->boolTy();
        set(I->dst(), Const{true, false, V ? 1 : 0});
        ++Changes;
        ++Stats.Folded;
      };
      auto toConstInt = [&](IrInstr *I, int64_t V) {
        I->Op = Opcode::ConstInt;
        I->Args.clear();
        I->IntConst = (int32_t)V;
        set(I->dst(), Const{true, false, (int32_t)V});
        ++Changes;
        ++Stats.Folded;
      };

      for (IrInstr *I : B->Instrs) {
        switch (I->Op) {
        case Opcode::ConstInt:
        case Opcode::ConstByte:
        case Opcode::ConstBool:
          set(I->dst(), Const{true, false, I->IntConst});
          break;
        case Opcode::ConstNull:
          set(I->dst(), Const{true, true, 0});
          break;
        case Opcode::Move: {
          Const C = known(I->Args[0]);
          if (C.Known)
            set(I->dst(), C);
          else
            kill(I);
          break;
        }
        case Opcode::IntAdd:
        case Opcode::IntSub:
        case Opcode::IntMul: {
          Const A = known(I->Args[0]);
          Const Bc = known(I->Args[1]);
          if (A.Known && Bc.Known && !A.IsNull && !Bc.IsNull) {
            int64_t R = I->Op == Opcode::IntAdd   ? A.V + Bc.V
                        : I->Op == Opcode::IntSub ? A.V - Bc.V
                                                  : A.V * Bc.V;
            toConstInt(I, (int32_t)R);
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::IntDiv:
        case Opcode::IntMod: {
          Const A = known(I->Args[0]);
          Const Bc = known(I->Args[1]);
          if (A.Known && Bc.Known && Bc.V != 0) {
            int64_t R = I->Op == Opcode::IntDiv ? A.V / Bc.V : A.V % Bc.V;
            toConstInt(I, (int32_t)R);
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::IntNeg: {
          Const A = known(I->Args[0]);
          if (A.Known)
            toConstInt(I, (int32_t)-(int64_t)A.V);
          else
            kill(I);
          break;
        }
        case Opcode::IntLt:
        case Opcode::IntLe:
        case Opcode::IntGt:
        case Opcode::IntGe: {
          Const A = known(I->Args[0]);
          Const Bc = known(I->Args[1]);
          if (A.Known && Bc.Known) {
            bool R = I->Op == Opcode::IntLt   ? A.V < Bc.V
                     : I->Op == Opcode::IntLe ? A.V <= Bc.V
                     : I->Op == Opcode::IntGt ? A.V > Bc.V
                                              : A.V >= Bc.V;
            toConstBool(I, R);
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::BoolNot: {
          Const A = known(I->Args[0]);
          if (A.Known)
            toConstBool(I, A.V == 0);
          else
            kill(I);
          break;
        }
        case Opcode::BoolAnd:
        case Opcode::BoolOr: {
          Const A = known(I->Args[0]);
          Const Bc = known(I->Args[1]);
          bool IsAnd = I->Op == Opcode::BoolAnd;
          if (A.Known && Bc.Known) {
            toConstBool(I, IsAnd ? (A.V && Bc.V) : (A.V || Bc.V));
          } else if (A.Known || Bc.Known) {
            // One side known: x && true == x; x && false == false.
            Const K = A.Known ? A : Bc;
            Reg Other = A.Known ? I->Args[1] : I->Args[0];
            if ((IsAnd && K.V == 0) || (!IsAnd && K.V != 0)) {
              toConstBool(I, !IsAnd);
            } else {
              I->Op = Opcode::Move;
              I->Args = {Other};
              kill(I);
              ++Changes;
              ++Stats.Folded;
            }
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::Eq:
        case Opcode::Ne: {
          Const A = known(I->Args[0]);
          Const Bc = known(I->Args[1]);
          if (A.Known && Bc.Known && I->TypeOperand &&
              (I->TypeOperand->kind() == TypeKind::Prim || A.IsNull ||
               Bc.IsNull)) {
            bool Equal = A.IsNull || Bc.IsNull ? (A.IsNull && Bc.IsNull)
                                               : A.V == Bc.V;
            toConstBool(I, I->Op == Opcode::Eq ? Equal : !Equal);
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::TypeQuery: {
          // Fold statically-decided queries: after monomorphization the
          // operand types are concrete, so int.?(x: int) is True and
          // int.?(x: string) is False (paper §3.3).
          Type *From = F->RegTypes[I->Args[0]];
          TypeRel Rel = Rels.queryRel(From, I->TypeOperand);
          if (Rel == TypeRel::True)
            toConstBool(I, true);
          else if (Rel == TypeRel::False)
            toConstBool(I, false);
          else {
            // A known-null operand answers false.
            Const A = known(I->Args[0]);
            if (A.Known && A.IsNull)
              toConstBool(I, false);
            else
              kill(I);
          }
          break;
        }
        case Opcode::TypeCast: {
          Type *From = F->RegTypes[I->Args[0]];
          if (From == I->TypeOperand) {
            I->Op = Opcode::Move;
            I->TypeOperand = nullptr;
            kill(I);
            ++Changes;
            ++Stats.Folded;
          } else {
            kill(I);
          }
          break;
        }
        case Opcode::CondBr: {
          Const A = known(I->Args[0]);
          if (A.Known) {
            IrBlock *Target = A.V != 0 ? B->Succ0 : B->Succ1;
            I->Op = Opcode::Br;
            I->Args.clear();
            B->Succ0 = Target;
            B->Succ1 = nullptr;
            ++Changes;
            ++Stats.BranchesFolded;
          }
          break;
        }
        default:
          kill(I);
          break;
        }
      }
    }
  }
  return Changes;
}
