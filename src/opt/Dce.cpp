//===- opt/Dce.cpp - Dead code and unreachable block elimination ----------===//
///
/// Removes pure instructions whose results are never read anywhere in
/// the function (global liveness over registers, iterated to a
/// fixpoint), drops blocks unreachable from the entry, and merges
/// straight-line block chains.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include <map>
#include <set>
#include <vector>

using namespace virgil;

namespace {

size_t dceFunction(IrFunction *F, OptStats &Stats) {
  size_t Changes = 0;

  // 1. Unreachable blocks.
  std::set<IrBlock *> Reached;
  std::vector<IrBlock *> Work{F->Blocks[0]};
  while (!Work.empty()) {
    IrBlock *B = Work.back();
    Work.pop_back();
    if (!Reached.insert(B).second)
      continue;
    if (B->Succ0)
      Work.push_back(B->Succ0);
    if (B->Succ1)
      Work.push_back(B->Succ1);
  }
  if (Reached.size() != F->Blocks.size()) {
    std::vector<IrBlock *> Kept;
    for (IrBlock *B : F->Blocks) {
      if (Reached.count(B)) {
        Kept.push_back(B);
      } else {
        ++Stats.BlocksRemoved;
        ++Changes;
      }
    }
    F->Blocks = std::move(Kept);
  }

  // 2. Merge straight-line chains: B -> S where S has exactly one
  // predecessor.
  for (;;) {
    std::map<IrBlock *, int> Preds;
    for (IrBlock *B : F->Blocks) {
      if (B->Succ0)
        ++Preds[B->Succ0];
      if (B->Succ1)
        ++Preds[B->Succ1];
    }
    bool Merged = false;
    for (IrBlock *B : F->Blocks) {
      if (!B->Succ0 || B->Succ1 || B->Succ0 == B)
        continue;
      IrBlock *S = B->Succ0;
      if (S == F->Blocks[0] || Preds[S] != 1)
        continue;
      if (B->Instrs.empty() || B->Instrs.back()->Op != Opcode::Br)
        continue;
      // Splice S into B.
      B->Instrs.pop_back();
      B->Instrs.insert(B->Instrs.end(), S->Instrs.begin(), S->Instrs.end());
      B->Succ0 = S->Succ0;
      B->Succ1 = S->Succ1;
      for (size_t I = 0; I != F->Blocks.size(); ++I) {
        if (F->Blocks[I] == S) {
          F->Blocks.erase(F->Blocks.begin() + I);
          break;
        }
      }
      ++Stats.BlocksRemoved;
      ++Changes;
      Merged = true;
      break;
    }
    if (!Merged)
      break;
  }

  // 3. Dead pure instructions (fixpoint).
  for (;;) {
    std::set<Reg> Used;
    for (IrBlock *B : F->Blocks)
      for (IrInstr *I : B->Instrs)
        for (Reg A : I->Args)
          Used.insert(A);
    bool Removed = false;
    for (IrBlock *B : F->Blocks) {
      std::vector<IrInstr *> Kept;
      Kept.reserve(B->Instrs.size());
      for (IrInstr *I : B->Instrs) {
        bool Dead = isPure(I->Op) && !I->Dsts.empty();
        if (Dead)
          for (Reg D : I->Dsts)
            if (Used.count(D))
              Dead = false;
        // Self-moves are dead even though their dst is "used".
        if (I->Op == Opcode::Move && I->Args[0] == I->dst())
          Dead = true;
        if (Dead) {
          ++Stats.InstrsRemoved;
          ++Changes;
          Removed = true;
        } else {
          Kept.push_back(I);
        }
      }
      B->Instrs = std::move(Kept);
    }
    if (!Removed)
      break;
  }
  return Changes;
}

} // namespace

size_t virgil::eliminateDeadCode(IrModule &M, OptStats &Stats) {
  size_t Changes = 0;
  for (IrFunction *F : M.Functions)
    if (!F->Blocks.empty())
      Changes += dceFunction(F, Stats);
  return Changes;
}
