//===- opt/Escape.h - Escape analysis + scalar replacement ------*- C++ -*-===//
///
/// \file
/// Intraprocedural escape analysis over the post-normalization IR, plus
/// the scalar-replacement rewrite it enables:
///
///  * a `NewObject` whose value never leaves the function (no return,
///    global store, store into another object/array, call argument,
///    cast, comparison, or closure capture) is deleted and its fields
///    become plain registers — `field.get`/`field.set` turn into moves,
///    and the allocation plus its fused write barriers never reach
///    `BcPrepare`;
///  * a `MakeClosure` whose value is only ever called (`call.indirect`
///    callee position) is flattened — every call site becomes a direct
///    `call.func` of the (CHA-resolved) target with the bound receiver
///    prepended, and the closure allocation dies.
///
/// The analysis is deliberately conservative: a candidate must have a
/// single definition, every use (transitively through `Move` aliases)
/// must be on the whitelist above, every use must be dominated by the
/// definition, and no alias may survive a re-execution of the
/// allocation (loop back-edges) — see `Escape.cpp` for the exact path
/// condition. Anything else is treated as escaping.
///
/// `ClassHierarchy` is the precomputed class-hierarchy analysis both
/// this pass and the `Devirtualizer` consume: children lists and
/// per-(class, slot) implementer sets replace the per-call-site
/// O(classes) scans, and make single-implementer lookups O(1).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_OPT_ESCAPE_H
#define VIRGIL_OPT_ESCAPE_H

#include "ir/Ir.h"

#include <map>
#include <vector>

namespace virgil {

struct OptStats;

namespace ssa {
class DominatorAnalysis;
}

/// Precomputed class-hierarchy analysis over a (post-mono) module.
class ClassHierarchy {
public:
  explicit ClassHierarchy(const IrModule &M);

  /// The IrClass a class type resolves to, or null.
  IrClass *resolve(Type *T) const;

  /// The unique non-null implementation of vtable slot \p Slot across
  /// the subtree rooted at \p Root, or null when the slot is abstract
  /// everywhere or has more than one distinct implementation.
  IrFunction *singleImpl(IrClass *Root, int Slot) const;

  /// True if \p Sub is \p Super or inherits from it.
  static bool inheritsFrom(const IrClass *Sub, const IrClass *Super);

private:
  std::map<const ClassDef *, IrClass *> ByDef;
  /// Subtree members per class (the class itself included), built once
  /// so singleImpl never rescans the module.
  std::map<const IrClass *, std::vector<IrClass *>> Subtree;
};

/// Scalar-replaces non-escaping `NewObject`/`MakeClosure` allocations.
/// Runs only on monomorphized, normalized, unshared modules (it needs
/// concrete layouts, scalar-only field types, and real — not
/// representative — callee metadata); returns the number of rewrites.
/// When \p DomA is supplied the pass reads the shared memoized
/// dominator trees instead of re-deriving per-function dominance (the
/// rewrites here never change the CFG, so the trees stay valid).
size_t scalarReplaceAllocations(IrModule &M, OptStats &Stats,
                                ssa::DominatorAnalysis *DomA = nullptr);

} // namespace virgil

#endif // VIRGIL_OPT_ESCAPE_H
