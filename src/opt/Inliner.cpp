//===- opt/Inliner.cpp - Function inlining ---------------------------------===//
///
/// Inlines small direct calls: the callee's blocks are cloned into the
/// caller with a register offset, parameters become moves, and returns
/// become moves to the call's result registers plus a branch to the
/// continuation. Post-monomorphization this is what turns the
/// specialized `print1<int>` into a direct `printInt` call body
/// (paper §3.3) and flattens the synthesized `C.$new` and operator
/// wrappers away.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include <cassert>
#include <map>

using namespace virgil;

namespace {

/// Size of a callee for budget purposes. Moves don't count: parameter
/// moves, normalization copies, and the scalar-replacement rewrites
/// from the escape pass all fuse away under copy propagation + DCE, so
/// charging them would double-count work that never reaches the
/// emitter and starve inlining right after scalar replacement fires.
size_t instrCount(const IrFunction *F) {
  size_t N = 0;
  for (const IrBlock *B : F->Blocks)
    for (const IrInstr *I : B->Instrs)
      if (I->Op != Opcode::Move)
        ++N;
  return N;
}

bool callsSelf(const IrFunction *F) {
  for (const IrBlock *B : F->Blocks)
    for (const IrInstr *I : B->Instrs)
      if (I->Callee == F)
        return true;
  return false;
}

/// Inlines callee G at instruction index \p Pos of block \p B in F.
void inlineAt(IrModule &M, IrFunction *F, IrBlock *B, size_t Pos) {
  IrInstr *Call = B->Instrs[Pos];
  IrFunction *G = Call->Callee;

  // Register remapping: G's register i becomes F's register Base + i.
  Reg Base = (Reg)F->RegTypes.size();
  for (Type *T : G->RegTypes)
    F->RegTypes.push_back(T);

  // Continuation block inherits the tail of B and B's successors.
  auto *Cont = M.Nodes.make<IrBlock>((uint32_t)F->Blocks.size());
  F->Blocks.push_back(Cont);
  Cont->Instrs.assign(B->Instrs.begin() + Pos + 1, B->Instrs.end());
  Cont->Succ0 = B->Succ0;
  Cont->Succ1 = B->Succ1;
  B->Instrs.resize(Pos); // Drop the call and the tail.

  // Parameter moves.
  assert(Call->Args.size() == G->NumParams && "direct call arity");
  for (size_t I = 0; I != Call->Args.size(); ++I) {
    auto *Mv = M.Nodes.make<IrInstr>();
    Mv->Op = Opcode::Move;
    Mv->Dsts = {Base + (Reg)I};
    Mv->Args = {Call->Args[I]};
    Mv->Ty = G->RegTypes[I];
    B->Instrs.push_back(Mv);
  }

  // Clone G's blocks (pointer-keyed: ids may be stale after other
  // passes).
  std::map<IrBlock *, IrBlock *> BlockMap;
  for (size_t I = 0; I != G->Blocks.size(); ++I) {
    auto *NB = M.Nodes.make<IrBlock>((uint32_t)F->Blocks.size());
    F->Blocks.push_back(NB);
    BlockMap[G->Blocks[I]] = NB;
  }
  for (size_t BI = 0; BI != G->Blocks.size(); ++BI) {
    IrBlock *GB = G->Blocks[BI];
    IrBlock *NB = BlockMap[GB];
    if (GB->Succ0)
      NB->Succ0 = BlockMap[GB->Succ0];
    if (GB->Succ1)
      NB->Succ1 = BlockMap[GB->Succ1];
    for (IrInstr *GI : GB->Instrs) {
      if (GI->Op == Opcode::Ret) {
        // Return values flow into the call's destinations.
        for (size_t K = 0; K != Call->Dsts.size(); ++K) {
          auto *Mv = M.Nodes.make<IrInstr>();
          Mv->Op = Opcode::Move;
          Mv->Dsts = {Call->Dsts[K]};
          Mv->Args = {GI->Args[K] + Base};
          Mv->Ty = F->RegTypes[Call->Dsts[K]];
          NB->Instrs.push_back(Mv);
        }
        auto *Jump = M.Nodes.make<IrInstr>();
        Jump->Op = Opcode::Br;
        NB->Instrs.push_back(Jump);
        NB->Succ0 = Cont;
        NB->Succ1 = nullptr;
        continue;
      }
      auto *NI = M.Nodes.make<IrInstr>();
      *NI = *GI;
      for (Reg &R : NI->Dsts)
        R += Base;
      for (Reg &R : NI->Args)
        R += Base;
      NB->Instrs.push_back(NI);
    }
  }

  // Jump from the call site into the cloned entry.
  auto *Jump = M.Nodes.make<IrInstr>();
  Jump->Op = Opcode::Br;
  B->Instrs.push_back(Jump);
  B->Succ0 = BlockMap[G->Blocks[0]];
  B->Succ1 = nullptr;
}

} // namespace

size_t virgil::inlineCalls(IrModule &M, size_t InstrLimit, OptStats &Stats) {
  size_t Changes = 0;
  // Specialization sharing runs after the last optimizer round; a
  // shared module's register *types* are the representative's and may
  // not match a caller's static view, so inlining (which splices callee
  // registers into the caller by type) must never see one.
  if (M.Shared)
    return 0;
  // Budget sizes are memoized per round (one inlineCalls call = one
  // round): recomputing from the current IR each round — instead of
  // caching a pre-round size — means a callee shrunk by scalar
  // replacement or DCE becomes inlinable as soon as it actually fits.
  // Entries are invalidated when a function inlines something (its own
  // size just changed).
  std::map<const IrFunction *, size_t> Sizes;
  auto sizeOf = [&](const IrFunction *G) {
    auto It = Sizes.find(G);
    if (It != Sizes.end())
      return It->second;
    return Sizes.emplace(G, instrCount(G)).first->second;
  };
  for (IrFunction *F : M.Functions) {
    // One inline per block scan; repeated pass-manager rounds pick up
    // the rest. Bounded to keep a single round linear-ish.
    size_t BudgetPerFunction = 32;
    for (size_t BI = 0; BI != F->Blocks.size() && BudgetPerFunction; ++BI) {
      IrBlock *B = F->Blocks[BI];
      for (size_t Pos = 0; Pos != B->Instrs.size(); ++Pos) {
        IrInstr *I = B->Instrs[Pos];
        if (I->Op != Opcode::CallFunc || !I->Callee)
          continue;
        IrFunction *G = I->Callee;
        if (G == F || G->Blocks.empty())
          continue;
        if (!G->TypeParams.empty())
          continue; // Inline only monomorphic callees.
        if (I->Args.size() != G->NumParams)
          continue; // Shape-adapted interpreter-only call.
        if (sizeOf(G) > InstrLimit || callsSelf(G))
          continue;
        inlineAt(M, F, B, Pos);
        Sizes.erase(F);
        ++Changes;
        ++Stats.CallsInlined;
        --BudgetPerFunction;
        break; // B's instruction list changed; move to the next block.
      }
    }
  }
  return Changes;
}
