//===- opt/Escape.cpp - Escape analysis + scalar replacement --------------===//
///
/// Two phases per function, both driven by the same alias-aware
/// classification:
///
///  1. Closure flattening: a `MakeClosure` whose value (transitively
///     through single-def `Move` aliases) is only ever the callee of
///     `call.indirect` is resolved to a direct target (CHA for virtual
///     methods) and every call site becomes a `call.func`, with the
///     bound receiver captured into a fresh register at the creation
///     site (the receiver register may be reassigned between creation
///     and call) and the creation-time null check preserved.
///
///  2. Object scalarization: a `NewObject` whose value is only ever the
///     base of `field.get`/`field.set` (or a `null.check`, or a `Move`
///     alias thereof) is replaced by one register per field —
///     `ConstDefault` at the allocation site reproduces the allocator's
///     zero-initialization, loads and stores become moves, and the
///     null checks vanish (the value is statically non-null).
///
/// Soundness conditions, checked per candidate:
///  * the candidate and every alias have exactly one definition;
///  * every use is dominated by the definition it reads;
///  * for an alias use `U` with alias def `D`: there is no execution
///    that re-runs the allocation `A` after `D` but before `U` without
///    re-running `D` — conservatively, `A` must be unreachable from `D`
///    or every path from (just after) `A` to `U` must pass through `D`.
///    Otherwise a loop back-edge could re-allocate while the alias
///    still holds the previous iteration's value, and the rewrite
///    (which reuses one set of field registers) would be wrong.
///
/// Running after copy propagation and DCE keeps the alias sets small;
/// anything the analysis cannot prove is simply left allocated.
///
//===----------------------------------------------------------------------===//

#include "opt/Escape.h"

#include "opt/PassManager.h"
#include "ssa/Ssa.h"
#include "support/Casting.h"

#include <map>
#include <set>
#include <vector>

using namespace virgil;

//===----------------------------------------------------------------------===//
// ClassHierarchy
//===----------------------------------------------------------------------===//

ClassHierarchy::ClassHierarchy(const IrModule &M) {
  for (IrClass *C : M.Classes) {
    if (C->Def)
      ByDef[C->Def] = C;
    for (IrClass *A = C; A; A = A->Parent)
      Subtree[A].push_back(C);
  }
}

IrClass *ClassHierarchy::resolve(Type *T) const {
  auto *CT = dyn_cast_or_null<ClassType>(T);
  if (!CT)
    return nullptr;
  auto It = ByDef.find(CT->def());
  return It == ByDef.end() ? nullptr : It->second;
}

IrFunction *ClassHierarchy::singleImpl(IrClass *Root, int Slot) const {
  if (!Root || Slot < 0)
    return nullptr;
  auto It = Subtree.find(Root);
  if (It == Subtree.end())
    return nullptr;
  IrFunction *Impl = nullptr;
  for (IrClass *C : It->second) {
    if ((size_t)Slot >= C->VTable.size())
      continue;
    IrFunction *F = C->VTable[Slot];
    if (!F)
      continue;
    if (Impl && Impl != F)
      return nullptr;
    Impl = F;
  }
  return Impl;
}

bool ClassHierarchy::inheritsFrom(const IrClass *Sub, const IrClass *Super) {
  for (const IrClass *C = Sub; C; C = C->Parent)
    if (C == Super)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Per-function analysis scaffolding
//===----------------------------------------------------------------------===//

namespace {

struct Position {
  IrBlock *B = nullptr;
  size_t I = 0;
};

struct RegUse {
  IrInstr *Instr;
  Position Pos;
};

/// Per-function analysis facts, recomputed per phase (rewrites
/// invalidate instruction positions). Dominance comes from the shared
/// memoized tree: the rewrites in this pass never add or remove blocks
/// or edges, so the same tree serves both phases of a function.
struct FuncCtx {
  IrFunction *F;
  const ssa::DomTree &DT;
  std::vector<int> DefCount;
  std::vector<Position> Def;
  std::vector<std::vector<RegUse>> Uses;

  FuncCtx(IrFunction *F, const ssa::DomTree &DT) : F(F), DT(DT) {
    // Defs and uses. Parameters count as an implicit entry definition
    // so a candidate register can never be a parameter.
    size_t R = F->RegTypes.size();
    DefCount.assign(R, 0);
    Def.assign(R, Position());
    Uses.assign(R, {});
    for (Reg P = 0; P != F->NumParams; ++P)
      ++DefCount[P];
    for (IrBlock *B : F->Blocks) {
      for (size_t I = 0; I != B->Instrs.size(); ++I) {
        IrInstr *In = B->Instrs[I];
        for (Reg A : In->Args)
          if (A < R)
            Uses[A].push_back({In, {B, I}});
        for (Reg D : In->Dsts)
          if (D < R) {
            ++DefCount[D];
            Def[D] = {B, I};
          }
      }
    }
  }

  /// Dominance is false for unreachable blocks — stricter than the old
  /// dense computation (which let unreachable code pass), but only in
  /// the conservative direction: a candidate with a use in unreachable
  /// code is rejected rather than rewritten.
  bool blockDominates(IrBlock *A, IrBlock *B) const {
    return DT.dominates(A, B);
  }

  /// True if instruction position \p A strictly dominates \p B.
  bool dominates(const Position &A, const Position &B) const {
    if (A.B == B.B)
      return A.I < B.I;
    return blockDominates(A.B, B.B);
  }

  /// True if execution starting just *after* \p From can reach (be
  /// about to execute) \p To without executing \p Avoid first. Pass
  /// null for an unconstrained reachability query.
  bool reaches(const Position &From, const Position &To,
               const Position *Avoid) const {
    auto Scan = [&](IrBlock *B, size_t Lo) -> int {
      bool HasAvoid = Avoid && Avoid->B == B && Avoid->I >= Lo;
      if (To.B == B && To.I >= Lo && (!HasAvoid || To.I < Avoid->I))
        return 1; // reached To before any barrier
      if (HasAvoid)
        return 0; // barrier blocks the rest of this block
      return -1;  // fell through; successors are reachable
    };
    int R = Scan(From.B, From.I + 1);
    if (R >= 0)
      return R == 1;
    std::set<IrBlock *> Seen;
    std::vector<IrBlock *> Work;
    auto Push = [&](IrBlock *S) {
      if (S && Seen.insert(S).second)
        Work.push_back(S);
    };
    Push(From.B->Succ0);
    Push(From.B->Succ1);
    while (!Work.empty()) {
      IrBlock *B = Work.back();
      Work.pop_back();
      int S = Scan(B, 0);
      if (S == 1)
        return true;
      if (S == 0)
        continue;
      Push(B->Succ0);
      Push(B->Succ1);
    }
    return false;
  }
};

/// Deferred block surgery: analysis runs over stable positions, then
/// each block is rebuilt once applying all deletions and insertions.
struct Rewriter {
  std::set<IrInstr *> Delete;
  std::map<IrInstr *, std::vector<IrInstr *>> InsertBefore;
  std::map<IrInstr *, std::vector<IrInstr *>> InsertAfter;

  bool empty() const {
    return Delete.empty() && InsertBefore.empty() && InsertAfter.empty();
  }

  void apply(IrFunction *F) {
    if (empty())
      return;
    for (IrBlock *B : F->Blocks) {
      std::vector<IrInstr *> Out;
      Out.reserve(B->Instrs.size());
      for (IrInstr *I : B->Instrs) {
        auto Pre = InsertBefore.find(I);
        if (Pre != InsertBefore.end())
          Out.insert(Out.end(), Pre->second.begin(), Pre->second.end());
        if (!Delete.count(I))
          Out.push_back(I);
        auto Post = InsertAfter.find(I);
        if (Post != InsertAfter.end())
          Out.insert(Out.end(), Post->second.begin(), Post->second.end());
      }
      B->Instrs = std::move(Out);
    }
  }
};

enum class AllocKind { Object, Closure };

/// One non-escaping allocation and everything its rewrite needs.
struct Candidate {
  AllocKind Kind;
  IrInstr *Alloc;
  Position AllocPos;
  Reg Root;
  // Object candidates.
  IrClass *Cls = nullptr;
  std::vector<IrInstr *> ObjUses; // FieldGet / FieldSet / NullCheck
  // Closure candidates.
  IrFunction *Target = nullptr;
  bool HasBound = false;
  bool CreationNullCheck = false; // bound virtual: trap at MakeClosure
  bool CallNullCheck = false;     // unbound virtual: trap at call site
  std::vector<IrInstr *> CallUses; // CallIndirect sites
  // Move instructions defining aliases of the root (deleted for
  // closures; left for DCE on objects, where they just copy null).
  std::vector<IrInstr *> AliasMoves;
};

bool isVoidOrTuple(Type *T) {
  if (!T)
    return true;
  if (T->kind() == TypeKind::Tuple)
    return true;
  return T->isVoid();
}

/// Walks the alias closure of the candidate's root register and checks
/// every use against the whitelist for its kind. Fills ObjUses /
/// CallUses / AliasMoves. Returns false as soon as anything escapes.
bool classifyUses(const FuncCtx &Ctx, Candidate &C) {
  std::set<Reg> InSet{C.Root};
  // (reg, def position) — the root's "definition" is the allocation.
  std::vector<std::pair<Reg, Position>> Work{{C.Root, C.AllocPos}};
  while (!Work.empty()) {
    auto [S, DefPos] = Work.back();
    Work.pop_back();
    for (const RegUse &U : Ctx.Uses[S]) {
      IrInstr *I = U.Instr;
      // Every use must read the value the dominating definition wrote.
      if (!Ctx.dominates(DefPos, U.Pos))
        return false;
      // Alias staleness: if the allocation can re-run between the
      // alias's def and this use (without the def re-running), the
      // alias would refer to the previous allocation while the scalar
      // registers hold the new one.
      if (S != C.Root && Ctx.reaches(DefPos, C.AllocPos, nullptr) &&
          Ctx.reaches(C.AllocPos, U.Pos, &DefPos))
        return false;
      switch (I->Op) {
      case Opcode::Move: {
        Reg D = I->dst();
        if (D >= Ctx.DefCount.size() || Ctx.DefCount[D] != 1)
          return false;
        if (!InSet.insert(D).second)
          return false; // two aliases merged into one register
        C.AliasMoves.push_back(I);
        Work.push_back({D, U.Pos});
        break;
      }
      case Opcode::FieldGet:
        if (C.Kind != AllocKind::Object)
          return false;
        if (I->Index < 0 || (size_t)I->Index >= C.Cls->Fields.size())
          return false;
        if (isVoidOrTuple(C.Cls->Fields[I->Index].Ty))
          return false;
        C.ObjUses.push_back(I);
        break;
      case Opcode::FieldSet:
        if (C.Kind != AllocKind::Object)
          return false;
        // Base position only; storing the candidate *into* a field
        // (even its own) publishes it.
        if (I->Args.size() != 2 || I->Args[0] != S || InSet.count(I->Args[1]))
          return false;
        if (I->Index < 0 || (size_t)I->Index >= C.Cls->Fields.size())
          return false;
        if (isVoidOrTuple(C.Cls->Fields[I->Index].Ty))
          return false;
        C.ObjUses.push_back(I);
        break;
      case Opcode::NullCheck:
        if (C.Kind != AllocKind::Object)
          return false;
        C.ObjUses.push_back(I);
        break;
      case Opcode::CallIndirect: {
        if (C.Kind != AllocKind::Closure)
          return false;
        // Callee position only; passing the closure as an argument
        // (including to itself) escapes.
        if (I->Args.empty() || I->Args[0] != S)
          return false;
        for (size_t K = 1; K != I->Args.size(); ++K)
          if (InSet.count(I->Args[K]))
            return false;
        size_t Given = (C.HasBound ? 1 : 0) + (I->Args.size() - 1);
        if (Given != C.Target->NumParams ||
            I->Dsts.size() != C.Target->RetTypes.size())
          return false;
        if (C.CallNullCheck && I->Args.size() < 2)
          return false; // unbound virtual needs a receiver argument
        C.CallUses.push_back(I);
        break;
      }
      default:
        return false; // Ret, GlobalSet, calls, casts, Eq, captures, ...
      }
    }
  }
  return true;
}

IrInstr *makeInstr(IrModule &M, Opcode Op, SourceLoc Loc) {
  auto *I = M.Nodes.make<IrInstr>();
  I->Op = Op;
  I->Loc = Loc;
  return I;
}

//===----------------------------------------------------------------------===//
// Phase 1: closure flattening
//===----------------------------------------------------------------------===//

/// Resolves the direct-call target of a MakeClosure, mirroring the
/// interpreter's dispatch rules:
///  * bound virtual method: resolved at *creation* time against the
///    receiver's dynamic type (with a null check) — CHA must prove a
///    single implementation over the receiver's static subtree;
///  * unbound virtual method: dispatched at *call* time on the first
///    argument (with a null check) — CHA over the owner's subtree;
///  * anything else calls the named function directly.
bool resolveClosureTarget(const IrFunction *F, const ClassHierarchy &CH,
                          Candidate &C) {
  IrInstr *I = C.Alloc;
  IrFunction *Callee = I->Callee;
  if (!Callee || !I->TypeArgs.empty())
    return false;
  C.HasBound = !I->Args.empty();
  bool Virtual = Callee->Slot >= 0 && Callee->OwnerClass;
  if (!Virtual) {
    C.Target = Callee;
    return true;
  }
  IrClass *Root = C.HasBound ? CH.resolve(F->RegTypes[I->Args[0]])
                             : Callee->OwnerClass;
  C.Target = CH.singleImpl(Root, Callee->Slot);
  if (C.HasBound)
    C.CreationNullCheck = true;
  else
    C.CallNullCheck = true;
  if (!C.Target || !C.Target->TypeParams.empty())
    return false;
  // Dispatch on an instance whose class leaves the slot empty traps
  // "abstract method"; a direct call would not. Only accept an impl
  // the subtree root itself carries — then every subclass inherits it
  // and the only remaining trap is the null check we keep.
  return (size_t)Callee->Slot < Root->VTable.size() &&
         Root->VTable[Callee->Slot] == C.Target;
}

size_t flattenClosures(IrModule &M, IrFunction *F, const ClassHierarchy &CH,
                       const ssa::DomTree &DT, OptStats &Stats) {
  FuncCtx Ctx(F, DT);
  std::vector<Candidate> Found;
  for (IrBlock *B : F->Blocks) {
    for (size_t I = 0; I != B->Instrs.size(); ++I) {
      IrInstr *In = B->Instrs[I];
      if (In->Op != Opcode::MakeClosure || In->Dsts.size() != 1)
        continue;
      Candidate C;
      C.Kind = AllocKind::Closure;
      C.Alloc = In;
      C.AllocPos = {B, I};
      C.Root = In->dst();
      if (C.Root >= Ctx.DefCount.size() || Ctx.DefCount[C.Root] != 1)
        continue;
      if (!resolveClosureTarget(F, CH, C))
        continue;
      if (!classifyUses(Ctx, C))
        continue;
      Found.push_back(std::move(C));
    }
  }
  if (Found.empty())
    return 0;
  Rewriter RW;
  for (Candidate &C : Found) {
    Reg Env = NoReg;
    if (C.HasBound) {
      Reg Bound = C.Alloc->Args[0];
      if (C.CreationNullCheck) {
        // The interpreter traps NullDeref when *creating* a closure
        // over a null receiver of a virtual method; keep that trap at
        // the same point even though the allocation disappears.
        IrInstr *NC = makeInstr(M, Opcode::NullCheck, C.Alloc->Loc);
        NC->Args = {Bound};
        NC->Ty = F->RegTypes[Bound];
        RW.InsertBefore[C.Alloc].push_back(NC);
      }
      // Capture the receiver now: the bound register may be reassigned
      // between closure creation and the call sites.
      Env = F->newReg(F->RegTypes[Bound]);
      IrInstr *Cap = makeInstr(M, Opcode::Move, C.Alloc->Loc);
      Cap->Dsts = {Env};
      Cap->Args = {Bound};
      Cap->Ty = F->RegTypes[Bound];
      RW.InsertBefore[C.Alloc].push_back(Cap);
    }
    for (IrInstr *Call : C.CallUses) {
      if (C.CallNullCheck) {
        // Unbound virtual method values null-check their receiver
        // argument at call time before dispatching.
        IrInstr *NC = makeInstr(M, Opcode::NullCheck, Call->Loc);
        NC->Args = {Call->Args[1]};
        NC->Ty = F->RegTypes[Call->Args[1]];
        RW.InsertBefore[Call].push_back(NC);
      }
      std::vector<Reg> Args;
      if (C.HasBound)
        Args.push_back(Env);
      Args.insert(Args.end(), Call->Args.begin() + 1, Call->Args.end());
      Call->Op = Opcode::CallFunc;
      Call->Callee = C.Target;
      Call->Args = std::move(Args);
      Call->TypeOperand = nullptr;
      Call->Index = -1;
    }
    // The allocation and its alias moves are dead by construction
    // (every transitive use was a rewritten call); removing them here
    // lets the object phase see the clean state in the same round.
    RW.Delete.insert(C.Alloc);
    for (IrInstr *Mv : C.AliasMoves)
      RW.Delete.insert(Mv);
    ++Stats.ClosuresFlattened;
  }
  RW.apply(F);
  return Found.size();
}

//===----------------------------------------------------------------------===//
// Phase 2: object scalarization
//===----------------------------------------------------------------------===//

size_t scalarizeObjects(IrModule &M, IrFunction *F, const ClassHierarchy &CH,
                        const ssa::DomTree &DT, OptStats &Stats) {
  FuncCtx Ctx(F, DT);
  std::vector<Candidate> Found;
  for (IrBlock *B : F->Blocks) {
    for (size_t I = 0; I != B->Instrs.size(); ++I) {
      IrInstr *In = B->Instrs[I];
      if (In->Op != Opcode::NewObject || In->Dsts.size() != 1)
        continue;
      Candidate C;
      C.Kind = AllocKind::Object;
      C.Alloc = In;
      C.AllocPos = {B, I};
      C.Root = In->dst();
      if (C.Root >= Ctx.DefCount.size() || Ctx.DefCount[C.Root] != 1)
        continue;
      C.Cls = CH.resolve(In->TypeOperand);
      if (!C.Cls)
        continue;
      if (!classifyUses(Ctx, C))
        continue;
      Found.push_back(std::move(C));
    }
  }
  if (Found.empty())
    return 0;
  Rewriter RW;
  for (Candidate &C : Found) {
    // One register per (non-void) field, zero-initialized where the
    // allocation sat so every path sees the allocator's defaults.
    std::vector<Reg> FieldRegs(C.Cls->Fields.size(), NoReg);
    size_t Created = 0;
    for (size_t FI = 0; FI != C.Cls->Fields.size(); ++FI) {
      Type *FT = C.Cls->Fields[FI].Ty;
      if (isVoidOrTuple(FT))
        continue; // never accessed: normalization reduced these away
      FieldRegs[FI] = F->newReg(FT);
      IrInstr *Init = makeInstr(M, Opcode::ConstDefault, C.Alloc->Loc);
      Init->Dsts = {FieldRegs[FI]};
      Init->Ty = FT;
      RW.InsertAfter[C.Alloc].push_back(Init);
      ++Created;
    }
    // The root register stays defined (aliases still copy it until DCE
    // runs) but now holds null — no use can observe it: every
    // whitelisted use is rewritten below.
    C.Alloc->Op = Opcode::ConstNull;
    C.Alloc->TypeOperand = nullptr;
    for (IrInstr *I : C.ObjUses) {
      switch (I->Op) {
      case Opcode::FieldGet:
        I->Args = {FieldRegs[I->Index]};
        I->Op = Opcode::Move;
        I->TypeOperand = nullptr;
        I->Index = -1;
        break;
      case Opcode::FieldSet:
        I->Dsts = {FieldRegs[I->Index]};
        I->Args = {I->Args[1]};
        I->Ty = F->RegTypes[I->Dsts[0]];
        I->Op = Opcode::Move;
        I->TypeOperand = nullptr;
        I->Index = -1;
        break;
      case Opcode::NullCheck:
        RW.Delete.insert(I); // statically non-null
        break;
      default:
        break;
      }
    }
    ++Stats.AllocsElided;
    Stats.FieldsScalarized += Created;
  }
  RW.apply(F);
  (void)CH;
  return Found.size();
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

size_t virgil::scalarReplaceAllocations(IrModule &M, OptStats &Stats,
                                        ssa::DominatorAnalysis *DomA) {
  // Object layouts must be concrete and scalar-only (post-mono,
  // post-norm), and shared modules carry representative metadata the
  // rewrite must not consult — same discipline as the other passes.
  if (!M.Monomorphized || !M.Normalized || M.Shared)
    return 0;
  ClassHierarchy CH(M);
  // Standalone callers (tests) get a local throwaway analysis; the
  // pass manager threads its shared one through.
  ssa::DominatorAnalysis Local;
  ssa::DominatorAnalysis &DA = DomA ? *DomA : Local;
  size_t Changes = 0;
  for (IrFunction *F : M.Functions) {
    if (F->Blocks.empty())
      continue;
    const ssa::DomTree &DT = DA.get(F);
    Changes += flattenClosures(M, F, CH, DT, Stats);
    Changes += scalarizeObjects(M, F, CH, DT, Stats);
  }
  return Changes;
}
