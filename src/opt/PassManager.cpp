//===- opt/PassManager.cpp ------------------------------------------------===//

#include "opt/PassManager.h"

#include "opt/Escape.h"
#include "ssa/Ssa.h"

#include <chrono>
#include <cstdlib>
#include <string_view>

using namespace virgil;

bool virgil::defaultOptEscapeEnabled() {
  // Read once per process (same pattern as VIRGIL_MONO_SHARE).
  static const bool On = [] {
    const char *E = std::getenv("VIRGIL_OPT_ESCAPE");
    if (!E)
      return true;
    return !(std::string_view(E) == "off" || std::string_view(E) == "0" ||
             std::string_view(E) == "false");
  }();
  return On;
}

bool virgil::defaultOptSsaEnabled() {
  static const bool On = [] {
    const char *E = std::getenv("VIRGIL_OPT_SSA");
    if (!E)
      return true;
    return !(std::string_view(E) == "off" || std::string_view(E) == "0" ||
             std::string_view(E) == "false");
  }();
  return On;
}

OptStats &OptStats::operator+=(const OptStats &O) {
  Folded += O.Folded;
  BranchesFolded += O.BranchesFolded;
  CopiesPropagated += O.CopiesPropagated;
  InstrsRemoved += O.InstrsRemoved;
  BlocksRemoved += O.BlocksRemoved;
  CallsInlined += O.CallsInlined;
  CallsDevirtualized += O.CallsDevirtualized;
  DevirtualizedByCha += O.DevirtualizedByCha;
  FieldsRemoved += O.FieldsRemoved;
  AllocsElided += O.AllocsElided;
  FieldsScalarized += O.FieldsScalarized;
  ClosuresFlattened += O.ClosuresFlattened;
  PhisPlaced += O.PhisPlaced;
  SccpFolded += O.SccpFolded;
  LoadsEliminated += O.LoadsEliminated;
  StoresKilled += O.StoresKilled;
  NullChecksRemoved += O.NullChecksRemoved;
  PassRunsSkipped += O.PassRunsSkipped;
  DevirtMs += O.DevirtMs;
  InlineMs += O.InlineMs;
  FoldMs += O.FoldMs;
  CopyPropMs += O.CopyPropMs;
  DceMs += O.DceMs;
  EscapeMs += O.EscapeMs;
  DeadFieldsMs += O.DeadFieldsMs;
  SsaMs += O.SsaMs;
  return *this;
}

OptStats virgil::optimizeModule(IrModule &M, const OptOptions &Options) {
  OptStats Stats;
  using Clock = std::chrono::steady_clock;
  // One memoized dominator analysis serves the whole invocation:
  // Escape, the CHA devirtualizer, and the SSA sandwich consume the
  // same per-function trees instead of re-deriving dominators per
  // pass. CFG-changing passes invalidate below; instruction-level
  // rewrites don't disturb block-level dominance.
  ssa::DominatorAnalysis DomA;

  // Per-pass changed-bit scheduling: ModVersion counts module
  // mutations; a pass is skipped when the module hasn't changed since
  // it last ran (its quiet confirmation run is provably quiet again).
  // A pass's *own* changes re-run it next round (its seen version is
  // recorded pre-bump), since one invocation need not be a fixpoint.
  enum Pass {
    PDevirt,
    PInline,
    PFold,
    PCopyProp,
    PSsa,
    PDce,
    PEscape,
    PDeadFields,
    PassCount
  };
  uint64_t ModVersion = 1;
  uint64_t SeenVersion[PassCount] = {0};

  // Runs one pass, banking its wall time into the named OptStats field.
  auto Timed = [&](double OptStats::*Field, auto &&Pass) -> size_t {
    auto T0 = Clock::now();
    size_t Changed = Pass();
    Stats.*Field +=
        std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
    return Changed;
  };
  auto Run = [&](Pass P, double OptStats::*Field, const char *Name,
                 auto &&PassFn) -> size_t {
    if (SeenVersion[P] == ModVersion) {
      ++Stats.PassRunsSkipped;
      return 0;
    }
    size_t Changed = Timed(Field, PassFn);
    if (Changed) {
      SeenVersion[P] = ModVersion;
      ++ModVersion;
    } else {
      SeenVersion[P] = ModVersion;
    }
    if (Options.DumpAfter)
      Options.DumpAfter(Name);
    return Changed;
  };

  for (unsigned Round = 0; Round != Options.Rounds; ++Round) {
    size_t Changes = 0;
    if (Options.Devirtualize)
      Changes += Run(PDevirt, &OptStats::DevirtMs, "devirt",
                     [&] { return devirtualize(M, Stats, &DomA); });
    if (Options.Inline)
      Changes += Run(PInline, &OptStats::InlineMs, "inline", [&] {
        size_t N = inlineCalls(M, Options.InlineInstrLimit, Stats);
        if (N)
          DomA.invalidateAll(); // Splicing callee blocks reshapes CFGs.
        return N;
      });
    if (Options.Ssa) {
      // The sandwich subsumes Fold and CopyProp: SCCP folds flow-
      // sensitively in one pass and its Move RAUW is global copy
      // propagation. Its stages handle their own tree invalidation.
      Changes += Run(PSsa, &OptStats::SsaMs, "ssa-out", [&] {
        ssa::SsaPassStats S;
        size_t N = ssa::runSsaPasses(M, DomA, S, Options.DumpAfter);
        Stats.PhisPlaced += S.PhisPlaced;
        Stats.SccpFolded += S.SccpFolded;
        Stats.BranchesFolded += S.BranchesFolded;
        Stats.CopiesPropagated += S.CopiesPropagated;
        Stats.LoadsEliminated += S.LoadsEliminated;
        Stats.StoresKilled += S.StoresKilled;
        Stats.NullChecksRemoved += S.NullChecksRemoved;
        Stats.InstrsRemoved += S.InstrsRemoved;
        return N;
      });
    } else {
      if (Options.Fold)
        Changes += Run(PFold, &OptStats::FoldMs, "fold",
                       [&] { return foldConstants(M, Stats); });
      if (Options.CopyProp)
        Changes += Run(PCopyProp, &OptStats::CopyPropMs, "copyprop",
                       [&] { return propagateCopies(M, Stats); });
    }
    if (Options.Dce)
      Changes += Run(PDce, &OptStats::DceMs, "dce", [&] {
        size_t N = eliminateDeadCode(M, Stats);
        if (N)
          DomA.invalidateAll(); // May delete unreachable blocks.
        return N;
      });
    // After copy propagation and DCE so alias chains are short, and
    // before dead-field elimination so fields whose last loads were
    // scalarized away can be dropped in the same round.
    if (Options.Escape)
      Changes += Run(PEscape, &OptStats::EscapeMs, "escape", [&] {
        return scalarReplaceAllocations(M, Stats, &DomA);
      });
    if (Options.DeadFields)
      Changes += Run(PDeadFields, &OptStats::DeadFieldsMs, "deadfields",
                     [&] { return eliminateDeadFields(M, Stats); });
    if (Changes == 0)
      break;
  }
  return Stats;
}
