//===- opt/PassManager.cpp ------------------------------------------------===//

#include "opt/PassManager.h"

#include "opt/Escape.h"

#include <chrono>
#include <cstdlib>
#include <string_view>

using namespace virgil;

bool virgil::defaultOptEscapeEnabled() {
  // Read once per process (same pattern as VIRGIL_MONO_SHARE).
  static const bool On = [] {
    const char *E = std::getenv("VIRGIL_OPT_ESCAPE");
    if (!E)
      return true;
    return !(std::string_view(E) == "off" || std::string_view(E) == "0" ||
             std::string_view(E) == "false");
  }();
  return On;
}

OptStats &OptStats::operator+=(const OptStats &O) {
  Folded += O.Folded;
  BranchesFolded += O.BranchesFolded;
  CopiesPropagated += O.CopiesPropagated;
  InstrsRemoved += O.InstrsRemoved;
  BlocksRemoved += O.BlocksRemoved;
  CallsInlined += O.CallsInlined;
  CallsDevirtualized += O.CallsDevirtualized;
  DevirtualizedByCha += O.DevirtualizedByCha;
  FieldsRemoved += O.FieldsRemoved;
  AllocsElided += O.AllocsElided;
  FieldsScalarized += O.FieldsScalarized;
  ClosuresFlattened += O.ClosuresFlattened;
  DevirtMs += O.DevirtMs;
  InlineMs += O.InlineMs;
  FoldMs += O.FoldMs;
  CopyPropMs += O.CopyPropMs;
  DceMs += O.DceMs;
  EscapeMs += O.EscapeMs;
  DeadFieldsMs += O.DeadFieldsMs;
  return *this;
}

OptStats virgil::optimizeModule(IrModule &M, const OptOptions &Options) {
  OptStats Stats;
  using Clock = std::chrono::steady_clock;
  // Runs one pass, banking its wall time into the named OptStats field.
  auto Timed = [&](double OptStats::*Field, auto &&Pass) -> size_t {
    auto T0 = Clock::now();
    size_t Changed = Pass();
    Stats.*Field +=
        std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
    return Changed;
  };
  for (unsigned Round = 0; Round != Options.Rounds; ++Round) {
    size_t Changes = 0;
    if (Options.Devirtualize)
      Changes += Timed(&OptStats::DevirtMs,
                       [&] { return devirtualize(M, Stats); });
    if (Options.Inline)
      Changes += Timed(&OptStats::InlineMs, [&] {
        return inlineCalls(M, Options.InlineInstrLimit, Stats);
      });
    if (Options.Fold)
      Changes += Timed(&OptStats::FoldMs,
                       [&] { return foldConstants(M, Stats); });
    if (Options.CopyProp)
      Changes += Timed(&OptStats::CopyPropMs,
                       [&] { return propagateCopies(M, Stats); });
    if (Options.Dce)
      Changes += Timed(&OptStats::DceMs,
                       [&] { return eliminateDeadCode(M, Stats); });
    // After copy propagation and DCE so alias chains are short, and
    // before dead-field elimination so fields whose last loads were
    // scalarized away can be dropped in the same round.
    if (Options.Escape)
      Changes += Timed(&OptStats::EscapeMs,
                       [&] { return scalarReplaceAllocations(M, Stats); });
    if (Options.DeadFields)
      Changes += Timed(&OptStats::DeadFieldsMs,
                       [&] { return eliminateDeadFields(M, Stats); });
    if (Changes == 0)
      break;
  }
  return Stats;
}
