//===- opt/PassManager.cpp ------------------------------------------------===//

#include "opt/PassManager.h"

using namespace virgil;

OptStats virgil::optimizeModule(IrModule &M, const OptOptions &Options) {
  OptStats Stats;
  for (unsigned Round = 0; Round != Options.Rounds; ++Round) {
    size_t Changes = 0;
    if (Options.Devirtualize)
      Changes += devirtualize(M, Stats);
    if (Options.Inline)
      Changes += inlineCalls(M, Options.InlineInstrLimit, Stats);
    if (Options.Fold)
      Changes += foldConstants(M, Stats);
    if (Options.CopyProp)
      Changes += propagateCopies(M, Stats);
    if (Options.Dce)
      Changes += eliminateDeadCode(M, Stats);
    if (Options.DeadFields)
      Changes += eliminateDeadFields(M, Stats);
    if (Changes == 0)
      break;
  }
  return Stats;
}
