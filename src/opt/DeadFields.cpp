//===- opt/DeadFields.cpp - Dead-field (dead data) elimination -------------===//
///
/// The paper's compiler performs "sophisticated dead code and dead
/// data elimination" (§5). This pass removes object fields that are
/// never read anywhere in the (closed, monomorphized) program:
/// layouts shrink, stores to removed fields reduce to their null
/// check, and surviving field indices are renumbered consistently
/// across each inheritance group (layouts are prefix-shared, so one
/// index map per hierarchy root serves every class in it).
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

#include <map>
#include <set>
#include <vector>

using namespace virgil;

namespace {

IrClass *rootOf(IrClass *C) {
  while (C->Parent)
    C = C->Parent;
  return C;
}

} // namespace

size_t virgil::eliminateDeadFields(IrModule &M, OptStats &Stats) {
  // A closed world is required: every read site must be visible.
  if (!M.Monomorphized)
    return 0;

  // 1. Collect read indices per hierarchy group.
  std::map<IrClass *, std::set<int>> ReadByRoot;
  std::map<ClassDef *, IrClass *> ByDef;
  for (IrClass *C : M.Classes)
    if (C->Def)
      ByDef[C->Def] = C;
  auto groupFor = [&](Type *RecvTy) -> IrClass * {
    auto *CT = dyn_cast_or_null<ClassType>(RecvTy);
    if (!CT)
      return nullptr;
    auto It = ByDef.find(CT->def());
    return It == ByDef.end() ? nullptr : rootOf(It->second);
  };
  for (IrFunction *F : M.Functions)
    for (IrBlock *B : F->Blocks)
      for (IrInstr *I : B->Instrs)
        if (I->Op == Opcode::FieldGet)
          if (IrClass *Root = groupFor(I->TypeOperand))
            ReadByRoot[Root].insert(I->Index);

  // 2. Per group, decide survivors and build the index map. The widest
  // layout in the group defines the index universe.
  std::map<IrClass *, std::vector<int>> MapByRoot; // old index -> new/-1.
  size_t Removed = 0;
  for (IrClass *C : M.Classes) {
    IrClass *Root = rootOf(C);
    auto &Map = MapByRoot[Root];
    if (Map.size() < C->Fields.size())
      Map.resize(C->Fields.size(), -2); // -2 = not yet decided.
  }
  for (auto &[Root, Map] : MapByRoot) {
    const std::set<int> &Read = ReadByRoot[Root];
    int Next = 0;
    for (size_t I = 0; I != Map.size(); ++I)
      Map[I] = Read.count((int)I) ? Next++ : -1;
  }

  // 3. Shrink layouts.
  for (IrClass *C : M.Classes) {
    const auto &Map = MapByRoot[rootOf(C)];
    std::vector<IrField> Kept;
    for (size_t I = 0; I != C->Fields.size(); ++I) {
      if (Map[I] >= 0)
        Kept.push_back(C->Fields[I]);
      else
        ++Removed;
    }
    C->Fields = std::move(Kept);
  }

  // 4. Rewrite accesses.
  size_t Changes = 0;
  for (IrFunction *F : M.Functions) {
    for (IrBlock *B : F->Blocks) {
      for (IrInstr *I : B->Instrs) {
        if (I->Op != Opcode::FieldGet && I->Op != Opcode::FieldSet)
          continue;
        IrClass *Root = groupFor(I->TypeOperand);
        if (!Root)
          continue;
        int NewIndex = MapByRoot[Root][I->Index];
        if (NewIndex >= 0) {
          if (NewIndex != I->Index) {
            I->Index = NewIndex;
            ++Changes;
          }
          continue;
        }
        // A store to a dead field keeps only its null check; the value
        // operand's computation stays (it may have effects upstream,
        // handled by DCE as usual).
        assert(I->Op == Opcode::FieldSet && "reads keep their fields");
        I->Op = Opcode::NullCheck;
        I->Args.resize(1);
        I->Index = -1;
        ++Changes;
      }
    }
  }
  Stats.FieldsRemoved += Removed;
  return Changes + Removed;
}
