//===- ssa/Dominators.cpp - CHK dominator tree + frontiers ----------------===//
///
/// Cooper/Harvey/Kennedy "A Simple, Fast Dominance Algorithm":
/// iterate idom intersection over reverse postorder until fixed, then
/// derive dominator-tree children, DFS intervals for O(1) dominance
/// queries, and dominance frontiers. This replaces the dense
/// per-invocation bitvector dominators the escape pass used to
/// compute: O(blocks^2) words per function became one shared tree.
///
//===----------------------------------------------------------------------===//

#include "ssa/Ssa.h"

#include <algorithm>
#include <cassert>

using namespace virgil;
using namespace virgil::ssa;

std::map<const IrBlock *, std::vector<PredEdge>>
virgil::ssa::computePredEdges(const IrFunction &F) {
  std::map<const IrBlock *, std::vector<PredEdge>> Preds;
  for (IrBlock *B : F.Blocks)
    Preds[B]; // Ensure every block has an entry.
  for (IrBlock *B : F.Blocks) {
    if (B->Succ0)
      Preds[B->Succ0].push_back({B, 0});
    if (B->Succ1)
      Preds[B->Succ1].push_back({B, 1});
  }
  return Preds;
}

void DomTree::compute(const IrFunction &F) {
  size_t N = F.Blocks.size();
  Blocks.assign(F.Blocks.begin(), F.Blocks.end());
  Index.clear();
  for (size_t I = 0; I != N; ++I)
    Index[Blocks[I]] = (int)I;

  // Structural predecessor edges in canonical order (pred position in
  // F.Blocks, Succ0 edge before Succ1) — phi arguments index into
  // this.
  Preds.assign(N, {});
  for (size_t I = 0; I != N; ++I) {
    IrBlock *B = Blocks[I];
    if (B->Succ0)
      Preds[(size_t)Index[B->Succ0]].push_back({B, 0});
    if (B->Succ1)
      Preds[(size_t)Index[B->Succ1]].push_back({B, 1});
  }

  // Postorder over the reachable subgraph (iterative DFS), then
  // reverse for RPO.
  Rpo.clear();
  RpoPos.assign(N, -1);
  if (N != 0) {
    std::vector<char> State(N, 0); // 0 unvisited, 1 on stack, 2 done.
    std::vector<std::pair<int, int>> Stack; // (block, next succ slot)
    Stack.push_back({0, 0});
    State[0] = 1;
    std::vector<int> Post;
    while (!Stack.empty()) {
      auto &[BI, Slot] = Stack.back();
      IrBlock *B = Blocks[(size_t)BI];
      IrBlock *Succ = Slot == 0 ? B->Succ0 : (Slot == 1 ? B->Succ1 : nullptr);
      if (Slot < 2) {
        ++Slot;
        if (Succ) {
          int SI = Index[Succ];
          if (!State[(size_t)SI]) {
            State[(size_t)SI] = 1;
            Stack.push_back({SI, 0});
          }
        }
        continue;
      }
      State[(size_t)BI] = 2;
      Post.push_back(BI);
      Stack.pop_back();
    }
    Rpo.assign(Post.rbegin(), Post.rend());
    for (size_t P = 0; P != Rpo.size(); ++P)
      RpoPos[(size_t)Rpo[P]] = (int)P;
  }

  // CHK idom fixpoint. Intersection walks up the current idom chain
  // by RPO position.
  Idom.assign(N, -1);
  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoPos[(size_t)A] > RpoPos[(size_t)B])
        A = Idom[(size_t)A];
      while (RpoPos[(size_t)B] > RpoPos[(size_t)A])
        B = Idom[(size_t)B];
    }
    return A;
  };
  if (N != 0) {
    Idom[0] = 0; // Sentinel: entry's idom is itself during iteration.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t P = 1; P < Rpo.size(); ++P) {
        int BI = Rpo[P];
        int NewIdom = -1;
        for (const PredEdge &E : Preds[(size_t)BI]) {
          int PI = Index[E.Pred];
          if (RpoPos[(size_t)PI] < 0 || Idom[(size_t)PI] < 0)
            continue; // Unreachable or unprocessed predecessor.
          NewIdom = NewIdom < 0 ? PI : intersect(PI, NewIdom);
        }
        if (NewIdom >= 0 && Idom[(size_t)BI] != NewIdom) {
          Idom[(size_t)BI] = NewIdom;
          Changed = true;
        }
      }
    }
    Idom[0] = -1; // Entry has no idom.
  }

  // Children + DFS intervals for O(1) dominance queries. Children are
  // ordered by RPO position: a preorder walk over the tree then visits
  // every forward-edge predecessor of a block before the block itself
  // (each pred sits in an earlier-RPO sibling subtree of the block's
  // idom), which is what lets LoadStoreElim's monotonic clobber clocks
  // see every path clobber in time — only back edges (loop headers)
  // need a separate barrier.
  Children.assign(N, {});
  for (int BI : Rpo)
    if (Idom[(size_t)BI] >= 0)
      Children[(size_t)Idom[(size_t)BI]].push_back(BI);
  DfsIn.assign(N, -1);
  DfsOut.assign(N, -1);
  if (N != 0 && !Rpo.empty()) {
    int Clock = 0;
    std::vector<std::pair<int, size_t>> Stack; // (block, next child)
    Stack.push_back({0, 0});
    DfsIn[0] = Clock++;
    while (!Stack.empty()) {
      auto &[BI, Next] = Stack.back();
      if (Next < Children[(size_t)BI].size()) {
        int C = Children[(size_t)BI][Next++];
        DfsIn[(size_t)C] = Clock++;
        Stack.push_back({C, 0});
        continue;
      }
      DfsOut[(size_t)BI] = Clock++;
      Stack.pop_back();
    }
  }

  // Dominance frontiers (CHK): for every join, walk each predecessor
  // up to the join's idom.
  Frontier.assign(N, {});
  for (size_t I = 0; I != N; ++I) {
    if (RpoPos[I] < 0 || Preds[I].size() < 2)
      continue;
    for (const PredEdge &E : Preds[I]) {
      int Runner = Index[E.Pred];
      if (RpoPos[(size_t)Runner] < 0)
        continue;
      while (Runner >= 0 && Runner != Idom[I]) {
        auto &DF = Frontier[(size_t)Runner];
        if (std::find(DF.begin(), DF.end(), (int)I) == DF.end())
          DF.push_back((int)I);
        Runner = Idom[(size_t)Runner];
      }
    }
  }
}
