//===- ssa/LoadStoreElim.cpp - Dominance-based load/store elimination -----===//
///
/// Three memory optimizations over the SSA form, all driven by the
/// shared dominator tree:
///
/// * Redundant load elimination: a FieldGet whose (SSA base, field)
///   was read or written by a dominating access — with no intervening
///   call or same-field store — reuses the dominating value; same for
///   GlobalGet per global index. Deleting the load is trap-safe: the
///   base is the *same SSA value* the dominating access already
///   null-checked, so the check it carried is provably redundant too.
///
/// * Same-block dead-store kill: a FieldSet/GlobalSet overwritten by a
///   later store to the same (base, index) with only pure instructions
///   between dies. The purity requirement excludes calls and loads
///   (which could observe the killed store) and trapping instructions
///   (removing the store's own null check must not let a *different*
///   trap fire first and change the reported failure).
///
/// * Redundant NullCheck removal: a check dominated by any null-
///   checking access of the same SSA value is a no-op.
///
/// The walk is EarlyCSE-style: availability tables are scoped to the
/// dominator subtree (undo logs restore them on exit), while clobber
/// clocks — per-field, per-global, and one for calls — are monotonic
/// and never rolled back, so a clobber inside an earlier sibling's
/// subtree correctly invalidates facts an ancestor recorded. Aliasing
/// is structural: distinct field indices never alias, arrays never
/// alias fields, fields never alias globals; any call clobbers all
/// memory.
///
/// Soundness of the clock scheme depends on visit order: dominator-
/// tree children are ordered by RPO (see DomTree::compute), so when a
/// block is entered every predecessor reached by a forward edge — and
/// therefore every store on an acyclic path from a dominating access —
/// has already been scanned and bumped its clocks. The one exception
/// is a back edge: its source is scanned *after* the loop header, so a
/// block with an unvisited predecessor treats the loop body as an
/// unknown clobber and raises the all-memory barrier on entry.
/// Non-null facts are exempt: they describe SSA values, which cannot
/// become null again once proven non-null.
///
//===----------------------------------------------------------------------===//

#include "ssa/SsaInternal.h"

#include <functional>

using namespace virgil;
using namespace virgil::ssa;

namespace {

struct Avail {
  Reg R = NoReg;
  uint64_t T = 0; ///< Clock at which the fact was established.
};

bool isCall(Opcode Op) {
  switch (Op) {
  case Opcode::CallFunc:
  case Opcode::CallVirtual:
  case Opcode::CallIndirect:
  case Opcode::CallBuiltin:
    return true;
  default:
    return false;
  }
}

/// Does executing \p Op prove Args[0] (its base operand) is non-null?
bool nullChecksBase(Opcode Op) {
  switch (Op) {
  case Opcode::FieldGet:
  case Opcode::FieldSet:
  case Opcode::NullCheck:
  case Opcode::ArrayGet:
  case Opcode::ArraySet:
  case Opcode::ArrayLen:
  case Opcode::BoundsCheck:
    return true;
  default:
    return false;
  }
}

/// Same-block dead-store kill (see file comment for the safety rule).
size_t killDeadStores(IrFunction &F, std::set<IrInstr *> &Dead,
                      SsaPassStats &Stats) {
  size_t Killed = 0;
  for (IrBlock *B : F.Blocks) {
    std::map<std::pair<Reg, int>, IrInstr *> PendingField;
    std::map<int, IrInstr *> PendingGlobal;
    for (IrInstr *I : B->Instrs) {
      if (I->Op == Opcode::FieldSet) {
        auto Key = std::make_pair(I->Args[0], I->Index);
        auto It = PendingField.find(Key);
        IrInstr *Victim = It != PendingField.end() ? It->second : nullptr;
        // A store is impure: it invalidates every other pending kill
        // window before opening its own.
        PendingField.clear();
        PendingGlobal.clear();
        if (Victim) {
          Dead.insert(Victim);
          ++Killed;
          ++Stats.StoresKilled;
        }
        PendingField[Key] = I;
        continue;
      }
      if (I->Op == Opcode::GlobalSet) {
        auto It = PendingGlobal.find(I->Index);
        IrInstr *Victim = It != PendingGlobal.end() ? It->second : nullptr;
        PendingField.clear();
        PendingGlobal.clear();
        if (Victim) {
          Dead.insert(Victim);
          ++Killed;
          ++Stats.StoresKilled;
        }
        PendingGlobal[I->Index] = I;
        continue;
      }
      if (I->Op == Opcode::GlobalGet) {
        // Pure, but it observes the global: only that window closes.
        PendingGlobal.erase(I->Index);
        continue;
      }
      if (!isPure(I->Op)) {
        PendingField.clear();
        PendingGlobal.clear();
      }
    }
  }
  return Killed;
}

} // namespace

size_t virgil::ssa::runLoadStoreElim(IrModule &M, IrFunction &F,
                                     const DomTree &DT, SsaInfo &Info,
                                     SsaPassStats &Stats) {
  (void)M;
  if (F.Blocks.empty())
    return 0;

  std::set<IrInstr *> Dead;
  size_t Changes = killDeadStores(F, Dead, Stats);
  std::map<Reg, Reg> Repl;

  // Scoped state (undone on subtree exit).
  std::map<std::pair<Reg, int>, Avail> FieldAvail;
  std::map<int, Avail> GlobalAvail;
  std::set<Reg> NonNull;
  // Monotonic clobber clocks (never undone).
  std::map<int, uint64_t> FieldClobber, GlobalClobber;
  uint64_t CallClobber = 0;
  uint64_t Clock = 0;

  std::vector<std::function<void()>> Undo;

  auto setField = [&](std::pair<Reg, int> Key, Reg R) {
    auto It = FieldAvail.find(Key);
    if (It != FieldAvail.end()) {
      Avail Old = It->second;
      Undo.push_back([&FieldAvail, Key, Old] { FieldAvail[Key] = Old; });
    } else {
      Undo.push_back([&FieldAvail, Key] { FieldAvail.erase(Key); });
    }
    FieldAvail[Key] = {R, ++Clock};
  };
  auto setGlobal = [&](int Idx, Reg R) {
    auto It = GlobalAvail.find(Idx);
    if (It != GlobalAvail.end()) {
      Avail Old = It->second;
      Undo.push_back([&GlobalAvail, Idx, Old] { GlobalAvail[Idx] = Old; });
    } else {
      Undo.push_back([&GlobalAvail, Idx] { GlobalAvail.erase(Idx); });
    }
    GlobalAvail[Idx] = {R, ++Clock};
  };
  auto addNonNull = [&](Reg R) {
    if (NonNull.insert(R).second)
      Undo.push_back([&NonNull, R] { NonNull.erase(R); });
  };
  auto fieldValid = [&](const Avail &A, int Idx) {
    auto It = FieldClobber.find(Idx);
    uint64_t C = It == FieldClobber.end() ? 0 : It->second;
    return A.R != NoReg && A.T > C && A.T > CallClobber;
  };
  auto globalValid = [&](const Avail &A, int Idx) {
    auto It = GlobalClobber.find(Idx);
    uint64_t C = It == GlobalClobber.end() ? 0 : It->second;
    return A.R != NoReg && A.T > C && A.T > CallClobber;
  };

  struct Frame {
    int Block;
    size_t NextChild = 0;
    size_t UndoMark = 0;
  };
  std::vector<Frame> Stack;
  std::vector<char> Visited(DT.numBlocks(), 0);
  Stack.push_back({0, 0, 0});
  bool Enter = true;
  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    if (Enter) {
      Fr.UndoMark = Undo.size();
      Visited[(size_t)Fr.Block] = 1;
      // Loop header: some predecessor (the back edge's source) hasn't
      // been scanned yet, so its stores aren't in the clocks — treat
      // the loop body as clobbering all memory.
      for (const PredEdge &E : DT.preds(Fr.Block)) {
        int PI = DT.indexOf(E.Pred);
        if (PI >= 0 && DT.reachable(PI) && !Visited[(size_t)PI]) {
          CallClobber = ++Clock;
          break;
        }
      }
      IrBlock *B = F.Blocks[(size_t)Fr.Block];
      for (IrInstr *I : B->Instrs) {
        if (Dead.count(I))
          continue; // A killed store contributes no facts.
        switch (I->Op) {
        case Opcode::FieldGet: {
          Reg Base = I->Args[0];
          auto Key = std::make_pair(Base, I->Index);
          auto It = FieldAvail.find(Key);
          if (It != FieldAvail.end() && fieldValid(It->second, I->Index)) {
            Repl[I->Dsts[0]] = It->second.R;
            Dead.insert(I);
            ++Stats.LoadsEliminated;
            ++Changes;
            break;
          }
          setField(Key, I->Dsts[0]);
          addNonNull(Base);
          break;
        }
        case Opcode::FieldSet: {
          FieldClobber[I->Index] = ++Clock;
          setField(std::make_pair(I->Args[0], I->Index), I->Args[1]);
          addNonNull(I->Args[0]);
          break;
        }
        case Opcode::GlobalGet: {
          auto It = GlobalAvail.find(I->Index);
          if (It != GlobalAvail.end() && globalValid(It->second, I->Index)) {
            Repl[I->Dsts[0]] = It->second.R;
            Dead.insert(I);
            ++Stats.LoadsEliminated;
            ++Changes;
            break;
          }
          setGlobal(I->Index, I->Dsts[0]);
          break;
        }
        case Opcode::GlobalSet: {
          GlobalClobber[I->Index] = ++Clock;
          setGlobal(I->Index, I->Args[0]);
          break;
        }
        case Opcode::NullCheck: {
          Reg Base = I->Args[0];
          if (NonNull.count(Base)) {
            Dead.insert(I);
            ++Stats.NullChecksRemoved;
            ++Changes;
            break;
          }
          addNonNull(Base);
          break;
        }
        case Opcode::NewObject:
        case Opcode::NewArray:
        case Opcode::ConstString:
          // Freshly allocated references are never null.
          addNonNull(I->Dsts[0]);
          break;
        default:
          if (isCall(I->Op))
            CallClobber = ++Clock;
          else if (nullChecksBase(I->Op) && !I->Args.empty())
            addNonNull(I->Args[0]);
          break;
        }
      }
      Enter = false;
    }
    const auto &Kids = DT.children(Stack.back().Block);
    if (Stack.back().NextChild < Kids.size()) {
      int C = Kids[Stack.back().NextChild++];
      Stack.push_back({C, 0, 0});
      Enter = true;
      continue;
    }
    while (Undo.size() > Stack.back().UndoMark) {
      Undo.back()();
      Undo.pop_back();
    }
    Stack.pop_back();
  }

  applyReplacements(F, Repl, Info);
  eraseInstrs(F, Dead);
  return Changes;
}
