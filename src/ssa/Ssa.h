//===- ssa/Ssa.h - SSA mid-tier over the three-address IR -------*- C++ -*-===//
///
/// \file
/// The SSA sandwich the optimizer pipeline runs between the dense
/// passes: a shared dominator analysis (Cooper/Harvey/Kennedy tree +
/// dominance frontiers), pruned-SSA construction over the existing
/// three-address IR, two sparse passes (SCCP and dominance-based
/// load/store elimination), and phi elimination back out of SSA.
///
/// SSA form is strictly internal to the sandwich: `Opcode::Phi`
/// appears after buildSsa() and is gone after destroySsa(), so the
/// interpreters, BcPrepare, and the bytecode emitter never see it.
/// Out-of-SSA uses variable congruence classes: values keep their
/// original variable's register unless an optimization extended their
/// live range (RAUW "taints" them into a fresh singleton class), which
/// preserves the conventional-SSA property the copy placement relies
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SSA_SSA_H
#define VIRGIL_SSA_SSA_H

#include "ir/Ir.h"

#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace virgil {
namespace ssa {

/// One CFG in-edge: \p Pred jumps here through its \p SuccIdx slot
/// (0 = Succ0, 1 = Succ1). Phi argument positions follow the canonical
/// enumeration order: predecessors by position in IrFunction::Blocks,
/// Succ0 edge before Succ1 edge for a block that branches here twice.
struct PredEdge {
  IrBlock *Pred = nullptr;
  int SuccIdx = 0;
};

/// Canonical predecessor-edge lists for every block of \p F (structural
/// edges — unreachable predecessors included, so phi arity stays in
/// sync with what the CFG says rather than with what executes).
std::map<const IrBlock *, std::vector<PredEdge>>
computePredEdges(const IrFunction &F);

/// Dominator tree + dominance frontiers for one function, computed
/// with the Cooper/Harvey/Kennedy RPO-intersection algorithm. Block
/// identity is positional: indices are positions in F.Blocks at
/// compute() time, so any pass that adds or removes blocks or edges
/// must invalidate the tree (see DominatorAnalysis).
class DomTree {
public:
  void compute(const IrFunction &F);

  size_t numBlocks() const { return Blocks.size(); }
  IrBlock *block(int I) const { return Blocks[(size_t)I]; }
  int indexOf(const IrBlock *B) const {
    auto It = Index.find(B);
    return It == Index.end() ? -1 : It->second;
  }
  bool reachable(int I) const { return RpoPos[(size_t)I] >= 0; }
  bool reachable(const IrBlock *B) const {
    int I = indexOf(B);
    return I >= 0 && reachable(I);
  }
  /// Immediate dominator (block index), -1 for the entry and for
  /// unreachable blocks.
  int idom(int I) const { return Idom[(size_t)I]; }
  const std::vector<int> &children(int I) const {
    return Children[(size_t)I];
  }
  const std::vector<int> &frontier(int I) const {
    return Frontier[(size_t)I];
  }
  /// Structural predecessor edges in canonical phi-argument order.
  const std::vector<PredEdge> &preds(int I) const {
    return Preds[(size_t)I];
  }
  /// Reachable block indices in reverse postorder (entry first).
  const std::vector<int> &rpo() const { return Rpo; }

  /// Does block \p A dominate block \p B? Reflexive; false if either
  /// block is unreachable.
  bool dominates(int A, int B) const {
    if (!reachable(A) || !reachable(B))
      return false;
    return DfsIn[(size_t)A] <= DfsIn[(size_t)B] &&
           DfsOut[(size_t)B] <= DfsOut[(size_t)A];
  }
  bool dominates(const IrBlock *A, const IrBlock *B) const {
    int IA = indexOf(A), IB = indexOf(B);
    return IA >= 0 && IB >= 0 && dominates(IA, IB);
  }

private:
  std::vector<IrBlock *> Blocks;
  std::map<const IrBlock *, int> Index;
  std::vector<std::vector<PredEdge>> Preds;
  std::vector<int> Rpo;
  std::vector<int> RpoPos; ///< Block index -> RPO position, -1 if unreachable.
  std::vector<int> Idom;
  std::vector<std::vector<int>> Children;
  std::vector<std::vector<int>> Frontier;
  std::vector<int> DfsIn, DfsOut; ///< Dom-tree intervals for O(1) queries.
};

/// Memoizing per-function dominator analysis shared across the passes
/// of one optimizeModule() invocation — Escape, the CHA devirtualizer,
/// and the SSA sandwich all consume the same tree instead of
/// re-deriving dominators per invocation. Passes that change the CFG
/// (inlining, DCE's block surgery, the sandwich itself) invalidate the
/// functions they touched; instruction-level rewrites don't disturb
/// block-level dominance and need no invalidation.
class DominatorAnalysis {
public:
  const DomTree &get(const IrFunction *F) {
    auto It = Cache.find(F);
    if (It != Cache.end())
      return *It->second;
    auto DT = std::make_unique<DomTree>();
    DT->compute(*F);
    return *Cache.emplace(F, std::move(DT)).first->second;
  }
  void invalidate(const IrFunction *F) { Cache.erase(F); }
  void invalidateAll() { Cache.clear(); }

private:
  std::map<const IrFunction *, std::unique_ptr<DomTree>> Cache;
};

/// Per-function SSA bookkeeping, alive from buildSsa() to
/// destroySsa().
struct SsaInfo {
  /// Registers >= FirstSsaReg were created by renaming; registers
  /// below it are the original variables (parameters keep their
  /// numbers; a use of an original non-parameter register means no
  /// definition reaches it on any path, i.e. the frame default).
  Reg FirstSsaReg = 0;
  /// For renamed registers: the original variable each is a version
  /// of (indexed by reg - FirstSsaReg).
  std::vector<Reg> OrigOfSsa;
  /// Values whose live range an optimization extended (RAUW targets).
  /// They leave their variable's congruence class and get a fresh
  /// singleton register at destruction; everything untainted keeps the
  /// conventional-SSA non-interference guarantee of its class.
  std::vector<char> Tainted;

  /// Registers created after renaming (destruction's fresh singletons
  /// and cycle temps) are not versions of anything: they map to
  /// themselves.
  Reg origVar(Reg R) const {
    if (R < FirstSsaReg)
      return R;
    size_t I = R - FirstSsaReg;
    return I < OrigOfSsa.size() ? OrigOfSsa[I] : R;
  }
  bool tainted(Reg R) const {
    return R < Tainted.size() && Tainted[R];
  }
  void taint(Reg R) {
    if (Tainted.size() <= R)
      Tainted.resize(R + 1, 0);
    Tainted[R] = 1;
  }
};

/// Counters the sandwich reports back into OptStats.
struct SsaPassStats {
  size_t PhisPlaced = 0;
  size_t SccpFolded = 0;
  size_t BranchesFolded = 0;
  size_t CopiesPropagated = 0;
  size_t LoadsEliminated = 0;
  size_t StoresKilled = 0;
  size_t NullChecksRemoved = 0;
  size_t EdgeCopies = 0;    ///< Copies materialized by phi elimination.
  size_t InstrsRemoved = 0; ///< Dead SSA values swept before exit.
};

/// Deletes blocks unreachable from the entry (the sandwich runs this
/// first so construction sees a clean CFG). Returns blocks removed.
size_t removeUnreachableBlocks(IrFunction &F);

/// Pruned-SSA construction: places phis at iterated dominance
/// frontiers of definitions, pruned by liveness, then renames every
/// definition to a fresh register via a dominator-tree walk. Returns
/// the number of phis placed.
size_t buildSsa(IrModule &M, IrFunction &F, const DomTree &DT,
                SsaInfo &Info);

/// Sparse conditional constant propagation over SSA form: folds the
/// post-specialization cast/query/branch chains (paper §3.3) in one
/// flow-sensitive pass, propagates copies globally (Move RAUW), and
/// rewires statically-decided branches. Returns rewrites performed.
size_t runSccp(IrModule &M, IrFunction &F, const DomTree &DT,
               SsaInfo &Info, SsaPassStats &Stats);

/// Dominance-based load/store elimination for fields and globals:
/// redundant FieldGet/GlobalGet reuse (scoped availability over the
/// dominator tree with monotonic clobber clocks), same-block dead
/// store kill, and redundant NullCheck removal. Returns rewrites.
size_t runLoadStoreElim(IrModule &M, IrFunction &F, const DomTree &DT,
                        SsaInfo &Info, SsaPassStats &Stats);

/// Deletes pure SSA definitions (including phis) with no remaining
/// uses. Run before destruction so dead values place no edge copies.
size_t runSsaDce(IrFunction &F, SsaInfo &Info);

/// Phi elimination back to three-address form: assigns every SSA value
/// its congruence-class register (original variable, or a fresh
/// singleton when tainted), splits critical edges that need copies,
/// and sequentializes each edge's parallel copy (cycle-safe). After
/// this no Opcode::Phi remains.
void destroySsa(IrModule &M, IrFunction &F, SsaInfo &Info,
                SsaPassStats &Stats);

/// Renumbers live registers densely (parameters keep 0..NumParams-1)
/// and drops dead RegTypes entries, bounding the frame growth SSA
/// renaming caused. Returns registers dropped.
size_t compactRegisters(IrFunction &F);

/// Whole-module sandwich: build -> SCCP -> load/store elim -> SSA-DCE
/// -> destruct -> compact for every function. \p DumpAfter (optional)
/// is invoked with "ssa", "sccp", and "loadelim" while the module is
/// still in SSA form, for --dump-ir=<pass>. Returns total rewrites
/// (the pass manager's change count).
size_t runSsaPasses(IrModule &M, DominatorAnalysis &DomA,
                    SsaPassStats &Stats,
                    const std::function<void(const char *)> &DumpAfter =
                        std::function<void(const char *)>());

/// Strict-SSA verification toggle: on by default in Debug builds (or
/// with VIRGIL_SSA_VERIFY=on), forced on by the differential-fuzz
/// oracle. When enabled the sandwich verifies every function after
/// every SSA-form pass and aborts on a violation.
bool ssaVerifyEnabled();
void setSsaVerifyEnabled(bool Enabled);

} // namespace ssa
} // namespace virgil

#endif // VIRGIL_SSA_SSA_H
