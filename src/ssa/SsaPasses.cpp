//===- ssa/SsaPasses.cpp - The staged module-wide SSA sandwich ------------===//
///
/// Drives the sandwich for every function of the module in stages —
/// build everywhere, then SCCP everywhere, then load/store elimination
/// everywhere, then DCE + destruction + register compaction — rather
/// than function-at-a-time, so `--dump-ir=<pass>` can print the whole
/// module in SSA form at each stage boundary. When strict-SSA
/// verification is enabled (Debug builds, VIRGIL_SSA_VERIFY=on, or the
/// differential-fuzz oracle) every function is re-verified after every
/// SSA-form stage, and a violation aborts the process — the fuzzer
/// classifies that as a crash and reduces the input.
///
//===----------------------------------------------------------------------===//

#include "ssa/SsaInternal.h"

#include "ir/IrVerifier.h"

#include <cstdio>
#include <cstdlib>

using namespace virgil;
using namespace virgil::ssa;

namespace {

void maybeVerify(const IrModule &M, const IrFunction &F, const char *Stage) {
  if (!ssaVerifyEnabled())
    return;
  auto Problems = verifyFunctionSsa(M, F);
  if (Problems.empty())
    return;
  std::fprintf(stderr,
               "virgil: strict-SSA verification failed after %s in '%s':\n",
               Stage, F.Name.c_str());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::abort();
}

/// SSA construction assumes the entry block has no predecessors (the
/// implicit function-entry edge must not meet a backedge in a phi). A
/// lowered body whose first block is also a loop header gets a fresh
/// forwarding entry.
bool ensureVirginEntry(IrModule &M, IrFunction &F) {
  if (F.Blocks.empty())
    return false;
  IrBlock *Entry = F.Blocks[0];
  bool HasPred = false;
  for (IrBlock *B : F.Blocks)
    if (B->Succ0 == Entry || B->Succ1 == Entry)
      HasPred = true;
  if (!HasPred)
    return false;
  auto *E = M.Nodes.make<IrBlock>((uint32_t)F.Blocks.size());
  auto *Jump = M.Nodes.make<IrInstr>();
  Jump->Op = Opcode::Br;
  E->Instrs.push_back(Jump);
  E->Succ0 = Entry;
  F.Blocks.insert(F.Blocks.begin(), E);
  return true;
}

} // namespace

size_t virgil::ssa::runSsaPasses(
    IrModule &M, DominatorAnalysis &DomA, SsaPassStats &Stats,
    const std::function<void(const char *)> &DumpAfter) {
  // Shared modules redirect metadata to equivalence representatives;
  // optimizer passes must not touch them (same guard as every pass).
  if (M.Shared)
    return 0;

  struct FnState {
    IrFunction *F;
    SsaInfo Info;
  };
  std::vector<FnState> Fns;
  Fns.reserve(M.Functions.size());

  // Stage 1: construction.
  for (IrFunction *F : M.Functions) {
    if (F->Blocks.empty())
      continue;
    bool CfgChanged = removeUnreachableBlocks(*F) != 0;
    CfgChanged |= ensureVirginEntry(M, *F);
    if (CfgChanged)
      DomA.invalidate(F);
    Fns.push_back({F, {}});
    Stats.PhisPlaced += buildSsa(M, *F, DomA.get(F), Fns.back().Info);
    maybeVerify(M, *F, "ssa construction");
  }
  if (DumpAfter)
    DumpAfter("ssa");

  size_t Changes = 0;

  // Stage 2: sparse conditional constant propagation. Folded branches
  // change the CFG (edges dropped, unreachable blocks deleted), so the
  // tree is recomputed before the next dominance consumer.
  for (FnState &S : Fns) {
    size_t Folded0 = Stats.BranchesFolded;
    Changes += runSccp(M, *S.F, DomA.get(S.F), S.Info, Stats);
    if (Stats.BranchesFolded != Folded0)
      DomA.invalidate(S.F);
    maybeVerify(M, *S.F, "sccp");
  }
  if (DumpAfter)
    DumpAfter("sccp");

  // Stage 3: dominance-based load/store elimination.
  for (FnState &S : Fns) {
    Changes += runLoadStoreElim(M, *S.F, DomA.get(S.F), S.Info, Stats);
    maybeVerify(M, *S.F, "loadelim");
  }
  if (DumpAfter)
    DumpAfter("loadelim");

  // Stage 4: sweep dead SSA values (so they place no edge copies),
  // destruct, and compact the register file. Destruction may split
  // critical edges — the tree is stale afterwards.
  for (FnState &S : Fns) {
    size_t Swept = runSsaDce(*S.F, S.Info);
    Stats.InstrsRemoved += Swept;
    Changes += Swept;
    destroySsa(M, *S.F, S.Info, Stats);
    compactRegisters(*S.F);
    DomA.invalidate(S.F);
  }
  return Changes;
}
