//===- ssa/SsaInternal.h - Helpers shared by the SSA passes -----*- C++ -*-===//
///
/// \file
/// Internal plumbing shared by SsaBuilder, Sccp, and LoadStoreElim:
/// batched replace-all-uses (which taints targets, see Ssa.h) and
/// batched instruction deletion.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SSA_SSAINTERNAL_H
#define VIRGIL_SSA_SSAINTERNAL_H

#include "ssa/Ssa.h"

#include <set>

namespace virgil {
namespace ssa {

/// Rewrites every argument (including phi arguments) of \p F through
/// \p Repl, resolving chains (a->b, b->c applies a->c). Each final
/// replacement target is tainted in \p Info: the replacement extended
/// its live range, so it must leave its variable's congruence class
/// at destruction.
void applyReplacements(IrFunction &F, const std::map<Reg, Reg> &Repl,
                       SsaInfo &Info);

/// Erases the listed instructions from their blocks.
void eraseInstrs(IrFunction &F, const std::set<IrInstr *> &Dead);

} // namespace ssa
} // namespace virgil

#endif // VIRGIL_SSA_SSAINTERNAL_H
