//===- ssa/SsaBuilder.cpp - Pruned-SSA construction and destruction -------===//
///
/// Construction: liveness-pruned phi placement at iterated dominance
/// frontiers, then a dominator-tree renaming walk that gives every
/// definition a fresh register. Uses of a register no definition
/// reaches keep the original register — the frame default — which
/// preserves the interpreter's uninitialized-variable semantics
/// without materializing explicit defaults.
///
/// Destruction: congruence-class out-of-SSA. Values map back to their
/// original variable's register unless tainted (an optimization
/// extended their live range via RAUW, breaking the conventional-SSA
/// non-interference of the class), in which case they get a fresh
/// singleton register. Phi copies are emitted per in-edge as a
/// sequentialized parallel copy (cycle-safe), with critical edges
/// split so a copy never executes on the wrong path. Because
/// untainted classes collapse to the original register, a loop
/// variable's phi and its backedge definition coalesce to zero copies
/// — the "copy-coalescing" that keeps round-tripping free.
///
//===----------------------------------------------------------------------===//

#include "ssa/SsaInternal.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace virgil;
using namespace virgil::ssa;

//===----------------------------------------------------------------------===//
// Verification toggle
//===----------------------------------------------------------------------===//

namespace {

int defaultVerify() {
#ifndef NDEBUG
  return 1;
#else
  const char *V = std::getenv("VIRGIL_SSA_VERIFY");
  return V && (!std::strcmp(V, "on") || !std::strcmp(V, "1")) ? 1 : 0;
#endif
}

std::atomic<int> &verifyFlag() {
  static std::atomic<int> Flag(defaultVerify());
  return Flag;
}

} // namespace

bool virgil::ssa::ssaVerifyEnabled() { return verifyFlag().load() != 0; }
void virgil::ssa::setSsaVerifyEnabled(bool Enabled) {
  verifyFlag().store(Enabled ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

void virgil::ssa::applyReplacements(IrFunction &F,
                                    const std::map<Reg, Reg> &Repl,
                                    SsaInfo &Info) {
  if (Repl.empty())
    return;
  auto resolve = [&](Reg R) {
    // Chains are acyclic (a deleted definition never reappears as a
    // target), but bound the walk defensively.
    for (size_t Guard = 0; Guard <= Repl.size(); ++Guard) {
      auto It = Repl.find(R);
      if (It == Repl.end())
        return R;
      R = It->second;
    }
    return R;
  };
  for (IrBlock *B : F.Blocks)
    for (IrInstr *I : B->Instrs)
      for (Reg &A : I->Args) {
        Reg T = resolve(A);
        if (T != A) {
          A = T;
          Info.taint(T);
        }
      }
}

void virgil::ssa::eraseInstrs(IrFunction &F,
                              const std::set<IrInstr *> &Dead) {
  if (Dead.empty())
    return;
  for (IrBlock *B : F.Blocks)
    B->Instrs.erase(std::remove_if(B->Instrs.begin(), B->Instrs.end(),
                                   [&](IrInstr *I) {
                                     return Dead.count(I) != 0;
                                   }),
                    B->Instrs.end());
}

size_t virgil::ssa::removeUnreachableBlocks(IrFunction &F) {
  if (F.Blocks.empty())
    return 0;
  std::set<IrBlock *> Live;
  std::vector<IrBlock *> Work{F.Blocks[0]};
  Live.insert(F.Blocks[0]);
  while (!Work.empty()) {
    IrBlock *B = Work.back();
    Work.pop_back();
    for (IrBlock *S : {B->Succ0, B->Succ1})
      if (S && Live.insert(S).second)
        Work.push_back(S);
  }
  size_t Before = F.Blocks.size();
  F.Blocks.erase(std::remove_if(F.Blocks.begin(), F.Blocks.end(),
                                [&](IrBlock *B) { return !Live.count(B); }),
                 F.Blocks.end());
  return Before - F.Blocks.size();
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

namespace {

/// Dense per-block bitsets over the original register space.
struct BitMatrix {
  size_t Words;
  std::vector<uint64_t> Bits;
  BitMatrix(size_t Blocks, size_t Regs)
      : Words((Regs + 63) / 64), Bits(Blocks * Words, 0) {}
  uint64_t *row(size_t B) { return Bits.data() + B * Words; }
  bool test(size_t B, Reg R) const {
    return (Bits[B * Words + R / 64] >> (R % 64)) & 1;
  }
  void set(size_t B, Reg R) { Bits[B * Words + R / 64] |= 1ull << (R % 64); }
};

} // namespace

size_t virgil::ssa::buildSsa(IrModule &M, IrFunction &F, const DomTree &DT,
                             SsaInfo &Info) {
  size_t NumBlocks = F.Blocks.size();
  Reg NumRegs = (Reg)F.RegTypes.size();
  Info.FirstSsaReg = NumRegs;
  Info.OrigOfSsa.clear();
  Info.Tainted.clear();
  if (NumBlocks == 0)
    return 0;

  // Liveness for pruning: Gen = upward-exposed uses, Kill = defs.
  BitMatrix Gen(NumBlocks, NumRegs), Kill(NumBlocks, NumRegs);
  BitMatrix LiveIn(NumBlocks, NumRegs), LiveOut(NumBlocks, NumRegs);
  std::vector<std::vector<int>> DefBlocks(NumRegs);
  for (size_t BI = 0; BI != NumBlocks; ++BI) {
    IrBlock *B = F.Blocks[BI];
    for (IrInstr *I : B->Instrs) {
      for (Reg A : I->Args)
        if (!Kill.test(BI, A))
          Gen.set(BI, A);
      for (Reg D : I->Dsts) {
        if (!Kill.test(BI, D))
          Kill.set(BI, D);
        auto &DB = DefBlocks[D];
        if (DB.empty() || DB.back() != (int)BI)
          DB.push_back((int)BI);
      }
    }
  }
  // Parameters are defined on entry.
  for (Reg P = 0; P != F.NumParams && P != NumRegs; ++P) {
    auto &DB = DefBlocks[P];
    if (std::find(DB.begin(), DB.end(), 0) == DB.end())
      DB.push_back(0);
  }

  // Backward liveness fixpoint (iterate in postorder for fast
  // convergence).
  size_t W = Gen.Words;
  if (W != 0) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto It = DT.rpo().rbegin(); It != DT.rpo().rend(); ++It) {
        size_t BI = (size_t)*It;
        IrBlock *B = F.Blocks[BI];
        uint64_t *Out = LiveOut.row(BI);
        for (IrBlock *S : {B->Succ0, B->Succ1}) {
          if (!S)
            continue;
          int SI = DT.indexOf(S);
          if (SI < 0)
            continue;
          const uint64_t *SIn = LiveIn.row((size_t)SI);
          for (size_t K = 0; K != W; ++K)
            Out[K] |= SIn[K];
        }
        uint64_t *In = LiveIn.row(BI);
        const uint64_t *G = Gen.row(BI), *Kl = Kill.row(BI);
        for (size_t K = 0; K != W; ++K) {
          uint64_t V = G[K] | (Out[K] & ~Kl[K]);
          if (V != In[K]) {
            In[K] = V;
            Changed = true;
          }
        }
      }
    }
  }

  // Pruned phi placement: iterated dominance frontier of each
  // variable's definition blocks, kept only where the variable is
  // live-in. Placeholder args reference the original variable so the
  // slot of a never-renamed (unreachable) predecessor still reads a
  // well-typed value.
  size_t PhisPlaced = 0;
  std::map<const IrInstr *, Reg> PhiVar;
  std::vector<std::vector<IrInstr *>> NewPhis(NumBlocks);
  for (Reg V = 0; V != NumRegs; ++V) {
    if (DefBlocks[V].empty())
      continue;
    std::vector<int> Work = DefBlocks[V];
    std::vector<char> Placed(NumBlocks, 0), Defd(NumBlocks, 0);
    for (int D : Work)
      Defd[(size_t)D] = 1;
    while (!Work.empty()) {
      int N = Work.back();
      Work.pop_back();
      if (!DT.reachable(N))
        continue;
      for (int Y : DT.frontier(N)) {
        if (Placed[(size_t)Y] || !LiveIn.test((size_t)Y, V))
          continue;
        Placed[(size_t)Y] = 1;
        auto *Phi = M.Nodes.make<IrInstr>();
        Phi->Op = Opcode::Phi;
        Phi->Dsts = {V};
        Phi->Args.assign(DT.preds(Y).size(), V);
        Phi->Ty = F.RegTypes[V];
        NewPhis[(size_t)Y].push_back(Phi);
        PhiVar[Phi] = V;
        ++PhisPlaced;
        if (!Defd[(size_t)Y]) {
          Defd[(size_t)Y] = 1;
          Work.push_back(Y);
        }
      }
    }
  }
  for (size_t BI = 0; BI != NumBlocks; ++BI)
    if (!NewPhis[BI].empty()) {
      auto &Instrs = F.Blocks[BI]->Instrs;
      Instrs.insert(Instrs.begin(), NewPhis[BI].begin(), NewPhis[BI].end());
    }

  // Renaming: dominator-tree preorder walk with per-variable version
  // stacks. An empty stack means "no definition reaches here": the
  // use keeps the original register.
  std::vector<std::vector<Reg>> Stk(NumRegs);
  auto top = [&](Reg V) { return Stk[V].empty() ? V : Stk[V].back(); };
  auto newVersion = [&](Reg V) {
    Reg R = F.newReg(F.RegTypes[V]);
    Info.OrigOfSsa.push_back(V);
    return R;
  };

  struct Frame {
    int Block;
    size_t NextChild = 0;
    std::vector<Reg> Pushed;
  };
  std::vector<Frame> Stack;
  Stack.push_back(Frame{0, 0, {}});
  bool EnterFrame = true;
  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    int BI = Fr.Block;
    IrBlock *B = F.Blocks[(size_t)BI];
    if (EnterFrame) {
      // Rename this block's instructions.
      for (IrInstr *I : B->Instrs) {
        if (I->Op == Opcode::Phi) {
          Reg V = PhiVar[I];
          Reg R = newVersion(V);
          I->Dsts[0] = R;
          Stk[V].push_back(R);
          Fr.Pushed.push_back(V);
          continue;
        }
        for (Reg &A : I->Args)
          A = top(A);
        for (Reg &D : I->Dsts) {
          Reg V = D;
          Reg R = newVersion(V);
          D = R;
          Stk[V].push_back(R);
          Fr.Pushed.push_back(V);
        }
      }
      // Fill phi arguments in successors for this block's out-edges.
      for (int SuccIdx = 0; SuccIdx != 2; ++SuccIdx) {
        IrBlock *S = SuccIdx == 0 ? B->Succ0 : B->Succ1;
        if (!S)
          continue;
        int SI = DT.indexOf(S);
        if (SI < 0)
          continue;
        const auto &Preds = DT.preds(SI);
        for (size_t Pos = 0; Pos != Preds.size(); ++Pos) {
          if (Preds[Pos].Pred != B || Preds[Pos].SuccIdx != SuccIdx)
            continue;
          for (IrInstr *I : S->Instrs) {
            if (I->Op != Opcode::Phi)
              break;
            I->Args[Pos] = top(PhiVar[I]);
          }
        }
      }
      EnterFrame = false;
    }
    const auto &Kids = DT.children(BI);
    if (Fr.NextChild < Kids.size()) {
      int C = Kids[Fr.NextChild++];
      Stack.push_back(Frame{C, 0, {}});
      EnterFrame = true;
      continue;
    }
    for (auto It = Fr.Pushed.rbegin(); It != Fr.Pushed.rend(); ++It)
      Stk[*It].pop_back();
    Stack.pop_back();
  }
  return PhisPlaced;
}

//===----------------------------------------------------------------------===//
// SSA dead-value elimination
//===----------------------------------------------------------------------===//

size_t virgil::ssa::runSsaDce(IrFunction &F, SsaInfo &Info) {
  (void)Info;
  // Use counts over every argument (phi args included). Pure
  // definitions with zero uses die; iterate to catch chains.
  size_t Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::map<Reg, size_t> Uses;
    for (IrBlock *B : F.Blocks)
      for (IrInstr *I : B->Instrs)
        for (Reg A : I->Args)
          ++Uses[A];
    for (IrBlock *B : F.Blocks) {
      auto Dead = [&](IrInstr *I) {
        if (!isPure(I->Op) || I->Dsts.empty())
          return false;
        for (Reg D : I->Dsts)
          if (Uses.count(D))
            return false;
        return true;
      };
      size_t Before = B->Instrs.size();
      B->Instrs.erase(
          std::remove_if(B->Instrs.begin(), B->Instrs.end(), Dead),
          B->Instrs.end());
      if (B->Instrs.size() != Before) {
        Removed += Before - B->Instrs.size();
        Changed = true;
      }
    }
  }
  return Removed;
}

//===----------------------------------------------------------------------===//
// Destruction
//===----------------------------------------------------------------------===//

void virgil::ssa::destroySsa(IrModule &M, IrFunction &F, SsaInfo &Info,
                             SsaPassStats &Stats) {
  // Congruence-class register assignment. Untainted values collapse
  // onto their original variable's register; tainted values get a
  // fresh singleton.
  std::map<Reg, Reg> Singleton;
  auto classReg = [&](Reg R) -> Reg {
    if (!Info.tainted(R))
      return Info.origVar(R);
    auto It = Singleton.find(R);
    if (It != Singleton.end())
      return It->second;
    Reg Fresh = F.newReg(F.RegTypes[R]);
    Singleton.emplace(R, Fresh);
    return Fresh;
  };

  // Tainted *parameters* still carry a caller-provided value, which a
  // fresh register wouldn't: copy it on entry. (A tainted non-param
  // original register is never written, so its fresh singleton reads
  // the same frame default and needs no copy.)
  std::vector<IrInstr *> EntryCopies;
  for (Reg P = 0; P != F.NumParams; ++P) {
    if (!Info.tainted(P))
      continue;
    Reg Fresh = classReg(P);
    auto *Mv = M.Nodes.make<IrInstr>();
    Mv->Op = Opcode::Move;
    Mv->Dsts = {Fresh};
    Mv->Args = {P};
    Mv->Ty = F.RegTypes[P];
    EntryCopies.push_back(Mv);
  }

  // Phi elimination: per in-edge parallel copies between class
  // registers, critical edges split, copies sequentialized.
  size_t OrigBlockCount = F.Blocks.size();
  for (size_t BI = 0; BI != OrigBlockCount; ++BI) {
    IrBlock *B = F.Blocks[BI];
    std::vector<IrInstr *> Phis;
    for (IrInstr *I : B->Instrs) {
      if (I->Op != Opcode::Phi)
        break;
      Phis.push_back(I);
    }
    if (Phis.empty())
      continue;
    auto Preds = computePredEdges(F)[B];
    for (size_t Pos = 0; Pos != Preds.size(); ++Pos) {
      IrBlock *P = Preds[Pos].Pred;
      struct Copy {
        Reg Dst, Src;
        Type *Ty;
      };
      std::vector<Copy> Copies;
      for (IrInstr *Phi : Phis) {
        assert(Phi->Args.size() == Preds.size() &&
               "phi arity out of sync with predecessors");
        Reg D = classReg(Phi->Dsts[0]);
        Reg S = classReg(Phi->Args[Pos]);
        if (D != S)
          Copies.push_back({D, S, Phi->Ty});
      }
      if (Copies.empty())
        continue;
      // Split the edge when the predecessor has another successor:
      // copies must run only on this edge.
      IrBlock *Site = P;
      if (P->Succ0 && P->Succ1) {
        auto *E = M.Nodes.make<IrBlock>((uint32_t)F.Blocks.size());
        F.Blocks.push_back(E);
        auto *Jump = M.Nodes.make<IrInstr>();
        Jump->Op = Opcode::Br;
        E->Instrs.push_back(Jump);
        E->Succ0 = B;
        if (Preds[Pos].SuccIdx == 0)
          P->Succ0 = E;
        else
          P->Succ1 = E;
        Site = E;
      }
      // Sequentialize the parallel copy: emit copies whose
      // destination no other pending copy still reads; break cycles
      // by saving a destination into a temp.
      std::vector<IrInstr *> Seq;
      auto emit = [&](Reg D, Reg S, Type *Ty) {
        auto *Mv = M.Nodes.make<IrInstr>();
        Mv->Op = Opcode::Move;
        Mv->Dsts = {D};
        Mv->Args = {S};
        Mv->Ty = Ty;
        Seq.push_back(Mv);
        ++Stats.EdgeCopies;
      };
      while (!Copies.empty()) {
        bool Progress = false;
        for (size_t I = 0; I != Copies.size();) {
          Reg D = Copies[I].Dst;
          bool Read = false;
          for (size_t J = 0; J != Copies.size(); ++J)
            if (J != I && Copies[J].Src == D)
              Read = true;
          if (Read) {
            ++I;
            continue;
          }
          emit(Copies[I].Dst, Copies[I].Src, Copies[I].Ty);
          Copies.erase(Copies.begin() + I);
          Progress = true;
        }
        if (!Progress) {
          // Cycle: free one destination via a temp.
          Reg D = Copies[0].Dst;
          Reg T = F.newReg(F.RegTypes[D]);
          emit(T, D, Copies[0].Ty);
          for (Copy &C : Copies)
            if (C.Src == D)
              C.Src = T;
        }
      }
      // Insert before the site's terminator.
      assert(!Site->Instrs.empty() && "block without terminator");
      Site->Instrs.insert(Site->Instrs.end() - 1, Seq.begin(), Seq.end());
    }
    // Drop the phis.
    B->Instrs.erase(B->Instrs.begin(),
                    B->Instrs.begin() + (ptrdiff_t)Phis.size());
  }

  // Rewrite every remaining register through its class.
  for (IrBlock *B : F.Blocks)
    for (IrInstr *I : B->Instrs) {
      for (Reg &A : I->Args)
        A = classReg(A);
      for (Reg &D : I->Dsts)
        D = classReg(D);
    }
  if (!EntryCopies.empty()) {
    auto &Entry = F.Blocks[0]->Instrs;
    Entry.insert(Entry.begin(), EntryCopies.begin(), EntryCopies.end());
  }
}

//===----------------------------------------------------------------------===//
// Register compaction
//===----------------------------------------------------------------------===//

size_t virgil::ssa::compactRegisters(IrFunction &F) {
  size_t NumRegs = F.RegTypes.size();
  std::vector<char> Used(NumRegs, 0);
  for (Reg P = 0; P != F.NumParams && P < NumRegs; ++P)
    Used[P] = 1;
  for (IrBlock *B : F.Blocks)
    for (IrInstr *I : B->Instrs) {
      for (Reg A : I->Args)
        Used[A] = 1;
      for (Reg D : I->Dsts)
        Used[D] = 1;
    }
  std::vector<Reg> Map(NumRegs, NoReg);
  std::vector<Type *> NewTypes;
  NewTypes.reserve(NumRegs);
  for (size_t R = 0; R != NumRegs; ++R)
    if (Used[R]) {
      Map[R] = (Reg)NewTypes.size();
      NewTypes.push_back(F.RegTypes[R]);
    }
  if (NewTypes.size() == NumRegs)
    return 0;
  for (IrBlock *B : F.Blocks)
    for (IrInstr *I : B->Instrs) {
      for (Reg &A : I->Args)
        A = Map[A];
      for (Reg &D : I->Dsts)
        D = Map[D];
    }
  size_t Dropped = NumRegs - NewTypes.size();
  F.RegTypes = std::move(NewTypes);
  return Dropped;
}
