//===- ssa/Sccp.cpp - Sparse conditional constant propagation -------------===//
///
/// Wegman/Zadeck SCCP over the SSA form: a three-level lattice
/// (Top / constant / Bot) evaluated only along executable edges, so a
/// constant that feeds a branch prunes the untaken side *before* the
/// dead path can pollute the phi meets. This subsumes the dense
/// ConstFold + CopyProp rounds: one flow-sensitive pass folds the
/// post-specialization cast/query/branch chains (paper §3.3) that the
/// block-local folder needed Rounds=3 iterations to chew through, and
/// Move RAUW propagates copies globally instead of per-block.
///
/// The transfer function mirrors opt/ConstFold.cpp exactly — 32-bit
/// wrapping arithmetic, Div/Mod folded only under a known nonzero
/// divisor, Eq/Ne only for primitive operand types or a known-null
/// side, TypeQuery through the typechecker's three-valued classifier
/// — so ssa-on and ssa-off agree instruction for instruction on what
/// is foldable and the differential oracle sees no divergence.
///
//===----------------------------------------------------------------------===//

#include "ssa/SsaInternal.h"
#include "types/TypeRelations.h"

#include <algorithm>
#include <cassert>

using namespace virgil;
using namespace virgil::ssa;

namespace {

struct Lat {
  enum Kind : uint8_t { Top, Cst, Bot } K = Top;
  bool IsNull = false;
  bool IsVoid = false;
  int64_t V = 0;

  static Lat top() { return Lat{}; }
  static Lat bot() { return Lat{Bot, false, false, 0}; }
  static Lat cstInt(int64_t V) { return Lat{Cst, false, false, V}; }
  static Lat cstBool(bool B) { return Lat{Cst, false, false, B ? 1 : 0}; }
  static Lat cstNull() { return Lat{Cst, true, false, 0}; }
  static Lat cstVoid() { return Lat{Cst, false, true, 0}; }

  bool sameCst(const Lat &O) const {
    return K == Cst && O.K == Cst && IsNull == O.IsNull &&
           IsVoid == O.IsVoid && V == O.V;
  }
  bool operator==(const Lat &O) const {
    return K == O.K && (K != Cst || sameCst(O));
  }
};

Lat meet(const Lat &A, const Lat &B) {
  if (A.K == Lat::Top)
    return B;
  if (B.K == Lat::Top)
    return A;
  if (A.sameCst(B))
    return A;
  return Lat::bot();
}

struct Solver {
  IrModule &M;
  IrFunction &F;
  const DomTree &DT;
  SsaInfo &Info;
  TypeRelations Rels;

  std::vector<Lat> Val;              ///< Per-register lattice value.
  std::vector<char> ExecB;           ///< Per-block executable bit.
  std::vector<char> ExecE;           ///< Per (block * 2 + succIdx) edge bit.

  Solver(IrModule &M, IrFunction &F, const DomTree &DT, SsaInfo &Info)
      : M(M), F(F), DT(DT), Info(Info), Rels(*M.Types),
        Val(F.RegTypes.size()), ExecB(F.Blocks.size(), 0),
        ExecE(F.Blocks.size() * 2, 0) {
    // Parameters and original (possibly-undefined) registers are
    // runtime values the lattice can't see through.
    for (Reg R = 0; R != (Reg)Val.size(); ++R)
      if (R < Info.FirstSsaReg)
        Val[R] = Lat::bot();
  }

  Lat get(Reg R) const { return Val[R]; }

  /// Monotonic update; returns true on change.
  bool lower(Reg R, Lat L) {
    Lat N = meet(Val[R], L);
    if (N == Val[R])
      return false;
    Val[R] = N;
    return true;
  }

  bool edgeExec(int Pred, int SuccIdx) const {
    return ExecE[(size_t)Pred * 2 + (size_t)SuccIdx] != 0;
  }

  Lat evalPhi(const IrInstr *I, int BI) {
    Lat L = Lat::top();
    const auto &Preds = DT.preds(BI);
    for (size_t Pos = 0; Pos != Preds.size(); ++Pos) {
      int PI = DT.indexOf(Preds[Pos].Pred);
      if (PI < 0 || !edgeExec(PI, Preds[Pos].SuccIdx))
        continue;
      L = meet(L, get(I->Args[Pos]));
      if (L.K == Lat::Bot)
        break;
    }
    return L;
  }

  Lat evalInstr(const IrInstr *I, int BI) {
    auto A = [&](size_t N) { return get(I->Args[N]); };
    switch (I->Op) {
    case Opcode::ConstInt:
    case Opcode::ConstByte:
    case Opcode::ConstBool:
      return Lat::cstInt(I->IntConst);
    case Opcode::ConstNull:
      return Lat::cstNull();
    case Opcode::ConstVoid:
      return Lat::cstVoid();
    case Opcode::Move:
      return A(0);
    case Opcode::Phi:
      return evalPhi(I, BI);
    case Opcode::IntAdd:
    case Opcode::IntSub:
    case Opcode::IntMul: {
      Lat L = A(0), R = A(1);
      if (L.K == Lat::Cst && R.K == Lat::Cst && !L.IsNull && !R.IsNull) {
        int64_t V = I->Op == Opcode::IntAdd   ? L.V + R.V
                    : I->Op == Opcode::IntSub ? L.V - R.V
                                              : L.V * R.V;
        return Lat::cstInt((int32_t)V);
      }
      return meet(L, R).K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::IntDiv:
    case Opcode::IntMod: {
      Lat L = A(0), R = A(1);
      if (L.K == Lat::Cst && R.K == Lat::Cst && R.V != 0) {
        int64_t V = I->Op == Opcode::IntDiv ? L.V / R.V : L.V % R.V;
        return Lat::cstInt((int32_t)V);
      }
      if (R.K == Lat::Cst && R.V == 0)
        return Lat::bot(); // Will trap; not foldable.
      return L.K == Lat::Top || R.K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::IntNeg: {
      Lat L = A(0);
      if (L.K == Lat::Cst)
        return Lat::cstInt((int32_t)-(int64_t)L.V);
      return L;
    }
    case Opcode::IntLt:
    case Opcode::IntLe:
    case Opcode::IntGt:
    case Opcode::IntGe: {
      Lat L = A(0), R = A(1);
      if (L.K == Lat::Cst && R.K == Lat::Cst) {
        bool V = I->Op == Opcode::IntLt   ? L.V < R.V
                 : I->Op == Opcode::IntLe ? L.V <= R.V
                 : I->Op == Opcode::IntGt ? L.V > R.V
                                          : L.V >= R.V;
        return Lat::cstBool(V);
      }
      return L.K == Lat::Top || R.K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::BoolNot: {
      Lat L = A(0);
      if (L.K == Lat::Cst)
        return Lat::cstBool(L.V == 0);
      return L;
    }
    case Opcode::BoolAnd:
    case Opcode::BoolOr: {
      Lat L = A(0), R = A(1);
      bool IsAnd = I->Op == Opcode::BoolAnd;
      // The absorbing element decides the result regardless of the
      // other side (x && false == false; x || true == true).
      if ((L.K == Lat::Cst && (IsAnd ? L.V == 0 : L.V != 0)) ||
          (R.K == Lat::Cst && (IsAnd ? R.V == 0 : R.V != 0)))
        return Lat::cstBool(!IsAnd);
      if (L.K == Lat::Cst && R.K == Lat::Cst)
        return Lat::cstBool(IsAnd ? (L.V && R.V) : (L.V || R.V));
      // The identity element passes the other side through.
      if (L.K == Lat::Cst)
        return R;
      if (R.K == Lat::Cst)
        return L;
      return L.K == Lat::Top || R.K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::Eq:
    case Opcode::Ne: {
      Lat L = A(0), R = A(1);
      if (L.K == Lat::Cst && R.K == Lat::Cst && I->TypeOperand &&
          (I->TypeOperand->kind() == TypeKind::Prim || L.IsNull ||
           R.IsNull)) {
        bool Equal = L.IsNull || R.IsNull ? (L.IsNull && R.IsNull)
                                          : L.V == R.V;
        return Lat::cstBool(I->Op == Opcode::Eq ? Equal : !Equal);
      }
      return L.K == Lat::Top || R.K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::TypeQuery: {
      Type *From = F.RegTypes[I->Args[0]];
      TypeRel Rel = Rels.queryRel(From, I->TypeOperand);
      if (Rel == TypeRel::True)
        return Lat::cstBool(true);
      if (Rel == TypeRel::False)
        return Lat::cstBool(false);
      Lat L = A(0);
      if (L.K == Lat::Cst && L.IsNull)
        return Lat::cstBool(false);
      return L.K == Lat::Top ? Lat::top() : Lat::bot();
    }
    case Opcode::TypeCast:
      if (F.RegTypes[I->Args[0]] == I->TypeOperand)
        return A(0);
      return Lat::bot();
    default:
      return Lat::bot();
    }
  }

  void solve() {
    if (F.Blocks.empty())
      return;
    ExecB[0] = 1;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int BI : DT.rpo()) {
        if (!ExecB[(size_t)BI])
          continue;
        IrBlock *B = F.Blocks[(size_t)BI];
        for (IrInstr *I : B->Instrs) {
          if (I->Op == Opcode::Br) {
            Changed |= markEdge(BI, 0, B->Succ0);
          } else if (I->Op == Opcode::CondBr) {
            Lat C = get(I->Args[0]);
            if (C.K == Lat::Cst) {
              if (C.V != 0)
                Changed |= markEdge(BI, 0, B->Succ0);
              else
                Changed |= markEdge(BI, 1, B->Succ1);
            } else if (C.K == Lat::Bot) {
              Changed |= markEdge(BI, 0, B->Succ0);
              Changed |= markEdge(BI, 1, B->Succ1);
            }
          } else if (!I->Dsts.empty()) {
            Lat L = I->Dsts.size() == 1 ? evalInstr(I, BI) : Lat::bot();
            for (Reg D : I->Dsts)
              Changed |= lower(D, I->Dsts.size() == 1 ? L : Lat::bot());
          }
        }
      }
    }
  }

  bool markEdge(int BI, int SuccIdx, IrBlock *Succ) {
    size_t E = (size_t)BI * 2 + (size_t)SuccIdx;
    if (ExecE[E])
      return false;
    ExecE[E] = 1;
    int SI = DT.indexOf(Succ);
    if (SI >= 0)
      ExecB[(size_t)SI] = 1;
    return true;
  }
};

/// Rewrites \p I in place into the constant \p L. The result type is
/// the destination register's type (IrInstr::Ty holds the *operand*
/// type for Eq/Ne, so it can't be trusted here).
void materialize(IrModule &M, IrFunction &F, IrInstr *I, const Lat &L) {
  Type *ResTy = F.RegTypes[I->Dsts[0]];
  I->Args.clear();
  I->TypeOperand = nullptr;
  I->Callee = nullptr;
  I->TypeArgs.clear();
  I->Ty = ResTy;
  if (L.IsNull) {
    I->Op = Opcode::ConstNull;
    I->IntConst = 0;
    return;
  }
  if (L.IsVoid) {
    I->Op = Opcode::ConstVoid;
    I->IntConst = 0;
    return;
  }
  if (ResTy == M.Types->boolTy()) {
    I->Op = Opcode::ConstBool;
    I->IntConst = L.V ? 1 : 0;
  } else if (ResTy == M.Types->byteTy()) {
    I->Op = Opcode::ConstByte;
    I->IntConst = (int64_t)(uint8_t)L.V;
  } else {
    I->Op = Opcode::ConstInt;
    I->IntConst = (int32_t)L.V;
  }
}

/// Removes the phi argument corresponding to structural edge
/// (\p Pred, \p SuccIdx) of \p Target, keeping phi arity in sync with
/// the edge about to be deleted.
void dropPhiArgsForEdge(IrFunction &F, IrBlock *Target, IrBlock *Pred,
                        int SuccIdx) {
  if (Target->Instrs.empty() || Target->Instrs[0]->Op != Opcode::Phi)
    return;
  auto Preds = computePredEdges(F)[Target];
  int Pos = -1;
  for (size_t P = 0; P != Preds.size(); ++P)
    if (Preds[P].Pred == Pred && Preds[P].SuccIdx == SuccIdx) {
      Pos = (int)P;
      break;
    }
  if (Pos < 0)
    return;
  for (IrInstr *I : Target->Instrs) {
    if (I->Op != Opcode::Phi)
      break;
    assert(I->Args.size() == Preds.size() && "phi arity mismatch");
    I->Args.erase(I->Args.begin() + Pos);
  }
}

/// Deletes blocks that became structurally unreachable after branch
/// rewiring, removing the matching phi arguments in surviving blocks
/// first so arity stays equal to the (new) structural pred count.
void removeUnreachableWithPhis(IrFunction &F) {
  if (F.Blocks.empty())
    return;
  std::set<IrBlock *> Live;
  std::vector<IrBlock *> Work{F.Blocks[0]};
  Live.insert(F.Blocks[0]);
  while (!Work.empty()) {
    IrBlock *B = Work.back();
    Work.pop_back();
    for (IrBlock *S : {B->Succ0, B->Succ1})
      if (S && Live.insert(S).second)
        Work.push_back(S);
  }
  if (Live.size() == F.Blocks.size())
    return;
  auto AllPreds = computePredEdges(F);
  for (IrBlock *B : F.Blocks) {
    if (!Live.count(B) || B->Instrs.empty() ||
        B->Instrs[0]->Op != Opcode::Phi)
      continue;
    const auto &Preds = AllPreds[B];
    for (IrInstr *I : B->Instrs) {
      if (I->Op != Opcode::Phi)
        break;
      assert(I->Args.size() == Preds.size() && "phi arity mismatch");
      std::vector<Reg> Keep;
      Keep.reserve(I->Args.size());
      for (size_t P = 0; P != Preds.size(); ++P)
        if (Live.count(Preds[P].Pred))
          Keep.push_back(I->Args[P]);
      I->Args = std::move(Keep);
    }
  }
  F.Blocks.erase(std::remove_if(F.Blocks.begin(), F.Blocks.end(),
                                [&](IrBlock *B) { return !Live.count(B); }),
                 F.Blocks.end());
}

} // namespace

size_t virgil::ssa::runSccp(IrModule &M, IrFunction &F, const DomTree &DT,
                            SsaInfo &Info, SsaPassStats &Stats) {
  if (F.Blocks.empty())
    return 0;
  Solver S(M, F, DT, Info);
  S.solve();

  size_t Changes = 0;
  std::map<Reg, Reg> Repl;
  std::set<IrInstr *> Dead;

  auto isConstOp = [](Opcode Op) {
    switch (Op) {
    case Opcode::ConstInt:
    case Opcode::ConstByte:
    case Opcode::ConstBool:
    case Opcode::ConstNull:
    case Opcode::ConstVoid:
    case Opcode::ConstString:
    case Opcode::ConstDefault:
      return true;
    default:
      return false;
    }
  };
  auto foldable = [](Opcode Op) {
    switch (Op) {
    case Opcode::Move:
    case Opcode::Phi:
    case Opcode::IntAdd:
    case Opcode::IntSub:
    case Opcode::IntMul:
    case Opcode::IntDiv:
    case Opcode::IntMod:
    case Opcode::IntNeg:
    case Opcode::IntLt:
    case Opcode::IntLe:
    case Opcode::IntGt:
    case Opcode::IntGe:
    case Opcode::BoolNot:
    case Opcode::BoolAnd:
    case Opcode::BoolOr:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::TypeQuery:
    case Opcode::TypeCast:
      return true;
    default:
      return false;
    }
  };

  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    if (!S.ExecB[BI])
      continue;
    IrBlock *B = F.Blocks[BI];
    bool RewrotePhi = false;
    for (IrInstr *I : B->Instrs) {
      if (I->Dsts.size() != 1 || isConstOp(I->Op))
        continue;
      Reg D = I->Dsts[0];
      Lat L = S.get(D);
      // Global copy propagation: a Move (or a statically-safe
      // same-type cast) forwards its operand everywhere, whatever the
      // lattice says.
      if (I->Op == Opcode::Move ||
          (I->Op == Opcode::TypeCast &&
           F.RegTypes[I->Args[0]] == I->TypeOperand)) {
        Repl[D] = I->Args[0];
        Dead.insert(I);
        ++Stats.CopiesPropagated;
        ++Changes;
        continue;
      }
      if (!foldable(I->Op))
        continue;
      if (L.K == Lat::Cst) {
        if (I->Op == Opcode::Phi)
          RewrotePhi = true;
        materialize(M, F, I, L);
        ++Stats.SccpFolded;
        ++Changes;
        continue;
      }
      // BoolAnd/BoolOr identity passthrough (x && true == x) shows up
      // as a Bot result whose value is provably the other operand.
      if ((I->Op == Opcode::BoolAnd || I->Op == Opcode::BoolOr) &&
          I->Args.size() == 2) {
        bool IsAnd = I->Op == Opcode::BoolAnd;
        Lat L0 = S.get(I->Args[0]), L1 = S.get(I->Args[1]);
        Reg Other = NoReg;
        if (L0.K == Lat::Cst && (IsAnd ? L0.V != 0 : L0.V == 0))
          Other = I->Args[1];
        else if (L1.K == Lat::Cst && (IsAnd ? L1.V != 0 : L1.V == 0))
          Other = I->Args[0];
        if (Other != NoReg) {
          Repl[D] = Other;
          Dead.insert(I);
          ++Stats.CopiesPropagated;
          ++Changes;
        }
      }
    }
    // Keep the phi group contiguous at the block head: a phi folded to
    // a constant is an ordinary instruction now and moves below its
    // siblings.
    if (RewrotePhi)
      std::stable_partition(
          B->Instrs.begin(), B->Instrs.end(),
          [](const IrInstr *I) { return I->Op == Opcode::Phi; });
  }

  applyReplacements(F, Repl, Info);
  eraseInstrs(F, Dead);

  // Branch rewiring: statically-decided conditional branches become
  // unconditional; the untaken edge's phi argument goes first so arity
  // tracks the structural CFG.
  for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    if (!S.ExecB[BI])
      continue;
    IrBlock *B = F.Blocks[BI];
    IrInstr *T = B->terminator();
    if (!T || T->Op != Opcode::CondBr)
      continue;
    // The condition register may have been replaced; its lattice value
    // is unchanged by RAUW (replacement implies equal value).
    Lat C = S.get(T->Args[0]);
    if (C.K != Lat::Cst)
      continue;
    int DroppedIdx = C.V != 0 ? 1 : 0;
    IrBlock *DroppedTarget = DroppedIdx == 0 ? B->Succ0 : B->Succ1;
    IrBlock *Taken = C.V != 0 ? B->Succ0 : B->Succ1;
    dropPhiArgsForEdge(F, DroppedTarget, B, DroppedIdx);
    T->Op = Opcode::Br;
    T->Args.clear();
    B->Succ0 = Taken;
    B->Succ1 = nullptr;
    ++Stats.BranchesFolded;
    ++Changes;
  }

  removeUnreachableWithPhis(F);
  return Changes;
}
