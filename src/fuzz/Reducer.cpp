//===- fuzz/Reducer.cpp ---------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "ast/AstPrinter.h"
#include "parse/Parser.h"
#include "support/Diagnostics.h"

#include <algorithm>

using namespace virgil;
using namespace virgil::fuzz;

namespace {

/// One parse of the current source; the reducer mutates the module in
/// place and re-prints it for each candidate.
struct ParseCtx {
  SourceFile File;
  Arena Nodes;
  StringInterner Idents;
  DiagEngine Diags;
  Module *M = nullptr;

  explicit ParseCtx(const std::string &Source)
      : File("reduce", Source) {
    Diags.setFile(&File);
    Parser P(File, Nodes, Idents, Diags);
    M = P.parseModule();
  }
  bool ok() const { return M && !Diags.hasErrors(); }
};

/// Applies single mutations, testing each against the predicate. An
/// accepted mutation stays applied (and becomes the new Current); a
/// rejected one is undone via the caller-supplied closure.
class Session {
public:
  Session(const Reducer::Predicate &Pred, std::string &Current,
          ReduceStats &Stats, Module &M)
      : Pred(Pred), Current(Current), Stats(Stats), M(M) {}

  bool anyAccepted() const { return Any; }

  /// Tests the already-applied mutation; returns true when it was
  /// accepted, false after undoing it. AllowEqual admits same-size
  /// rewrites (used by literal collapse, where `z` -> `0` does not
  /// shrink but unlocks removing `var z = ...` next round); such
  /// rewrites converge because literals are never collapsed again.
  template <typename UndoFn> bool test(UndoFn Undo, bool AllowEqual = false) {
    std::string Candidate = printModule(M);
    ++Stats.Candidates;
    bool SmallEnough = AllowEqual ? Candidate.size() <= Current.size() &&
                                        Candidate != Current
                                  : Candidate.size() < Current.size();
    if (SmallEnough && Pred(Candidate)) {
      Current = Candidate;
      ++Stats.Accepted;
      Any = true;
      return true;
    }
    Undo();
    return false;
  }

  /// Tries removing each element of a pointer vector in order.
  template <typename T> void shrinkVec(std::vector<T *> &Vec) {
    for (size_t I = 0; I < Vec.size();) {
      T *Saved = Vec[I];
      Vec.erase(Vec.begin() + I);
      if (!test([&] { Vec.insert(Vec.begin() + I, Saved); }))
        ++I;
    }
  }

  /// Statement-level shrinking inside one block: removal first, then
  /// unwrapping compound statements (if -> branch, loop -> body), then
  /// recursion into surviving children.
  void shrinkStmts(BlockStmt *B) {
    if (!B)
      return;
    for (size_t I = 0; I < B->Stmts.size();) {
      Stmt *Saved = B->Stmts[I];
      B->Stmts.erase(B->Stmts.begin() + I);
      if (test([&] { B->Stmts.insert(B->Stmts.begin() + I, Saved); }))
        continue; // slot now holds the next statement
      for (Stmt *Sub : unwrapCandidates(B->Stmts[I])) {
        Stmt *Old = B->Stmts[I];
        B->Stmts[I] = Sub;
        if (test([&] { B->Stmts[I] = Old; }))
          break;
      }
      recurseInto(B->Stmts[I]);
      ++I;
    }
  }

  /// Expression-level shrinking: hoist a subexpression over its parent
  /// (`id<T>(x)` -> `x`, `(a + b)` -> `a`), or collapse to a literal
  /// `0`. Type-incorrect candidates simply fail to compile and are
  /// rejected by the predicate.
  void shrinkExprSlot(Expr **Slot, Arena &Nodes) {
    if (!*Slot)
      return;
    // Hoist children until no hoist is accepted.
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (Expr *Child : childrenOf(*Slot)) {
        Expr *Old = *Slot;
        *Slot = Child;
        if (test([&] { *Slot = Old; })) {
          Changed = true;
          break;
        }
      }
    }
    // Collapse to `0` (also canonicalizes nonzero int literals).
    auto *IL = dyn_cast<IntLitExpr>(*Slot);
    if (!(IL && IL->Value == 0) && !isa<BoolLitExpr>(*Slot) &&
        !isa<NullLitExpr>(*Slot)) {
      Expr *Old = *Slot;
      *Slot = Nodes.make<IntLitExpr>(Old->Loc, 0);
      test([&] { *Slot = Old; }, /*AllowEqual=*/true);
    }
    for (Expr **Child : childSlotsOf(*Slot))
      shrinkExprSlot(Child, Nodes);
  }

  void shrinkStmtExprs(Stmt *S, Arena &Nodes) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block:
      for (Stmt *Sub : cast<BlockStmt>(S)->Stmts)
        shrinkStmtExprs(Sub, Nodes);
      return;
    case StmtKind::LocalDecl:
      for (LocalVar *V : cast<LocalDeclStmt>(S)->Vars)
        if (V->Init)
          shrinkExprSlot(&V->Init, Nodes);
      return;
    case StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      shrinkExprSlot(&If->Cond, Nodes);
      shrinkStmtExprs(If->Then, Nodes);
      shrinkStmtExprs(If->Else, Nodes);
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      shrinkExprSlot(&W->Cond, Nodes);
      shrinkStmtExprs(W->Body, Nodes);
      return;
    }
    case StmtKind::For: {
      auto *F = cast<ForStmt>(S);
      if (F->Var && F->Var->Init)
        shrinkExprSlot(&F->Var->Init, Nodes);
      if (F->Cond)
        shrinkExprSlot(&F->Cond, Nodes);
      if (F->Update)
        shrinkExprSlot(&F->Update, Nodes);
      shrinkStmtExprs(F->Body, Nodes);
      return;
    }
    case StmtKind::Return: {
      auto *R = cast<ReturnStmt>(S);
      if (R->Value)
        shrinkExprSlot(&R->Value, Nodes);
      return;
    }
    case StmtKind::ExprEval:
      shrinkExprSlot(&cast<ExprStmt>(S)->E, Nodes);
      return;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      return;
    }
  }

private:
  static std::vector<Expr *> childrenOf(Expr *E) {
    std::vector<Expr *> Out;
    switch (E->kind()) {
    case ExprKind::TupleLit:
      for (Expr *El : cast<TupleLitExpr>(E)->Elems)
        Out.push_back(El);
      break;
    case ExprKind::Member:
      Out.push_back(cast<MemberExpr>(E)->Base);
      break;
    case ExprKind::IndexOp:
      Out.push_back(cast<IndexExpr>(E)->Base);
      Out.push_back(cast<IndexExpr>(E)->Index);
      break;
    case ExprKind::Call:
      for (Expr *A : cast<CallExpr>(E)->Args)
        Out.push_back(A);
      break;
    case ExprKind::Binary:
      Out.push_back(cast<BinaryExpr>(E)->Lhs);
      Out.push_back(cast<BinaryExpr>(E)->Rhs);
      break;
    case ExprKind::Unary:
      Out.push_back(cast<UnaryExpr>(E)->Operand);
      break;
    case ExprKind::Ternary:
      Out.push_back(cast<TernaryExpr>(E)->Then);
      Out.push_back(cast<TernaryExpr>(E)->Else);
      Out.push_back(cast<TernaryExpr>(E)->Cond);
      break;
    default:
      break;
    }
    return Out;
  }

  static std::vector<Expr **> childSlotsOf(Expr *E) {
    std::vector<Expr **> Out;
    switch (E->kind()) {
    case ExprKind::TupleLit:
      for (Expr *&El : cast<TupleLitExpr>(E)->Elems)
        Out.push_back(&El);
      break;
    case ExprKind::Member:
      Out.push_back(&cast<MemberExpr>(E)->Base);
      break;
    case ExprKind::IndexOp:
      Out.push_back(&cast<IndexExpr>(E)->Base);
      Out.push_back(&cast<IndexExpr>(E)->Index);
      break;
    case ExprKind::Call:
      Out.push_back(&cast<CallExpr>(E)->Callee);
      for (Expr *&A : cast<CallExpr>(E)->Args)
        Out.push_back(&A);
      break;
    case ExprKind::Binary:
      Out.push_back(&cast<BinaryExpr>(E)->Lhs);
      Out.push_back(&cast<BinaryExpr>(E)->Rhs);
      break;
    case ExprKind::Unary:
      Out.push_back(&cast<UnaryExpr>(E)->Operand);
      break;
    case ExprKind::Ternary:
      Out.push_back(&cast<TernaryExpr>(E)->Cond);
      Out.push_back(&cast<TernaryExpr>(E)->Then);
      Out.push_back(&cast<TernaryExpr>(E)->Else);
      break;
    default:
      break;
    }
    return Out;
  }

  static std::vector<Stmt *> unwrapCandidates(Stmt *S) {
    std::vector<Stmt *> Out;
    if (auto *If = dyn_cast<IfStmt>(S)) {
      Out.push_back(If->Then);
      if (If->Else)
        Out.push_back(If->Else);
    } else if (auto *W = dyn_cast<WhileStmt>(S)) {
      Out.push_back(W->Body);
    } else if (auto *F = dyn_cast<ForStmt>(S)) {
      Out.push_back(F->Body);
    }
    return Out;
  }

  void recurseInto(Stmt *S) {
    if (auto *B = dyn_cast<BlockStmt>(S)) {
      shrinkStmts(B);
    } else if (auto *If = dyn_cast<IfStmt>(S)) {
      recurseInto(If->Then);
      if (If->Else)
        recurseInto(If->Else);
    } else if (auto *W = dyn_cast<WhileStmt>(S)) {
      recurseInto(W->Body);
    } else if (auto *F = dyn_cast<ForStmt>(S)) {
      recurseInto(F->Body);
    }
  }

  const Reducer::Predicate &Pred;
  std::string &Current;
  ReduceStats &Stats;
  Module &M;
  bool Any = false;
};

} // namespace

Reducer::Predicate
Reducer::sameOutcome(const DifferentialOracle &Oracle, Outcome Kind) {
  return [&Oracle, Kind](const std::string &Candidate) {
    return Oracle.check(Candidate).Kind == Kind;
  };
}

std::string Reducer::reduce(const std::string &Source,
                            ReduceStats *StatsOut) const {
  ReduceStats Stats;
  std::string Current = Source;
  if (!StillInteresting(Current)) {
    if (StatsOut)
      *StatsOut = Stats;
    return Current;
  }

  // Normalize to printed form first so candidate comparisons (always
  // against printed candidates) measure real shrinkage.
  {
    ParseCtx Ctx(Current);
    if (Ctx.ok()) {
      std::string Printed = printModule(*Ctx.M);
      if (StillInteresting(Printed))
        Current = Printed;
    }
  }

  bool Progress = true;
  while (Progress) {
    Progress = false;
    ++Stats.Rounds;
    ParseCtx Ctx(Current);
    if (!Ctx.ok())
      break;
    Module &M = *Ctx.M;
    Session S(StillInteresting, Current, Stats, M);

    // Top-level declarations.
    S.shrinkVec(M.Classes);
    S.shrinkVec(M.Globals);
    S.shrinkVec(M.Funcs);

    // Class members. Fields that double as compact constructor
    // parameters cannot be removed alone (the parameter list would no
    // longer match), so they are skipped.
    for (ClassDecl *C : M.Classes) {
      S.shrinkVec(C->Methods);
      for (size_t I = 0; I < C->Fields.size();) {
        FieldDecl *F = C->Fields[I];
        if (std::find(C->CompactFields.begin(), C->CompactFields.end(),
                      F) != C->CompactFields.end()) {
          ++I;
          continue;
        }
        C->Fields.erase(C->Fields.begin() + I);
        if (!S.test(
                [&] { C->Fields.insert(C->Fields.begin() + I, F); }))
          ++I;
      }
    }

    // Statements in every surviving body.
    for (MethodDecl *F : M.Funcs)
      S.shrinkStmts(F->Body);
    for (ClassDecl *C : M.Classes) {
      if (C->Ctor)
        S.shrinkStmts(C->Ctor->Body);
      for (MethodDecl *Me : C->Methods)
        S.shrinkStmts(Me->Body);
    }

    // Expressions: hoist subexpressions and collapse to literals.
    Arena &Nodes = Ctx.Nodes;
    for (GlobalDecl *G : M.Globals)
      if (G->Init)
        S.shrinkExprSlot(&G->Init, Nodes);
    for (MethodDecl *F : M.Funcs)
      S.shrinkStmtExprs(F->Body, Nodes);
    for (ClassDecl *C : M.Classes) {
      for (FieldDecl *F : C->Fields)
        if (F->Init)
          S.shrinkExprSlot(&F->Init, Nodes);
      if (C->Ctor) {
        for (Expr *&A : C->Ctor->SuperArgs)
          S.shrinkExprSlot(&A, Nodes);
        S.shrinkStmtExprs(C->Ctor->Body, Nodes);
      }
      for (MethodDecl *Me : C->Methods)
        S.shrinkStmtExprs(Me->Body, Nodes);
    }

    Progress = S.anyAccepted();
  }

  if (StatsOut)
    *StatsOut = Stats;
  return Current;
}
