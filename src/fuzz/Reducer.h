//===- fuzz/Reducer.h - Delta-debugging program reducer ---------*- C++ -*-===//
///
/// \file
/// Shrinks a divergent program to a minimal reproducer. The reducer is
/// AST-level: each round parses the current source, enumerates removal
/// candidates (top-level declarations, class members, statements,
/// branch/loop unwrapping), applies one at a time, re-prints the
/// module, and keeps the smaller program whenever the caller's
/// predicate still holds (typically "the oracle still reports the same
/// divergence"). Reduction is deterministic: candidates are visited in
/// a fixed order, so a fixed input and predicate always produce the
/// same minimal form.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_FUZZ_REDUCER_H
#define VIRGIL_FUZZ_REDUCER_H

#include "fuzz/Oracle.h"

#include <functional>
#include <string>

namespace virgil {
namespace fuzz {

struct ReduceStats {
  /// Full passes over the candidate list.
  int Rounds = 0;
  /// Candidate programs tested against the predicate.
  int Candidates = 0;
  /// Candidates accepted (each one shrank the program).
  int Accepted = 0;
};

class Reducer {
public:
  /// Returns true when a candidate program still exhibits the
  /// behaviour being minimized. Candidates that fail to compile are
  /// passed through too — predicates built on the oracle reject them
  /// naturally (CompileError is a different outcome class).
  using Predicate = std::function<bool(const std::string &)>;

  explicit Reducer(Predicate StillInteresting)
      : StillInteresting(std::move(StillInteresting)) {}

  /// Shrinks \p Source to a fixpoint: no single removal keeps the
  /// predicate true. Requires StillInteresting(Source) on entry;
  /// returns \p Source unchanged otherwise.
  std::string reduce(const std::string &Source,
                     ReduceStats *Stats = nullptr) const;

  /// Convenience predicate: the oracle classifies the program with
  /// outcome \p Kind (so reduction preserves the divergence class).
  static Predicate sameOutcome(const DifferentialOracle &Oracle,
                               Outcome Kind);

private:
  Predicate StillInteresting;
};

} // namespace fuzz
} // namespace virgil

#endif // VIRGIL_FUZZ_REDUCER_H
