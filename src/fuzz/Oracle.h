//===- fuzz/Oracle.h - Four-strategy differential oracle --------*- C++ -*-===//
///
/// \file
/// Runs one program through all four execution strategies (the
/// polymorphic interpreter, the monomorphized interpreter, the
/// normalized interpreter, and the VM) and classifies the combined
/// outcome. The paper's claim that classes, functions, tuples, and
/// type parameters compose without corner cases makes every pipeline
/// stage a potential divergence point; this oracle is the automated
/// check that no stage silently changes semantics.
///
/// Outcome classes:
///   Agree            all strategies produced the same result, output,
///                    and trap state (identical traps count as
///                    agreement — a guarded program traps nowhere, an
///                    unguarded one must trap everywhere the same way)
///   CompileError     the program did not compile (generator bug or
///                    front-end divergence; always reported)
///   ValueDivergence  results or captured output differ
///   DiagDivergence   trap state or trap message differs
///   Timeout          a strategy exhausted its instruction budget
///   Crash            a strategy threw out of the execution engine
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_FUZZ_ORACLE_H
#define VIRGIL_FUZZ_ORACLE_H

#include "vm/Vm.h"

#include <cstdint>
#include <string>
#include <vector>

namespace virgil {
namespace fuzz {

enum class Outcome : uint8_t {
  Agree,
  CompileError,
  ValueDivergence,
  DiagDivergence,
  Timeout,
  Crash,
};

const char *outcomeName(Outcome Kind);

/// One strategy's observation.
struct StrategyRun {
  std::string Name;
  bool Trapped = false;
  bool TimedOut = false;
  bool Crashed = false;
  std::string TrapMessage;
  bool HasResult = false;
  int64_t Result = 0;
  std::string Output;
  /// VM legs only: executed-instruction count and the pipeline it ran
  /// under ("" optimized, "/no-opt", ...). VM legs of the same
  /// pipeline must agree exactly on Instrs — the JIT's accounting
  /// contract — while different pipelines legitimately differ.
  bool HasInstrs = false;
  uint64_t Instrs = 0;
  std::string Pipeline;

  /// One line, e.g. "vm: result 42" or "poly-interp: trap: ...".
  std::string toString() const;
};

struct OracleReport {
  Outcome Kind = Outcome::Agree;
  /// Human-readable description of what diverged (empty when Agree).
  std::string Detail;
  /// Rendered diagnostics when Kind == CompileError.
  std::string CompileError;
  /// Per-strategy observations; optimized runs first, then (when
  /// enabled) the "/share", "/no-opt", and "/no-opt/share" pipelines.
  std::vector<StrategyRun> Runs;

  bool diverged() const { return Kind != Outcome::Agree; }
};

struct OracleConfig {
  /// Instruction budget per strategy (0 = unlimited). Exhausting it
  /// classifies the run as Timeout.
  uint64_t MaxInstrs = 50'000'000;
  /// Also compile with the optimizer disabled and require agreement
  /// across the two pipelines.
  bool CompareNoOpt = true;
  /// Engine configuration for the VM strategy (GC mode, nursery size,
  /// dispatch, fusion). MaxInstrs above overrides Vm.MaxInstrs so the
  /// Timeout classification stays uniform across strategies. Lets the
  /// sweep run with e.g. a tiny nursery to stress minor collections
  /// while the interpreters remain the reference.
  VmOptions Vm;
  /// Adds a "vm+pool" strategy: the same VM run twice through the
  /// warm-pool reuse protocol (snapshot, run, resetForReuse, run),
  /// reporting the *second* run. Any divergence from the plain vm leg
  /// is a violation of the pool's observational-invisibility contract
  /// (src/exec/VmPool.h).
  bool VmPooled = false;
  /// Adds "/share" strategies: the program is recompiled with
  /// specialization sharing forced ON while the baseline legs force it
  /// OFF, and the shared pipeline's norm-interp, vm (and vm+pool, when
  /// VmPooled) runs must agree with everything else. Any divergence
  /// breaks the sharing pass's observational-invisibility contract
  /// (src/mono/ShareSpecializations.h). Applies to the no-opt pipeline
  /// too when CompareNoOpt is set.
  bool MonoShare = false;
  /// Adds "/escape" strategies: the program is recompiled with escape
  /// analysis + scalar replacement forced ON while the baseline legs
  /// force it OFF, and the escape pipeline's norm-interp and vm runs
  /// must agree with everything else. Any divergence breaks the escape
  /// pass's observational-invisibility contract (src/opt/Escape.h).
  /// Only the optimized pipeline participates — the no-opt pipeline
  /// never runs the pass.
  bool OptEscape = false;
  /// Adds "/ssa" strategies: the program is recompiled with the SSA
  /// mid-tier (pruned-SSA construction, SCCP, load/store elimination)
  /// forced ON while the baseline legs force it OFF, and the SSA
  /// pipeline's norm-interp and vm runs must agree with everything
  /// else. Any divergence breaks the SSA sandwich's observational
  /// invisibility (src/ssa/Ssa.h). The oracle also arms strict-SSA
  /// verification for its compiles so malformed SSA is caught at the
  /// pass boundary rather than as a downstream divergence. Only the
  /// optimized pipeline participates — the no-opt pipeline never
  /// enters SSA form.
  bool OptSsa = false;
  /// Adds "vm+jit" strategies: the same bytecode re-run with the
  /// baseline JIT tier forced ON at hotness threshold 0 (everything
  /// compiles before its first instruction) and at a mid threshold
  /// (functions tier up mid-run, exercising OSR and deopt), while the
  /// plain vm leg forces the JIT OFF so it stays the interpreter
  /// reference. The tiers must agree on result, output, trap
  /// diagnostics, *and* the executed-instruction count — the JIT's
  /// exact-accounting contract. Inline-cache hit/miss counters are
  /// deliberately not compared (tier-heuristic stats). On hosts
  /// without JIT support the legs silently run interpreted and the
  /// comparison is vacuous.
  bool VmJit = false;
};

/// Mid hotness threshold used by the second vm+jit leg: small enough
/// that generated loops cross it, large enough that the interpreter
/// runs a warm-up window first (seeding inline caches and forcing
/// OSR entries at loop back-edges).
constexpr uint32_t kOracleJitMidThreshold = 16;

class DifferentialOracle {
public:
  explicit DifferentialOracle(OracleConfig Config = OracleConfig())
      : Config(Config) {}

  /// Compiles and runs \p Source under every strategy.
  OracleReport check(const std::string &Source) const;

  const OracleConfig &config() const { return Config; }

private:
  OracleConfig Config;
};

} // namespace fuzz
} // namespace virgil

#endif // VIRGIL_FUZZ_ORACLE_H
