//===- fuzz/Fuzzer.cpp ----------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace virgil;
using namespace virgil::fuzz;

namespace {

double nowMs() {
  using namespace std::chrono;
  return duration<double, std::milli>(
             steady_clock::now().time_since_epoch())
      .count();
}

void appendJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

std::string FuzzSummary::toJson() const {
  std::ostringstream OS;
  OS << "{\"seeds\":" << SeedsRun << ",\"agree\":" << Agreements
     << ",\"divergences\":" << Divergences.size() << ",\"wall_ms\":"
     << WallMs;
  if (!Divergences.empty()) {
    OS << ",\"kinds\":[";
    for (size_t I = 0; I != Divergences.size(); ++I) {
      if (I)
        OS << ',';
      OS << "{\"seed\":" << Divergences[I].Seed << ",\"kind\":\""
         << outcomeName(Divergences[I].Kind) << "\"}";
    }
    OS << ']';
  }
  OS << '}';
  return OS.str();
}

bool Fuzzer::persist(const FuzzDivergence &D) const {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Options.OutDir, Ec);
  if (Ec) {
    std::fprintf(stderr, "fuzz: cannot create out-dir '%s': %s\n",
                 Options.OutDir.c_str(), Ec.message().c_str());
    return false;
  }
  std::string Stem =
      Options.OutDir + "/div_" + std::to_string(D.Seed);
  auto writeFile = [](const std::string &Path, const std::string &Text) {
    std::ofstream Out(Path);
    Out << Text;
    return Out.good();
  };
  bool Ok = writeFile(Stem + ".v", D.Reduced);
  Ok &= writeFile(Stem + ".orig.v", D.Source);

  std::ostringstream J;
  J << "{\n  \"seed\": " << D.Seed << ",\n  \"outcome\": \""
    << outcomeName(D.Kind) << "\",\n  \"detail\": ";
  appendJsonString(J, D.Detail);
  J << ",\n  \"gen_config\": ";
  appendJsonString(J, Options.Gen.summary());
  J << ",\n  \"max_instrs\": " << Options.Oracle.MaxInstrs
    << ",\n  \"reduced_bytes\": " << D.Reduced.size()
    << ",\n  \"original_bytes\": " << D.Source.size()
    << ",\n  \"reduction\": {\"rounds\": " << D.Reduction.Rounds
    << ", \"candidates\": " << D.Reduction.Candidates
    << ", \"accepted\": " << D.Reduction.Accepted << "},\n"
    << "  \"strategies\": [";
  for (size_t I = 0; I != D.Runs.size(); ++I) {
    if (I)
      J << ", ";
    J << '\n' << "    ";
    appendJsonString(J, D.Runs[I].toString());
  }
  J << "\n  ]\n}\n";
  Ok &= writeFile(Stem + ".json", J.str());
  if (!Ok)
    std::fprintf(stderr, "fuzz: failed writing reproducer files at %s*\n",
                 Stem.c_str());
  return Ok;
}

FuzzSummary Fuzzer::run() {
  FuzzSummary Summary;
  double Start = nowMs();
  DifferentialOracle Oracle(Options.Oracle);

  uint32_t Seed = Options.StartSeed;
  for (;; ++Seed) {
    if (Options.TimeBudgetSec > 0) {
      if (nowMs() - Start >= Options.TimeBudgetSec * 1000.0)
        break;
    } else if (Summary.SeedsRun >= Options.Seeds) {
      break;
    }
    ++Summary.SeedsRun;

    std::string Source = corpus::genRandomProgram(Seed, Options.Gen);
    OracleReport Report = Oracle.check(Source);
    if (!Report.diverged()) {
      ++Summary.Agreements;
      continue;
    }

    FuzzDivergence D;
    D.Seed = Seed;
    D.Kind = Report.Kind;
    D.Detail = Report.Detail.empty() ? Report.CompileError
                                     : Report.Detail;
    D.Source = Source;
    D.Reduced = Source;
    D.Runs = Report.Runs;
    if (Options.Reduce) {
      Reducer R(Reducer::sameOutcome(Oracle, Report.Kind));
      D.Reduced = R.reduce(Source, &D.Reduction);
    }
    if (Options.Verbose)
      std::fprintf(stderr,
                   "fuzz: seed %u diverged (%s): %s "
                   "[%zu -> %zu bytes]\n",
                   Seed, outcomeName(D.Kind), D.Detail.c_str(),
                   D.Source.size(), D.Reduced.size());
    if (!Options.OutDir.empty())
      persist(D);
    Summary.Divergences.push_back(std::move(D));
  }

  Summary.WallMs = nowMs() - Start;
  return Summary;
}
