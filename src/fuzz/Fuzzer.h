//===- fuzz/Fuzzer.h - Differential fuzzing driver --------------*- C++ -*-===//
///
/// \file
/// Drives the generate → oracle → reduce loop: deterministic random
/// programs from corpus::genRandomProgram go through the
/// DifferentialOracle; any divergence is shrunk by the Reducer (while
/// preserving its outcome class) and persisted as a `.v` reproducer
/// plus JSON metadata (seed, generator config, per-strategy outputs),
/// so a CI failure is directly actionable.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_FUZZ_FUZZER_H
#define VIRGIL_FUZZ_FUZZER_H

#include "corpus/Generators.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"

#include <string>
#include <vector>

namespace virgil {
namespace fuzz {

struct FuzzOptions {
  /// Number of seeds to run, starting at StartSeed. Ignored when
  /// TimeBudgetSec is set.
  uint64_t Seeds = 100;
  uint32_t StartSeed = 1;
  /// Run consecutive seeds until the wall-clock budget expires
  /// (0 = use Seeds).
  double TimeBudgetSec = 0;
  /// Persist reproducers here (empty = don't persist).
  std::string OutDir;
  /// Shrink each divergence before reporting.
  bool Reduce = true;
  corpus::GenConfig Gen;
  OracleConfig Oracle;
  /// Print a status line per divergence to stderr.
  bool Verbose = false;
};

struct FuzzDivergence {
  uint32_t Seed = 0;
  Outcome Kind = Outcome::Agree;
  std::string Detail;
  std::string Source;  ///< As generated.
  std::string Reduced; ///< After reduction (== Source when disabled).
  std::vector<StrategyRun> Runs;
  ReduceStats Reduction;
};

struct FuzzSummary {
  uint64_t SeedsRun = 0;
  uint64_t Agreements = 0;
  std::vector<FuzzDivergence> Divergences;
  double WallMs = 0;

  bool clean() const { return Divergences.empty(); }
  /// Machine-readable one-liner for scripts and CI logs.
  std::string toJson() const;
};

class Fuzzer {
public:
  explicit Fuzzer(FuzzOptions Options) : Options(std::move(Options)) {}

  FuzzSummary run();

  const FuzzOptions &options() const { return Options; }

private:
  /// Writes `div_<seed>.v`, `div_<seed>.orig.v`, and `div_<seed>.json`
  /// into OutDir; returns false (and reports to stderr) on I/O errors.
  bool persist(const FuzzDivergence &D) const;

  FuzzOptions Options;
};

} // namespace fuzz
} // namespace virgil

#endif // VIRGIL_FUZZ_FUZZER_H
