//===- fuzz/Oracle.cpp ----------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "core/Compiler.h"
#include "ssa/Ssa.h"

#include <sstream>

using namespace virgil;
using namespace virgil::fuzz;

const char *fuzz::outcomeName(Outcome Kind) {
  switch (Kind) {
  case Outcome::Agree:
    return "agree";
  case Outcome::CompileError:
    return "compile-error";
  case Outcome::ValueDivergence:
    return "value-divergence";
  case Outcome::DiagDivergence:
    return "diag-divergence";
  case Outcome::Timeout:
    return "timeout";
  case Outcome::Crash:
    return "crash";
  }
  return "?";
}

std::string StrategyRun::toString() const {
  std::ostringstream OS;
  OS << Name << ": ";
  if (Crashed)
    OS << "crash: " << TrapMessage;
  else if (TimedOut)
    OS << "timeout";
  else if (Trapped)
    OS << "trap: " << TrapMessage;
  else if (HasResult)
    OS << "result " << Result;
  else
    OS << "void";
  if (!Output.empty())
    OS << " (output " << Output.size() << " bytes)";
  return OS.str();
}

namespace {

/// The fuel trap message shared by the interpreter and the VM.
const char *const BudgetMsg = "instruction budget exceeded";

StrategyRun fromInterp(const char *Name, const InterpResult &R) {
  StrategyRun S;
  S.Name = Name;
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Output = R.Output;
  if (R.Trapped && R.TrapMessage.find(BudgetMsg) != std::string::npos) {
    S.TimedOut = true;
    S.Trapped = false;
  }
  if (!R.Trapped && R.Result.kind() == Value::Kind::Int) {
    S.HasResult = true;
    S.Result = R.Result.asInt();
  }
  return S;
}

StrategyRun fromVm(const char *Name, const VmResult &R) {
  StrategyRun S;
  S.Name = Name;
  S.Trapped = R.Trapped;
  S.TrapMessage = R.TrapMessage;
  S.Output = R.Output;
  S.HasInstrs = true;
  S.Instrs = R.Counters.Instrs;
  if (R.Trapped && R.TrapMessage.find(BudgetMsg) != std::string::npos) {
    S.TimedOut = true;
    S.Trapped = false;
  }
  if (!R.Trapped && R.HasResult) {
    S.HasResult = true;
    S.Result = (int64_t)(int32_t)R.ResultBits;
  }
  return S;
}

StrategyRun crashed(const char *Name, const std::string &What) {
  StrategyRun S;
  S.Name = Name;
  S.Crashed = true;
  S.TrapMessage = What;
  return S;
}

/// Runs the strategies of one compiled program, appending to \p Runs.
/// \p Suffix distinguishes the no-opt and shared pipelines. With
/// \p NormAndVmOnly only the stages sharing can affect run (the poly
/// and mono IR are identical either way, so re-running them on the
/// shared pipeline would test nothing).
void runStrategies(Program &P, uint64_t MaxInstrs,
                   const VmOptions &VmOpts, bool VmPooled, bool VmJit,
                   const std::string &Suffix,
                   std::vector<StrategyRun> &Runs,
                   bool NormAndVmOnly = false) {
  auto interpOn = [&](IrModule &M, const std::string &Name) {
    try {
      Interpreter I(M);
      if (MaxInstrs)
        I.setMaxInstrs(MaxInstrs);
      Runs.push_back(fromInterp(Name.c_str(), I.run()));
    } catch (const std::exception &E) {
      Runs.push_back(crashed(Name.c_str(), E.what()));
    } catch (...) {
      Runs.push_back(crashed(Name.c_str(), "unknown exception"));
    }
  };
  if (!NormAndVmOnly) {
    interpOn(P.polyIr(), "poly-interp" + Suffix);
    interpOn(P.monoIr(), "mono-interp" + Suffix);
  }
  interpOn(P.normIr(), "norm-interp" + Suffix);
  auto vmOn = [&](const char *Leg, const VmOptions &Opts) {
    std::string Name = Leg + Suffix;
    try {
      Vm V(P.bytecode(), Opts);
      if (MaxInstrs)
        V.setMaxInstrs(MaxInstrs);
      Runs.push_back(fromVm(Name.c_str(), V.run()));
    } catch (const std::exception &E) {
      Runs.push_back(crashed(Name.c_str(), E.what()));
    } catch (...) {
      Runs.push_back(crashed(Name.c_str(), "unknown exception"));
    }
    Runs.back().Pipeline = Suffix;
  };
  // With the vm+jit strategy the plain leg pins the JIT off so it is
  // a true interpreter reference; otherwise it follows VmOpts (which
  // defaults to the process environment).
  VmOptions PlainOpts = VmOpts;
  if (VmJit)
    PlainOpts.Jit = VmOptions::JitMode::Off;
  vmOn("vm", PlainOpts);
  if (VmJit) {
    VmOptions JitOpts = VmOpts;
    JitOpts.Jit = VmOptions::JitMode::On;
    JitOpts.JitThreshold = 0;
    vmOn("vm+jit", JitOpts);
    JitOpts.JitThreshold = kOracleJitMidThreshold;
    vmOn("vm+jit-warm", JitOpts);
  }
  if (!VmPooled)
    return;
  // The warm-pool reuse protocol: run once to dirty every piece of
  // state a request can touch, reset, run again, and report the
  // second run. It must be indistinguishable from the plain vm leg.
  std::string PoolName = "vm+pool" + Suffix;
  try {
    Vm V(P.bytecode(), PlainOpts);
    if (MaxInstrs)
      V.setMaxInstrs(MaxInstrs);
    V.snapshotForReuse();
    (void)V.run();
    V.resetForReuse();
    if (MaxInstrs)
      V.setMaxInstrs(MaxInstrs); // resetForReuse re-arms from VmOptions
    Runs.push_back(fromVm(PoolName.c_str(), V.run()));
  } catch (const std::exception &E) {
    Runs.push_back(crashed(PoolName.c_str(), E.what()));
  } catch (...) {
    Runs.push_back(crashed(PoolName.c_str(), "unknown exception"));
  }
  Runs.back().Pipeline = Suffix;
}

} // namespace

OracleReport DifferentialOracle::check(const std::string &Source) const {
  OracleReport Report;

  // With the mono+share strategy the baseline legs force sharing OFF
  // (instead of following the process default) so the "/share" legs
  // are a true on-vs-off differential; the escape strategy does the
  // same with the escape pass.
  auto compileOne = [&](bool Optimize, bool Share, bool Escape = false,
                        bool Ssa = false) -> std::unique_ptr<Program> {
    CompilerOptions Options;
    Options.Optimize = Optimize;
    if (Config.MonoShare)
      Options.ShareSpecializations = Share;
    if (Config.OptEscape)
      Options.Opt.Escape = Escape;
    if (Config.OptSsa)
      Options.Opt.Ssa = Ssa;
    Compiler C(Options);
    std::string Error;
    auto P = C.compile("fuzz", Source, &Error);
    if (!P && Report.CompileError.empty())
      Report.CompileError = Error;
    return P;
  };

  auto P = compileOne(/*Optimize=*/true, /*Share=*/false);
  if (!P) {
    Report.Kind = Outcome::CompileError;
    Report.Detail = "program failed to compile";
    return Report;
  }
  runStrategies(*P, Config.MaxInstrs, Config.Vm, Config.VmPooled,
                Config.VmJit, "", Report.Runs);
  if (Config.MonoShare) {
    auto PShare = compileOne(/*Optimize=*/true, /*Share=*/true);
    if (!PShare) {
      // Compiling must not depend on the sharing pass.
      Report.Kind = Outcome::CompileError;
      Report.Detail = "compiles without sharing but not with it";
      return Report;
    }
    runStrategies(*PShare, Config.MaxInstrs, Config.Vm, Config.VmPooled,
                  Config.VmJit, "/share", Report.Runs,
                  /*NormAndVmOnly=*/true);
  }
  if (Config.OptEscape) {
    auto PEscape =
        compileOne(/*Optimize=*/true, /*Share=*/false, /*Escape=*/true);
    if (!PEscape) {
      // Compiling must not depend on the escape pass.
      Report.Kind = Outcome::CompileError;
      Report.Detail = "compiles without escape analysis but not with it";
      return Report;
    }
    // Scalar replacement rewrites only the post-mono IR, so the poly
    // and mono legs would re-test nothing.
    runStrategies(*PEscape, Config.MaxInstrs, Config.Vm, Config.VmPooled,
                  Config.VmJit, "/escape", Report.Runs,
                  /*NormAndVmOnly=*/true);
  }
  if (Config.OptSsa) {
    // Arm strict-SSA verification for this compile: a malformed phi or
    // a dominance violation should fail loudly at the pass boundary,
    // not surface later as an unexplained value divergence.
    bool PrevVerify = ssa::ssaVerifyEnabled();
    ssa::setSsaVerifyEnabled(true);
    auto PSsa = compileOne(/*Optimize=*/true, /*Share=*/false,
                           /*Escape=*/false, /*Ssa=*/true);
    ssa::setSsaVerifyEnabled(PrevVerify);
    if (!PSsa) {
      // Compiling must not depend on the SSA mid-tier.
      Report.Kind = Outcome::CompileError;
      Report.Detail = "compiles without the SSA mid-tier but not with it";
      return Report;
    }
    // The SSA sandwich rewrites only the post-mono IR, so the poly and
    // mono legs would re-test nothing.
    runStrategies(*PSsa, Config.MaxInstrs, Config.Vm, Config.VmPooled,
                  Config.VmJit, "/ssa", Report.Runs,
                  /*NormAndVmOnly=*/true);
  }

  if (Config.CompareNoOpt) {
    auto PNoOpt = compileOne(/*Optimize=*/false, /*Share=*/false);
    if (!PNoOpt) {
      // Compiling the same source must not depend on the optimizer.
      Report.Kind = Outcome::CompileError;
      Report.Detail = "compiles optimized but not unoptimized";
      return Report;
    }
    runStrategies(*PNoOpt, Config.MaxInstrs, Config.Vm, Config.VmPooled,
                  Config.VmJit, "/no-opt", Report.Runs);
    if (Config.MonoShare) {
      auto PNoOptShare = compileOne(/*Optimize=*/false, /*Share=*/true);
      if (!PNoOptShare) {
        Report.Kind = Outcome::CompileError;
        Report.Detail = "compiles without sharing but not with it "
                        "(no-opt)";
        return Report;
      }
      runStrategies(*PNoOptShare, Config.MaxInstrs, Config.Vm,
                    Config.VmPooled, Config.VmJit, "/no-opt/share",
                    Report.Runs, /*NormAndVmOnly=*/true);
    }
  }

  // Classify: crash > timeout > diag-divergence > value-divergence.
  const StrategyRun &Ref = Report.Runs[0];
  for (const StrategyRun &S : Report.Runs) {
    if (S.Crashed) {
      Report.Kind = Outcome::Crash;
      Report.Detail = S.toString();
      return Report;
    }
  }
  for (const StrategyRun &S : Report.Runs) {
    if (S.TimedOut) {
      Report.Kind = Outcome::Timeout;
      Report.Detail = S.toString();
      return Report;
    }
  }
  // Trap agreement compares the TrapKind prefix ("null deref",
  // "bounds", ...) rather than the full message: engines may attach
  // different detail text to the same trap, and that is not a
  // semantic divergence.
  auto trapKindOf = [](const StrategyRun &S) {
    return S.TrapMessage.substr(0, S.TrapMessage.find(':'));
  };
  for (const StrategyRun &S : Report.Runs) {
    if (S.Trapped != Ref.Trapped ||
        (S.Trapped && trapKindOf(S) != trapKindOf(Ref))) {
      Report.Kind = Outcome::DiagDivergence;
      Report.Detail = Ref.toString() + " vs " + S.toString();
      return Report;
    }
  }
  if (!Ref.Trapped) {
    for (const StrategyRun &S : Report.Runs) {
      if (S.HasResult != Ref.HasResult || S.Result != Ref.Result ||
          S.Output != Ref.Output) {
        Report.Kind = Outcome::ValueDivergence;
        Report.Detail = Ref.toString() + " vs " + S.toString();
        return Report;
      }
    }
  }
  // VM legs of the same pipeline must agree on the exact executed
  // instruction count: the JIT's accounting contract (fused ops count
  // as two, fuel burns at the same program points) and the pool's
  // invisibility contract both promise it. Different pipelines
  // legitimately execute different instruction streams.
  for (size_t I = 0; I != Report.Runs.size(); ++I) {
    const StrategyRun &A = Report.Runs[I];
    if (!A.HasInstrs)
      continue;
    for (size_t J = I + 1; J != Report.Runs.size(); ++J) {
      const StrategyRun &B = Report.Runs[J];
      if (!B.HasInstrs || B.Pipeline != A.Pipeline)
        continue;
      if (A.Instrs != B.Instrs) {
        Report.Kind = Outcome::ValueDivergence;
        Report.Detail = A.Name + ": " + std::to_string(A.Instrs) +
                        " instrs vs " + B.Name + ": " +
                        std::to_string(B.Instrs) + " instrs";
        return Report;
      }
    }
  }
  return Report;
}
