//===- server/Metrics.h - Live server observability -------------*- C++ -*-===//
///
/// \file
/// The daemon's STATS surface: monotonic counters for every request
/// route, queue and connection gauges, per-worker utilization, and
/// streaming latency histograms with O(1) record and O(buckets)
/// percentile estimation.
///
/// The histogram uses power-of-two microsecond buckets (64 of them
/// cover < 1 µs to ~2.5 hours), so p50/p95/p99 come from a fixed
/// 512-byte footprint regardless of request volume — no reservoir, no
/// sorting, stable memory under sustained traffic. Percentiles are
/// interpolated linearly within the winning bucket, giving ≤ ~50%
/// relative error (one bucket) worst case, far inside what a latency
/// gate needs.
///
/// Thread model: workers and the event loop record through one mutex;
/// a STATS request takes the same mutex to snapshot. Request rates are
/// compile-bound (milliseconds each), so a single lock is nowhere near
/// contention.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_METRICS_H
#define VIRGIL_SERVER_METRICS_H

#include "server/Protocol.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace virgil {
namespace server {

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
public:
  static constexpr int kBuckets = 64;

  void record(double Ms) {
    double Us = Ms * 1000.0;
    uint64_t U = Us <= 0 ? 0 : (uint64_t)Us;
    int B = 0;
    while (B < kBuckets - 1 && U >= ((uint64_t)1 << (B + 1)))
      ++B;
    ++Counts[B];
    ++N;
    SumMs += Ms;
  }

  uint64_t count() const { return N; }
  double meanMs() const { return N ? SumMs / (double)N : 0; }

  /// Estimated latency (ms) at quantile \p Q in [0,1].
  double percentileMs(double Q) const;

  /// {"count":..,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..}
  std::string toJson() const;

private:
  uint64_t Counts[kBuckets] = {};
  uint64_t N = 0;
  double SumMs = 0;
};

struct WorkerStats {
  uint64_t Requests = 0;
  double BusyMs = 0;
};

/// One snapshot-able bundle of everything STATS reports (the cache
/// section is merged in by the server, which owns the BytecodeCache).
class ServerMetrics {
public:
  explicit ServerMetrics(int Workers)
      : Workers(Workers), PerWorker((size_t)Workers) {}

  // -- event-loop side --------------------------------------------------
  void onConnection() { bump(ConnAccepted); }
  void onDisconnect() { bump(ConnClosed); }
  void onProtocolError() { bump(ProtocolErrors); }
  void onBusy() { bump(Busy); }
  void onStatsReq() { bump(StatsReqs); }
  void onPing() { bump(Pings); }
  void onEnqueue(size_t Depth) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Enqueued;
    if (Depth > MaxQueueDepth)
      MaxQueueDepth = Depth;
  }

  // -- worker side ------------------------------------------------------
  /// Records one finished compile/execute request. The GC arguments
  /// are the request VM's per-heap collection counts and total pause
  /// time (0 for compiles).
  void onRequestDone(int Worker, bool IsExecute, Outcome O, bool CacheHit,
                     double CompileMs, double ExecuteMs, double TotalMs,
                     double QueueMs, uint64_t Instrs, uint64_t GcMinor = 0,
                     uint64_t GcMajor = 0, uint64_t GcPauseNs = 0);

  /// Renders the full STATS JSON document. \p QueueDepth/\p QueueCap/
  /// \p ActiveConns are sampled by the caller at snapshot time, as is
  /// \p CacheJson — the "cache" section (one JSON object) from the
  /// server's BytecodeCache, or empty when caching is disabled.
  std::string toJson(double UptimeMs, size_t QueueDepth, size_t QueueCap,
                     size_t ActiveConns,
                     const std::string &CacheJson) const;

private:
  void bump(uint64_t &Counter) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counter;
  }

  mutable std::mutex Mu;
  int Workers;

  uint64_t ConnAccepted = 0, ConnClosed = 0;
  uint64_t ProtocolErrors = 0, Busy = 0, StatsReqs = 0, Pings = 0;
  uint64_t Enqueued = 0;
  size_t MaxQueueDepth = 0;

  uint64_t Executes = 0, Compiles = 0;
  uint64_t ByOutcome[6] = {};
  uint64_t CacheHitsServed = 0;
  uint64_t VmInstrs = 0;
  uint64_t GcMinorTotal = 0, GcMajorTotal = 0, GcPauseNsTotal = 0;

  LatencyHistogram CompileLat, ExecuteLat, TotalLat, QueueLat;
  std::vector<WorkerStats> PerWorker;
};

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_METRICS_H
