//===- server/Metrics.h - Live server observability -------------*- C++ -*-===//
///
/// \file
/// The daemon's STATS surface: monotonic counters for every request
/// route, queue and connection gauges, per-worker utilization, and
/// streaming latency histograms with O(1) record and O(buckets)
/// percentile estimation.
///
/// The histogram uses power-of-two microsecond buckets (64 of them
/// cover < 1 µs to ~2.5 hours), so p50/p95/p99 come from a fixed
/// 512-byte footprint regardless of request volume — no reservoir, no
/// sorting, stable memory under sustained traffic. Percentiles are
/// interpolated linearly within the winning bucket, giving ≤ ~50%
/// relative error (one bucket) worst case, far inside what a latency
/// gate needs.
///
/// Thread model: sharded. Each event-loop thread and each worker
/// thread records into its own MetricsShard behind that shard's
/// mutex — with one thread per shard the lock is always uncontended,
/// so the hot path costs an uncontended lock/unlock instead of a
/// global serialization point (the pre-sharding design measurably
/// stalled workers whenever STATS was being hammered). A STATS
/// request merges every shard under its own lock in turn; the result
/// is a consistent-enough snapshot (counts may straddle a request
/// that finishes mid-merge, which monotonic counters tolerate).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_METRICS_H
#define VIRGIL_SERVER_METRICS_H

#include "server/Protocol.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace virgil {
namespace server {

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
public:
  static constexpr int kBuckets = 64;

  void record(double Ms) {
    double Us = Ms * 1000.0;
    uint64_t U = Us <= 0 ? 0 : (uint64_t)Us;
    int B = 0;
    while (B < kBuckets - 1 && U >= ((uint64_t)1 << (B + 1)))
      ++B;
    ++Counts[B];
    ++N;
    SumMs += Ms;
  }

  /// Accumulates another histogram (the STATS-time shard merge).
  void merge(const LatencyHistogram &O) {
    for (int B = 0; B != kBuckets; ++B)
      Counts[B] += O.Counts[B];
    N += O.N;
    SumMs += O.SumMs;
  }

  uint64_t count() const { return N; }
  double meanMs() const { return N ? SumMs / (double)N : 0; }

  /// Estimated latency (ms) at quantile \p Q in [0,1].
  double percentileMs(double Q) const;

  /// {"count":..,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..}
  std::string toJson() const;

private:
  uint64_t Counts[kBuckets] = {};
  uint64_t N = 0;
  double SumMs = 0;
};

struct WorkerStats {
  uint64_t Requests = 0;
  double BusyMs = 0;
};

/// One thread's slice of the metrics; every field is guarded by Mu.
/// Event-loop shards use the connection/route counters, worker shards
/// the request/latency ones — unused fields just stay zero and merge
/// as zero.
struct MetricsShard {
  std::mutex Mu;

  uint64_t ConnAccepted = 0, ConnClosed = 0;
  uint64_t ProtocolErrors = 0, Busy = 0, StatsReqs = 0, Pings = 0;
  uint64_t Enqueued = 0;
  size_t MaxQueueDepth = 0;

  uint64_t Executes = 0, Compiles = 0;
  uint64_t ByOutcome[6] = {};
  uint64_t CacheHitsServed = 0;
  uint64_t VmInstrs = 0;
  uint64_t GcMinorTotal = 0, GcMajorTotal = 0, GcPauseNsTotal = 0;

  LatencyHistogram CompileLat, ExecuteLat, TotalLat, QueueLat;
  WorkerStats Worker; ///< Meaningful on worker shards only.
};

/// One snapshot-able bundle of everything STATS reports (the cache and
/// exec-pool sections are merged in by the server, which owns those).
class ServerMetrics {
public:
  /// \p Workers worker shards and \p IoShards event-loop shards; every
  /// recording call below names its shard, so no two threads ever
  /// touch the same shard concurrently.
  explicit ServerMetrics(int Workers, int IoShards = 1);

  // -- event-loop side (Shard = event-loop index) -----------------------
  void onConnection(int Shard) { bump(Shard, &MetricsShard::ConnAccepted); }
  void onDisconnect(int Shard) { bump(Shard, &MetricsShard::ConnClosed); }
  void onProtocolError(int Shard) {
    bump(Shard, &MetricsShard::ProtocolErrors);
  }
  void onBusy(int Shard) { bump(Shard, &MetricsShard::Busy); }
  void onStatsReq(int Shard) { bump(Shard, &MetricsShard::StatsReqs); }
  void onPing(int Shard) { bump(Shard, &MetricsShard::Pings); }
  void onEnqueue(int Shard, size_t Depth) {
    MetricsShard &S = loopShard(Shard);
    std::lock_guard<std::mutex> Lock(S.Mu);
    ++S.Enqueued;
    if (Depth > S.MaxQueueDepth)
      S.MaxQueueDepth = Depth;
  }

  // -- worker side ------------------------------------------------------
  /// Records one finished compile/execute request into the worker's
  /// own shard. The GC arguments are the request VM's per-heap
  /// collection counts and total pause time (0 for compiles).
  void onRequestDone(int Worker, bool IsExecute, Outcome O, bool CacheHit,
                     double CompileMs, double ExecuteMs, double TotalMs,
                     double QueueMs, uint64_t Instrs, uint64_t GcMinor = 0,
                     uint64_t GcMajor = 0, uint64_t GcPauseNs = 0);

  /// Renders the full STATS JSON document by merging every shard.
  /// \p QueueDepth/\p QueueCap/\p ActiveConns are sampled by the
  /// caller at snapshot time, as are \p CacheJson, \p ExecJson,
  /// \p MonoJson, and \p OptJson — the "cache", "exec", "mono", and
  /// "opt" sections (one JSON object each), empty to omit.
  std::string toJson(double UptimeMs, size_t QueueDepth, size_t QueueCap,
                     size_t ActiveConns, const std::string &CacheJson,
                     const std::string &ExecJson = std::string(),
                     const std::string &MonoJson = std::string(),
                     const std::string &OptJson = std::string(),
                     const std::string &JitJson = std::string()) const;

private:
  MetricsShard &loopShard(int Shard) const {
    return *LoopShards[(size_t)Shard < LoopShards.size() ? (size_t)Shard
                                                         : 0];
  }
  void bump(int Shard, uint64_t MetricsShard::*Counter) {
    MetricsShard &S = loopShard(Shard);
    std::lock_guard<std::mutex> Lock(S.Mu);
    ++(S.*Counter);
  }

  /// unique_ptr: MetricsShard holds a mutex, so the vectors must never
  /// relocate their elements (and never do — sized at construction).
  std::vector<std::unique_ptr<MetricsShard>> LoopShards;
  std::vector<std::unique_ptr<MetricsShard>> WorkerShards;
};

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_METRICS_H
