//===- server/Client.h - Blocking virgild client library --------*- C++ -*-===//
///
/// \file
/// The client side of the virgild protocol: a blocking connection that
/// sends one request frame and reads one response frame, used by the
/// virgil-load generator, the ServerTest suite, and bench_e13_server.
/// One Client == one connection; requests on it are strictly
/// pipeline-ordered (the server answers in request order), so a caller
/// that wants concurrency opens more clients.
///
/// Every call reports transport failures via the bool/Err convention;
/// *protocol-level* outcomes (compile errors, traps, BUSY) are data,
/// returned in the response structs — see execute()'s Busy flag.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_CLIENT_H
#define VIRGIL_SERVER_CLIENT_H

#include "net/Frame.h"
#include "server/Protocol.h"

#include <string>

namespace virgil {
namespace server {

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Client &operator=(Client &&O) noexcept {
    if (this != &O) {
      close();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }

  bool connectTcp(const std::string &Host, uint16_t Port,
                  std::string *Err);
  bool connectUnix(const std::string &Path, std::string *Err);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Runs one EXECUTE round trip. Returns false only on transport or
  /// protocol failure; server-side BUSY sets \p *Busy (when non-null)
  /// and returns true with \p Resp untouched.
  bool execute(const ExecuteRequest &Req, ExecuteResponse *Resp,
               bool *Busy, std::string *Err);

  /// Runs one COMPILE round trip (same BUSY convention).
  bool compile(const ExecuteRequest &Req, CompileResponse *Resp,
               bool *Busy, std::string *Err);

  /// Fetches the live STATS JSON document.
  bool stats(std::string *JsonOut, std::string *Err);

  bool ping(std::string *Err);

  /// Low-level access (tests): one frame out, one frame in, or the
  /// raw descriptor for writing deliberately malformed bytes.
  bool sendFrame(uint8_t Type, const std::string &Payload,
                 std::string *Err);
  bool recvFrame(net::Frame *Out, std::string *Err);
  int fd() const { return Fd; }

private:
  int Fd = -1;
};

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_CLIENT_H
