//===- server/Metrics.cpp -------------------------------------------------===//

#include "server/Metrics.h"

#include <cstdio>

using namespace virgil::server;

double LatencyHistogram::percentileMs(double Q) const {
  if (N == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the target sample (1-based), then walk buckets until the
  // cumulative count covers it.
  uint64_t Rank = (uint64_t)(Q * (double)N);
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (int B = 0; B != kBuckets; ++B) {
    if (Counts[B] == 0)
      continue;
    if (Seen + Counts[B] >= Rank) {
      // Interpolate within [2^B, 2^(B+1)) µs by the rank's position
      // inside this bucket.
      double Lo = B == 0 ? 0.0 : (double)((uint64_t)1 << B);
      double Hi = (double)((uint64_t)1 << (B + 1));
      double Frac = (double)(Rank - Seen) / (double)Counts[B];
      return (Lo + Frac * (Hi - Lo)) / 1000.0;
    }
    Seen += Counts[B];
  }
  return (double)((uint64_t)1 << (kBuckets - 1)) / 1000.0;
}

std::string LatencyHistogram::toJson() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\":%llu,\"mean_ms\":%.3f,\"p50_ms\":%.3f,"
                "\"p95_ms\":%.3f,\"p99_ms\":%.3f}",
                (unsigned long long)N, meanMs(), percentileMs(0.50),
                percentileMs(0.95), percentileMs(0.99));
  return Buf;
}

ServerMetrics::ServerMetrics(int Workers, int IoShards) {
  if (IoShards < 1)
    IoShards = 1;
  if (Workers < 1)
    Workers = 1;
  LoopShards.reserve((size_t)IoShards);
  for (int I = 0; I != IoShards; ++I)
    LoopShards.push_back(std::make_unique<MetricsShard>());
  WorkerShards.reserve((size_t)Workers);
  for (int I = 0; I != Workers; ++I)
    WorkerShards.push_back(std::make_unique<MetricsShard>());
}

void ServerMetrics::onRequestDone(int Worker, bool IsExecute, Outcome O,
                                  bool CacheHit, double CompileMs,
                                  double ExecuteMs, double TotalMs,
                                  double QueueMs, uint64_t Instrs,
                                  uint64_t GcMinor, uint64_t GcMajor,
                                  uint64_t GcPauseNs) {
  size_t W = Worker >= 0 && (size_t)Worker < WorkerShards.size()
                 ? (size_t)Worker
                 : 0;
  MetricsShard &S = *WorkerShards[W];
  std::lock_guard<std::mutex> Lock(S.Mu);
  (IsExecute ? S.Executes : S.Compiles)++;
  if ((size_t)O < sizeof(S.ByOutcome) / sizeof(S.ByOutcome[0]))
    ++S.ByOutcome[(size_t)O];
  if (CacheHit)
    ++S.CacheHitsServed;
  S.VmInstrs += Instrs;
  S.GcMinorTotal += GcMinor;
  S.GcMajorTotal += GcMajor;
  S.GcPauseNsTotal += GcPauseNs;
  S.CompileLat.record(CompileMs);
  if (IsExecute)
    S.ExecuteLat.record(ExecuteMs);
  S.TotalLat.record(TotalMs);
  S.QueueLat.record(QueueMs);
  ++S.Worker.Requests;
  S.Worker.BusyMs += TotalMs;
}

std::string ServerMetrics::toJson(double UptimeMs, size_t QueueDepth,
                                  size_t QueueCap, size_t ActiveConns,
                                  const std::string &CacheJson,
                                  const std::string &ExecJson,
                                  const std::string &MonoJson,
                                  const std::string &OptJson,
                                  const std::string &JitJson) const {
  // Merge every shard into one flat aggregate, locking each shard only
  // for its own copy-out. Per-worker stats are captured alongside.
  MetricsShard Agg;
  std::vector<WorkerStats> PerWorker;
  PerWorker.reserve(WorkerShards.size());
  auto Merge = [&Agg](MetricsShard &S) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Agg.ConnAccepted += S.ConnAccepted;
    Agg.ConnClosed += S.ConnClosed;
    Agg.ProtocolErrors += S.ProtocolErrors;
    Agg.Busy += S.Busy;
    Agg.StatsReqs += S.StatsReqs;
    Agg.Pings += S.Pings;
    Agg.Enqueued += S.Enqueued;
    if (S.MaxQueueDepth > Agg.MaxQueueDepth)
      Agg.MaxQueueDepth = S.MaxQueueDepth;
    Agg.Executes += S.Executes;
    Agg.Compiles += S.Compiles;
    for (size_t I = 0; I != 6; ++I)
      Agg.ByOutcome[I] += S.ByOutcome[I];
    Agg.CacheHitsServed += S.CacheHitsServed;
    Agg.VmInstrs += S.VmInstrs;
    Agg.GcMinorTotal += S.GcMinorTotal;
    Agg.GcMajorTotal += S.GcMajorTotal;
    Agg.GcPauseNsTotal += S.GcPauseNsTotal;
    Agg.CompileLat.merge(S.CompileLat);
    Agg.ExecuteLat.merge(S.ExecuteLat);
    Agg.TotalLat.merge(S.TotalLat);
    Agg.QueueLat.merge(S.QueueLat);
  };
  for (const auto &S : LoopShards)
    Merge(*S);
  for (const auto &S : WorkerShards) {
    Merge(*S);
    std::lock_guard<std::mutex> Lock(S->Mu);
    PerWorker.push_back(S->Worker);
  }

  char Buf[512];
  std::string J = "{";

  std::snprintf(Buf, sizeof(Buf), "\"uptime_ms\":%.0f,", UptimeMs);
  J += Buf;

  std::snprintf(Buf, sizeof(Buf),
                "\"connections\":{\"accepted\":%llu,\"closed\":%llu,"
                "\"active\":%zu},",
                (unsigned long long)Agg.ConnAccepted,
                (unsigned long long)Agg.ConnClosed, ActiveConns);
  J += Buf;

  std::snprintf(
      Buf, sizeof(Buf),
      "\"requests\":{\"execute\":%llu,\"compile\":%llu,\"stats\":%llu,"
      "\"ping\":%llu,\"busy\":%llu,\"protocol_errors\":%llu,",
      (unsigned long long)Agg.Executes, (unsigned long long)Agg.Compiles,
      (unsigned long long)Agg.StatsReqs, (unsigned long long)Agg.Pings,
      (unsigned long long)Agg.Busy,
      (unsigned long long)Agg.ProtocolErrors);
  J += Buf;
  J += "\"by_outcome\":{";
  for (size_t I = 0; I != 6; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", I ? "," : "",
                  outcomeName((Outcome)I),
                  (unsigned long long)Agg.ByOutcome[I]);
    J += Buf;
  }
  J += "}},";

  std::snprintf(Buf, sizeof(Buf),
                "\"queue\":{\"depth\":%zu,\"cap\":%zu,\"max_depth\":%zu,"
                "\"enqueued\":%llu,\"rejected_busy\":%llu},",
                QueueDepth, QueueCap, Agg.MaxQueueDepth,
                (unsigned long long)Agg.Enqueued,
                (unsigned long long)Agg.Busy);
  J += Buf;

  J += "\"latency_ms\":{\"compile\":" + Agg.CompileLat.toJson() +
       ",\"execute\":" + Agg.ExecuteLat.toJson() +
       ",\"queue_wait\":" + Agg.QueueLat.toJson() +
       ",\"total\":" + Agg.TotalLat.toJson() + "},";

  J += "\"workers\":[";
  for (size_t W = 0; W != PerWorker.size(); ++W) {
    const WorkerStats &S = PerWorker[W];
    double Util = UptimeMs > 0 ? 100.0 * S.BusyMs / UptimeMs : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"id\":%zu,\"requests\":%llu,\"busy_ms\":%.2f,"
                  "\"utilization_pct\":%.1f}",
                  W ? "," : "", W, (unsigned long long)S.Requests,
                  S.BusyMs, Util);
    J += Buf;
  }
  J += "],";

  std::snprintf(Buf, sizeof(Buf),
                "\"vm\":{\"instrs_total\":%llu,\"cache_hits_served\":%llu,"
                "\"gc\":{\"minor_total\":%llu,\"major_total\":%llu,"
                "\"pause_ns_total\":%llu}}",
                (unsigned long long)Agg.VmInstrs,
                (unsigned long long)Agg.CacheHitsServed,
                (unsigned long long)Agg.GcMinorTotal,
                (unsigned long long)Agg.GcMajorTotal,
                (unsigned long long)Agg.GcPauseNsTotal);
  J += Buf;

  if (!ExecJson.empty())
    J += ",\"exec\":" + ExecJson;
  if (!MonoJson.empty())
    J += ",\"mono\":" + MonoJson;
  if (!OptJson.empty())
    J += ",\"opt\":" + OptJson;
  if (!JitJson.empty())
    J += ",\"jit\":" + JitJson;
  if (!CacheJson.empty())
    J += ",\"cache\":" + CacheJson;
  J += "}";
  return J;
}
