//===- server/Metrics.cpp -------------------------------------------------===//

#include "server/Metrics.h"

#include <cstdio>

using namespace virgil::server;

double LatencyHistogram::percentileMs(double Q) const {
  if (N == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the target sample (1-based), then walk buckets until the
  // cumulative count covers it.
  uint64_t Rank = (uint64_t)(Q * (double)N);
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (int B = 0; B != kBuckets; ++B) {
    if (Counts[B] == 0)
      continue;
    if (Seen + Counts[B] >= Rank) {
      // Interpolate within [2^B, 2^(B+1)) µs by the rank's position
      // inside this bucket.
      double Lo = B == 0 ? 0.0 : (double)((uint64_t)1 << B);
      double Hi = (double)((uint64_t)1 << (B + 1));
      double Frac = (double)(Rank - Seen) / (double)Counts[B];
      return (Lo + Frac * (Hi - Lo)) / 1000.0;
    }
    Seen += Counts[B];
  }
  return (double)((uint64_t)1 << (kBuckets - 1)) / 1000.0;
}

std::string LatencyHistogram::toJson() const {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"count\":%llu,\"mean_ms\":%.3f,\"p50_ms\":%.3f,"
                "\"p95_ms\":%.3f,\"p99_ms\":%.3f}",
                (unsigned long long)N, meanMs(), percentileMs(0.50),
                percentileMs(0.95), percentileMs(0.99));
  return Buf;
}

void ServerMetrics::onRequestDone(int Worker, bool IsExecute, Outcome O,
                                  bool CacheHit, double CompileMs,
                                  double ExecuteMs, double TotalMs,
                                  double QueueMs, uint64_t Instrs,
                                  uint64_t GcMinor, uint64_t GcMajor,
                                  uint64_t GcPauseNs) {
  std::lock_guard<std::mutex> Lock(Mu);
  (IsExecute ? Executes : Compiles)++;
  if ((size_t)O < sizeof(ByOutcome) / sizeof(ByOutcome[0]))
    ++ByOutcome[(size_t)O];
  if (CacheHit)
    ++CacheHitsServed;
  VmInstrs += Instrs;
  GcMinorTotal += GcMinor;
  GcMajorTotal += GcMajor;
  GcPauseNsTotal += GcPauseNs;
  CompileLat.record(CompileMs);
  if (IsExecute)
    ExecuteLat.record(ExecuteMs);
  TotalLat.record(TotalMs);
  QueueLat.record(QueueMs);
  if (Worker >= 0 && (size_t)Worker < PerWorker.size()) {
    ++PerWorker[(size_t)Worker].Requests;
    PerWorker[(size_t)Worker].BusyMs += TotalMs;
  }
}

std::string ServerMetrics::toJson(double UptimeMs, size_t QueueDepth,
                                  size_t QueueCap, size_t ActiveConns,
                                  const std::string &CacheJson) const {
  std::lock_guard<std::mutex> Lock(Mu);
  char Buf[512];
  std::string J = "{";

  std::snprintf(Buf, sizeof(Buf), "\"uptime_ms\":%.0f,", UptimeMs);
  J += Buf;

  std::snprintf(Buf, sizeof(Buf),
                "\"connections\":{\"accepted\":%llu,\"closed\":%llu,"
                "\"active\":%zu},",
                (unsigned long long)ConnAccepted,
                (unsigned long long)ConnClosed, ActiveConns);
  J += Buf;

  std::snprintf(
      Buf, sizeof(Buf),
      "\"requests\":{\"execute\":%llu,\"compile\":%llu,\"stats\":%llu,"
      "\"ping\":%llu,\"busy\":%llu,\"protocol_errors\":%llu,",
      (unsigned long long)Executes, (unsigned long long)Compiles,
      (unsigned long long)StatsReqs, (unsigned long long)Pings,
      (unsigned long long)Busy, (unsigned long long)ProtocolErrors);
  J += Buf;
  J += "\"by_outcome\":{";
  for (size_t I = 0; I != 6; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", I ? "," : "",
                  outcomeName((Outcome)I),
                  (unsigned long long)ByOutcome[I]);
    J += Buf;
  }
  J += "}},";

  std::snprintf(Buf, sizeof(Buf),
                "\"queue\":{\"depth\":%zu,\"cap\":%zu,\"max_depth\":%zu,"
                "\"enqueued\":%llu,\"rejected_busy\":%llu},",
                QueueDepth, QueueCap, MaxQueueDepth,
                (unsigned long long)Enqueued, (unsigned long long)Busy);
  J += Buf;

  J += "\"latency_ms\":{\"compile\":" + CompileLat.toJson() +
       ",\"execute\":" + ExecuteLat.toJson() +
       ",\"queue_wait\":" + QueueLat.toJson() +
       ",\"total\":" + TotalLat.toJson() + "},";

  J += "\"workers\":[";
  for (int W = 0; W != Workers; ++W) {
    const WorkerStats &S = PerWorker[(size_t)W];
    double Util = UptimeMs > 0 ? 100.0 * S.BusyMs / UptimeMs : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"id\":%d,\"requests\":%llu,\"busy_ms\":%.2f,"
                  "\"utilization_pct\":%.1f}",
                  W ? "," : "", W, (unsigned long long)S.Requests,
                  S.BusyMs, Util);
    J += Buf;
  }
  J += "],";

  std::snprintf(Buf, sizeof(Buf),
                "\"vm\":{\"instrs_total\":%llu,\"cache_hits_served\":%llu,"
                "\"gc\":{\"minor_total\":%llu,\"major_total\":%llu,"
                "\"pause_ns_total\":%llu}}",
                (unsigned long long)VmInstrs,
                (unsigned long long)CacheHitsServed,
                (unsigned long long)GcMinorTotal,
                (unsigned long long)GcMajorTotal,
                (unsigned long long)GcPauseNsTotal);
  J += Buf;

  if (!CacheJson.empty())
    J += ",\"cache\":" + CacheJson;
  J += "}";
  return J;
}
