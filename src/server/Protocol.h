//===- server/Protocol.h - virgild request/response messages ----*- C++ -*-===//
///
/// \file
/// The message layer of the virgild wire protocol (DESIGN.md §10).
/// Each message travels as one net::Frame whose type byte is a MsgType
/// and whose payload is the Wire-encoded struct below. Requests flow
/// client→server, responses (0x80 bit set) server→client; every
/// request gets exactly one response on the same connection, in
/// request order.
///
///   EXECUTE — compile (through the bytecode cache) and run on an
///             isolated VM under fuel/heap/deadline quotas.
///   COMPILE — compile and cache only; returns phase timings.
///   STATS   — live server metrics as one JSON document.
///   PING    — liveness probe.
///
/// Program-level failures (compile errors, traps, exhausted quotas)
/// are *successful* protocol exchanges: they come back as an
/// ExecuteResponse with the corresponding Outcome. ERROR is reserved
/// for malformed requests, and BUSY for queue-full backpressure — the
/// one response a client should retry.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_PROTOCOL_H
#define VIRGIL_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>

namespace virgil {
namespace server {

enum class MsgType : uint8_t {
  ExecuteReq = 0x01,
  CompileReq = 0x02,
  StatsReq = 0x03,
  PingReq = 0x04,

  ExecuteResp = 0x81,
  CompileResp = 0x82,
  StatsResp = 0x83,
  PingResp = 0x84,
  ErrorResp = 0xE0,
  BusyResp = 0xE1,
};

/// How a compile/execute request ended. Everything except Ok carries a
/// human-readable Message alongside.
enum class Outcome : uint8_t {
  Ok = 0,
  CompileError = 1, ///< Front-end diagnostics.
  Trap = 2,         ///< Program fault (null deref, bounds, ...).
  Fuel = 3,         ///< Instruction budget exhausted.
  Heap = 4,         ///< Heap byte quota exhausted.
  Deadline = 5,     ///< Wall-clock deadline exceeded.
};

const char *outcomeName(Outcome O);

struct ExecuteRequest {
  std::string Name;   ///< Program name for diagnostics.
  std::string Source; ///< Virgil-core source text.
  /// Per-request quota overrides; 0 = use the server's defaults. The
  /// server clamps each to its own configured maximum — a client can
  /// tighten its sandbox but never escape it.
  uint64_t Fuel = 0;
  uint64_t HeapBytes = 0;
  uint32_t DeadlineMs = 0;
  uint32_t Flags = 0; ///< Reserved (must be 0).
};

struct ExecuteResponse {
  Outcome O = Outcome::Ok;
  std::string Message;  ///< Diagnostics / trap text when O != Ok.
  bool CacheHit = false;
  bool HasResult = false;
  int64_t ResultBits = 0;
  std::string Output;      ///< Program stdout.
  double CompileMs = 0;    ///< Cache probe + compile (or deserialize).
  double ExecuteMs = 0;    ///< VM wall time.
  uint64_t Instrs = 0;     ///< VM instructions executed.
  std::string TimingsJson; ///< PhaseTimings::toJson(); "{}" on a hit.
  /// Per-request GC activity on the request's isolated VM heap.
  uint64_t GcMinor = 0;     ///< Minor (nursery) collections.
  uint64_t GcMajor = 0;     ///< Major (full) collections.
  uint64_t GcPauseNs = 0;   ///< Total GC pause time, nanoseconds.
};

struct CompileResponse {
  Outcome O = Outcome::Ok;
  std::string Message;
  bool CacheHit = false;
  double CompileMs = 0;
  std::string TimingsJson;
};

/// Protocol-level failure (ErrorResp) or backpressure (BusyResp).
struct ErrorResponse {
  std::string Message;
};

std::string encodeExecuteRequest(const ExecuteRequest &R);
bool decodeExecuteRequest(const std::string &Payload, ExecuteRequest *R);

std::string encodeExecuteResponse(const ExecuteResponse &R);
bool decodeExecuteResponse(const std::string &Payload, ExecuteResponse *R);

std::string encodeCompileResponse(const CompileResponse &R);
bool decodeCompileResponse(const std::string &Payload, CompileResponse *R);

std::string encodeErrorResponse(const ErrorResponse &R);
bool decodeErrorResponse(const std::string &Payload, ErrorResponse *R);

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_PROTOCOL_H
