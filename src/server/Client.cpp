//===- server/Client.cpp --------------------------------------------------===//

#include "server/Client.h"

#include "net/Socket.h"

using namespace virgil;
using namespace virgil::server;

bool Client::connectTcp(const std::string &Host, uint16_t Port,
                        std::string *Err) {
  close();
  Fd = net::connectTcp(Host, Port, Err);
  return Fd >= 0;
}

bool Client::connectUnix(const std::string &Path, std::string *Err) {
  close();
  Fd = net::connectUnix(Path, Err);
  return Fd >= 0;
}

void Client::close() {
  net::closeFd(Fd);
  Fd = -1;
}

bool Client::sendFrame(uint8_t Type, const std::string &Payload,
                       std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  std::string Bytes = net::encodeFrame(Type, Payload);
  return net::sendAll(Fd, Bytes.data(), Bytes.size(), Err);
}

bool Client::recvFrame(net::Frame *Out, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  char Hdr[4];
  if (!net::recvAll(Fd, Hdr, 4, Err))
    return false;
  uint32_t N = 0;
  for (int I = 0; I != 4; ++I)
    N |= (uint32_t)(uint8_t)Hdr[I] << (8 * I);
  if (N == 0 || N > net::kMaxFramePayload) {
    if (Err)
      *Err = "malformed response frame length";
    return false;
  }
  std::string Body(N, '\0');
  if (!net::recvAll(Fd, Body.data(), N, Err))
    return false;
  Out->Type = (uint8_t)Body[0];
  Out->Payload = Body.substr(1);
  return true;
}

namespace {

/// Shared request/response shape for execute() and compile().
bool roundTrip(Client &C, MsgType ReqType, const ExecuteRequest &Req,
               net::Frame *Resp, bool *Busy, std::string *Err) {
  if (Busy)
    *Busy = false;
  if (!C.sendFrame((uint8_t)ReqType, encodeExecuteRequest(Req), Err))
    return false;
  if (!C.recvFrame(Resp, Err))
    return false;
  if ((MsgType)Resp->Type == MsgType::BusyResp) {
    if (Busy) {
      *Busy = true;
      return true;
    }
    if (Err)
      *Err = "server busy";
    return false;
  }
  if ((MsgType)Resp->Type == MsgType::ErrorResp) {
    ErrorResponse E;
    decodeErrorResponse(Resp->Payload, &E);
    if (Err)
      *Err = "server error: " + E.Message;
    return false;
  }
  return true;
}

} // namespace

bool Client::execute(const ExecuteRequest &Req, ExecuteResponse *Resp,
                     bool *Busy, std::string *Err) {
  net::Frame F;
  if (!roundTrip(*this, MsgType::ExecuteReq, Req, &F, Busy, Err))
    return false;
  if (Busy && *Busy)
    return true;
  if ((MsgType)F.Type != MsgType::ExecuteResp ||
      !decodeExecuteResponse(F.Payload, Resp)) {
    if (Err)
      *Err = "unexpected response frame";
    return false;
  }
  return true;
}

bool Client::compile(const ExecuteRequest &Req, CompileResponse *Resp,
                     bool *Busy, std::string *Err) {
  net::Frame F;
  if (!roundTrip(*this, MsgType::CompileReq, Req, &F, Busy, Err))
    return false;
  if (Busy && *Busy)
    return true;
  if ((MsgType)F.Type != MsgType::CompileResp ||
      !decodeCompileResponse(F.Payload, Resp)) {
    if (Err)
      *Err = "unexpected response frame";
    return false;
  }
  return true;
}

bool Client::stats(std::string *JsonOut, std::string *Err) {
  if (!sendFrame((uint8_t)MsgType::StatsReq, "", Err))
    return false;
  net::Frame F;
  if (!recvFrame(&F, Err))
    return false;
  if ((MsgType)F.Type != MsgType::StatsResp) {
    if (Err)
      *Err = "unexpected response frame";
    return false;
  }
  *JsonOut = F.Payload;
  return true;
}

bool Client::ping(std::string *Err) {
  if (!sendFrame((uint8_t)MsgType::PingReq, "", Err))
    return false;
  net::Frame F;
  if (!recvFrame(&F, Err))
    return false;
  return (MsgType)F.Type == MsgType::PingResp;
}
