//===- server/Protocol.cpp ------------------------------------------------===//

#include "server/Protocol.h"

#include "net/Wire.h"

using namespace virgil::server;
using virgil::net::WireReader;
using virgil::net::WireWriter;

const char *virgil::server::outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return "ok";
  case Outcome::CompileError:
    return "compile_error";
  case Outcome::Trap:
    return "trap";
  case Outcome::Fuel:
    return "fuel";
  case Outcome::Heap:
    return "heap";
  case Outcome::Deadline:
    return "deadline";
  }
  return "unknown";
}

std::string virgil::server::encodeExecuteRequest(const ExecuteRequest &R) {
  WireWriter W;
  W.str(R.Name);
  W.str(R.Source);
  W.u64(R.Fuel);
  W.u64(R.HeapBytes);
  W.u32(R.DeadlineMs);
  W.u32(R.Flags);
  return W.take();
}

bool virgil::server::decodeExecuteRequest(const std::string &Payload,
                                          ExecuteRequest *R) {
  WireReader Rd(Payload);
  R->Name = Rd.str();
  R->Source = Rd.str();
  R->Fuel = Rd.u64();
  R->HeapBytes = Rd.u64();
  R->DeadlineMs = Rd.u32();
  R->Flags = Rd.u32();
  return Rd.done() && R->Flags == 0;
}

std::string virgil::server::encodeExecuteResponse(const ExecuteResponse &R) {
  WireWriter W;
  W.u8((uint8_t)R.O);
  W.str(R.Message);
  W.u8(R.CacheHit ? 1 : 0);
  W.u8(R.HasResult ? 1 : 0);
  W.i64(R.ResultBits);
  W.str(R.Output);
  W.f64(R.CompileMs);
  W.f64(R.ExecuteMs);
  W.u64(R.Instrs);
  W.str(R.TimingsJson);
  W.u64(R.GcMinor);
  W.u64(R.GcMajor);
  W.u64(R.GcPauseNs);
  return W.take();
}

bool virgil::server::decodeExecuteResponse(const std::string &Payload,
                                           ExecuteResponse *R) {
  WireReader Rd(Payload);
  R->O = (Outcome)Rd.u8();
  R->Message = Rd.str();
  R->CacheHit = Rd.u8() != 0;
  R->HasResult = Rd.u8() != 0;
  R->ResultBits = Rd.i64();
  R->Output = Rd.str();
  R->CompileMs = Rd.f64();
  R->ExecuteMs = Rd.f64();
  R->Instrs = Rd.u64();
  R->TimingsJson = Rd.str();
  R->GcMinor = Rd.u64();
  R->GcMajor = Rd.u64();
  R->GcPauseNs = Rd.u64();
  return Rd.done();
}

std::string virgil::server::encodeCompileResponse(const CompileResponse &R) {
  WireWriter W;
  W.u8((uint8_t)R.O);
  W.str(R.Message);
  W.u8(R.CacheHit ? 1 : 0);
  W.f64(R.CompileMs);
  W.str(R.TimingsJson);
  return W.take();
}

bool virgil::server::decodeCompileResponse(const std::string &Payload,
                                           CompileResponse *R) {
  WireReader Rd(Payload);
  R->O = (Outcome)Rd.u8();
  R->Message = Rd.str();
  R->CacheHit = Rd.u8() != 0;
  R->CompileMs = Rd.f64();
  R->TimingsJson = Rd.str();
  return Rd.done();
}

std::string virgil::server::encodeErrorResponse(const ErrorResponse &R) {
  WireWriter W;
  W.str(R.Message);
  return W.take();
}

bool virgil::server::decodeErrorResponse(const std::string &Payload,
                                         ErrorResponse *R) {
  WireReader Rd(Payload);
  R->Message = Rd.str();
  return Rd.done();
}
