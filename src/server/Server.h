//===- server/Server.h - virgild: compile-and-execute daemon ----*- C++ -*-===//
///
/// \file
/// The long-lived service the compile pipeline amortizes into: N
/// event-loop threads (epoll-backed where available) accept
/// connections on TCP and/or Unix sockets, a framing state machine per
/// connection reassembles requests, and per-shard bounded queues feed
/// a worker pool that serves each request through an exec::Executor —
/// compile through the shared CompileService/BytecodeCache, then run
/// on a warm pooled VM or a fresh one under hard quotas (fuel, heap
/// bytes, wall-clock deadline). Design invariants:
///
///   * Isolation — every request runs on a VM whose observable state
///     is indistinguishable from freshly constructed (the VmPool
///     invisibility contract); a hostile program can only burn its own
///     quotas, which degrade to a structured Outcome on the wire.
///   * Sharding — each event-loop thread owns a disjoint shard:
///     poller, connection table, wakeup pipe, bounded queue, response
///     list. A connection is pinned for life to the shard that
///     accepted it, so no connection state is ever shared between
///     loops. TCP accepts spread across shards via per-shard
///     SO_REUSEPORT listeners (shared-listener fallback); the Unix
///     listener is polled by every shard with accept() as the
///     arbiter. Workers are assigned round-robin to shards.
///   * Backpressure — when a shard's queue is at capacity its loop
///     answers BUSY immediately instead of queueing unboundedly; the
///     client retries. Workers are never blocked by the network: they
///     hand finished responses back to their shard over its wakeup
///     pipe.
///   * Graceful drain — stop() (or SIGTERM via requestStop()) closes
///     the listeners and lets every shard independently finish its
///     queued work, flush buffered responses, then join. No request
///     that was accepted is dropped, on any shard.
///   * Robustness — malformed frames or payloads close that one
///     connection with a diagnostic; nothing a client sends can crash
///     or hang the daemon.
///
/// The STATS request renders live metrics (sharded ServerMetrics +
/// cache + exec-pool stats) as one JSON document, served from the
/// event loop without touching the worker queues — observability
/// stays responsive under overload. statsJson() is safe from any
/// thread.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_SERVER_H
#define VIRGIL_SERVER_SERVER_H

#include "exec/Executor.h"
#include "net/Frame.h"
#include "net/Poller.h"
#include "server/Metrics.h"
#include "service/CompileService.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace virgil {
namespace server {

struct ServerConfig {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string UnixPath;
  /// TCP listener; Port < 0 disables it, 0 binds an ephemeral port
  /// (read back via tcpPort()).
  std::string TcpHost = "127.0.0.1";
  int TcpPort = -1;

  int Workers = 2;
  /// Event-loop threads. Each owns one shard (poller, connections,
  /// queue); workers are distributed round-robin across shards, and
  /// the effective worker count is raised to at least IoThreads so no
  /// shard is starved. 1 reproduces the classic single-loop daemon.
  int IoThreads = 1;
  /// Per-shard request-queue bound; overflow answers BUSY.
  size_t QueueCap = 64;

  /// Bytecode cache (shared across requests); empty disables it.
  std::string CacheDir;
  uint64_t CacheMaxBytes = 0;

  /// Default and maximum per-request quotas. A request may specify
  /// tighter values; anything above the maximum is clamped.
  uint64_t DefaultFuel = 200u << 20;        // ~200M instructions
  uint64_t DefaultHeapBytes = 64u << 20;    // 64 MiB
  uint32_t DefaultDeadlineMs = 5000;
  uint64_t MaxFuel = 1u << 30;
  uint64_t MaxHeapBytes = 256u << 20;
  uint32_t MaxDeadlineMs = 30000;

  /// Per-request VM heap mode: generational (nursery + promotion) or
  /// the single-space semispace baseline. The heap-bytes quota caps
  /// nursery + old space combined either way.
  bool VmGenerational = true;
  /// Nursery size in bytes for generational request heaps. Follows
  /// the engine default (64 KiB): request heaps are zero-filled per
  /// request, so a bigger nursery taxes every request's latency.
  uint32_t VmNurseryBytes = 64 * 1024;

  /// Request-VM JIT tier mode and hotness threshold (part of the warm
  /// pool key). Defaults follow the VIRGIL_VM_JIT /
  /// VIRGIL_VM_JIT_THRESHOLD process environment.
  VmOptions::JitMode VmJit = VmOptions::defaultJitMode();
  uint32_t VmJitThreshold = VmOptions::defaultJitThreshold();

  /// Warm-VM pool (per worker): repeat sources skip the compile
  /// service and heap setup entirely, reusing a reset VM whose
  /// behavior is observationally identical to a fresh one. Off for
  /// the ablation baseline and differential testing.
  bool VmPool = true;
  /// Warm VMs retained per worker.
  int VmPoolSize = 8;

  CompilerOptions Compile;
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  /// Opens the listeners and spawns the event loops + workers. False
  /// (with \p Err) if no listener could be opened.
  bool start(std::string *Err);

  /// Graceful shutdown: drain every shard's queue, flush responses,
  /// join all threads. Idempotent.
  void stop();

  /// Async-signal-safe shutdown trigger (the SIGTERM handler calls
  /// this; the owner still calls stop() to join).
  void requestStop();

  /// True once requestStop()/stop() was called.
  bool stopping() const { return Stopping.load(); }

  /// The bound TCP port (after start() with TcpPort >= 0).
  uint16_t tcpPort() const { return BoundTcpPort; }

  /// The live STATS document (also what a STATS frame returns).
  /// Thread-safe: callable from any thread, any time after start().
  std::string statsJson() const;

private:
  struct Conn {
    int Fd = -1;
    net::FrameDecoder Decoder;
    std::string WriteBuf;
    size_t WritePos = 0;
    bool CloseAfterFlush = false;
  };

  struct Work {
    uint64_t ConnId = 0;
    MsgType Type = MsgType::ExecuteReq;
    ExecuteRequest Req; ///< CompileReq reuses the same payload shape.
    std::chrono::steady_clock::time_point Enqueued;
  };

  struct Response {
    uint64_t ConnId;
    std::string Bytes;
  };

  /// One event-loop thread's world. Everything here (except the
  /// explicitly synchronized queue/response/gauge members) is touched
  /// only by the owning loop thread.
  struct Shard {
    int Id = 0;
    net::Poller Poll;
    int WakePipe[2] = {-1, -1};
    /// Per-shard SO_REUSEPORT TCP listener; -1 when the shard polls
    /// the shared listener instead.
    int TcpListenFd = -1;
    std::map<uint64_t, Conn> Conns;
    uint64_t NextConnSeq = 1;
    /// Mirror of Conns.size() readable by statsJson() cross-thread.
    std::atomic<size_t> ActiveConns{0};

    mutable std::mutex QueueMu;
    std::condition_variable QueueCv;
    std::deque<Work> Queue;
    /// Requests popped but not yet answered; drain waits for zero.
    std::atomic<int> InFlight{0};

    std::mutex RespMu;
    std::vector<Response> Responses;

    std::thread LoopThread;
  };

  void eventLoop(Shard &S);
  void workerLoop(int WorkerId);
  void acceptOn(Shard &S, int ListenFd);
  /// Reads available bytes and processes complete frames. False when
  /// the connection should be torn down now.
  bool serviceRead(Shard &S, uint64_t ConnId, Conn &C);
  /// Handles one decoded frame; false tears the connection down.
  bool handleFrame(Shard &S, uint64_t ConnId, Conn &C, const net::Frame &F);
  bool flushWrites(Conn &C);
  void queueResponse(Conn &C, uint8_t Type, const std::string &Payload);
  void closeConn(Shard &S, uint64_t ConnId);
  void wakeShard(Shard &S);
  Shard &shardOfConn(uint64_t ConnId) const {
    return *Shards[(size_t)(ConnId >> 48) % Shards.size()];
  }

  ServerConfig Config;
  std::unique_ptr<CompileService> Service;
  /// One Executor (with its warm-VM pool) per worker thread.
  std::vector<std::unique_ptr<exec::Executor>> Execs;
  ServerMetrics Metrics;
  std::chrono::steady_clock::time_point StartTime;

  /// Shared listeners: the Unix socket always; TCP only when
  /// SO_REUSEPORT sharding is off or unavailable.
  int TcpListenFd = -1;
  int UnixListenFd = -1;
  uint16_t BoundTcpPort = 0;

  std::vector<std::unique_ptr<Shard>> Shards;
  /// Flat copy of every shard's wake-pipe write end, fixed before the
  /// signal handler can fire: requestStop() must stay async-signal-
  /// safe, so it indexes this array instead of walking Shards.
  static constexpr int kMaxIoThreads = 64;
  int WakeFds[kMaxIoThreads];
  int NumWakeFds = 0;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};
  bool Joined = false;
  std::vector<std::thread> WorkerThreads;
};

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_SERVER_H
