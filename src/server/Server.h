//===- server/Server.h - virgild: compile-and-execute daemon ----*- C++ -*-===//
///
/// \file
/// The long-lived service the compile pipeline amortizes into: a
/// poll-based event loop accepts connections on TCP and/or Unix
/// sockets, a framing state machine per connection reassembles
/// requests, and a bounded queue feeds a worker pool that compiles
/// through the shared CompileService/BytecodeCache and executes each
/// program in a fresh Vm under hard quotas (fuel, heap bytes,
/// wall-clock deadline). Design invariants:
///
///   * Isolation — every request gets its own Compiler/TypeStore and
///     its own Vm + Heap; a hostile program can only burn its own
///     quotas, which degrade to a structured Outcome on the wire.
///   * Backpressure — when the queue is at capacity the event loop
///     answers BUSY immediately instead of queueing unboundedly; the
///     client retries. Workers are never blocked by the network: they
///     hand finished responses back to the event loop over a wakeup
///     pipe.
///   * Graceful drain — stop() (or SIGTERM via requestStop()) closes
///     the listeners, lets workers finish everything already queued,
///     flushes buffered responses, then joins. No request that was
///     accepted is dropped.
///   * Robustness — malformed frames or payloads close that one
///     connection with a diagnostic; nothing a client sends can crash
///     or hang the daemon.
///
/// The STATS request renders live metrics (ServerMetrics + cache
/// stats) as one JSON document, served from the event loop without
/// touching the worker queue — observability stays responsive under
/// overload.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_SERVER_SERVER_H
#define VIRGIL_SERVER_SERVER_H

#include "net/Frame.h"
#include "server/Metrics.h"
#include "service/CompileService.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace virgil {
namespace server {

struct ServerConfig {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string UnixPath;
  /// TCP listener; Port < 0 disables it, 0 binds an ephemeral port
  /// (read back via tcpPort()).
  std::string TcpHost = "127.0.0.1";
  int TcpPort = -1;

  int Workers = 2;
  size_t QueueCap = 64;

  /// Bytecode cache (shared across requests); empty disables it.
  std::string CacheDir;
  uint64_t CacheMaxBytes = 0;

  /// Default and maximum per-request quotas. A request may specify
  /// tighter values; anything above the maximum is clamped.
  uint64_t DefaultFuel = 200u << 20;        // ~200M instructions
  uint64_t DefaultHeapBytes = 64u << 20;    // 64 MiB
  uint32_t DefaultDeadlineMs = 5000;
  uint64_t MaxFuel = 1u << 30;
  uint64_t MaxHeapBytes = 256u << 20;
  uint32_t MaxDeadlineMs = 30000;

  /// Per-request VM heap mode: generational (nursery + promotion) or
  /// the single-space semispace baseline. The heap-bytes quota caps
  /// nursery + old space combined either way.
  bool VmGenerational = true;
  /// Nursery size in bytes for generational request heaps. Follows
  /// the engine default (64 KiB): request heaps are zero-filled per
  /// request, so a bigger nursery taxes every request's latency.
  uint32_t VmNurseryBytes = 64 * 1024;

  CompilerOptions Compile;
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  /// Opens the listeners and spawns the event loop + workers. False
  /// (with \p Err) if no listener could be opened.
  bool start(std::string *Err);

  /// Graceful shutdown: drain the queue, flush responses, join all
  /// threads. Idempotent.
  void stop();

  /// Async-signal-safe shutdown trigger (the SIGTERM handler calls
  /// this; the owner still calls stop() to join).
  void requestStop();

  /// True once requestStop()/stop() was called.
  bool stopping() const { return Stopping.load(); }

  /// The bound TCP port (after start() with TcpPort >= 0).
  uint16_t tcpPort() const { return BoundTcpPort; }

  /// The live STATS document (also what a STATS frame returns).
  std::string statsJson() const;

private:
  struct Conn {
    int Fd = -1;
    net::FrameDecoder Decoder;
    std::string WriteBuf;
    size_t WritePos = 0;
    bool CloseAfterFlush = false;
  };

  struct Work {
    uint64_t ConnId = 0;
    MsgType Type = MsgType::ExecuteReq;
    ExecuteRequest Req; ///< CompileReq reuses the same payload shape.
    std::chrono::steady_clock::time_point Enqueued;
  };

  struct Response {
    uint64_t ConnId;
    std::string Bytes;
  };

  void eventLoop();
  void workerLoop(int WorkerId);
  void acceptOn(int ListenFd);
  /// Reads available bytes and processes complete frames. False when
  /// the connection should be torn down now.
  bool serviceRead(uint64_t ConnId, Conn &C);
  /// Handles one decoded frame; false tears the connection down.
  bool handleFrame(uint64_t ConnId, Conn &C, const net::Frame &F);
  bool flushWrites(Conn &C);
  void queueResponse(Conn &C, uint8_t Type, const std::string &Payload);
  void closeConn(uint64_t ConnId);
  void wakeLoop();
  ExecuteResponse runRequest(const ExecuteRequest &R, double *CompileMs,
                             double *ExecuteMs);

  ServerConfig Config;
  std::unique_ptr<CompileService> Service;
  ServerMetrics Metrics;
  std::chrono::steady_clock::time_point StartTime;

  int TcpListenFd = -1;
  int UnixListenFd = -1;
  uint16_t BoundTcpPort = 0;
  int WakePipe[2] = {-1, -1};

  std::map<uint64_t, Conn> Conns;
  uint64_t NextConnId = 1;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<Work> Queue;
  /// Requests popped but not yet answered; drain waits for zero.
  std::atomic<int> InFlight{0};

  std::mutex RespMu;
  std::vector<Response> Responses;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};
  bool Joined = false;
  std::thread LoopThread;
  std::vector<std::thread> WorkerThreads;
};

} // namespace server
} // namespace virgil

#endif // VIRGIL_SERVER_SERVER_H
