//===- server/Server.cpp --------------------------------------------------===//

#include "server/Server.h"

#include "net/Socket.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace virgil;
using namespace virgil::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

constexpr int kMaxIoThreadsLocal = 64;

ServerConfig normalized(ServerConfig C) {
  if (C.Workers <= 0)
    C.Workers = 1;
  if (C.IoThreads <= 0)
    C.IoThreads = 1;
  if (C.IoThreads > kMaxIoThreadsLocal)
    C.IoThreads = kMaxIoThreadsLocal;
  // Every shard needs at least one worker draining its queue.
  if (C.Workers < C.IoThreads)
    C.Workers = C.IoThreads;
  if (C.VmPoolSize <= 0)
    C.VmPool = false;
  return C;
}

} // namespace

Server::Server(ServerConfig C)
    : Config(normalized(std::move(C))),
      Metrics(Config.Workers, Config.IoThreads) {
  ServiceOptions SO;
  SO.Jobs = 1; // workers call compileOne directly; no inner pool
  SO.CacheDir = Config.CacheDir;
  SO.CacheMaxBytes = Config.CacheMaxBytes;
  SO.Compile = Config.Compile;
  Service = std::make_unique<CompileService>(SO);

  exec::ExecutorConfig EC;
  EC.DefaultFuel = Config.DefaultFuel;
  EC.DefaultHeapBytes = Config.DefaultHeapBytes;
  EC.DefaultDeadlineMs = Config.DefaultDeadlineMs;
  EC.MaxFuel = Config.MaxFuel;
  EC.MaxHeapBytes = Config.MaxHeapBytes;
  EC.MaxDeadlineMs = Config.MaxDeadlineMs;
  EC.VmGenerational = Config.VmGenerational;
  EC.VmNurseryBytes = Config.VmNurseryBytes;
  EC.VmJit = Config.VmJit;
  EC.VmJitThreshold = Config.VmJitThreshold;
  EC.UsePool = Config.VmPool;
  EC.PoolSize = (size_t)Config.VmPoolSize;
  Execs.reserve((size_t)Config.Workers);
  for (int W = 0; W != Config.Workers; ++W)
    Execs.push_back(std::make_unique<exec::Executor>(EC, *Service));
}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  if (Started.load())
    return true;
  if (Config.UnixPath.empty() && Config.TcpPort < 0) {
    if (Err)
      *Err = "no listener configured (need a unix path or tcp port)";
    return false;
  }

  Shards.clear();
  for (int I = 0; I != Config.IoThreads; ++I) {
    Shards.push_back(std::make_unique<Shard>());
    Shards.back()->Id = I;
  }

  auto Fail = [&] {
    for (auto &S : Shards) {
      net::closeFd(S->TcpListenFd);
      net::closeFd(S->WakePipe[0]);
      net::closeFd(S->WakePipe[1]);
    }
    Shards.clear();
    net::closeFd(UnixListenFd);
    net::closeFd(TcpListenFd);
    UnixListenFd = TcpListenFd = -1;
    NumWakeFds = 0;
    return false;
  };

  if (!Config.UnixPath.empty()) {
    // One shared Unix listener: every shard polls it and accept() is
    // the arbiter (losers see EAGAIN, which acceptOn tolerates).
    UnixListenFd = net::listenUnix(Config.UnixPath, Err);
    if (UnixListenFd < 0)
      return Fail();
    net::setNonBlocking(UnixListenFd, true);
  }
  if (Config.TcpPort >= 0) {
    if (Config.IoThreads > 1) {
      // Per-shard SO_REUSEPORT listeners: the kernel spreads accepts
      // across shards with no thundering herd. The first listener may
      // bind an ephemeral port; the rest bind the read-back port.
      bool ReusePortOk = true;
      std::string ReuseErr;
      for (auto &S : Shards) {
        uint16_t Port = S->Id == 0 ? (uint16_t)Config.TcpPort : BoundTcpPort;
        S->TcpListenFd =
            net::listenTcp(Config.TcpHost, Port, &ReuseErr,
                           S->Id == 0 ? &BoundTcpPort : nullptr, true);
        if (S->TcpListenFd < 0) {
          ReusePortOk = false;
          break;
        }
        net::setNonBlocking(S->TcpListenFd, true);
      }
      if (!ReusePortOk) {
        // Platform without SO_REUSEPORT (or a bind race): fall back to
        // one shared listener all shards poll, like the Unix socket.
        for (auto &S : Shards) {
          net::closeFd(S->TcpListenFd);
          S->TcpListenFd = -1;
        }
        BoundTcpPort = 0;
        TcpListenFd = net::listenTcp(Config.TcpHost, (uint16_t)Config.TcpPort,
                                     Err, &BoundTcpPort);
        if (TcpListenFd < 0)
          return Fail();
        net::setNonBlocking(TcpListenFd, true);
      }
    } else {
      TcpListenFd = net::listenTcp(Config.TcpHost, (uint16_t)Config.TcpPort,
                                   Err, &BoundTcpPort);
      if (TcpListenFd < 0)
        return Fail();
      net::setNonBlocking(TcpListenFd, true);
    }
  }

  NumWakeFds = 0;
  for (auto &S : Shards) {
    if (::pipe(S->WakePipe) != 0) {
      if (Err)
        *Err = std::string("pipe: ") + std::strerror(errno);
      return Fail();
    }
    net::setNonBlocking(S->WakePipe[0], true);
    net::setNonBlocking(S->WakePipe[1], true);
    WakeFds[NumWakeFds++] = S->WakePipe[1];
  }

  StartTime = Clock::now();
  Started.store(true);
  for (auto &S : Shards) {
    Shard *P = S.get();
    P->LoopThread = std::thread([this, P] { eventLoop(*P); });
  }
  WorkerThreads.reserve((size_t)Config.Workers);
  for (int W = 0; W != Config.Workers; ++W)
    WorkerThreads.emplace_back([this, W] { workerLoop(W); });
  return true;
}

void Server::requestStop() {
  Stopping.store(true);
  // Async-signal-safe: a flag store and one write per shard's wake
  // pipe; EAGAIN means that loop is already due to wake.
  char B = 1;
  for (int I = 0; I != NumWakeFds; ++I)
    if (WakeFds[I] >= 0)
      (void)!::write(WakeFds[I], &B, 1);
}

void Server::stop() {
  if (!Started.load() || Joined)
    return;
  requestStop();
  for (auto &S : Shards)
    S->QueueCv.notify_all();
  for (auto &S : Shards)
    if (S->LoopThread.joinable())
      S->LoopThread.join();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  Joined = true;
  for (auto &S : Shards) {
    net::closeFd(S->TcpListenFd);
    net::closeFd(S->WakePipe[0]);
    net::closeFd(S->WakePipe[1]);
    S->TcpListenFd = S->WakePipe[0] = S->WakePipe[1] = -1;
  }
  NumWakeFds = 0;
  net::closeFd(UnixListenFd);
  net::closeFd(TcpListenFd);
  UnixListenFd = TcpListenFd = -1;
  if (!Config.UnixPath.empty())
    ::unlink(Config.UnixPath.c_str());
}

//===----------------------------------------------------------------------===//
// Event loops (one per shard)
//===----------------------------------------------------------------------===//

void Server::wakeShard(Shard &S) {
  char B = 1;
  (void)!::write(S.WakePipe[1], &B, 1);
}

void Server::eventLoop(Shard &S) {
  bool DrainArmed = false;
  Clock::time_point DrainDeadline;

  for (;;) {
    bool Draining = Stopping.load();
    if (Draining && !DrainArmed) {
      DrainArmed = true;
      // Workers are bounded by per-request deadlines, so the drain
      // converges; the cap protects against a client that never reads
      // its responses.
      DrainDeadline =
          Clock::now() +
          std::chrono::milliseconds(Config.MaxDeadlineMs + 5000);
    }

    // This shard's TCP accept source: its own SO_REUSEPORT listener,
    // or the shared one when per-shard listeners are off.
    int TcpFd = S.TcpListenFd >= 0 ? S.TcpListenFd : TcpListenFd;

    S.Poll.clear();
    size_t TcpIdx = (size_t)-1, UnixIdx = (size_t)-1;
    if (!Draining) {
      if (TcpFd >= 0)
        TcpIdx = S.Poll.add(TcpFd);
      if (UnixListenFd >= 0)
        UnixIdx = S.Poll.add(UnixListenFd);
    }
    S.Poll.add(S.WakePipe[0]);
    std::vector<std::pair<size_t, uint64_t>> ConnSlots;
    ConnSlots.reserve(S.Conns.size());
    for (auto &[Id, C] : S.Conns) {
      bool WantWrite = C.WritePos < C.WriteBuf.size();
      ConnSlots.emplace_back(S.Poll.add(C.Fd, WantWrite), Id);
    }

    S.Poll.wait(100);

    // Drain the wakeup pipe (the byte count is meaningless — it is
    // only a doorbell).
    char Junk[256];
    while (::read(S.WakePipe[0], Junk, sizeof(Junk)) > 0) {
    }

    // Ship worker responses to their connections (the conn may have
    // gone away; that just drops the bytes).
    {
      std::vector<Response> Ready;
      {
        std::lock_guard<std::mutex> Lock(S.RespMu);
        Ready.swap(S.Responses);
      }
      for (Response &R : Ready) {
        auto It = S.Conns.find(R.ConnId);
        if (It == S.Conns.end())
          continue;
        It->second.WriteBuf += R.Bytes;
      }
    }

    if (!Draining) {
      if (TcpIdx != (size_t)-1 && S.Poll.readable(TcpIdx))
        acceptOn(S, TcpFd);
      if (UnixIdx != (size_t)-1 && S.Poll.readable(UnixIdx))
        acceptOn(S, UnixListenFd);
    }

    std::vector<uint64_t> ToClose;
    for (auto &[Idx, Id] : ConnSlots) {
      auto It = S.Conns.find(Id);
      if (It == S.Conns.end())
        continue;
      Conn &C = It->second;
      if (S.Poll.errored(Idx)) {
        ToClose.push_back(Id);
        continue;
      }
      if (S.Poll.readable(Idx) && !C.CloseAfterFlush) {
        if (!serviceRead(S, Id, C)) {
          ToClose.push_back(Id);
          continue;
        }
      }
      if (!flushWrites(C))
        ToClose.push_back(Id);
    }
    // Flush anything the response-shipping step added to connections
    // that were not otherwise ready this round.
    for (auto &[Id, C] : S.Conns) {
      if (C.WritePos < C.WriteBuf.size() || C.CloseAfterFlush)
        if (!flushWrites(C))
          ToClose.push_back(Id);
    }
    for (uint64_t Id : ToClose)
      closeConn(S, Id);

    if (Draining) {
      // Each shard drains independently: its own queue empty, its
      // workers' in-flight count zero, its responses flushed.
      bool QueueEmpty;
      {
        std::lock_guard<std::mutex> Lock(S.QueueMu);
        QueueEmpty = S.Queue.empty();
      }
      bool RespEmpty;
      {
        std::lock_guard<std::mutex> Lock(S.RespMu);
        RespEmpty = S.Responses.empty();
      }
      bool Flushed = true;
      for (auto &[Id, C] : S.Conns)
        if (C.WritePos < C.WriteBuf.size())
          Flushed = false;
      bool Done =
          QueueEmpty && S.InFlight.load() == 0 && RespEmpty && Flushed;
      if (Done || Clock::now() >= DrainDeadline) {
        std::vector<uint64_t> All;
        for (auto &[Id, C] : S.Conns)
          All.push_back(Id);
        for (uint64_t Id : All)
          closeConn(S, Id);
        return;
      }
    }
  }
}

void Server::acceptOn(Shard &S, int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // EAGAIN (including another shard winning the race on a shared
      // listener) or a transient accept error: poll again later.
      return;
    }
    net::setNonBlocking(Fd, true);
    Conn C;
    C.Fd = Fd;
    // Connection ids carry their shard in the top bits, so a worker
    // can route its response back to the owning loop.
    uint64_t Id = ((uint64_t)S.Id << 48) | (S.NextConnSeq++);
    S.Conns.emplace(Id, std::move(C));
    S.ActiveConns.store(S.Conns.size(), std::memory_order_relaxed);
    Metrics.onConnection(S.Id);
  }
}

bool Server::serviceRead(Shard &S, uint64_t ConnId, Conn &C) {
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Decoder.feed(Buf, (size_t)N);
      if ((size_t)N < sizeof(Buf))
        break;
      continue;
    }
    if (N == 0) {
      // Peer finished sending. Process what we have, answer it, then
      // close once the write buffer flushes.
      C.CloseAfterFlush = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    return false; // hard socket error
  }

  net::Frame F;
  for (;;) {
    net::FrameDecoder::Status St = C.Decoder.next(F);
    if (St == net::FrameDecoder::Status::NeedMore)
      break;
    if (St == net::FrameDecoder::Status::Error) {
      // Malformed stream: tell the client why, then hang up. Never
      // try to resynchronize a corrupt framing layer.
      Metrics.onProtocolError(S.Id);
      ErrorResponse E{"malformed frame: " + C.Decoder.error()};
      queueResponse(C, (uint8_t)MsgType::ErrorResp,
                    encodeErrorResponse(E));
      C.CloseAfterFlush = true;
      break;
    }
    if (!handleFrame(S, ConnId, C, F))
      return false;
    if (C.CloseAfterFlush)
      break;
  }
  return true;
}

bool Server::handleFrame(Shard &S, uint64_t ConnId, Conn &C,
                         const net::Frame &F) {
  switch ((MsgType)F.Type) {
  case MsgType::ExecuteReq:
  case MsgType::CompileReq: {
    Work W;
    W.ConnId = ConnId;
    W.Type = (MsgType)F.Type;
    if (!decodeExecuteRequest(F.Payload, &W.Req)) {
      Metrics.onProtocolError(S.Id);
      ErrorResponse E{"malformed request payload"};
      queueResponse(C, (uint8_t)MsgType::ErrorResp,
                    encodeErrorResponse(E));
      C.CloseAfterFlush = true;
      return true;
    }
    if (Stopping.load()) {
      Metrics.onBusy(S.Id);
      ErrorResponse E{"server draining; retry elsewhere"};
      queueResponse(C, (uint8_t)MsgType::BusyResp,
                    encodeErrorResponse(E));
      return true;
    }
    W.Enqueued = Clock::now();
    {
      std::lock_guard<std::mutex> Lock(S.QueueMu);
      if (S.Queue.size() >= Config.QueueCap) {
        Metrics.onBusy(S.Id);
        ErrorResponse E{"queue full; retry"};
        queueResponse(C, (uint8_t)MsgType::BusyResp,
                      encodeErrorResponse(E));
        return true;
      }
      S.Queue.push_back(std::move(W));
      Metrics.onEnqueue(S.Id, S.Queue.size());
    }
    S.QueueCv.notify_one();
    return true;
  }
  case MsgType::StatsReq:
    Metrics.onStatsReq(S.Id);
    queueResponse(C, (uint8_t)MsgType::StatsResp, statsJson());
    return true;
  case MsgType::PingReq:
    Metrics.onPing(S.Id);
    queueResponse(C, (uint8_t)MsgType::PingResp, "");
    return true;
  default: {
    // Unknown or response-typed frame from a client: diagnostic, then
    // close — the stream's intent is unknowable.
    Metrics.onProtocolError(S.Id);
    char Msg[64];
    std::snprintf(Msg, sizeof(Msg), "unexpected frame type 0x%02x",
                  F.Type);
    ErrorResponse E{Msg};
    queueResponse(C, (uint8_t)MsgType::ErrorResp, encodeErrorResponse(E));
    C.CloseAfterFlush = true;
    return true;
  }
  }
}

void Server::queueResponse(Conn &C, uint8_t Type,
                           const std::string &Payload) {
  C.WriteBuf += net::encodeFrame(Type, Payload);
}

bool Server::flushWrites(Conn &C) {
  while (C.WritePos < C.WriteBuf.size()) {
    ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WritePos,
                       C.WriteBuf.size() - C.WritePos, MSG_NOSIGNAL);
    if (N > 0) {
      C.WritePos += (size_t)N;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true; // poll will report writability
    return false;  // peer gone
  }
  C.WriteBuf.clear();
  C.WritePos = 0;
  return !C.CloseAfterFlush;
}

void Server::closeConn(Shard &S, uint64_t ConnId) {
  auto It = S.Conns.find(ConnId);
  if (It == S.Conns.end())
    return;
  // Tell the poller first: with the epoll backend, a later connection
  // could reuse this fd number and be mistaken for a live
  // registration (see Poller::forget).
  S.Poll.forget(It->second.Fd);
  net::closeFd(It->second.Fd);
  S.Conns.erase(It);
  S.ActiveConns.store(S.Conns.size(), std::memory_order_relaxed);
  Metrics.onDisconnect(S.Id);
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(int WorkerId) {
  // Workers are pinned round-robin to shards; each drains only its
  // own shard's queue, so queue contention never crosses shards.
  Shard &S = *Shards[(size_t)WorkerId % Shards.size()];
  exec::Executor &Ex = *Execs[(size_t)WorkerId];
  for (;;) {
    Work W;
    {
      std::unique_lock<std::mutex> Lock(S.QueueMu);
      // wait_for rather than wait: requestStop() from a signal
      // handler cannot safely notify a condition variable, so poll
      // the flag at a coarse interval as the fallback wakeup.
      S.QueueCv.wait_for(Lock, std::chrono::milliseconds(100), [&] {
        return Stopping.load() || !S.Queue.empty();
      });
      if (S.Queue.empty()) {
        if (Stopping.load())
          return;
        continue;
      }
      W = std::move(S.Queue.front());
      S.Queue.pop_front();
      S.InFlight.fetch_add(1);
    }

    double QueueMs = msSince(W.Enqueued);
    auto T0 = Clock::now();
    double CompileMs = 0, ExecuteMs = 0;
    bool IsExecute = W.Type == MsgType::ExecuteReq;
    ExecuteResponse R = Ex.run(W.Req, IsExecute, &CompileMs, &ExecuteMs);
    double TotalMs = msSince(T0);

    std::string Payload;
    uint8_t Type;
    if (IsExecute) {
      Type = (uint8_t)MsgType::ExecuteResp;
      Payload = encodeExecuteResponse(R);
    } else {
      CompileResponse CR;
      CR.O = R.O == Outcome::CompileError ? R.O : Outcome::Ok;
      CR.Message = R.O == Outcome::CompileError ? R.Message : "";
      CR.CacheHit = R.CacheHit;
      CR.CompileMs = CompileMs;
      CR.TimingsJson = R.TimingsJson;
      Type = (uint8_t)MsgType::CompileResp;
      Payload = encodeCompileResponse(CR);
    }

    Metrics.onRequestDone(WorkerId, IsExecute, R.O, R.CacheHit, CompileMs,
                          ExecuteMs, TotalMs, QueueMs, R.Instrs, R.GcMinor,
                          R.GcMajor, R.GcPauseNs);
    {
      std::lock_guard<std::mutex> Lock(S.RespMu);
      S.Responses.push_back({W.ConnId, net::encodeFrame(Type, Payload)});
    }
    S.InFlight.fetch_sub(1);
    wakeShard(S);
  }
}

//===----------------------------------------------------------------------===//
// STATS
//===----------------------------------------------------------------------===//

std::string Server::statsJson() const {
  std::string CacheJson;
  if (BytecodeCache *Cache = Service->cache()) {
    CacheStats CS = Cache->stats();
    uint64_t Probes = CS.Hits + CS.Misses;
    double HitPct = Probes ? 100.0 * (double)CS.Hits / (double)Probes : 0;
    char Buf[384];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"hits\":%llu,\"misses\":%llu,\"stores\":%llu,"
        "\"hit_rate_pct\":%.1f,\"corrupt_evictions\":%llu,"
        "\"version_evictions\":%llu,\"capacity_evictions\":%llu,"
        "\"disk_bytes\":%llu,\"max_bytes\":%llu,"
        "\"shared_bodies\":%llu,\"cache_bytes_saved\":%llu}",
        (unsigned long long)CS.Hits, (unsigned long long)CS.Misses,
        (unsigned long long)CS.Stores, HitPct,
        (unsigned long long)CS.CorruptEvictions,
        (unsigned long long)CS.VersionEvictions,
        (unsigned long long)CS.CapacityEvictions,
        (unsigned long long)Cache->diskBytes(),
        (unsigned long long)Cache->maxBytes(),
        (unsigned long long)CS.SharedBodies,
        (unsigned long long)CS.CacheBytesSaved);
    CacheJson = Buf;
  }

  // Mono section: monomorphization/sharing totals across every
  // front-end run any worker performed. Relaxed atomics, safe to
  // sample here; cache and pool hits contribute nothing (by design —
  // their front-end never ran).
  std::string MonoJson;
  {
    uint64_t Compiles = 0, FnsBefore = 0, FnsAfter = 0, Bodies = 0;
    bool ShareOn = false;
    for (const auto &E : Execs) {
      const exec::MonoShareCounters &MS = E->monoStats();
      Compiles += MS.Compiles.load(std::memory_order_relaxed);
      ShareOn |= MS.ShareEnabled.load(std::memory_order_relaxed);
      FnsBefore += MS.FunctionsBefore.load(std::memory_order_relaxed);
      FnsAfter += MS.FunctionsAfter.load(std::memory_order_relaxed);
      Bodies += MS.BodiesShared.load(std::memory_order_relaxed);
    }
    double Ratio = FnsAfter ? (double)FnsBefore / (double)FnsAfter : 1.0;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"share_enabled\":%s,\"compiles\":%llu,"
                  "\"functions_before_share\":%llu,"
                  "\"functions_after_share\":%llu,"
                  "\"bodies_shared\":%llu,\"share_ratio\":%.2f}",
                  ShareOn ? "true" : "false",
                  (unsigned long long)Compiles,
                  (unsigned long long)FnsBefore,
                  (unsigned long long)FnsAfter,
                  (unsigned long long)Bodies, Ratio);
    MonoJson = Buf;
  }

  // Opt section: optimizer totals (escape analysis / scalar
  // replacement and devirtualization) across every front-end run any
  // worker performed. Same sampling discipline as the mono section.
  std::string OptJson;
  {
    uint64_t Allocs = 0, Fields = 0, Closures = 0, Devirt = 0, Cha = 0;
    uint64_t Phis = 0, Sccp = 0, Loads = 0, Stores = 0, Nulls = 0;
    uint64_t DevirtUs = 0, InlineUs = 0, FoldUs = 0, CopyPropUs = 0,
             DceUs = 0, EscapeUs = 0, DeadFieldsUs = 0, SsaUs = 0;
    bool EscapeOn = false, SsaOn = false;
    for (const auto &E : Execs) {
      const exec::OptCounters &OC = E->optStats();
      EscapeOn |= OC.EscapeEnabled.load(std::memory_order_relaxed);
      SsaOn |= OC.SsaEnabled.load(std::memory_order_relaxed);
      Allocs += OC.AllocsElided.load(std::memory_order_relaxed);
      Fields += OC.FieldsScalarized.load(std::memory_order_relaxed);
      Closures += OC.ClosuresFlattened.load(std::memory_order_relaxed);
      Devirt += OC.CallsDevirtualized.load(std::memory_order_relaxed);
      Cha += OC.DevirtualizedByCha.load(std::memory_order_relaxed);
      Phis += OC.PhisPlaced.load(std::memory_order_relaxed);
      Sccp += OC.SccpFolded.load(std::memory_order_relaxed);
      Loads += OC.LoadsEliminated.load(std::memory_order_relaxed);
      Stores += OC.StoresKilled.load(std::memory_order_relaxed);
      Nulls += OC.NullChecksRemoved.load(std::memory_order_relaxed);
      DevirtUs += OC.DevirtUs.load(std::memory_order_relaxed);
      InlineUs += OC.InlineUs.load(std::memory_order_relaxed);
      FoldUs += OC.FoldUs.load(std::memory_order_relaxed);
      CopyPropUs += OC.CopyPropUs.load(std::memory_order_relaxed);
      DceUs += OC.DceUs.load(std::memory_order_relaxed);
      EscapeUs += OC.EscapeUs.load(std::memory_order_relaxed);
      DeadFieldsUs += OC.DeadFieldsUs.load(std::memory_order_relaxed);
      SsaUs += OC.SsaUs.load(std::memory_order_relaxed);
    }
    char Buf[1024];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"escape_enabled\":%s,\"ssa_enabled\":%s,"
                  "\"allocs_elided\":%llu,"
                  "\"fields_scalarized\":%llu,"
                  "\"closures_flattened\":%llu,"
                  "\"devirtualized\":%llu,"
                  "\"devirtualized_by_cha\":%llu,"
                  "\"phis_placed\":%llu,\"sccp_folded\":%llu,"
                  "\"loads_eliminated\":%llu,\"stores_killed\":%llu,"
                  "\"null_checks_removed\":%llu,"
                  "\"pass_ms\":{\"devirt\":%.3f,\"inline\":%.3f,"
                  "\"fold\":%.3f,\"copyprop\":%.3f,\"dce\":%.3f,"
                  "\"escape\":%.3f,\"deadfields\":%.3f,\"ssa\":%.3f}}",
                  EscapeOn ? "true" : "false", SsaOn ? "true" : "false",
                  (unsigned long long)Allocs, (unsigned long long)Fields,
                  (unsigned long long)Closures,
                  (unsigned long long)Devirt, (unsigned long long)Cha,
                  (unsigned long long)Phis, (unsigned long long)Sccp,
                  (unsigned long long)Loads, (unsigned long long)Stores,
                  (unsigned long long)Nulls,
                  DevirtUs / 1000.0, InlineUs / 1000.0, FoldUs / 1000.0,
                  CopyPropUs / 1000.0, DceUs / 1000.0, EscapeUs / 1000.0,
                  DeadFieldsUs / 1000.0, SsaUs / 1000.0);
    OptJson = Buf;
  }

  // Jit section: baseline-JIT tier totals across every request VM any
  // worker ran (per-run deltas summed, so pooled VMs with warm code
  // don't double-count). Same sampling discipline as the mono section.
  std::string JitJson;
  {
    uint64_t Compiles = 0, Failures = 0, CompileNs = 0, CodeBytes = 0;
    uint64_t Enters = 0, Osr = 0, Deopts = 0, Patches = 0, Mega = 0;
    bool Avail = false, Enabled = false;
    for (const auto &E : Execs) {
      const exec::JitCounters &JC = E->jitStats();
      Avail |= JC.Available.load(std::memory_order_relaxed);
      Enabled |= JC.Enabled.load(std::memory_order_relaxed);
      Compiles += JC.Compiles.load(std::memory_order_relaxed);
      Failures += JC.CompileFailures.load(std::memory_order_relaxed);
      CompileNs += JC.CompileNs.load(std::memory_order_relaxed);
      CodeBytes += JC.CodeBytes.load(std::memory_order_relaxed);
      Enters += JC.Enters.load(std::memory_order_relaxed);
      Osr += JC.OsrEntries.load(std::memory_order_relaxed);
      Deopts += JC.Deopts.load(std::memory_order_relaxed);
      Patches += JC.IcPatches.load(std::memory_order_relaxed);
      Mega += JC.IcMegamorphic.load(std::memory_order_relaxed);
    }
    const char *Mode = Config.VmJit == VmOptions::JitMode::On    ? "on"
                       : Config.VmJit == VmOptions::JitMode::Off ? "off"
                                                                 : "auto";
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"mode\":\"%s\",\"threshold\":%u,"
                  "\"available\":%s,\"enabled\":%s,"
                  "\"compiles\":%llu,\"compile_failures\":%llu,"
                  "\"compile_ns\":%llu,\"code_bytes\":%llu,"
                  "\"enters\":%llu,\"osr_entries\":%llu,"
                  "\"deopts\":%llu,\"ic_patches\":%llu,"
                  "\"ic_megamorphic\":%llu}",
                  Mode, Config.VmJitThreshold, Avail ? "true" : "false",
                  Enabled ? "true" : "false",
                  (unsigned long long)Compiles,
                  (unsigned long long)Failures,
                  (unsigned long long)CompileNs,
                  (unsigned long long)CodeBytes,
                  (unsigned long long)Enters, (unsigned long long)Osr,
                  (unsigned long long)Deopts,
                  (unsigned long long)Patches, (unsigned long long)Mega);
    JitJson = Buf;
  }

  // Exec section: warm-VM pool totals across workers + the front-end
  // shape. Pool stats are relaxed atomics, safe to sample here.
  std::string ExecJson;
  {
    uint64_t Hits = 0, Misses = 0, Evictions = 0, Drops = 0, Resident = 0;
    for (const auto &E : Execs) {
      const exec::VmPoolStats &PS = E->poolStats();
      Hits += PS.Hits.load(std::memory_order_relaxed);
      Misses += PS.Misses.load(std::memory_order_relaxed);
      Evictions += PS.Evictions.load(std::memory_order_relaxed);
      Drops += PS.Drops.load(std::memory_order_relaxed);
      Resident += PS.Resident.load(std::memory_order_relaxed);
    }
    uint64_t Probes = Hits + Misses;
    double HitPct = Probes ? 100.0 * (double)Hits / (double)Probes : 0;
    const char *Backend =
        Shards.empty() ? (net::Poller::epollAvailable() ? "epoll" : "poll")
                       : Shards.front()->Poll.backendName();
    char Buf[384];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"io_threads\":%zu,\"poller\":\"%s\",\"vm_pool\":{"
        "\"enabled\":%s,\"per_worker_cap\":%d,\"resident\":%llu,"
        "\"hits\":%llu,\"misses\":%llu,\"hit_rate_pct\":%.1f,"
        "\"evictions\":%llu,\"drops\":%llu}}",
        Shards.empty() ? (size_t)Config.IoThreads : Shards.size(), Backend,
        Config.VmPool ? "true" : "false", Config.VmPoolSize,
        (unsigned long long)Resident, (unsigned long long)Hits,
        (unsigned long long)Misses, HitPct, (unsigned long long)Evictions,
        (unsigned long long)Drops);
    ExecJson = Buf;
  }

  size_t Depth = 0, Active = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->QueueMu);
    Depth += S->Queue.size();
  }
  for (const auto &S : Shards)
    Active += S->ActiveConns.load(std::memory_order_relaxed);
  size_t Cap = Config.QueueCap * (Shards.empty() ? 1 : Shards.size());
  return Metrics.toJson(msSince(StartTime), Depth, Cap, Active, CacheJson,
                        ExecJson, MonoJson, OptJson, JitJson);
}
