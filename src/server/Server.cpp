//===- server/Server.cpp --------------------------------------------------===//

#include "server/Server.h"

#include "net/Poller.h"
#include "net/Socket.h"
#include "vm/Vm.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace virgil;
using namespace virgil::server;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Effective quota: the request's value clamped to the server maximum,
/// or the server default when the request passes 0.
uint64_t clampQuota(uint64_t Requested, uint64_t Default, uint64_t Max) {
  if (Requested == 0)
    return Default;
  return Requested < Max ? Requested : Max;
}

Outcome outcomeForTrap(VmTrapCause Cause) {
  switch (Cause) {
  case VmTrapCause::Fuel:
    return Outcome::Fuel;
  case VmTrapCause::Heap:
    return Outcome::Heap;
  case VmTrapCause::Deadline:
    return Outcome::Deadline;
  case VmTrapCause::None:
  case VmTrapCause::Program:
    break;
  }
  return Outcome::Trap;
}

} // namespace

Server::Server(ServerConfig C)
    : Config(std::move(C)),
      Metrics(Config.Workers > 0 ? Config.Workers : 1) {
  if (Config.Workers <= 0)
    Config.Workers = 1;
  ServiceOptions SO;
  SO.Jobs = 1; // workers call compileOne directly; no inner pool
  SO.CacheDir = Config.CacheDir;
  SO.CacheMaxBytes = Config.CacheMaxBytes;
  SO.Compile = Config.Compile;
  Service = std::make_unique<CompileService>(SO);
}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  if (Started.load())
    return true;
  if (Config.UnixPath.empty() && Config.TcpPort < 0) {
    if (Err)
      *Err = "no listener configured (need a unix path or tcp port)";
    return false;
  }
  if (!Config.UnixPath.empty()) {
    UnixListenFd = net::listenUnix(Config.UnixPath, Err);
    if (UnixListenFd < 0)
      return false;
    net::setNonBlocking(UnixListenFd, true);
  }
  if (Config.TcpPort >= 0) {
    TcpListenFd = net::listenTcp(Config.TcpHost, (uint16_t)Config.TcpPort,
                                 Err, &BoundTcpPort);
    if (TcpListenFd < 0) {
      net::closeFd(UnixListenFd);
      UnixListenFd = -1;
      return false;
    }
    net::setNonBlocking(TcpListenFd, true);
  }
  if (::pipe(WakePipe) != 0) {
    if (Err)
      *Err = std::string("pipe: ") + std::strerror(errno);
    net::closeFd(UnixListenFd);
    net::closeFd(TcpListenFd);
    UnixListenFd = TcpListenFd = -1;
    return false;
  }
  net::setNonBlocking(WakePipe[0], true);
  net::setNonBlocking(WakePipe[1], true);

  StartTime = Clock::now();
  Started.store(true);
  LoopThread = std::thread([this] { eventLoop(); });
  WorkerThreads.reserve((size_t)Config.Workers);
  for (int W = 0; W != Config.Workers; ++W)
    WorkerThreads.emplace_back([this, W] { workerLoop(W); });
  return true;
}

void Server::requestStop() {
  Stopping.store(true);
  if (WakePipe[1] >= 0) {
    char B = 1;
    // Async-signal-safe: just a write; EAGAIN means the loop is
    // already due to wake.
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Server::stop() {
  if (!Started.load() || Joined)
    return;
  requestStop();
  QueueCv.notify_all();
  if (LoopThread.joinable())
    LoopThread.join();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  Joined = true;
  net::closeFd(UnixListenFd);
  net::closeFd(TcpListenFd);
  net::closeFd(WakePipe[0]);
  net::closeFd(WakePipe[1]);
  UnixListenFd = TcpListenFd = WakePipe[0] = WakePipe[1] = -1;
  if (!Config.UnixPath.empty())
    ::unlink(Config.UnixPath.c_str());
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

void Server::wakeLoop() {
  char B = 1;
  (void)!::write(WakePipe[1], &B, 1);
}

void Server::eventLoop() {
  net::Poller Poll;
  bool DrainArmed = false;
  Clock::time_point DrainDeadline;

  for (;;) {
    bool Draining = Stopping.load();
    if (Draining && !DrainArmed) {
      DrainArmed = true;
      // Workers are bounded by per-request deadlines, so the drain
      // converges; the cap protects against a client that never reads
      // its responses.
      DrainDeadline =
          Clock::now() +
          std::chrono::milliseconds(Config.MaxDeadlineMs + 5000);
    }

    Poll.clear();
    size_t TcpIdx = (size_t)-1, UnixIdx = (size_t)-1;
    if (!Draining) {
      if (TcpListenFd >= 0)
        TcpIdx = Poll.add(TcpListenFd);
      if (UnixListenFd >= 0)
        UnixIdx = Poll.add(UnixListenFd);
    }
    Poll.add(WakePipe[0]);
    std::vector<std::pair<size_t, uint64_t>> ConnSlots;
    ConnSlots.reserve(Conns.size());
    for (auto &[Id, C] : Conns) {
      bool WantWrite = C.WritePos < C.WriteBuf.size();
      ConnSlots.emplace_back(Poll.add(C.Fd, WantWrite), Id);
    }

    Poll.wait(100);

    // Drain the wakeup pipe (edge interest is level-triggered here,
    // but the byte count is meaningless — it is only a doorbell).
    char Junk[256];
    while (::read(WakePipe[0], Junk, sizeof(Junk)) > 0) {
    }

    // Ship worker responses to their connections (the conn may have
    // gone away; that just drops the bytes).
    {
      std::vector<Response> Ready;
      {
        std::lock_guard<std::mutex> Lock(RespMu);
        Ready.swap(Responses);
      }
      for (Response &R : Ready) {
        auto It = Conns.find(R.ConnId);
        if (It == Conns.end())
          continue;
        It->second.WriteBuf += R.Bytes;
      }
    }

    if (!Draining) {
      if (TcpIdx != (size_t)-1 && Poll.readable(TcpIdx))
        acceptOn(TcpListenFd);
      if (UnixIdx != (size_t)-1 && Poll.readable(UnixIdx))
        acceptOn(UnixListenFd);
    }

    std::vector<uint64_t> ToClose;
    for (auto &[Idx, Id] : ConnSlots) {
      auto It = Conns.find(Id);
      if (It == Conns.end())
        continue;
      Conn &C = It->second;
      if (Poll.errored(Idx)) {
        ToClose.push_back(Id);
        continue;
      }
      if (Poll.readable(Idx) && !C.CloseAfterFlush) {
        if (!serviceRead(Id, C)) {
          ToClose.push_back(Id);
          continue;
        }
      }
      if (!flushWrites(C))
        ToClose.push_back(Id);
    }
    // Flush anything the response-shipping step added to connections
    // that were not otherwise ready this round.
    for (auto &[Id, C] : Conns) {
      if (C.WritePos < C.WriteBuf.size() || C.CloseAfterFlush)
        if (!flushWrites(C))
          ToClose.push_back(Id);
    }
    for (uint64_t Id : ToClose)
      closeConn(Id);

    if (Draining) {
      bool QueueEmpty;
      {
        std::lock_guard<std::mutex> Lock(QueueMu);
        QueueEmpty = Queue.empty();
      }
      bool RespEmpty;
      {
        std::lock_guard<std::mutex> Lock(RespMu);
        RespEmpty = Responses.empty();
      }
      bool Flushed = true;
      for (auto &[Id, C] : Conns)
        if (C.WritePos < C.WriteBuf.size())
          Flushed = false;
      bool Done = QueueEmpty && InFlight.load() == 0 && RespEmpty &&
                  Flushed;
      if (Done || Clock::now() >= DrainDeadline) {
        std::vector<uint64_t> All;
        for (auto &[Id, C] : Conns)
          All.push_back(Id);
        for (uint64_t Id : All)
          closeConn(Id);
        return;
      }
    }
  }
}

void Server::acceptOn(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or transient accept error: poll again later
    }
    net::setNonBlocking(Fd, true);
    Conn C;
    C.Fd = Fd;
    Conns.emplace(NextConnId++, std::move(C));
    Metrics.onConnection();
  }
}

bool Server::serviceRead(uint64_t ConnId, Conn &C) {
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Decoder.feed(Buf, (size_t)N);
      if ((size_t)N < sizeof(Buf))
        break;
      continue;
    }
    if (N == 0) {
      // Peer finished sending. Process what we have, answer it, then
      // close once the write buffer flushes.
      C.CloseAfterFlush = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    return false; // hard socket error
  }

  net::Frame F;
  for (;;) {
    net::FrameDecoder::Status S = C.Decoder.next(F);
    if (S == net::FrameDecoder::Status::NeedMore)
      break;
    if (S == net::FrameDecoder::Status::Error) {
      // Malformed stream: tell the client why, then hang up. Never
      // try to resynchronize a corrupt framing layer.
      Metrics.onProtocolError();
      ErrorResponse E{"malformed frame: " + C.Decoder.error()};
      queueResponse(C, (uint8_t)MsgType::ErrorResp,
                    encodeErrorResponse(E));
      C.CloseAfterFlush = true;
      break;
    }
    if (!handleFrame(ConnId, C, F))
      return false;
    if (C.CloseAfterFlush)
      break;
  }
  return true;
}

bool Server::handleFrame(uint64_t ConnId, Conn &C, const net::Frame &F) {
  switch ((MsgType)F.Type) {
  case MsgType::ExecuteReq:
  case MsgType::CompileReq: {
    Work W;
    W.ConnId = ConnId;
    W.Type = (MsgType)F.Type;
    if (!decodeExecuteRequest(F.Payload, &W.Req)) {
      Metrics.onProtocolError();
      ErrorResponse E{"malformed request payload"};
      queueResponse(C, (uint8_t)MsgType::ErrorResp,
                    encodeErrorResponse(E));
      C.CloseAfterFlush = true;
      return true;
    }
    if (Stopping.load()) {
      Metrics.onBusy();
      ErrorResponse E{"server draining; retry elsewhere"};
      queueResponse(C, (uint8_t)MsgType::BusyResp,
                    encodeErrorResponse(E));
      return true;
    }
    W.Enqueued = Clock::now();
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      if (Queue.size() >= Config.QueueCap) {
        Metrics.onBusy();
        ErrorResponse E{"queue full; retry"};
        queueResponse(C, (uint8_t)MsgType::BusyResp,
                      encodeErrorResponse(E));
        return true;
      }
      Queue.push_back(std::move(W));
      Metrics.onEnqueue(Queue.size());
    }
    QueueCv.notify_one();
    return true;
  }
  case MsgType::StatsReq:
    Metrics.onStatsReq();
    queueResponse(C, (uint8_t)MsgType::StatsResp, statsJson());
    return true;
  case MsgType::PingReq:
    Metrics.onPing();
    queueResponse(C, (uint8_t)MsgType::PingResp, "");
    return true;
  default: {
    // Unknown or response-typed frame from a client: diagnostic, then
    // close — the stream's intent is unknowable.
    Metrics.onProtocolError();
    char Msg[64];
    std::snprintf(Msg, sizeof(Msg), "unexpected frame type 0x%02x",
                  F.Type);
    ErrorResponse E{Msg};
    queueResponse(C, (uint8_t)MsgType::ErrorResp, encodeErrorResponse(E));
    C.CloseAfterFlush = true;
    return true;
  }
  }
}

void Server::queueResponse(Conn &C, uint8_t Type,
                           const std::string &Payload) {
  C.WriteBuf += net::encodeFrame(Type, Payload);
}

bool Server::flushWrites(Conn &C) {
  while (C.WritePos < C.WriteBuf.size()) {
    ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WritePos,
                       C.WriteBuf.size() - C.WritePos, MSG_NOSIGNAL);
    if (N > 0) {
      C.WritePos += (size_t)N;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true; // poll will report writability
    return false;  // peer gone
  }
  C.WriteBuf.clear();
  C.WritePos = 0;
  return !C.CloseAfterFlush;
}

void Server::closeConn(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  net::closeFd(It->second.Fd);
  Conns.erase(It);
  Metrics.onDisconnect();
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void Server::workerLoop(int WorkerId) {
  for (;;) {
    Work W;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      // wait_for rather than wait: requestStop() from a signal
      // handler cannot safely notify a condition variable, so poll
      // the flag at a coarse interval as the fallback wakeup.
      QueueCv.wait_for(Lock, std::chrono::milliseconds(100), [this] {
        return Stopping.load() || !Queue.empty();
      });
      if (Queue.empty()) {
        if (Stopping.load())
          return;
        continue;
      }
      W = std::move(Queue.front());
      Queue.pop_front();
      InFlight.fetch_add(1);
    }

    double QueueMs = msSince(W.Enqueued);
    auto T0 = Clock::now();
    double CompileMs = 0, ExecuteMs = 0;
    ExecuteResponse R = runRequest(W.Req, &CompileMs, &ExecuteMs);
    double TotalMs = msSince(T0);

    bool IsExecute = W.Type == MsgType::ExecuteReq;
    std::string Payload;
    uint8_t Type;
    if (IsExecute) {
      Type = (uint8_t)MsgType::ExecuteResp;
      Payload = encodeExecuteResponse(R);
    } else {
      CompileResponse CR;
      CR.O = R.O == Outcome::CompileError ? R.O : Outcome::Ok;
      CR.Message = R.O == Outcome::CompileError ? R.Message : "";
      CR.CacheHit = R.CacheHit;
      CR.CompileMs = CompileMs;
      CR.TimingsJson = R.TimingsJson;
      Type = (uint8_t)MsgType::CompileResp;
      Payload = encodeCompileResponse(CR);
    }

    Metrics.onRequestDone(WorkerId, IsExecute, R.O, R.CacheHit, CompileMs,
                          ExecuteMs, TotalMs, QueueMs, R.Instrs, R.GcMinor,
                          R.GcMajor, R.GcPauseNs);
    {
      std::lock_guard<std::mutex> Lock(RespMu);
      Responses.push_back(
          {W.ConnId, net::encodeFrame(Type, Payload)});
    }
    InFlight.fetch_sub(1);
    wakeLoop();
  }
}

ExecuteResponse Server::runRequest(const ExecuteRequest &Req,
                                   double *CompileMs, double *ExecuteMs) {
  ExecuteResponse R;

  auto C0 = Clock::now();
  CompileJob Job;
  Job.Name = Req.Name.empty() ? "<request>" : Req.Name;
  Job.Source = Req.Source;
  JobResult JR = Service->compileOne(Job);
  *CompileMs = msSince(C0);
  R.CompileMs = *CompileMs;
  R.CacheHit = JR.CacheHit;
  R.TimingsJson = JR.CacheHit ? "{}" : JR.Timings.toJson();
  if (!JR.Ok) {
    R.O = Outcome::CompileError;
    R.Message = JR.Error;
    return R;
  }

  VmOptions VO;
  VO.MaxInstrs =
      clampQuota(Req.Fuel, Config.DefaultFuel, Config.MaxFuel);
  VO.MaxHeapBytes = clampQuota(Req.HeapBytes, Config.DefaultHeapBytes,
                               Config.MaxHeapBytes);
  VO.DeadlineMs = (uint32_t)clampQuota(
      Req.DeadlineMs, Config.DefaultDeadlineMs, Config.MaxDeadlineMs);
  VO.Generational = Config.VmGenerational;
  VO.NurseryBytes = Config.VmNurseryBytes;

  auto E0 = Clock::now();
  Vm V(JR.Unit->bytecode(), VO);
  VmResult VR = V.run();
  *ExecuteMs = msSince(E0);
  R.ExecuteMs = *ExecuteMs;
  R.Instrs = VR.Counters.Instrs;
  R.GcMinor = VR.Heap.MinorCollections;
  R.GcMajor = VR.Heap.MajorCollections;
  R.GcPauseNs = VR.Heap.MinorPauses.SumNs + VR.Heap.MajorPauses.SumNs;
  R.Output = std::move(VR.Output);
  // Keep responses far below the frame cap even for print-heavy
  // programs: the wire is a control plane, not a log shipper.
  constexpr size_t kMaxOutput = 1u << 20;
  if (R.Output.size() > kMaxOutput) {
    R.Output.resize(kMaxOutput);
    R.Output += "\n...[output truncated]\n";
  }
  if (VR.Trapped) {
    R.O = outcomeForTrap(VR.Cause);
    R.Message = VR.TrapMessage;
  } else {
    R.HasResult = VR.HasResult;
    R.ResultBits = VR.ResultBits;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// STATS
//===----------------------------------------------------------------------===//

std::string Server::statsJson() const {
  std::string CacheJson;
  if (BytecodeCache *Cache = Service->cache()) {
    CacheStats CS = Cache->stats();
    uint64_t Probes = CS.Hits + CS.Misses;
    double HitPct = Probes ? 100.0 * (double)CS.Hits / (double)Probes : 0;
    char Buf[384];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"hits\":%llu,\"misses\":%llu,\"stores\":%llu,"
        "\"hit_rate_pct\":%.1f,\"corrupt_evictions\":%llu,"
        "\"version_evictions\":%llu,\"capacity_evictions\":%llu,"
        "\"disk_bytes\":%llu,\"max_bytes\":%llu}",
        (unsigned long long)CS.Hits, (unsigned long long)CS.Misses,
        (unsigned long long)CS.Stores, HitPct,
        (unsigned long long)CS.CorruptEvictions,
        (unsigned long long)CS.VersionEvictions,
        (unsigned long long)CS.CapacityEvictions,
        (unsigned long long)Cache->diskBytes(),
        (unsigned long long)Cache->maxBytes());
    CacheJson = Buf;
  }
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
  }
  return Metrics.toJson(msSince(StartTime), Depth, Config.QueueCap,
                        Conns.size(), CacheJson);
}
