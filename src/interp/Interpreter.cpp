//===- interp/Interpreter.cpp ---------------------------------------------===//

#include "interp/Interpreter.h"

#include <cassert>
#include <unordered_map>

using namespace virgil;

namespace {
/// Internal unwind signal for traps; never escapes this file.
struct TrapUnwind {
  TrapKind Kind;
  std::string Message;
};
} // namespace

Interpreter::Interpreter(IrModule &M)
    : M(M), Types(*M.Types), Rels(*M.Types) {}

void Interpreter::trap(TrapKind Kind, const std::string &Extra) {
  std::string Msg = trapKindName(Kind);
  if (!Extra.empty())
    Msg += ": " + Extra;
  throw TrapUnwind{Kind, std::move(Msg)};
}

//===----------------------------------------------------------------------===//
// Types at runtime
//===----------------------------------------------------------------------===//

Type *Interpreter::evalType(Frame &Fr, Type *T) {
  if (!T->isPoly())
    return T;
  ++Counters.TypeSubsts;
  return Types.substitute(T, Fr.Subst);
}

Value Interpreter::defaultOf(Type *T) {
  switch (T->kind()) {
  case TypeKind::Prim:
    switch (cast<PrimType>(T)->prim()) {
    case PrimKind::Void:
      return Value::voidV();
    case PrimKind::Bool:
      return Value::boolV(false);
    case PrimKind::Byte:
      return Value::byteV(0);
    case PrimKind::Int:
      return Value::intV(0);
    }
    break;
  case TypeKind::Class:
  case TypeKind::Array:
  case TypeKind::Function:
    return Value::nullV();
  case TypeKind::Tuple: {
    auto Data = std::make_shared<TupleData>();
    for (Type *E : cast<TupleType>(T)->elems())
      Data->Elems.push_back(defaultOf(E));
    ++Counters.HeapTuples;
    return Value::tuple(std::move(Data));
  }
  case TypeKind::TypeParam:
    assert(false && "default of an unsubstituted type parameter");
    break;
  }
  return Value::voidV();
}

Type *Interpreter::dynTypeOf(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Void:
    return Types.voidTy();
  case Value::Kind::Bool:
    return Types.boolTy();
  case Value::Kind::Byte:
    return Types.byteTy();
  case Value::Kind::Int:
    return Types.intTy();
  case Value::Kind::Object:
    return V.obj()->DynType;
  case Value::Kind::ArrayV:
    return Types.array(V.arr()->ElemType);
  case Value::Kind::Closure:
    return V.clo()->DynType;
  case Value::Kind::TupleV: {
    std::vector<Type *> Elems;
    for (const Value &E : V.tup()->Elems)
      Elems.push_back(dynTypeOf(E));
    return Types.tuple(Elems);
  }
  case Value::Kind::Null:
    return nullptr;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Casts and queries (paper §2.2/§2.3 runtime semantics)
//===----------------------------------------------------------------------===//

bool Interpreter::valueQuery(const Value &V, Type *Target) {
  // null is not "of" any type.
  if (V.isNull())
    return false;
  switch (Target->kind()) {
  case TypeKind::Prim:
    switch (cast<PrimType>(Target)->prim()) {
    case PrimKind::Void:
      return V.kind() == Value::Kind::Void;
    case PrimKind::Bool:
      return V.kind() == Value::Kind::Bool;
    case PrimKind::Byte:
      return V.kind() == Value::Kind::Byte;
    case PrimKind::Int:
      return V.kind() == Value::Kind::Int;
    }
    return false;
  case TypeKind::Tuple: {
    if (V.kind() != Value::Kind::TupleV)
      return false;
    const auto &Elems = cast<TupleType>(Target)->elems();
    const auto &Vals = V.tup()->Elems;
    if (Vals.size() != Elems.size())
      return false;
    for (size_t I = 0; I != Elems.size(); ++I)
      if (!valueQuery(Vals[I], Elems[I]))
        return false;
    return true;
  }
  case TypeKind::Array:
    return V.kind() == Value::Kind::ArrayV &&
           V.arr()->ElemType == cast<ArrayType>(Target)->elem();
  case TypeKind::Class:
    return V.kind() == Value::Kind::Object &&
           Rels.isSubtype(V.obj()->DynType, Target);
  case TypeKind::Function:
    return V.kind() == Value::Kind::Closure &&
           Rels.isSubtype(V.clo()->DynType, Target);
  case TypeKind::TypeParam:
    assert(false && "query against unsubstituted type parameter");
    return false;
  }
  return false;
}

bool Interpreter::valueCast(const Value &V, Type *Target, Value &Out) {
  // Casting null to any nullable type succeeds (queries do not).
  if (V.isNull()) {
    switch (Target->kind()) {
    case TypeKind::Class:
    case TypeKind::Array:
    case TypeKind::Function:
      Out = V;
      return true;
    default:
      return false;
    }
  }
  switch (Target->kind()) {
  case TypeKind::Prim:
    switch (cast<PrimType>(Target)->prim()) {
    case PrimKind::Void:
      if (V.kind() != Value::Kind::Void)
        return false;
      Out = V;
      return true;
    case PrimKind::Bool:
      if (V.kind() != Value::Kind::Bool)
        return false;
      Out = V;
      return true;
    case PrimKind::Byte:
      if (V.kind() == Value::Kind::Byte) {
        Out = V;
        return true;
      }
      // int -> byte conversion: representable values only.
      if (V.kind() == Value::Kind::Int && V.asInt() >= 0 &&
          V.asInt() <= 255) {
        Out = Value::byteV((uint8_t)V.asInt());
        return true;
      }
      return false;
    case PrimKind::Int:
      if (V.kind() == Value::Kind::Int) {
        Out = V;
        return true;
      }
      if (V.kind() == Value::Kind::Byte) {
        Out = Value::intV(V.asByte()); // byte -> int widens.
        return true;
      }
      return false;
    }
    return false;
  case TypeKind::Tuple: {
    if (V.kind() != Value::Kind::TupleV)
      return false;
    const auto &Elems = cast<TupleType>(Target)->elems();
    const auto &Vals = V.tup()->Elems;
    if (Vals.size() != Elems.size())
      return false;
    auto Data = std::make_shared<TupleData>();
    Data->Elems.resize(Vals.size());
    for (size_t I = 0; I != Elems.size(); ++I)
      if (!valueCast(Vals[I], Elems[I], Data->Elems[I]))
        return false;
    ++Counters.HeapTuples;
    Out = Value::tuple(std::move(Data));
    return true;
  }
  case TypeKind::Array:
    if (V.kind() != Value::Kind::ArrayV ||
        V.arr()->ElemType != cast<ArrayType>(Target)->elem())
      return false;
    Out = V;
    return true;
  case TypeKind::Class:
    if (V.kind() != Value::Kind::Object ||
        !Rels.isSubtype(V.obj()->DynType, Target))
      return false;
    Out = V;
    return true;
  case TypeKind::Function:
    if (V.kind() != Value::Kind::Closure ||
        !Rels.isSubtype(V.clo()->DynType, Target))
      return false;
    Out = V;
    return true;
  case TypeKind::TypeParam:
    assert(false && "cast against unsubstituted type parameter");
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Calls and dynamic adaptation (paper §4.1)
//===----------------------------------------------------------------------===//

void Interpreter::adaptArgs(std::vector<Value> &Args, size_t WantParams) {
  ++Counters.AdaptChecks;
  if (Args.size() == WantParams)
    return;
  if (WantParams == 1) {
    // Pack the arguments into one tuple (or the void value).
    ++Counters.AdaptPacks;
    if (Args.empty()) {
      Args.push_back(Value::voidV());
      return;
    }
    auto Data = std::make_shared<TupleData>();
    Data->Elems = std::move(Args);
    ++Counters.HeapTuples;
    Args.clear();
    Args.push_back(Value::tuple(std::move(Data)));
    return;
  }
  if (Args.size() == 1) {
    // Unpack one tuple (or void) value across the parameters.
    ++Counters.AdaptUnpacks;
    Value V = std::move(Args[0]);
    Args.clear();
    if (WantParams == 0)
      return; // A void argument feeding a zero-parameter function.
    if (V.kind() != Value::Kind::TupleV ||
        V.tup()->Elems.size() != WantParams)
      trap(TrapKind::Unreachable, "calling convention mismatch");
    Args = V.tup()->Elems;
    return;
  }
  if (WantParams == 0 && Args.empty())
    return;
  trap(TrapKind::Unreachable, "calling convention mismatch");
}

/// The concrete (dynamic) function type of a closure over \p Fn with
/// the given substitution applied, minus a bound receiver.
static Type *closureDynType(TypeStore &Types, IrFunction *Fn,
                            const TypeSubst &Subst, bool HasBound) {
  std::vector<Type *> Params;
  for (uint32_t I = HasBound ? 1 : 0; I != Fn->NumParams; ++I)
    Params.push_back(Types.substitute(Fn->RegTypes[I], Subst));
  std::vector<Type *> Rets;
  for (Type *R : Fn->RetTypes)
    Rets.push_back(Types.substitute(R, Subst));
  return Types.func(Types.tuple(Params), Types.tuple(Rets));
}

std::vector<Value> Interpreter::invokeClosure(const ClosureData &C,
                                              std::vector<Value> Args) {
  IrFunction *Target = C.Fn;
  std::vector<Type *> TypeArgs = C.TypeArgs;
  if (C.HasBound) {
    adaptArgs(Args, Target->NumParams - 1);
    Args.insert(Args.begin(), *C.Bound);
    return exec(Target, std::move(TypeArgs), std::move(Args));
  }
  if (Target->Slot >= 0 && Target->OwnerClass) {
    // Unbound virtual method (paper b3): dispatch on the first
    // argument's dynamic type.
    adaptArgs(Args, Target->NumParams);
    if (Args.empty() || Args[0].isNull())
      trap(TrapKind::NullDeref);
    const Value &Recv = Args[0];
    IrClass *Dyn = Recv.obj()->Cls;
    IrFunction *Impl = Dyn->VTable[Target->Slot];
    if (!Impl)
      trap(TrapKind::Unreachable, "abstract method");
    std::vector<Type *> ClassArgs;
    // Only generic owners contribute invisible type arguments. Post-mono
    // Defs are fresh non-generic ClassDefs, and after specialization
    // sharing the impl may be a representative whose owner is not on the
    // receiver's chain at all — both cases need (and get) no args.
    if (Impl->OwnerClass && Impl->OwnerClass->Def &&
        !Impl->OwnerClass->Def->TypeParams.empty()) {
      ClassType *At = Rels.superAt(cast<ClassType>(Recv.obj()->DynType),
                                   Impl->OwnerClass->Def);
      assert(At && "dispatch owner not on chain");
      ClassArgs = At->args();
    }
    return exec(Impl, std::move(ClassArgs), std::move(Args));
  }
  adaptArgs(Args, Target->NumParams);
  return exec(Target, std::move(TypeArgs), std::move(Args));
}

Value Interpreter::runBuiltin(int Kind, std::vector<Value> &Args) {
  switch ((int)Kind) {
  case 0: { // Puts
    if (Args[0].isNull())
      trap(TrapKind::NullDeref);
    for (const Value &B : Args[0].arr()->Elems)
      Output.push_back((char)B.asByte());
    return Value::voidV();
  }
  case 1: // Puti
    Output += std::to_string(Args[0].asInt());
    return Value::voidV();
  case 2: // Putc
    Output.push_back((char)Args[0].asByte());
    return Value::voidV();
  case 3: // Ln
    Output.push_back('\n');
    return Value::voidV();
  case 4: // Ticks
    return Value::intV(TickCounter++);
  case 5: { // Error
    std::string Msg;
    if (!Args[0].isNull())
      for (const Value &B : Args[0].arr()->Elems)
        Msg.push_back((char)B.asByte());
    trap(TrapKind::UserError, Msg);
  }
  }
  trap(TrapKind::Unreachable, "unknown builtin");
}

//===----------------------------------------------------------------------===//
// The main execution loop
//===----------------------------------------------------------------------===//

// The interpreter recurses on the C++ stack, so the guest depth guard
// must fire before the host stack runs out. ASan instrumentation
// inflates exec()'s frame by an order of magnitude, so the sanitizer
// build needs a much lower ceiling to trap before a real overflow.
#if defined(__SANITIZE_ADDRESS__)
#define VIRGIL_INTERP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VIRGIL_INTERP_ASAN 1
#endif
#endif
#ifdef VIRGIL_INTERP_ASAN
static constexpr int kMaxInterpDepth = 200;
#elif !defined(__OPTIMIZE__)
// -O0 frames are several times larger than optimized ones; 4000 of
// them overflows a default 8 MiB stack before the guard fires.
static constexpr int kMaxInterpDepth = 1000;
#else
static constexpr int kMaxInterpDepth = 4000;
#endif

std::vector<Value> Interpreter::exec(IrFunction *F,
                                     std::vector<Type *> TypeArgs,
                                     std::vector<Value> Args) {
  if (++Depth > kMaxInterpDepth) {
    --Depth;
    trap(TrapKind::Unreachable, "interpreter stack overflow");
  }
  assert(TypeArgs.size() == F->TypeParams.size() &&
         "type-argument arity mismatch");
  assert(Args.size() == F->NumParams && "argument arity mismatch");
  Frame Fr;
  Fr.F = F;
  Fr.Subst = TypeSubst{F->TypeParams, std::move(TypeArgs)};
  Fr.Regs.resize(F->RegTypes.size());
  for (size_t I = 0; I != Args.size(); ++I)
    Fr.Regs[I] = std::move(Args[I]);

  IrBlock *Block = F->Blocks[0];
  for (;;) {
    IrBlock *Next = nullptr;
    for (IrInstr *I : Block->Instrs) {
      ++Counters.Instrs;
      if (MaxInstrs && Counters.Instrs > MaxInstrs)
        trap(TrapKind::Unreachable, "instruction budget exceeded");
      switch (I->Op) {
      case Opcode::ConstInt:
        Fr.Regs[I->dst()] = Value::intV((int32_t)I->IntConst);
        break;
      case Opcode::ConstByte:
        Fr.Regs[I->dst()] = Value::byteV((uint8_t)I->IntConst);
        break;
      case Opcode::ConstBool:
        Fr.Regs[I->dst()] = Value::boolV(I->IntConst != 0);
        break;
      case Opcode::ConstNull:
        Fr.Regs[I->dst()] = Value::nullV();
        break;
      case Opcode::ConstVoid:
        Fr.Regs[I->dst()] = Value::voidV();
        break;
      case Opcode::ConstString: {
        const std::string &S = M.Strings[I->Index];
        auto Data = std::make_shared<ArrayData>();
        Data->ElemType = Types.byteTy();
        for (char C : S)
          Data->Elems.push_back(Value::byteV((uint8_t)C));
        ++Counters.HeapArrays;
        Fr.Regs[I->dst()] = Value::array(std::move(Data));
        break;
      }
      case Opcode::ConstDefault:
        Fr.Regs[I->dst()] = defaultOf(evalType(Fr, I->Ty));
        break;
      case Opcode::Move:
        Fr.Regs[I->dst()] = Fr.Regs[I->Args[0]];
        break;
      case Opcode::IntAdd:
      case Opcode::IntSub:
      case Opcode::IntMul: {
        int64_t A = Fr.Regs[I->Args[0]].asInt();
        int64_t B = Fr.Regs[I->Args[1]].asInt();
        int64_t R = I->Op == Opcode::IntAdd   ? A + B
                    : I->Op == Opcode::IntSub ? A - B
                                              : A * B;
        Fr.Regs[I->dst()] = Value::intV((int32_t)R);
        break;
      }
      case Opcode::IntDiv:
      case Opcode::IntMod: {
        int64_t A = Fr.Regs[I->Args[0]].asInt();
        int64_t B = Fr.Regs[I->Args[1]].asInt();
        if (B == 0)
          trap(TrapKind::DivByZero);
        int64_t R = I->Op == Opcode::IntDiv ? A / B : A % B;
        Fr.Regs[I->dst()] = Value::intV((int32_t)R);
        break;
      }
      case Opcode::IntNeg:
        Fr.Regs[I->dst()] =
            Value::intV((int32_t)-(int64_t)Fr.Regs[I->Args[0]].asInt());
        break;
      case Opcode::IntLt:
      case Opcode::IntLe:
      case Opcode::IntGt:
      case Opcode::IntGe: {
        const Value &VA = Fr.Regs[I->Args[0]];
        const Value &VB = Fr.Regs[I->Args[1]];
        int64_t A = VA.kind() == Value::Kind::Byte ? VA.asByte()
                                                   : VA.asInt();
        int64_t B = VB.kind() == Value::Kind::Byte ? VB.asByte()
                                                   : VB.asInt();
        bool R = I->Op == Opcode::IntLt   ? A < B
                 : I->Op == Opcode::IntLe ? A <= B
                 : I->Op == Opcode::IntGt ? A > B
                                          : A >= B;
        Fr.Regs[I->dst()] = Value::boolV(R);
        break;
      }
      case Opcode::BoolNot:
        Fr.Regs[I->dst()] = Value::boolV(!Fr.Regs[I->Args[0]].asBool());
        break;
      case Opcode::BoolAnd:
        Fr.Regs[I->dst()] = Value::boolV(Fr.Regs[I->Args[0]].asBool() &&
                                         Fr.Regs[I->Args[1]].asBool());
        break;
      case Opcode::BoolOr:
        Fr.Regs[I->dst()] = Value::boolV(Fr.Regs[I->Args[0]].asBool() ||
                                         Fr.Regs[I->Args[1]].asBool());
        break;
      case Opcode::Eq:
      case Opcode::Ne: {
        bool E = valueEquals(Fr.Regs[I->Args[0]], Fr.Regs[I->Args[1]]);
        Fr.Regs[I->dst()] = Value::boolV(I->Op == Opcode::Eq ? E : !E);
        break;
      }
      case Opcode::TupleCreate: {
        auto Data = std::make_shared<TupleData>();
        for (Reg A : I->Args)
          Data->Elems.push_back(Fr.Regs[A]);
        ++Counters.HeapTuples;
        Fr.Regs[I->dst()] = Value::tuple(std::move(Data));
        break;
      }
      case Opcode::TupleGet: {
        const Value &T = Fr.Regs[I->Args[0]];
        assert(T.kind() == Value::Kind::TupleV && "tuple.get on non-tuple");
        Fr.Regs[I->dst()] = T.tup()->Elems[I->Index];
        break;
      }
      case Opcode::NewObject: {
        auto *CT = cast<ClassType>(evalType(Fr, I->TypeOperand));
        IrClass *Cls = nullptr;
        for (IrClass *C : M.Classes)
          if (C->Def == CT->def()) {
            Cls = C;
            break;
          }
        assert(Cls && "class not lowered");
        auto Data = std::make_shared<ObjectData>();
        Data->Cls = Cls;
        Data->TypeArgs = CT->args();
        Data->DynType = CT;
        TypeSubst FieldSubst{Cls->Def->TypeParams, Data->TypeArgs};
        for (const IrField &Field : Cls->Fields)
          Data->Fields.push_back(
              defaultOf(Types.substitute(Field.Ty, FieldSubst)));
        ++Counters.HeapObjects;
        Fr.Regs[I->dst()] = Value::object(std::move(Data));
        break;
      }
      case Opcode::FieldGet: {
        const Value &O = Fr.Regs[I->Args[0]];
        if (O.isNull())
          trap(TrapKind::NullDeref);
        Fr.Regs[I->dst()] = O.obj()->Fields[I->Index];
        break;
      }
      case Opcode::FieldSet: {
        const Value &O = Fr.Regs[I->Args[0]];
        if (O.isNull())
          trap(TrapKind::NullDeref);
        O.obj()->Fields[I->Index] = Fr.Regs[I->Args[1]];
        break;
      }
      case Opcode::NullCheck:
        if (Fr.Regs[I->Args[0]].isNull())
          trap(TrapKind::NullDeref);
        break;
      case Opcode::NewArray: {
        auto *AT = cast<ArrayType>(evalType(Fr, I->TypeOperand));
        int32_t Len = Fr.Regs[I->Args[0]].asInt();
        if (Len < 0)
          trap(TrapKind::Bounds, "negative array length");
        auto Data = std::make_shared<ArrayData>();
        Data->ElemType = AT->elem();
        Value D = defaultOf(AT->elem());
        Data->Elems.assign((size_t)Len, D);
        ++Counters.HeapArrays;
        Fr.Regs[I->dst()] = Value::array(std::move(Data));
        break;
      }
      case Opcode::BoundsCheck: {
        const Value &A = Fr.Regs[I->Args[0]];
        if (A.isNull())
          trap(TrapKind::NullDeref);
        int32_t Idx = Fr.Regs[I->Args[1]].asInt();
        if (Idx < 0 || (size_t)Idx >= A.arr()->Elems.size())
          trap(TrapKind::Bounds);
        break;
      }
      case Opcode::ArrayGet: {
        const Value &A = Fr.Regs[I->Args[0]];
        if (A.isNull())
          trap(TrapKind::NullDeref);
        int32_t Idx = Fr.Regs[I->Args[1]].asInt();
        if (Idx < 0 || (size_t)Idx >= A.arr()->Elems.size())
          trap(TrapKind::Bounds);
        Fr.Regs[I->dst()] = A.arr()->Elems[Idx];
        break;
      }
      case Opcode::ArraySet: {
        const Value &A = Fr.Regs[I->Args[0]];
        if (A.isNull())
          trap(TrapKind::NullDeref);
        int32_t Idx = Fr.Regs[I->Args[1]].asInt();
        if (Idx < 0 || (size_t)Idx >= A.arr()->Elems.size())
          trap(TrapKind::Bounds);
        A.arr()->Elems[Idx] = Fr.Regs[I->Args[2]];
        break;
      }
      case Opcode::ArrayLen: {
        const Value &A = Fr.Regs[I->Args[0]];
        if (A.isNull())
          trap(TrapKind::NullDeref);
        Fr.Regs[I->dst()] = Value::intV((int32_t)A.arr()->Elems.size());
        break;
      }
      case Opcode::GlobalGet:
        Fr.Regs[I->dst()] = Globals[I->Index];
        break;
      case Opcode::GlobalSet:
        Globals[I->Index] = Fr.Regs[I->Args[0]];
        break;
      case Opcode::CallFunc: {
        if (!I->TypeArgs.empty())
          Counters.TypeArgsPassed += I->TypeArgs.size();
        std::vector<Type *> CalleeArgs;
        CalleeArgs.reserve(I->TypeArgs.size());
        for (Type *T : I->TypeArgs)
          CalleeArgs.push_back(evalType(Fr, T));
        std::vector<Value> CallArgs;
        CallArgs.reserve(I->Args.size());
        for (Reg A : I->Args)
          CallArgs.push_back(Fr.Regs[A]);
        std::vector<Value> R = exec(I->Callee, std::move(CalleeArgs),
                                    std::move(CallArgs));
        for (size_t K = 0; K != I->Dsts.size(); ++K)
          Fr.Regs[I->Dsts[K]] = std::move(R[K]);
        break;
      }
      case Opcode::CallVirtual: {
        std::vector<Value> CallArgs;
        CallArgs.reserve(I->Args.size());
        for (Reg A : I->Args)
          CallArgs.push_back(Fr.Regs[A]);
        if (CallArgs.empty() || CallArgs[0].isNull())
          trap(TrapKind::NullDeref);
        const Value &Recv = CallArgs[0];
        IrClass *Dyn = Recv.obj()->Cls;
        IrFunction *Target = Dyn->VTable[I->Index];
        if (!Target)
          trap(TrapKind::Unreachable, "abstract method");
        // Overrides may change the tuple/scalars shape (paper p10-p17):
        // adapt the non-receiver arguments dynamically.
        std::vector<Value> Rest(CallArgs.begin() + 1, CallArgs.end());
        adaptArgs(Rest, Target->NumParams - 1);
        std::vector<Value> Final;
        Final.push_back(CallArgs[0]);
        Final.insert(Final.end(), Rest.begin(), Rest.end());
        std::vector<Type *> ClassArgs;
        // Non-generic owners (all post-mono Defs, including shared
        // representatives from another hierarchy) take no type args.
        if (Target->OwnerClass && Target->OwnerClass->Def &&
            !Target->OwnerClass->Def->TypeParams.empty()) {
          ClassType *At =
              Rels.superAt(cast<ClassType>(Recv.obj()->DynType),
                           Target->OwnerClass->Def);
          assert(At && "dispatch owner not on chain");
          ClassArgs = At->args();
        }
        std::vector<Value> R =
            exec(Target, std::move(ClassArgs), std::move(Final));
        for (size_t K = 0; K != I->Dsts.size(); ++K)
          Fr.Regs[I->Dsts[K]] = std::move(R[K]);
        break;
      }
      case Opcode::CallIndirect: {
        const Value &FnV = Fr.Regs[I->Args[0]];
        if (FnV.isNull())
          trap(TrapKind::NullDeref);
        std::vector<Value> CallArgs;
        for (size_t K = 1; K != I->Args.size(); ++K)
          CallArgs.push_back(Fr.Regs[I->Args[K]]);
        std::vector<Value> R =
            invokeClosure(*FnV.clo(), std::move(CallArgs));
        for (size_t K = 0; K != I->Dsts.size(); ++K)
          Fr.Regs[I->Dsts[K]] = std::move(R[K]);
        break;
      }
      case Opcode::CallBuiltin: {
        std::vector<Value> CallArgs;
        for (Reg A : I->Args)
          CallArgs.push_back(Fr.Regs[A]);
        Value R = runBuiltin(I->Index, CallArgs);
        if (!I->Dsts.empty())
          Fr.Regs[I->dst()] = std::move(R);
        break;
      }
      case Opcode::MakeClosure: {
        auto Data = std::make_shared<ClosureData>();
        Data->Fn = I->Callee;
        for (Type *T : I->TypeArgs)
          Data->TypeArgs.push_back(evalType(Fr, T));
        if (!I->Args.empty()) {
          Data->HasBound = true;
          Data->Bound = std::make_shared<Value>(Fr.Regs[I->Args[0]]);
          // Bound virtual methods resolve their target now, against the
          // receiver's dynamic type.
          if (Data->Fn->Slot >= 0 && Data->Fn->OwnerClass) {
            if (Data->Bound->isNull())
              trap(TrapKind::NullDeref);
            IrClass *Dyn = Data->Bound->obj()->Cls;
            IrFunction *Impl = Dyn->VTable[Data->Fn->Slot];
            if (!Impl)
              trap(TrapKind::Unreachable, "abstract method");
            Data->Fn = Impl;
            Data->TypeArgs.clear();
            if (Impl->OwnerClass && Impl->OwnerClass->Def &&
                !Impl->OwnerClass->Def->TypeParams.empty()) {
              ClassType *At = Rels.superAt(
                  cast<ClassType>(Data->Bound->obj()->DynType),
                  Impl->OwnerClass->Def);
              assert(At && "bound owner not on chain");
              Data->TypeArgs = At->args();
            }
          }
        }
        TypeSubst CloSubst{Data->Fn->TypeParams, Data->TypeArgs};
        Data->DynType =
            closureDynType(Types, Data->Fn, CloSubst, Data->HasBound);
        ++Counters.HeapClosures;
        Fr.Regs[I->dst()] = Value::closure(std::move(Data));
        break;
      }
      case Opcode::TypeCast: {
        Type *Target = evalType(Fr, I->TypeOperand);
        Value Out;
        if (!valueCast(Fr.Regs[I->Args[0]], Target, Out))
          trap(TrapKind::CastFail, "to " + Target->toString());
        Fr.Regs[I->dst()] = std::move(Out);
        break;
      }
      case Opcode::TypeQuery: {
        Type *Target = evalType(Fr, I->TypeOperand);
        Fr.Regs[I->dst()] =
            Value::boolV(valueQuery(Fr.Regs[I->Args[0]], Target));
        break;
      }
      case Opcode::Ret: {
        --Depth;
        std::vector<Value> Rets;
        Rets.reserve(I->Args.size());
        for (Reg A : I->Args)
          Rets.push_back(Fr.Regs[A]);
        return Rets;
      }
      case Opcode::Br:
        Next = Block->Succ0;
        break;
      case Opcode::CondBr:
        Next = Fr.Regs[I->Args[0]].asBool() ? Block->Succ0 : Block->Succ1;
        break;
      case Opcode::Trap:
        trap((TrapKind)I->Index);
        break;
      case Opcode::Phi:
        trap(TrapKind::Unreachable, "phi outside the SSA sandwich");
        break;
      }
    }
    assert(Next && "block fell through without a terminator");
    Block = Next;
  }
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

bool Interpreter::runInit() {
  Globals.clear();
  for (const IrGlobal &G : M.Globals)
    Globals.push_back(defaultOf(G.Ty));
  if (!M.Init)
    return true;
  try {
    exec(M.Init, {}, {});
    return true;
  } catch (TrapUnwind &) {
    Depth = 0;
    return false;
  }
}

InterpResult Interpreter::run() {
  InterpResult R;
  Globals.clear();
  for (const IrGlobal &G : M.Globals)
    Globals.push_back(defaultOf(G.Ty));
  try {
    if (M.Init)
      exec(M.Init, {}, {});
    if (M.Main) {
      std::vector<Value> Rets = exec(M.Main, {}, {});
      R.Result = Rets.empty() ? Value::voidV() : std::move(Rets[0]);
    }
  } catch (TrapUnwind &T) {
    Depth = 0;
    R.Trapped = true;
    R.TrapMessage = T.Message;
  }
  R.Output = Output;
  R.Counters = Counters;
  return R;
}

InterpResult Interpreter::call(IrFunction *F, std::vector<Type *> TypeArgs,
                               std::vector<Value> Args) {
  InterpResult R;
  try {
    std::vector<Value> Rets = exec(F, std::move(TypeArgs), std::move(Args));
    R.Result = Rets.empty() ? Value::voidV() : std::move(Rets[0]);
  } catch (TrapUnwind &T) {
    Depth = 0;
    R.Trapped = true;
    R.TrapMessage = T.Message;
  }
  R.Output = Output;
  R.Counters = Counters;
  return R;
}
