//===- interp/Value.h - Boxed runtime values --------------------*- C++ -*-===//
///
/// \file
/// Values for the reference interpreter. This representation follows
/// the paper's *interpreter* strategy deliberately: tuples are boxed
/// heap values, objects/arrays/closures carry their concrete runtime
/// types (the "type information stored within objects, arrays and
/// closures" of §4.3), and equality/casts/queries are implemented
/// recursively over them. The compiled pipeline (mono + normalize + VM)
/// exists precisely to eliminate the costs this representation makes
/// visible.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_INTERP_VALUE_H
#define VIRGIL_INTERP_VALUE_H

#include "ir/Ir.h"

#include <memory>
#include <string>
#include <vector>

namespace virgil {

class Value;

struct ObjectData {
  IrClass *Cls = nullptr;
  /// Concrete type arguments of the object's class.
  std::vector<Type *> TypeArgs;
  /// The concrete dynamic class type (classType(Cls->Def, TypeArgs)).
  Type *DynType = nullptr;
  std::vector<Value> Fields;
};

struct ArrayData {
  Type *ElemType = nullptr; ///< Concrete element type.
  std::vector<Value> Elems;
};

struct ClosureData {
  IrFunction *Fn = nullptr;
  /// Concrete type arguments for Fn's type parameters.
  std::vector<Type *> TypeArgs;
  bool HasBound = false;
  std::shared_ptr<Value> Bound;
  /// Concrete function type of this value (its dynamic type).
  Type *DynType = nullptr;
};

struct TupleData {
  std::vector<Value> Elems;
};

/// A boxed runtime value.
class Value {
public:
  enum class Kind : uint8_t {
    Void,
    Bool,
    Byte,
    Int,
    Null,
    Object,
    ArrayV,
    Closure,
    TupleV,
  };

  Value() : K(Kind::Void) {}

  static Value voidV() { return Value(); }
  static Value boolV(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.I = B ? 1 : 0;
    return V;
  }
  static Value byteV(uint8_t B) {
    Value V;
    V.K = Kind::Byte;
    V.I = B;
    return V;
  }
  static Value intV(int32_t N) {
    Value V;
    V.K = Kind::Int;
    V.I = N;
    return V;
  }
  static Value nullV() {
    Value V;
    V.K = Kind::Null;
    return V;
  }
  static Value object(std::shared_ptr<ObjectData> O) {
    Value V;
    V.K = Kind::Object;
    V.Obj = std::move(O);
    return V;
  }
  static Value array(std::shared_ptr<ArrayData> A) {
    Value V;
    V.K = Kind::ArrayV;
    V.Arr = std::move(A);
    return V;
  }
  static Value closure(std::shared_ptr<ClosureData> C) {
    Value V;
    V.K = Kind::Closure;
    V.Clo = std::move(C);
    return V;
  }
  static Value tuple(std::shared_ptr<TupleData> T) {
    Value V;
    V.K = Kind::TupleV;
    V.Tup = std::move(T);
    return V;
  }

  Kind kind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isNull() const { return K == Kind::Null; }
  bool asBool() const { return I != 0; }
  uint8_t asByte() const { return (uint8_t)I; }
  int32_t asInt() const { return (int32_t)I; }
  const std::shared_ptr<ObjectData> &obj() const { return Obj; }
  const std::shared_ptr<ArrayData> &arr() const { return Arr; }
  const std::shared_ptr<ClosureData> &clo() const { return Clo; }
  const std::shared_ptr<TupleData> &tup() const { return Tup; }

  /// Debug rendering.
  std::string toString() const;

private:
  Kind K;
  int64_t I = 0;
  std::shared_ptr<ObjectData> Obj;
  std::shared_ptr<ArrayData> Arr;
  std::shared_ptr<ClosureData> Clo;
  std::shared_ptr<TupleData> Tup;
};

/// Universal equality (paper §2: all types support ==); recursive on
/// tuples, identity on objects/arrays, function+receiver(+type args) on
/// closures.
bool valueEquals(const Value &A, const Value &B);

} // namespace virgil

#endif // VIRGIL_INTERP_VALUE_H
