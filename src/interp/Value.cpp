//===- interp/Value.cpp ---------------------------------------------------===//

#include "interp/Value.h"

#include <sstream>

using namespace virgil;

bool virgil::valueEquals(const Value &A, const Value &B) {
  // Null compares equal only to null.
  if (A.isNull() || B.isNull())
    return A.isNull() && B.isNull();
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Value::Kind::Void:
    return true; // () == ().
  case Value::Kind::Bool:
    return A.asBool() == B.asBool();
  case Value::Kind::Byte:
    return A.asByte() == B.asByte();
  case Value::Kind::Int:
    return A.asInt() == B.asInt();
  case Value::Kind::Object:
    return A.obj().get() == B.obj().get();
  case Value::Kind::ArrayV:
    return A.arr().get() == B.arr().get();
  case Value::Kind::Closure: {
    const ClosureData *CA = A.clo().get();
    const ClosureData *CB = B.clo().get();
    if (CA == CB)
      return true;
    if (CA->Fn != CB->Fn || CA->TypeArgs != CB->TypeArgs ||
        CA->HasBound != CB->HasBound)
      return false;
    if (!CA->HasBound)
      return true;
    return valueEquals(*CA->Bound, *CB->Bound);
  }
  case Value::Kind::TupleV: {
    const TupleData *TA = A.tup().get();
    const TupleData *TB = B.tup().get();
    if (TA->Elems.size() != TB->Elems.size())
      return false;
    for (size_t I = 0; I != TA->Elems.size(); ++I)
      if (!valueEquals(TA->Elems[I], TB->Elems[I]))
        return false;
    return true;
  }
  case Value::Kind::Null:
    return true;
  }
  return false;
}

std::string Value::toString() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::Void:
    OS << "()";
    break;
  case Kind::Bool:
    OS << (asBool() ? "true" : "false");
    break;
  case Kind::Byte:
    OS << "'" << (char)asByte() << "'";
    break;
  case Kind::Int:
    OS << asInt();
    break;
  case Kind::Null:
    OS << "null";
    break;
  case Kind::Object:
    OS << "<" << (Obj && Obj->Cls ? Obj->Cls->Name : "object") << ">";
    break;
  case Kind::ArrayV:
    OS << "[" << (Arr ? Arr->Elems.size() : 0) << " elems]";
    break;
  case Kind::Closure:
    OS << "<fn " << (Clo && Clo->Fn ? Clo->Fn->Name : "?") << ">";
    break;
  case Kind::TupleV: {
    OS << '(';
    if (Tup)
      for (size_t I = 0; I != Tup->Elems.size(); ++I) {
        if (I)
          OS << ", ";
        OS << Tup->Elems[I].toString();
      }
    OS << ')';
    break;
  }
  }
  return OS.str();
}
