//===- interp/Interpreter.h - Polymorphic IR interpreter --------*- C++ -*-===//
///
/// \file
/// The reference interpreter executes *polymorphic* IR directly, in the
/// style the paper describes for the Virgil interpreter (§4.3): "type
/// arguments are passed as invisible arguments to polymorphic function
/// calls and stored as type information within objects, arrays and
/// closures", and call sites perform §4.1's dynamic calling-convention
/// checks (packing or unpacking a tuple when the callee's declared
/// shape differs from the caller's).
///
/// It doubles as the semantic oracle: tests run every program through
/// both this interpreter and the compiled pipeline (mono + normalize +
/// opt + VM) and require identical results, and the benchmark harness
/// reads its counters (instructions, adaptation checks, runtime type
/// substitutions, allocations) to reproduce the paper's cost claims.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_INTERP_INTERPRETER_H
#define VIRGIL_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "types/TypeRelations.h"

#include <map>
#include <string>

namespace virgil {

/// Cost and behaviour counters exposed for the experiments.
struct InterpCounters {
  uint64_t Instrs = 0;
  /// §4.1 dynamic calling-convention checks performed at call sites.
  uint64_t AdaptChecks = 0;
  /// Tuple values packed/unpacked by those checks.
  uint64_t AdaptPacks = 0;
  uint64_t AdaptUnpacks = 0;
  /// Runtime type-argument substitutions (§4.3 "considerable cost").
  uint64_t TypeSubsts = 0;
  /// Type-argument vectors passed as "invisible arguments" at calls.
  uint64_t TypeArgsPassed = 0;
  uint64_t HeapObjects = 0;
  uint64_t HeapArrays = 0;
  uint64_t HeapTuples = 0; ///< Boxed tuples (eliminated by normalization).
  uint64_t HeapClosures = 0;
};

struct InterpResult {
  bool Trapped = false;
  std::string TrapMessage;
  Value Result;
  std::string Output;
  InterpCounters Counters;
};

class Interpreter {
public:
  explicit Interpreter(IrModule &M);

  /// Runs $init then main; returns the outcome.
  InterpResult run();

  /// Runs $init only (for calling individual functions afterwards).
  bool runInit();

  /// Calls one function with concrete type arguments and values.
  /// Trap state is reported through the returned InterpResult.
  InterpResult call(IrFunction *F, std::vector<Type *> TypeArgs,
                    std::vector<Value> Args);

  InterpCounters &counters() { return Counters; }
  std::string &output() { return Output; }

  /// Optional fuel limit (0 = unlimited); exceeding it traps with the
  /// same "instruction budget exceeded" message the VM uses, so
  /// differential harnesses can classify timeouts uniformly.
  void setMaxInstrs(uint64_t Max) { MaxInstrs = Max; }

  /// Runtime type query `Target.?(V)` (recursive, §2.3).
  bool valueQuery(const Value &V, Type *Target);
  /// Runtime cast `Target.!(V)`; returns false on cast failure and
  /// leaves Out untouched.
  bool valueCast(const Value &V, Type *Target, Value &Out);
  /// The default value of a concrete type.
  Value defaultOf(Type *T);

private:
  struct Frame {
    IrFunction *F = nullptr;
    TypeSubst Subst;
    std::vector<Value> Regs;
  };

  /// Executes a function to completion; returns its return values
  /// (exactly one pre-normalization, zero or more after).
  std::vector<Value> exec(IrFunction *F, std::vector<Type *> TypeArgs,
                          std::vector<Value> Args);

  /// Evaluates a static type in the current frame (substituting the
  /// frame's type arguments); counts toward TypeSubsts when the type is
  /// polymorphic.
  Type *evalType(Frame &Fr, Type *T);

  /// §4.1: adapts a value list to a callee expecting \p WantParams
  /// parameters.
  void adaptArgs(std::vector<Value> &Args, size_t WantParams);

  /// Resolves a closure invocation target (virtual re-dispatch for
  /// unbound methods).
  std::vector<Value> invokeClosure(const ClosureData &C,
                                   std::vector<Value> Args);

  Value runBuiltin(int Kind, std::vector<Value> &Args);

  [[noreturn]] void trap(TrapKind Kind, const std::string &Extra = "");

  /// The dynamic type of a value (concrete); used by casts/queries on
  /// closures and objects.
  Type *dynTypeOf(const Value &V);

  IrModule &M;
  TypeStore &Types;
  TypeRelations Rels;
  std::vector<Value> Globals;
  std::string Output;
  InterpCounters Counters;
  int Depth = 0;
  int32_t TickCounter = 0;
  uint64_t MaxInstrs = 0;

  // Trap signalling (no exceptions in this codebase... except here:
  // the interpreter uses a single internal exception type to unwind on
  // traps, fully contained within exec()).
  struct TrapSignal {
    TrapKind Kind;
    std::string Message;
  };
};

} // namespace virgil

#endif // VIRGIL_INTERP_INTERPRETER_H
