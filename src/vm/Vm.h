//===- vm/Vm.h - Bytecode virtual machine -----------------------*- C++ -*-===//
///
/// \file
/// Executes BcModules: the compiled counterpart of the reference
/// interpreter. Where the interpreter pays for boxed tuples, runtime
/// type arguments, and dynamic calling-convention checks, the VM runs
/// the normalized program with none of those: all calls pass scalar
/// slots, functions return multiple values through a return buffer
/// ("multiple return registers"), closures are flat packed slots, and
/// the only remaining dynamic type machinery is class-id subtype walks
/// for explicit casts/queries.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_VM_H
#define VIRGIL_VM_VM_H

#include "types/TypeRelations.h"
#include "vm/Heap.h"

#include <string>

namespace virgil {

struct VmCounters {
  uint64_t Instrs = 0;
  uint64_t Calls = 0;
  uint64_t IndirectCalls = 0;
  uint64_t VirtualCalls = 0;
  /// Explicit allocations only — `C.new(...)`, `Array<T>.new(n)`, and
  /// string literals. Nothing else allocates (paper §4.3).
  uint64_t HeapObjects = 0;
  uint64_t HeapArrays = 0;
  uint64_t StringAllocs = 0;
};

struct VmResult {
  bool Trapped = false;
  std::string TrapMessage;
  /// First return value of main as raw bits (int32 for int mains).
  int64_t ResultBits = 0;
  bool HasResult = false;
  std::string Output;
  VmCounters Counters;
  HeapStats Heap;
};

class Vm {
public:
  explicit Vm(const BcModule &M);

  /// Runs $init then main.
  VmResult run();

  /// Optional fuel limit (0 = unlimited); exceeding it traps.
  void setMaxInstrs(uint64_t Max) { MaxInstrs = Max; }

  /// Forces a GC between runs (benchmarks).
  Heap &heap() { return TheHeap; }

private:
  struct Frame {
    int FuncId;
    size_t Pc;
    size_t Base;
    /// Where our return values go in the caller (null for the
    /// outermost frame).
    const CallDesc *Pending;
    size_t CallerBase;
  };

  bool callFunction(int FuncId, const CallDesc *Desc, size_t CallerBase,
                    const uint64_t *PrependArg, bool SkipFirst);
  void doTrap(TrapKind Kind, const std::string &Extra = "");
  bool runLoop();
  void pushFrame(int FuncId, const CallDesc *Desc, size_t CallerBase,
                 const std::vector<uint64_t> &Args);
  uint64_t makeString(int Index);
  bool builtin(int Kind, const CallDesc &Desc, size_t Base);

  const BcModule &M;
  Heap TheHeap;
  TypeRelations Rels;
  std::vector<uint64_t> Stack;
  std::vector<SlotKind> StackKinds;
  std::vector<uint64_t> Globals;
  std::vector<Frame> Frames;
  std::vector<uint64_t> RetBuf;
  std::string Output;
  VmCounters Counters;
  bool Trapped = false;
  std::string TrapMessage;
  uint64_t MaxInstrs = 0;
  int32_t TickCounter = 0;
  std::vector<int64_t> FinalRets;
};

} // namespace virgil

#endif // VIRGIL_VM_VM_H
