//===- vm/Vm.h - Bytecode virtual machine -----------------------*- C++ -*-===//
///
/// \file
/// Executes BcModules: the compiled counterpart of the reference
/// interpreter. Where the interpreter pays for boxed tuples, runtime
/// type arguments, and dynamic calling-convention checks, the VM runs
/// the normalized program with none of those: all calls pass scalar
/// slots, functions return multiple values through a return buffer
/// ("multiple return registers"), closures are flat packed slots, and
/// the only remaining dynamic type machinery is class-id subtype walks
/// for explicit casts/queries.
///
/// The execution core is a fast interpreter (DESIGN.md §9): modules
/// are rewritten at load time by BcPrepare (decoded form,
/// superinstruction fusion, monomorphic inline caches on virtual call
/// sites), dispatch is token-threaded via computed goto where the
/// compiler supports it (VIRGIL_VM_COMPUTED_GOTO, with a portable
/// switch fallback), frames live in a preallocated stack arena with
/// register-to-register argument copying, and the fuel check is
/// amortized to calls and backward branches.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_VM_H
#define VIRGIL_VM_VM_H

#include "types/TypeRelations.h"
#include "vm/BcPrepare.h"
#include "vm/Heap.h"

#include <memory>
#include <string>

namespace virgil {

namespace jit {
class JitTier;
}

struct VmCounters {
  uint64_t Instrs = 0;
  uint64_t Calls = 0;
  uint64_t IndirectCalls = 0;
  uint64_t VirtualCalls = 0;
  /// Explicit allocations only — `C.new(...)`, `Array<T>.new(n)`, and
  /// string literals. Nothing else allocates (paper §4.3).
  uint64_t HeapObjects = 0;
  uint64_t HeapArrays = 0;
  uint64_t StringAllocs = 0;
  /// Inline-cache behaviour at CallV sites.
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  /// Superinstructions: pairs fused at load time, and fused dispatches
  /// executed (each counts as 2 toward Instrs).
  uint64_t FusedStatic = 0;
  uint64_t FusedExecuted = 0;
};

/// Execution-engine knobs (the E12 ablation axes) plus the per-run
/// resource quotas the server relies on for request isolation.
/// Defaults are the fast path with no limits; the naive legs exist for
/// benchmarking and differential tests.
struct VmOptions {
  enum class Dispatch : uint8_t {
    Auto,     ///< Threaded when compiled in, else switch.
    Switch,   ///< Portable switch dispatch.
    Threaded, ///< Token-threaded computed goto (if available).
  };
  Dispatch Mode = Dispatch::Auto;
  bool Fuse = true;
  bool InlineCache = true;
  /// Instruction budget (0 = unlimited); exceeding it traps with cause
  /// Fuel. Same accounting as setMaxInstrs.
  uint64_t MaxInstrs = 0;
  /// Heap quota in bytes (0 = unlimited; floor is the initial heap,
  /// 128 KiB). Exceeding it traps with cause Heap.
  uint64_t MaxHeapBytes = 0;
  /// Wall-clock budget in milliseconds measured from run() (0 =
  /// unlimited). Checked every few thousand fuel events, so a runaway
  /// stops within a few thousand calls/loop-iterations of the
  /// deadline. Traps with cause Deadline.
  uint32_t DeadlineMs = 0;
  /// Two-generation heap (nursery + promotion + write barrier). Off =
  /// the old single-space semispace collector, kept for ablation and
  /// differential fuzzing; both modes are observationally identical.
  /// Process-wide default flips with VIRGIL_VM_GC=semi (read once).
  bool Generational = defaultGenerational();
  /// Nursery size in bytes (generational mode only). Process-wide
  /// default (64 KiB) overridable once via VIRGIL_VM_NURSERY_BYTES —
  /// the CI gc-stress lane shrinks it to 4 KiB.
  uint32_t NurseryBytes = defaultNurseryBytes();
  /// Baseline JIT tier (src/jit, DESIGN.md §15). Auto and On both run
  /// the tier when the host supports it (x86-64 with executable
  /// mappings) and fall back to interpreter-only when it does not;
  /// Off pins the interpreter. Both tiers are observationally
  /// identical — same results, output, traps, and executed-instruction
  /// counts. Process default flips with VIRGIL_VM_JIT=on|off|auto.
  enum class JitMode : uint8_t { Auto, On, Off };
  JitMode Jit = defaultJitMode();
  /// Hotness gate: a function tiers up once its entries + taken
  /// backward branches cross this count (0 = compile at first use).
  /// Default 64, overridable via VIRGIL_VM_JIT_THRESHOLD.
  uint32_t JitThreshold = defaultJitThreshold();

  static bool defaultGenerational();
  static uint32_t defaultNurseryBytes();
  static JitMode defaultJitMode();
  static uint32_t defaultJitThreshold();
};

/// JIT tier activity for one Vm, reported per run (cumulative across
/// pooled reuse). Availability is probed once per Vm: Available=false
/// means the host cannot execute generated code (or the build is not
/// x86-64) and the run fell back to the interpreter.
struct VmJitStats {
  bool Available = false;
  bool Enabled = false; ///< tier constructed and live for this Vm
  uint64_t Compiles = 0;
  uint64_t CompileFailures = 0;
  uint64_t CompileNs = 0;
  uint64_t CodeBytes = 0;
  uint64_t Enters = 0;      ///< driver transitions into native code
  uint64_t OsrEntries = 0;  ///< entries at a non-zero pc
  uint64_t Deopts = 0;      ///< GC-invalidation exits to the interpreter
  uint64_t IcPatches = 0;
  uint64_t IcMegamorphic = 0;
};

/// Why a run trapped: a fault in the program itself, or one of the
/// resource quotas. The server maps these onto wire-level outcomes.
enum class VmTrapCause : uint8_t {
  None = 0,
  Program,  ///< Null deref, bounds, cast, div-by-zero, user error...
  Fuel,     ///< Instruction budget exceeded.
  Heap,     ///< Heap byte quota exceeded.
  Deadline, ///< Wall-clock deadline exceeded.
};

struct VmResult {
  bool Trapped = false;
  VmTrapCause Cause = VmTrapCause::None;
  std::string TrapMessage;
  /// First return value of main as raw bits (int32 for int mains).
  int64_t ResultBits = 0;
  bool HasResult = false;
  std::string Output;
  VmCounters Counters;
  HeapStats Heap;
  VmJitStats Jit;
  /// "threaded" or "switch" — what actually ran.
  std::string DispatchMode;
};

class Vm {
public:
  explicit Vm(const BcModule &M, VmOptions Options = VmOptions());
  ~Vm();

  /// Runs $init then main.
  VmResult run();

  /// Optional fuel limit (0 = unlimited); exceeding it traps. Checked
  /// at calls and backward branches, so a runaway stops within one
  /// basic block of the budget.
  void setMaxInstrs(uint64_t Max) { MaxInstrs = Max; }

  /// Warm-VM pooling support (src/exec/VmPool). snapshotForReuse()
  /// captures the post-prepare state a run can mutate — today exactly
  /// the per-function inline-cache tables — and must be called before
  /// the first run(). resetForReuse() restores that snapshot, rewinds
  /// the heap in place (Heap::reset), and clears all per-run state
  /// (stack extent, globals, output, counters, trap state, tick
  /// counter, deadline), leaving the Vm observationally identical to a
  /// freshly constructed one with the same module and options: same
  /// outcomes, traps, executed-instruction counts, and GC activity.
  /// Returns false (and touches nothing) if no snapshot was taken.
  void snapshotForReuse();
  bool resetForReuse();
  /// Re-arms the per-run quotas a pooled Vm may vary between requests.
  /// Heap sizing is deliberately NOT settable here: it shapes GC
  /// behavior, so the pool keys on it instead.
  void setRunQuotas(uint64_t Fuel, uint32_t DeadlineMs) {
    MaxInstrs = Fuel;
    Options.DeadlineMs = DeadlineMs;
  }

  /// Forces a GC between runs (benchmarks).
  Heap &heap() { return TheHeap; }

  /// Was computed-goto dispatch compiled into this binary?
  static bool threadedAvailable();
  /// The dispatch mode this Vm will use ("threaded" or "switch").
  const char *dispatchModeName() const;

  const PrepareStats &prepareStats() const { return Prep.Stats; }

private:
  struct Frame {
    PFunc *Fn;
    uint32_t Pc;
    size_t Base;
    /// Where our return values go in the caller (null for the
    /// outermost frame).
    const PDesc *Pending;
    size_t CallerBase;
    /// Native continuation in the caller's compiled code when this
    /// frame was pushed by a JIT fast-path call site; null for frames
    /// pushed by the interpreter or by the C++ call helpers. Purely a
    /// fast-return hint — deopt and interpreter returns ignore it and
    /// resume the caller at Pc.
    const void *NativeRet = nullptr;
  };

  /// Frame depth beyond which enterCall reports "stack overflow"
  /// (runaway recursion guard, matches the reference interpreter). The
  /// JIT's native call path bails to the helpers at the same depth.
  static constexpr size_t kMaxFrames = 100000;

  /// The frame list as a POD {Data, Size, Cap} triple so JIT fast
  /// paths can address it with fixed offsets (std::vector's layout is
  /// not ours to assume). Grows like a vector; the JIT's native call
  /// path bails to the C++ helpers when Size == Cap, so only helpers
  /// and the interpreter ever reallocate.
  struct FrameStack {
    Frame *Data = nullptr;
    size_t Size = 0;
    size_t Cap = 0;

    FrameStack() = default;
    FrameStack(const FrameStack &) = delete;
    FrameStack &operator=(const FrameStack &) = delete;
    ~FrameStack() { delete[] Data; }

    Frame &back() { return Data[Size - 1]; }
    const Frame &back() const { return Data[Size - 1]; }
    Frame &operator[](size_t I) { return Data[I]; }
    const Frame &operator[](size_t I) const { return Data[I]; }
    Frame *begin() { return Data; }
    Frame *end() { return Data + Size; }
    const Frame *begin() const { return Data; }
    const Frame *end() const { return Data + Size; }
    size_t size() const { return Size; }
    bool empty() const { return Size == 0; }
    void clear() { Size = 0; }
    void pop_back() { --Size; }
    void push_back(const Frame &F) {
      if (Size == Cap)
        reserve(Cap ? Cap * 2 : 1024);
      Data[Size++] = F;
    }
    void reserve(size_t N) {
      if (N <= Cap)
        return;
      Frame *Next = new Frame[N];
      for (size_t I = 0; I != Size; ++I)
        Next[I] = Data[I];
      delete[] Data;
      Data = Next;
      Cap = N;
    }
  };

  bool enterCall(int FuncId, const PDesc *Desc, size_t CallerBase,
                 const uint64_t *PrependArg, bool SkipFirst);
  /// CallF fast path: arity was proven at prepare time, no prepended
  /// receiver, no closure slot to skip.
  bool enterCallFast(int FuncId, const PDesc *Desc, size_t CallerBase);
  /// Rewrites StackKinds for the live extent from the frame list (the
  /// heap's pre-collect hook; see Heap::setPreCollectHook).
  void refreshStackKinds();
  void growStack(size_t Need);
  void doTrap(TrapKind Kind, const std::string &Extra = "",
              VmTrapCause Cause = VmTrapCause::Program);
  bool runLoop();
  bool interpLoop();
  bool runLoopSwitch();
#ifdef VIRGIL_VM_COMPUTED_GOTO
  bool runLoopThreaded();
#endif
  uint64_t makeString(int Index);
  bool builtin(int Kind, const PDesc &Desc, size_t Base);
  /// Tier check for a function whose Gate is armed: the native entry
  /// for \p Fn at \p Pc if it is (or just became) compiled, else null.
  /// \p Count bumps the hotness counter and may trigger a compile;
  /// resume-only sites (returns into a caller) pass false.
  const void *jitEntryFor(PFunc *Fn, uint32_t Pc, bool Count);

  const BcModule &M;
  VmOptions Options;
  PreparedModule Prep;
  Heap TheHeap;
  TypeRelations Rels;
  /// Register stack arena: a preallocated high-water-grown slab.
  /// [0, StackTop) is live; the GC scans exactly that extent using the
  /// parallel per-slot kinds.
  std::vector<uint64_t> Stack;
  std::vector<SlotKind> StackKinds;
  size_t StackTop = 0;
  /// Mirrors of Stack.data()/Stack.size(), kept current by the ctor
  /// and growStack so JIT fast paths can check capacity and compute
  /// frame bases with plain absolute loads.
  uint64_t *StackData = nullptr;
  size_t StackLen = 0;
  std::vector<uint64_t> Globals;
  FrameStack Frames;
  std::string Output;
  VmCounters Counters;
  bool Trapped = false;
  VmTrapCause TrapCause = VmTrapCause::None;
  std::string TrapMessage;
  uint64_t MaxInstrs = 0;
  /// Absolute steady-clock deadline in nanoseconds (0 = none), armed
  /// by run() from Options.DeadlineMs.
  uint64_t DeadlineNs = 0;
  /// Countdown between clock reads on the fuel-check path.
  int32_t DeadlineTick = 0;
  int32_t TickCounter = 0;
  std::vector<int64_t> FinalRets;
  /// Post-prepare inline-cache tables, captured by snapshotForReuse()
  /// (one vector per function, empty until a snapshot is taken).
  std::vector<std::vector<IcEntry>> IcSnapshot;
  bool HasReuseSnapshot = false;
  /// The baseline JIT tier (null when disabled or unsupported); shares
  /// this Vm's frames, stack arena, globals, and heap, so both tiers
  /// see one machine state. Survives resetForReuse — warm code is part
  /// of the pool's value.
  std::unique_ptr<jit::JitTier> JitT;
  bool JitAvailable = false;
  /// Set by the interpreter loop to hand control to native code at
  /// this address; consumed by the runLoop driver.
  const void *PendingJitEntry = nullptr;

  friend class jit::JitTier;
};

} // namespace virgil

#endif // VIRGIL_VM_VM_H
