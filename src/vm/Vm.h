//===- vm/Vm.h - Bytecode virtual machine -----------------------*- C++ -*-===//
///
/// \file
/// Executes BcModules: the compiled counterpart of the reference
/// interpreter. Where the interpreter pays for boxed tuples, runtime
/// type arguments, and dynamic calling-convention checks, the VM runs
/// the normalized program with none of those: all calls pass scalar
/// slots, functions return multiple values through a return buffer
/// ("multiple return registers"), closures are flat packed slots, and
/// the only remaining dynamic type machinery is class-id subtype walks
/// for explicit casts/queries.
///
/// The execution core is a fast interpreter (DESIGN.md §9): modules
/// are rewritten at load time by BcPrepare (decoded form,
/// superinstruction fusion, monomorphic inline caches on virtual call
/// sites), dispatch is token-threaded via computed goto where the
/// compiler supports it (VIRGIL_VM_COMPUTED_GOTO, with a portable
/// switch fallback), frames live in a preallocated stack arena with
/// register-to-register argument copying, and the fuel check is
/// amortized to calls and backward branches.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_VM_H
#define VIRGIL_VM_VM_H

#include "types/TypeRelations.h"
#include "vm/BcPrepare.h"
#include "vm/Heap.h"

#include <string>

namespace virgil {

struct VmCounters {
  uint64_t Instrs = 0;
  uint64_t Calls = 0;
  uint64_t IndirectCalls = 0;
  uint64_t VirtualCalls = 0;
  /// Explicit allocations only — `C.new(...)`, `Array<T>.new(n)`, and
  /// string literals. Nothing else allocates (paper §4.3).
  uint64_t HeapObjects = 0;
  uint64_t HeapArrays = 0;
  uint64_t StringAllocs = 0;
  /// Inline-cache behaviour at CallV sites.
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  /// Superinstructions: pairs fused at load time, and fused dispatches
  /// executed (each counts as 2 toward Instrs).
  uint64_t FusedStatic = 0;
  uint64_t FusedExecuted = 0;
};

/// Execution-engine knobs (the E12 ablation axes) plus the per-run
/// resource quotas the server relies on for request isolation.
/// Defaults are the fast path with no limits; the naive legs exist for
/// benchmarking and differential tests.
struct VmOptions {
  enum class Dispatch : uint8_t {
    Auto,     ///< Threaded when compiled in, else switch.
    Switch,   ///< Portable switch dispatch.
    Threaded, ///< Token-threaded computed goto (if available).
  };
  Dispatch Mode = Dispatch::Auto;
  bool Fuse = true;
  bool InlineCache = true;
  /// Instruction budget (0 = unlimited); exceeding it traps with cause
  /// Fuel. Same accounting as setMaxInstrs.
  uint64_t MaxInstrs = 0;
  /// Heap quota in bytes (0 = unlimited; floor is the initial heap,
  /// 128 KiB). Exceeding it traps with cause Heap.
  uint64_t MaxHeapBytes = 0;
  /// Wall-clock budget in milliseconds measured from run() (0 =
  /// unlimited). Checked every few thousand fuel events, so a runaway
  /// stops within a few thousand calls/loop-iterations of the
  /// deadline. Traps with cause Deadline.
  uint32_t DeadlineMs = 0;
  /// Two-generation heap (nursery + promotion + write barrier). Off =
  /// the old single-space semispace collector, kept for ablation and
  /// differential fuzzing; both modes are observationally identical.
  /// Process-wide default flips with VIRGIL_VM_GC=semi (read once).
  bool Generational = defaultGenerational();
  /// Nursery size in bytes (generational mode only). Process-wide
  /// default (64 KiB) overridable once via VIRGIL_VM_NURSERY_BYTES —
  /// the CI gc-stress lane shrinks it to 4 KiB.
  uint32_t NurseryBytes = defaultNurseryBytes();

  static bool defaultGenerational();
  static uint32_t defaultNurseryBytes();
};

/// Why a run trapped: a fault in the program itself, or one of the
/// resource quotas. The server maps these onto wire-level outcomes.
enum class VmTrapCause : uint8_t {
  None = 0,
  Program,  ///< Null deref, bounds, cast, div-by-zero, user error...
  Fuel,     ///< Instruction budget exceeded.
  Heap,     ///< Heap byte quota exceeded.
  Deadline, ///< Wall-clock deadline exceeded.
};

struct VmResult {
  bool Trapped = false;
  VmTrapCause Cause = VmTrapCause::None;
  std::string TrapMessage;
  /// First return value of main as raw bits (int32 for int mains).
  int64_t ResultBits = 0;
  bool HasResult = false;
  std::string Output;
  VmCounters Counters;
  HeapStats Heap;
  /// "threaded" or "switch" — what actually ran.
  std::string DispatchMode;
};

class Vm {
public:
  explicit Vm(const BcModule &M, VmOptions Options = VmOptions());

  /// Runs $init then main.
  VmResult run();

  /// Optional fuel limit (0 = unlimited); exceeding it traps. Checked
  /// at calls and backward branches, so a runaway stops within one
  /// basic block of the budget.
  void setMaxInstrs(uint64_t Max) { MaxInstrs = Max; }

  /// Warm-VM pooling support (src/exec/VmPool). snapshotForReuse()
  /// captures the post-prepare state a run can mutate — today exactly
  /// the per-function inline-cache tables — and must be called before
  /// the first run(). resetForReuse() restores that snapshot, rewinds
  /// the heap in place (Heap::reset), and clears all per-run state
  /// (stack extent, globals, output, counters, trap state, tick
  /// counter, deadline), leaving the Vm observationally identical to a
  /// freshly constructed one with the same module and options: same
  /// outcomes, traps, executed-instruction counts, and GC activity.
  /// Returns false (and touches nothing) if no snapshot was taken.
  void snapshotForReuse();
  bool resetForReuse();
  /// Re-arms the per-run quotas a pooled Vm may vary between requests.
  /// Heap sizing is deliberately NOT settable here: it shapes GC
  /// behavior, so the pool keys on it instead.
  void setRunQuotas(uint64_t Fuel, uint32_t DeadlineMs) {
    MaxInstrs = Fuel;
    Options.DeadlineMs = DeadlineMs;
  }

  /// Forces a GC between runs (benchmarks).
  Heap &heap() { return TheHeap; }

  /// Was computed-goto dispatch compiled into this binary?
  static bool threadedAvailable();
  /// The dispatch mode this Vm will use ("threaded" or "switch").
  const char *dispatchModeName() const;

  const PrepareStats &prepareStats() const { return Prep.Stats; }

private:
  struct Frame {
    PFunc *Fn;
    uint32_t Pc;
    size_t Base;
    /// Where our return values go in the caller (null for the
    /// outermost frame).
    const PDesc *Pending;
    size_t CallerBase;
  };

  bool enterCall(int FuncId, const PDesc *Desc, size_t CallerBase,
                 const uint64_t *PrependArg, bool SkipFirst);
  /// CallF fast path: arity was proven at prepare time, no prepended
  /// receiver, no closure slot to skip.
  bool enterCallFast(int FuncId, const PDesc *Desc, size_t CallerBase);
  /// Rewrites StackKinds for the live extent from the frame list (the
  /// heap's pre-collect hook; see Heap::setPreCollectHook).
  void refreshStackKinds();
  void growStack(size_t Need);
  void doTrap(TrapKind Kind, const std::string &Extra = "",
              VmTrapCause Cause = VmTrapCause::Program);
  bool runLoop();
  bool runLoopSwitch();
#ifdef VIRGIL_VM_COMPUTED_GOTO
  bool runLoopThreaded();
#endif
  uint64_t makeString(int Index);
  bool builtin(int Kind, const PDesc &Desc, size_t Base);

  const BcModule &M;
  VmOptions Options;
  PreparedModule Prep;
  Heap TheHeap;
  TypeRelations Rels;
  /// Register stack arena: a preallocated high-water-grown slab.
  /// [0, StackTop) is live; the GC scans exactly that extent using the
  /// parallel per-slot kinds.
  std::vector<uint64_t> Stack;
  std::vector<SlotKind> StackKinds;
  size_t StackTop = 0;
  std::vector<uint64_t> Globals;
  std::vector<Frame> Frames;
  std::string Output;
  VmCounters Counters;
  bool Trapped = false;
  VmTrapCause TrapCause = VmTrapCause::None;
  std::string TrapMessage;
  uint64_t MaxInstrs = 0;
  /// Absolute steady-clock deadline in nanoseconds (0 = none), armed
  /// by run() from Options.DeadlineMs.
  uint64_t DeadlineNs = 0;
  /// Countdown between clock reads on the fuel-check path.
  int32_t DeadlineTick = 0;
  int32_t TickCounter = 0;
  std::vector<int64_t> FinalRets;
  /// Post-prepare inline-cache tables, captured by snapshotForReuse()
  /// (one vector per function, empty until a snapshot is taken).
  std::vector<std::vector<IcEntry>> IcSnapshot;
  bool HasReuseSnapshot = false;
};

} // namespace virgil

#endif // VIRGIL_VM_VM_H
