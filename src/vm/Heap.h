//===- vm/Heap.h - Precise generational copying collector -------*- C++ -*-===//
///
/// \file
/// The VM heap: a two-generation copying collector in the tradition of
/// the "precise semi-space garbage collector (also written in Virgil)"
/// the paper ships on native targets, extended with a bump-allocated
/// nursery in front of it (DESIGN.md §11). Precision comes from static
/// slot kinds: the register stack, globals, object fields, and array
/// elements each know whether a slot is a scalar, a heap reference, or
/// a packed closure (whose embedded bound reference the collector
/// rewrites in place).
///
/// Layout: references are slot indices into one address space; 0 is
/// null. The space is partitioned at a fixed boundary:
///
///   [0]                           null (reserved)
///   [1, NurseryLimit)             nursery (young generation)
///   [NurseryLimit, Space.size())  old generation, bump-grown at OldTop
///
/// New objects are bump-allocated in the nursery; a *minor* collection
/// evacuates the survivors into the old generation (promotion) and
/// resets the nursery. Minor roots are the register stack, the
/// remembered set of old→young stores recorded by the write barrier
/// (BcPrepare emits barrier store variants only for reference-kind
/// slots; scalar stores pay nothing), and the barrier-recorded
/// globals. A *major* collection is the classic semispace copy of
/// everything live (old + nursery) into a fresh space, with a
/// grow/shrink policy targeting ~50% occupancy of the old generation.
/// With HeapOptions::Generational off the nursery has size zero and
/// every allocation/collection takes the old single-space path — the
/// ablation and differential-fuzzing baseline.
///
/// Object layout: [header | fields...]; array layout: [header |
/// length | elements...] (void arrays store only the length).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_HEAP_H
#define VIRGIL_VM_HEAP_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace virgil {

/// Log2-bucketed histogram over nanosecond GC pauses; fixed footprint,
/// so copying HeapStats into a VmResult stays cheap and bench binaries
/// can report pause percentiles without the heap logging every pause.
struct PauseHistogram {
  static constexpr int kBuckets = 48;
  uint64_t Counts[kBuckets] = {};
  uint64_t N = 0;
  uint64_t SumNs = 0;
  uint64_t MaxNs = 0;

  void record(uint64_t Ns) {
    int B = 0;
    while (B < kBuckets - 1 && Ns >= ((uint64_t)1 << (B + 1)))
      ++B;
    ++Counts[B];
    ++N;
    SumNs += Ns;
    if (Ns > MaxNs)
      MaxNs = Ns;
  }
  /// Estimated pause (ns) at quantile \p Q in [0,1], interpolated
  /// within the winning power-of-two bucket.
  double percentileNs(double Q) const;
};

struct HeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t ArraysAllocated = 0;
  uint64_t SlotsAllocated = 0;
  /// Slots allocated through the nursery (the denominator of the
  /// survival rate; old-space/large allocations are excluded).
  uint64_t NurserySlotsAllocated = 0;
  uint64_t Collections = 0; ///< Minor + major.
  uint64_t MinorCollections = 0;
  uint64_t MajorCollections = 0;
  uint64_t SlotsCopied = 0;   ///< All generations.
  uint64_t SlotsPromoted = 0; ///< Nursery slots evacuated to old space.
  uint64_t MaxLiveSlots = 0;  ///< Exact, measured at major collections.
  /// Write barrier: qualifying old→young stores observed, and distinct
  /// slots actually recorded in the remembered set (deduplicated).
  uint64_t BarrierHits = 0;
  uint64_t RememberedSlots = 0;
  PauseHistogram MinorPauses;
  PauseHistogram MajorPauses;

  /// Fraction of nursery-allocated slots that survived a minor
  /// collection (0 when nothing was nursery-allocated).
  double survivalRate() const {
    return NurserySlotsAllocated
               ? (double)SlotsPromoted / (double)NurserySlotsAllocated
               : 0.0;
  }
};

/// Heap sizing/mode knobs. The \c LimitSlots cap applies to the *sum*
/// of the generations — the single Space vector — so `--heap-bytes`
/// bounds nursery+old combined.
struct HeapOptions {
  /// Initial total space (nursery + old), in slots.
  size_t InitialSlots = 1 << 14;
  /// Nursery size in slots; clamped so the old generation starts with
  /// at least as much room as the nursery. Ignored when !Generational.
  size_t NurserySlots = 1 << 15;
  bool Generational = true;
  /// Hard cap on total heap slots (8 bytes each); 0 = unlimited. The
  /// effective floor is the initial space size.
  size_t LimitSlots = 0;
};

class Heap {
public:
  explicit Heap(const BcModule &M, HeapOptions Options);
  /// Legacy convenience ctor: generational with the default nursery
  /// (clamped to half of \p InitialSlots).
  Heap(const BcModule &M, size_t InitialSlots = 1 << 14);

  /// GC roots: the VM's register stack (with per-slot kinds) and the
  /// global table. Must be set before allocating. \p StackTop, when
  /// non-null, bounds the live extent of the stack arena: only slots
  /// [0, *StackTop) are scanned, so the VM can keep the vectors at
  /// capacity across calls without the collector walking dead slots.
  void setRoots(std::vector<uint64_t> *Stack,
                std::vector<SlotKind> *StackKinds,
                std::vector<uint64_t> *Globals,
                const size_t *StackTop = nullptr);

  /// Called at the start of every collection, before roots are
  /// scanned. The VM uses this to lazily rebuild StackKinds from the
  /// live frame list — keeping argument passing free of per-call kind
  /// bookkeeping while the collector still sees precise kinds.
  void setPreCollectHook(std::function<void()> Hook) {
    PreCollect = std::move(Hook);
  }

  /// Hard cap on heap slots (8 bytes each); 0 means unlimited — the
  /// post-construction form of HeapOptions::LimitSlots, applied to the
  /// sum of the generations. When a collection cannot free enough
  /// space within the cap, allocations return the null reference 0 and
  /// overLimit() turns true — the VM turns that into a structured trap
  /// instead of growing without bound. Shrinks the nursery to fit when
  /// called on a still-empty heap.
  void setLimitSlots(size_t Limit);
  bool overLimit() const { return OverLimit; }

  /// Allocates an object of class \p ClassId with zeroed fields.
  /// Inline nursery bump fast path (object sizes are precomputed per
  /// class; this inlines into the VmLoop.inc NewObj handler);
  /// collection only on overflow. Returns 0 (null) if the heap quota
  /// is exhausted.
  uint64_t allocObject(int ClassId) {
    if ((size_t)ClassId >= ClassSlots.size())
      syncClassSlots(); // module grew after construction (tests)
    size_t Slots = ClassSlots[ClassId];
    uint64_t Ref = allocSlots(Slots);
    if (Ref == 0)
      return 0; // quota exceeded; OverLimit set on the slow path
    Stats.SlotsAllocated += Slots;
    ++Stats.ObjectsAllocated;
    uint64_t *P = &Space[Ref];
    P[0] = ((uint64_t)ClassId << 3) | 1; // object tag
    for (size_t I = 1; I != Slots; ++I)
      P[I] = 0;
    return Ref;
  }

  /// Allocates an array (elements zeroed). \p Len must be >= 0.
  /// Returns 0 (null) if the heap quota is exhausted.
  uint64_t allocArray(ElemKind Kind, int64_t Len) {
    size_t Slots = 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
    uint64_t Ref = allocSlots(Slots);
    if (Ref == 0)
      return 0; // quota exceeded; OverLimit set on the slow path
    Stats.SlotsAllocated += Slots;
    ++Stats.ArraysAllocated;
    uint64_t *P = &Space[Ref];
    P[0] = ((uint64_t)Kind << 3) | 2; // array tag
    P[1] = (uint64_t)Len;
    for (size_t I = 2; I != Slots; ++I)
      P[I] = 0;
    return Ref;
  }

  // Accessors. Offsets are unchecked here; the VM performs the
  // semantic null/bounds checks.
  int classIdOf(uint64_t Ref) const {
    return (int)(Space[Ref] >> 3);
  }
  bool isArray(uint64_t Ref) const { return (Space[Ref] & 7) == 2; }
  ElemKind arrayElemKind(uint64_t Ref) const {
    return (ElemKind)(Space[Ref] >> 3);
  }
  int64_t arrayLen(uint64_t Ref) const { return (int64_t)Space[Ref + 1]; }
  uint64_t &field(uint64_t Ref, int Index) { return Space[Ref + 1 + Index]; }
  uint64_t &elem(uint64_t Ref, int64_t Index) {
    return Space[Ref + 2 + Index];
  }

  /// Generation query (for tests and the write barrier): young refs
  /// live below the fixed nursery boundary.
  bool isYoung(uint64_t Ref) const { return Ref != 0 && Ref < NurseryLimit; }

  /// Write barrier for a heap store: \p SlotIdx is the absolute slot
  /// just written with \p Val. Records the slot in the remembered set
  /// when an old-generation slot now points at a young object. Inlined
  /// into the barrier store handlers in VmLoop.inc; BcPrepare only
  /// emits those for reference-kind value registers.
  void writeBarrier(uint64_t SlotIdx, uint64_t Val, bool IsClosure) {
    uint64_t T = IsClosure
                     ? (closureIsBound(Val) ? closureBoundRef(Val) : 0)
                     : Val;
    if (T == 0 || T >= NurseryLimit)
      return; // null or old target: nothing to remember
    if (SlotIdx < NurseryLimit)
      return; // young holder: traced by the minor scan anyway
    ++Stats.BarrierHits;
    rememberSlot(SlotIdx, IsClosure);
  }

  /// Write barrier for a global store (globals are logically old, and
  /// minor collections scan only the barrier-recorded ones).
  void globalBarrier(size_t GlobalIdx, uint64_t Val, bool IsClosure) {
    uint64_t T = IsClosure
                     ? (closureIsBound(Val) ? closureBoundRef(Val) : 0)
                     : Val;
    if (T == 0 || T >= NurseryLimit)
      return;
    ++Stats.BarrierHits;
    rememberGlobal(GlobalIdx);
  }

  const HeapStats &stats() const { return Stats; }
  /// Raw space base for the JIT tier: native loads address slots as
  /// [base + ref*8 + disp]. Any collection (or in-place growth) may
  /// move it, which is exactly the JIT's deopt condition.
  uint64_t *spaceData() { return Space.data(); }
  size_t liveSlotsAfterLastGc() const { return LiveAfterGc; }
  /// Current total footprint in slots — nursery + old combined, the
  /// quantity the `--heap-bytes` cap is enforced against.
  size_t totalSlots() const { return Space.size(); }
  size_t nurserySlots() const { return NurserySlots; }
  /// Old-generation slots currently in use (promoted + direct).
  size_t oldUsedSlots() const { return OldTop - NurseryLimit; }
  bool generational() const { return NurserySlots != 0; }

  /// Forces a full (major) collection (benchmarks, tests).
  void collectNow();
  /// Forces a minor collection (write-barrier tests). Full collection
  /// when the heap is non-generational.
  void collectMinorNow();

  /// Rewinds the heap to its post-construction state without releasing
  /// memory: both generations empty, stats and remembered set cleared,
  /// the space resized back to the initial footprint *in place* (the
  /// vector keeps its capacity, so pages faulted in by earlier runs are
  /// reused instead of re-mmap'd). Stale slot contents above the bump
  /// pointers are never re-zeroed — every allocation path initializes
  /// the slots it hands out — so a reset heap is observationally
  /// identical to a freshly constructed one with the same options. The
  /// warm-VM pool (src/exec/VmPool) calls this between requests.
  void reset();

private:
  /// Allocation fast path: nursery bump, falling back to a direct
  /// old-space bump for non-generational heaps and for objects larger
  /// than the nursery. Returns 0 only when the quota is exhausted.
  uint64_t allocSlots(size_t Slots) {
    size_t T = NurseryTop + Slots;
    if (T <= NurseryLimit) { // nursery bump (always false when off)
      uint64_t Ref = NurseryTop;
      NurseryTop = T;
      Stats.NurserySlotsAllocated += Slots;
      return Ref;
    }
    if (NurserySlots == 0 || Slots > NurserySlots) {
      // Old-space direct path: the whole heap when non-generational,
      // or pre-tenuring for objects that could never fit the nursery.
      if (OldTop + Slots <= Space.size() && !OverLimit) {
        uint64_t Ref = OldTop;
        OldTop += Slots;
        return Ref;
      }
    }
    return allocSlotsSlow(Slots);
  }
  uint64_t allocSlotsSlow(size_t Slots);

  size_t sizeOf(uint64_t Ref) const;
  void syncClassSlots();
  size_t effLimit() const; ///< Cap with the initial-size floor; SIZE_MAX when uncapped.
  bool growOldTo(size_t NeedTop);
  void growDirtyBits();
  void rememberSlot(uint64_t SlotIdx, bool IsClosure);
  void rememberGlobal(size_t GlobalIdx);
  void clearRememberedSet();

  /// Empties the nursery: minor collection when the promotion
  /// reservation fits (growing the old space if allowed), major
  /// otherwise.
  void collectNursery();
  void collectMinor();
  void collectMajor(size_t NeedSlots);

  // Minor-collection machinery (evacuation into the same Space).
  uint64_t forwardYoung(uint64_t Ref);
  void scanSlotYoung(uint64_t &Slot, SlotKind Kind);
  // Major-collection machinery (copy into a fresh space).
  uint64_t forwardAny(uint64_t Ref, std::vector<uint64_t> &To, size_t &Top2);
  void scanSlotAny(uint64_t &Slot, SlotKind Kind, std::vector<uint64_t> &To,
                   size_t &Top2);

  const BcModule &M;
  size_t LimitSlots = 0;
  bool OverLimit = false;
  /// Per-class total slot count (1 header + fields), precomputed so
  /// the allocation fast path avoids chasing the class table.
  std::vector<uint32_t> ClassSlots;
  std::vector<uint64_t> Space; ///< Nursery + old generation.
  size_t NurserySlots = 0;     ///< 0 = single-space (non-generational).
  size_t NurseryLimit = 1;     ///< Nursery is [1, NurseryLimit).
  size_t NurseryTop = 1;       ///< Next free nursery slot.
  size_t OldTop = 1;           ///< Next free old slot (>= NurseryLimit).
  size_t InitialTotal = 0;     ///< Floor for the quota and shrink policy.

  /// Remembered set: absolute old-space slot indices (<< 1 | closure
  /// flag) plus barrier-recorded global indices, each deduplicated by
  /// a dirty bitmap so hot stores append once per slot per cycle.
  std::vector<uint64_t> RemSlots;
  std::vector<uint32_t> RemGlobals;
  std::vector<uint64_t> DirtyWords; ///< 1 bit per old-space slot.
  std::vector<uint8_t> GlobalDirty;

  std::vector<uint64_t> *Stack = nullptr;
  std::vector<SlotKind> *StackKinds = nullptr;
  std::vector<uint64_t> *Globals = nullptr;
  const size_t *StackTop = nullptr;
  std::function<void()> PreCollect;
  HeapStats Stats;
  size_t LiveAfterGc = 0;
};

} // namespace virgil

#endif // VIRGIL_VM_HEAP_H
