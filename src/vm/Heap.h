//===- vm/Heap.h - Precise semispace copying collector ----------*- C++ -*-===//
///
/// \file
/// The VM heap: a Cheney-style semispace copying collector, the same
/// algorithm as the "precise semi-space garbage collector (also written
/// in Virgil)" the paper ships on native targets. Precision comes from
/// static slot kinds: the register stack, globals, object fields, and
/// array elements each know whether a slot is a scalar, a heap
/// reference, or a packed closure (whose embedded bound reference the
/// collector rewrites in place).
///
/// References are slot indices into the from-space; 0 is null. Object
/// layout: [header | fields...]; array layout: [header | length |
/// elements...] (void arrays store only the length).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_HEAP_H
#define VIRGIL_VM_HEAP_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace virgil {

struct HeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t ArraysAllocated = 0;
  uint64_t SlotsAllocated = 0;
  uint64_t Collections = 0;
  uint64_t SlotsCopied = 0;
  uint64_t MaxLiveSlots = 0;
};

class Heap {
public:
  Heap(const BcModule &M, size_t InitialSlots = 1 << 14);

  /// GC roots: the VM's register stack (with per-slot kinds) and the
  /// global table. Must be set before allocating. \p StackTop, when
  /// non-null, bounds the live extent of the stack arena: only slots
  /// [0, *StackTop) are scanned, so the VM can keep the vectors at
  /// capacity across calls without the collector walking dead slots.
  void setRoots(std::vector<uint64_t> *Stack,
                std::vector<SlotKind> *StackKinds,
                std::vector<uint64_t> *Globals,
                const size_t *StackTop = nullptr);

  /// Called at the start of every collection, before roots are
  /// scanned. The VM uses this to lazily rebuild StackKinds from the
  /// live frame list — keeping argument passing free of per-call kind
  /// bookkeeping while the collector still sees precise kinds.
  void setPreCollectHook(std::function<void()> Hook) {
    PreCollect = std::move(Hook);
  }

  /// Hard cap on heap slots (8 bytes each); 0 means unlimited. When a
  /// collection cannot free enough space within the cap, allocations
  /// return the null reference 0 and overLimit() turns true — the VM
  /// turns that into a structured trap instead of growing without
  /// bound. The effective floor is the initial space size.
  void setLimitSlots(size_t Limit) { LimitSlots = Limit; }
  bool overLimit() const { return OverLimit; }

  /// Allocates an object of class \p ClassId with zeroed fields.
  /// Inline bump-pointer fast path (object sizes are precomputed per
  /// class); collection only on overflow. Returns 0 (null) if the
  /// heap quota is exhausted.
  uint64_t allocObject(int ClassId) {
    if ((size_t)ClassId >= ClassSlots.size())
      syncClassSlots(); // module grew after construction (tests)
    size_t Slots = ClassSlots[ClassId];
    if (Top + Slots > Space.size()) {
      collect(Slots);
      if (Top + Slots > Space.size())
        return 0; // quota exceeded; OverLimit set by collect
    }
    uint64_t Ref = Top;
    Top += Slots;
    Stats.SlotsAllocated += Slots;
    ++Stats.ObjectsAllocated;
    uint64_t *P = &Space[Ref];
    P[0] = ((uint64_t)ClassId << 3) | 1; // object tag
    for (size_t I = 1; I != Slots; ++I)
      P[I] = 0;
    return Ref;
  }

  /// Allocates an array (elements zeroed). \p Len must be >= 0.
  /// Returns 0 (null) if the heap quota is exhausted.
  uint64_t allocArray(ElemKind Kind, int64_t Len) {
    size_t Slots = 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
    if (Top + Slots > Space.size()) {
      collect(Slots);
      if (Top + Slots > Space.size())
        return 0; // quota exceeded; OverLimit set by collect
    }
    uint64_t Ref = Top;
    Top += Slots;
    Stats.SlotsAllocated += Slots;
    ++Stats.ArraysAllocated;
    uint64_t *P = &Space[Ref];
    P[0] = ((uint64_t)Kind << 3) | 2; // array tag
    P[1] = (uint64_t)Len;
    for (size_t I = 2; I != Slots; ++I)
      P[I] = 0;
    return Ref;
  }

  // Accessors. Offsets are unchecked here; the VM performs the
  // semantic null/bounds checks.
  int classIdOf(uint64_t Ref) const {
    return (int)(Space[Ref] >> 3);
  }
  bool isArray(uint64_t Ref) const { return (Space[Ref] & 7) == 2; }
  ElemKind arrayElemKind(uint64_t Ref) const {
    return (ElemKind)(Space[Ref] >> 3);
  }
  int64_t arrayLen(uint64_t Ref) const { return (int64_t)Space[Ref + 1]; }
  uint64_t &field(uint64_t Ref, int Index) { return Space[Ref + 1 + Index]; }
  uint64_t &elem(uint64_t Ref, int64_t Index) {
    return Space[Ref + 2 + Index];
  }

  const HeapStats &stats() const { return Stats; }
  size_t liveSlotsAfterLastGc() const { return LiveAfterGc; }

  /// Forces a collection (exposed for the GC stress benchmark).
  void collectNow();

private:
  size_t sizeOf(uint64_t Ref) const;
  void syncClassSlots();
  void collect(size_t NeedSlots);
  uint64_t forward(uint64_t Ref, std::vector<uint64_t> &To, size_t &Top);
  void scanSlot(uint64_t &Slot, SlotKind Kind, std::vector<uint64_t> &To,
                size_t &Top);

  const BcModule &M;
  size_t LimitSlots = 0;
  bool OverLimit = false;
  /// Per-class total slot count (1 header + fields), precomputed so
  /// the allocation fast path avoids chasing the class table.
  std::vector<uint32_t> ClassSlots;
  std::vector<uint64_t> Space; ///< Current from-space.
  size_t Top = 1;              ///< Next free slot (0 is reserved/null).
  std::vector<uint64_t> *Stack = nullptr;
  std::vector<SlotKind> *StackKinds = nullptr;
  std::vector<uint64_t> *Globals = nullptr;
  const size_t *StackTop = nullptr;
  std::function<void()> PreCollect;
  HeapStats Stats;
  size_t LiveAfterGc = 0;
};

} // namespace virgil

#endif // VIRGIL_VM_HEAP_H
