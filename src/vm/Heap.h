//===- vm/Heap.h - Precise semispace copying collector ----------*- C++ -*-===//
///
/// \file
/// The VM heap: a Cheney-style semispace copying collector, the same
/// algorithm as the "precise semi-space garbage collector (also written
/// in Virgil)" the paper ships on native targets. Precision comes from
/// static slot kinds: the register stack, globals, object fields, and
/// array elements each know whether a slot is a scalar, a heap
/// reference, or a packed closure (whose embedded bound reference the
/// collector rewrites in place).
///
/// References are slot indices into the from-space; 0 is null. Object
/// layout: [header | fields...]; array layout: [header | length |
/// elements...] (void arrays store only the length).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_HEAP_H
#define VIRGIL_VM_HEAP_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace virgil {

struct HeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t ArraysAllocated = 0;
  uint64_t SlotsAllocated = 0;
  uint64_t Collections = 0;
  uint64_t SlotsCopied = 0;
  uint64_t MaxLiveSlots = 0;
};

class Heap {
public:
  Heap(const BcModule &M, size_t InitialSlots = 1 << 14);

  /// GC roots: the VM's register stack (with per-slot kinds) and the
  /// global table. Must be set before allocating.
  void setRoots(std::vector<uint64_t> *Stack,
                std::vector<SlotKind> *StackKinds,
                std::vector<uint64_t> *Globals);

  /// Allocates an object of class \p ClassId with zeroed fields.
  uint64_t allocObject(int ClassId);

  /// Allocates an array (elements zeroed). \p Len must be >= 0.
  uint64_t allocArray(ElemKind Kind, int64_t Len);

  // Accessors. Offsets are unchecked here; the VM performs the
  // semantic null/bounds checks.
  int classIdOf(uint64_t Ref) const {
    return (int)(Space[Ref] >> 3);
  }
  bool isArray(uint64_t Ref) const { return (Space[Ref] & 7) == 2; }
  ElemKind arrayElemKind(uint64_t Ref) const {
    return (ElemKind)(Space[Ref] >> 3);
  }
  int64_t arrayLen(uint64_t Ref) const { return (int64_t)Space[Ref + 1]; }
  uint64_t &field(uint64_t Ref, int Index) { return Space[Ref + 1 + Index]; }
  uint64_t &elem(uint64_t Ref, int64_t Index) {
    return Space[Ref + 2 + Index];
  }

  const HeapStats &stats() const { return Stats; }
  size_t liveSlotsAfterLastGc() const { return LiveAfterGc; }

  /// Forces a collection (exposed for the GC stress benchmark).
  void collectNow();

private:
  size_t sizeOf(uint64_t Ref) const;
  void collect(size_t NeedSlots);
  uint64_t forward(uint64_t Ref, std::vector<uint64_t> &To, size_t &Top);
  void scanSlot(uint64_t &Slot, SlotKind Kind, std::vector<uint64_t> &To,
                size_t &Top);
  uint64_t allocRaw(size_t Slots);

  const BcModule &M;
  std::vector<uint64_t> Space; ///< Current from-space.
  size_t Top = 1;              ///< Next free slot (0 is reserved/null).
  std::vector<uint64_t> *Stack = nullptr;
  std::vector<SlotKind> *StackKinds = nullptr;
  std::vector<uint64_t> *Globals = nullptr;
  HeapStats Stats;
  size_t LiveAfterGc = 0;
};

} // namespace virgil

#endif // VIRGIL_VM_HEAP_H
