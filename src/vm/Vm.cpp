//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include <cassert>

using namespace virgil;

Vm::Vm(const BcModule &M)
    : M(M), TheHeap(M), Rels(*M.Types) {
  TheHeap.setRoots(&Stack, &StackKinds, &Globals);
  Globals.assign(M.GlobalKinds.size(), 0);
}

void Vm::doTrap(TrapKind Kind, const std::string &Extra) {
  Trapped = true;
  TrapMessage = trapKindName(Kind);
  if (!Extra.empty())
    TrapMessage += ": " + Extra;
}

uint64_t Vm::makeString(int Index) {
  const std::string &S = M.Strings[Index];
  uint64_t Ref = TheHeap.allocArray(ElemKind::Scalar, (int64_t)S.size());
  for (size_t I = 0; I != S.size(); ++I)
    TheHeap.elem(Ref, (int64_t)I) = (uint8_t)S[I];
  ++Counters.StringAllocs;
  return Ref;
}

void Vm::pushFrame(int FuncId, const CallDesc *Desc, size_t CallerBase,
                   const std::vector<uint64_t> &Args) {
  const BcFunction &F = M.Functions[FuncId];
  Frame Fr;
  Fr.FuncId = FuncId;
  Fr.Pc = 0;
  Fr.Base = Stack.size();
  Fr.Pending = Desc;
  Fr.CallerBase = CallerBase;
  Stack.resize(Stack.size() + F.NumRegs, 0);
  StackKinds.insert(StackKinds.end(), F.RegKinds.begin(), F.RegKinds.end());
  assert(Args.size() == F.NumParams && "argument arity mismatch");
  for (size_t I = 0; I != Args.size(); ++I)
    Stack[Fr.Base + I] = Args[I];
  Frames.push_back(Fr);
}

bool Vm::builtin(int Kind, const CallDesc &Desc, size_t Base) {
  switch (Kind) {
  case 0: { // Puts.
    uint64_t Ref = Stack[Base + Desc.Args[0]];
    if (Ref == 0) {
      doTrap(TrapKind::NullDeref);
      return false;
    }
    int64_t Len = TheHeap.arrayLen(Ref);
    for (int64_t I = 0; I != Len; ++I)
      Output.push_back((char)TheHeap.elem(Ref, I));
    return true;
  }
  case 1: // Puti.
    Output += std::to_string((int32_t)Stack[Base + Desc.Args[0]]);
    return true;
  case 2: // Putc.
    Output.push_back((char)Stack[Base + Desc.Args[0]]);
    return true;
  case 3: // Ln.
    Output.push_back('\n');
    return true;
  case 4: // Ticks.
    if (!Desc.Dsts.empty())
      Stack[Base + Desc.Dsts[0]] = (uint32_t)TickCounter++;
    return true;
  case 5: { // Error.
    uint64_t Ref = Stack[Base + Desc.Args[0]];
    std::string Msg;
    if (Ref != 0) {
      int64_t Len = TheHeap.arrayLen(Ref);
      for (int64_t I = 0; I != Len; ++I)
        Msg.push_back((char)TheHeap.elem(Ref, I));
    }
    doTrap(TrapKind::UserError, Msg);
    return false;
  }
  }
  doTrap(TrapKind::Unreachable, "unknown builtin");
  return false;
}

/// Is class \p Sub (an id) equal to or a subclass of \p Super?
static bool classSubtype(const BcModule &M, int Sub, int Super) {
  for (int C = Sub; C >= 0; C = M.Classes[C].ParentId)
    if (C == Super)
      return true;
  return false;
}

bool Vm::runLoop() {
  while (!Frames.empty()) {
    Frame &Fr = Frames.back();
    const BcFunction &F = M.Functions[Fr.FuncId];
    const BcInstr &I = F.Code[Fr.Pc++];
    size_t B = Fr.Base;
    ++Counters.Instrs;
    if (MaxInstrs && Counters.Instrs > MaxInstrs) {
      doTrap(TrapKind::Unreachable, "instruction budget exceeded");
      return false;
    }
    switch (I.Op) {
    case BcOp::Nop:
      break;
    case BcOp::ConstI:
      Stack[B + I.A] = (uint64_t)I.Imm;
      break;
    case BcOp::ConstStr:
      Stack[B + I.A] = makeString((int)I.Imm);
      break;
    case BcOp::Mv:
      Stack[B + I.A] = Stack[B + I.B];
      break;
    // int arithmetic wraps; compute in 64 bits so C++ signed overflow
    // (undefined) never happens for 32-bit operands.
    case BcOp::Add:
      Stack[B + I.A] = (uint32_t)(int32_t)((int64_t)(int32_t)Stack[B + I.B] +
                                           (int64_t)(int32_t)Stack[B + I.C]);
      break;
    case BcOp::Sub:
      Stack[B + I.A] = (uint32_t)(int32_t)((int64_t)(int32_t)Stack[B + I.B] -
                                           (int64_t)(int32_t)Stack[B + I.C]);
      break;
    case BcOp::Mul:
      Stack[B + I.A] = (uint32_t)(int32_t)((int64_t)(int32_t)Stack[B + I.B] *
                                           (int64_t)(int32_t)Stack[B + I.C]);
      break;
    case BcOp::Div:
    case BcOp::Mod: {
      int32_t Lhs = (int32_t)Stack[B + I.B];
      int32_t Rhs = (int32_t)Stack[B + I.C];
      if (Rhs == 0) {
        doTrap(TrapKind::DivByZero);
        return false;
      }
      int64_t R = I.Op == BcOp::Div ? (int64_t)Lhs / Rhs
                                    : (int64_t)Lhs % Rhs;
      Stack[B + I.A] = (uint32_t)(int32_t)R;
      break;
    }
    case BcOp::Neg:
      Stack[B + I.A] = (uint32_t)(int32_t)(-(int64_t)(int32_t)Stack[B + I.B]);
      break;
    case BcOp::Lt:
      Stack[B + I.A] = (int32_t)Stack[B + I.B] < (int32_t)Stack[B + I.C];
      break;
    case BcOp::Le:
      Stack[B + I.A] = (int32_t)Stack[B + I.B] <= (int32_t)Stack[B + I.C];
      break;
    case BcOp::Gt:
      Stack[B + I.A] = (int32_t)Stack[B + I.B] > (int32_t)Stack[B + I.C];
      break;
    case BcOp::Ge:
      Stack[B + I.A] = (int32_t)Stack[B + I.B] >= (int32_t)Stack[B + I.C];
      break;
    case BcOp::Not:
      Stack[B + I.A] = Stack[B + I.B] == 0;
      break;
    case BcOp::And:
      Stack[B + I.A] = (Stack[B + I.B] != 0) && (Stack[B + I.C] != 0);
      break;
    case BcOp::Or:
      Stack[B + I.A] = (Stack[B + I.B] != 0) || (Stack[B + I.C] != 0);
      break;
    case BcOp::EqBits:
      // Every value is canonical 64 bits (prims, refs, packed
      // closures), so universal equality is bit equality.
      Stack[B + I.A] = Stack[B + I.B] == Stack[B + I.C];
      break;
    case BcOp::NeBits:
      Stack[B + I.A] = Stack[B + I.B] != Stack[B + I.C];
      break;
    case BcOp::NewObj:
      Stack[B + I.A] = TheHeap.allocObject((int)I.Imm);
      ++Counters.HeapObjects;
      break;
    case BcOp::NewArr: {
      int64_t Len = (int32_t)Stack[B + I.B];
      if (Len < 0) {
        doTrap(TrapKind::Bounds, "negative array length");
        return false;
      }
      Stack[B + I.A] = TheHeap.allocArray((ElemKind)I.Imm, Len);
      ++Counters.HeapArrays;
      break;
    }
    case BcOp::LdF: {
      uint64_t Ref = Stack[B + I.B];
      if (Ref == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      Stack[B + I.A] = TheHeap.field(Ref, (int)I.Imm);
      break;
    }
    case BcOp::StF: {
      uint64_t Ref = Stack[B + I.A];
      if (Ref == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      TheHeap.field(Ref, (int)I.Imm) = Stack[B + I.B];
      break;
    }
    case BcOp::NullChk:
      if (Stack[B + I.A] == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      break;
    case BcOp::LdE:
    case BcOp::BoundsChk: {
      uint64_t Ref = Stack[B + I.B];
      if (Ref == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      int64_t Idx = (int32_t)Stack[B + I.C];
      if (Idx < 0 || Idx >= TheHeap.arrayLen(Ref)) {
        doTrap(TrapKind::Bounds);
        return false;
      }
      if (I.Op == BcOp::LdE)
        Stack[B + I.A] = TheHeap.elem(Ref, Idx);
      break;
    }
    case BcOp::StE: {
      uint64_t Ref = Stack[B + I.A];
      if (Ref == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      int64_t Idx = (int32_t)Stack[B + I.B];
      if (Idx < 0 || Idx >= TheHeap.arrayLen(Ref)) {
        doTrap(TrapKind::Bounds);
        return false;
      }
      TheHeap.elem(Ref, Idx) = Stack[B + I.C];
      break;
    }
    case BcOp::ArrLen: {
      uint64_t Ref = Stack[B + I.B];
      if (Ref == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      Stack[B + I.A] = (uint64_t)TheHeap.arrayLen(Ref);
      break;
    }
    case BcOp::LdG:
      Stack[B + I.A] = Globals[I.Imm];
      break;
    case BcOp::StG:
      Globals[I.Imm] = Stack[B + I.A];
      break;
    case BcOp::CallF: {
      ++Counters.Calls;
      const CallDesc &Desc = F.Descs[I.A];
      if (!callFunction((int)I.Imm, &Desc, B, nullptr, false))
        return false;
      break;
    }
    case BcOp::CallV: {
      ++Counters.Calls;
      ++Counters.VirtualCalls;
      const CallDesc &Desc = F.Descs[I.A];
      uint64_t Recv = Stack[B + Desc.Args[0]];
      if (Recv == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      int ClassId = TheHeap.classIdOf(Recv);
      int Target = M.Classes[ClassId].VTable[I.Imm];
      if (Target < 0) {
        doTrap(TrapKind::Unreachable, "abstract method");
        return false;
      }
      if (!callFunction(Target, &Desc, B, nullptr, false))
        return false;
      break;
    }
    case BcOp::CallInd: {
      ++Counters.Calls;
      ++Counters.IndirectCalls;
      const CallDesc &Desc = F.Descs[I.A];
      uint64_t Clo = Stack[B + Desc.Args[0]];
      if (Clo == 0) {
        doTrap(TrapKind::NullDeref);
        return false;
      }
      int FuncId = closureFuncId(Clo);
      const BcFunction &G = M.Functions[FuncId];
      if (closureIsBound(Clo)) {
        uint64_t Bound = closureBoundRef(Clo);
        if (!callFunction(FuncId, &Desc, B, &Bound, true))
          return false;
        break;
      }
      if (G.Slot >= 0 && G.OwnerClassId >= 0) {
        // Unbound virtual method: dispatch on the first argument.
        if (Desc.Args.size() < 2 || Stack[B + Desc.Args[1]] == 0) {
          doTrap(TrapKind::NullDeref);
          return false;
        }
        int ClassId = TheHeap.classIdOf(Stack[B + Desc.Args[1]]);
        int Target = M.Classes[ClassId].VTable[G.Slot];
        if (Target < 0) {
          doTrap(TrapKind::Unreachable, "abstract method");
          return false;
        }
        FuncId = Target;
      }
      if (!callFunction(FuncId, &Desc, B, nullptr, true))
        return false;
      break;
    }
    case BcOp::CallB: {
      ++Counters.Calls;
      const CallDesc &Desc = F.Descs[I.A];
      if (!builtin((int)I.Imm, Desc, B))
        return false;
      break;
    }
    case BcOp::MkClo: {
      int FuncId = (int)I.Imm;
      bool HasBound = I.C != 0;
      uint64_t Bound = 0;
      if (HasBound) {
        Bound = Stack[B + I.B];
        const BcFunction &G = M.Functions[FuncId];
        if (G.Slot >= 0 && G.OwnerClassId >= 0) {
          // Bound virtual method: resolve against the receiver's
          // dynamic class at creation.
          if (Bound == 0) {
            doTrap(TrapKind::NullDeref);
            return false;
          }
          int ClassId = TheHeap.classIdOf(Bound);
          int Target = M.Classes[ClassId].VTable[G.Slot];
          if (Target < 0) {
            doTrap(TrapKind::Unreachable, "abstract method");
            return false;
          }
          FuncId = Target;
        }
      }
      Stack[B + I.A] = packClosure(FuncId, Bound, HasBound);
      break;
    }
    case BcOp::CastClass: {
      uint64_t Ref = Stack[B + I.B];
      if (Ref != 0 &&
          !classSubtype(M, TheHeap.classIdOf(Ref), (int)I.Imm)) {
        doTrap(TrapKind::CastFail, M.Classes[I.Imm].Name);
        return false;
      }
      Stack[B + I.A] = Ref;
      break;
    }
    case BcOp::QueryClass: {
      uint64_t Ref = Stack[B + I.B];
      Stack[B + I.A] =
          Ref != 0 && classSubtype(M, TheHeap.classIdOf(Ref), (int)I.Imm);
      break;
    }
    case BcOp::CastIntByte: {
      int32_t V = (int32_t)Stack[B + I.B];
      if (V < 0 || V > 255) {
        doTrap(TrapKind::CastFail, "int to byte");
        return false;
      }
      Stack[B + I.A] = (uint32_t)V;
      break;
    }
    case BcOp::CastFunc:
    case BcOp::QueryFunc: {
      uint64_t Clo = Stack[B + I.B];
      bool Ok = false;
      if (Clo != 0) {
        const BcFunction &G = M.Functions[closureFuncId(Clo)];
        Type *Dyn = closureIsBound(Clo) ? G.BoundFuncTy : G.SourceFuncTy;
        Ok = Dyn && Rels.isSubtype(Dyn, M.TypeTable[I.Imm]);
      }
      if (I.Op == BcOp::QueryFunc) {
        Stack[B + I.A] = Ok;
      } else {
        if (Clo != 0 && !Ok) {
          doTrap(TrapKind::CastFail, "function type");
          return false;
        }
        Stack[B + I.A] = Clo;
      }
      break;
    }
    case BcOp::CastNullOnly:
      if (Stack[B + I.B] != 0) {
        doTrap(TrapKind::CastFail);
        return false;
      }
      Stack[B + I.A] = 0;
      break;
    case BcOp::QueryNonNull:
      Stack[B + I.A] = Stack[B + I.B] != 0;
      break;
    case BcOp::Jmp:
      Fr.Pc = (size_t)I.Imm;
      break;
    case BcOp::JmpIfFalse:
      if (Stack[B + I.A] == 0)
        Fr.Pc = (size_t)I.Imm;
      break;
    case BcOp::RetOp: {
      const CallDesc &Desc = F.Descs[I.A];
      RetBuf.clear();
      for (uint16_t R : Desc.Args)
        RetBuf.push_back(Stack[B + R]);
      Frame Done = Fr;
      Frames.pop_back();
      Stack.resize(Done.Base);
      StackKinds.resize(Done.Base);
      if (Done.Pending) {
        const CallDesc &P = *Done.Pending;
        for (size_t K = 0; K != P.Dsts.size(); ++K)
          Stack[Done.CallerBase + P.Dsts[K]] = RetBuf[K];
      } else {
        FinalRets.clear();
        for (uint64_t V : RetBuf)
          FinalRets.push_back((int64_t)V);
      }
      break;
    }
    case BcOp::TrapOp:
      doTrap((TrapKind)I.Imm);
      return false;
    }
    if (Frames.size() > 100000) {
      doTrap(TrapKind::Unreachable, "stack overflow");
      return false;
    }
  }
  return true;
}

bool Vm::callFunction(int FuncId, const CallDesc *Desc, size_t CallerBase,
                      const uint64_t *PrependArg, bool SkipFirst) {
  const BcFunction &G = M.Functions[FuncId];
  std::vector<uint64_t> Args;
  Args.reserve(G.NumParams);
  if (PrependArg)
    Args.push_back(*PrependArg);
  // SkipFirst: indirect calls name the closure in Args[0].
  for (size_t I = SkipFirst ? 1 : 0; I != Desc->Args.size(); ++I)
    Args.push_back(Stack[CallerBase + Desc->Args[I]]);
  if (Args.size() != G.NumParams) {
    doTrap(TrapKind::Unreachable, "calling convention mismatch in '" +
                                      G.Name + "'");
    return false;
  }
  pushFrame(FuncId, Desc, CallerBase, Args);
  return true;
}

VmResult Vm::run() {
  VmResult R;
  Globals.assign(M.GlobalKinds.size(), 0);
  if (M.InitId >= 0 && !Trapped) {
    pushFrame(M.InitId, nullptr, 0, {});
    runLoop();
  }
  if (M.MainId >= 0 && !Trapped) {
    pushFrame(M.MainId, nullptr, 0, {});
    runLoop();
    if (!Trapped && !FinalRets.empty()) {
      R.ResultBits = (int32_t)FinalRets[0];
      R.HasResult = true;
    }
  }
  R.Trapped = Trapped;
  R.TrapMessage = TrapMessage;
  R.Output = Output;
  R.Counters = Counters;
  R.Heap = TheHeap.stats();
  return R;
}
