//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include "jit/Jit.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>

using namespace virgil;

namespace {

/// Register-arena slots preallocated up front; grown by doubling on
/// high-water overflow and never shrunk.
constexpr size_t InitialStackSlots = 1 << 16;

/// Is class \p Sub (an id) equal to or a subclass of \p Super?
bool classSubtype(const BcModule &M, int Sub, int Super) {
  for (int C = Sub; C >= 0; C = M.Classes[C].ParentId)
    if (C == Super)
      return true;
  return false;
}

} // namespace

namespace {

/// Builds the heap configuration from the VM options: the quota caps
/// the *sum* of nursery + old space, with the documented 128 KiB (1<<14
/// slots) floor, and the nursery is carved out of that total (the Heap
/// clamps it so the old generation starts no smaller than the nursery).
HeapOptions heapOptionsFor(const VmOptions &Opts) {
  HeapOptions H;
  H.Generational = Opts.Generational;
  H.NurserySlots =
      std::max<size_t>(Opts.NurseryBytes / sizeof(uint64_t), 16);
  H.LimitSlots = (size_t)(Opts.MaxHeapBytes / sizeof(uint64_t));
  // Initial total: big enough that the default nursery fits alongside
  // an equal-size old generation, but never above the quota (so small
  // `--heap-bytes` values keep their floor semantics). Kept at 128 KiB
  // for the default nursery on purpose: the heap is zero-filled per Vm,
  // and servers/fuzzers build a fresh Vm per request, so a larger
  // default ends up mmap'd and page-faulted in on every single run
  // (measured ~10x the whole setup cost of a small program).
  H.InitialSlots = std::max<size_t>(1 << 14, 2 * H.NurserySlots);
  if (H.LimitSlots)
    H.InitialSlots =
        std::min(H.InitialSlots, std::max<size_t>(H.LimitSlots, 1 << 14));
  return H;
}

} // namespace

bool VmOptions::defaultGenerational() {
  // Read once per process: the CI gc-stress lane flips the default for
  // every Vm in the binary without threading a flag through each
  // construction site. Tests that need a specific mode set the field
  // explicitly and never depend on the environment.
  static const bool Gen = [] {
    const char *E = std::getenv("VIRGIL_VM_GC");
    if (!E)
      return true;
    return !(std::string_view(E) == "semi" ||
             std::string_view(E) == "semispace");
  }();
  return Gen;
}

uint32_t VmOptions::defaultNurseryBytes() {
  static const uint32_t Bytes = [] {
    if (const char *E = std::getenv("VIRGIL_VM_NURSERY_BYTES")) {
      char *End = nullptr;
      unsigned long V = std::strtoul(E, &End, 10);
      if (End && *End == '\0' && V >= 128 && V <= (1u << 30))
        return (uint32_t)V;
    }
    // 64 KiB: large enough that minor pauses amortize (thousands of
    // slots between collections), small enough that the zero-filled
    // per-Vm heap stays at the seed engine's 128 KiB footprint — see
    // heapOptionsFor. Alloc-heavy workloads can raise it with
    // --vm-nursery-bytes.
    return (uint32_t)(64 * 1024);
  }();
  return Bytes;
}

VmOptions::JitMode VmOptions::defaultJitMode() {
  static const JitMode Mode = [] {
    const char *E = std::getenv("VIRGIL_VM_JIT");
    if (!E)
      return JitMode::Auto;
    std::string_view S(E);
    if (S == "on" || S == "1" || S == "true")
      return JitMode::On;
    if (S == "off" || S == "0" || S == "false")
      return JitMode::Off;
    return JitMode::Auto;
  }();
  return Mode;
}

uint32_t VmOptions::defaultJitThreshold() {
  static const uint32_t Threshold = [] {
    if (const char *E = std::getenv("VIRGIL_VM_JIT_THRESHOLD")) {
      char *End = nullptr;
      unsigned long V = std::strtoul(E, &End, 10);
      if (End && *End == '\0' && V <= 0xFFFFFFFEul)
        return (uint32_t)V;
    }
    // 64 entries/backward-branches: small enough that a benchmark's
    // hot loop tiers up within its first few thousand instructions,
    // large enough that one-shot code never pays a compile.
    return 64u;
  }();
  return Threshold;
}

Vm::Vm(const BcModule &M, VmOptions Opts)
    : M(M), Options(Opts),
      Prep(prepareModule(
          M, PrepareOptions{Opts.Fuse, Opts.InlineCache, Opts.Generational})),
      TheHeap(M, heapOptionsFor(Opts)), Rels(*M.Types) {
  TheHeap.setRoots(&Stack, &StackKinds, &Globals, &StackTop);
  TheHeap.setPreCollectHook([this] { refreshStackKinds(); });
  Globals.assign(M.GlobalKinds.size(), 0);
  Stack.assign(InitialStackSlots, 0);
  StackKinds.assign(InitialStackSlots, SlotKind::Scalar);
  StackData = Stack.data();
  StackLen = Stack.size();
  Frames.reserve(1024);
  Counters.FusedStatic = Prep.Stats.fusedTotal();
  MaxInstrs = Opts.MaxInstrs;

  // Baseline JIT tier: probed per Vm (the simulate-unsupported test
  // hook must take effect per-construction, and the probe is one mmap).
  // A tier that fails to bootstrap its stubs behaves like an absent
  // one, and every function keeps the kNoJitGate sentinel so the
  // interpreter's tier check stays a single always-false compare.
  if (Options.Jit != VmOptions::JitMode::Off) {
    JitAvailable = jit::JitTier::hostSupported();
    if (JitAvailable) {
      JitT = std::make_unique<jit::JitTier>(*this, Options.JitThreshold);
      if (!JitT->ready()) {
        JitT.reset();
      } else {
        for (PFunc &F : Prep.Funcs)
          F.Gate = Options.JitThreshold;
      }
    }
  }
}

Vm::~Vm() = default;

void Vm::snapshotForReuse() {
  IcSnapshot.clear();
  IcSnapshot.reserve(Prep.Funcs.size());
  for (const PFunc &F : Prep.Funcs)
    IcSnapshot.push_back(F.Ics);
  HasReuseSnapshot = true;
}

bool Vm::resetForReuse() {
  if (!HasReuseSnapshot)
    return false;
  for (size_t I = 0; I != Prep.Funcs.size(); ++I)
    Prep.Funcs[I].Ics = IcSnapshot[I];
  TheHeap.reset();
  // The register arena stays at its high-water size (enterCall zeroes
  // every callee register beyond the copied arguments, so stale slots
  // are never read); everything else rewinds to the post-construction
  // state.
  StackTop = 0;
  Frames.clear();
  Globals.assign(M.GlobalKinds.size(), 0);
  Output.clear();
  FinalRets.clear();
  Counters = VmCounters();
  Counters.FusedStatic = Prep.Stats.fusedTotal();
  Trapped = false;
  TrapCause = VmTrapCause::None;
  TrapMessage.clear();
  MaxInstrs = Options.MaxInstrs;
  DeadlineNs = 0;
  DeadlineTick = 0;
  TickCounter = 0;
  // JIT state (compiled code, hotness, IC patches) deliberately
  // survives: warm code is part of a pooled Vm's value, and the tier
  // is observationally identical either way.
  PendingJitEntry = nullptr;
  return true;
}

bool Vm::threadedAvailable() {
#ifdef VIRGIL_VM_COMPUTED_GOTO
  return true;
#else
  return false;
#endif
}

const char *Vm::dispatchModeName() const {
  bool Threaded =
      threadedAvailable() && Options.Mode != VmOptions::Dispatch::Switch;
  return Threaded ? "threaded" : "switch";
}

void Vm::doTrap(TrapKind Kind, const std::string &Extra, VmTrapCause Cause) {
  Trapped = true;
  TrapCause = Cause;
  TrapMessage = trapKindName(Kind);
  if (!Extra.empty())
    TrapMessage += ": " + Extra;
}

uint64_t Vm::makeString(int Index) {
  const std::string &S = M.Strings[Index];
  uint64_t Ref = TheHeap.allocArray(ElemKind::Scalar, (int64_t)S.size());
  if (Ref == 0)
    return 0; // heap quota exhausted; the caller traps on the flag
  for (size_t I = 0; I != S.size(); ++I)
    TheHeap.elem(Ref, (int64_t)I) = (uint8_t)S[I];
  ++Counters.StringAllocs;
  return Ref;
}

void Vm::refreshStackKinds() {
  // Frames tile [0, StackTop) contiguously, so this covers every slot
  // the collector will scan.
  for (const Frame &F : Frames)
    std::memcpy(StackKinds.data() + F.Base, F.Fn->RegKinds,
                F.Fn->NumRegs * sizeof(SlotKind));
}

void Vm::growStack(size_t Need) {
  size_t NewCap = Stack.empty() ? InitialStackSlots : Stack.size();
  while (NewCap < Need)
    NewCap *= 2;
  Stack.resize(NewCap, 0);
  StackKinds.resize(NewCap, SlotKind::Scalar);
  StackData = Stack.data();
  StackLen = Stack.size();
}

bool Vm::enterCall(int FuncId, const PDesc *Desc, size_t CallerBase,
                   const uint64_t *PrependArg, bool SkipFirst) {
  PFunc &G = Prep.Funcs[FuncId];
  // SkipFirst: indirect calls name the closure itself in Args[0].
  size_t Provided =
      (PrependArg ? 1 : 0) +
      (Desc ? (size_t)Desc->NArgs - (SkipFirst ? 1 : 0) : 0);
  if (Provided != G.NumParams) {
    doTrap(TrapKind::Unreachable, "calling convention mismatch in '" +
                                      M.Functions[FuncId].Name + "'");
    return false;
  }
  if (Frames.size() >= kMaxFrames) {
    doTrap(TrapKind::Unreachable, "stack overflow");
    return false;
  }

  size_t Base = StackTop;
  size_t Need = Base + G.NumRegs;
  if (Need > Stack.size())
    growStack(Need);

  // Register-to-register argument copy: callee params live directly
  // above the caller frame, so this is two non-overlapping spans of the
  // same arena.
  uint64_t *Regs = Stack.data() + Base;
  size_t N = 0;
  if (PrependArg)
    Regs[N++] = *PrependArg;
  if (Desc) {
    const uint64_t *Caller = Stack.data() + CallerBase;
    const uint16_t *Args = Desc->Args;
    for (size_t I = SkipFirst ? 1 : 0; I != Desc->NArgs; ++I)
      Regs[N++] = Caller[Args[I]];
  }
  if (G.NumRegs > N)
    std::memset(Regs + N, 0, (G.NumRegs - N) * sizeof(uint64_t));
  StackTop = Need;
  Frames.push_back(Frame{&G, 0, Base, Desc, CallerBase});
  return true;
}

bool Vm::enterCallFast(int FuncId, const PDesc *Desc, size_t CallerBase) {
  PFunc &G = Prep.Funcs[FuncId];
  if (Frames.size() >= kMaxFrames) {
    doTrap(TrapKind::Unreachable, "stack overflow");
    return false;
  }
  size_t Base = StackTop;
  size_t Need = Base + G.NumRegs;
  if (Need > Stack.size())
    growStack(Need);
  uint64_t *Regs = Stack.data() + Base;
  const uint64_t *Caller = Stack.data() + CallerBase;
  const uint16_t *Args = Desc->Args;
  size_t N = Desc->NArgs;
  for (size_t I = 0; I != N; ++I)
    Regs[I] = Caller[Args[I]];
  if (G.NumRegs > N)
    std::memset(Regs + N, 0, (G.NumRegs - N) * sizeof(uint64_t));
  StackTop = Need;
  Frames.push_back(Frame{&G, 0, Base, Desc, CallerBase});
  return true;
}

bool Vm::builtin(int Kind, const PDesc &Desc, size_t Base) {
  switch (Kind) {
  case 0: { // Puts.
    uint64_t Ref = Stack[Base + Desc.Args[0]];
    if (Ref == 0) {
      doTrap(TrapKind::NullDeref);
      return false;
    }
    int64_t Len = TheHeap.arrayLen(Ref);
    for (int64_t I = 0; I != Len; ++I)
      Output.push_back((char)TheHeap.elem(Ref, I));
    return true;
  }
  case 1: // Puti.
    Output += std::to_string((int32_t)Stack[Base + Desc.Args[0]]);
    return true;
  case 2: // Putc.
    Output.push_back((char)Stack[Base + Desc.Args[0]]);
    return true;
  case 3: // Ln.
    Output.push_back('\n');
    return true;
  case 4: // Ticks.
    if (Desc.NDsts != 0)
      Stack[Base + Desc.Dsts[0]] = (uint32_t)TickCounter++;
    return true;
  case 5: { // Error.
    uint64_t Ref = Stack[Base + Desc.Args[0]];
    std::string Msg;
    if (Ref != 0) {
      int64_t Len = TheHeap.arrayLen(Ref);
      for (int64_t I = 0; I != Len; ++I)
        Msg.push_back((char)TheHeap.elem(Ref, I));
    }
    doTrap(TrapKind::UserError, Msg);
    return false;
  }
  }
  doTrap(TrapKind::Unreachable, "unknown builtin");
  return false;
}

// The execution core lives in VmLoop.inc and is included twice: once as
// the portable switch loop, once (when the compiler supports computed
// goto) as the token-threaded loop. Handler bodies are shared.

#define VM_USE_CGOTO 0
#define VM_LOOP_NAME runLoopSwitch
#include "vm/VmLoop.inc"
#undef VM_LOOP_NAME
#undef VM_USE_CGOTO

#ifdef VIRGIL_VM_COMPUTED_GOTO
#define VM_USE_CGOTO 1
#define VM_LOOP_NAME runLoopThreaded
#include "vm/VmLoop.inc"
#undef VM_LOOP_NAME
#undef VM_USE_CGOTO
#endif

bool Vm::interpLoop() {
#ifdef VIRGIL_VM_COMPUTED_GOTO
  if (Options.Mode != VmOptions::Dispatch::Switch)
    return runLoopThreaded();
#endif
  return runLoopSwitch();
}

const void *Vm::jitEntryFor(PFunc *Fn, uint32_t Pc, bool Count) {
  if (Fn->JitId < 0) {
    if (!Count || Fn->Gate == kNoJitGate || ++Fn->Hot < Fn->Gate || !JitT ||
        !JitT->compileFn(*Fn))
      return nullptr;
  }
  if (Pc)
    ++JitT->OsrEntries;
  return JitT->entryAt(Fn->JitId, Pc);
}

/// The two-tier driver: the interpreter runs until a tier check posts a
/// native entry, native code runs until it traps, finishes the frame
/// stack, or deopts back; either loop finding nothing more to do ends
/// the run. Both tiers mutate the same frames/stack/heap/counters, so
/// handoff in either direction is just "continue from Frames.back()".
bool Vm::runLoop() {
  for (;;) {
    if (PendingJitEntry) {
      const void *Entry = PendingJitEntry;
      PendingJitEntry = nullptr;
      switch (JitT->enter(Entry)) {
      case jit::kExitTrap:
        return false;
      case jit::kExitDone:
        return true;
      default: // kExitInterp: resume interpreting at Frames.back()
        break;
      }
    }
    if (!interpLoop())
      return false;
    if (!PendingJitEntry)
      return true;
  }
}

VmResult Vm::run() {
  VmResult R;
  // JIT state (compiled code, hotness, patched sites) deliberately
  // survives across runs of a pooled Vm; report per-run deltas so the
  // stats compose by summation like every other per-run counter.
  VmJitStats JitBefore;
  if (JitT)
    JitT->fillStats(JitBefore);
  if (Options.DeadlineMs) {
    DeadlineNs = (uint64_t)std::chrono::duration_cast<
                     std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count() +
                 (uint64_t)Options.DeadlineMs * 1000000ull;
  }
  Globals.assign(M.GlobalKinds.size(), 0);
  if (M.InitId >= 0 && !Trapped) {
    if (enterCall(M.InitId, nullptr, 0, nullptr, false))
      runLoop();
  }
  if (M.MainId >= 0 && !Trapped) {
    if (enterCall(M.MainId, nullptr, 0, nullptr, false))
      runLoop();
    if (!Trapped && !FinalRets.empty()) {
      R.ResultBits = (int32_t)FinalRets[0];
      R.HasResult = true;
    }
  }
  R.Trapped = Trapped;
  R.Cause = TrapCause;
  R.TrapMessage = TrapMessage;
  R.Output = Output;
  R.Counters = Counters;
  R.Counters.FusedStatic = Prep.Stats.fusedTotal();
  R.Heap = TheHeap.stats();
  R.DispatchMode = dispatchModeName();
  R.Jit.Available = JitAvailable;
  R.Jit.Enabled = JitT != nullptr;
  if (JitT) {
    JitT->fillStats(R.Jit);
    R.Jit.Compiles -= JitBefore.Compiles;
    R.Jit.CompileFailures -= JitBefore.CompileFailures;
    R.Jit.CompileNs -= JitBefore.CompileNs;
    R.Jit.CodeBytes -= JitBefore.CodeBytes;
    R.Jit.Enters -= JitBefore.Enters;
    R.Jit.OsrEntries -= JitBefore.OsrEntries;
    R.Jit.Deopts -= JitBefore.Deopts;
    R.Jit.IcPatches -= JitBefore.IcPatches;
    R.Jit.IcMegamorphic -= JitBefore.IcMegamorphic;
  }
  return R;
}
