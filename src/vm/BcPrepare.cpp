//===- vm/BcPrepare.cpp ---------------------------------------------------===//

#include "vm/BcPrepare.h"

#include <cassert>

using namespace virgil;

namespace {

bool isCompare(BcOp Op) {
  switch (Op) {
  case BcOp::Lt:
  case BcOp::Le:
  case BcOp::Gt:
  case BcOp::Ge:
  case BcOp::EqBits:
  case BcOp::NeBits:
    return true;
  default:
    return false;
  }
}

POp fusedCompareBranch(BcOp Op) {
  switch (Op) {
  case BcOp::Lt:
    return POp::BrLtF;
  case BcOp::Le:
    return POp::BrLeF;
  case BcOp::Gt:
    return POp::BrGtF;
  case BcOp::Ge:
    return POp::BrGeF;
  case BcOp::EqBits:
    return POp::BrEqF;
  case BcOp::NeBits:
    return POp::BrNeF;
  default:
    assert(false && "not a compare");
    return POp::Nop;
  }
}

/// If \p Op traps NullDeref on register \p NullReg before any other
/// effect, returns the checked-variant opcode the preceding NullChk can
/// fold into; POp::Nop otherwise.
POp checkFoldTarget(const BcInstr &I, int32_t NullReg) {
  switch (I.Op) {
  case BcOp::LdF:
    return I.B == NullReg ? POp::LdFC : POp::Nop;
  case BcOp::StF:
    return I.A == NullReg ? POp::StFC : POp::Nop;
  case BcOp::LdE:
    return I.B == NullReg ? POp::LdEC : POp::Nop;
  case BcOp::StE:
    return I.A == NullReg ? POp::StEC : POp::Nop;
  case BcOp::BoundsChk:
    return I.B == NullReg ? POp::BoundsChkC : POp::Nop;
  case BcOp::ArrLen:
    return I.B == NullReg ? POp::ArrLenC : POp::Nop;
  default:
    return POp::Nop;
  }
}

bool isBranch(POp Op) {
  switch (Op) {
  case POp::Jmp:
  case POp::JmpIfFalse:
  case POp::BrLtF:
  case POp::BrLeF:
  case POp::BrGtF:
  case POp::BrGeF:
  case POp::BrEqF:
  case POp::BrNeF:
    return true;
  default:
    return false;
  }
}

void prepareFunction(const BcModule &M, const BcFunction &F,
                     const PrepareOptions &Options, PFunc &Out,
                     PrepareStats &Stats) {
  Out.NumRegs = F.NumRegs;
  Out.NumParams = F.NumParams;
  Out.RegKinds = F.RegKinds.data();
  // Descriptors are flattened at the end; the walk appends rewritten
  // clones (Mv+Ret fusion) to this working copy first.
  std::vector<CallDesc> Descs = F.Descs;

  const std::vector<BcInstr> &Code = F.Code;
  std::vector<uint8_t> IsTarget(Code.size() + 1, 0);
  for (const BcInstr &I : Code)
    if (I.Op == BcOp::Jmp || I.Op == BcOp::JmpIfFalse)
      IsTarget[(size_t)I.Imm] = 1;

  // Decode + fuse. Branch immediates keep the OLD target pc during this
  // walk; NewPcOf remaps them afterwards.
  std::vector<uint32_t> NewPcOf(Code.size() + 1, 0);
  Out.Code.reserve(Code.size());
  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    const BcInstr &I = Code[Pc];
    uint32_t NewIdx = (uint32_t)Out.Code.size();
    NewPcOf[Pc] = NewIdx;

    const BcInstr *Next =
        Pc + 1 < Code.size() && !IsTarget[Pc + 1] ? &Code[Pc + 1] : nullptr;
    if (Options.Fuse && Next) {
      // Cmp + JmpIfFalse on the compare's destination.
      if (isCompare(I.Op) && Next->Op == BcOp::JmpIfFalse &&
          Next->A == I.A) {
        Out.Code.push_back(PInstr{fusedCompareBranch(I.Op), (uint16_t)I.A,
                                  (uint16_t)I.B, (uint16_t)I.C, Next->Imm});
        NewPcOf[++Pc] = NewIdx;
        ++Stats.FusedCmpBr;
        continue;
      }
      // ConstI + Add/Sub -> op-immediate. The constant's register is
      // still written (field C), so later reads see it.
      if (I.Op == BcOp::ConstI && Next->Op == BcOp::Add &&
          (Next->B == I.A || Next->C == I.A)) {
        int32_t Other = Next->B == I.A ? Next->C : Next->B;
        Out.Code.push_back(PInstr{POp::AddImm, (uint16_t)Next->A,
                                  (uint16_t)Other, (uint16_t)I.A, I.Imm});
        NewPcOf[++Pc] = NewIdx;
        ++Stats.FusedAddImm;
        continue;
      }
      if (I.Op == BcOp::ConstI && Next->Op == BcOp::Sub &&
          Next->C == I.A) {
        Out.Code.push_back(PInstr{POp::SubImm, (uint16_t)Next->A,
                                  (uint16_t)Next->B, (uint16_t)I.A, I.Imm});
        NewPcOf[++Pc] = NewIdx;
        ++Stats.FusedSubImm;
        continue;
      }
      // NullChk + an op that performs the same check first anyway.
      if (I.Op == BcOp::NullChk) {
        POp Folded = checkFoldTarget(*Next, I.A);
        if (Folded != POp::Nop) {
          Out.Code.push_back(PInstr{Folded, (uint16_t)Next->A,
                                    (uint16_t)Next->B, (uint16_t)Next->C,
                                    Next->Imm});
          NewPcOf[++Pc] = NewIdx;
          ++Stats.FusedChkFold;
          continue;
        }
      }
      // Mv + RetOp: the moved value dies with the frame, so rewrite the
      // return descriptor to read the move's source directly.
      if (I.Op == BcOp::Mv && Next->Op == BcOp::RetOp) {
        CallDesc D = Descs[Next->A];
        for (uint16_t &R : D.Args)
          if (R == (uint16_t)I.A)
            R = (uint16_t)I.B;
        Descs.push_back(std::move(D));
        Out.Code.push_back(
            PInstr{POp::RetMv, (uint16_t)(Descs.size() - 1), 0, 0, 0});
        NewPcOf[++Pc] = NewIdx;
        ++Stats.FusedMvRet;
        continue;
      }
    }

    // Plain decode (the POp prefix mirrors BcOp).
    PInstr P{(POp)(uint8_t)I.Op, (uint16_t)I.A, (uint16_t)I.B,
             (uint16_t)I.C, I.Imm};
    if (I.Op == BcOp::CallV && Options.InlineCache &&
        Out.Ics.size() < 0xFFFF) {
      P.Op = POp::CallVC;
      P.B = (uint16_t)Out.Ics.size();
      Out.Ics.push_back(IcEntry{});
      ++Stats.IcSites;
    } else if (I.Op == BcOp::CallF &&
               F.Descs[I.A].Args.size() !=
                   M.Functions[I.Imm].NumParams) {
      // Direct-call arity is static: prove it here so the CallF
      // handler skips the per-call check. A mismatch (should never be
      // emitted) becomes an instruction that traps when reached.
      P = PInstr{POp::TrapCc, 0, 0, 0, I.Imm};
    }
    Out.Code.push_back(P);
  }
  NewPcOf[Code.size()] = (uint32_t)Out.Code.size();

  for (PInstr &P : Out.Code)
    if (isBranch(P.Op))
      P.Imm = (int64_t)NewPcOf[(size_t)P.Imm];

  // Write-barrier pass: rewrite stores whose *stored value* is
  // reference-kind to the barrier variants the generational heap
  // needs for its remembered set. Kinds are static (register kinds
  // for fields/elements, the global kind table for globals), so
  // scalar stores keep the plain opcodes and pay nothing. Each
  // barrier variant performs exactly the base store's effects plus
  // the (side-effect-free from the program's view) remembered-set
  // update, and counts instructions identically, so prepared streams
  // with and without barriers stay observationally equal.
  if (Options.Barriers) {
    for (PInstr &P : Out.Code) {
      switch (P.Op) {
      case POp::StF:
      case POp::StFC: {
        SlotKind K = F.RegKinds[P.B]; // value register
        if (K == SlotKind::Scalar)
          break;
        P.Op = P.Op == POp::StF ? POp::StFB : POp::StFCB;
        P.C = K == SlotKind::Closure ? 1 : 0;
        ++Stats.BarrierSites;
        break;
      }
      case POp::StE:
      case POp::StEC: {
        SlotKind K = F.RegKinds[P.C]; // value register
        if (K == SlotKind::Scalar)
          break;
        P.Op = P.Op == POp::StE ? POp::StEB : POp::StECB;
        P.Imm = K == SlotKind::Closure ? 1 : 0;
        ++Stats.BarrierSites;
        break;
      }
      case POp::StG: {
        SlotKind K = M.GlobalKinds[(size_t)P.Imm];
        if (K == SlotKind::Scalar)
          break;
        P.Op = POp::StGB;
        P.B = K == SlotKind::Closure ? 1 : 0;
        ++Stats.BarrierSites;
        break;
      }
      default:
        break;
      }
    }
  }

  // Flatten descriptors into the pool. Reserve exactly so the pool
  // buffer never reallocates under the pointers handed out below.
  size_t PoolSize = 0;
  for (const CallDesc &D : Descs)
    PoolSize += D.Args.size() + D.Dsts.size();
  Out.Pool.reserve(PoolSize);
  Out.Descs.reserve(Descs.size());
  std::vector<std::pair<size_t, size_t>> Offs;
  Offs.reserve(Descs.size());
  for (const CallDesc &D : Descs) {
    size_t AO = Out.Pool.size();
    Out.Pool.insert(Out.Pool.end(), D.Args.begin(), D.Args.end());
    size_t DO = Out.Pool.size();
    Out.Pool.insert(Out.Pool.end(), D.Dsts.begin(), D.Dsts.end());
    Offs.emplace_back(AO, DO);
    Out.Descs.push_back(PDesc{nullptr, nullptr, (uint32_t)D.Args.size(),
                              (uint32_t)D.Dsts.size()});
  }
  for (size_t K = 0; K != Out.Descs.size(); ++K) {
    Out.Descs[K].Args = Out.Pool.data() + Offs[K].first;
    Out.Descs[K].Dsts = Out.Pool.data() + Offs[K].second;
  }
}

} // namespace

PreparedModule virgil::prepareModule(const BcModule &M,
                                     const PrepareOptions &Options) {
  PreparedModule Prep;
  Prep.Funcs.resize(M.Functions.size());
  Prep.VirtUnbound.resize(M.Functions.size(), 0);
  for (size_t I = 0; I != M.Functions.size(); ++I) {
    const BcFunction &F = M.Functions[I];
    prepareFunction(M, F, Options, Prep.Funcs[I], Prep.Stats);
    Prep.VirtUnbound[I] = F.Slot >= 0 && F.OwnerClassId >= 0;
    if (F.NumRets > Prep.MaxRets)
      Prep.MaxRets = F.NumRets;
  }
  return Prep;
}
