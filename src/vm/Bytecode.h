//===- vm/Bytecode.h - Register bytecode for normalized programs -*- C++ -*-===//
///
/// \file
/// The VM's executable format, standing in for the paper's native x86
/// target. It exists to make §4.2/§4.3's end-state observable:
///
/// * only *normalized, monomorphized* IR can be emitted — every call
///   passes scalars, functions may return several values ("multiple
///   return registers"), there are no tuples, no type parameters, and
///   no dynamic calling-convention checks;
/// * values are single 64-bit slots. Function values are *flat*: a
///   closure packs (function id, optional bound reference) into one
///   slot, so creating one allocates nothing — matching the paper's
///   claim that the native implementation "never allocates memory on
///   the heap except when done explicitly by the programmer";
/// * objects and arrays live in a semispace-collected heap with precise
///   reference maps derived from static types (slot kinds).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_BYTECODE_H
#define VIRGIL_VM_BYTECODE_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace virgil {

/// What a 64-bit slot holds, derived from its static type. The GC
/// scans Ref slots as heap references and Closure slots as packed
/// (function id, bound-ref) pairs.
enum class SlotKind : uint8_t { Scalar, Ref, Closure };

/// Classifies a (normalized, concrete) type into its slot kind.
SlotKind slotKindOf(const Type *T);

/// Array element classes for array headers.
enum class ElemKind : uint8_t { Scalar, Ref, Closure, Void };

enum class BcOp : uint8_t {
  Nop,
  ConstI,   ///< R[A] <- Imm.
  ConstStr, ///< R[A] <- fresh byte array of string #Imm (allocates).
  Mv,       ///< R[A] <- R[B].
  Add,
  Sub,
  Mul,
  Div, ///< Traps on zero.
  Mod,
  Neg,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  And,
  Or,
  /// Universal equality: all values (prims, references, packed
  /// closures) are canonical 64-bit slots, so equality is bit equality.
  EqBits,
  NeBits,
  NewObj,    ///< R[A] <- allocate class #Imm.
  NewArr,    ///< R[A] <- allocate array, elem kind Imm, length R[B].
  LdF,       ///< R[A] <- R[B].field[Imm]; null-checked.
  StF,       ///< R[A].field[Imm] <- R[B]; null-checked.
  NullChk,   ///< Trap if R[A] == null.
  LdE,       ///< R[A] <- R[B][R[C]]; null+bounds checked.
  StE,       ///< R[A][R[B]] <- R[C].
  BoundsChk, ///< Null+bounds check R[A][R[B]] (void arrays).
  ArrLen,    ///< R[A] <- length of R[B].
  LdG,       ///< R[A] <- global #Imm.
  StG,       ///< global #Imm <- R[A].
  CallF,     ///< Call function #Imm with descriptor #A.
  CallV,     ///< Virtual call through slot #Imm, descriptor #A.
  CallInd,   ///< Indirect call; callee closure = first descriptor arg.
  CallB,     ///< Builtin #Imm with descriptor #A.
  MkClo,     ///< R[A] <- closure(func #Imm, bound R[B] if C).
  CastClass, ///< R[A] <- R[B] checked against class #Imm (null passes).
  QueryClass,
  CastIntByte, ///< R[A] <- R[B] if 0 <= R[B] <= 255 else trap.
  CastFunc,    ///< R[A] <- R[B] checked against type table #Imm.
  QueryFunc,
  CastNullOnly, ///< R[A] <- R[B] if null, else cast-failure trap.
  QueryNonNull, ///< R[A] <- (R[B] != null).
  Jmp,          ///< pc <- Imm.
  JmpIfFalse,   ///< if !R[A] then pc <- Imm.
  RetOp,        ///< Return values named by descriptor #A.
  TrapOp,       ///< Trap with TrapKind Imm.
};

/// One fixed-width instruction.
struct BcInstr {
  BcOp Op = BcOp::Nop;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  int64_t Imm = 0;
};

/// Argument/result register lists for calls and returns.
struct CallDesc {
  std::vector<uint16_t> Args;
  std::vector<uint16_t> Dsts;
};

struct BcFunction {
  std::string Name;
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  uint32_t NumRets = 0;
  std::vector<SlotKind> RegKinds;
  std::vector<BcInstr> Code;
  std::vector<CallDesc> Descs;
  /// Virtual dispatch info (from the IR function).
  int Slot = -1;
  int OwnerClassId = -1;
  /// The collapsed source-level function type including the receiver
  /// (for first-class casts/queries on function values); may be null
  /// for synthesized functions never taken first-class.
  Type *SourceFuncTy = nullptr;
  /// Same, minus the receiver (the type of a bound closure).
  Type *BoundFuncTy = nullptr;
};

struct BcClass {
  std::string Name;
  int ParentId = -1;
  uint32_t Depth = 0;
  std::vector<SlotKind> FieldKinds;
  std::vector<int> VTable; ///< Function ids; -1 for abstract slots.
};

/// A complete executable program.
struct BcModule {
  std::vector<BcFunction> Functions;
  std::vector<BcClass> Classes;
  std::vector<SlotKind> GlobalKinds;
  std::vector<std::string> Strings;
  /// Types referenced by CastFunc/QueryFunc.
  std::vector<Type *> TypeTable;
  /// Dedup index over TypeTable; cast-heavy modules intern thousands of
  /// types, so lookup must not be a linear scan.
  std::unordered_map<Type *, int> TypeIndex;
  int MainId = -1;
  int InitId = -1;
  TypeStore *Types = nullptr;

  int internType(Type *T) {
    auto [It, Inserted] = TypeIndex.emplace(T, (int)TypeTable.size());
    if (Inserted)
      TypeTable.push_back(T);
    return It->second;
  }
};

/// Renders a function's bytecode for debugging.
std::string printBcFunction(const BcFunction &F);

/// Flat closure encoding: (funcId + 1) << 33 | boundRef << 1 |
/// hasBound. Zero is the null function value. Creating one allocates
/// nothing.
inline uint64_t packClosure(int FuncId, uint64_t Bound, bool HasBound) {
  return ((uint64_t)(FuncId + 1) << 33) | (Bound << 1) |
         (HasBound ? 1u : 0u);
}
inline int closureFuncId(uint64_t Slot) { return (int)(Slot >> 33) - 1; }
inline uint64_t closureBoundRef(uint64_t Slot) {
  return (Slot >> 1) & 0xFFFFFFFFu;
}
inline bool closureIsBound(uint64_t Slot) { return (Slot & 1) != 0; }

} // namespace virgil

#endif // VIRGIL_VM_BYTECODE_H
