//===- vm/BytecodeSerializer.cpp ------------------------------------------===//
//
// Layout (all integers little-endian):
//
//   header:  u32 magic 'VBCM' | u32 format version | u64 payload length
//            | u64 FNV-1a(payload)
//   payload: strings, type-parameter defs, class defs, the type graph
//            (post-order, children before parents), class-def parent
//            patch, cast/query type table, globals, classes, functions,
//            main/init ids.
//
// The checksum is the integrity gate: any truncation or bit corruption
// fails the hash compare before decoding begins. Structural validation
// on top of it (enum ranges, index ranges for every statically
// unambiguous table access the VM performs) keeps even a colliding or
// hand-edited file from crashing the reader or the VM.
//
//===----------------------------------------------------------------------===//

#include "vm/BytecodeSerializer.h"

#include <cstring>
#include <map>

using namespace virgil;

namespace {

constexpr uint32_t kMagic = 0x4D434256; // "VBCM" in LE byte order.
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  void u8(uint8_t V) { Out.push_back((char)V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back((char)((V >> (8 * I)) & 0xFF));
  }
  void i32(int32_t V) { u32((uint32_t)V); }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back((char)((V >> (8 * I)) & 0xFF));
  }
  void i64(int64_t V) { u64((uint64_t)V); }
  void str(const std::string &S) {
    u32((uint32_t)S.size());
    Out.append(S);
  }
  /// Appends pre-encoded bytes verbatim (body-blob dedup).
  void raw(const std::string &S) { Out.append(S); }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

//===----------------------------------------------------------------------===//
// Reader (never throws, never reads out of bounds; any malformation
// sets the failure flag and sticks).
//===----------------------------------------------------------------------===//

class Reader {
public:
  explicit Reader(std::string_view Bytes) : Bytes(Bytes) {}

  bool ok() const { return Ok; }
  void fail(const char *Reason) {
    if (Ok) {
      Ok = false;
      Why = Reason;
    }
  }
  const char *reason() const { return Why; }
  size_t remaining() const { return Ok ? Bytes.size() - Pos : 0; }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return (uint8_t)Bytes[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= (uint32_t)(uint8_t)Bytes[Pos++] << (8 * I);
    return V;
  }
  int32_t i32() { return (int32_t)u32(); }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= (uint64_t)(uint8_t)Bytes[Pos++] << (8 * I);
    return V;
  }
  int64_t i64() { return (int64_t)u64(); }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(Bytes.substr(Pos, N));
    Pos += N;
    return S;
  }
  /// Reads an element count whose elements occupy at least
  /// \p MinElemBytes each; rejects counts the remaining bytes cannot
  /// possibly hold (guards reserve() from hostile sizes).
  uint32_t count(size_t MinElemBytes = 1) {
    uint32_t N = u32();
    if (Ok && (uint64_t)N * MinElemBytes > remaining())
      fail("element count exceeds remaining bytes");
    return Ok ? N : 0;
  }

private:
  bool need(size_t N) {
    if (!Ok)
      return false;
    if (Bytes.size() - Pos < N) {
      fail("unexpected end of data");
      return false;
    }
    return true;
  }

  std::string_view Bytes;
  size_t Pos = 0;
  bool Ok = true;
  const char *Why = "ok";
};

//===----------------------------------------------------------------------===//
// Type graph collection (serialization side)
//===----------------------------------------------------------------------===//

/// Assigns dense indices to every type, class def, and type-parameter
/// def reachable from the module, in a deterministic order: types are
/// post-order (children before parents), defs in first-visit order.
struct TypeGraph {
  std::vector<Type *> Types;
  std::map<Type *, uint32_t> TypeIdx;
  std::vector<ClassDef *> Defs;
  std::map<ClassDef *, uint32_t> DefIdx;
  std::vector<TypeParamDef *> Params;
  std::map<TypeParamDef *, uint32_t> ParamIdx;

  uint32_t addParam(TypeParamDef *P) {
    auto It = ParamIdx.find(P);
    if (It != ParamIdx.end())
      return It->second;
    uint32_t I = (uint32_t)Params.size();
    Params.push_back(P);
    ParamIdx[P] = I;
    return I;
  }

  uint32_t addDef(ClassDef *D) {
    auto It = DefIdx.find(D);
    if (It != DefIdx.end())
      return It->second;
    uint32_t I = (uint32_t)Defs.size();
    Defs.push_back(D);
    DefIdx[D] = I;
    for (TypeParamDef *P : D->TypeParams)
      addParam(P);
    return I;
  }

  uint32_t addType(Type *T) {
    auto It = TypeIdx.find(T);
    if (It != TypeIdx.end())
      return It->second;
    switch (T->kind()) {
    case TypeKind::Prim:
      break;
    case TypeKind::Array:
      addType(cast<ArrayType>(T)->elem());
      break;
    case TypeKind::Tuple:
      for (Type *E : cast<TupleType>(T)->elems())
        addType(E);
      break;
    case TypeKind::Function:
      addType(cast<FuncType>(T)->param());
      addType(cast<FuncType>(T)->ret());
      break;
    case TypeKind::Class: {
      auto *CT = cast<ClassType>(T);
      addDef(CT->def());
      for (Type *A : CT->args())
        addType(A);
      break;
    }
    case TypeKind::TypeParam:
      addParam(cast<TypeParamType>(T)->def());
      break;
    }
    uint32_t I = (uint32_t)Types.size();
    Types.push_back(T);
    TypeIdx[T] = I;
    return I;
  }

  /// Collects everything reachable from \p M, including the extends
  /// chains of every referenced class def (subtype checks walk them at
  /// runtime). Defs may grow while parents are walked.
  void collect(const BcModule &M) {
    for (Type *T : M.TypeTable)
      addType(T);
    for (const BcFunction &F : M.Functions) {
      if (F.SourceFuncTy)
        addType(F.SourceFuncTy);
      if (F.BoundFuncTy)
        addType(F.BoundFuncTy);
    }
    for (size_t I = 0; I != Defs.size(); ++I)
      if (Defs[I]->ParentAsWritten)
        addType(Defs[I]->ParentAsWritten);
  }

  int32_t indexOrNull(Type *T) const {
    if (!T)
      return -1;
    return (int32_t)TypeIdx.at(T);
  }
};

void writeTypeGraph(Writer &W, const TypeGraph &G) {
  W.u32((uint32_t)G.Params.size());
  for (const TypeParamDef *P : G.Params)
    W.str(*P->Name);

  W.u32((uint32_t)G.Defs.size());
  for (const ClassDef *D : G.Defs) {
    W.str(*D->Name);
    W.u32((uint32_t)D->TypeParams.size());
    for (TypeParamDef *P : D->TypeParams)
      W.u32(G.ParamIdx.at(P));
  }

  W.u32((uint32_t)G.Types.size());
  for (Type *T : G.Types) {
    W.u8((uint8_t)T->kind());
    switch (T->kind()) {
    case TypeKind::Prim:
      W.u8((uint8_t)cast<PrimType>(T)->prim());
      break;
    case TypeKind::Array:
      W.u32(G.TypeIdx.at(cast<ArrayType>(T)->elem()));
      break;
    case TypeKind::Tuple: {
      const auto &Elems = cast<TupleType>(T)->elems();
      W.u32((uint32_t)Elems.size());
      for (Type *E : Elems)
        W.u32(G.TypeIdx.at(E));
      break;
    }
    case TypeKind::Function:
      W.u32(G.TypeIdx.at(cast<FuncType>(T)->param()));
      W.u32(G.TypeIdx.at(cast<FuncType>(T)->ret()));
      break;
    case TypeKind::Class: {
      auto *CT = cast<ClassType>(T);
      W.u32(G.DefIdx.at(CT->def()));
      W.u32((uint32_t)CT->args().size());
      for (Type *A : CT->args())
        W.u32(G.TypeIdx.at(A));
      break;
    }
    case TypeKind::TypeParam:
      W.u32(G.ParamIdx.at(cast<TypeParamType>(T)->def()));
      break;
    }
  }

  // Parent patch: the extends chain, resolvable only once all types
  // exist (a parent-as-written may mention its own subclass).
  for (const ClassDef *D : G.Defs) {
    W.i32(G.indexOrNull(D->ParentAsWritten));
    W.u32(D->Depth);
  }
}

/// Rebuilt type tables on the deserialization side.
struct TypeTables {
  std::vector<TypeParamDef *> Params;
  std::vector<ClassDef *> Defs;
  std::vector<Type *> Types;

  Type *type(Reader &R, uint32_t Idx) const {
    if (Idx >= Types.size()) {
      R.fail("type index out of range");
      return nullptr;
    }
    return Types[Idx];
  }
  Type *typeOrNull(Reader &R, int32_t Idx) const {
    return Idx < 0 ? nullptr : type(R, (uint32_t)Idx);
  }
};

bool readTypeGraph(Reader &R, TypeStore &Store, TypeTables &T) {
  uint32_t NumParams = R.count();
  T.Params.reserve(NumParams);
  for (uint32_t I = 0; R.ok() && I != NumParams; ++I)
    T.Params.push_back(Store.makeTypeParam(Store.internName(R.str())));

  uint32_t NumDefs = R.count();
  T.Defs.reserve(NumDefs);
  for (uint32_t I = 0; R.ok() && I != NumDefs; ++I) {
    ClassDef *D = Store.makeClass(Store.internName(R.str()));
    uint32_t N = R.count(4);
    for (uint32_t J = 0; R.ok() && J != N; ++J) {
      uint32_t P = R.u32();
      if (P >= T.Params.size()) {
        R.fail("type-parameter index out of range");
        break;
      }
      D->TypeParams.push_back(T.Params[P]);
    }
    T.Defs.push_back(D);
  }

  uint32_t NumTypes = R.count();
  T.Types.reserve(NumTypes);
  for (uint32_t I = 0; R.ok() && I != NumTypes; ++I) {
    uint8_t Kind = R.u8();
    Type *Built = nullptr;
    switch (Kind) {
    case (uint8_t)TypeKind::Prim: {
      uint8_t P = R.u8();
      switch (P) {
      case (uint8_t)PrimKind::Void:
        Built = Store.voidTy();
        break;
      case (uint8_t)PrimKind::Bool:
        Built = Store.boolTy();
        break;
      case (uint8_t)PrimKind::Byte:
        Built = Store.byteTy();
        break;
      case (uint8_t)PrimKind::Int:
        Built = Store.intTy();
        break;
      default:
        R.fail("invalid primitive kind");
      }
      break;
    }
    case (uint8_t)TypeKind::Array: {
      Type *E = T.type(R, R.u32());
      if (E)
        Built = Store.array(E);
      break;
    }
    case (uint8_t)TypeKind::Tuple: {
      uint32_t N = R.count(4);
      std::vector<Type *> Elems;
      Elems.reserve(N);
      for (uint32_t J = 0; R.ok() && J != N; ++J)
        Elems.push_back(T.type(R, R.u32()));
      if (R.ok())
        Built = Store.tuple(Elems); // Degenerate arities collapse.
      break;
    }
    case (uint8_t)TypeKind::Function: {
      Type *P = T.type(R, R.u32());
      Type *Ret = T.type(R, R.u32());
      if (P && Ret)
        Built = Store.func(P, Ret);
      break;
    }
    case (uint8_t)TypeKind::Class: {
      uint32_t DefI = R.u32();
      uint32_t N = R.count(4);
      std::vector<Type *> Args;
      Args.reserve(N);
      for (uint32_t J = 0; R.ok() && J != N; ++J)
        Args.push_back(T.type(R, R.u32()));
      if (DefI >= T.Defs.size()) {
        R.fail("class-def index out of range");
        break;
      }
      if (R.ok() && Args.size() != T.Defs[DefI]->TypeParams.size()) {
        R.fail("class type argument count mismatch");
        break;
      }
      if (R.ok())
        Built = Store.classType(T.Defs[DefI], Args);
      break;
    }
    case (uint8_t)TypeKind::TypeParam: {
      uint32_t P = R.u32();
      if (P >= T.Params.size()) {
        R.fail("type-parameter index out of range");
        break;
      }
      Built = Store.typeParam(T.Params[P]);
      break;
    }
    default:
      R.fail("invalid type kind");
    }
    if (!R.ok())
      return false;
    T.Types.push_back(Built);
  }

  for (uint32_t I = 0; R.ok() && I != NumDefs; ++I) {
    int32_t ParentI = R.i32();
    uint32_t Depth = R.u32();
    Type *Parent = T.typeOrNull(R, ParentI);
    if (!R.ok())
      break;
    if (Parent && !isa<ClassType>(Parent)) {
      R.fail("class parent is not a class type");
      break;
    }
    T.Defs[I]->ParentAsWritten = Parent;
    T.Defs[I]->Depth = Depth;
  }
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Module payload
//===----------------------------------------------------------------------===//

void writeSlotKinds(Writer &W, const std::vector<SlotKind> &Kinds) {
  W.u32((uint32_t)Kinds.size());
  for (SlotKind K : Kinds)
    W.u8((uint8_t)K);
}

bool readSlotKinds(Reader &R, std::vector<SlotKind> &Kinds) {
  uint32_t N = R.count();
  Kinds.reserve(N);
  for (uint32_t I = 0; R.ok() && I != N; ++I) {
    uint8_t K = R.u8();
    if (K > (uint8_t)SlotKind::Closure) {
      R.fail("invalid slot kind");
      return false;
    }
    Kinds.push_back((SlotKind)K);
  }
  return R.ok();
}

void writePayload(Writer &W, const BcModule &M, const TypeGraph &G,
                  SerializeStats *StatsOut) {
  W.u32((uint32_t)M.Strings.size());
  for (const std::string &S : M.Strings)
    W.str(S);

  writeTypeGraph(W, G);

  W.u32((uint32_t)M.TypeTable.size());
  for (Type *T : M.TypeTable)
    W.u32(G.TypeIdx.at(T));

  writeSlotKinds(W, M.GlobalKinds);

  W.u32((uint32_t)M.Classes.size());
  for (const BcClass &C : M.Classes) {
    W.str(C.Name);
    W.i32(C.ParentId);
    W.u32(C.Depth);
    writeSlotKinds(W, C.FieldKinds);
    W.u32((uint32_t)C.VTable.size());
    for (int F : C.VTable)
      W.i32(F);
  }

  // Functions: per-function metadata always inline; the body blob
  // (registers, code, call descriptors) is written once per distinct
  // byte sequence and back-referenced afterwards. On top of the IR-
  // level specialization sharing this is a pure storage encoding —
  // byte-identical bodies that must keep distinct identities (closure
  // callees, vtable targets of bound-virtual closures) still collapse
  // on disk while reconstructing as separate functions on load.
  W.u32((uint32_t)M.Functions.size());
  std::map<std::string, uint32_t> BodyIndex;
  for (const BcFunction &F : M.Functions) {
    Writer BodyW;
    BodyW.u32(F.NumRegs);
    BodyW.u32(F.NumParams);
    BodyW.u32(F.NumRets);
    writeSlotKinds(BodyW, F.RegKinds);
    BodyW.u32((uint32_t)F.Code.size());
    for (const BcInstr &I : F.Code) {
      BodyW.u8((uint8_t)I.Op);
      BodyW.i32(I.A);
      BodyW.i32(I.B);
      BodyW.i32(I.C);
      BodyW.i64(I.Imm);
    }
    BodyW.u32((uint32_t)F.Descs.size());
    for (const CallDesc &D : F.Descs) {
      BodyW.u32((uint32_t)D.Args.size());
      for (uint16_t A : D.Args)
        BodyW.u32(A);
      BodyW.u32((uint32_t)D.Dsts.size());
      for (uint16_t A : D.Dsts)
        BodyW.u32(A);
    }
    std::string Blob = BodyW.take();

    W.str(F.Name);
    auto It = BodyIndex.emplace(std::move(Blob),
                                (uint32_t)(&F - &M.Functions[0]));
    if (It.second) {
      W.u8(0); // inline body
      W.raw(It.first->first);
    } else {
      W.u8(1); // back-reference to an earlier identical body
      W.u32(It.first->second);
      if (StatsOut) {
        ++StatsOut->SharedBodies;
        StatsOut->BytesSaved += It.first->first.size() - 4;
      }
    }
    W.i32(F.Slot);
    W.i32(F.OwnerClassId);
    W.i32(G.indexOrNull(F.SourceFuncTy));
    W.i32(G.indexOrNull(F.BoundFuncTy));
  }

  W.i32(M.MainId);
  W.i32(M.InitId);
}

bool readDescRegs(Reader &R, uint32_t NumRegs, std::vector<uint16_t> &Out) {
  uint32_t N = R.count(4);
  Out.reserve(N);
  for (uint32_t I = 0; R.ok() && I != N; ++I) {
    uint32_t Reg = R.u32();
    if (Reg >= NumRegs || Reg > 0xFFFF) {
      R.fail("call descriptor register out of range");
      return false;
    }
    Out.push_back((uint16_t)Reg);
  }
  return R.ok();
}

/// Index-range checks for every statically unambiguous table the VM
/// indexes with an instruction operand: function/class/string/global/
/// type ids, call descriptors, and jump targets. Register operands are
/// not re-verified per-op (operand roles vary by opcode); the payload
/// checksum is the integrity gate for those.
bool validateFunction(Reader &R, const BcModule &M, const BcFunction &F) {
  size_t NumFuncs = M.Functions.size();
  size_t NumClasses = M.Classes.size();
  auto checkDesc = [&](int32_t A) {
    if (A < 0 || (size_t)A >= F.Descs.size())
      R.fail("call descriptor index out of range");
  };
  for (const BcInstr &I : F.Code) {
    switch (I.Op) {
    case BcOp::ConstStr:
      if (I.Imm < 0 || (size_t)I.Imm >= M.Strings.size())
        R.fail("string index out of range");
      break;
    case BcOp::NewObj:
    case BcOp::CastClass:
    case BcOp::QueryClass:
      if (I.Imm < 0 || (size_t)I.Imm >= NumClasses)
        R.fail("class id out of range");
      break;
    case BcOp::NewArr:
      if (I.Imm < 0 || I.Imm > (int64_t)ElemKind::Void)
        R.fail("invalid array element kind");
      break;
    case BcOp::LdG:
    case BcOp::StG:
      if (I.Imm < 0 || (size_t)I.Imm >= M.GlobalKinds.size())
        R.fail("global index out of range");
      break;
    case BcOp::CallF:
      checkDesc(I.A);
      if (I.Imm < 0 || (size_t)I.Imm >= NumFuncs)
        R.fail("callee function id out of range");
      break;
    case BcOp::CallV:
    case BcOp::CallInd:
    case BcOp::CallB:
    case BcOp::RetOp:
      checkDesc(I.A);
      break;
    case BcOp::MkClo:
      if (I.Imm < 0 || (size_t)I.Imm >= NumFuncs)
        R.fail("closure function id out of range");
      break;
    case BcOp::CastFunc:
    case BcOp::QueryFunc:
      if (I.Imm < 0 || (size_t)I.Imm >= M.TypeTable.size())
        R.fail("type-table index out of range");
      break;
    case BcOp::Jmp:
    case BcOp::JmpIfFalse:
      if (I.Imm < 0 || (size_t)I.Imm >= F.Code.size())
        R.fail("jump target out of range");
      break;
    case BcOp::TrapOp:
      if (I.Imm < 0 || I.Imm > (int64_t)TrapKind::Unreachable)
        R.fail("invalid trap kind");
      break;
    default:
      break;
    }
    if (!R.ok())
      return false;
  }
  return true;
}

bool readPayload(Reader &R, TypeStore &Store, BcModule &M) {
  uint32_t NumStrings = R.count(4);
  M.Strings.reserve(NumStrings);
  for (uint32_t I = 0; R.ok() && I != NumStrings; ++I)
    M.Strings.push_back(R.str());

  TypeTables T;
  if (!readTypeGraph(R, Store, T))
    return false;

  uint32_t NumTableTypes = R.count(4);
  M.TypeTable.reserve(NumTableTypes);
  for (uint32_t I = 0; R.ok() && I != NumTableTypes; ++I) {
    Type *Ty = T.type(R, R.u32());
    M.TypeIndex.emplace(Ty, (int)M.TypeTable.size());
    M.TypeTable.push_back(Ty);
  }

  if (!readSlotKinds(R, M.GlobalKinds))
    return false;

  uint32_t NumClasses = R.count();
  M.Classes.reserve(NumClasses);
  for (uint32_t I = 0; R.ok() && I != NumClasses; ++I) {
    BcClass C;
    C.Name = R.str();
    C.ParentId = R.i32();
    C.Depth = R.u32();
    if (C.ParentId < -1 || C.ParentId >= (int)NumClasses) {
      R.fail("class parent id out of range");
      return false;
    }
    if (!readSlotKinds(R, C.FieldKinds))
      return false;
    uint32_t NumVt = R.count(4);
    C.VTable.reserve(NumVt);
    for (uint32_t J = 0; R.ok() && J != NumVt; ++J)
      C.VTable.push_back(R.i32());
    M.Classes.push_back(std::move(C));
  }

  uint32_t NumFuncs = R.count();
  M.Functions.reserve(NumFuncs);
  for (uint32_t I = 0; R.ok() && I != NumFuncs; ++I) {
    BcFunction F;
    F.Name = R.str();
    uint8_t BodyFlag = R.u8();
    if (R.ok() && BodyFlag > 1) {
      R.fail("invalid function body flag");
      return false;
    }
    if (BodyFlag == 1) {
      // Deduped body: copy the registers/code/descriptors of an
      // earlier function. Only backward references are legal, so the
      // source is always fully decoded already.
      uint32_t Ref = R.u32();
      if (R.ok() && Ref >= I) {
        R.fail("body back-reference is not backward");
        return false;
      }
      if (R.ok()) {
        const BcFunction &Src = M.Functions[Ref];
        F.NumRegs = Src.NumRegs;
        F.NumParams = Src.NumParams;
        F.NumRets = Src.NumRets;
        F.RegKinds = Src.RegKinds;
        F.Code = Src.Code;
        F.Descs = Src.Descs;
      }
    } else {
      F.NumRegs = R.u32();
      F.NumParams = R.u32();
      F.NumRets = R.u32();
      if (!readSlotKinds(R, F.RegKinds))
        return false;
      if (R.ok() && (F.RegKinds.size() != F.NumRegs ||
                     F.NumParams > F.NumRegs)) {
        R.fail("inconsistent register counts");
        return false;
      }
      uint32_t NumInstrs = R.count(21);
      F.Code.reserve(NumInstrs);
      for (uint32_t J = 0; R.ok() && J != NumInstrs; ++J) {
        BcInstr In;
        uint8_t Op = R.u8();
        if (Op > (uint8_t)BcOp::TrapOp) {
          R.fail("invalid opcode");
          return false;
        }
        In.Op = (BcOp)Op;
        In.A = R.i32();
        In.B = R.i32();
        In.C = R.i32();
        In.Imm = R.i64();
        F.Code.push_back(In);
      }
      uint32_t NumDescs = R.count(8);
      F.Descs.reserve(NumDescs);
      for (uint32_t J = 0; R.ok() && J != NumDescs; ++J) {
        CallDesc D;
        if (!readDescRegs(R, F.NumRegs, D.Args) ||
            !readDescRegs(R, F.NumRegs, D.Dsts))
          return false;
        F.Descs.push_back(std::move(D));
      }
    }
    F.Slot = R.i32();
    F.OwnerClassId = R.i32();
    F.SourceFuncTy = T.typeOrNull(R, R.i32());
    F.BoundFuncTy = T.typeOrNull(R, R.i32());
    if (R.ok() && (F.OwnerClassId < -1 || F.OwnerClassId >= (int)NumClasses)) {
      R.fail("owner class id out of range");
      return false;
    }
    M.Functions.push_back(std::move(F));
  }

  M.MainId = R.i32();
  M.InitId = R.i32();
  if (!R.ok())
    return false;
  if (M.MainId < -1 || M.MainId >= (int)M.Functions.size() ||
      M.InitId < -1 || M.InitId >= (int)M.Functions.size()) {
    R.fail("entry point id out of range");
    return false;
  }
  for (const BcClass &C : M.Classes)
    for (int V : C.VTable)
      if (V < -1 || V >= (int)M.Functions.size()) {
        R.fail("vtable function id out of range");
        return false;
      }
  for (const BcFunction &F : M.Functions)
    if (!validateFunction(R, M, F))
      return false;
  if (R.remaining() != 0) {
    R.fail("trailing bytes after module");
    return false;
  }
  return R.ok();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

uint64_t virgil::fnv1a64(std::string_view Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (char C : Bytes) {
    H ^= (uint8_t)C;
    H *= 0x100000001b3ull;
  }
  return H;
}

LoadedModule::LoadedModule()
    : Types(std::make_unique<TypeStore>()),
      Module(std::make_unique<BcModule>()) {
  Module->Types = Types.get();
}

LoadedModule::~LoadedModule() = default;

std::string virgil::serializeModule(const BcModule &M,
                                    uint32_t FormatVersion,
                                    SerializeStats *StatsOut) {
  TypeGraph G;
  G.collect(M);

  Writer Payload;
  writePayload(Payload, M, G, StatsOut);
  std::string Body = Payload.take();

  Writer W;
  W.u32(kMagic);
  W.u32(FormatVersion);
  W.u64(Body.size());
  W.u64(fnv1a64(Body));
  std::string Out = W.take();
  Out += Body;
  return Out;
}

bool virgil::peekFormatVersion(std::string_view Bytes,
                               uint32_t *VersionOut) {
  Reader R(Bytes);
  if (R.u32() != kMagic || !R.ok())
    return false;
  uint32_t V = R.u32();
  if (!R.ok())
    return false;
  *VersionOut = V;
  return true;
}

std::unique_ptr<LoadedModule>
virgil::deserializeModule(std::string_view Bytes, uint32_t ExpectVersion,
                          std::string *ErrorOut) {
  auto fail = [&](const char *Why) -> std::unique_ptr<LoadedModule> {
    if (ErrorOut)
      *ErrorOut = Why;
    return nullptr;
  };

  Reader Header(Bytes);
  if (Header.u32() != kMagic || !Header.ok())
    return fail("bad magic");
  uint32_t Version = Header.u32();
  if (!Header.ok())
    return fail("truncated header");
  if (Version != ExpectVersion)
    return fail("format version mismatch");
  uint64_t Len = Header.u64();
  uint64_t Hash = Header.u64();
  if (!Header.ok())
    return fail("truncated header");
  std::string_view Body = Bytes.substr(kHeaderSize);
  if (Body.size() != Len)
    return fail("payload length mismatch");
  if (fnv1a64(Body) != Hash)
    return fail("payload checksum mismatch");

  auto L = std::unique_ptr<LoadedModule>(new LoadedModule());
  Reader R(Body);
  if (!readPayload(R, *L->Types, *L->Module)) {
    if (ErrorOut)
      *ErrorOut = R.reason();
    return nullptr;
  }
  return L;
}
