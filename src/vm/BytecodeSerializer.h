//===- vm/BytecodeSerializer.h - BcModule <-> bytes -------------*- C++ -*-===//
///
/// \file
/// Round-trips a complete BcModule to a versioned, checksummed binary
/// format so compiled artifacts can outlive the compilation that
/// produced them (the compile service's on-disk cache). The format
/// captures everything the VM needs to run the module:
///
///   * functions (code, register kinds, call descriptors, dispatch
///     slots, first-class function types),
///   * classes (field kinds, vtables, class-id subtype chains),
///   * globals, strings, and the cast/query type table,
///   * a structural encoding of the type graph reachable from the
///     module, so a deserialized module owns a fresh TypeStore and is
///     fully divorced from the front-end that emitted it.
///
/// Robustness contract: deserializeModule never crashes on malformed
/// input. The header carries the format version and an FNV-1a checksum
/// of the payload; truncation, bit corruption, or a version mismatch
/// all yield a null result (the cache then falls back to a clean
/// recompile).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_BYTECODESERIALIZER_H
#define VIRGIL_VM_BYTECODESERIALIZER_H

#include "types/TypeStore.h"
#include "vm/Bytecode.h"

#include <memory>
#include <string>
#include <string_view>

namespace virgil {

/// Version of the on-disk bytecode format. Bump on ANY layout change;
/// readers reject mismatched versions and the cache recompiles.
/// v2: per-function body flag byte — identical body blobs (registers,
/// code, call descriptors) are written once and back-referenced.
constexpr uint32_t kBcFormatVersion = 2;

/// What body dedup saved in one serializeModule call (cache counters).
struct SerializeStats {
  /// Functions whose body was written as a back-reference.
  uint64_t SharedBodies = 0;
  /// Bytes the back-references saved versus inline bodies.
  uint64_t BytesSaved = 0;
};

/// A BcModule deserialized from bytes. Owns the TypeStore backing the
/// module's type table (casts/queries on first-class functions consult
/// it at runtime).
class LoadedModule {
public:
  LoadedModule();
  ~LoadedModule();
  LoadedModule(const LoadedModule &) = delete;
  LoadedModule &operator=(const LoadedModule &) = delete;

  BcModule &module() { return *Module; }
  const BcModule &module() const { return *Module; }
  TypeStore &types() { return *Types; }

private:
  friend std::unique_ptr<LoadedModule>
  deserializeModule(std::string_view, uint32_t, std::string *);

  std::unique_ptr<TypeStore> Types;
  std::unique_ptr<BcModule> Module;
};

/// Serializes \p M with header, \p FormatVersion, and payload checksum.
/// \p StatsOut (optional) accumulates body-dedup savings.
std::string serializeModule(const BcModule &M,
                            uint32_t FormatVersion = kBcFormatVersion,
                            SerializeStats *StatsOut = nullptr);

/// Deserializes \p Bytes; returns null on truncation, corruption, or a
/// format version other than \p ExpectVersion (reason in \p ErrorOut).
std::unique_ptr<LoadedModule>
deserializeModule(std::string_view Bytes,
                  uint32_t ExpectVersion = kBcFormatVersion,
                  std::string *ErrorOut = nullptr);

/// Reads just the format version out of a serialized header (cache
/// eviction sweeps); false if the header is malformed.
bool peekFormatVersion(std::string_view Bytes, uint32_t *VersionOut);

/// FNV-1a 64-bit over \p Bytes, chainable through \p Seed (cache keys
/// and payload checksums).
uint64_t fnv1a64(std::string_view Bytes,
                 uint64_t Seed = 0xcbf29ce484222325ull);

} // namespace virgil

#endif // VIRGIL_VM_BYTECODESERIALIZER_H
