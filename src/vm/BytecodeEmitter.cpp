//===- vm/BytecodeEmitter.cpp ---------------------------------------------===//

#include "vm/BytecodeEmitter.h"

#include "types/TypeRelations.h"

#include <cassert>
#include <map>

using namespace virgil;

namespace {

class Emitter {
public:
  explicit Emitter(IrModule &M)
      : M(M), Types(*M.Types), Rels(*M.Types),
        Out(std::make_unique<BcModule>()) {}

  std::unique_ptr<BcModule> run();

private:
  void emitClasses();
  void emitFunction(IrFunction *F, BcFunction &BF);
  int classIdOf(Type *ClassTy);

  static ElemKind elemKindOf(const Type *Elem) {
    if (Elem->isVoid())
      return ElemKind::Void;
    switch (slotKindOf(Elem)) {
    case SlotKind::Scalar:
      return ElemKind::Scalar;
    case SlotKind::Ref:
      return ElemKind::Ref;
    case SlotKind::Closure:
      return ElemKind::Closure;
    }
    return ElemKind::Scalar;
  }

  IrModule &M;
  TypeStore &Types;
  TypeRelations Rels;
  std::unique_ptr<BcModule> Out;
  std::map<ClassDef *, int> ClassIds;
};

int Emitter::classIdOf(Type *ClassTy) {
  auto *CT = cast<ClassType>(ClassTy);
  auto It = ClassIds.find(CT->def());
  assert(It != ClassIds.end() && "class not emitted");
  return It->second;
}

void Emitter::emitClasses() {
  for (size_t I = 0; I != M.Classes.size(); ++I)
    ClassIds[M.Classes[I]->Def] = (int)I;
  for (IrClass *C : M.Classes) {
    BcClass BC;
    BC.Name = C->Name;
    BC.ParentId = C->Parent ? (int)ClassIds[C->Parent->Def] : -1;
    BC.Depth = C->Depth;
    for (const IrField &F : C->Fields)
      BC.FieldKinds.push_back(slotKindOf(F.Ty));
    for (IrFunction *V : C->VTable)
      BC.VTable.push_back(V ? (int)V->id() : -1);
    Out->Classes.push_back(std::move(BC));
  }
}

void Emitter::emitFunction(IrFunction *F, BcFunction &BF) {
  BF.Name = F->Name;
  BF.NumRegs = (uint32_t)F->RegTypes.size();
  BF.NumParams = F->NumParams;
  BF.NumRets = (uint32_t)F->RetTypes.size();
  for (Type *T : F->RegTypes)
    BF.RegKinds.push_back(slotKindOf(T));
  BF.Slot = F->Slot;
  BF.OwnerClassId =
      F->OwnerClass ? (int)ClassIds[F->OwnerClass->Def] : -1;
  BF.SourceFuncTy = F->SourceFuncTy;
  BF.BoundFuncTy = F->BoundFuncTy;

  // Linearize blocks in order; record block starting pcs and patch
  // branch targets afterwards.
  std::map<const IrBlock *, size_t> BlockPc;
  struct Patch {
    size_t InstrIdx;
    const IrBlock *Target;
  };
  std::vector<Patch> Patches;

  auto emit = [&](BcOp Op, int32_t A = 0, int32_t B = 0, int32_t C = 0,
                  int64_t Imm = 0) -> size_t {
    BF.Code.push_back(BcInstr{Op, A, B, C, Imm});
    return BF.Code.size() - 1;
  };
  auto newDesc = [&](const std::vector<Reg> &Args,
                     const std::vector<Reg> &Dsts) -> int {
    CallDesc D;
    for (Reg R : Args)
      D.Args.push_back((uint16_t)R);
    for (Reg R : Dsts)
      D.Dsts.push_back((uint16_t)R);
    BF.Descs.push_back(std::move(D));
    return (int)BF.Descs.size() - 1;
  };

  for (IrBlock *Block : F->Blocks) {
    BlockPc[Block] = BF.Code.size();
    for (IrInstr *I : Block->Instrs) {
      switch (I->Op) {
      case Opcode::ConstInt:
      case Opcode::ConstByte:
      case Opcode::ConstBool:
        emit(BcOp::ConstI, (int32_t)I->dst(), 0, 0,
             (uint32_t)(int64_t)I->IntConst);
        break;
      case Opcode::ConstNull:
        emit(BcOp::ConstI, (int32_t)I->dst(), 0, 0, 0);
        break;
      case Opcode::ConstString:
        emit(BcOp::ConstStr, (int32_t)I->dst(), 0, 0, I->Index);
        break;
      case Opcode::ConstDefault:
        // Scalar replacement (opt/Escape.cpp) materializes each elided
        // field's allocator default after normalization; every scalar
        // default — int, byte, bool, ref — is the zero bit pattern.
        emit(BcOp::ConstI, (int32_t)I->dst(), 0, 0, 0);
        break;
      case Opcode::ConstVoid:
      case Opcode::TupleCreate:
      case Opcode::TupleGet:
        assert(false && "tuple/void op survived normalization");
        break;
      case Opcode::Move:
        emit(BcOp::Mv, (int32_t)I->dst(), (int32_t)I->Args[0]);
        break;
      case Opcode::IntAdd:
        emit(BcOp::Add, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntSub:
        emit(BcOp::Sub, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntMul:
        emit(BcOp::Mul, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntDiv:
        emit(BcOp::Div, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntMod:
        emit(BcOp::Mod, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntNeg:
        emit(BcOp::Neg, (int32_t)I->dst(), (int32_t)I->Args[0]);
        break;
      case Opcode::IntLt:
        emit(BcOp::Lt, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntLe:
        emit(BcOp::Le, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntGt:
        emit(BcOp::Gt, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::IntGe:
        emit(BcOp::Ge, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::BoolNot:
        emit(BcOp::Not, (int32_t)I->dst(), (int32_t)I->Args[0]);
        break;
      case Opcode::BoolAnd:
        emit(BcOp::And, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::BoolOr:
        emit(BcOp::Or, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::Eq:
        emit(BcOp::EqBits, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::Ne:
        emit(BcOp::NeBits, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::NewObject:
        emit(BcOp::NewObj, (int32_t)I->dst(), 0, 0,
             classIdOf(I->TypeOperand));
        break;
      case Opcode::FieldGet:
        emit(BcOp::LdF, (int32_t)I->dst(), (int32_t)I->Args[0], 0,
             I->Index);
        break;
      case Opcode::FieldSet:
        emit(BcOp::StF, (int32_t)I->Args[0], (int32_t)I->Args[1], 0,
             I->Index);
        break;
      case Opcode::NullCheck:
        emit(BcOp::NullChk, (int32_t)I->Args[0]);
        break;
      case Opcode::NewArray: {
        auto *AT = cast<ArrayType>(I->TypeOperand);
        emit(BcOp::NewArr, (int32_t)I->dst(), (int32_t)I->Args[0], 0,
             (int64_t)elemKindOf(AT->elem()));
        break;
      }
      case Opcode::ArrayGet:
        emit(BcOp::LdE, (int32_t)I->dst(), (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::BoundsCheck:
        emit(BcOp::BoundsChk, 0, (int32_t)I->Args[0],
             (int32_t)I->Args[1]);
        break;
      case Opcode::ArraySet:
        emit(BcOp::StE, (int32_t)I->Args[0], (int32_t)I->Args[1],
             (int32_t)I->Args[2]);
        break;
      case Opcode::ArrayLen:
        emit(BcOp::ArrLen, (int32_t)I->dst(), (int32_t)I->Args[0]);
        break;
      case Opcode::GlobalGet:
        emit(BcOp::LdG, (int32_t)I->dst(), 0, 0, I->Index);
        break;
      case Opcode::GlobalSet:
        emit(BcOp::StG, (int32_t)I->Args[0], 0, 0, I->Index);
        break;
      case Opcode::CallFunc:
        emit(BcOp::CallF, newDesc(I->Args, I->Dsts), 0, 0,
             (int64_t)I->Callee->id());
        break;
      case Opcode::CallVirtual:
        emit(BcOp::CallV, newDesc(I->Args, I->Dsts), 0, 0, I->Index);
        break;
      case Opcode::CallIndirect:
        emit(BcOp::CallInd, newDesc(I->Args, I->Dsts));
        break;
      case Opcode::CallBuiltin:
        emit(BcOp::CallB, newDesc(I->Args, I->Dsts), 0, 0, I->Index);
        break;
      case Opcode::MakeClosure: {
        bool HasBound = !I->Args.empty();
        emit(BcOp::MkClo, (int32_t)I->dst(),
             HasBound ? (int32_t)I->Args[0] : 0, HasBound ? 1 : 0,
             (int64_t)I->Callee->id());
        break;
      }
      case Opcode::TypeCast: {
        Type *From = F->RegTypes[I->Args[0]];
        Type *To = I->TypeOperand;
        TypeRel Rel = Rels.castRel(From, To);
        int32_t D = (int32_t)I->dst();
        int32_t S = (int32_t)I->Args[0];
        if (Rel == TypeRel::True) {
          // byte -> int widening or identical types: representations
          // coincide in 64-bit slots.
          emit(BcOp::Mv, D, S);
          break;
        }
        if (Rel == TypeRel::False) {
          // Nullable-to-nullable impossible casts still pass null.
          bool FromNullable = From->kind() == TypeKind::Class ||
                              From->kind() == TypeKind::Array ||
                              From->kind() == TypeKind::Function;
          bool ToNullable = To->kind() == TypeKind::Class ||
                            To->kind() == TypeKind::Array ||
                            To->kind() == TypeKind::Function;
          if (FromNullable && ToNullable)
            emit(BcOp::CastNullOnly, D, S);
          else
            emit(BcOp::TrapOp, 0, 0, 0, (int64_t)TrapKind::CastFail);
          break;
        }
        // Dynamic.
        if (To->isByte()) {
          emit(BcOp::CastIntByte, D, S);
        } else if (To->kind() == TypeKind::Class) {
          emit(BcOp::CastClass, D, S, 0, classIdOf(To));
        } else if (To->kind() == TypeKind::Function) {
          emit(BcOp::CastFunc, D, S, 0, Out->internType(To));
        } else {
          assert(false && "unexpected dynamic cast shape");
          emit(BcOp::TrapOp, 0, 0, 0, (int64_t)TrapKind::CastFail);
        }
        break;
      }
      case Opcode::TypeQuery: {
        Type *From = F->RegTypes[I->Args[0]];
        Type *To = I->TypeOperand;
        TypeRel Rel = Rels.queryRel(From, To);
        int32_t D = (int32_t)I->dst();
        int32_t S = (int32_t)I->Args[0];
        if (Rel == TypeRel::True) {
          emit(BcOp::ConstI, D, 0, 0, 1);
        } else if (Rel == TypeRel::False) {
          emit(BcOp::ConstI, D, 0, 0, 0);
        } else if (To->kind() == TypeKind::Class) {
          if (Rels.isSubtype(From, To))
            emit(BcOp::QueryNonNull, D, S);
          else
            emit(BcOp::QueryClass, D, S, 0, classIdOf(To));
        } else if (To->kind() == TypeKind::Function) {
          if (Rels.isSubtype(From, To))
            emit(BcOp::QueryNonNull, D, S);
          else
            emit(BcOp::QueryFunc, D, S, 0, Out->internType(To));
        } else if (To->kind() == TypeKind::Array) {
          emit(BcOp::QueryNonNull, D, S);
        } else {
          assert(false && "unexpected dynamic query shape");
          emit(BcOp::ConstI, D, 0, 0, 0);
        }
        break;
      }
      case Opcode::Ret:
        emit(BcOp::RetOp, newDesc(I->Args, {}));
        break;
      case Opcode::Br: {
        size_t Idx = emit(BcOp::Jmp);
        Patches.push_back(Patch{Idx, Block->Succ0});
        break;
      }
      case Opcode::CondBr: {
        size_t Idx = emit(BcOp::JmpIfFalse, (int32_t)I->Args[0]);
        Patches.push_back(Patch{Idx, Block->Succ1});
        size_t Idx2 = emit(BcOp::Jmp);
        Patches.push_back(Patch{Idx2, Block->Succ0});
        break;
      }
      case Opcode::Trap:
        emit(BcOp::TrapOp, 0, 0, 0, I->Index);
        break;
      case Opcode::Phi:
        assert(false && "phi outside the SSA sandwich");
        break;
      }
    }
  }
  for (const Patch &P : Patches)
    BF.Code[P.InstrIdx].Imm = (int64_t)BlockPc[P.Target];
}

std::unique_ptr<BcModule> Emitter::run() {
  assert(M.Normalized && "bytecode requires a normalized module");
  Out->Types = M.Types;
  Out->Strings = M.Strings;
  emitClasses();
  for (const IrGlobal &G : M.Globals)
    Out->GlobalKinds.push_back(slotKindOf(G.Ty));
  Out->Functions.resize(M.Functions.size());
  for (IrFunction *F : M.Functions)
    emitFunction(F, Out->Functions[F->id()]);
  if (M.Main)
    Out->MainId = (int)M.Main->id();
  if (M.Init)
    Out->InitId = (int)M.Init->id();
  return std::move(Out);
}

} // namespace

std::unique_ptr<BcModule> virgil::emitBytecode(IrModule &M) {
  Emitter E(M);
  return E.run();
}
