//===- vm/BcPrepare.h - Load-time bytecode preparation ----------*- C++ -*-===//
///
/// \file
/// The VM's load-time preparation pass. Before execution, every
/// BcFunction is rewritten into a decoded internal form (PInstr) that
/// the threaded dispatch loop executes directly:
///
/// * **superinstruction fusion** collapses common adjacent pairs into
///   one dispatch: compare + branch-if-false, constant + add/sub
///   (add-immediate), a null check + the guarded memory op (the check
///   is folded into the op, which re-checks anyway), and a trailing
///   move + return (the return descriptor is rewritten to read the
///   move's source). A pair is only fused when the second instruction
///   is not a branch target, so every fused superinstruction performs
///   exactly the effects of both originals and counts as two executed
///   instructions — fuel accounting is identical to the unfused stream;
/// * **monomorphic inline caches** are attached to every CallV site
///   (cached classId -> resolved vtable target, falling back to the
///   vtable walk on miss);
/// * branch targets are remapped to the new instruction numbering.
///
/// Preparation never changes observable semantics: results, output,
/// traps, and executed-instruction counts are identical to the plain
/// decoded stream, so the differential oracle cannot tell the modes
/// apart.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_BCPREPARE_H
#define VIRGIL_VM_BCPREPARE_H

#include "vm/Bytecode.h"

namespace virgil {

/// Prepared opcodes. The first block mirrors BcOp one-to-one (same
/// order, so decoding a non-fused instruction is a cast); the tail
/// adds the superinstructions and the inline-cached virtual call.
/// Kept as an X-macro so the threaded dispatch table in VmLoop.inc is
/// generated from the same list and cannot drift out of order.
#define VIRGIL_VM_POPS(X)                                                      \
  /* BcOp mirror — order must match BcOp exactly. */                           \
  X(Nop) X(ConstI) X(ConstStr) X(Mv) X(Add) X(Sub) X(Mul) X(Div) X(Mod)        \
  X(Neg) X(Lt) X(Le) X(Gt) X(Ge) X(Not) X(And) X(Or) X(EqBits) X(NeBits)      \
  X(NewObj) X(NewArr) X(LdF) X(StF) X(NullChk) X(LdE) X(StE) X(BoundsChk)     \
  X(ArrLen) X(LdG) X(StG) X(CallF) X(CallV) X(CallInd) X(CallB) X(MkClo)      \
  X(CastClass) X(QueryClass) X(CastIntByte) X(CastFunc) X(QueryFunc)          \
  X(CastNullOnly) X(QueryNonNull) X(Jmp) X(JmpIfFalse) X(RetOp) X(TrapOp)     \
  /* Superinstructions and IC'd calls. */                                      \
  X(CallVC)                                 /* CallV with inline cache #B */   \
  X(BrLtF) X(BrLeF) X(BrGtF) X(BrGeF)       /* cmp, then branch if false */    \
  X(BrEqF) X(BrNeF)                                                            \
  X(AddImm) X(SubImm)  /* R[C] <- Imm; R[A] <- R[B] op Imm */                  \
  X(LdFC) X(StFC) X(LdEC) X(StEC)           /* null check folded in */         \
  X(BoundsChkC) X(ArrLenC)                                                     \
  X(RetMv)                                  /* RetOp with a folded Mv */       \
  X(TrapCc)            /* CallF whose arity prepare proved mismatched */       \
  /* Generational-GC write-barrier variants. Prepare rewrites a store  */      \
  /* to one of these only when the stored slot is reference-kind, so   */      \
  /* scalar stores never pay for the barrier. The closure flag rides   */      \
  /* in the operand field the base encoding leaves free: C for StF(C), */      \
  /* Imm for StE(C), B for StG.                                        */     \
  X(StFB) X(StFCB)                          /* StF(C) + write barrier */       \
  X(StEB) X(StECB)                          /* StE(C) + write barrier */       \
  X(StGB)                                   /* StG + global barrier */

enum class POp : uint8_t {
#define VIRGIL_VM_POP_ENUM(name) name,
  VIRGIL_VM_POPS(VIRGIL_VM_POP_ENUM)
#undef VIRGIL_VM_POP_ENUM
};

constexpr size_t NumPOps = [] {
  size_t N = 0;
#define VIRGIL_VM_POP_COUNT(name) ++N;
  VIRGIL_VM_POPS(VIRGIL_VM_POP_COUNT)
#undef VIRGIL_VM_POP_COUNT
  return N;
}();

// The mirror block must stay castable from BcOp.
static_assert((int)POp::TrapOp == (int)BcOp::TrapOp,
              "POp mirror block out of sync with BcOp");

/// One decoded instruction: 16 bytes (vs BcInstr's 24), so the hot
/// code stream touches a third fewer cache lines. Register operands
/// and desc/IC indices all fit u16 (NumRegs and per-function tables
/// are bounded well below 64K); Imm keeps the full 64 bits so constant
/// bit patterns survive verbatim.
struct PInstr {
  POp Op = POp::Nop;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
};
static_assert(sizeof(PInstr) == 16, "PInstr packing regressed");

/// One monomorphic inline-cache entry for a CallVC site.
struct IcEntry {
  int32_t ClassId = -1;
  int32_t Target = -1;
};

/// A flattened call descriptor: argument and destination register
/// lists live in the owning PFunc's Pool, reachable in one load (the
/// source CallDesc costs two vector-header chases per call).
struct PDesc {
  const uint16_t *Args = nullptr;
  const uint16_t *Dsts = nullptr;
  uint32_t NArgs = 0;
  uint32_t NDsts = 0;
};

/// A prepared function: decoded code, flattened (possibly rewritten)
/// call descriptors, and the IC table. RegKinds points into the source
/// BcFunction, which the Vm keeps alive.
/// Hotness gate sentinel: the function will never tier up (JIT off,
/// unsupported host, or compilation failed/declined). Keeping the
/// disabled state in the *gate* means the interpreter's tier check is
/// one always-predicted compare when the JIT is out of the picture.
constexpr uint32_t kNoJitGate = 0xFFFFFFFFu;

struct PFunc {
  std::vector<PInstr> Code;
  std::vector<PDesc> Descs;
  /// Backing store for every PDesc's Args/Dsts spans.
  std::vector<uint16_t> Pool;
  std::vector<IcEntry> Ics;
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  const SlotKind *RegKinds = nullptr;
  /// JIT tiering state (src/jit). Hot counts entries + taken backward
  /// branches; when it crosses Gate the tier compiles the function and
  /// records its code-table index in JitId. Policy only — execution
  /// semantics are identical in both tiers.
  uint32_t Hot = 0;
  uint32_t Gate = kNoJitGate;
  int32_t JitId = -1;
};

struct PrepareStats {
  uint64_t FusedCmpBr = 0;
  uint64_t FusedAddImm = 0;
  uint64_t FusedSubImm = 0;
  uint64_t FusedChkFold = 0;
  uint64_t FusedMvRet = 0;
  uint64_t IcSites = 0;
  /// Reference-kind stores rewritten to write-barrier variants.
  uint64_t BarrierSites = 0;

  uint64_t fusedTotal() const {
    return FusedCmpBr + FusedAddImm + FusedSubImm + FusedChkFold +
           FusedMvRet;
  }
};

struct PrepareOptions {
  bool Fuse = true;
  bool InlineCache = true;
  /// Rewrite reference-kind StF/StE/StG (and their checked forms) to
  /// write-barrier variants for the generational heap. Off when the VM
  /// runs the single-space ablation mode: the plain stores skip the
  /// remembered-set bookkeeping entirely.
  bool Barriers = true;
};

struct PreparedModule {
  std::vector<PFunc> Funcs;
  /// Per-function: is this an unbound virtual method (CallInd must
  /// re-dispatch on the first argument)? Flat array so the indirect
  /// call fast path avoids touching BcFunction.
  std::vector<uint8_t> VirtUnbound;
  /// Widest return descriptor in the module (sizes the VM's return
  /// buffer once).
  uint32_t MaxRets = 0;
  PrepareStats Stats;
};

/// Decodes and fuses every function of \p M.
PreparedModule prepareModule(const BcModule &M,
                             const PrepareOptions &Options = {});

} // namespace virgil

#endif // VIRGIL_VM_BCPREPARE_H
