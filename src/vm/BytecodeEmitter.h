//===- vm/BytecodeEmitter.h - Normalized IR to bytecode ---------*- C++ -*-===//
///
/// \file
/// Emits a BcModule from normalized, monomorphized IR. Emission is the
/// point where the remaining symbolic type tests become concrete
/// machine operations: class casts become class-id subtype walks,
/// int->byte casts become range checks, statically-decided casts become
/// moves or unconditional traps, and everything else is a plain
/// register instruction.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_VM_BYTECODEEMITTER_H
#define VIRGIL_VM_BYTECODEEMITTER_H

#include "ir/Ir.h"
#include "vm/Bytecode.h"

#include <memory>

namespace virgil {

/// Compiles the module; requires M.Normalized. Never fails on verified
/// input.
std::unique_ptr<BcModule> emitBytecode(IrModule &M);

} // namespace virgil

#endif // VIRGIL_VM_BYTECODEEMITTER_H
