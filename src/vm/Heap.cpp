//===- vm/Heap.cpp --------------------------------------------------------===//

#include "vm/Heap.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

using namespace virgil;

namespace {

constexpr uint64_t TagObject = 1;
constexpr uint64_t TagArray = 2;
constexpr uint64_t TagForward = 7;

/// Closure slots pack (funcId + 1) << 33 | boundRef << 1 | hasBound.
uint64_t closureBound(uint64_t Slot) { return (Slot >> 1) & 0xFFFFFFFFu; }
bool closureHasBound(uint64_t Slot) { return Slot & 1; }
uint64_t repackClosure(uint64_t Slot, uint64_t NewBound) {
  return (Slot & ~(uint64_t)0x1FFFFFFFE) | (NewBound << 1);
}

uint64_t nowNs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

double PauseHistogram::percentileNs(double Q) const {
  if (N == 0)
    return 0.0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Target = (uint64_t)(Q * (double)(N - 1)) + 1; // 1-based rank
  uint64_t Seen = 0;
  for (int B = 0; B != kBuckets; ++B) {
    if (Counts[B] == 0)
      continue;
    if (Seen + Counts[B] >= Target) {
      double Lo = B == 0 ? 0.0 : (double)((uint64_t)1 << B);
      double Hi = (double)((uint64_t)1 << (B + 1));
      double Frac = (double)(Target - Seen) / (double)Counts[B];
      return Lo + (Hi - Lo) * Frac;
    }
    Seen += Counts[B];
  }
  return (double)MaxNs;
}

Heap::Heap(const BcModule &M, HeapOptions Options) : M(M) {
  size_t Total = std::max<size_t>(Options.InitialSlots, 16);
  if (Options.LimitSlots && Total > std::max<size_t>(Options.LimitSlots, 16))
    Total = std::max<size_t>(Options.LimitSlots, 16);
  size_t Nursery = 0;
  if (Options.Generational) {
    // The old generation must start at least as large as the nursery,
    // or the first minor collection's promotion reservation could not
    // be satisfied without growing.
    Nursery = std::min(Options.NurserySlots, (Total - 1) / 2);
  }
  NurserySlots = Nursery;
  NurseryLimit = 1 + Nursery;
  NurseryTop = 1;
  OldTop = NurseryLimit;
  InitialTotal = Total;
  LimitSlots = Options.LimitSlots;
  Space.assign(Total, 0);
  growDirtyBits();
  syncClassSlots();
}

Heap::Heap(const BcModule &M, size_t InitialSlots)
    : Heap(M, [&] {
        HeapOptions O;
        O.InitialSlots = InitialSlots;
        return O;
      }()) {}

void Heap::syncClassSlots() {
  ClassSlots.clear();
  ClassSlots.reserve(M.Classes.size());
  for (const BcClass &C : M.Classes)
    ClassSlots.push_back((uint32_t)(1 + C.FieldKinds.size()));
}

void Heap::setRoots(std::vector<uint64_t> *S, std::vector<SlotKind> *K,
                    std::vector<uint64_t> *G, const size_t *T) {
  Stack = S;
  StackKinds = K;
  Globals = G;
  StackTop = T;
}

void Heap::setLimitSlots(size_t Limit) {
  LimitSlots = Limit;
  if (!Limit)
    return;
  size_t Cap = std::max<size_t>(Limit, 16);
  // On a still-empty heap, shrink the initial space (and the nursery
  // with it) to fit a smaller quota, so `--heap-bytes` keeps its
  // documented floor instead of being silently raised to the default
  // generational footprint.
  if (NurseryTop == 1 && OldTop == NurseryLimit && Space.size() > Cap) {
    NurserySlots = std::min(NurserySlots, (Cap - 1) / 2);
    NurseryLimit = 1 + NurserySlots;
    OldTop = NurseryLimit;
    InitialTotal = Cap;
    Space.assign(Cap, 0);
    clearRememberedSet();
  }
  InitialTotal = std::min(InitialTotal, Cap);
}

size_t Heap::effLimit() const {
  if (!LimitSlots)
    return SIZE_MAX;
  // The initial space is the floor: live data already admitted must
  // keep fitting even under a cap smaller than the starting size.
  return std::max(LimitSlots, InitialTotal);
}

size_t Heap::sizeOf(uint64_t Ref) const {
  uint64_t Header = Space[Ref];
  if ((Header & 7) == TagObject)
    return 1 + M.Classes[Header >> 3].FieldKinds.size();
  assert((Header & 7) == TagArray && "bad header");
  ElemKind Kind = (ElemKind)(Header >> 3);
  int64_t Len = (int64_t)Space[Ref + 1];
  return 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
}

//===----------------------------------------------------------------------===//
// Remembered set
//===----------------------------------------------------------------------===//

void Heap::growDirtyBits() {
  size_t Words =
      Space.size() > NurseryLimit ? (Space.size() - NurseryLimit + 63) / 64 : 0;
  if (DirtyWords.size() < Words)
    DirtyWords.resize(Words, 0);
}

void Heap::rememberSlot(uint64_t SlotIdx, bool IsClosure) {
  size_t Off = SlotIdx - NurseryLimit;
  size_t W = Off >> 6;
  uint64_t Bit = (uint64_t)1 << (Off & 63);
  if (W >= DirtyWords.size())
    growDirtyBits(); // old space was resized since the last clear
  if (DirtyWords[W] & Bit)
    return;
  DirtyWords[W] |= Bit;
  RemSlots.push_back((SlotIdx << 1) | (IsClosure ? 1 : 0));
  ++Stats.RememberedSlots;
}

void Heap::rememberGlobal(size_t GlobalIdx) {
  if (GlobalIdx >= GlobalDirty.size())
    GlobalDirty.resize(GlobalIdx + 1, 0);
  if (GlobalDirty[GlobalIdx])
    return;
  GlobalDirty[GlobalIdx] = 1;
  RemGlobals.push_back((uint32_t)GlobalIdx);
  ++Stats.RememberedSlots;
}

void Heap::clearRememberedSet() {
  // After any collection the nursery is empty, so no old→young edges
  // can exist: the whole remembered set resets.
  RemSlots.clear();
  RemGlobals.clear();
  size_t Words =
      Space.size() > NurseryLimit ? (Space.size() - NurseryLimit + 63) / 64 : 0;
  DirtyWords.assign(Words, 0);
  std::fill(GlobalDirty.begin(), GlobalDirty.end(), 0);
}

//===----------------------------------------------------------------------===//
// Allocation slow path
//===----------------------------------------------------------------------===//

bool Heap::growOldTo(size_t NeedTop) {
  size_t NewSize = Space.size();
  while (NewSize < NeedTop)
    NewSize *= 2;
  size_t Lim = effLimit();
  if (NewSize > Lim)
    NewSize = Lim;
  if (NewSize < NeedTop)
    return false;
  if (NewSize != Space.size()) {
    Space.resize(NewSize, 0);
    growDirtyBits();
  }
  return true;
}

uint64_t Heap::allocSlotsSlow(size_t Slots) {
  if (OverLimit)
    return 0;
  if (NurserySlots != 0 && Slots <= NurserySlots) {
    // Nursery overflow: empty it (minor collection, or major when the
    // promotion reservation is cap-blocked), then retry the bump.
    collectNursery();
    if (OverLimit)
      return 0;
    size_t T = NurseryTop + Slots;
    assert(T <= NurseryLimit && "empty nursery cannot fit the request");
    uint64_t Ref = NurseryTop;
    NurseryTop = T;
    Stats.NurserySlotsAllocated += Slots;
    return Ref;
  }
  // Old-space request (the whole heap when non-generational, or an
  // object too large for the nursery): collect, which also applies the
  // grow/shrink sizing policy for exactly this request.
  collectMajor(Slots);
  if (OldTop + Slots > Space.size()) {
    OverLimit = true;
    return 0;
  }
  uint64_t Ref = OldTop;
  OldTop += Slots;
  return Ref;
}

//===----------------------------------------------------------------------===//
// Minor collection: evacuate the nursery into the old generation
//===----------------------------------------------------------------------===//

uint64_t Heap::forwardYoung(uint64_t Ref) {
  if (Ref == 0 || Ref >= NurseryLimit)
    return Ref; // null or already old
  uint64_t Header = Space[Ref];
  if ((Header & 7) == TagForward)
    return Header >> 3;
  size_t Slots = sizeOf(Ref);
  uint64_t NewRef = OldTop;
  std::memcpy(&Space[OldTop], &Space[Ref], Slots * sizeof(uint64_t));
  OldTop += Slots;
  Stats.SlotsCopied += Slots;
  Space[Ref] = (NewRef << 3) | TagForward;
  return NewRef;
}

void Heap::scanSlotYoung(uint64_t &Slot, SlotKind Kind) {
  switch (Kind) {
  case SlotKind::Scalar:
    return;
  case SlotKind::Ref:
    Slot = forwardYoung(Slot);
    return;
  case SlotKind::Closure:
    if (Slot != 0 && closureHasBound(Slot)) {
      uint64_t B = closureBound(Slot);
      if (B != 0 && B < NurseryLimit)
        Slot = repackClosure(Slot, forwardYoung(B));
    }
    return;
  }
}

void Heap::collectMinor() {
  uint64_t T0 = nowNs();
  if (PreCollect)
    PreCollect();
  ++Stats.Collections;
  ++Stats.MinorCollections;
  size_t PromoteStart = OldTop;

  // Roots: the live stack extent, the remembered old→young slots, and
  // the barrier-recorded globals. Unlike a major collection, clean old
  // slots and clean globals are never touched — that is the point.
  if (Stack) {
    size_t Live = StackTop ? *StackTop : Stack->size();
    assert(StackKinds && StackKinds->size() >= Live && Stack->size() >= Live);
    for (size_t I = 0; I != Live; ++I)
      scanSlotYoung((*Stack)[I], (*StackKinds)[I]);
  }
  for (uint64_t E : RemSlots)
    scanSlotYoung(Space[E >> 1], (E & 1) ? SlotKind::Closure : SlotKind::Ref);
  if (Globals)
    for (uint32_t G : RemGlobals)
      scanSlotYoung((*Globals)[G], M.GlobalKinds[G]);

  // Cheney scan of the promoted region: survivors may point at other
  // nursery objects, which promote in turn.
  size_t Scan = PromoteStart;
  while (Scan < OldTop) {
    uint64_t Header = Space[Scan];
    if ((Header & 7) == TagObject) {
      const BcClass &Cls = M.Classes[Header >> 3];
      for (size_t F = 0; F != Cls.FieldKinds.size(); ++F)
        scanSlotYoung(Space[Scan + 1 + F], Cls.FieldKinds[F]);
      Scan += 1 + Cls.FieldKinds.size();
      continue;
    }
    assert((Header & 7) == TagArray && "bad header in promoted region");
    ElemKind Kind = (ElemKind)(Header >> 3);
    int64_t Len = (int64_t)Space[Scan + 1];
    if (Kind == ElemKind::Ref || Kind == ElemKind::Closure) {
      SlotKind SK = Kind == ElemKind::Ref ? SlotKind::Ref : SlotKind::Closure;
      for (int64_t E = 0; E != Len; ++E)
        scanSlotYoung(Space[Scan + 2 + E], SK);
    }
    Scan += 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
  }

  Stats.SlotsPromoted += OldTop - PromoteStart;
  NurseryTop = 1; // stale nursery contents are dead; allocs re-init
  clearRememberedSet();
  Stats.MinorPauses.record(nowNs() - T0);
}

void Heap::collectNursery() {
  // Pre-reserve the worst case — every live nursery slot promotes — so
  // evacuation can never overflow the old generation mid-scan.
  size_t Need = NurseryTop - 1;
  if (OldTop + Need > Space.size() && !growOldTo(OldTop + Need)) {
    collectMajor(0); // cap-blocked: a full collection empties the
    return;          // nursery too, and applies the sizing policy
  }
  collectMinor();
}

//===----------------------------------------------------------------------===//
// Major collection: semispace copy of everything live
//===----------------------------------------------------------------------===//

uint64_t Heap::forwardAny(uint64_t Ref, std::vector<uint64_t> &To,
                          size_t &Top2) {
  if (Ref == 0)
    return 0;
  uint64_t Header = Space[Ref];
  if ((Header & 7) == TagForward)
    return Header >> 3;
  size_t Slots = sizeOf(Ref);
  uint64_t NewRef = Top2;
  std::memcpy(&To[Top2], &Space[Ref], Slots * sizeof(uint64_t));
  Top2 += Slots;
  Stats.SlotsCopied += Slots;
  Space[Ref] = (NewRef << 3) | TagForward;
  return NewRef;
}

void Heap::scanSlotAny(uint64_t &Slot, SlotKind Kind,
                       std::vector<uint64_t> &To, size_t &Top2) {
  switch (Kind) {
  case SlotKind::Scalar:
    return;
  case SlotKind::Ref:
    Slot = forwardAny(Slot, To, Top2);
    return;
  case SlotKind::Closure:
    if (Slot != 0 && closureHasBound(Slot))
      Slot = repackClosure(Slot, forwardAny(closureBound(Slot), To, Top2));
    return;
  }
}

void Heap::collectMajor(size_t NeedSlots) {
  uint64_t T0 = nowNs();
  if (PreCollect)
    PreCollect();
  ++Stats.Collections;
  ++Stats.MajorCollections;

  // To-space keeps the same partition; live data (at most everything
  // allocated in both generations) lands past the nursery boundary.
  size_t WorstLive = (NurseryTop - 1) + (OldTop - NurseryLimit);
  std::vector<uint64_t> To(NurseryLimit + WorstLive + 16, 0);
  size_t Top2 = NurseryLimit;

  // Roots: the live stack extent and ALL globals (majors do not rely
  // on the write barrier).
  if (Stack) {
    size_t Live = StackTop ? *StackTop : Stack->size();
    assert(StackKinds && StackKinds->size() >= Live && Stack->size() >= Live);
    for (size_t I = 0; I != Live; ++I)
      scanSlotAny((*Stack)[I], (*StackKinds)[I], To, Top2);
  }
  if (Globals)
    for (size_t I = 0; I != Globals->size(); ++I)
      scanSlotAny((*Globals)[I], M.GlobalKinds[I], To, Top2);

  // Cheney scan.
  size_t Scan = NurseryLimit;
  while (Scan < Top2) {
    uint64_t Header = To[Scan];
    if ((Header & 7) == TagObject) {
      const BcClass &Cls = M.Classes[Header >> 3];
      for (size_t F = 0; F != Cls.FieldKinds.size(); ++F)
        scanSlotAny(To[Scan + 1 + F], Cls.FieldKinds[F], To, Top2);
      Scan += 1 + Cls.FieldKinds.size();
      continue;
    }
    assert((Header & 7) == TagArray && "bad header in to-space");
    ElemKind Kind = (ElemKind)(Header >> 3);
    int64_t Len = (int64_t)To[Scan + 1];
    if (Kind == ElemKind::Ref || Kind == ElemKind::Closure) {
      SlotKind SK = Kind == ElemKind::Ref ? SlotKind::Ref : SlotKind::Closure;
      for (int64_t E = 0; E != Len; ++E)
        scanSlotAny(To[Scan + 2 + E], SK, To, Top2);
    }
    Scan += 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
  }

  size_t Live = Top2 - NurseryLimit;

  // Occupancy policy: size the old generation to ~50% after the
  // collection, growing after a live spike and — the other half of the
  // policy — shrinking back when the live set drops, never below the
  // initial footprint. The quota clamps the result; live data always
  // fits (the cap cannot evict admitted objects), but a cap-blocked
  // request marks the heap over-limit so the allocation fails cleanly.
  size_t MinOld = InitialTotal > NurseryLimit ? InitialTotal - NurseryLimit : 16;
  size_t WantOld = std::max({MinOld, 2 * Live, Live + NeedSlots + 16});
  size_t Want = NurseryLimit + WantOld;
  size_t Lim = effLimit();
  if (Want > Lim) {
    Want = std::max(Lim, NurseryLimit + Live);
    // Live data past the quota (or a request that cannot fit under
    // it) is a terminal condition: without this, every nursery refill
    // would admit another nursery-full of live slots and the cap
    // would never bind.
    if (NurseryLimit + Live + NeedSlots > Lim)
      OverLimit = true;
  }
  To.resize(Want, 0);
  if (To.capacity() > Want + (Want >> 1))
    To.shrink_to_fit();
  Space = std::move(To);
  OldTop = Top2;
  NurseryTop = 1;
  LiveAfterGc = Live + 1; // matches the single-space convention (slot 0)
  Stats.MaxLiveSlots = std::max(Stats.MaxLiveSlots, (uint64_t)(Live + 1));
  clearRememberedSet();
  Stats.MajorPauses.record(nowNs() - T0);
}

void Heap::reset() {
  // resize (not assign) keeps the vector's capacity: a previous run
  // that grew the heap leaves its pages faulted in for the next one.
  // Contents are intentionally left stale; allocObject/allocArray and
  // the collectors initialize every slot they expose.
  if (Space.size() != InitialTotal)
    Space.resize(InitialTotal);
  NurseryTop = 1;
  OldTop = NurseryLimit;
  OverLimit = false;
  LiveAfterGc = 0;
  Stats = HeapStats();
  clearRememberedSet();
}

void Heap::collectNow() { collectMajor(0); }

void Heap::collectMinorNow() {
  if (NurserySlots == 0) {
    collectMajor(0);
    return;
  }
  collectNursery();
}
