//===- vm/Heap.cpp --------------------------------------------------------===//

#include "vm/Heap.h"

#include <cassert>
#include <cstring>

using namespace virgil;

namespace {

constexpr uint64_t TagObject = 1;
constexpr uint64_t TagArray = 2;
constexpr uint64_t TagForward = 7;

/// Closure slots pack (funcId + 1) << 33 | boundRef << 1 | hasBound.
uint64_t closureBound(uint64_t Slot) { return (Slot >> 1) & 0xFFFFFFFFu; }
bool closureHasBound(uint64_t Slot) { return Slot & 1; }
uint64_t repackClosure(uint64_t Slot, uint64_t NewBound) {
  return (Slot & ~(uint64_t)0x1FFFFFFFE) | (NewBound << 1);
}

} // namespace

Heap::Heap(const BcModule &M, size_t InitialSlots) : M(M) {
  Space.assign(InitialSlots < 16 ? 16 : InitialSlots, 0);
  syncClassSlots();
}

void Heap::syncClassSlots() {
  ClassSlots.clear();
  ClassSlots.reserve(M.Classes.size());
  for (const BcClass &C : M.Classes)
    ClassSlots.push_back((uint32_t)(1 + C.FieldKinds.size()));
}

void Heap::setRoots(std::vector<uint64_t> *S, std::vector<SlotKind> *K,
                    std::vector<uint64_t> *G, const size_t *T) {
  Stack = S;
  StackKinds = K;
  Globals = G;
  StackTop = T;
}

size_t Heap::sizeOf(uint64_t Ref) const {
  uint64_t Header = Space[Ref];
  if ((Header & 7) == TagObject)
    return 1 + M.Classes[Header >> 3].FieldKinds.size();
  assert((Header & 7) == TagArray && "bad header");
  ElemKind Kind = (ElemKind)(Header >> 3);
  int64_t Len = (int64_t)Space[Ref + 1];
  return 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
}

uint64_t Heap::forward(uint64_t Ref, std::vector<uint64_t> &To,
                       size_t &Top2) {
  if (Ref == 0)
    return 0;
  uint64_t Header = Space[Ref];
  if ((Header & 7) == TagForward)
    return Header >> 3;
  size_t Slots = sizeOf(Ref);
  uint64_t NewRef = Top2;
  std::memcpy(&To[Top2], &Space[Ref], Slots * sizeof(uint64_t));
  Top2 += Slots;
  Stats.SlotsCopied += Slots;
  Space[Ref] = (NewRef << 3) | TagForward;
  return NewRef;
}

void Heap::scanSlot(uint64_t &Slot, SlotKind Kind,
                    std::vector<uint64_t> &To, size_t &Top2) {
  switch (Kind) {
  case SlotKind::Scalar:
    return;
  case SlotKind::Ref:
    Slot = forward(Slot, To, Top2);
    return;
  case SlotKind::Closure:
    if (Slot != 0 && closureHasBound(Slot))
      Slot = repackClosure(Slot, forward(closureBound(Slot), To, Top2));
    return;
  }
}

void Heap::collect(size_t NeedSlots) {
  if (PreCollect)
    PreCollect();
  ++Stats.Collections;
  size_t NewSize = Space.size();
  // Grow if the heap looks tight: keep at least 2x the live estimate.
  while (NewSize < Top + NeedSlots + 16)
    NewSize *= 2;
  // The quota caps growth: never allocate a to-space past LimitSlots
  // (but never below the current space either — live data, which is at
  // most Top <= Space.size(), must always fit for the compaction).
  if (LimitSlots && NewSize > LimitSlots)
    NewSize = std::max(Space.size(), LimitSlots);
  std::vector<uint64_t> To(NewSize, 0);
  size_t Top2 = 1;

  // Roots: the live extent of the register stack and the globals.
  if (Stack) {
    size_t Live = StackTop ? *StackTop : Stack->size();
    assert(StackKinds && StackKinds->size() >= Live &&
           Stack->size() >= Live);
    for (size_t I = 0; I != Live; ++I)
      scanSlot((*Stack)[I], (*StackKinds)[I], To, Top2);
  }
  if (Globals)
    for (size_t I = 0; I != Globals->size(); ++I)
      scanSlot((*Globals)[I], M.GlobalKinds[I], To, Top2);

  // Cheney scan.
  size_t Scan = 1;
  while (Scan < Top2) {
    uint64_t Header = To[Scan];
    if ((Header & 7) == TagObject) {
      const BcClass &Cls = M.Classes[Header >> 3];
      for (size_t F = 0; F != Cls.FieldKinds.size(); ++F)
        scanSlot(To[Scan + 1 + F], Cls.FieldKinds[F], To, Top2);
      Scan += 1 + Cls.FieldKinds.size();
      continue;
    }
    assert((Header & 7) == TagArray && "bad header in to-space");
    ElemKind Kind = (ElemKind)(Header >> 3);
    int64_t Len = (int64_t)To[Scan + 1];
    if (Kind == ElemKind::Ref || Kind == ElemKind::Closure) {
      SlotKind SK = Kind == ElemKind::Ref ? SlotKind::Ref
                                          : SlotKind::Closure;
      for (int64_t E = 0; E != Len; ++E)
        scanSlot(To[Scan + 2 + E], SK, To, Top2);
    }
    Scan += 2 + (Kind == ElemKind::Void ? 0 : (size_t)Len);
  }

  Space = std::move(To);
  Top = Top2;
  LiveAfterGc = Top2;
  Stats.MaxLiveSlots = std::max(Stats.MaxLiveSlots, (uint64_t)Top2);

  // If even after collection the request does not fit, grow and retry
  // (collect() above already grew NewSize, so this is rare). Under a
  // quota, refusing to grow is the point: the allocation fails with a
  // null reference and the VM reports a structured heap-limit trap.
  if (Top + NeedSlots > Space.size()) {
    size_t Bigger = Space.size();
    while (Bigger < Top + NeedSlots + 16)
      Bigger *= 2;
    if (LimitSlots && Bigger > LimitSlots) {
      OverLimit = true;
      return;
    }
    Space.resize(Bigger, 0);
  }
}

void Heap::collectNow() { collect(0); }
