//===- vm/Bytecode.cpp ----------------------------------------------------===//

#include "vm/Bytecode.h"

#include "support/Casting.h"

#include <sstream>

using namespace virgil;

SlotKind virgil::slotKindOf(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Prim:
    return SlotKind::Scalar;
  case TypeKind::Class:
  case TypeKind::Array:
    return SlotKind::Ref;
  case TypeKind::Function:
    return SlotKind::Closure;
  case TypeKind::Tuple:
  case TypeKind::TypeParam:
    break;
  }
  // Normalized programs contain neither tuples nor type parameters.
  return SlotKind::Scalar;
}

static const char *bcOpName(BcOp Op) {
  switch (Op) {
  case BcOp::Nop:
    return "nop";
  case BcOp::ConstI:
    return "const";
  case BcOp::ConstStr:
    return "str";
  case BcOp::Mv:
    return "mv";
  case BcOp::Add:
    return "add";
  case BcOp::Sub:
    return "sub";
  case BcOp::Mul:
    return "mul";
  case BcOp::Div:
    return "div";
  case BcOp::Mod:
    return "mod";
  case BcOp::Neg:
    return "neg";
  case BcOp::Lt:
    return "lt";
  case BcOp::Le:
    return "le";
  case BcOp::Gt:
    return "gt";
  case BcOp::Ge:
    return "ge";
  case BcOp::Not:
    return "not";
  case BcOp::And:
    return "and";
  case BcOp::Or:
    return "or";
  case BcOp::EqBits:
    return "eq";
  case BcOp::NeBits:
    return "ne";
  case BcOp::NewObj:
    return "newobj";
  case BcOp::NewArr:
    return "newarr";
  case BcOp::LdF:
    return "ldf";
  case BcOp::StF:
    return "stf";
  case BcOp::NullChk:
    return "nullchk";
  case BcOp::LdE:
    return "lde";
  case BcOp::StE:
    return "ste";
  case BcOp::BoundsChk:
    return "boundschk";
  case BcOp::ArrLen:
    return "arrlen";
  case BcOp::LdG:
    return "ldg";
  case BcOp::StG:
    return "stg";
  case BcOp::CallF:
    return "callf";
  case BcOp::CallV:
    return "callv";
  case BcOp::CallInd:
    return "callind";
  case BcOp::CallB:
    return "callb";
  case BcOp::MkClo:
    return "mkclo";
  case BcOp::CastClass:
    return "castclass";
  case BcOp::QueryClass:
    return "queryclass";
  case BcOp::CastIntByte:
    return "castintbyte";
  case BcOp::CastFunc:
    return "castfunc";
  case BcOp::QueryFunc:
    return "queryfunc";
  case BcOp::CastNullOnly:
    return "castnullonly";
  case BcOp::QueryNonNull:
    return "querynonnull";
  case BcOp::Jmp:
    return "jmp";
  case BcOp::JmpIfFalse:
    return "jmpf";
  case BcOp::RetOp:
    return "ret";
  case BcOp::TrapOp:
    return "trap";
  }
  return "?";
}

std::string virgil::printBcFunction(const BcFunction &F) {
  std::ostringstream OS;
  OS << "bcfunc " << F.Name << " regs=" << F.NumRegs
     << " params=" << F.NumParams << " rets=" << F.NumRets << '\n';
  for (size_t I = 0; I != F.Code.size(); ++I) {
    const BcInstr &BI = F.Code[I];
    OS << "  " << I << ": " << bcOpName(BI.Op) << " A=" << BI.A
       << " B=" << BI.B << " C=" << BI.C << " Imm=" << BI.Imm << '\n';
  }
  return OS.str();
}
