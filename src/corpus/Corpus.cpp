//===- corpus/Corpus.cpp --------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cassert>

using namespace virgil;
using namespace virgil::corpus;

namespace {

// --- hello: trivial smoke test. ---
const char *HelloSrc = R"(
def main() -> int {
  System.puts("hello");
  System.ln();
  return 42;
}
)";

// --- classes_basics: paper (a1)-(b7): classes, object methods,
// unbound class methods, constructors as functions. ---
const char *ClassesBasicsSrc = R"(
class A {
  var f: int;
  def g: int;
  new(f, g) { }
  def m(a: byte) -> int { return f + g + int.!(a); }
}
class B extends A {
  new(f: int, g: int) super(f, g) { }
  def m(a: byte) -> int { return 1000 + int.!(a); }
}
def main() -> int {
  var a = A.new(0, 1);
  var m1 = a.m;            // byte -> int
  var m2 = A.m;            // (A, byte) -> int
  var x = a.m('\0');       // 1
  var y = m1(4);           // 5
  var z = m2(a, 6);        // 7
  var w = A.new;           // (int, int) -> A
  var a2 = w(10, 20);
  var b: A = B.new(1, 2);
  var v = b.m(3);          // 1003: virtual dispatch
  var u = m2(b, 1);        // 1001: unbound methods dispatch too
  return x + y + z + a2.m('\0') + v + u;   // 1+5+7+30+1003+1001
}
)";

// --- operators_first_class: paper (b8)-(b15). ---
const char *OperatorsSrc = R"(
class A { }
class B extends A { }
def apply2(f: (int, int) -> int, a: int, b: int) -> int {
  return f(a, b);
}
def main() -> int {
  var p = int.+;
  var m = int.-;
  var eqb = byte.==;
  var t = 0;
  if (eqb('a', 'a')) t = t + 1;
  var w = A.!=;
  var a = A.new();
  if (w(a, null)) t = t + 10;
  var c = A.!<B>;          // B -> A
  var q = A.?<B>;          // B -> bool
  var b = B.new();
  if (q(b)) t = t + 100;
  var up: A = c(b);
  if (up != null) t = t + 1000;
  return t + apply2(p, 20000, 3000) + m(10000, 4000);  // 1111+23000+6000
}
)";

// --- list_apply: paper (d1)-(d12'): generic list, inference. ---
const char *ListApplySrc = R"(
class List<T> {
  var head: T;
  var tail: List<T>;
  new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
  for (l = list; l != null; l = l.tail) f(l.head);
}
var sum = 0;
def addInt(i: int) { sum = sum + i; }
def addPair(p: (int, int)) { sum = sum + p.0 * p.1; }
def main() -> int {
  var a = List<int>.new(1, List<int>.new(2, null));
  var b = List.new((3, 4), List.new((5, 6), null));
  apply<int>(a, addInt);
  apply(b, addPair);
  var e = List<bool>.?(a);    // false (d13)
  var f = List<void>.?(a);    // false (d14)
  if (e) sum = sum + 1000000;
  if (f) sum = sum + 1000000;
  return sum;                  // 1+2+12+30 = 45
}
)";

// --- time_func: paper (e1)-(e5): functions + type params + tuples. ---
const char *TimeFuncSrc = R"(
def time<A, B>(func: A -> B, a: A) -> (B, int) {
  var start = System.ticks();
  var r = func(a);
  return (r, System.ticks() - start);
}
def isqrt(x: int) -> int {
  var r = 0;
  while ((r + 1) * (r + 1) <= x) r = r + 1;
  return r;
}
def main() -> int {
  var p = time(isqrt, 37);
  return p.0;                  // 6
}
)";

// --- interface_adapter: paper (f1)-(g9). ---
const char *InterfaceAdapterSrc = R"(
class Record {
  var id: int;
  new(id) { }
}
class DatastoreInterface(
  create: () -> Record,
  load: int -> Record,
  store: Record -> ()) {
}
class DatastoreImpl {
  var data: Array<Record>;
  new() { data = Array<Record>.new(16); }
  def create() -> Record { return Record.new(7); }
  def load(k: int) -> Record { return data[k]; }
  def store(r: Record) { data[r.id] = r; }
  def adapt() -> DatastoreInterface {
    return DatastoreInterface.new(create, load, store);
  }
}
def useStore(ds: DatastoreInterface) -> int {
  var r = ds.create();
  ds.store(r);
  var r2 = ds.load(7);
  if (r == r2) return 1;
  return 0;
}
def main() -> int {
  var impl = DatastoreImpl.new();
  return useStore(impl.adapt());
}
)";

// --- number_adt: paper (h1)-(h9). ---
const char *NumberAdtSrc = R"(
class NumberInterface<T>(
  add: (T, T) -> T,
  sub: (T, T) -> T,
  compare: (T, T) -> bool,
  one: T,
  zero: T) {
}
def IntInterface = NumberInterface.new(int.+, int.-, int.==, 1, 0);
def sumOnes<T>(n: NumberInterface<T>, count: int) -> T {
  var acc = n.zero;
  for (i = 0; i < count; i = i + 1) acc = n.add(acc, n.one);
  return acc;
}
def main() -> int {
  var r = sumOnes(IntInterface, 5);
  if (IntInterface.compare(r, 5)) return r;
  return 0 - 1;
}
)";

// --- hashmap_adt: paper (i1)-(i18): type params + function fields. ---
const char *HashMapAdtSrc = R"(
class HashMap<K, V> {
  def hash: K -> int;
  def equals: (K, K) -> bool;
  var keys: Array<K>;
  var vals: Array<V>;
  var used: Array<bool>;
  new(hash, equals) {
    keys = Array<K>.new(64);
    vals = Array<V>.new(64);
    used = Array<bool>.new(64);
  }
  def get(key: K) -> V {
    return vals[slot(key)];
  }
  def set(key: K, val: V) {
    var i = slot(key);
    used[i] = true;
    keys[i] = key;
    vals[i] = val;
  }
  private def slot(key: K) -> int {
    var h = hash(key) % 64;
    if (h < 0) h = h + 64;
    while (used[h] && !equals(keys[h], key)) h = (h + 1) % 64;
    return h;
  }
  def apply(f: (K, V) -> void) {
    for (i = 0; i < 64; i = i + 1) {
      if (used[i]) f(keys[i], vals[i]);
    }
  }
}
def idHash(x: int) -> int { return x * 31; }
def pairHash(p: (int, int)) -> int { return p.0 * 31 + p.1; }
def main() -> int {
  var m = HashMap<int, int>.new(idHash, int.==);
  m.set(3, 30);
  m.set(67, 670);
  var m2 = HashMap<(int, int), int>.new(pairHash, (int, int).==);
  m2.set((1, 2), 100);
  m2.set((2, 1), 200);
  // a.apply(b.set) copies a into b without a loop (paper §3.6).
  var copy = HashMap<int, int>.new(idHash, int.==);
  m.apply(copy.set);
  return m.get(3) + m.get(67) + m2.get((1, 2)) + m2.get((2, 1)) +
         copy.get(3) + copy.get(67);   // 30+670+100+200+30+670 = 1700
}
)";

// --- adhoc_print: paper (j1)-(j9): emulated ad hoc polymorphism. ---
const char *AdhocPrintSrc = R"(
def printInt(fmt: string, a: int) {
  System.puts(fmt);
  System.puti(a);
  System.ln();
}
def printBool(fmt: string, a: bool) {
  System.puts(fmt);
  if (a) System.puts("true");
  if (!a) System.puts("false");
  System.ln();
}
def printString(fmt: string, a: string) {
  System.puts(fmt);
  System.puts(a);
  System.ln();
}
def printByte(fmt: string, a: byte) {
  System.puts(fmt);
  System.putc(a);
  System.ln();
}
def print1<T>(fmt: string, a: T) {
  if (int.?(a)) printInt(fmt, int.!(a));
  if (bool.?(a)) printBool(fmt, bool.!(a));
  if (string.?(a)) printString(fmt, string.!(a));
  if (byte.?(a)) printByte(fmt, byte.!(a));
}
def main() -> int {
  print1("Result: ", 0);
  print1("Boolean: ", false);
  print1("Hello ", "world");
  print1("Char: ", 'x');
  return 0;
}
)";

// --- poly_matcher: paper (k1)-(m8): Box/Any + runtime type args. ---
const char *PolyMatcherSrc = R"(
class Any { }
class Box<T> extends Any {
  var val: T;
  new(val) { }
  def unbox() -> T { return val; }
}
class List<T> {
  var head: T;
  var tail: List<T>;
  new(head, tail) { }
}
class Matcher {
  var matches: List<Any>;
  def add<T>(f: T -> void) {
    matches = List<Any>.new(Box.new(f), matches);
  }
  def dispatch<T>(v: T) {
    for (l = matches; l != null; l = l.tail) {
      var f = l.head;
      if (Box<T -> void>.?(f)) {
        Box<T -> void>.!(f).unbox()(v);
        return;
      }
    }
    System.puts("no match");
    System.ln();
  }
}
def printInt(p: (string, int)) {
  System.puts(p.0);
  System.puti(p.1);
  System.ln();
}
def printBool(p: (string, bool)) {
  System.puts(p.0);
  if (p.1) System.puts("true");
  if (!p.1) System.puts("false");
  System.ln();
}
def printString(p: (string, string)) {
  System.puts(p.0);
  System.puts(p.1);
  System.ln();
}
def main() -> int {
  var m = Matcher.new();
  m.add(printInt);
  m.add(printBool);
  m.add(printString);
  m.dispatch(("Result: ", 1));
  m.dispatch(("Boolean: ", true));
  m.dispatch(("Hello ", "world"));
  m.dispatch(4);
  return 0;
}
)";

// --- variants_instr: paper (n1)-(n20): variant types from four
// features. ---
const char *VariantsInstrSrc = R"(
class Buffer {
  var data: Array<int>;
  var pos: int;
  new() { data = Array<int>.new(64); }
  def put(v: int) {
    data[pos] = v;
    pos = pos + 1;
  }
}
class Instr {
  def emit(buf: Buffer);
}
class InstrOf<T> extends Instr {
  var emitFunc: (Buffer, T) -> void;
  var val: T;
  new(emitFunc, val) { }
  def emit(buf: Buffer) {
    emitFunc(buf, val);
  }
}
class Asm {
  def add(buf: Buffer, ops: (int, int)) {
    buf.put(1);
    buf.put(ops.0);
    buf.put(ops.1);
  }
  def addi(buf: Buffer, ops: (int, int)) {
    buf.put(2);
    buf.put(ops.0);
    buf.put(ops.1);
  }
  def neg(buf: Buffer, r: int) {
    buf.put(3);
    buf.put(r);
  }
}
def main() -> int {
  var asm = Asm.new();
  var i: Instr = InstrOf.new(asm.add, (10, 11));
  var j: Instr = InstrOf.new(asm.addi, (10, 0 - 11));
  var k: Instr = InstrOf.new(asm.neg, 10);
  var buf = Buffer.new();
  i.emit(buf);
  j.emit(buf);
  k.emit(buf);
  var tagged = 0;
  if (InstrOf<(int, int)>.?(i)) tagged = tagged + 1;
  if (InstrOf<int>.?(i)) tagged = tagged + 10;
  if (InstrOf<int>.?(k)) tagged = tagged + 100;
  var sum = 0;
  for (x = 0; x < buf.pos; x = x + 1) sum = sum + buf.data[x];
  return tagged * 1000 + sum;  // 101 * 1000 + (1+10+11+2+10-11+3+10)=36
}
)";

// --- variance_apply: paper (o1)-(o7): contravariant function args
// substitute for class covariance. ---
const char *VarianceApplySrc = R"(
class Animal {
  def noise() -> int { return 1; }
}
class Bat extends Animal {
  def noise() -> int { return 2; }
}
class List<T> {
  var head: T;
  var tail: List<T>;
  new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
  for (l = list; l != null; l = l.tail) f(l.head);
}
var total = 0;
def g(a: Animal) { total = total + a.noise(); }
def main() -> int {
  var b: List<Bat> = List.new(Bat.new(), List.new(Bat.new(), null));
  apply(b, g);   // OK: Animal -> void <: Bat -> void
  return total;  // 4
}
)";

// --- tuple_callconv: paper (p1)-(p17): the calling-convention
// ambiguity between scalar and tuple parameter shapes. ---
const char *TupleCallconvSrc = R"(
def f(a: int, b: int) -> int { return a + b; }
def g(a: (int, int)) -> int { return a.0 * a.1; }
class P {
  def m(a: int, b: int) -> int { return a - b; }
}
class Q extends P {
  def m(a: (int, int)) -> int { return a.0 * 100 + a.1; }
}
def pick(z: bool) -> (int, int) -> int {
  return z ? f : g;
}
def main() -> int {
  var x = pick(true);
  var y = pick(false);
  var t = (3, 4);
  var r = x(3, 4) + x(t) + y(3, 4) + y(t);  // 7+7+12+12 = 38
  var p: P = Q.new();
  var s = p.m(5, 6);                        // 506: adapted override
  var u: P = P.new();
  return r * 1000 + s + u.m(5, 6);          // 38000+506-1
}
)";

// --- normalization_corners: paper (q1)-(q8): void params, void
// fields, arrays of void, arrays of tuples. ---
const char *NormalizationCornersSrc = R"(
class C {
  var v: void;
  var p: (int, bool);
  new() { p = (3, true); }
}
def fv(v: void) -> int { return 7; }
def main() -> int {
  var b = ("x", 15);
  var t: void;
  var r = fv(t);
  var c = C.new();
  c.v = t;
  var voids = Array<void>.new(4);
  var n = voids.length;
  voids[3];
  var pairs = Array<(int, int)>.new(3);
  pairs[0] = (1, 2);
  pairs[1] = (3, 4);
  pairs[2] = (pairs[0].0 + pairs[1].0, pairs[0].1 + pairs[1].1);
  var q = pairs[2];
  var sum = q.0 * 10 + q.1;   // 46
  if (c.p.1) sum = sum + c.p.0;   // +3
  return r * 100 + n * 10000 + sum + b.1;  // 700+40000+49+15
}
)";

// --- sort_pairs: §5 "define a list of tuples and sort them by the
// first element". ---
const char *SortPairsSrc = R"(
def sortPairs(a: Array<(int, int)>) {
  for (i = 1; i < a.length; i = i + 1) {
    var key = a[i];
    var j = i - 1;
    while (j >= 0 && a[j].0 > key.0) {
      a[j + 1] = a[j];
      j = j - 1;
    }
    a[j + 1] = key;
  }
}
def main() -> int {
  var a = Array<(int, int)>.new(5);
  a[0] = (5, 50);
  a[1] = (3, 30);
  a[2] = (4, 40);
  a[3] = (1, 10);
  a[4] = (2, 20);
  sortPairs(a);
  var acc = 0;
  for (i = 0; i < a.length; i = i + 1) {
    acc = acc * 10 + a[i].0;
    if (a[i].1 != a[i].0 * 10) return 0 - 1;
  }
  return acc;  // 12345
}
)";

// --- fib: plain compute kernel (recursion). ---
const char *FibSrc = R"(
def fib(n: int) -> int {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
def main() -> int {
  return fib(15);   // 610
}
)";

// --- printf_footnote5: the paper's footnote 5: print accepts the
// standard primitive types and also functions of type
// StringBuffer -> void; classes expose render methods and callers
// pass o.render. ---
const char *PrintfFootnote5Src = R"(
class StringBuffer {
  var data: Array<byte>;
  var n: int;
  new() { data = Array<byte>.new(64); }
  def putc(c: byte) {
    data[n] = c;
    n = n + 1;
  }
  def puts(s: string) {
    for (i = 0; i < s.length; i = i + 1) putc(s[i]);
  }
  def puti(v: int) {
    if (v == 0) {
      putc('0');
      return;
    }
    var digits = Array<byte>.new(12);
    var k = 0;
    var x = v;
    while (x > 0) {
      digits[k] = byte.!(x % 10 + 48);
      k = k + 1;
      x = x / 10;
    }
    while (k > 0) {
      k = k - 1;
      putc(digits[k]);
    }
  }
  def flush() {
    for (i = 0; i < n; i = i + 1) System.putc(data[i]);
    n = 0;
  }
}
def print<T>(a: T) {
  var buf = StringBuffer.new();
  if (int.?(a)) buf.puti(int.!(a));
  if (bool.?(a)) {
    if (bool.!(a)) buf.puts("true");
    if (!bool.!(a)) buf.puts("false");
  }
  if (string.?(a)) buf.puts(string.!(a));
  if ((StringBuffer -> void).?(a)) {
    (StringBuffer -> void).!(a)(buf);
  }
  buf.flush();
  System.ln();
}
class Point {
  var x: int;
  var y: int;
  new(x, y) { }
  def render(buf: StringBuffer) {
    buf.putc('(');
    buf.puti(x);
    buf.puts(", ");
    buf.puti(y);
    buf.putc(')');
  }
}
def main() -> int {
  print(42);
  print(false);
  print("hello");
  var p = Point.new(3, 4);
  print(p.render);
  return 0;
}
)";

// --- gc_churn: allocation stress for the semispace collector. ---
const char *GcChurnSrc = R"(
class Node {
  var value: int;
  var next: Node;
  new(value, next) { }
}
def buildList(n: int) -> Node {
  var head: Node = null;
  for (i = 0; i < n; i = i + 1) head = Node.new(i, head);
  return head;
}
def sumList(l: Node) -> int {
  var s = 0;
  for (n = l; n != null; n = n.next) s = s + n.value;
  return s;
}
def main() -> int {
  var keep = buildList(100);
  var acc = 0;
  for (round = 0; round < 50; round = round + 1) {
    var garbage = buildList(200);
    acc = (acc + sumList(garbage)) % 1000000;
  }
  return acc + sumList(keep) % 1000;  // deterministic
}
)";

const std::vector<CorpusProgram> &programsImpl() {
  static const std::vector<CorpusProgram> Programs = {
      {"hello", HelloSrc, "hello\n", 42},
      {"classes_basics", ClassesBasicsSrc, "", 1 + 5 + 7 + 30 + 1003 + 1001},
      {"operators_first_class", OperatorsSrc, "", 1111 + 23000 + 6000},
      {"list_apply", ListApplySrc, "", 45},
      {"time_func", TimeFuncSrc, "", 6},
      {"interface_adapter", InterfaceAdapterSrc, "", 1},
      {"number_adt", NumberAdtSrc, "", 5},
      {"hashmap_adt", HashMapAdtSrc, "", 1700},
      {"adhoc_print", AdhocPrintSrc,
       "Result: 0\nBoolean: false\nHello world\nChar: x\n", 0},
      {"poly_matcher", PolyMatcherSrc,
       "Result: 1\nBoolean: true\nHello world\nno match\n", 0},
      {"variants_instr", VariantsInstrSrc, "", 101 * 1000 + 36},
      {"variance_apply", VarianceApplySrc, "", 4},
      {"tuple_callconv", TupleCallconvSrc, "", 38000 + 506 - 1},
      {"normalization_corners", NormalizationCornersSrc, "",
       700 + 40000 + 49 + 15},
      {"sort_pairs", SortPairsSrc, "", 12345},
      {"fib", FibSrc, "", 610},
      {"printf_footnote5", PrintfFootnote5Src,
       "42\nfalse\nhello\n(3, 4)\n", 0},
      {"gc_churn", GcChurnSrc, "", (50 * 19900) % 1000000 + 4950 % 1000},
  };
  return Programs;
}

} // namespace

const std::vector<CorpusProgram> &virgil::corpus::allPrograms() {
  return programsImpl();
}

const CorpusProgram &virgil::corpus::program(const std::string &Name) {
  for (const CorpusProgram &P : programsImpl())
    if (Name == P.Name)
      return P;
  assert(false && "unknown corpus program");
  static CorpusProgram Dummy{"", "", "", 0};
  return Dummy;
}
