//===- corpus/Generators.h - Parametric workload generators -----*- C++ -*-===//
///
/// \file
/// Generates Virgil-core source for the benchmark sweeps: each
/// generator is parameterized the way the corresponding experiment in
/// EXPERIMENTS.md varies its workload (tuple width, handler count,
/// instantiation count, program size).
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_CORPUS_GENERATORS_H
#define VIRGIL_CORPUS_GENERATORS_H

#include <cstdint>
#include <string>

namespace virgil {
namespace corpus {

/// E1: indirect calls through `(int, int) -> int` values where half
/// the targets take scalars and half take a tuple — every call needs
/// the §4.1 dynamic check in the interpreter and none in the VM.
std::string genCallConvWorkload(int Calls);

/// E2: creates, passes, and consumes tuples of \p Width through
/// non-inlinable call chains, \p Iters times.
std::string genTupleWorkload(int Width, int Iters);

/// E3: a generic pipeline (id/pair/select over T) instantiated at one
/// type, executed \p Iters times — measures type-argument passing.
std::string genPolyCallWorkload(int Iters);

/// E4: the print1 cast-chain with \p Cases type cases, dispatched
/// \p Iters times; plus a direct-call control.
std::string genAdhocWorkload(int Cases, int Iters, bool Direct);

/// E5: \p Generics generic functions each instantiated at \p Insts
/// distinct types (drives code-expansion measurements). \p Reps wraps
/// main's instantiation calls in a loop so runtime sweeps can size the
/// executed-instruction count independently of the static expansion.
std::string genExpansionWorkload(int Generics, int Insts, int Reps = 1);

/// E16: \p Generics generic list traversers (no allocation inside the
/// generic code) each instantiated at \p Insts distinct *class* types.
/// Every ref instantiation of one traverser normalizes to the same
/// body, so specialization sharing collapses the Generics x Insts
/// specializations back to Generics — the best case the sharing pass
/// exists for, and the workload behind the code_expansion_ratio gate.
/// \p Reps wraps main's traversal calls in a loop for runtime sweeps
/// (the hot loop allocates nothing, so throughput isolates call/body
/// effects of sharing from GC noise).
std::string genShareWorkload(int Generics, int Insts, int Reps = 1);

/// E6: a polymorphic matcher with \p Handlers handlers dispatched
/// \p Iters times.
std::string genMatcherWorkload(int Handlers, int Iters);

/// E7: list traversal through a contravariant function argument vs a
/// monomorphic hand-written loop.
std::string genVarianceWorkload(int Len, int Iters, bool Functional);

/// E8: GC churn with \p Rounds rounds of garbage and a persistent set.
std::string genGcWorkload(int Rounds, int LiveNodes);

/// E17: allocation churn built to be scalar-replaceable: each of
/// \p Rounds x \p Width inner steps allocates a short-lived object,
/// calls a method on it, and creates + calls a bound-method closure
/// over another local object. None of the allocations escape, so with
/// escape analysis on the VM's nursery only sees the persistent
/// \p LiveNodes list; with it off every step allocates. The on/off
/// nursery-byte ratio is the escape_nursery_reduction gate's metric.
std::string genEscapeChurn(int Rounds, int Width, int LiveNodes);

/// E19: field- and branch-heavy kernels built so the SSA mid-tier
/// wins where the dense passes cannot. Each of \p Units kernels
/// re-reads the same object fields on both arms of a diamond *and
/// after the join* — redundant FieldGet/NullCheck chains that only
/// dominance-scoped load elimination forwards — and drives a
/// classify<T> type-query chain that SCCP folds to a straight line
/// after specialization (the paper's §3.3 claim). \p Rounds is the
/// hot-loop trip count in main, so the retired-instruction ratio
/// ssa-off/ssa-on is measured on exactly the code the sparse passes
/// rewrote — the ssa_instr_reduction gate's metric.
std::string genSsaWorkload(int Units, int Rounds);

/// E9: a well-formed program of roughly \p Classes classes with
/// methods and call chains (compiler throughput).
std::string genThroughputProgram(int Classes);

/// Feature toggles for the random-program grammar. Every language
/// feature the fuzzer can emit is gated by one flag so coverage gaps
/// are explicit: turning a flag off removes that construct from every
/// generated program, and the fuzz CLI records the active config next
/// to each reproducer.
struct GenConfig {
  /// Virtual dispatch through a base-typed Cell/WeightedCell pair.
  bool VirtualDispatch = true;
  /// Nested tuples stored in `Array<(int, int)>` elements and in
  /// object fields (`((int, int), int)`), read back via projections.
  bool NestedTuples = true;
  /// First-class functions: pointers to top-level functions, unbound
  /// class methods (`Cell.sum`), constructors (`Cell.new`), and a
  /// higher-order combinator applied to them.
  bool HigherOrder = true;
  /// Generic helpers instantiated at type-parameter nesting depth >= 3
  /// (`Box<Box<Box<int>>>`, `id<((int, int), int)>`).
  bool DeepGenerics = true;
  /// `==`, `!=`, and `?` used as first-class operator values
  /// (`int.==`, `(int, int).!=`, `int.?<int>`).
  bool OperatorValues = true;
  /// §3-style ad-hoc polymorphism: a cast-chain `classify<T>` probed
  /// with every pool type.
  bool CastChains = true;
  /// Bounded `for` loops with data-dependent bodies.
  bool Loops = true;
  /// Upper bound on random helper functions (min 2).
  int MaxFuncs = 5;
  /// Maximum random expression nesting depth.
  int MaxExprDepth = 3;

  /// Compact "feature1,feature2,..." list of the enabled toggles (for
  /// reproducer metadata).
  std::string summary() const;
};

/// Differential fuzzing: a deterministic, type-correct random program
/// (ints, bools, nested tuples, function calls, bounded loops, guarded
/// division — no intentional traps). The same seed and config always
/// yield the same program; all four execution strategies must agree on
/// its result.
std::string genRandomProgram(uint32_t Seed, const GenConfig &Config);
std::string genRandomProgram(uint32_t Seed);

} // namespace corpus
} // namespace virgil

#endif // VIRGIL_CORPUS_GENERATORS_H
