//===- corpus/Generators.cpp ----------------------------------------------===//

#include "corpus/Generators.h"

#include <sstream>
#include <vector>

using namespace virgil;

std::string corpus::genCallConvWorkload(int Calls) {
  std::ostringstream OS;
  OS << R"(
def f(a: int, b: int) -> int { return a + b; }
def g(a: (int, int)) -> int { return a.0 + a.1 + 1; }
def main() -> int {
  var fs = Array<(int, int) -> int>.new(2);
  fs[0] = f;
  fs[1] = g;
  var acc = 0;
)";
  OS << "  for (i = 0; i < " << Calls << "; i = i + 1) {\n";
  OS << "    var h = fs[i % 2];\n";
  OS << "    acc = (acc + h(i, 1)) % 1000000;\n";
  OS << "  }\n";
  OS << "  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genTupleWorkload(int Width, int Iters) {
  std::ostringstream OS;
  // Tuple type (int, int, ..., int) of Width elements (Width >= 2 for a
  // real tuple; Width == 1 degenerates to int, which is the control).
  auto tupleTy = [&]() {
    std::ostringstream T;
    T << '(';
    for (int I = 0; I != Width; ++I) {
      if (I)
        T << ", ";
      T << "int";
    }
    T << ')';
    return T.str();
  };
  std::string Ty = Width == 1 ? "int" : tupleTy();
  OS << "def make(seed: int) -> " << Ty << " {\n  return ";
  if (Width == 1) {
    OS << "seed";
  } else {
    OS << '(';
    for (int I = 0; I != Width; ++I) {
      if (I)
        OS << ", ";
      OS << "seed + " << I;
    }
    OS << ')';
  }
  OS << ";\n}\n";
  OS << "def consume(t: " << Ty << ") -> int {\n  return ";
  if (Width == 1) {
    OS << "t";
  } else {
    for (int I = 0; I != Width; ++I) {
      if (I)
        OS << " + ";
      OS << "t." << I;
    }
  }
  OS << ";\n}\n";
  // Pass through an extra hop so the tuple crosses two call
  // boundaries per iteration.
  OS << "def hop(t: " << Ty << ") -> " << Ty << " { return t; }\n";
  OS << "def main() -> int {\n  var acc = 0;\n";
  OS << "  for (i = 0; i < " << Iters << "; i = i + 1) {\n";
  OS << "    acc = (acc + consume(hop(make(i)))) % 1000000;\n";
  OS << "  }\n  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genPolyCallWorkload(int Iters) {
  std::ostringstream OS;
  OS << R"(
def id<T>(x: T) -> T { return x; }
def pair<A, B>(a: A, b: B) -> (A, B) { return (a, b); }
def select<A, B>(p: (A, B), first: bool) -> A {
  if (first) return p.0;
  return p.0;
}
def wrap<T>(x: T) -> T {
  // The call below passes the polymorphic type argument (T, T): the
  // interpreter must substitute it at runtime on every call (§4.3).
  return id((x, x)).0;
}
def main() -> int {
  var acc = 0;
)";
  OS << "  for (i = 0; i < " << Iters << "; i = i + 1) {\n";
  OS << "    var p = pair(id(i), id((i, i + 1)));\n";
  OS << "    acc = (acc + select(p, true) + id(p.1).0 + wrap(i)) "
     << "% 1000000;\n";
  OS << "  }\n  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genAdhocWorkload(int Cases, int Iters, bool Direct) {
  std::ostringstream OS;
  // Case types: int, bool, byte, then tuples of increasing width.
  std::vector<std::string> CaseTys = {"int", "bool", "byte"};
  for (int W = 2; (int)CaseTys.size() < Cases; ++W) {
    std::ostringstream T;
    T << "(int";
    for (int I = 1; I != W; ++I)
      T << ", int";
    T << ')';
    CaseTys.push_back(T.str());
  }
  CaseTys.resize(Cases);
  OS << "var acc = 0;\n";
  for (int I = 0; I != Cases; ++I)
    OS << "def handle" << I << "(a: " << CaseTys[I]
       << ") { acc = (acc + " << (I + 1) << ") % 1000000; }\n";
  OS << "def print1<T>(a: T) {\n";
  for (int I = 0; I != Cases; ++I)
    OS << "  if (" << CaseTys[I] << ".?(a)) handle" << I << "("
       << CaseTys[I] << ".!(a));\n";
  OS << "}\n";
  OS << "def main() -> int {\n";
  OS << "  for (i = 0; i < " << Iters << "; i = i + 1) {\n";
  if (Direct)
    OS << "    handle0(i);\n";
  else
    OS << "    print1(i);\n";
  OS << "  }\n  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genExpansionWorkload(int Generics, int Insts,
                                         int Reps) {
  std::ostringstream OS;
  OS << "class List<T> {\n  var head: T;\n  var tail: List<T>;\n"
     << "  new(head, tail) { }\n}\n";
  for (int G = 0; G != Generics; ++G) {
    OS << "def gen" << G << "<T>(x: T, n: int) -> int {\n"
       << "  var l = List.new(x, null);\n"
       << "  var c = 0;\n"
       << "  for (k = l; k != null; k = k.tail) c = c + n;\n"
       << "  return c;\n}\n";
  }
  OS << "def main() -> int {\n  var acc = 0;\n";
  if (Reps > 1)
    OS << "  for (rep = 0; rep < " << Reps << "; rep = rep + 1) {\n";
  for (int G = 0; G != Generics; ++G) {
    for (int I = 0; I != Insts; ++I) {
      // Distinct instantiation types: nested tuples of ints.
      std::string Ty = "int";
      std::string Val = "1";
      for (int D = 0; D != I % 4; ++D) {
        Ty = "(" + Ty + ", int)";
        Val = "(" + Val + ", 2)";
      }
      switch (I % 3) {
      case 0:
        break;
      case 1:
        Ty = "Array<" + Ty + ">";
        Val = "Array<" +
              ((I % 4) == 0 ? std::string("int")
                            : [&] {
                                std::string T2 = "int";
                                for (int D = 0; D != I % 4; ++D)
                                  T2 = "(" + T2 + ", int)";
                                return T2;
                              }()) +
              ">.new(1)";
        break;
      case 2:
        Ty = "bool";
        Val = "true";
        break;
      }
      if (I % 3 == 2 && I > 2)
        continue; // bool repeats; skip duplicate instantiations.
      OS << "  acc = acc + gen" << G << "<" << Ty << ">(" << Val
         << ", 1);\n";
    }
  }
  if (Reps > 1)
    OS << "  }\n";
  OS << "  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genShareWorkload(int Generics, int Insts, int Reps) {
  std::ostringstream OS;
  OS << "class List<T> {\n  var head: T;\n  var tail: List<T>;\n"
     << "  new(head, tail) { }\n}\n";
  // Distinct instantiation types are distinct *classes*: every ref
  // instantiation of a traverser below gets the same normalized body.
  for (int I = 0; I != Insts; ++I)
    OS << "class C" << I << " { }\n";
  for (int G = 0; G != Generics; ++G) {
    // The per-G constant keeps the Generics traversers distinct from
    // each other while every instantiation of one stays identical.
    OS << "def walk" << G << "<T>(l: List<T>) -> int {\n"
       << "  var c = 0;\n"
       << "  for (k = l; k != null; k = k.tail) c = c + " << (G + 1)
       << ";\n"
       << "  return c;\n}\n";
  }
  OS << "def main() -> int {\n  var acc = 0;\n";
  // Allocation stays in main (monomorphic context): the generic
  // bodies only traverse, so sharing them is observationally safe and
  // the Reps loop below allocates nothing.
  for (int I = 0; I != Insts; ++I)
    OS << "  var l" << I << " = List.new(C" << I << ".new(), List.new(C"
       << I << ".new(), null));\n";
  if (Reps > 1)
    OS << "  for (rep = 0; rep < " << Reps << "; rep = rep + 1) {\n";
  for (int G = 0; G != Generics; ++G)
    for (int I = 0; I != Insts; ++I)
      OS << "  acc = acc + walk" << G << "<C" << I << ">(l" << I
         << ");\n";
  if (Reps > 1)
    OS << "  }\n";
  OS << "  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genMatcherWorkload(int Handlers, int Iters) {
  std::ostringstream OS;
  OS << R"(
class Any { }
class Box<T> extends Any {
  var val: T;
  new(val) { }
  def unbox() -> T { return val; }
}
class List<T> {
  var head: T;
  var tail: List<T>;
  new(head, tail) { }
}
class Matcher {
  var matches: List<Any>;
  def add<T>(f: T -> void) {
    matches = List<Any>.new(Box.new(f), matches);
  }
  def dispatch<T>(v: T) {
    for (l = matches; l != null; l = l.tail) {
      var f = l.head;
      if (Box<T -> void>.?(f)) {
        Box<T -> void>.!(f).unbox()(v);
        return;
      }
    }
  }
}
var acc = 0;
)";
  for (int H = 0; H != Handlers; ++H) {
    // Handler H accepts a tuple of width H+2 (all distinct types).
    OS << "def handler" << H << "(v: (int";
    for (int W = 0; W != H + 1; ++W)
      OS << ", int";
    OS << ")) { acc = (acc + " << (H + 1) << ") % 1000000; }\n";
  }
  OS << "def main() -> int {\n  var m = Matcher.new();\n";
  for (int H = 0; H != Handlers; ++H)
    OS << "  m.add(handler" << H << ");\n";
  OS << "  for (i = 0; i < " << Iters << "; i = i + 1) {\n";
  // Dispatch the type matched by the LAST-added handler first in the
  // list, and also the one deepest in the list.
  OS << "    m.dispatch((i, 1";
  for (int W = 0; W != Handlers - 1; ++W)
    OS << ", 2";
  OS << "));\n";
  OS << "    m.dispatch((i, 1));\n";
  OS << "  }\n  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genVarianceWorkload(int Len, int Iters,
                                        bool Functional) {
  std::ostringstream OS;
  OS << R"(
class Animal {
  def noise() -> int { return 1; }
}
class Bat extends Animal {
  def noise() -> int { return 2; }
}
class List<T> {
  var head: T;
  var tail: List<T>;
  new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
  for (l = list; l != null; l = l.tail) f(l.head);
}
var total = 0;
def g(a: Animal) { total = (total + a.noise()) % 1000000; }
def main() -> int {
  var b: List<Bat> = null;
)";
  OS << "  for (i = 0; i < " << Len << "; i = i + 1) "
     << "b = List.new(Bat.new(), b);\n";
  OS << "  for (i = 0; i < " << Iters << "; i = i + 1) {\n";
  if (Functional) {
    OS << "    apply(b, g);\n";
  } else {
    OS << "    for (l = b; l != null; l = l.tail) "
       << "total = (total + l.head.noise()) % 1000000;\n";
  }
  OS << "  }\n  return total;\n}\n";
  return OS.str();
}

std::string corpus::genGcWorkload(int Rounds, int LiveNodes) {
  std::ostringstream OS;
  OS << R"(
class Node {
  var value: int;
  var next: Node;
  new(value, next) { }
}
def buildList(n: int) -> Node {
  var head: Node = null;
  for (i = 0; i < n; i = i + 1) head = Node.new(i, head);
  return head;
}
def sumList(l: Node) -> int {
  var s = 0;
  for (n = l; n != null; n = n.next) s = (s + n.value) % 1000000;
  return s;
}
def main() -> int {
)";
  OS << "  var keep = buildList(" << LiveNodes << ");\n";
  OS << "  var acc = 0;\n";
  OS << "  for (round = 0; round < " << Rounds << "; round = round + 1) {\n";
  OS << "    var garbage = buildList(512);\n";
  OS << "    acc = (acc + sumList(garbage)) % 1000000;\n";
  OS << "  }\n";
  OS << "  return (acc + sumList(keep)) % 1000000;\n}\n";
  return OS.str();
}

std::string corpus::genEscapeChurn(int Rounds, int Width, int LiveNodes) {
  std::ostringstream OS;
  OS << R"(
class Node {
  var value: int;
  var next: Node;
  new(value, next) { }
}
class Pt {
  var x: int;
  var y: int;
  new(x, y) { }
  def dist2() -> int { return x * x + y * y; }
}
def buildList(n: int) -> Node {
  var head: Node = null;
  for (i = 0; i < n; i = i + 1) head = Node.new(i, head);
  return head;
}
def sumList(l: Node) -> int {
  var s = 0;
  for (n = l; n != null; n = n.next) s = (s + n.value) % 1000000;
  return s;
}
def main() -> int {
)";
  OS << "  var keep = buildList(" << LiveNodes << ");\n";
  OS << "  var acc = 0;\n";
  OS << "  for (round = 0; round < " << Rounds << "; round = round + 1) {\n";
  OS << "    for (i = 0; i < " << Width << "; i = i + 1) {\n";
  // Object churn: a fresh Pt per step, consumed through a virtual
  // method (exact-receiver devirt -> inline -> scalarize).
  OS << "      var p = Pt.new(i, round);\n";
  OS << "      acc = (acc + p.dist2()) % 1000000;\n";
  // Closure churn: a bound-method closure over another local object,
  // called once (closure flattening feeds the object's scalarization).
  OS << "      var q = Pt.new(i + 1, round + 1);\n";
  OS << "      var g = q.dist2;\n";
  OS << "      acc = (acc + g()) % 1000000;\n";
  OS << "    }\n";
  OS << "  }\n";
  OS << "  return (acc + sumList(keep)) % 1000000;\n}\n";
  return OS.str();
}

std::string corpus::genSsaWorkload(int Units, int Rounds) {
  std::ostringstream OS;
  // The hot path is built from the two redundancies the SSA mid-tier
  // exists for. weigh() re-reads every field after the diamond join —
  // a redundant FieldGet/NullCheck chain the dense local passes cannot
  // forward but dominance-scoped load elimination can. classify<T> is
  // the paper's §3.3 chain: after specialization every type query is
  // decided statically and SCCP folds the whole ladder to a straight
  // line.
  OS << R"(
class Cell {
  var a: int;
  var b: int;
  var c: int;
  new(a, b, c) { }
}
class Grid {
  var east: Cell;
  var west: Cell;
  new(east, west) { }
  def weigh(bias: bool) -> int {
    var t = 0;
    if (bias) t = east.a + east.b + east.c;
    else t = west.a + west.b + west.c;
    t = t + east.a + east.b + east.c;
    t = t + west.a + west.b + west.c;
    return t;
  }
}
def classify<T>(x: T) -> int {
  if (int.?(x)) return int.!(x);
  if (bool.?(x)) { if (bool.!(x)) return 1; else return 0; }
  if (byte.?(x)) return 100;
  return -1;
}
)";
  for (int U = 0; U != Units; ++U) {
    OS << "def blend" << U << "(g: Grid, n: int) -> int {\n";
    OS << "  var acc = 0;\n";
    OS << "  for (i = 0; i < n; i = i + 1) {\n";
    OS << "    var e = g.east;\n";
    OS << "    acc = (acc + e.a * " << (3 + 2 * (U % 5)) << " + e.b * "
       << (5 + 2 * (U % 3)) << " + e.c * 7) % 1000003;\n";
    OS << "    acc = (acc + g.east.a + g.east.b) % 1000003;\n";
    OS << "    acc = (acc + g.weigh(i % 2 == 0)) % 1000003;\n";
    OS << "    acc = (acc + classify(i) + classify(i % 2 == 0) + "
          "classify('x')) % 1000003;\n";
    OS << "  }\n";
    OS << "  return acc;\n}\n";
  }
  OS << "def main() -> int {\n";
  OS << "  var g = Grid.new(Cell.new(1, 2, 3), Cell.new(4, 5, 6));\n";
  OS << "  var acc = 0;\n";
  for (int U = 0; U != Units; ++U)
    OS << "  acc = (acc + blend" << U << "(g, " << Rounds
       << ")) % 1000003;\n";
  OS << "  return acc;\n}\n";
  return OS.str();
}

std::string corpus::genThroughputProgram(int Classes) {
  std::ostringstream OS;
  OS << "class Base {\n  def cost() -> int { return 1; }\n}\n";
  for (int C = 0; C != Classes; ++C) {
    OS << "class C" << C << " extends Base {\n";
    OS << "  var x: int;\n  var y: (int, int);\n";
    OS << "  new(x: int) super() { y = (x, x + 1); }\n";
    OS << "  def cost() -> int { return x + y.0 + y.1 + " << C << "; }\n";
    OS << "  def helper(k: int) -> int {\n";
    OS << "    var t = (k, k * 2, k * 3);\n";
    OS << "    if (t.0 > t.1) return t.2;\n";
    OS << "    return t.0 + t.1;\n  }\n";
    OS << "}\n";
  }
  OS << "def main() -> int {\n  var acc = 0;\n";
  int Use = Classes < 8 ? Classes : 8;
  for (int C = 0; C != Use; ++C) {
    OS << "  var o" << C << ": Base = C" << C << ".new(" << C << ");\n";
    OS << "  acc = acc + o" << C << ".cost();\n";
  }
  OS << "  return acc;\n}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Random differential-fuzzing programs
//===----------------------------------------------------------------------===//

std::string corpus::GenConfig::summary() const {
  std::string S;
  auto add = [&](bool On, const char *Name) {
    if (!On)
      return;
    if (!S.empty())
      S += ',';
    S += Name;
  };
  add(VirtualDispatch, "virtual-dispatch");
  add(NestedTuples, "nested-tuples");
  add(HigherOrder, "higher-order");
  add(DeepGenerics, "deep-generics");
  add(OperatorValues, "operator-values");
  add(CastChains, "cast-chains");
  add(Loops, "loops");
  return S.empty() ? "none" : S;
}

namespace {

using corpus::GenConfig;

/// Deterministic generator state for random programs.
class ProgramGen {
public:
  ProgramGen(uint32_t Seed, const GenConfig &Config)
      : Config(Config), State(Seed * 2654435761u + 1) {}

  std::string run() {
    genPrelude();
    int MaxFuncs = Config.MaxFuncs < 2 ? 2 : Config.MaxFuncs;
    int NumFuncs = 2 + range(MaxFuncs - 1);
    for (int F = 0; F != NumFuncs; ++F)
      genFunction(F);
    genMain(NumFuncs);
    return OS.str();
  }

private:
  /// Fixed helper declarations; each config toggle contributes its own
  /// block, so a disabled feature is absent from the whole program.
  void genPrelude() {
    if (Config.VirtualDispatch) {
      // A base/override pair used behind the base type.
      OS << "class Cell {\n"
         << "  var a: int;\n"
         << "  var b: (int, int);\n"
         << "  new(a, b) { }\n"
         << "  def sum() -> int { return a + b.0 + b.1; }\n"
         << "}\n"
         << "class WeightedCell extends Cell {\n"
         << "  new(a: int, b: (int, int)) super(a, b) { }\n"
         << "  def sum() -> int { return a * 2 + b.0 - b.1; }\n"
         << "}\n"
         << "def cellSum(c: Cell) -> int { return c.sum(); }\n";
    }
    if (Config.NestedTuples) {
      // Tuples nested in an array and in fields, read back through
      // projections (normalizer stress: scalarized fields + arrays of
      // flattened tuples).
      OS << "class Grid {\n"
         << "  var cells: Array<(int, int)>;\n"
         << "  var corner: ((int, int), int);\n"
         << "  new(n: int, corner) {\n"
         << "    cells = Array<(int, int)>.new(n);\n";
      // The Loops toggle governs every loop in the program, prelude
      // included, so `--gen-off loops` output is loop-free.
      if (Config.Loops)
        OS << "    for (i = 0; i < n; i = i + 1) cells[i] = (i * 3, i - 1);\n";
      else
        OS << "    if (n > 0) cells[0] = (3, 7);\n";
      OS << "  }\n"
         << "  def at(i: int) -> (int, int) {\n"
         << "    return cells[((i % cells.length) + cells.length) "
            "% cells.length];\n"
         << "  }\n"
         << "  def total() -> int {\n"
         << "    var s = 0;\n";
      if (Config.Loops)
        OS << "    for (i = 0; i < cells.length; i = i + 1) "
              "s = s + cells[i].0 + cells[i].1;\n";
      else
        OS << "    if (cells.length > 0) s = cells[0].0 + cells[0].1;\n";
      OS << "    return s + corner.0.0 + corner.0.1 + corner.1;\n"
         << "  }\n"
         << "}\n";
    }
    if (Config.HigherOrder) {
      OS << "def step(a: int) -> int { return a * 2 - 3; }\n"
         << "def hof(f: int -> int, x: int) -> int { return f(f(x)); }\n";
    }
    if (Config.DeepGenerics) {
      // Type-parameter nesting depth 3 on a class and on explicit
      // function type arguments.
      OS << "def id<T>(x: T) -> T { return x; }\n"
         << "class Box<T> {\n"
         << "  var v: T;\n"
         << "  new(v) { }\n"
         << "  def get() -> T { return v; }\n"
         << "}\n"
         << "def deep3(k: int) -> int {\n"
         << "  var b = Box<Box<Box<int>>>.new(Box.new(Box.new(k)));\n"
         << "  var t = id<((int, int), int)>(((k, k + 1), k + 2));\n"
         << "  return id<Box<Box<Box<int>>>>(b).v.get().v "
            "+ t.0.0 + t.0.1 + t.1;\n"
         << "}\n";
    }
    if (Config.OperatorValues) {
      // ==, !=, ? as first-class values (§2.2's universal operators).
      OS << "def opsProbe(a: int, b: int) -> int {\n"
         << "  var eq = int.==;\n"
         << "  var ne = (int, int).!=;\n"
         << "  var isInt = int.?<int>;\n"
         << "  var r = 0;\n"
         << "  if (eq(a, b)) r = r + 1;\n"
         << "  if (ne((a, b), (b, a))) r = r + 2;\n"
         << "  if (isInt(a)) r = r + 4;\n"
         << "  return r;\n"
         << "}\n";
    }
    if (Config.CastChains) {
      // §3.3 ad-hoc polymorphism: a query/cast chain over the pool
      // types, fully foldable after monomorphization.
      OS << "def classify<T>(x: T) -> int {\n"
         << "  if (int.?(x)) return int.!(x) % 1000;\n"
         << "  if ((int, int).?(x)) {\n"
         << "    var t = (int, int).!(x);\n"
         << "    return t.0 * 3 - t.1;\n"
         << "  }\n"
         << "  if (((int, int), int).?(x)) {\n"
         << "    var u = ((int, int), int).!(x);\n"
         << "    return u.0.0 + u.0.1 * 2 + u.1;\n"
         << "  }\n"
         << "  if (bool.?(x)) {\n"
         << "    if (bool.!(x)) return 17;\n"
         << "    return 19;\n"
         << "  }\n"
         << "  return 23;\n"
         << "}\n";
    }
  }
  // xorshift-ish LCG; determinism matters, quality does not.
  uint32_t next() {
    State = State * 1664525u + 1013904223u;
    return State >> 8;
  }
  int range(int N) { return (int)(next() % (uint32_t)N); }

  /// The value-type pool: 0 = int, 1 = (int, int), 2 = ((int, int), int).
  static const char *typeName(int T) {
    switch (T) {
    case 0:
      return "int";
    case 1:
      return "(int, int)";
    default:
      return "((int, int), int)";
    }
  }

  /// An int-typed expression of bounded depth over `Vars` (names of
  /// in-scope int variables) and previously generated functions. The
  /// feature-specific cases are only present when their toggle is on.
  std::string intExpr(int Depth) {
    if (Depth <= 0 || range(4) == 0) {
      // Leaf: literal or variable.
      if (!IntVars.empty() && range(2) == 0)
        return IntVars[range((int)IntVars.size())];
      return std::to_string(range(200) - 100);
    }
    // Core arithmetic cases are always available; each enabled feature
    // appends its own cases so selection stays deterministic per
    // (seed, config).
    int NumCases = 6;
    int VirtCase = Config.VirtualDispatch ? NumCases++ : -1;
    int GridCase = Config.NestedTuples ? NumCases++ : -1;
    int HofCase = Config.HigherOrder ? NumCases++ : -1;
    int DeepCase = Config.DeepGenerics ? NumCases++ : -1;
    int OpsCase = Config.OperatorValues ? NumCases++ : -1;
    int CastCase = Config.CastChains ? NumCases++ : -1;
    int Case = range(NumCases);
    if (Case == VirtCase) {
      // Objects + virtual dispatch: allocate a Cell or WeightedCell
      // behind the base type and call the virtual sum().
      const char *Cls = range(2) ? "Cell" : "WeightedCell";
      return std::string("(cellSum(") + Cls + ".new(" +
             intExpr(Depth - 1) + ", (" + intExpr(Depth - 1) + ", " +
             intExpr(Depth - 1) + "))))";
    }
    if (Case == GridCase) {
      // A fresh grid: sum it whole or probe one projected element.
      std::string G = "Grid.new(" + std::to_string(2 + range(3)) +
                      ", ((" + intExpr(Depth - 1) + ", " +
                      intExpr(Depth - 1) + "), " + intExpr(Depth - 1) +
                      "))";
      if (range(2))
        return "(" + G + ".total())";
      int Idx = range(2);
      return "(" + G + ".at(" + intExpr(Depth - 1) + ")." +
             std::to_string(Idx) + ")";
    }
    if (Case == HofCase) {
      // Higher-order: pass a function value (named function, unbound
      // method, or constructor) through the combinator.
      if (Config.VirtualDispatch && range(3) == 0)
        return "(hof(step, cellSum(Cell.new(" + intExpr(Depth - 1) +
               ", (" + intExpr(Depth - 1) + ", 2)))))";
      return "(hof(step, " + intExpr(Depth - 1) + "))";
    }
    if (Case == DeepCase)
      return "(deep3(" + intExpr(Depth - 1) + "))";
    if (Case == OpsCase)
      return "(opsProbe(" + intExpr(Depth - 1) + ", " +
             intExpr(Depth - 1) + "))";
    if (Case == CastCase) {
      switch (range(4)) {
      case 0:
        return "(classify(" + intExpr(Depth - 1) + "))";
      case 1:
        return "(classify((" + intExpr(Depth - 1) + ", " +
               intExpr(Depth - 1) + ")))";
      case 2:
        return "(classify(((" + intExpr(Depth - 1) + ", " +
               intExpr(Depth - 1) + "), " + intExpr(Depth - 1) + ")))";
      default:
        return "(classify(" + boolExpr(Depth - 1) + "))";
      }
    }
    switch (Case) {
    case 0:
      return "(" + intExpr(Depth - 1) + " + " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " - " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + intExpr(Depth - 1) + " * " + intExpr(Depth - 1) + ")";
    case 3:
      // Guarded division: divisor in [1, 5].
      return "(" + intExpr(Depth - 1) + " / ((" + intExpr(Depth - 1) +
             " % 5 + 5) % 5 + 1))";
    case 4:
      return "(" + boolExpr(Depth - 1) + " ? " + intExpr(Depth - 1) +
             " : " + intExpr(Depth - 1) + ")";
    default: {
      // Tuple round-trip: build and project.
      int Idx = range(2);
      return "((" + intExpr(Depth - 1) + ", " + intExpr(Depth - 1) +
             ")." + std::to_string(Idx) + ")";
    }
    }
  }

  std::string boolExpr(int Depth) {
    if (Depth <= 0 || range(3) == 0)
      return range(2) ? "true" : "false";
    switch (range(4)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " < " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " == " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + boolExpr(Depth - 1) + " && " + boolExpr(Depth - 1) +
             ")";
    default:
      return "!" + boolExpr(Depth - 1);
    }
  }

  /// An expression of pool type \p T built from int expressions.
  std::string valueExpr(int T, int Depth) {
    switch (T) {
    case 0:
      return intExpr(Depth);
    case 1:
      return "(" + intExpr(Depth) + ", " + intExpr(Depth) + ")";
    default:
      return "((" + intExpr(Depth) + ", " + intExpr(Depth) + "), " +
             intExpr(Depth) + ")";
    }
  }

  /// Collapses a value of pool type \p T (spelled \p Name) to an int.
  static std::string collapse(int T, const std::string &Name) {
    switch (T) {
    case 0:
      return Name;
    case 1:
      return "(" + Name + ".0 + " + Name + ".1)";
    default:
      return "(" + Name + ".0.0 + " + Name + ".0.1 + " + Name + ".1)";
    }
  }

  void genFunction(int Id) {
    int ExprDepth = Config.MaxExprDepth < 1 ? 1 : Config.MaxExprDepth;
    int ParamT = range(3);
    int RetT = range(3);
    FuncParamT.push_back(ParamT);
    FuncRetT.push_back(RetT);
    OS << "def fn" << Id << "(p: " << typeName(ParamT)
       << ", k: int) -> " << typeName(RetT) << " {\n";
    IntVars = {"k", collapse(ParamT, "p")};
    OS << "  var acc = " << intExpr(ExprDepth - 1) << ";\n";
    IntVars.push_back("acc");
    if (Config.Loops) {
      // A bounded loop with a data-dependent body.
      OS << "  for (i = 0; i < " << (1 + range(4)) << "; i = i + 1) {\n";
      OS << "    acc = (acc + " << intExpr(ExprDepth - 1)
         << ") % 100000;\n";
      OS << "  }\n";
    } else {
      OS << "  acc = (acc + " << intExpr(ExprDepth - 1) << ") % 100000;\n";
    }
    if (range(2))
      OS << "  if (" << boolExpr(2) << ") acc = acc - " << range(50)
         << ";\n";
    // Calls to earlier functions keep the call graph acyclic;
    // sometimes through a first-class function value instead.
    if (Id > 0 && range(2)) {
      int Callee = range(Id);
      if (Config.HigherOrder && range(2)) {
        OS << "  var fp = fn" << Callee << ";\n";
        OS << "  var sub = fp(" << valueExpr(FuncParamT[Callee], 1)
           << ", acc % 97);\n";
      } else {
        OS << "  var sub = fn" << Callee << "("
           << valueExpr(FuncParamT[Callee], 1) << ", acc % 97);\n";
      }
      OS << "  acc = (acc + " << collapse(FuncRetT[Callee], "sub")
         << ") % 100000;\n";
    }
    OS << "  return " << valueExpr(RetT, 1) << ";\n";
    OS << "}\n";
    IntVars.clear();
  }

  void genMain(int NumFuncs) {
    OS << "def main() -> int {\n  var total = 0;\n";
    IntVars = {"total"};
    for (int F = 0; F != NumFuncs; ++F) {
      OS << "  var r" << F << " = fn" << F << "("
         << valueExpr(FuncParamT[F], 1) << ", " << range(100) << ");\n";
      OS << "  total = (total + "
         << collapse(FuncRetT[F], "r" + std::to_string(F))
         << ") % 1000000;\n";
    }
    genAnchors();
    OS << "  return total;\n}\n";
  }

  /// One deterministic use of every enabled feature, so a program
  /// exercises each toggled-on construct even when the random
  /// expression cases missed it.
  void genAnchors() {
    auto acc = [&](const std::string &E) {
      OS << "  total = (total + " << E << ") % 1000000;\n";
    };
    if (Config.VirtualDispatch) {
      acc("cellSum(WeightedCell.new(" + std::to_string(range(20)) +
          ", (4, 5)))");
      if (Config.HigherOrder) {
        // Constructor and unbound-method values.
        OS << "  var mkCell = Cell.new;\n";
        OS << "  var unboundSum = Cell.sum;\n";
        acc("mkCell(" + std::to_string(range(9)) + ", (3, 4)).sum()");
        acc("unboundSum(mkCell(1, (2, " + std::to_string(range(9)) +
            ")))");
      }
    }
    if (Config.NestedTuples) {
      OS << "  var grid = Grid.new(" << (3 + range(3))
         << ", ((1, 2), " << range(30) << "));\n";
      acc("grid.total()");
      acc("grid.at(" + std::to_string(range(40)) + ").0");
    }
    if (Config.HigherOrder)
      acc("hof(step, " + std::to_string(range(50)) + ")");
    if (Config.DeepGenerics)
      acc("deep3(" + std::to_string(range(25)) + ")");
    if (Config.OperatorValues)
      acc("opsProbe(" + std::to_string(range(6)) + ", " +
          std::to_string(range(6)) + ")");
    if (Config.CastChains) {
      acc("classify((" + std::to_string(range(30)) + ", 2))");
      acc("classify(" + std::string(range(2) ? "true" : "false") + ")");
      acc("classify(((6, " + std::to_string(range(30)) + "), 8))");
    }
  }

  GenConfig Config;
  uint32_t State;
  std::ostringstream OS;
  std::vector<std::string> IntVars;
  std::vector<int> FuncParamT;
  std::vector<int> FuncRetT;
};

} // namespace

std::string corpus::genRandomProgram(uint32_t Seed,
                                     const GenConfig &Config) {
  ProgramGen Gen(Seed, Config);
  return Gen.run();
}

std::string corpus::genRandomProgram(uint32_t Seed) {
  return genRandomProgram(Seed, GenConfig());
}
