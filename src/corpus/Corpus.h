//===- corpus/Corpus.h - The paper's example programs -----------*- C++ -*-===//
///
/// \file
/// Virgil-core source for every design pattern and example in the
/// paper, plus a few compute kernels. Tests execute each program under
/// all four strategies (poly-interp, mono-interp, norm-interp, VM) and
/// require identical observable behaviour; benches reuse them as
/// workloads; EXPERIMENTS.md cites them by name.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_CORPUS_CORPUS_H
#define VIRGIL_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace virgil {
namespace corpus {

struct CorpusProgram {
  const char *Name;
  const char *Source;
  /// Expected output (empty when the program only returns a value).
  const char *ExpectedOutput;
  /// Expected main() result.
  int ExpectedResult;
};

/// All corpus programs (every §2/§3 paper example).
const std::vector<CorpusProgram> &allPrograms();

/// Looks up one program by name; asserts if missing.
const CorpusProgram &program(const std::string &Name);

} // namespace corpus
} // namespace virgil

#endif // VIRGIL_CORPUS_CORPUS_H
