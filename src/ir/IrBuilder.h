//===- ir/IrBuilder.h - Convenience builder for IR --------------*- C++ -*-===//
///
/// \file
/// Appends instructions to a current block, allocating result registers
/// from the enclosing function. Lowering and the monomorphizer use it.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IRBUILDER_H
#define VIRGIL_IR_IRBUILDER_H

#include "ir/Ir.h"

namespace virgil {

class IrBuilder {
public:
  IrBuilder(IrModule &M, IrFunction *F) : M(M), F(F) {}

  IrFunction *function() const { return F; }
  IrModule &module() const { return M; }

  IrBlock *newBlock() {
    auto *B = M.Nodes.make<IrBlock>((uint32_t)F->Blocks.size());
    F->Blocks.push_back(B);
    return B;
  }

  void setBlock(IrBlock *B) { Cur = B; }
  IrBlock *block() const { return Cur; }

  /// True if the current block already ends in a terminator.
  bool terminated() const {
    return Cur && !Cur->Instrs.empty() &&
           isTerminator(Cur->Instrs.back()->Op);
  }

  /// Appends a raw instruction (shared low-level entry point).
  IrInstr *emit(Opcode Op, std::vector<Reg> Dsts, std::vector<Reg> Args,
                Type *Ty = nullptr, SourceLoc Loc = SourceLoc::invalid());

  // Constants.
  Reg constInt(int64_t V, Type *IntTy);
  Reg constByte(uint8_t V, Type *ByteTy);
  Reg constBool(bool V, Type *BoolTy);
  Reg constNull(Type *Ty);
  Reg constVoid(Type *VoidTy);
  Reg constString(const std::string &S, Type *StringTy);

  Reg move(Reg Src, Type *Ty);
  void moveInto(Reg Dst, Reg Src, Type *Ty);

  Reg binop(Opcode Op, Reg A, Reg B, Type *ResultTy);
  Reg unop(Opcode Op, Reg A, Type *ResultTy);
  /// Universal equality of two values of static type \p OperandTy.
  Reg equality(bool Negated, Reg A, Reg B, Type *OperandTy, Type *BoolTy);

  Reg tupleCreate(std::vector<Reg> Elems, Type *TupleTy);
  Reg tupleGet(Reg Tuple, int Index, Type *ElemTy);

  Reg newObject(Type *ClassTy);
  Reg fieldGet(Reg Obj, int FieldIndex, Type *RecvTy, Type *FieldTy);
  void fieldSet(Reg Obj, int FieldIndex, Reg Value, Type *RecvTy);
  void nullCheck(Reg Obj, Type *RecvTy);

  Reg newArray(Reg Len, Type *ArrayTy);
  Reg arrayGet(Reg Arr, Reg Index, Type *ElemTy);
  void arraySet(Reg Arr, Reg Index, Reg Value);
  Reg arrayLen(Reg Arr, Type *IntTy);

  Reg globalGet(int Index, Type *Ty);
  void globalSet(int Index, Reg Value);

  IrInstr *callFunc(IrFunction *Callee, std::vector<Type *> TypeArgs,
                    std::vector<Reg> Args, std::vector<Reg> Dsts);
  IrInstr *callVirtual(int Slot, Type *RecvClassTy,
                       std::vector<Type *> TypeArgs, std::vector<Reg> Args,
                       std::vector<Reg> Dsts);
  IrInstr *callIndirect(Reg Fn, std::vector<Reg> Args,
                        std::vector<Reg> Dsts);
  IrInstr *callBuiltin(int Builtin, std::vector<Reg> Args,
                       std::vector<Reg> Dsts);

  Reg makeClosure(IrFunction *Callee, std::vector<Type *> TypeArgs,
                  std::vector<Reg> Bound, Type *FnTy);

  Reg typeCast(Reg V, Type *Target, SourceLoc Loc);
  Reg typeQuery(Reg V, Type *Target, Type *BoolTy);

  void ret(std::vector<Reg> Values);
  void br(IrBlock *Target);
  void condBr(Reg Cond, IrBlock *TrueB, IrBlock *FalseB);
  void trap(TrapKind Kind, SourceLoc Loc = SourceLoc::invalid());

private:
  IrModule &M;
  IrFunction *F;
  IrBlock *Cur = nullptr;
};

} // namespace virgil

#endif // VIRGIL_IR_IRBUILDER_H
