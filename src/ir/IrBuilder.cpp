//===- ir/IrBuilder.cpp ---------------------------------------------------===//

#include "ir/IrBuilder.h"

#include <cassert>

using namespace virgil;

IrInstr *IrBuilder::emit(Opcode Op, std::vector<Reg> Dsts,
                         std::vector<Reg> Args, Type *Ty, SourceLoc Loc) {
  assert(Cur && "no current block");
  assert(!terminated() && "appending to a terminated block");
  auto *I = M.Nodes.make<IrInstr>();
  I->Op = Op;
  I->Dsts = std::move(Dsts);
  I->Args = std::move(Args);
  I->Ty = Ty;
  I->Loc = Loc;
  Cur->Instrs.push_back(I);
  return I;
}

Reg IrBuilder::constInt(int64_t V, Type *IntTy) {
  Reg D = F->newReg(IntTy);
  emit(Opcode::ConstInt, {D}, {}, IntTy)->IntConst = (int32_t)V;
  return D;
}

Reg IrBuilder::constByte(uint8_t V, Type *ByteTy) {
  Reg D = F->newReg(ByteTy);
  emit(Opcode::ConstByte, {D}, {}, ByteTy)->IntConst = V;
  return D;
}

Reg IrBuilder::constBool(bool V, Type *BoolTy) {
  Reg D = F->newReg(BoolTy);
  emit(Opcode::ConstBool, {D}, {}, BoolTy)->IntConst = V ? 1 : 0;
  return D;
}

Reg IrBuilder::constNull(Type *Ty) {
  Reg D = F->newReg(Ty);
  emit(Opcode::ConstNull, {D}, {}, Ty);
  return D;
}

Reg IrBuilder::constVoid(Type *VoidTy) {
  Reg D = F->newReg(VoidTy);
  emit(Opcode::ConstVoid, {D}, {}, VoidTy);
  return D;
}

Reg IrBuilder::constString(const std::string &S, Type *StringTy) {
  Reg D = F->newReg(StringTy);
  emit(Opcode::ConstString, {D}, {}, StringTy)->Index = M.internString(S);
  return D;
}

Reg IrBuilder::move(Reg Src, Type *Ty) {
  Reg D = F->newReg(Ty);
  emit(Opcode::Move, {D}, {Src}, Ty);
  return D;
}

void IrBuilder::moveInto(Reg Dst, Reg Src, Type *Ty) {
  emit(Opcode::Move, {Dst}, {Src}, Ty);
}

Reg IrBuilder::binop(Opcode Op, Reg A, Reg B, Type *ResultTy) {
  Reg D = F->newReg(ResultTy);
  emit(Op, {D}, {A, B}, ResultTy);
  return D;
}

Reg IrBuilder::unop(Opcode Op, Reg A, Type *ResultTy) {
  Reg D = F->newReg(ResultTy);
  emit(Op, {D}, {A}, ResultTy);
  return D;
}

Reg IrBuilder::equality(bool Negated, Reg A, Reg B, Type *OperandTy,
                        Type *BoolTy) {
  Reg D = F->newReg(BoolTy);
  IrInstr *I = emit(Negated ? Opcode::Ne : Opcode::Eq, {D}, {A, B}, BoolTy);
  I->TypeOperand = OperandTy;
  return D;
}

Reg IrBuilder::tupleCreate(std::vector<Reg> Elems, Type *TupleTy) {
  Reg D = F->newReg(TupleTy);
  emit(Opcode::TupleCreate, {D}, std::move(Elems), TupleTy);
  return D;
}

Reg IrBuilder::tupleGet(Reg Tuple, int Index, Type *ElemTy) {
  Reg D = F->newReg(ElemTy);
  emit(Opcode::TupleGet, {D}, {Tuple}, ElemTy)->Index = Index;
  return D;
}

Reg IrBuilder::newObject(Type *ClassTy) {
  Reg D = F->newReg(ClassTy);
  emit(Opcode::NewObject, {D}, {}, ClassTy)->TypeOperand = ClassTy;
  return D;
}

Reg IrBuilder::fieldGet(Reg Obj, int FieldIndex, Type *RecvTy,
                        Type *FieldTy) {
  Reg D = F->newReg(FieldTy);
  IrInstr *I = emit(Opcode::FieldGet, {D}, {Obj}, FieldTy);
  I->TypeOperand = RecvTy;
  I->Index = FieldIndex;
  return D;
}

void IrBuilder::fieldSet(Reg Obj, int FieldIndex, Reg Value, Type *RecvTy) {
  IrInstr *I = emit(Opcode::FieldSet, {}, {Obj, Value});
  I->TypeOperand = RecvTy;
  I->Index = FieldIndex;
}

void IrBuilder::nullCheck(Reg Obj, Type *RecvTy) {
  emit(Opcode::NullCheck, {}, {Obj})->TypeOperand = RecvTy;
}

Reg IrBuilder::newArray(Reg Len, Type *ArrayTy) {
  Reg D = F->newReg(ArrayTy);
  emit(Opcode::NewArray, {D}, {Len}, ArrayTy)->TypeOperand = ArrayTy;
  return D;
}

Reg IrBuilder::arrayGet(Reg Arr, Reg Index, Type *ElemTy) {
  Reg D = F->newReg(ElemTy);
  emit(Opcode::ArrayGet, {D}, {Arr, Index}, ElemTy);
  return D;
}

void IrBuilder::arraySet(Reg Arr, Reg Index, Reg Value) {
  emit(Opcode::ArraySet, {}, {Arr, Index, Value});
}

Reg IrBuilder::arrayLen(Reg Arr, Type *IntTy) {
  Reg D = F->newReg(IntTy);
  emit(Opcode::ArrayLen, {D}, {Arr}, IntTy);
  return D;
}

Reg IrBuilder::globalGet(int Index, Type *Ty) {
  Reg D = F->newReg(Ty);
  emit(Opcode::GlobalGet, {D}, {}, Ty)->Index = Index;
  return D;
}

void IrBuilder::globalSet(int Index, Reg Value) {
  emit(Opcode::GlobalSet, {}, {Value})->Index = Index;
}

IrInstr *IrBuilder::callFunc(IrFunction *Callee,
                             std::vector<Type *> TypeArgs,
                             std::vector<Reg> Args, std::vector<Reg> Dsts) {
  IrInstr *I = emit(Opcode::CallFunc, std::move(Dsts), std::move(Args));
  I->Callee = Callee;
  I->TypeArgs = std::move(TypeArgs);
  if (!I->Dsts.empty())
    I->Ty = F->RegTypes[I->Dsts[0]];
  return I;
}

IrInstr *IrBuilder::callVirtual(int Slot, Type *RecvClassTy,
                                std::vector<Type *> TypeArgs,
                                std::vector<Reg> Args,
                                std::vector<Reg> Dsts) {
  IrInstr *I = emit(Opcode::CallVirtual, std::move(Dsts), std::move(Args));
  I->TypeOperand = RecvClassTy;
  I->Index = Slot;
  I->TypeArgs = std::move(TypeArgs);
  if (!I->Dsts.empty())
    I->Ty = F->RegTypes[I->Dsts[0]];
  return I;
}

IrInstr *IrBuilder::callIndirect(Reg Fn, std::vector<Reg> Args,
                                 std::vector<Reg> Dsts) {
  std::vector<Reg> All;
  All.push_back(Fn);
  All.insert(All.end(), Args.begin(), Args.end());
  IrInstr *I = emit(Opcode::CallIndirect, std::move(Dsts), std::move(All));
  if (!I->Dsts.empty())
    I->Ty = F->RegTypes[I->Dsts[0]];
  return I;
}

IrInstr *IrBuilder::callBuiltin(int Builtin, std::vector<Reg> Args,
                                std::vector<Reg> Dsts) {
  IrInstr *I = emit(Opcode::CallBuiltin, std::move(Dsts), std::move(Args));
  I->Index = Builtin;
  if (!I->Dsts.empty())
    I->Ty = F->RegTypes[I->Dsts[0]];
  return I;
}

Reg IrBuilder::makeClosure(IrFunction *Callee, std::vector<Type *> TypeArgs,
                           std::vector<Reg> Bound, Type *FnTy) {
  Reg D = F->newReg(FnTy);
  IrInstr *I = emit(Opcode::MakeClosure, {D}, std::move(Bound), FnTy);
  I->Callee = Callee;
  I->TypeArgs = std::move(TypeArgs);
  return D;
}

Reg IrBuilder::typeCast(Reg V, Type *Target, SourceLoc Loc) {
  Reg D = F->newReg(Target);
  IrInstr *I = emit(Opcode::TypeCast, {D}, {V}, Target, Loc);
  I->TypeOperand = Target;
  return D;
}

Reg IrBuilder::typeQuery(Reg V, Type *Target, Type *BoolTy) {
  Reg D = F->newReg(BoolTy);
  IrInstr *I = emit(Opcode::TypeQuery, {D}, {V}, BoolTy);
  I->TypeOperand = Target;
  return D;
}

void IrBuilder::ret(std::vector<Reg> Values) {
  emit(Opcode::Ret, {}, std::move(Values));
}

void IrBuilder::br(IrBlock *Target) {
  emit(Opcode::Br, {}, {});
  Cur->Succ0 = Target;
}

void IrBuilder::condBr(Reg Cond, IrBlock *TrueB, IrBlock *FalseB) {
  emit(Opcode::CondBr, {}, {Cond});
  Cur->Succ0 = TrueB;
  Cur->Succ1 = FalseB;
}

void IrBuilder::trap(TrapKind Kind, SourceLoc Loc) {
  emit(Opcode::Trap, {}, {}, nullptr, Loc)->Index = (int)Kind;
}
