//===- ir/Ir.h - Typed three-address IR -------------------------*- C++ -*-===//
///
/// \file
/// The compiler's mid-level IR: a CFG of three-address instructions over
/// virtual registers. One IR serves every stage of the paper's pipeline:
///
/// * Freshly lowered IR is *polymorphic*: functions carry type
///   parameters, call instructions carry type-argument vectors, and
///   tuples are first-class values. The reference interpreter executes
///   this form directly, passing type arguments as invisible parameters
///   (the paper's interpreter strategy, §4.3) and adapting tuple
///   calling conventions dynamically (§4.1).
///
/// * After monomorphization no type parameters remain; after
///   normalization no tuple types remain and functions take/return only
///   scalars (possibly several return values, §4.2). The bytecode
///   emitter requires this normalized form.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IR_H
#define VIRGIL_IR_IR_H

#include "support/Arena.h"
#include "support/Source.h"
#include "types/TypeStore.h"

#include <memory>
#include <string>
#include <vector>

namespace virgil {

class IrBlock;
class IrFunction;
struct IrClass;
struct IrModule;

/// Virtual register id, local to a function.
using Reg = uint32_t;
constexpr Reg NoReg = ~0u;

enum class Opcode : uint8_t {
  // Constants.
  ConstInt,    ///< Dsts[0] <- IntConst (32-bit wrapped).
  ConstByte,   ///< Dsts[0] <- (byte)IntConst.
  ConstBool,   ///< Dsts[0] <- IntConst != 0.
  ConstNull,   ///< Dsts[0] <- null of type Ty.
  ConstVoid,   ///< Dsts[0] <- ().
  ConstString, ///< Dsts[0] <- fresh Array<byte> copy of string #Index.
  /// Dsts[0] <- the default value of type Ty (0 / false / null / ()).
  /// Needed pre-monomorphization when Ty is a type parameter.
  ConstDefault,
  Move,        ///< Dsts[0] <- Args[0].
  // Integer arithmetic (32-bit wrapping) and comparisons. Comparisons
  // also apply to byte operands.
  IntAdd,
  IntSub,
  IntMul,
  IntDiv, ///< Traps on division by zero.
  IntMod, ///< Traps on division by zero.
  IntNeg,
  IntLt,
  IntLe,
  IntGt,
  IntGe,
  BoolNot,
  BoolAnd, ///< Non-short-circuit and (normalized tuple equality).
  BoolOr,  ///< Non-short-circuit or.
  // Universal equality on values of type TypeOperand (recursive on
  // tuples; reference equality for objects/arrays; function values are
  // equal when they name the same function and the same bound receiver).
  Eq,
  Ne,
  // Tuples (absent after normalization).
  TupleCreate, ///< Dsts[0] <- (Args...); Ty is the tuple type.
  TupleGet,    ///< Dsts[0] <- Args[0].Index.
  // Objects.
  NewObject, ///< Dsts[0] <- new object; TypeOperand = class type.
  FieldGet,  ///< Dsts[0] <- Args[0].field#Index; null-checks Args[0].
  FieldSet,  ///< Args[0].field#Index <- Args[1]; null-checks Args[0].
  NullCheck, ///< Traps if Args[0] is null (used for void-typed fields).
  // Arrays.
  NewArray, ///< Dsts[0] <- new Array (TypeOperand) of length Args[0].
  ArrayGet, ///< Dsts[0] <- Args[0][Args[1]]; null+bounds checked.
  /// Null+bounds check of Args[0][Args[1]] without reading a value;
  /// normalization of accesses to Array<void> (paper §4.2: "arrays of
  /// void require no storage but accesses are dutifully bounds
  /// checked").
  BoundsCheck,
  ArraySet, ///< Args[0][Args[1]] <- Args[2]; null+bounds checked.
  ArrayLen, ///< Dsts[0] <- Args[0].length; null checked.
  // Globals.
  GlobalGet, ///< Dsts[0] <- global #Index.
  GlobalSet, ///< global #Index <- Args[0].
  // Calls. Type arguments (TypeArgs) are the paper's "invisible
  // parameters"; they disappear after monomorphization.
  CallFunc,     ///< Dsts <- Callee(Args...) with TypeArgs.
  CallVirtual,  ///< Dispatch on Args[0] through vtable slot #Index;
                ///< TypeOperand = static receiver class type.
  CallIndirect, ///< Dsts <- Args[0](Args[1..]); Args[0] is a closure.
  CallBuiltin,  ///< System builtin #Index.
  // Function values (paper §2.2). BoundCount() == Args.size(): 0 for an
  // unbound function, 1 for an object method closed over its receiver.
  MakeClosure, ///< Dsts[0] <- closure(Callee, TypeArgs, Args...).
  // Casts and queries. TypeOperand is the target type; the source type
  // is the static type of Args[0].
  TypeCast,  ///< Dsts[0] <- cast; traps on failure.
  TypeQuery, ///< Dsts[0] <- bool.
  // Control flow (block terminators).
  Ret,    ///< Returns Args (0..n values).
  Br,     ///< Jumps to Succ0.
  CondBr, ///< Args[0] ? Succ0 : Succ1.
  Trap,   ///< Aborts execution; Index is a TrapKind.
  /// SSA phi: Dsts[0] <- Args[i] when control arrives from the block's
  /// i-th predecessor (predecessors ordered as ssa::predecessors()
  /// reports them). Exists only *inside* the SSA sandwich in
  /// src/ssa/ — construction places phis, destruction replaces them
  /// with edge copies — so the interpreters, BcPrepare, and the
  /// bytecode emitter never see one; IrVerifier rejects it outside
  /// strict-SSA mode.
  Phi,
};

enum class TrapKind : uint8_t {
  NullDeref,
  Bounds,
  CastFail,
  DivByZero,
  MissingReturn,
  UserError,
  Unreachable,
};

const char *opcodeName(Opcode Op);
const char *trapKindName(TrapKind Kind);
bool isTerminator(Opcode Op);
/// True if the instruction has no side effects and can be removed when
/// its results are unused.
bool isPure(Opcode Op);

/// One three-address instruction.
struct IrInstr {
  Opcode Op;
  SourceLoc Loc;
  /// Result registers (usually 0 or 1; calls may define several after
  /// normalization).
  std::vector<Reg> Dsts;
  /// Operand registers.
  std::vector<Reg> Args;
  /// The value type of the (single) result, or the operand type for Eq/
  /// Ne/Ret-less ops. Null where meaningless.
  Type *Ty = nullptr;
  /// Auxiliary type: class type for NewObject/FieldGet/CallVirtual,
  /// array type for NewArray, target type for casts/queries.
  Type *TypeOperand = nullptr;
  /// Direct callee for CallFunc/MakeClosure.
  IrFunction *Callee = nullptr;
  /// Type arguments for CallFunc/CallVirtual/MakeClosure.
  std::vector<Type *> TypeArgs;
  /// Field index / vtable slot / builtin kind / string-table index /
  /// tuple index / global index / trap kind.
  int64_t IntConst = 0;
  int Index = -1;

  Reg dst() const { return Dsts.empty() ? NoReg : Dsts[0]; }
};

/// A basic block: instructions with a terminator last.
class IrBlock {
public:
  IrBlock(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }

  std::vector<IrInstr *> Instrs;
  IrBlock *Succ0 = nullptr; ///< Br/CondBr-true target.
  IrBlock *Succ1 = nullptr; ///< CondBr-false target.

  IrInstr *terminator() const {
    return Instrs.empty() ? nullptr : Instrs.back();
  }

private:
  uint32_t Id;
};

/// A field in an IrClass layout. The type is expressed in terms of the
/// *leaf* class's own type parameters (parent parameters have been
/// substituted away), so instantiating a class needs only one
/// substitution.
struct IrField {
  std::string Name;
  Type *Ty = nullptr;
};

/// A class as the IR sees it: full field layout and virtual table.
struct IrClass {
  uint32_t Id = 0;
  std::string Name;
  /// The source definition pre-mono; a fresh non-generic ClassDef
  /// (empty TypeParams) for post-mono specializations.
  ClassDef *Def = nullptr;
  IrClass *Parent = nullptr; ///< Superclass or null.
  /// Type arguments this specialization was built with (post-mono).
  std::vector<Type *> MonoArgs;
  std::vector<IrField> Fields;         ///< Inherited-first full layout.
  std::vector<IrFunction *> VTable;    ///< Full virtual table.
  /// The self class type: C<own params> pre-mono; the concrete
  /// instantiation post-mono is identified by Id alone.
  Type *SelfType = nullptr;
  uint32_t Depth = 0; ///< Inheritance depth, for fast subclass tests.
};

/// A function: top-level function, method (receiver is param 0),
/// constructor, constructor wrapper, or synthesized operator.
class IrFunction {
public:
  IrFunction(uint32_t Id, std::string Name)
      : Name(std::move(Name)), Id(Id) {}

  uint32_t id() const { return Id; }
  /// Re-ids the function after specialization sharing compacts the
  /// module's function table (ids must stay table positions).
  void renumber(uint32_t NewId) { Id = NewId; }

  std::string Name;
  /// The paper's invisible type parameters; empty after mono.
  std::vector<TypeParamDef *> TypeParams;
  /// Parameter registers are 0..NumParams-1, typed RegTypes[i].
  uint32_t NumParams = 0;
  /// Return types: exactly one (possibly void) before normalization;
  /// zero or more scalars after.
  std::vector<Type *> RetTypes;
  std::vector<Type *> RegTypes;
  std::vector<IrBlock *> Blocks; ///< Blocks[0] is the entry.
  /// For methods: the class this is a member of, and the vtable slot
  /// (-1 if not virtual).
  IrClass *OwnerClass = nullptr;
  int Slot = -1;
  bool IsCtor = false;
  /// Collapsed source-level function type (including the receiver) and
  /// the same minus the receiver; set by the normalizer so first-class
  /// function casts still see the pre-flattening signature.
  Type *SourceFuncTy = nullptr;
  Type *BoundFuncTy = nullptr;

  /// The collapsed function type (params tupled), for closure values.
  Type *funcType(TypeStore &Types) const {
    std::vector<Type *> Params(RegTypes.begin(),
                               RegTypes.begin() + NumParams);
    Type *Ret = RetTypes.size() == 1
                    ? RetTypes[0]
                    : Types.tuple(RetTypes);
    return Types.func(Types.tuple(Params), Ret);
  }

  Reg newReg(Type *Ty) {
    RegTypes.push_back(Ty);
    return (Reg)(RegTypes.size() - 1);
  }

private:
  uint32_t Id;
};

/// A module-level mutable or immutable value.
struct IrGlobal {
  std::string Name;
  Type *Ty = nullptr;
  int Index = -1;
};

/// A whole program in IR form.
struct IrModule {
  explicit IrModule(TypeStore &Types) : Types(&Types) {}

  TypeStore *Types;
  Arena Nodes;
  std::vector<IrFunction *> Functions;
  std::vector<IrClass *> Classes;
  std::vector<IrGlobal> Globals;
  std::vector<std::string> Strings;
  IrFunction *Main = nullptr;
  IrFunction *Init = nullptr; ///< Runs global initializers.
  bool Monomorphized = false;
  bool Normalized = false;
  /// Specialization sharing has merged identical bodies: function
  /// metadata (Name/Slot/OwnerClass/source types) belongs to the
  /// equivalence representative, and optimizer passes must not run.
  bool Shared = false;

  IrFunction *newFunction(std::string Name) {
    auto *F = Nodes.make<IrFunction>((uint32_t)Functions.size(),
                                     std::move(Name));
    Functions.push_back(F);
    return F;
  }

  IrClass *newClass(std::string Name) {
    auto *C = Nodes.make<IrClass>();
    C->Id = (uint32_t)Classes.size();
    C->Name = std::move(Name);
    Classes.push_back(C);
    return C;
  }

  int internString(const std::string &S) {
    for (size_t I = 0; I != Strings.size(); ++I)
      if (Strings[I] == S)
        return (int)I;
    Strings.push_back(S);
    return (int)Strings.size() - 1;
  }
};

} // namespace virgil

#endif // VIRGIL_IR_IR_H
