//===- ir/IrStats.h - Static program statistics -----------------*- C++ -*-===//
///
/// \file
/// Counts functions, blocks, instructions, classes, and per-opcode
/// histograms over an IrModule. The code-expansion experiment (E5) and
/// the compiler's statistics output are built on these numbers.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IRSTATS_H
#define VIRGIL_IR_IRSTATS_H

#include "ir/Ir.h"

#include <map>
#include <string>

namespace virgil {

struct IrStats {
  size_t NumFunctions = 0;
  size_t NumClasses = 0;
  size_t NumBlocks = 0;
  size_t NumInstrs = 0;
  size_t NumRegs = 0;
  size_t NumTupleOps = 0;     ///< TupleCreate/TupleGet.
  size_t NumCasts = 0;        ///< TypeCast/TypeQuery.
  size_t NumCalls = 0;        ///< All call opcodes.
  size_t NumIndirectCalls = 0;
  size_t NumVirtualCalls = 0;
  std::map<Opcode, size_t> PerOpcode;

  std::string toString() const;
};

IrStats computeStats(const IrModule &M);

} // namespace virgil

#endif // VIRGIL_IR_IRSTATS_H
