//===- ir/IrVerifier.h - IR well-formedness checks --------------*- C++ -*-===//
///
/// \file
/// Structural verification of IR invariants, run between pipeline
/// stages in tests and (in debug builds) by the compiler driver:
///
/// * every block ends in exactly one terminator, which is its last
///   instruction, and branch targets belong to the function;
/// * register uses are within range and types are consistent where the
///   opcode dictates them;
/// * post-monomorphization: no type parameters anywhere;
/// * post-normalization: no tuple-typed registers and no tuple ops.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IRVERIFIER_H
#define VIRGIL_IR_IRVERIFIER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace virgil {

/// Verifies the module; returns a list of human-readable problems
/// (empty means well-formed). Rejects `Opcode::Phi` — SSA form is
/// internal to the optimizer's SSA sandwich and must never escape it;
/// use verifyFunctionSsa while the sandwich is active.
std::vector<std::string> verifyModule(const IrModule &M);

/// Strict-SSA verification of one function while the SSA sandwich is
/// active:
///
/// * single assignment — no register is defined twice, and parameters
///   (implicitly defined on entry) are never redefined;
/// * phis are contiguous at the head of their block, define exactly one
///   register, and their arity equals the block's structural
///   predecessor count (Succ0 edge before Succ1, predecessors ordered
///   by block position);
/// * every definition dominates every use; a phi argument is a use at
///   the end of the corresponding predecessor block. Uses of registers
///   with no definition are allowed — they read the frame default,
///   which is the IR's undefined-variable semantics.
///
/// Run after every SSA-form pass in Debug and fuzz builds (see
/// ssa::ssaVerifyEnabled).
std::vector<std::string> verifyFunctionSsa(const IrModule &M,
                                           const IrFunction &F);

} // namespace virgil

#endif // VIRGIL_IR_IRVERIFIER_H
