//===- ir/IrVerifier.h - IR well-formedness checks --------------*- C++ -*-===//
///
/// \file
/// Structural verification of IR invariants, run between pipeline
/// stages in tests and (in debug builds) by the compiler driver:
///
/// * every block ends in exactly one terminator, which is its last
///   instruction, and branch targets belong to the function;
/// * register uses are within range and types are consistent where the
///   opcode dictates them;
/// * post-monomorphization: no type parameters anywhere;
/// * post-normalization: no tuple-typed registers and no tuple ops.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IRVERIFIER_H
#define VIRGIL_IR_IRVERIFIER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace virgil {

/// Verifies the module; returns a list of human-readable problems
/// (empty means well-formed).
std::vector<std::string> verifyModule(const IrModule &M);

} // namespace virgil

#endif // VIRGIL_IR_IRVERIFIER_H
