//===- ir/IrStats.cpp -----------------------------------------------------===//

#include "ir/IrStats.h"

#include <sstream>

using namespace virgil;

IrStats virgil::computeStats(const IrModule &M) {
  IrStats S;
  S.NumFunctions = M.Functions.size();
  S.NumClasses = M.Classes.size();
  for (const IrFunction *F : M.Functions) {
    S.NumBlocks += F->Blocks.size();
    S.NumRegs += F->RegTypes.size();
    for (const IrBlock *B : F->Blocks) {
      for (const IrInstr *I : B->Instrs) {
        ++S.NumInstrs;
        ++S.PerOpcode[I->Op];
        switch (I->Op) {
        case Opcode::TupleCreate:
        case Opcode::TupleGet:
          ++S.NumTupleOps;
          break;
        case Opcode::TypeCast:
        case Opcode::TypeQuery:
          ++S.NumCasts;
          break;
        case Opcode::CallFunc:
        case Opcode::CallBuiltin:
          ++S.NumCalls;
          break;
        case Opcode::CallVirtual:
          ++S.NumCalls;
          ++S.NumVirtualCalls;
          break;
        case Opcode::CallIndirect:
          ++S.NumCalls;
          ++S.NumIndirectCalls;
          break;
        default:
          break;
        }
      }
    }
  }
  return S;
}

std::string IrStats::toString() const {
  std::ostringstream OS;
  OS << "functions=" << NumFunctions << " classes=" << NumClasses
     << " blocks=" << NumBlocks << " instrs=" << NumInstrs
     << " regs=" << NumRegs << " tupleops=" << NumTupleOps
     << " casts=" << NumCasts << " calls=" << NumCalls
     << " (indirect=" << NumIndirectCalls
     << ", virtual=" << NumVirtualCalls << ")";
  return OS.str();
}
