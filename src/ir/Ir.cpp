//===- ir/Ir.cpp ----------------------------------------------------------===//

#include "ir/Ir.h"

using namespace virgil;

const char *virgil::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
    return "const.int";
  case Opcode::ConstByte:
    return "const.byte";
  case Opcode::ConstBool:
    return "const.bool";
  case Opcode::ConstNull:
    return "const.null";
  case Opcode::ConstVoid:
    return "const.void";
  case Opcode::ConstString:
    return "const.string";
  case Opcode::ConstDefault:
    return "const.default";
  case Opcode::Move:
    return "move";
  case Opcode::IntAdd:
    return "int.add";
  case Opcode::IntSub:
    return "int.sub";
  case Opcode::IntMul:
    return "int.mul";
  case Opcode::IntDiv:
    return "int.div";
  case Opcode::IntMod:
    return "int.mod";
  case Opcode::IntNeg:
    return "int.neg";
  case Opcode::IntLt:
    return "int.lt";
  case Opcode::IntLe:
    return "int.le";
  case Opcode::IntGt:
    return "int.gt";
  case Opcode::IntGe:
    return "int.ge";
  case Opcode::BoolNot:
    return "bool.not";
  case Opcode::BoolAnd:
    return "bool.and";
  case Opcode::BoolOr:
    return "bool.or";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::TupleCreate:
    return "tuple.create";
  case Opcode::TupleGet:
    return "tuple.get";
  case Opcode::NewObject:
    return "new.object";
  case Opcode::FieldGet:
    return "field.get";
  case Opcode::FieldSet:
    return "field.set";
  case Opcode::NullCheck:
    return "null.check";
  case Opcode::NewArray:
    return "new.array";
  case Opcode::ArrayGet:
    return "array.get";
  case Opcode::BoundsCheck:
    return "bounds.check";
  case Opcode::ArraySet:
    return "array.set";
  case Opcode::ArrayLen:
    return "array.len";
  case Opcode::GlobalGet:
    return "global.get";
  case Opcode::GlobalSet:
    return "global.set";
  case Opcode::CallFunc:
    return "call.func";
  case Opcode::CallVirtual:
    return "call.virtual";
  case Opcode::CallIndirect:
    return "call.indirect";
  case Opcode::CallBuiltin:
    return "call.builtin";
  case Opcode::MakeClosure:
    return "make.closure";
  case Opcode::TypeCast:
    return "type.cast";
  case Opcode::TypeQuery:
    return "type.query";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "cond.br";
  case Opcode::Trap:
    return "trap";
  case Opcode::Phi:
    return "phi";
  }
  return "unknown";
}

const char *virgil::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::NullDeref:
    return "null dereference";
  case TrapKind::Bounds:
    return "array index out of bounds";
  case TrapKind::CastFail:
    return "type cast failed";
  case TrapKind::DivByZero:
    return "division by zero";
  case TrapKind::MissingReturn:
    return "missing return";
  case TrapKind::UserError:
    return "user error";
  case TrapKind::Unreachable:
    return "unreachable code";
  }
  return "unknown trap";
}

bool virgil::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Trap:
    return true;
  default:
    return false;
  }
}

bool virgil::isPure(Opcode Op) {
  switch (Op) {
  case Opcode::ConstInt:
  case Opcode::ConstByte:
  case Opcode::ConstBool:
  case Opcode::ConstNull:
  case Opcode::ConstVoid:
  case Opcode::ConstDefault:
  case Opcode::Move:
  case Opcode::IntAdd:
  case Opcode::IntSub:
  case Opcode::IntMul:
  case Opcode::IntNeg:
  case Opcode::IntLt:
  case Opcode::IntLe:
  case Opcode::IntGt:
  case Opcode::IntGe:
  case Opcode::BoolNot:
  case Opcode::BoolAnd:
  case Opcode::BoolOr:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::TupleCreate:
  case Opcode::TupleGet:
  case Opcode::GlobalGet:
  case Opcode::MakeClosure:
  case Opcode::TypeQuery:
  case Opcode::Phi:
    return true;
  // ConstString and NewArray allocate (observable via identity /
  // mutation); div/mod, casts, and memory ops can trap or have effects.
  default:
    return false;
  }
}
