//===- ir/IrPrinter.h - Textual IR dump -------------------------*- C++ -*-===//
///
/// \file
/// Renders IR functions and modules as readable text, used by tests and
/// `virgilc --dump-ir`.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_IR_IRPRINTER_H
#define VIRGIL_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <string>

namespace virgil {

std::string printFunction(const IrFunction &F);
std::string printModule(const IrModule &M);

} // namespace virgil

#endif // VIRGIL_IR_IRPRINTER_H
