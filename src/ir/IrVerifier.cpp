//===- ir/IrVerifier.cpp --------------------------------------------------===//

#include "ir/IrVerifier.h"

#include "support/Casting.h"

#include <map>
#include <set>
#include <sstream>

using namespace virgil;

namespace {

/// Does a type contain a tuple anywhere (normalization must remove
/// them all, including inside arrays and closures' static types)?
bool containsTuple(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Tuple:
    return true;
  case TypeKind::Array:
    return containsTuple(cast<ArrayType>(T)->elem());
  default:
    // Function types may still *spell* tuples after normalization (a
    // closure value's type is a single value); only direct tuple-typed
    // registers and array elements matter for representation.
    return false;
  }
}

/// Representation class of one register slot, mirrored from the VM's
/// SlotKind classification (kept local: ir/ must not depend on vm/).
/// After normalization every register is a scalar, a reference, or a
/// closure, and shared bodies must agree on this exactly — the GC scans
/// frames by these kinds.
enum class RegKind : uint8_t { Scalar, Ref, Closure };

RegKind regKindOf(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Class:
  case TypeKind::Array:
    return RegKind::Ref;
  case TypeKind::Function:
    return RegKind::Closure;
  default:
    return RegKind::Scalar;
  }
}

class Verifier {
public:
  explicit Verifier(const IrModule &M) : M(M) {}

  std::vector<std::string> run() {
    for (const IrFunction *F : M.Functions)
      Members.insert(F);
    for (const IrClass *C : M.Classes)
      if (C->Def)
        ClassByDef.emplace(C->Def, C);
    for (const IrFunction *F : M.Functions)
      verifyFunction(*F);
    if (M.Shared)
      verifySharedModule();
    return std::move(Problems);
  }

private:
  void problem(const IrFunction &F, const std::string &Message) {
    std::ostringstream OS;
    OS << "in function '" << F.Name << "': " << Message;
    Problems.push_back(OS.str());
  }

  void verifyFunction(const IrFunction &F) {
    if (F.Blocks.empty()) {
      problem(F, "function has no blocks");
      return;
    }
    if (F.NumParams > F.RegTypes.size())
      problem(F, "more parameters than registers");
    if (!M.Normalized && F.RetTypes.size() != 1)
      problem(F, "pre-normalization functions return exactly one value");
    std::set<const IrBlock *> Owned(F.Blocks.begin(), F.Blocks.end());
    for (const IrBlock *B : F.Blocks) {
      if (B->Instrs.empty()) {
        problem(F, "block b" + std::to_string(B->id()) + " is empty");
        continue;
      }
      for (size_t I = 0; I != B->Instrs.size(); ++I) {
        const IrInstr *Instr = B->Instrs[I];
        bool Last = I + 1 == B->Instrs.size();
        if (isTerminator(Instr->Op) != Last)
          problem(F, "terminator placement wrong in block b" +
                         std::to_string(B->id()));
        verifyInstr(F, *Instr);
      }
      const IrInstr *T = B->Instrs.back();
      if (T->Op == Opcode::Br && (!B->Succ0 || B->Succ1))
        problem(F, "br must have exactly one successor");
      if (T->Op == Opcode::CondBr && (!B->Succ0 || !B->Succ1))
        problem(F, "cond.br must have two successors");
      if ((T->Op == Opcode::Ret || T->Op == Opcode::Trap) &&
          (B->Succ0 || B->Succ1))
        problem(F, "ret/trap blocks cannot have successors");
      if (B->Succ0 && !Owned.count(B->Succ0))
        problem(F, "successor block not owned by function");
      if (B->Succ1 && !Owned.count(B->Succ1))
        problem(F, "successor block not owned by function");
    }
    if (M.Monomorphized && !F.TypeParams.empty())
      problem(F, "type parameters remain after monomorphization");
    for (size_t R = 0; R != F.RegTypes.size(); ++R) {
      const Type *T = F.RegTypes[R];
      if (!T) {
        problem(F, "register %" + std::to_string(R) + " has no type");
        continue;
      }
      if (M.Monomorphized && T->isPoly())
        problem(F, "polymorphic register type remains after "
                   "monomorphization: " +
                       T->toString());
      if (M.Normalized &&
          (T->kind() == TypeKind::Tuple || containsTuple(T)))
        problem(F, "tuple-typed register remains after normalization: " +
                       T->toString());
      if (M.Normalized && T->isVoid())
        problem(F, "void-typed register remains after normalization");
    }
  }

  void verifyInstr(const IrFunction &F, const IrInstr &I) {
    for (Reg R : I.Args)
      if (R >= F.RegTypes.size())
        problem(F, "operand register out of range");
    for (Reg R : I.Dsts)
      if (R >= F.RegTypes.size())
        problem(F, "destination register out of range");
    if (M.Normalized) {
      if (I.Op == Opcode::TupleCreate || I.Op == Opcode::TupleGet)
        problem(F, "tuple instruction remains after normalization");
    }
    if (M.Monomorphized && !I.TypeArgs.empty())
      problem(F, "type arguments remain after monomorphization");
    if ((I.Op == Opcode::CallFunc || I.Op == Opcode::MakeClosure) &&
        !I.Callee)
      problem(F, "call/closure without a callee");
    if (!M.Normalized && !I.Dsts.empty() && I.Dsts.size() != 1)
      problem(F, "multi-result instruction before normalization");
    // Post-normalization calling conventions are concrete scalars, so
    // direct calls must match their callee exactly — and once sharing
    // has redirected callees to representatives, kind-compatibility is
    // the invariant that keeps merged bodies GC- and ABI-safe.
    if (M.Normalized && I.Op == Opcode::CallFunc && I.Callee) {
      const IrFunction &C = *I.Callee;
      if (I.Args.size() != C.NumParams)
        problem(F, "direct call arity mismatch with callee '" + C.Name +
                       "'");
      if (I.Dsts.size() != C.RetTypes.size())
        problem(F, "direct call result count mismatch with callee '" +
                       C.Name + "'");
      for (size_t K = 0; K != I.Args.size() && K < C.NumParams; ++K)
        if (I.Args[K] < F.RegTypes.size() &&
            regKindOf(F.RegTypes[I.Args[K]]) != regKindOf(C.RegTypes[K]))
          problem(F, "direct call argument " + std::to_string(K) +
                         " slot kind mismatch with callee '" + C.Name +
                         "'");
      for (size_t K = 0; K != I.Dsts.size() && K < C.RetTypes.size(); ++K)
        if (I.Dsts[K] < F.RegTypes.size() &&
            regKindOf(F.RegTypes[I.Dsts[K]]) != regKindOf(C.RetTypes[K]))
          problem(F, "direct call result " + std::to_string(K) +
                         " slot kind mismatch with callee '" + C.Name +
                         "'");
    }
    if (M.Normalized && I.Op == Opcode::MakeClosure && I.Callee &&
        I.Args.size() > I.Callee->NumParams)
      problem(F, "closure binds more values than callee '" +
                     I.Callee->Name + "' has parameters");
    // Allocation/field shapes the scalar-replacement rewrites rely on:
    // post-mono every NewObject names a module class and every field
    // access indexes inside that class's (current) layout — DeadFields
    // renumbers layouts and accesses together, and the escape pass
    // resolves layouts through the same mapping.
    if (M.Monomorphized && I.Op == Opcode::NewObject &&
        !resolveClass(I.TypeOperand))
      problem(F, "new.object of a type that is not a module class");
    if (M.Monomorphized &&
        (I.Op == Opcode::FieldGet || I.Op == Opcode::FieldSet)) {
      size_t Wanted = I.Op == Opcode::FieldGet ? 1 : 2;
      if (I.Args.size() != Wanted)
        problem(F, "field access operand count wrong");
      if (const IrClass *C = resolveClass(I.TypeOperand)) {
        if (I.Index < 0 || (size_t)I.Index >= C->Fields.size())
          problem(F, "field index out of range for class '" + C->Name +
                         "'");
      } else {
        problem(F, "field access on a type that is not a module class");
      }
    }
    if (I.Op == Opcode::NullCheck &&
        (I.Args.size() != 1 || !I.Dsts.empty()))
      problem(F, "null.check takes one operand and produces nothing");
    // SSA form never leaves the optimizer's sandwich: a phi reaching
    // the interpreter, BcPrepare, or the emitter would be executed as
    // an unknown opcode.
    if (I.Op == Opcode::Phi)
      problem(F, "phi instruction outside the SSA sandwich");
    // Post-norm an indirect call's callee slot must be a closure-kind
    // register (flattened calls become CallFunc and leave this form).
    if (M.Normalized && I.Op == Opcode::CallIndirect) {
      if (I.Args.empty())
        problem(F, "indirect call without a callee operand");
      else if (I.Args[0] < F.RegTypes.size() &&
               regKindOf(F.RegTypes[I.Args[0]]) != RegKind::Closure)
        problem(F, "indirect call through a non-closure register");
    }
    if (M.Shared && (I.Op == Opcode::CallFunc ||
                     I.Op == Opcode::MakeClosure) &&
        I.Callee && !Members.count(I.Callee))
      problem(F, "callee '" + I.Callee->Name +
                     "' dropped from the shared module (redirect to a "
                     "representative missed it)");
  }

  /// Shared-module global invariants: every vtable entry and entry
  /// point survived compaction, and function ids are table positions
  /// (the emitter indexes bytecode functions by id).
  void verifySharedModule() {
    for (size_t I = 0; I != M.Functions.size(); ++I)
      if (M.Functions[I]->id() != I)
        problem(*M.Functions[I],
                "function id is not its table position after sharing");
    for (const IrClass *C : M.Classes)
      for (const IrFunction *Entry : C->VTable)
        if (Entry && !Members.count(Entry))
          Problems.push_back("class '" + C->Name +
                             "' vtable entry dropped from the shared "
                             "module");
    if (M.Main && !Members.count(M.Main))
      Problems.push_back("main dropped from the shared module");
    if (M.Init && !Members.count(M.Init))
      Problems.push_back("$init dropped from the shared module");
  }

  const IrClass *resolveClass(const Type *T) const {
    auto *CT = dyn_cast_or_null<ClassType>(const_cast<Type *>(T));
    if (!CT)
      return nullptr;
    auto It = ClassByDef.find(CT->def());
    return It == ClassByDef.end() ? nullptr : It->second;
  }

  const IrModule &M;
  std::set<const IrFunction *> Members;
  std::map<const ClassDef *, const IrClass *> ClassByDef;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> virgil::verifyModule(const IrModule &M) {
  Verifier V(M);
  return V.run();
}

namespace {

/// Strict-SSA checker. Self-contained (simple iterative bitvector
/// dominators) so ir/ keeps no dependency on the ssa/ subsystem's
/// tree; this only runs in Debug and fuzz builds.
class SsaChecker {
public:
  SsaChecker(const IrModule &M, const IrFunction &F) : M(M), F(F) {}

  std::vector<std::string> run() {
    (void)M;
    size_t N = F.Blocks.size();
    if (N == 0)
      return std::move(Problems);
    for (size_t I = 0; I != N; ++I)
      Idx[F.Blocks[I]] = I;

    // Structural predecessor edges in the sandwich's canonical order:
    // predecessors by block position, Succ0 edge before Succ1.
    Preds.assign(N, {});
    for (size_t I = 0; I != N; ++I) {
      const IrBlock *B = F.Blocks[I];
      if (B->Succ0)
        Preds[Idx[B->Succ0]].push_back({I, 0});
      if (B->Succ1)
        Preds[Idx[B->Succ1]].push_back({I, 1});
    }

    computeReachability();
    computeDominators();
    checkSingleAssignment();
    checkPhiShape();
    checkDefsDominateUses();
    return std::move(Problems);
  }

private:
  struct Edge {
    size_t Pred;
    int SuccIdx;
  };

  void problem(const std::string &Message) {
    Problems.push_back("in function '" + F.Name + "': " + Message);
  }

  void computeReachability() {
    size_t N = F.Blocks.size();
    Reach.assign(N, 0);
    std::vector<size_t> Work{0};
    Reach[0] = 1;
    while (!Work.empty()) {
      const IrBlock *B = F.Blocks[Work.back()];
      Work.pop_back();
      for (const IrBlock *S : {B->Succ0, B->Succ1})
        if (S && !Reach[Idx[S]]) {
          Reach[Idx[S]] = 1;
          Work.push_back(Idx[S]);
        }
    }
  }

  void computeDominators() {
    size_t N = F.Blocks.size();
    Dom.assign(N, std::vector<bool>(N, true));
    Dom[0].assign(N, false);
    Dom[0][0] = true;
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (size_t I = 1; I < N; ++I) {
        if (!Reach[I])
          continue;
        std::vector<bool> New(N, true);
        for (const Edge &E : Preds[I])
          if (Reach[E.Pred])
            for (size_t J = 0; J != N; ++J)
              New[J] = New[J] && Dom[E.Pred][J];
        New[I] = true;
        if (New != Dom[I]) {
          Dom[I] = std::move(New);
          Changed = true;
        }
      }
    }
  }

  void checkSingleAssignment() {
    size_t R = F.RegTypes.size();
    DefBlock.assign(R, -1);
    DefPos.assign(R, 0);
    std::vector<int> Count(R, 0);
    for (Reg P = 0; P != F.NumParams && P < R; ++P)
      ++Count[P];
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      if (!Reach[BI])
        continue;
      const IrBlock *B = F.Blocks[BI];
      for (size_t I = 0; I != B->Instrs.size(); ++I)
        for (Reg D : B->Instrs[I]->Dsts) {
          if (D >= R)
            continue;
          if (++Count[D] > 1)
            problem("register %" + std::to_string(D) +
                    " assigned more than once in SSA form");
          DefBlock[D] = (int)BI;
          DefPos[D] = I;
        }
    }
  }

  void checkPhiShape() {
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      const IrBlock *B = F.Blocks[BI];
      bool SeenNonPhi = false;
      for (const IrInstr *I : B->Instrs) {
        if (I->Op != Opcode::Phi) {
          SeenNonPhi = true;
          continue;
        }
        if (SeenNonPhi)
          problem("phi after a non-phi in block b" +
                  std::to_string(B->id()));
        if (I->Dsts.size() != 1)
          problem("phi must define exactly one register");
        if (I->Args.size() != Preds[BI].size())
          problem("phi arity " + std::to_string(I->Args.size()) +
                  " does not match predecessor count " +
                  std::to_string(Preds[BI].size()) + " in block b" +
                  std::to_string(B->id()));
      }
    }
  }

  void checkDefsDominateUses() {
    for (size_t BI = 0; BI != F.Blocks.size(); ++BI) {
      if (!Reach[BI])
        continue;
      const IrBlock *B = F.Blocks[BI];
      for (size_t I = 0; I != B->Instrs.size(); ++I) {
        const IrInstr *In = B->Instrs[I];
        if (In->Op == Opcode::Phi) {
          for (size_t P = 0; P != In->Args.size() && P < Preds[BI].size();
               ++P)
            checkUse(In->Args[P], Preds[BI][P].Pred, SIZE_MAX, true);
          continue;
        }
        for (Reg A : In->Args)
          checkUse(A, BI, I, false);
      }
    }
  }

  /// A use of \p R at (\p BI, \p Pos); phi-argument uses sit at the
  /// end of the predecessor block (Pos = SIZE_MAX).
  void checkUse(Reg R, size_t BI, size_t Pos, bool PhiUse) {
    if (R >= DefBlock.size() || DefBlock[R] < 0)
      return; // No definition: parameter or frame-default semantics.
    if (!Reach[BI])
      return;
    size_t DB = (size_t)DefBlock[R];
    bool Ok = DB == BI ? DefPos[R] < Pos : Dom[BI][DB];
    if (!Ok)
      problem("definition of %" + std::to_string(R) +
              " does not dominate its " +
              (PhiUse ? std::string("phi-edge use from block b")
                      : std::string("use in block b")) +
              std::to_string(F.Blocks[BI]->id()));
  }

  const IrModule &M;
  const IrFunction &F;
  std::map<const IrBlock *, size_t> Idx;
  std::vector<std::vector<Edge>> Preds;
  std::vector<char> Reach;
  std::vector<std::vector<bool>> Dom;
  std::vector<int> DefBlock;
  std::vector<size_t> DefPos;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> virgil::verifyFunctionSsa(const IrModule &M,
                                                   const IrFunction &F) {
  SsaChecker C(M, F);
  return C.run();
}
