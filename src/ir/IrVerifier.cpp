//===- ir/IrVerifier.cpp --------------------------------------------------===//

#include "ir/IrVerifier.h"

#include "support/Casting.h"

#include <set>
#include <sstream>

using namespace virgil;

namespace {

/// Does a type contain a tuple anywhere (normalization must remove
/// them all, including inside arrays and closures' static types)?
bool containsTuple(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Tuple:
    return true;
  case TypeKind::Array:
    return containsTuple(cast<ArrayType>(T)->elem());
  default:
    // Function types may still *spell* tuples after normalization (a
    // closure value's type is a single value); only direct tuple-typed
    // registers and array elements matter for representation.
    return false;
  }
}

class Verifier {
public:
  explicit Verifier(const IrModule &M) : M(M) {}

  std::vector<std::string> run() {
    for (const IrFunction *F : M.Functions)
      verifyFunction(*F);
    return std::move(Problems);
  }

private:
  void problem(const IrFunction &F, const std::string &Message) {
    std::ostringstream OS;
    OS << "in function '" << F.Name << "': " << Message;
    Problems.push_back(OS.str());
  }

  void verifyFunction(const IrFunction &F) {
    if (F.Blocks.empty()) {
      problem(F, "function has no blocks");
      return;
    }
    if (F.NumParams > F.RegTypes.size())
      problem(F, "more parameters than registers");
    if (!M.Normalized && F.RetTypes.size() != 1)
      problem(F, "pre-normalization functions return exactly one value");
    std::set<const IrBlock *> Owned(F.Blocks.begin(), F.Blocks.end());
    for (const IrBlock *B : F.Blocks) {
      if (B->Instrs.empty()) {
        problem(F, "block b" + std::to_string(B->id()) + " is empty");
        continue;
      }
      for (size_t I = 0; I != B->Instrs.size(); ++I) {
        const IrInstr *Instr = B->Instrs[I];
        bool Last = I + 1 == B->Instrs.size();
        if (isTerminator(Instr->Op) != Last)
          problem(F, "terminator placement wrong in block b" +
                         std::to_string(B->id()));
        verifyInstr(F, *Instr);
      }
      const IrInstr *T = B->Instrs.back();
      if (T->Op == Opcode::Br && (!B->Succ0 || B->Succ1))
        problem(F, "br must have exactly one successor");
      if (T->Op == Opcode::CondBr && (!B->Succ0 || !B->Succ1))
        problem(F, "cond.br must have two successors");
      if ((T->Op == Opcode::Ret || T->Op == Opcode::Trap) &&
          (B->Succ0 || B->Succ1))
        problem(F, "ret/trap blocks cannot have successors");
      if (B->Succ0 && !Owned.count(B->Succ0))
        problem(F, "successor block not owned by function");
      if (B->Succ1 && !Owned.count(B->Succ1))
        problem(F, "successor block not owned by function");
    }
    if (M.Monomorphized && !F.TypeParams.empty())
      problem(F, "type parameters remain after monomorphization");
    for (size_t R = 0; R != F.RegTypes.size(); ++R) {
      const Type *T = F.RegTypes[R];
      if (!T) {
        problem(F, "register %" + std::to_string(R) + " has no type");
        continue;
      }
      if (M.Monomorphized && T->isPoly())
        problem(F, "polymorphic register type remains after "
                   "monomorphization: " +
                       T->toString());
      if (M.Normalized &&
          (T->kind() == TypeKind::Tuple || containsTuple(T)))
        problem(F, "tuple-typed register remains after normalization: " +
                       T->toString());
      if (M.Normalized && T->isVoid())
        problem(F, "void-typed register remains after normalization");
    }
  }

  void verifyInstr(const IrFunction &F, const IrInstr &I) {
    for (Reg R : I.Args)
      if (R >= F.RegTypes.size())
        problem(F, "operand register out of range");
    for (Reg R : I.Dsts)
      if (R >= F.RegTypes.size())
        problem(F, "destination register out of range");
    if (M.Normalized) {
      if (I.Op == Opcode::TupleCreate || I.Op == Opcode::TupleGet)
        problem(F, "tuple instruction remains after normalization");
    }
    if (M.Monomorphized && !I.TypeArgs.empty())
      problem(F, "type arguments remain after monomorphization");
    if ((I.Op == Opcode::CallFunc || I.Op == Opcode::MakeClosure) &&
        !I.Callee)
      problem(F, "call/closure without a callee");
    if (!M.Normalized && !I.Dsts.empty() && I.Dsts.size() != 1)
      problem(F, "multi-result instruction before normalization");
  }

  const IrModule &M;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> virgil::verifyModule(const IrModule &M) {
  Verifier V(M);
  return V.run();
}
