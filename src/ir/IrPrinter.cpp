//===- ir/IrPrinter.cpp ---------------------------------------------------===//

#include "ir/IrPrinter.h"

#include <sstream>

using namespace virgil;

namespace {

void printInstr(std::ostringstream &OS, const IrInstr &I) {
  OS << "  ";
  if (!I.Dsts.empty()) {
    for (size_t K = 0; K != I.Dsts.size(); ++K) {
      if (K)
        OS << ", ";
      OS << '%' << I.Dsts[K];
    }
    OS << " = ";
  }
  OS << opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstByte:
  case Opcode::ConstBool:
    OS << ' ' << I.IntConst;
    break;
  case Opcode::ConstString:
    OS << " #" << I.Index;
    break;
  case Opcode::TupleGet:
  case Opcode::FieldGet:
  case Opcode::FieldSet:
  case Opcode::GlobalGet:
  case Opcode::GlobalSet:
  case Opcode::CallBuiltin:
    OS << " #" << I.Index;
    break;
  case Opcode::CallVirtual:
    OS << " slot=" << I.Index;
    break;
  case Opcode::Trap:
    OS << " (" << trapKindName((TrapKind)I.Index) << ')';
    break;
  default:
    break;
  }
  if (I.Callee)
    OS << " @" << I.Callee->Name;
  if (I.TypeOperand)
    OS << " <" << I.TypeOperand->toString() << '>';
  if (!I.TypeArgs.empty()) {
    OS << " [";
    for (size_t K = 0; K != I.TypeArgs.size(); ++K) {
      if (K)
        OS << ", ";
      OS << I.TypeArgs[K]->toString();
    }
    OS << ']';
  }
  for (Reg A : I.Args)
    OS << " %" << A;
  if (I.Ty)
    OS << "  : " << I.Ty->toString();
  OS << '\n';
}

} // namespace

std::string virgil::printFunction(const IrFunction &F) {
  std::ostringstream OS;
  OS << "func @" << F.Name;
  if (!F.TypeParams.empty()) {
    OS << '<';
    for (size_t I = 0; I != F.TypeParams.size(); ++I) {
      if (I)
        OS << ", ";
      OS << *F.TypeParams[I]->Name;
    }
    OS << '>';
  }
  OS << '(';
  for (uint32_t I = 0; I != F.NumParams; ++I) {
    if (I)
      OS << ", ";
    OS << '%' << I << ": " << F.RegTypes[I]->toString();
  }
  OS << ") -> (";
  for (size_t I = 0; I != F.RetTypes.size(); ++I) {
    if (I)
      OS << ", ";
    OS << F.RetTypes[I]->toString();
  }
  OS << ")\n";
  for (const IrBlock *B : F.Blocks) {
    OS << "b" << B->id() << ":";
    if (B->Succ0)
      OS << "  // -> b" << B->Succ0->id();
    if (B->Succ1)
      OS << ", b" << B->Succ1->id();
    OS << '\n';
    for (const IrInstr *I : B->Instrs)
      printInstr(OS, *I);
  }
  return OS.str();
}

std::string virgil::printModule(const IrModule &M) {
  std::ostringstream OS;
  for (const IrClass *C : M.Classes) {
    OS << "class #" << C->Id << ' ' << C->Name;
    if (C->Parent)
      OS << " extends #" << C->Parent->Id;
    OS << " {";
    for (size_t I = 0; I != C->Fields.size(); ++I) {
      if (I)
        OS << ';';
      OS << ' ' << C->Fields[I].Name << ": "
         << C->Fields[I].Ty->toString();
    }
    OS << " } vtable[";
    for (size_t I = 0; I != C->VTable.size(); ++I) {
      if (I)
        OS << ", ";
      OS << (C->VTable[I] ? C->VTable[I]->Name : std::string("<abstract>"));
    }
    OS << "]\n";
  }
  for (const IrGlobal &G : M.Globals)
    OS << "global #" << G.Index << ' ' << G.Name << ": "
       << G.Ty->toString() << '\n';
  for (const IrFunction *F : M.Functions)
    OS << printFunction(*F) << '\n';
  return OS.str();
}
