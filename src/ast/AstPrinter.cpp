//===- ast/AstPrinter.cpp -------------------------------------------------===//

#include "ast/AstPrinter.h"

#include <cassert>
#include <sstream>

using namespace virgil;

namespace {

class Printer {
public:
  explicit Printer(bool WithTypes) : WithTypes(WithTypes) {}

  std::string str() { return OS.str(); }

  void printTypeRef(const TypeRef *T) {
    if (!T) {
      OS << "<null-type>";
      return;
    }
    switch (T->kind()) {
    case TypeRefKind::Named: {
      const auto *N = cast<NamedTypeRef>(T);
      OS << *N->Name;
      if (!N->Args.empty()) {
        OS << '<';
        for (size_t I = 0; I != N->Args.size(); ++I) {
          if (I)
            OS << ", ";
          printTypeRef(N->Args[I]);
        }
        OS << '>';
      }
      return;
    }
    case TypeRefKind::Tuple: {
      const auto *Tu = cast<TupleTypeRef>(T);
      OS << '(';
      for (size_t I = 0; I != Tu->Elems.size(); ++I) {
        if (I)
          OS << ", ";
        printTypeRef(Tu->Elems[I]);
      }
      OS << ')';
      return;
    }
    case TypeRefKind::Func: {
      const auto *F = cast<FuncTypeRef>(T);
      printTypeRef(F->Param);
      OS << " -> ";
      printTypeRef(F->Ret);
      return;
    }
    }
  }

  void printExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::TypeLit:
      OS << '(';
      printTypeRef(cast<TypeLitExpr>(E)->Ref);
      OS << ')';
      return;
    case ExprKind::IntLit:
      OS << cast<IntLitExpr>(E)->Value;
      return;
    case ExprKind::ByteLit: {
      uint8_t B = cast<ByteLitExpr>(E)->Value;
      if (B >= 32 && B < 127)
        OS << '\'' << (char)B << '\'';
      else
        OS << "'\\" << (int)B << '\'';
      return;
    }
    case ExprKind::BoolLit:
      OS << (cast<BoolLitExpr>(E)->Value ? "true" : "false");
      return;
    case ExprKind::StringLit:
      OS << '"' << cast<StringLitExpr>(E)->Value << '"';
      return;
    case ExprKind::NullLit:
      OS << "null";
      return;
    case ExprKind::This:
      OS << "this";
      return;
    case ExprKind::TupleLit: {
      const auto *T = cast<TupleLitExpr>(E);
      OS << '(';
      for (size_t I = 0; I != T->Elems.size(); ++I) {
        if (I)
          OS << ", ";
        printExpr(T->Elems[I]);
      }
      OS << ')';
      return;
    }
    case ExprKind::Name: {
      const auto *N = cast<NameExpr>(E);
      OS << *N->Name;
      printTypeArgs(N->TypeArgs);
      return;
    }
    case ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      printExpr(M->Base);
      OS << '.';
      switch (M->Sel) {
      case MemberSel::Name:
        OS << *M->Name;
        break;
      case MemberSel::TupleIndex:
        OS << M->TupleIndex;
        break;
      case MemberSel::Op:
        OS << opName(M->Op);
        break;
      }
      printTypeArgs(M->TypeArgs);
      return;
    }
    case ExprKind::IndexOp: {
      const auto *I = cast<IndexExpr>(E);
      printExpr(I->Base);
      OS << '[';
      printExpr(I->Index);
      OS << ']';
      return;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      printExpr(C->Callee);
      OS << '(';
      for (size_t I = 0; I != C->Args.size(); ++I) {
        if (I)
          OS << ", ";
        printExpr(C->Args[I]);
      }
      OS << ')';
      return;
    }
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      OS << '(';
      printExpr(B->Lhs);
      OS << ' ' << binName(B->Op) << ' ';
      printExpr(B->Rhs);
      OS << ')';
      return;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      OS << (U->Op == UnOp::Neg ? '-' : '!');
      printExpr(U->Operand);
      return;
    }
    case ExprKind::Ternary: {
      const auto *T = cast<TernaryExpr>(E);
      OS << '(';
      printExpr(T->Cond);
      OS << " ? ";
      printExpr(T->Then);
      OS << " : ";
      printExpr(T->Else);
      OS << ')';
      return;
    }
    }
  }

  void printStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Block: {
      line() << "{";
      ++Indent;
      for (const Stmt *Inner : cast<BlockStmt>(S)->Stmts)
        printStmt(Inner);
      --Indent;
      line() << "}";
      return;
    }
    case StmtKind::LocalDecl: {
      const auto *D = cast<LocalDeclStmt>(S);
      auto &L = line();
      for (size_t I = 0; I != D->Vars.size(); ++I) {
        const LocalVar *V = D->Vars[I];
        L << (I == 0 ? (V->IsMutable ? "var " : "def ") : ", ");
        L << *V->Name;
        if (V->DeclaredType) {
          L << ": ";
          printTypeRef(V->DeclaredType);
        }
        if (V->Init) {
          L << " = ";
          printExpr(V->Init);
        }
      }
      L << ";";
      maybeType(D->Vars.empty() ? nullptr : D->Vars[0]->Ty);
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      auto &L = line();
      L << "if (";
      printExpr(I->Cond);
      L << ")";
      ++Indent;
      printStmt(I->Then);
      --Indent;
      if (I->Else) {
        line() << "else";
        ++Indent;
        printStmt(I->Else);
        --Indent;
      }
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      auto &L = line();
      L << "while (";
      printExpr(W->Cond);
      L << ")";
      ++Indent;
      printStmt(W->Body);
      --Indent;
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      auto &L = line();
      L << "for (" << *F->Var->Name << " = ";
      printExpr(F->Var->Init);
      L << "; ";
      if (F->Cond)
        printExpr(F->Cond);
      L << "; ";
      if (F->Update)
        printExpr(F->Update);
      L << ")";
      ++Indent;
      printStmt(F->Body);
      --Indent;
      return;
    }
    case StmtKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      auto &L = line();
      L << "return";
      if (R->Value) {
        L << ' ';
        printExpr(R->Value);
      }
      L << ";";
      return;
    }
    case StmtKind::Break:
      line() << "break;";
      return;
    case StmtKind::Continue:
      line() << "continue;";
      return;
    case StmtKind::ExprEval: {
      auto &L = line();
      printExpr(cast<ExprStmt>(S)->E);
      L << ";";
      maybeType(cast<ExprStmt>(S)->E->Ty);
      return;
    }
    case StmtKind::Empty:
      line() << ";";
      return;
    }
  }

  void printMethod(const MethodDecl *M) {
    auto &L = line();
    if (M->IsPrivate)
      L << "private ";
    if (M->IsCtor)
      L << "new(";
    else {
      L << "def " << *M->Name;
      if (!M->TypeParamNames.empty()) {
        L << '<';
        for (size_t I = 0; I != M->TypeParamNames.size(); ++I) {
          if (I)
            L << ", ";
          L << *M->TypeParamNames[I];
        }
        L << '>';
      }
      L << '(';
    }
    for (size_t I = 0; I != M->Params.size(); ++I) {
      if (I)
        L << ", ";
      L << *M->Params[I]->Name;
      if (M->Params[I]->DeclaredType) {
        L << ": ";
        printTypeRef(M->Params[I]->DeclaredType);
      }
    }
    L << ')';
    if (M->HasSuper) {
      L << " super(";
      for (size_t I = 0; I != M->SuperArgs.size(); ++I) {
        if (I)
          L << ", ";
        printExpr(M->SuperArgs[I]);
      }
      L << ')';
    }
    if (M->RetTypeRef) {
      L << " -> ";
      printTypeRef(M->RetTypeRef);
    }
    if (!M->Body) {
      L << ';';
      return;
    }
    ++Indent;
    printStmt(M->Body);
    --Indent;
  }

  void printModule(const Module &M) {
    for (const ClassDecl *C : M.Classes) {
      auto &L = line();
      L << "class " << *C->Name;
      if (!C->TypeParamNames.empty()) {
        L << '<';
        for (size_t I = 0; I != C->TypeParamNames.size(); ++I) {
          if (I)
            L << ", ";
          L << *C->TypeParamNames[I];
        }
        L << '>';
      }
      if (C->ParentRef) {
        L << " extends ";
        printTypeRef(C->ParentRef);
      }
      L << " {";
      ++Indent;
      for (const FieldDecl *F : C->Fields) {
        auto &FL = line();
        FL << (F->IsMutable ? "var " : "def ") << *F->Name;
        if (F->DeclaredType) {
          FL << ": ";
          printTypeRef(F->DeclaredType);
        }
        if (F->Init) {
          FL << " = ";
          printExpr(F->Init);
        }
        FL << ';';
      }
      if (C->Ctor && C->Ctor->Body)
        printMethod(C->Ctor);
      for (const MethodDecl *Me : C->Methods)
        printMethod(Me);
      --Indent;
      line() << "}";
    }
    for (const GlobalDecl *G : M.Globals) {
      auto &L = line();
      L << (G->IsMutable ? "var " : "def ") << *G->Name;
      if (G->DeclaredType) {
        L << ": ";
        printTypeRef(G->DeclaredType);
      }
      if (G->Init) {
        L << " = ";
        printExpr(G->Init);
      }
      L << ';';
    }
    for (const MethodDecl *F : M.Funcs)
      printMethod(F);
  }

private:
  std::ostringstream &line() {
    OS << '\n';
    for (int I = 0; I < Indent; ++I)
      OS << "  ";
    return OS;
  }

  void maybeType(const Type *T) {
    if (WithTypes && T)
      OS << "  // : " << T->toString();
  }

  void printTypeArgs(const std::vector<TypeRef *> &Args) {
    if (Args.empty())
      return;
    OS << '<';
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        OS << ", ";
      printTypeRef(Args[I]);
    }
    OS << '>';
  }

  static const char *opName(OpSel Op) {
    switch (Op) {
    case OpSel::Eq:
      return "==";
    case OpSel::Ne:
      return "!=";
    case OpSel::Cast:
      return "!";
    case OpSel::Query:
      return "?";
    case OpSel::Add:
      return "+";
    case OpSel::Sub:
      return "-";
    case OpSel::Mul:
      return "*";
    case OpSel::Div:
      return "/";
    case OpSel::Mod:
      return "%";
    case OpSel::Lt:
      return "<";
    case OpSel::Le:
      return "<=";
    case OpSel::Gt:
      return ">";
    case OpSel::Ge:
      return ">=";
    }
    return "?op?";
  }

  static const char *binName(BinOp Op) {
    switch (Op) {
    case BinOp::Add:
      return "+";
    case BinOp::Sub:
      return "-";
    case BinOp::Mul:
      return "*";
    case BinOp::Div:
      return "/";
    case BinOp::Mod:
      return "%";
    case BinOp::Eq:
      return "==";
    case BinOp::Ne:
      return "!=";
    case BinOp::Lt:
      return "<";
    case BinOp::Le:
      return "<=";
    case BinOp::Gt:
      return ">";
    case BinOp::Ge:
      return ">=";
    case BinOp::And:
      return "&&";
    case BinOp::Or:
      return "||";
    case BinOp::Assign:
      return "=";
    }
    return "?bin?";
  }

  std::ostringstream OS;
  int Indent = 0;
  bool WithTypes;
};

} // namespace

std::string virgil::printModule(const Module &M, bool WithTypes) {
  Printer P(WithTypes);
  P.printModule(M);
  return P.str();
}

std::string virgil::printExpr(const Expr *E) {
  Printer P(false);
  P.printExpr(E);
  return P.str();
}
