//===- ast/AstPrinter.h - Debug rendering of the AST ------------*- C++ -*-===//
///
/// \file
/// Renders a parsed (optionally checked) module back to a readable
/// source-like form, used by tests and the `virgilc --dump-ast` mode.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_AST_ASTPRINTER_H
#define VIRGIL_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace virgil {

/// Pretty-prints the module. If types have been checked, expression
/// types are included as comments when \p WithTypes is set.
std::string printModule(const Module &M, bool WithTypes = false);

/// Pretty-prints one expression.
std::string printExpr(const Expr *E);

} // namespace virgil

#endif // VIRGIL_AST_ASTPRINTER_H
