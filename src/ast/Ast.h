//===- ast/Ast.h - Abstract syntax for the Virgil core ----------*- C++ -*-===//
///
/// \file
/// AST node definitions. Nodes are arena-allocated by the parser and
/// annotated in place by semantic analysis (resolved symbols in RefInfo,
/// checked types in Expr::Ty). The grammar covered is exactly the
/// language subset the paper's examples use; see DESIGN.md §3.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_AST_AST_H
#define VIRGIL_AST_AST_H

#include "support/Casting.h"
#include "support/Source.h"
#include "support/StringInterner.h"
#include "types/Type.h"

#include <vector>

namespace virgil {

class Expr;
class Stmt;
class TypeRef;
struct ClassDecl;
struct MethodDecl;
struct FieldDecl;
struct GlobalDecl;
struct LocalVar;

//===----------------------------------------------------------------------===//
// Type references (syntactic types, resolved by sema)
//===----------------------------------------------------------------------===//

enum class TypeRefKind : uint8_t { Named, Tuple, Func };

class TypeRef {
public:
  TypeRefKind kind() const { return Kind; }
  SourceLoc Loc;
  /// The resolved semantic type; set by sema.
  Type *Resolved = nullptr;

protected:
  TypeRef(TypeRefKind Kind, SourceLoc Loc) : Loc(Loc), Kind(Kind) {}

private:
  TypeRefKind Kind;
};

/// `int`, `List<byte>`, `Array<T>`, `T` — any identifier with optional
/// type arguments. Resolution decides whether it names a primitive, a
/// class, Array, or a type parameter in scope.
class NamedTypeRef : public TypeRef {
public:
  NamedTypeRef(SourceLoc Loc, Ident Name, std::vector<TypeRef *> Args)
      : TypeRef(TypeRefKind::Named, Loc), Name(Name), Args(std::move(Args)) {}

  Ident Name;
  std::vector<TypeRef *> Args;

  static bool classof(const TypeRef *T) {
    return T->kind() == TypeRefKind::Named;
  }
};

/// `(A, B, ...)` — also the spellings `()` and `(A)` which resolve to
/// void and A per the degenerate rules.
class TupleTypeRef : public TypeRef {
public:
  TupleTypeRef(SourceLoc Loc, std::vector<TypeRef *> Elems)
      : TypeRef(TypeRefKind::Tuple, Loc), Elems(std::move(Elems)) {}

  std::vector<TypeRef *> Elems;

  static bool classof(const TypeRef *T) {
    return T->kind() == TypeRefKind::Tuple;
  }
};

/// `A -> B`, right-associative.
class FuncTypeRef : public TypeRef {
public:
  FuncTypeRef(SourceLoc Loc, TypeRef *Param, TypeRef *Ret)
      : TypeRef(TypeRefKind::Func, Loc), Param(Param), Ret(Ret) {}

  TypeRef *Param;
  TypeRef *Ret;

  static bool classof(const TypeRef *T) {
    return T->kind() == TypeRefKind::Func;
  }
};

//===----------------------------------------------------------------------===//
// Resolved references
//===----------------------------------------------------------------------===//

/// What a name/member expression resolved to.
enum class RefKind : uint8_t {
  None,
  Local,         ///< A local variable or parameter (Decl = LocalVar*).
  Global,        ///< A top-level var/def (Decl = GlobalDecl*).
  Func,          ///< A top-level function (Decl = MethodDecl*).
  TypeName,      ///< A bare type in expression position (e.g. `A` in A.m).
  Field,         ///< expr.field (Decl = FieldDecl*, BaseType = class).
  MethodBound,   ///< expr.m — closure bound to the receiver.
  MethodUnbound, ///< Class.m — receiver becomes the first parameter.
  Ctor,          ///< Class.new.
  ArrayNew,      ///< Array<T>.new.
  ArrayLength,   ///< expr.length on an array.
  TupleIndex,    ///< expr.K on a tuple (Index = K).
  OpFunc,        ///< Type.op — ==, !=, !, ?, +, -, *, /, %, <, <=, >, >=.
  Builtin,       ///< System.xxx (Index = BuiltinKind).
  SystemName,    ///< The bare `System` component.
};

/// Operator selector for RefKind::OpFunc.
enum class OpSel : uint8_t {
  Eq,
  Ne,
  Cast,
  Query,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Builtin System functions. `puts` and friends write to a captured
/// output buffer; `ticks` reads a monotonic counter; `error` traps.
enum class BuiltinKind : uint8_t { Puts, Puti, Putc, Ln, Ticks, Error };

struct RefInfo {
  RefKind Kind = RefKind::None;
  void *Decl = nullptr;
  /// Receiver/base type: the class type for Field/Method*, the T in T.op.
  Type *BaseType = nullptr;
  /// Resolved type arguments (explicit or inferred).
  std::vector<Type *> TypeArgs;
  int Index = -1;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  TypeLit,
  IntLit,
  ByteLit,
  BoolLit,
  StringLit,
  NullLit,
  TupleLit,
  Name,
  Member,
  IndexOp,
  Call,
  Binary,
  Unary,
  Ternary,
  This,
};

enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Assign,
};

enum class UnOp : uint8_t { Neg, Not };

class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc Loc;
  /// The checked type; set by sema.
  Type *Ty = nullptr;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Loc(Loc), Kind(Kind) {}

private:
  ExprKind Kind;
};

class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }
};

class ByteLitExpr : public Expr {
public:
  ByteLitExpr(SourceLoc Loc, uint8_t Value)
      : Expr(ExprKind::ByteLit, Loc), Value(Value) {}
  uint8_t Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::ByteLit; }
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(SourceLoc Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }
};

class StringLitExpr : public Expr {
public:
  StringLitExpr(SourceLoc Loc, std::string Value)
      : Expr(ExprKind::StringLit, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLit;
  }
};

class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(ExprKind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::NullLit; }
};

/// `(e0, e1, ...)`; zero elements is the void value `()`, one element is
/// just a parenthesized expression.
class TupleLitExpr : public Expr {
public:
  TupleLitExpr(SourceLoc Loc, std::vector<Expr *> Elems)
      : Expr(ExprKind::TupleLit, Loc), Elems(std::move(Elems)) {}
  std::vector<Expr *> Elems;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::TupleLit;
  }
};

/// A bare identifier, possibly with explicit type arguments `f<int>`.
class NameExpr : public Expr {
public:
  NameExpr(SourceLoc Loc, Ident Name, std::vector<TypeRef *> TypeArgs)
      : Expr(ExprKind::Name, Loc), Name(Name),
        TypeArgs(std::move(TypeArgs)) {}
  Ident Name;
  std::vector<TypeRef *> TypeArgs;
  RefInfo Ref;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Name; }
};

/// A parenthesized *type* in expression position, e.g. the base of
/// `((int, int) -> int).?(x)`. Only legal as the base of an operator
/// member; anywhere else the checker rejects it.
class TypeLitExpr : public Expr {
public:
  TypeLitExpr(SourceLoc Loc, TypeRef *Ref)
      : Expr(ExprKind::TypeLit, Loc), Ref(Ref) {}
  TypeRef *Ref;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::TypeLit;
  }
};

/// What follows the `.` in a member expression.
enum class MemberSel : uint8_t { Name, TupleIndex, Op };

/// `base.name`, `base.0`, `base.==`, `base.!<T>`, `base.new`, ...
class MemberExpr : public Expr {
public:
  MemberExpr(SourceLoc Loc, Expr *Base)
      : Expr(ExprKind::Member, Loc), Base(Base) {}
  Expr *Base;
  MemberSel Sel = MemberSel::Name;
  Ident Name = nullptr;    ///< For Sel == Name (includes `new`, `length`).
  int TupleIndex = -1;     ///< For Sel == TupleIndex.
  OpSel Op = OpSel::Eq;    ///< For Sel == Op.
  std::vector<TypeRef *> TypeArgs;
  RefInfo Ref;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Member; }
};

/// `base[index]` — array element access.
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Index)
      : Expr(ExprKind::IndexOp, Loc), Base(Base), Index(Index) {}
  Expr *Base;
  Expr *Index;
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IndexOp;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  Expr *Callee;
  /// Syntactic argument list; semantically a single tuple.
  std::vector<Expr *> Args;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinOp Op;
  Expr *Lhs;
  Expr *Rhs;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnOp Op, Expr *Operand)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}
  UnOp Op;
  Expr *Operand;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }
};

/// `c ? a : b` (used by the paper's examples, e.g. (p3)).
class TernaryExpr : public Expr {
public:
  TernaryExpr(SourceLoc Loc, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(ExprKind::Ternary, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *Cond;
  Expr *Then;
  Expr *Else;
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Ternary; }
};

class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLoc Loc) : Expr(ExprKind::This, Loc) {}
  /// The enclosing class's self type; set by sema.
  static bool classof(const Expr *E) { return E->kind() == ExprKind::This; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  LocalDecl,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  ExprEval,
  Empty,
};

/// A local variable, parameter, or for-loop induction variable.
struct LocalVar {
  SourceLoc Loc;
  Ident Name = nullptr;
  bool IsMutable = true; ///< var vs def.
  TypeRef *DeclaredType = nullptr;
  Expr *Init = nullptr;
  /// Checked type (sema) and virtual register (lowering).
  Type *Ty = nullptr;
  int Reg = -1;
};

class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc Loc;

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Loc(Loc), Kind(Kind) {}

private:
  StmtKind Kind;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<Stmt *> Stmts)
      : Stmt(StmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
  std::vector<Stmt *> Stmts;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }
};

class LocalDeclStmt : public Stmt {
public:
  LocalDeclStmt(SourceLoc Loc, std::vector<LocalVar *> Vars)
      : Stmt(StmtKind::LocalDecl, Loc), Vars(std::move(Vars)) {}
  std::vector<LocalVar *> Vars;
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::LocalDecl;
  }
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  Expr *Cond;
  Stmt *Body;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }
};

/// `for (i = init; cond; update) body` — binds a fresh induction
/// variable `i` (paper (d7) style).
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, LocalVar *Var, Expr *Cond, Expr *Update, Stmt *Body)
      : Stmt(StmtKind::For, Loc), Var(Var), Cond(Cond), Update(Update),
        Body(Body) {}
  LocalVar *Var; ///< Var->Init is the init expression.
  Expr *Cond;    ///< May be null (infinite loop).
  Expr *Update;  ///< May be null.
  Stmt *Body;
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}
  Expr *Value; ///< May be null (returns void).
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, Expr *E) : Stmt(StmtKind::ExprEval, Loc), E(E) {}
  Expr *E;
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ExprEval;
  }
};

class EmptyStmt : public Stmt {
public:
  explicit EmptyStmt(SourceLoc Loc) : Stmt(StmtKind::Empty, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Empty; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct FieldDecl {
  SourceLoc Loc;
  Ident Name = nullptr;
  bool IsMutable = true; ///< var vs def.
  TypeRef *DeclaredType = nullptr;
  Expr *Init = nullptr; ///< Optional initializer.
  /// Sema results.
  ClassDecl *Owner = nullptr;
  Type *Ty = nullptr;
  /// Field index within the full (inherited-first) object layout.
  int Index = -1;
};

/// A method, constructor, or top-level function. Constructors have
/// IsCtor set and Name == "new"; top-level functions have Owner == null.
struct MethodDecl {
  SourceLoc Loc;
  Ident Name = nullptr;
  bool IsPrivate = false;
  bool IsCtor = false;
  std::vector<Ident> TypeParamNames;
  std::vector<LocalVar *> Params;
  TypeRef *RetTypeRef = nullptr; ///< Null means void.
  BlockStmt *Body = nullptr;     ///< Null for abstract methods (n2).
  /// Constructor-only: explicit `super(args)` clause.
  bool HasSuper = false;
  std::vector<Expr *> SuperArgs;
  /// Constructor-only: parameters that auto-assign the same-named field
  /// (those declared without a type). Filled by sema.
  std::vector<FieldDecl *> AutoAssign;
  /// Sema results.
  ClassDecl *Owner = nullptr;
  std::vector<TypeParamDef *> TypeParams; ///< Own params (not class's).
  Type *RetTy = nullptr;
  /// The collapsed function type Tp -> Tr where Tp tuples the params
  /// (receiver excluded).
  Type *FuncTy = nullptr;
  /// Virtual dispatch slot within the owner's vtable; -1 if non-virtual.
  int Slot = -1;
  /// The method this one overrides, if any.
  MethodDecl *Overridden = nullptr;
};

struct GlobalDecl {
  SourceLoc Loc;
  Ident Name = nullptr;
  bool IsMutable = true;
  TypeRef *DeclaredType = nullptr;
  Expr *Init = nullptr;
  Type *Ty = nullptr;
  int Index = -1;
};

struct ClassDecl {
  SourceLoc Loc;
  Ident Name = nullptr;
  std::vector<Ident> TypeParamNames;
  /// Compact constructor-parameter fields: `class C(x: int) {}`.
  std::vector<FieldDecl *> CompactFields;
  NamedTypeRef *ParentRef = nullptr; ///< extends clause, may be null.
  std::vector<FieldDecl *> Fields;   ///< Includes compact fields.
  std::vector<MethodDecl *> Methods;
  MethodDecl *Ctor = nullptr; ///< Explicit or synthesized.
  /// Sema results.
  ClassDef *Def = nullptr;
  ClassDecl *Parent = nullptr;
  /// Full virtual method table: inherited slots first, then new ones.
  std::vector<MethodDecl *> VTable;
  /// Full field layout: inherited fields first.
  std::vector<FieldDecl *> Layout;
};

/// One parsed compilation unit.
struct Module {
  std::vector<ClassDecl *> Classes;
  std::vector<MethodDecl *> Funcs;
  std::vector<GlobalDecl *> Globals;
  /// All declarations in source order (for initialization order).
  std::vector<GlobalDecl *> InitOrder;
};

} // namespace virgil

#endif // VIRGIL_AST_AST_H
