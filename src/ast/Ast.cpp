//===- ast/Ast.cpp --------------------------------------------------------===//

#include "ast/Ast.h"

#include "types/TypeStore.h"

namespace virgil {

/// Computes the collapsed parameter type of a method: the tuple of its
/// parameter types, obeying the degenerate rules (no params -> void,
/// one param -> its type).
Type *collapsedParamType(const MethodDecl *M, TypeStore &Store) {
  std::vector<Type *> Elems;
  Elems.reserve(M->Params.size());
  for (const LocalVar *P : M->Params)
    Elems.push_back(P->Ty);
  return Store.tuple(Elems);
}

} // namespace virgil
