//===- types/TypeStore.h - Type uniquing and substitution -------*- C++ -*-===//
///
/// \file
/// Owns and uniques every Type. Because tuple degeneracy is enforced
/// here (`tuple({}) == void`, `tuple({T}) == T`), the equivalences the
/// paper relies on — `() -> () = void -> void`, `(A) -> (B) = A -> B` —
/// hold by construction: the degenerate spellings produce the very same
/// Type pointer.
///
//===----------------------------------------------------------------------===//

#ifndef VIRGIL_TYPES_TYPESTORE_H
#define VIRGIL_TYPES_TYPESTORE_H

#include "support/StringInterner.h"
#include "types/Type.h"

#include <map>
#include <memory>
#include <span>
#include <vector>

namespace virgil {

/// Maps the type parameters of one declaration to concrete (or less
/// polymorphic) arguments, positionally.
struct TypeSubst {
  std::vector<TypeParamDef *> Params;
  std::vector<Type *> Args;

  Type *lookup(const TypeParamDef *Def) const {
    for (size_t I = 0, E = Params.size(); I != E; ++I)
      if (Params[I] == Def)
        return Args[I];
    return nullptr;
  }
  bool empty() const { return Params.empty(); }
};

/// Factory and uniquer for all types in one compilation.
class TypeStore {
public:
  TypeStore();
  TypeStore(const TypeStore &) = delete;
  TypeStore &operator=(const TypeStore &) = delete;
  ~TypeStore();

  Type *voidTy() const { return VoidTy; }
  Type *boolTy() const { return BoolTy; }
  Type *byteTy() const { return ByteTy; }
  Type *intTy() const { return IntTy; }
  /// string is an alias for Array<byte>.
  Type *stringTy() { return array(ByteTy); }

  Type *array(Type *Elem);

  /// Applies the degenerate rules: 0 elems -> void, 1 elem -> that elem.
  Type *tuple(std::span<Type *const> Elems);

  Type *func(Type *Param, Type *Ret);

  Type *classType(ClassDef *Def, std::span<Type *const> Args);

  /// The class type with the class's own parameters as arguments
  /// (C<T0,...,Tn> inside C's body).
  Type *selfType(ClassDef *Def);

  Type *typeParam(TypeParamDef *Def);

  /// Replaces type parameters by their substitutions; types not
  /// mentioning any substituted parameter are returned unchanged.
  Type *substitute(Type *T, const TypeSubst &Subst);

  /// The instantiated superclass type of \p CT (parent-as-written with
  /// CT's arguments substituted), or null for hierarchy roots.
  ClassType *superOf(ClassType *CT);

  /// Creates a fresh TypeParamDef (sema and tests use this).
  TypeParamDef *makeTypeParam(Ident Name);

  /// Creates a fresh ClassDef (sema and tests use this).
  ClassDef *makeClass(Ident Name);

  /// Interns a name with the same lifetime as the store (used for the
  /// ClassDefs of monomorphized specializations).
  Ident internName(std::string_view Name);

  size_t numTypes() const { return NextTypeId; }

private:
  uint32_t nextId() { return NextTypeId++; }

  Type *VoidTy;
  Type *BoolTy;
  Type *ByteTy;
  Type *IntTy;

  uint32_t NextTypeId = 0;
  uint32_t NextDefUid = 0;

  struct Impl;
  std::unique_ptr<Impl> Cache;
};

} // namespace virgil

#endif // VIRGIL_TYPES_TYPESTORE_H
